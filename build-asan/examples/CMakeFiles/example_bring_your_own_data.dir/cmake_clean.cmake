file(REMOVE_RECURSE
  "CMakeFiles/example_bring_your_own_data.dir/bring_your_own_data.cpp.o"
  "CMakeFiles/example_bring_your_own_data.dir/bring_your_own_data.cpp.o.d"
  "example_bring_your_own_data"
  "example_bring_your_own_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bring_your_own_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
