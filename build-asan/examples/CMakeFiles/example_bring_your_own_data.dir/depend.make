# Empty dependencies file for example_bring_your_own_data.
# This may be replaced when dependencies are built.
