file(REMOVE_RECURSE
  "CMakeFiles/example_network_dynamics_report.dir/network_dynamics_report.cpp.o"
  "CMakeFiles/example_network_dynamics_report.dir/network_dynamics_report.cpp.o.d"
  "example_network_dynamics_report"
  "example_network_dynamics_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_dynamics_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
