# Empty dependencies file for example_network_dynamics_report.
# This may be replaced when dependencies are built.
