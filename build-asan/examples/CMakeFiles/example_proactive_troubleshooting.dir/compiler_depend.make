# Empty compiler generated dependencies file for example_proactive_troubleshooting.
# This may be replaced when dependencies are built.
