file(REMOVE_RECURSE
  "CMakeFiles/example_proactive_troubleshooting.dir/proactive_troubleshooting.cpp.o"
  "CMakeFiles/example_proactive_troubleshooting.dir/proactive_troubleshooting.cpp.o.d"
  "example_proactive_troubleshooting"
  "example_proactive_troubleshooting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_proactive_troubleshooting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
