# Empty compiler generated dependencies file for example_save_load_serve.
# This may be replaced when dependencies are built.
