file(REMOVE_RECURSE
  "CMakeFiles/example_save_load_serve.dir/save_load_serve.cpp.o"
  "CMakeFiles/example_save_load_serve.dir/save_load_serve.cpp.o.d"
  "example_save_load_serve"
  "example_save_load_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_save_load_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
