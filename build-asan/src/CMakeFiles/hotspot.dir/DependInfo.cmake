
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/hotspot.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/hotspot.dir/core/config.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/config.cc.o.d"
  "/root/repo/src/core/dynamics.cc" "src/CMakeFiles/hotspot.dir/core/dynamics.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/dynamics.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/CMakeFiles/hotspot.dir/core/evaluation.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/evaluation.cc.o.d"
  "/root/repo/src/core/forecast_service.cc" "src/CMakeFiles/hotspot.dir/core/forecast_service.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/forecast_service.cc.o.d"
  "/root/repo/src/core/forecaster.cc" "src/CMakeFiles/hotspot.dir/core/forecaster.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/forecaster.cc.o.d"
  "/root/repo/src/core/importance.cc" "src/CMakeFiles/hotspot.dir/core/importance.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/importance.cc.o.d"
  "/root/repo/src/core/labels.cc" "src/CMakeFiles/hotspot.dir/core/labels.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/labels.cc.o.d"
  "/root/repo/src/core/score.cc" "src/CMakeFiles/hotspot.dir/core/score.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/score.cc.o.d"
  "/root/repo/src/core/sector_filter.cc" "src/CMakeFiles/hotspot.dir/core/sector_filter.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/sector_filter.cc.o.d"
  "/root/repo/src/core/study.cc" "src/CMakeFiles/hotspot.dir/core/study.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/study.cc.o.d"
  "/root/repo/src/core/task.cc" "src/CMakeFiles/hotspot.dir/core/task.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/core/task.cc.o.d"
  "/root/repo/src/features/feature_tensor.cc" "src/CMakeFiles/hotspot.dir/features/feature_tensor.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/features/feature_tensor.cc.o.d"
  "/root/repo/src/features/handcrafted_features.cc" "src/CMakeFiles/hotspot.dir/features/handcrafted_features.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/features/handcrafted_features.cc.o.d"
  "/root/repo/src/features/percentile_features.cc" "src/CMakeFiles/hotspot.dir/features/percentile_features.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/features/percentile_features.cc.o.d"
  "/root/repo/src/features/raw_features.cc" "src/CMakeFiles/hotspot.dir/features/raw_features.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/features/raw_features.cc.o.d"
  "/root/repo/src/features/window.cc" "src/CMakeFiles/hotspot.dir/features/window.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/features/window.cc.o.d"
  "/root/repo/src/io/csv_io.cc" "src/CMakeFiles/hotspot.dir/io/csv_io.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/io/csv_io.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/hotspot.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/CMakeFiles/hotspot.dir/ml/gbdt.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/ml/gbdt.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/hotspot.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/nn/autoencoder.cc" "src/CMakeFiles/hotspot.dir/nn/autoencoder.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/nn/autoencoder.cc.o.d"
  "/root/repo/src/nn/imputer.cc" "src/CMakeFiles/hotspot.dir/nn/imputer.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/nn/imputer.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/hotspot.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/matrix_ops.cc" "src/CMakeFiles/hotspot.dir/nn/matrix_ops.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/nn/matrix_ops.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/hotspot.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/hotspot.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/pipeline_context.cc" "src/CMakeFiles/hotspot.dir/obs/pipeline_context.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/obs/pipeline_context.cc.o.d"
  "/root/repo/src/obs/snapshot.cc" "src/CMakeFiles/hotspot.dir/obs/snapshot.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/obs/snapshot.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/hotspot.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/obs/trace.cc.o.d"
  "/root/repo/src/serialize/binary_format.cc" "src/CMakeFiles/hotspot.dir/serialize/binary_format.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/serialize/binary_format.cc.o.d"
  "/root/repo/src/serialize/bundle.cc" "src/CMakeFiles/hotspot.dir/serialize/bundle.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/serialize/bundle.cc.o.d"
  "/root/repo/src/serialize/model_io.cc" "src/CMakeFiles/hotspot.dir/serialize/model_io.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/serialize/model_io.cc.o.d"
  "/root/repo/src/simnet/calendar.cc" "src/CMakeFiles/hotspot.dir/simnet/calendar.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/calendar.cc.o.d"
  "/root/repo/src/simnet/events.cc" "src/CMakeFiles/hotspot.dir/simnet/events.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/events.cc.o.d"
  "/root/repo/src/simnet/generator.cc" "src/CMakeFiles/hotspot.dir/simnet/generator.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/generator.cc.o.d"
  "/root/repo/src/simnet/kpi_catalog.cc" "src/CMakeFiles/hotspot.dir/simnet/kpi_catalog.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/kpi_catalog.cc.o.d"
  "/root/repo/src/simnet/load_model.cc" "src/CMakeFiles/hotspot.dir/simnet/load_model.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/load_model.cc.o.d"
  "/root/repo/src/simnet/missing.cc" "src/CMakeFiles/hotspot.dir/simnet/missing.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/missing.cc.o.d"
  "/root/repo/src/simnet/topology.cc" "src/CMakeFiles/hotspot.dir/simnet/topology.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/simnet/topology.cc.o.d"
  "/root/repo/src/stats/average_precision.cc" "src/CMakeFiles/hotspot.dir/stats/average_precision.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/average_precision.cc.o.d"
  "/root/repo/src/stats/confidence.cc" "src/CMakeFiles/hotspot.dir/stats/confidence.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/confidence.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/CMakeFiles/hotspot.dir/stats/correlation.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/correlation.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/hotspot.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/CMakeFiles/hotspot.dir/stats/ks_test.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/ks_test.cc.o.d"
  "/root/repo/src/stats/percentile.cc" "src/CMakeFiles/hotspot.dir/stats/percentile.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/percentile.cc.o.d"
  "/root/repo/src/stats/runlength.cc" "src/CMakeFiles/hotspot.dir/stats/runlength.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/stats/runlength.cc.o.d"
  "/root/repo/src/tensor/temporal.cc" "src/CMakeFiles/hotspot.dir/tensor/temporal.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/tensor/temporal.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/hotspot.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/hotspot.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/hotspot.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/util/rng.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/hotspot.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/hotspot.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
