file(REMOVE_RECURSE
  "libhotspot.a"
)
