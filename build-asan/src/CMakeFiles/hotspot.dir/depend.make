# Empty dependencies file for hotspot.
# This may be replaced when dependencies are built.
