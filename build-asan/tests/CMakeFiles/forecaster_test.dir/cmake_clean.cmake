file(REMOVE_RECURSE
  "CMakeFiles/forecaster_test.dir/forecaster_test.cc.o"
  "CMakeFiles/forecaster_test.dir/forecaster_test.cc.o.d"
  "forecaster_test"
  "forecaster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecaster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
