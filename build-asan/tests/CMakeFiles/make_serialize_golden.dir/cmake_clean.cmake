file(REMOVE_RECURSE
  "CMakeFiles/make_serialize_golden.dir/make_serialize_golden.cc.o"
  "CMakeFiles/make_serialize_golden.dir/make_serialize_golden.cc.o.d"
  "make_serialize_golden"
  "make_serialize_golden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_serialize_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
