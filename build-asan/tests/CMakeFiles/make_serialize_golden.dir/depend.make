# Empty dependencies file for make_serialize_golden.
# This may be replaced when dependencies are built.
