# Empty compiler generated dependencies file for dynamics_test.
# This may be replaced when dependencies are built.
