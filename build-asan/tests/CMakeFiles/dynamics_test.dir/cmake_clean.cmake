file(REMOVE_RECURSE
  "CMakeFiles/dynamics_test.dir/dynamics_test.cc.o"
  "CMakeFiles/dynamics_test.dir/dynamics_test.cc.o.d"
  "dynamics_test"
  "dynamics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
