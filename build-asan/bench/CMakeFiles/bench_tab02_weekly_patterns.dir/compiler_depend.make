# Empty compiler generated dependencies file for bench_tab02_weekly_patterns.
# This may be replaced when dependencies are built.
