file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_weekly_patterns.dir/bench_tab02_weekly_patterns.cc.o"
  "CMakeFiles/bench_tab02_weekly_patterns.dir/bench_tab02_weekly_patterns.cc.o.d"
  "bench_tab02_weekly_patterns"
  "bench_tab02_weekly_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_weekly_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
