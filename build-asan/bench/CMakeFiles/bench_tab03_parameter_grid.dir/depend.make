# Empty dependencies file for bench_tab03_parameter_grid.
# This may be replaced when dependencies are built.
