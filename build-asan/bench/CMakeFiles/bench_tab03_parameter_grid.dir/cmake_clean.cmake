file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_parameter_grid.dir/bench_tab03_parameter_grid.cc.o"
  "CMakeFiles/bench_tab03_parameter_grid.dir/bench_tab03_parameter_grid.cc.o.d"
  "bench_tab03_parameter_grid"
  "bench_tab03_parameter_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_parameter_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
