# Empty compiler generated dependencies file for bench_fig09_10_lift_vs_horizon.
# This may be replaced when dependencies are built.
