file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_10_lift_vs_horizon.dir/bench_fig09_10_lift_vs_horizon.cc.o"
  "CMakeFiles/bench_fig09_10_lift_vs_horizon.dir/bench_fig09_10_lift_vs_horizon.cc.o.d"
  "bench_fig09_10_lift_vs_horizon"
  "bench_fig09_10_lift_vs_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_lift_vs_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
