# Empty compiler generated dependencies file for bench_abl_gbdt.
# This may be replaced when dependencies are built.
