file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_gbdt.dir/bench_abl_gbdt.cc.o"
  "CMakeFiles/bench_abl_gbdt.dir/bench_abl_gbdt.cc.o.d"
  "bench_abl_gbdt"
  "bench_abl_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
