# Empty compiler generated dependencies file for bench_fig03_label_raster.
# This may be replaced when dependencies are built.
