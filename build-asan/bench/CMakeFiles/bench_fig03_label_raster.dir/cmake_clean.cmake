file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_label_raster.dir/bench_fig03_label_raster.cc.o"
  "CMakeFiles/bench_fig03_label_raster.dir/bench_fig03_label_raster.cc.o.d"
  "bench_fig03_label_raster"
  "bench_fig03_label_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_label_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
