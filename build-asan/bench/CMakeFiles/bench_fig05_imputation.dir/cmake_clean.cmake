file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_imputation.dir/bench_fig05_imputation.cc.o"
  "CMakeFiles/bench_fig05_imputation.dir/bench_fig05_imputation.cc.o.d"
  "bench_fig05_imputation"
  "bench_fig05_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
