# Empty dependencies file for bench_fig05_imputation.
# This may be replaced when dependencies are built.
