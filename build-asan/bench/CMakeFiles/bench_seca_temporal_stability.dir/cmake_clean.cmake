file(REMOVE_RECURSE
  "CMakeFiles/bench_seca_temporal_stability.dir/bench_seca_temporal_stability.cc.o"
  "CMakeFiles/bench_seca_temporal_stability.dir/bench_seca_temporal_stability.cc.o.d"
  "bench_seca_temporal_stability"
  "bench_seca_temporal_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seca_temporal_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
