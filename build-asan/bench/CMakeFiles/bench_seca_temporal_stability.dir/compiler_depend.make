# Empty compiler generated dependencies file for bench_seca_temporal_stability.
# This may be replaced when dependencies are built.
