file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_training.dir/bench_abl_training.cc.o"
  "CMakeFiles/bench_abl_training.dir/bench_abl_training.cc.o.d"
  "bench_abl_training"
  "bench_abl_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
