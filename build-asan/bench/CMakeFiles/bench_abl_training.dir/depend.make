# Empty dependencies file for bench_abl_training.
# This may be replaced when dependencies are built.
