# Empty dependencies file for bench_abl_features.
# This may be replaced when dependencies are built.
