file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_features.dir/bench_abl_features.cc.o"
  "CMakeFiles/bench_abl_features.dir/bench_abl_features.cc.o.d"
  "bench_abl_features"
  "bench_abl_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
