# Empty dependencies file for bench_micro_serve.
# This may be replaced when dependencies are built.
