file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_serve.dir/bench_micro_serve.cc.o"
  "CMakeFiles/bench_micro_serve.dir/bench_micro_serve.cc.o.d"
  "bench_micro_serve"
  "bench_micro_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
