# Empty dependencies file for bench_fig01_kpi_examples.
# This may be replaced when dependencies are built.
