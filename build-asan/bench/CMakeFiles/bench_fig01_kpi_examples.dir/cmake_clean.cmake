file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_kpi_examples.dir/bench_fig01_kpi_examples.cc.o"
  "CMakeFiles/bench_fig01_kpi_examples.dir/bench_fig01_kpi_examples.cc.o.d"
  "bench_fig01_kpi_examples"
  "bench_fig01_kpi_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_kpi_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
