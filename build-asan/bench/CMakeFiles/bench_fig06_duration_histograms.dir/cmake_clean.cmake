file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_duration_histograms.dir/bench_fig06_duration_histograms.cc.o"
  "CMakeFiles/bench_fig06_duration_histograms.dir/bench_fig06_duration_histograms.cc.o.d"
  "bench_fig06_duration_histograms"
  "bench_fig06_duration_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_duration_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
