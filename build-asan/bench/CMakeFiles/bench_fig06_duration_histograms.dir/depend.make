# Empty dependencies file for bench_fig06_duration_histograms.
# This may be replaced when dependencies are built.
