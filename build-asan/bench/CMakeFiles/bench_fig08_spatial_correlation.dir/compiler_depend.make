# Empty compiler generated dependencies file for bench_fig08_spatial_correlation.
# This may be replaced when dependencies are built.
