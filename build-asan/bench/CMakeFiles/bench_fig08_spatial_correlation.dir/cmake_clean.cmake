file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_spatial_correlation.dir/bench_fig08_spatial_correlation.cc.o"
  "CMakeFiles/bench_fig08_spatial_correlation.dir/bench_fig08_spatial_correlation.cc.o.d"
  "bench_fig08_spatial_correlation"
  "bench_fig08_spatial_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_spatial_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
