# Empty dependencies file for bench_fig11_12_become_lift_vs_horizon.
# This may be replaced when dependencies are built.
