file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_become_lift_vs_horizon.dir/bench_fig11_12_become_lift_vs_horizon.cc.o"
  "CMakeFiles/bench_fig11_12_become_lift_vs_horizon.dir/bench_fig11_12_become_lift_vs_horizon.cc.o.d"
  "bench_fig11_12_become_lift_vs_horizon"
  "bench_fig11_12_become_lift_vs_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_become_lift_vs_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
