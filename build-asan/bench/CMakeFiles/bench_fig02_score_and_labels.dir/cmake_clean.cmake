file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_score_and_labels.dir/bench_fig02_score_and_labels.cc.o"
  "CMakeFiles/bench_fig02_score_and_labels.dir/bench_fig02_score_and_labels.cc.o.d"
  "bench_fig02_score_and_labels"
  "bench_fig02_score_and_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_score_and_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
