# Empty dependencies file for bench_fig02_score_and_labels.
# This may be replaced when dependencies are built.
