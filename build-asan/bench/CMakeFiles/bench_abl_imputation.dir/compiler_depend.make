# Empty compiler generated dependencies file for bench_abl_imputation.
# This may be replaced when dependencies are built.
