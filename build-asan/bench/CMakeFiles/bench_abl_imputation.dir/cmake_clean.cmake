file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_imputation.dir/bench_abl_imputation.cc.o"
  "CMakeFiles/bench_abl_imputation.dir/bench_abl_imputation.cc.o.d"
  "bench_abl_imputation"
  "bench_abl_imputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_imputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
