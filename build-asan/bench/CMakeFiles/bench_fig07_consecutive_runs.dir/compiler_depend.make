# Empty compiler generated dependencies file for bench_fig07_consecutive_runs.
# This may be replaced when dependencies are built.
