file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_consecutive_runs.dir/bench_fig07_consecutive_runs.cc.o"
  "CMakeFiles/bench_fig07_consecutive_runs.dir/bench_fig07_consecutive_runs.cc.o.d"
  "bench_fig07_consecutive_runs"
  "bench_fig07_consecutive_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_consecutive_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
