file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_14_lift_vs_window.dir/bench_fig13_14_lift_vs_window.cc.o"
  "CMakeFiles/bench_fig13_14_lift_vs_window.dir/bench_fig13_14_lift_vs_window.cc.o.d"
  "bench_fig13_14_lift_vs_window"
  "bench_fig13_14_lift_vs_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_14_lift_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
