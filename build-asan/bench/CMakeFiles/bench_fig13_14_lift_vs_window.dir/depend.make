# Empty dependencies file for bench_fig13_14_lift_vs_window.
# This may be replaced when dependencies are built.
