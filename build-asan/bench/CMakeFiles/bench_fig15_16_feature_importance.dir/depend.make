# Empty dependencies file for bench_fig15_16_feature_importance.
# This may be replaced when dependencies are built.
