# Empty dependencies file for bench_fig04_score_histogram.
# This may be replaced when dependencies are built.
