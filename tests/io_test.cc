#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "io/csv_io.h"
#include "simnet/topology.h"
#include "util/rng.h"

namespace hotspot::io {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hotspot_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST(ParseCsvLine, PlainFields) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvLine("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsvLine, QuotedFields) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"say \"\"hi\"\"\""),
            (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  EXPECT_EQ(ParseCsvLine("a,b\r"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvLine, CustomSeparator) {
  EXPECT_EQ(ParseCsvLine("a;b", ';'),
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(IoTest, MatrixRoundTrip) {
  Matrix<float> matrix(3, 4);
  Rng rng(1);
  for (float& v : matrix.data()) {
    v = static_cast<float>(rng.Gaussian());
  }
  matrix(1, 2) = MissingValue();

  ASSERT_TRUE(WriteMatrixCsv(Path("m.csv"), matrix).ok);
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("m.csv"), &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.rows(), 3);
  ASSERT_EQ(loaded.cols(), 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (IsMissing(matrix(i, j))) {
        EXPECT_TRUE(IsMissing(loaded(i, j)));
      } else {
        EXPECT_NEAR(loaded(i, j), matrix(i, j), 1e-6);
      }
    }
  }
}

TEST_F(IoTest, MatrixReadRejectsBadHeader) {
  std::ofstream(Path("bad.csv")) << "nope,t0\n0,1\n";
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("bad.csv"), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("header"), std::string::npos);
}

TEST_F(IoTest, MatrixReadRejectsBadNumber) {
  std::ofstream(Path("bad.csv")) << "sector,t0\n0,abc\n";
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("bad.csv"), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("bad number"), std::string::npos);
}

TEST_F(IoTest, MatrixReadRejectsRaggedRows) {
  std::ofstream(Path("bad.csv")) << "sector,t0,t1\n0,1\n";
  Matrix<float> loaded;
  EXPECT_FALSE(ReadMatrixCsv(Path("bad.csv"), &loaded).ok);
}

TEST_F(IoTest, MissingFileReported) {
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("nonexistent.csv"), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("cannot open"), std::string::npos);
}

TEST_F(IoTest, KpiTensorRoundTrip) {
  Tensor3<float> kpis(2, 3, 2);
  Rng rng(2);
  for (float& v : kpis.data()) v = static_cast<float>(rng.Gaussian());
  kpis(0, 1, 1) = MissingValue();

  ASSERT_TRUE(
      WriteKpiTensorCsv(Path("k.csv"), kpis, {"noise", "drops"}).ok);
  Tensor3<float> loaded;
  std::vector<std::string> names;
  IoStatus status = ReadKpiTensorCsv(Path("k.csv"), &loaded, &names);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(names, (std::vector<std::string>{"noise", "drops"}));
  ASSERT_EQ(loaded.dim0(), 2);
  ASSERT_EQ(loaded.dim1(), 3);
  ASSERT_EQ(loaded.dim2(), 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 2; ++k) {
        if (IsMissing(kpis(i, j, k))) {
          EXPECT_TRUE(IsMissing(loaded(i, j, k)));
        } else {
          EXPECT_NEAR(loaded(i, j, k), kpis(i, j, k), 1e-6);
        }
      }
    }
  }
}

TEST_F(IoTest, MatrixErrorNamesLineAndColumn) {
  std::ofstream(Path("bad.csv")) << "sector,t0,t1\n0,1,2\n1,1,oops\n";
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("bad.csv"), &loaded);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":3:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("'oops'"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("'t1'"), std::string::npos) << status.error;
}

TEST_F(IoTest, MatrixRaggedRowErrorCountsFields) {
  std::ofstream(Path("bad.csv")) << "sector,t0,t1\n0,1\n";
  Matrix<float> loaded;
  IoStatus status = ReadMatrixCsv(Path("bad.csv"), &loaded);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("expected 3 fields, got 2"),
            std::string::npos)
      << status.error;
}

TEST_F(IoTest, KpiTensorRejectsSparseCoverage) {
  std::ofstream(Path("sparse.csv"))
      << "sector,hour,kpi\n0,0,1\n0,1,2\n1,0,3\n";  // (1,1) missing
  Tensor3<float> loaded;
  IoStatus status = ReadKpiTensorCsv(Path("sparse.csv"), &loaded, nullptr);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("sparse"), std::string::npos);
}

TEST_F(IoTest, KpiTensorRejectsEmptyFile) {
  std::ofstream(Path("empty.csv")) << "sector,hour,kpi\n";
  Tensor3<float> loaded;
  EXPECT_FALSE(ReadKpiTensorCsv(Path("empty.csv"), &loaded, nullptr).ok);
}

TEST_F(IoTest, KpiTensorRejectsDuplicateCellNamingBothLines) {
  // The duplicate (0,0) keeps the row count at the dense 2x2 = 4, so
  // without explicit duplicate detection the missing (1,1) cell would load
  // as a silent 0 — this must be an error naming both offending lines.
  std::ofstream(Path("dup.csv")) << "sector,hour,kpi\n"
                                 << "0,0,1\n0,1,2\n1,0,3\n0,0,9\n";
  Tensor3<float> loaded;
  IoStatus status = ReadKpiTensorCsv(Path("dup.csv"), &loaded, nullptr);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("duplicate"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find(":5:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("line 2"), std::string::npos) << status.error;
}

TEST_F(IoTest, KpiTensorErrorNamesValueAndKpiColumn) {
  std::ofstream(Path("bad.csv")) << "sector,hour,noise,drops\n"
                                 << "0,0,1.5,2.5\n0,1,1.5,banana\n";
  Tensor3<float> loaded;
  IoStatus status = ReadKpiTensorCsv(Path("bad.csv"), &loaded, nullptr);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":3:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("'banana'"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("'drops'"), std::string::npos)
      << status.error;
}

TEST_F(IoTest, KpiTensorRejectsBadIds) {
  std::ofstream(Path("bad.csv")) << "sector,hour,kpi\n-1,0,1\n";
  Tensor3<float> loaded;
  IoStatus status = ReadKpiTensorCsv(Path("bad.csv"), &loaded, nullptr);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("sector/hour"), std::string::npos)
      << status.error;
}

TEST_F(IoTest, KpiTensorFailedLoadLeavesOutputsUntouched) {
  Tensor3<float> loaded(1, 1, 1, 42.0f);
  std::vector<std::string> names = {"sentinel"};
  std::ofstream(Path("bad.csv")) << "sector,hour,kpi\n0,0,oops\n";
  ASSERT_FALSE(ReadKpiTensorCsv(Path("bad.csv"), &loaded, &names).ok);
  // Atomic failure: no partially-filled tensor, no clobbered name list.
  EXPECT_EQ(loaded(0, 0, 0), 42.0f);
  EXPECT_EQ(names, (std::vector<std::string>{"sentinel"}));
}

TEST_F(IoTest, KpiTensorRaggedRowErrorCountsFields) {
  std::ofstream(Path("bad.csv")) << "sector,hour,noise,drops\n"
                                 << "0,0,1.5,2.5,7.0\n";
  Tensor3<float> loaded;
  IoStatus status = ReadKpiTensorCsv(Path("bad.csv"), &loaded, nullptr);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("expected 4 fields, got 5"),
            std::string::npos)
      << status.error;
}

TEST_F(IoTest, StreamReaderYieldsRowsInFileOrder) {
  std::ofstream(Path("s.csv")) << "sector,hour,noise,drops\n"
                               << "0,0,1.5,2.5\n1,0,3.5,NaN\n0,1,4.5,5.5\n";
  KpiCsvStreamReader reader;
  ASSERT_TRUE(reader.Open(Path("s.csv")).ok) << reader.status().error;
  EXPECT_EQ(reader.kpi_names(),
            (std::vector<std::string>{"noise", "drops"}));
  EXPECT_EQ(reader.num_kpis(), 2);
  int sector = -1, hour = -1;
  std::vector<float> values;
  ASSERT_TRUE(reader.Next(&sector, &hour, &values));
  EXPECT_EQ(sector, 0);
  EXPECT_EQ(hour, 0);
  EXPECT_EQ(values, (std::vector<float>{1.5f, 2.5f}));
  ASSERT_TRUE(reader.Next(&sector, &hour, &values));
  EXPECT_EQ(sector, 1);
  EXPECT_TRUE(IsMissing(values[1]));
  ASSERT_TRUE(reader.Next(&sector, &hour, &values));
  EXPECT_EQ(hour, 1);
  // End of file: Next is false but the status stays OK.
  EXPECT_FALSE(reader.Next(&sector, &hour, &values));
  EXPECT_TRUE(reader.status().ok) << reader.status().error;
}

TEST_F(IoTest, StreamReaderErrorNamesFileLineAndColumn) {
  std::ofstream(Path("s.csv")) << "sector,hour,noise,drops\n"
                               << "0,0,1.5,2.5\n0,1,1.5,banana\n";
  KpiCsvStreamReader reader;
  ASSERT_TRUE(reader.Open(Path("s.csv")).ok);
  int sector, hour;
  std::vector<float> values;
  ASSERT_TRUE(reader.Next(&sector, &hour, &values));
  ASSERT_FALSE(reader.Next(&sector, &hour, &values));
  IoStatus status = reader.status();
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("s.csv:3:"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("'banana'"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("'drops'"), std::string::npos)
      << status.error;
  EXPECT_EQ(reader.line_number(), 3);
}

TEST_F(IoTest, StreamReaderReportsMissingFile) {
  KpiCsvStreamReader reader;
  IoStatus status = reader.Open(Path("nonexistent.csv"));
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("cannot open"), std::string::npos);
}

TEST_F(IoTest, TopologyRoundTrip) {
  simnet::TopologyConfig config;
  config.target_sectors = 21;
  simnet::Topology topology = simnet::Topology::Generate(config, 9);
  ASSERT_TRUE(WriteTopologyCsv(Path("topo.csv"), topology).ok);
  simnet::Topology loaded;
  IoStatus status = ReadTopologyCsv(Path("topo.csv"), &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.num_sectors(), 21);
  for (int i = 0; i < 21; ++i) {
    EXPECT_EQ(loaded.sector(i).tower_id, topology.sector(i).tower_id);
    EXPECT_EQ(loaded.sector(i).archetype, topology.sector(i).archetype);
    EXPECT_NEAR(loaded.sector(i).x_km, topology.sector(i).x_km, 1e-5);
  }
  // Distances survive the round trip.
  EXPECT_NEAR(loaded.DistanceKm(0, 20), topology.DistanceKm(0, 20), 1e-4);
}

TEST_F(IoTest, TopologyRejectsUnknownArchetype) {
  std::ofstream(Path("topo.csv"))
      << "sector,tower,patch,city,x_km,y_km,azimuth_deg,archetype\n"
      << "0,0,0,0,1.0,2.0,0.0,castle\n";
  simnet::Topology loaded;
  IoStatus status = ReadTopologyCsv(Path("topo.csv"), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("archetype"), std::string::npos);
}

TEST_F(IoTest, TopologyErrorNamesValueAndColumn) {
  std::ofstream(Path("topo.csv"))
      << "sector,tower,patch,city,x_km,y_km,azimuth_deg,archetype\n"
      << "0,0,0,0,1.0,north,0.0,residential\n";
  simnet::Topology loaded;
  IoStatus status = ReadTopologyCsv(Path("topo.csv"), &loaded);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find(":2:"), std::string::npos) << status.error;
  EXPECT_NE(status.error.find("'north'"), std::string::npos)
      << status.error;
  EXPECT_NE(status.error.find("'y_km'"), std::string::npos) << status.error;
}

TEST_F(IoTest, TopologyRejectsNonDenseIds) {
  std::ofstream(Path("topo.csv"))
      << "sector,tower,patch,city,x_km,y_km,azimuth_deg,archetype\n"
      << "5,0,0,0,1.0,2.0,0.0,residential\n";
  simnet::Topology loaded;
  EXPECT_FALSE(ReadTopologyCsv(Path("topo.csv"), &loaded).ok);
}

}  // namespace
}  // namespace hotspot::io
