#include <cmath>

#include "gtest/gtest.h"
#include "features/feature_tensor.h"
#include "features/handcrafted_features.h"
#include "features/percentile_features.h"
#include "features/raw_features.h"
#include "features/window.h"
#include "stats/percentile.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot::features {
namespace {

/// Builds a tiny 2-sector, 2-week feature tensor with recognizable values.
FeatureTensor TinyTensor() {
  const int n = 2;
  const int hours = 2 * kHoursPerWeek;
  const int l = 3;
  Tensor3<float> kpis(n, hours, l);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < hours; ++j) {
      for (int k = 0; k < l; ++k) {
        kpis(i, j, k) = static_cast<float>(1000 * i + j + 0.1 * k);
      }
    }
  }
  Matrix<float> calendar(hours, 5);
  for (int j = 0; j < hours; ++j) {
    calendar(j, 0) = static_cast<float>(j % 24);
    calendar(j, 1) = static_cast<float>((j / 24) % 7);
    calendar(j, 2) = static_cast<float>(1 + (j / 24) % 30);
    calendar(j, 3) = (j / 24) % 7 >= 5 ? 1.0f : 0.0f;
    calendar(j, 4) = 0.0f;
  }
  Matrix<float> hourly(n, hours);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < hours; ++j) {
      hourly(i, j) = static_cast<float>(i + 0.001 * j);
    }
  }
  Matrix<float> daily = IntegrateScores(hourly, Resolution::kDaily);
  Matrix<float> weekly = IntegrateScores(hourly, Resolution::kWeekly);
  Matrix<float> labels(n, hours / 24, 0.0f);
  labels(1, 3) = 1.0f;
  return FeatureTensor::Build(kpis, calendar, hourly, daily, weekly, labels,
                              {"kpi_a", "kpi_b", "kpi_c"});
}

TEST(FeatureTensor, ChannelLayoutMatchesEq5) {
  FeatureTensor x = TinyTensor();
  // l + 5 + 3 + 1 channels.
  EXPECT_EQ(x.num_channels(), 3 + 5 + 3 + 1);
  EXPECT_EQ(x.ChannelName(0), "kpi_a");
  EXPECT_EQ(x.ChannelGroup(0), FeatureGroup::kKpi);
  EXPECT_EQ(x.ChannelName(3), "cal_hour_of_day");
  EXPECT_EQ(x.ChannelGroup(3), FeatureGroup::kCalendar);
  EXPECT_EQ(x.ChannelName(8), "score_hourly");
  EXPECT_EQ(x.ChannelGroup(8), FeatureGroup::kHourlyScore);
  EXPECT_EQ(x.ChannelGroup(9), FeatureGroup::kDailyScore);
  EXPECT_EQ(x.ChannelGroup(10), FeatureGroup::kWeeklyScore);
  EXPECT_EQ(x.ChannelGroup(11), FeatureGroup::kDailyLabel);
}

TEST(FeatureTensor, ValuesCopiedAndUpsampled) {
  FeatureTensor x = TinyTensor();
  // KPI channel 1 at (sector 1, hour 30): 1000 + 30 + 0.1.
  EXPECT_FLOAT_EQ(x.tensor()(1, 30, 1), 1030.1f);
  // Calendar hour-of-day at hour 30 = 6.
  EXPECT_FLOAT_EQ(x.tensor()(0, 30, 3), 6.0f);
  // Daily score upsampled: hour 30 belongs to day 1.
  float day1_score = x.tensor()(1, 30, 9);
  EXPECT_FLOAT_EQ(x.tensor()(1, 25, 9), day1_score);
  // Daily label at (1, day 3) upsampled to hours 72..95.
  EXPECT_FLOAT_EQ(x.tensor()(1, 72, 11), 1.0f);
  EXPECT_FLOAT_EQ(x.tensor()(1, 95, 11), 1.0f);
  EXPECT_FLOAT_EQ(x.tensor()(1, 96, 11), 0.0f);
}

TEST(FeatureGroupName, AllNamed) {
  EXPECT_STREQ(FeatureGroupName(FeatureGroup::kKpi), "kpi");
  EXPECT_STREQ(FeatureGroupName(FeatureGroup::kWeeklyScore),
               "score_weekly");
}

TEST(Window, ExtractsCorrectHourRange) {
  FeatureTensor x = TinyTensor();
  // Window of 2 days ending at day 5: hours [72, 120).
  Matrix<float> window = ExtractWindow(x, 1, 5, 2);
  EXPECT_EQ(window.rows(), 48);
  EXPECT_EQ(window.cols(), x.num_channels());
  EXPECT_FLOAT_EQ(window(0, 0), 1072.0f);   // kpi_a at hour 72
  EXPECT_FLOAT_EQ(window(47, 0), 1119.0f);  // kpi_a at hour 119
}

TEST(Window, BoundsChecked) {
  FeatureTensor x = TinyTensor();
  EXPECT_DEATH(ExtractWindow(x, 0, 1, 2), "Check failed");
  EXPECT_DEATH(ExtractWindow(x, 0, 99, 1), "Check failed");
}

TEST(RawExtractor, FlattensTimeMajor) {
  FeatureTensor x = TinyTensor();
  RawExtractor extractor;
  Matrix<float> window = ExtractWindow(x, 0, 3, 1);
  std::vector<float> out;
  extractor.Extract(window, &out);
  const int channels = x.num_channels();
  ASSERT_EQ(static_cast<int>(out.size()),
            extractor.OutputDim(1, channels));
  EXPECT_EQ(static_cast<int>(out.size()), 24 * channels);
  // out[j*channels + k] == window(j, k).
  EXPECT_FLOAT_EQ(out[static_cast<size_t>(5 * channels + 2)], window(5, 2));
  EXPECT_EQ(extractor.SourceChannel(5 * channels + 2, 1, channels), 2);
  EXPECT_EQ(RawExtractor::SourceHour(5 * channels + 2, channels), 5);
}

TEST(RawExtractor, FeatureNames) {
  FeatureTensor x = TinyTensor();
  RawExtractor extractor;
  EXPECT_EQ(extractor.FeatureName(0, 1, x), "kpi_a@h0");
  EXPECT_EQ(extractor.FeatureName(x.num_channels(), 1, x), "kpi_a@h1");
}

TEST(PercentileExtractor, MatchesDirectPercentiles) {
  FeatureTensor x = TinyTensor();
  DailyPercentileExtractor extractor;
  Matrix<float> window = ExtractWindow(x, 0, 4, 2);
  std::vector<float> out;
  extractor.Extract(window, &out);
  const int channels = x.num_channels();
  ASSERT_EQ(static_cast<int>(out.size()),
            extractor.OutputDim(2, channels));

  // Check day 1, channel 0, median (percentile index 2).
  std::vector<float> day_values;
  for (int h = 24; h < 48; ++h) day_values.push_back(window(h, 0));
  double expected = Percentile(day_values, 50.0);
  size_t index = (static_cast<size_t>(1) * channels + 0) * 5 + 2;
  EXPECT_NEAR(out[index], expected, 1e-4);
  EXPECT_EQ(extractor.SourceChannel(static_cast<int>(index), 2, channels),
            0);
}

TEST(PercentileExtractor, DimFormula) {
  DailyPercentileExtractor extractor;
  EXPECT_EQ(extractor.OutputDim(7, 30), 7 * 30 * 5);
  EXPECT_EQ(extractor.OutputDim(1, 12), 60);
}

TEST(PercentileExtractor, FeatureNames) {
  FeatureTensor x = TinyTensor();
  DailyPercentileExtractor extractor;
  EXPECT_EQ(extractor.FeatureName(0, 2, x), "kpi_a@d0_p5");
  EXPECT_EQ(extractor.FeatureName(2, 2, x), "kpi_a@d0_p50");
}

TEST(HandcraftedExtractor, DimFormula) {
  HandcraftedExtractor extractor;
  EXPECT_EQ(extractor.OutputDim(7, 30), 30 * HandcraftedExtractor::kPerChannel);
}

TEST(HandcraftedExtractor, WholeWindowStats) {
  // One channel, 1-day window with values 0..23.
  Tensor3<float> kpis(1, kHoursPerWeek, 1);
  for (int j = 0; j < kHoursPerWeek; ++j) {
    kpis(0, j, 0) = static_cast<float>(j % 24);
  }
  Matrix<float> window = kpis.SectorSlab(0, 0, 24);
  HandcraftedExtractor extractor;
  std::vector<float> out;
  extractor.Extract(window, &out);
  // mean of 0..23 = 11.5, min 0, max 23.
  EXPECT_NEAR(out[0], 11.5f, 1e-5);
  EXPECT_FLOAT_EQ(out[2], 0.0f);
  EXPECT_FLOAT_EQ(out[3], 23.0f);
  // First half (hours 0..11) mean = 5.5, second half = 17.5, diff = 12.
  EXPECT_NEAR(out[4], 5.5f, 1e-5);
  EXPECT_NEAR(out[8], 17.5f, 1e-5);
  EXPECT_NEAR(out[12], 12.0f, 1e-5);
}

TEST(HandcraftedExtractor, DayProfileAndLastDay) {
  // Two-day window; value = hour-of-day + 10*day.
  Matrix<float> window(48, 1);
  for (int j = 0; j < 48; ++j) {
    window(j, 0) = static_cast<float>(j % 24 + 10 * (j / 24));
  }
  HandcraftedExtractor extractor;
  std::vector<float> out;
  extractor.Extract(window, &out);
  // Average day profile at hour 3: (3 + 13)/2 = 8.
  EXPECT_NEAR(out[16 + 3], 8.0f, 1e-5);
  // Extreme day min at hour 3 = 3, max = 13.
  EXPECT_FLOAT_EQ(out[49 + 3], 3.0f);
  EXPECT_FLOAT_EQ(out[73 + 3], 13.0f);
  // Last-day raw hour 3 = 13; last-day mean = 11.5 + 10.
  EXPECT_FLOAT_EQ(out[111 + 3], 13.0f);
  EXPECT_NEAR(out[135], 21.5f, 1e-5);
  // Day-profile range = 23.
  EXPECT_NEAR(out[47], 23.0f, 1e-5);
}

TEST(HandcraftedExtractor, WeekProfileBuckets) {
  // 7-day window; daily mean = day index.
  Matrix<float> window(7 * 24, 1);
  for (int j = 0; j < 7 * 24; ++j) {
    window(j, 0) = static_cast<float>(j / 24);
  }
  HandcraftedExtractor extractor;
  std::vector<float> out;
  extractor.Extract(window, &out);
  for (int b = 0; b < 7; ++b) {
    EXPECT_NEAR(out[static_cast<size_t>(40 + b)], static_cast<float>(b),
                1e-5);
    EXPECT_NEAR(out[static_cast<size_t>(97 + b)], static_cast<float>(b),
                1e-5);   // week min
    EXPECT_NEAR(out[static_cast<size_t>(104 + b)], static_cast<float>(b),
                1e-5);  // week max
  }
  // Week range = 6.
  EXPECT_NEAR(out[48], 6.0f, 1e-5);
}

TEST(HandcraftedExtractor, ShortWindowLeavesAbsentBucketsMissing) {
  // 2-day window: week buckets 2..6 have no data.
  Matrix<float> window(48, 1, 1.0f);
  HandcraftedExtractor extractor;
  std::vector<float> out;
  extractor.Extract(window, &out);
  EXPECT_FALSE(IsMissing(out[40]));
  EXPECT_FALSE(IsMissing(out[41]));
  for (int b = 2; b < 7; ++b) {
    EXPECT_TRUE(IsMissing(out[static_cast<size_t>(40 + b)]));
  }
}

TEST(HandcraftedExtractor, SourceChannelBlocks) {
  HandcraftedExtractor extractor;
  EXPECT_EQ(extractor.SourceChannel(0, 7, 30), 0);
  EXPECT_EQ(extractor.SourceChannel(HandcraftedExtractor::kPerChannel, 7,
                                    30),
            1);
  EXPECT_EQ(extractor.SourceChannel(
                2 * HandcraftedExtractor::kPerChannel + 5, 7, 30),
            2);
}

TEST(HandcraftedExtractor, NaNInputsHandled) {
  Matrix<float> window(24, 1, MissingValue());
  window(0, 0) = 2.0f;
  HandcraftedExtractor extractor;
  std::vector<float> out;
  extractor.Extract(window, &out);
  EXPECT_FLOAT_EQ(out[0], 2.0f);  // mean over the single finite value
  EXPECT_FLOAT_EQ(out[2], 2.0f);  // min
}

TEST(HandcraftedExtractor, FeatureNamesSpotChecks) {
  FeatureTensor x = TinyTensor();
  HandcraftedExtractor extractor;
  EXPECT_EQ(extractor.FeatureName(0, 7, x), "kpi_a.whole_mean");
  EXPECT_EQ(extractor.FeatureName(47, 7, x), "kpi_a.dayrange");
  EXPECT_EQ(extractor.FeatureName(HandcraftedExtractor::kPerChannel, 7, x),
            "kpi_b.whole_mean");
  EXPECT_EQ(extractor.FeatureName(136, 7, x), "kpi_a.lastday_std");
}

}  // namespace
}  // namespace hotspot::features
