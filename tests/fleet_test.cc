// The sharded serving fleet's lockdown suite: shard-map routing
// properties (total, stable, partitioning), fleet output bitwise-equal to
// a single ForecastService over the whole universe for shard counts
// 1/2/7 across the thread matrix, admission-control fault injection (a
// stalled shard sheds only its own load while every other shard stays
// bit-for-bit correct, with obs counters accounting for every offered
// row), and the RCU hot-swap contract: a writer promoting bundles in a
// tight loop while reader threads predict concurrently, every prediction
// matching exactly one generation's expected output — no torn reads, no
// drops — plus generation tags threaded through live fleet streams.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/forecast_service.h"
#include "core/study.h"
#include "fleet/forecast_fleet.h"
#include "fleet/shard_map.h"
#include "obs/pipeline_context.h"
#include "serialize/bundle.h"
#include "thread_matrix.h"

namespace hotspot {
namespace {

using fleet::FleetOptions;
using fleet::FleetPrediction;
using fleet::ForecastFleet;
using fleet::HashShardMap;
using fleet::PartitionShardMap;
using fleet::ShardSectors;
using pipeline::ServingPipeline;

using PushVerdict = ForecastFleet::PushVerdict;

// ---------------------------------------------------------------------------
// Fixtures (the pipeline_test recipe: small single-city study, GBDT
// bundles, complete forward-fill-imputed KPIs).

simnet::GeneratorConfig SmallConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 60;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 77;
  return config;
}

const Study& SharedStudy() {
  static const Study* study = new Study(BuildStudy(StudyInput(SmallConfig())));
  return *study;
}

/// Trains one GBDT bundle variant; distinct iteration counts give
/// distinct models, which is what lets the swap tests attribute every
/// prediction to exactly one installed bundle.
std::unique_ptr<serialize::ForecastBundle> TrainVariant(
    const Study& study, int num_iterations) {
  ForecastConfig config;
  config.model = ModelKind::kGbdt;
  config.t = 55;
  config.h = 1;
  config.w = 3;
  config.gbdt.num_iterations = num_iterations;
  config.gbdt.num_leaves = 15;
  config.gbdt.max_bins = 32;
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  return bundle;
}

/// The fleet's source bundle (and the single-service reference model).
const serialize::ForecastBundle& BaseBundle() {
  static const serialize::ForecastBundle* bundle =
      TrainVariant(SharedStudy(), 10).release();
  return *bundle;
}

ServingPipeline::Options ServingOptionsFor(const Study& study) {
  ServingPipeline::Options options;
  options.num_sectors = study.num_sectors();
  options.num_kpis = study.network.num_kpis();
  options.calendar = &study.network.calendar_matrix;
  options.score = study.score_config;
  options.history_weeks = study.num_weeks() + 1;
  return options;
}

FleetOptions FleetOptionsFor(const Study& study, int num_shards) {
  FleetOptions options;
  options.num_shards = num_shards;
  options.serving = ServingOptionsFor(study);
  return options;
}

/// The batch references: PredictAtDay at every servable end day.
std::vector<std::vector<float>> BatchScores(
    const Study& study, const serialize::ForecastBundle& bundle) {
  ForecastService service(serialize::CloneBundle(bundle));
  std::vector<std::vector<float>> scores;
  for (int end_day = service.window_days(); end_day <= study.num_days();
       ++end_day) {
    scores.push_back(service.PredictAtDay(study.features, end_day));
  }
  return scores;
}

/// Streams the study's KPI tensor hour-major through the fleet. Overload
/// rejects are retried (yield + re-offer), which turns admission control
/// into the blocking backpressure the equivalence tests need: lossless
/// delivery, every row eventually routed.
std::vector<FleetPrediction> RunFleetServe(const Study& study,
                                           ForecastFleet* fleet) {
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      PushVerdict verdict;
      while ((verdict = fleet->Push(i, j, study.network.kpis.Slice(i, j),
                                    study.network.kpis.dim2())) ==
             PushVerdict::kRejectedOverload) {
        std::this_thread::yield();
      }
      EXPECT_EQ(verdict, PushVerdict::kRouted);
    }
  }
  fleet->Finish();
  return fleet->TakePredictions();
}

void ExpectFleetBitwiseEqualToBatch(
    const std::vector<FleetPrediction>& served,
    const std::vector<std::vector<float>>& batch, int window_days,
    const std::string& tag) {
  ASSERT_EQ(served.size(), batch.size()) << tag;
  for (size_t b = 0; b < served.size(); ++b) {
    EXPECT_EQ(served[b].end_day, window_days + static_cast<int>(b)) << tag;
    ASSERT_EQ(served[b].scores.size(), batch[b].size()) << tag;
    EXPECT_EQ(std::memcmp(served[b].scores.data(), batch[b].data(),
                          batch[b].size() * sizeof(float)),
              0)
        << tag << " end_day=" << served[b].end_day;
  }
}

bool SameBits(float a, float b) {
  return std::memcmp(&a, &b, sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// ShardMap properties

TEST(ShardMap, HashRoutingIsTotalAndStable) {
  for (int num_shards : {1, 2, 7}) {
    HashShardMap map(num_shards);
    HashShardMap remap(num_shards);  // an independent instance
    for (int sector = 0; sector < 10000; ++sector) {
      const int shard = map.ShardOf(sector);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, num_shards);
      // Pure function of (sector, num_shards): the same sector lands on
      // the same shard on every call and on every instance — routing
      // survives process restarts with no persisted state.
      EXPECT_EQ(map.ShardOf(sector), shard);
      EXPECT_EQ(remap.ShardOf(sector), shard);
    }
  }
  // The hash actually spreads a contiguous id range: over 10k sectors on
  // 7 shards, every shard owns a healthy slice (this is a property of the
  // fixed splitmix64 finalizer, so the bound is deterministic).
  HashShardMap seven(7);
  std::vector<int> population(7, 0);
  for (int sector = 0; sector < 10000; ++sector) {
    ++population[static_cast<size_t>(seven.ShardOf(sector))];
  }
  for (int shard = 0; shard < 7; ++shard) {
    EXPECT_GT(population[static_cast<size_t>(shard)], 10000 / 7 / 2)
        << "shard " << shard;
  }
}

TEST(ShardMap, PartitionRoutesByTableWithStableHashFallback) {
  // An operator-style geo partition: sectors 0-9 on shard 2, 10-19 on
  // shard 0, 20-29 on shard 1.
  std::vector<int> table;
  for (int sector = 0; sector < 30; ++sector) {
    table.push_back(sector < 10 ? 2 : sector < 20 ? 0 : 1);
  }
  PartitionShardMap map(table, 3);
  EXPECT_EQ(map.num_shards(), 3);
  for (int sector = 0; sector < 30; ++sector) {
    EXPECT_EQ(map.ShardOf(sector), table[static_cast<size_t>(sector)]);
  }
  // Beyond the table the map stays total via the stable hash, agreeing
  // with HashShardMap so growth past the partition is still deterministic.
  HashShardMap hash(3);
  for (int sector = 30; sector < 100; ++sector) {
    const int shard = map.ShardOf(sector);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 3);
    EXPECT_EQ(shard, hash.ShardOf(sector));
  }
}

TEST(ShardMap, ShardSectorsPartitionsTheUniverse) {
  const int num_sectors = 137;
  for (int num_shards : {1, 2, 7}) {
    HashShardMap map(num_shards);
    std::vector<std::vector<int>> populations =
        ShardSectors(map, num_sectors);
    ASSERT_EQ(static_cast<int>(populations.size()), num_shards);
    std::set<int> seen;
    for (int shard = 0; shard < num_shards; ++shard) {
      const std::vector<int>& sectors =
          populations[static_cast<size_t>(shard)];
      for (size_t local = 0; local < sectors.size(); ++local) {
        // Owned by the shard the map says, ascending (the local-id
        // contract), and never claimed twice.
        EXPECT_EQ(map.ShardOf(sectors[local]), shard);
        if (local > 0) {
          EXPECT_LT(sectors[local - 1], sectors[local]);
        }
        EXPECT_TRUE(seen.insert(sectors[local]).second);
      }
    }
    // Total: every sector of the universe is owned by exactly one shard.
    EXPECT_EQ(static_cast<int>(seen.size()), num_sectors);
  }
}

// ---------------------------------------------------------------------------
// Fleet ↔ single-service equivalence

TEST(ForecastFleet, BitwiseEqualSingleServiceAcrossShardCountsAndThreads) {
  const Study& study = SharedStudy();
  const std::vector<std::vector<float>> batch =
      BatchScores(study, BaseBundle());
  const int window_days = BaseBundle().window_days;
  for (int num_shards : {1, 2, 7}) {
    testing_util::ForEachThreadCount([&](const std::string& threads) {
      ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                          FleetOptionsFor(study, num_shards));
      std::vector<FleetPrediction> served = RunFleetServe(study, &fleet);
      const std::string tag = "shards=" + std::to_string(num_shards) +
                              " threads=" + threads;
      ExpectFleetBitwiseEqualToBatch(served, batch, window_days, tag);
      // No promotions ran: every row must report generation 0.
      for (const FleetPrediction& prediction : served) {
        for (uint64_t generation : prediction.generations) {
          ASSERT_EQ(generation, 0u) << tag;
        }
      }
    });
  }
}

TEST(ForecastFleet, PartitionMapWithEmptyShardStaysBitwiseEqual) {
  const Study& study = SharedStudy();
  const std::vector<std::vector<float>> batch =
      BatchScores(study, BaseBundle());
  // Shard 1 owns nothing: even sectors on shard 0, odd on shard 2.
  std::vector<int> table;
  for (int sector = 0; sector < study.num_sectors(); ++sector) {
    table.push_back(sector % 2 == 0 ? 0 : 2);
  }
  FleetOptions options = FleetOptionsFor(study, 3);
  options.shard_map = std::make_shared<PartitionShardMap>(table, 3);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()), options);
  EXPECT_EQ(fleet.num_shards(), 3);
  EXPECT_TRUE(fleet.shard_sectors(1).empty());
  EXPECT_EQ(fleet.service(1), nullptr);
  std::vector<FleetPrediction> served = RunFleetServe(study, &fleet);
  ExpectFleetBitwiseEqualToBatch(served, batch, BaseBundle().window_days,
                                 "partition-with-empty-shard");
  // The empty shard has no service to promote.
  serialize::Status status =
      fleet.PromoteBundle(1, serialize::CloneBundle(BaseBundle()));
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("no sectors"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlushInput: mid-stream flush of producer-side and pipeline buffers

TEST(ForecastFleet, FlushInputDeliversBufferedRowsToTheShardPipelines) {
  const Study& study = SharedStudy();
  const std::vector<std::vector<float>> batch =
      BatchScores(study, BaseBundle());
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  FleetOptions options = FleetOptionsFor(study, 2);
  // A block budget larger than the entire stream: no block ever fills,
  // so without an explicit flush every row stays buffered on the
  // producer side (fleet open blocks) or inside the pipelines' input
  // blocks — the shard ingestors see nothing.
  options.serving.row_block_rows =
      study.num_sectors() * study.network.num_hours() + 1;
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()), options);
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      ASSERT_EQ(fleet.Push(i, j, study.network.kpis.Slice(i, j),
                           study.network.kpis.dim2()),
                PushVerdict::kRouted);
    }
  }
  const uint64_t total_rows = static_cast<uint64_t>(hours) *
                              static_cast<uint64_t>(study.num_sectors());
  EXPECT_EQ(context.metrics().counter("stream/rows_accepted").Total(), 0u);
  fleet.FlushInput();
  // The flush request rides each ingress queue *behind* the buffered
  // rows, so the routers first push every admitted row into their
  // pipelines and then flush the pipelines' input blocks — every routed
  // row must reach a shard ingestor without Finish().
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  uint64_t accepted = 0;
  while ((accepted =
              context.metrics().counter("stream/rows_accepted").Total()) <
             total_rows &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(accepted, total_rows)
      << "FlushInput left rows buffered short of the ingestors";
  // The watermark-held serving tail drains at Finish; the whole stream
  // must be bit-for-bit the batch answers.
  fleet.Finish();
  ExpectFleetBitwiseEqualToBatch(fleet.TakePredictions(), batch,
                                 BaseBundle().window_days,
                                 "flush-delivers-buffered");
}

TEST(ForecastFleet, FlushInputDuringLiveStreamKeepsBitwiseEquality) {
  const Study& study = SharedStudy();
  const std::vector<std::vector<float>> batch =
      BatchScores(study, BaseBundle());
  FleetOptions options = FleetOptionsFor(study, 2);
  options.serving.row_block_rows = 8;  // many blocks in flight
  options.ingress_queue_blocks = 4;    // flushes land while routers drain
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()), options);
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      PushVerdict verdict;
      while ((verdict = fleet.Push(i, j, study.network.kpis.Slice(i, j),
                                   study.network.kpis.dim2())) ==
             PushVerdict::kRejectedOverload) {
        std::this_thread::yield();
      }
      ASSERT_EQ(verdict, PushVerdict::kRouted);
    }
    // Flush while the routers are actively draining: pins (under TSan)
    // that the flush request rides the ingress queue instead of touching
    // the pipelines from this thread, and that it never reorders or
    // drops rows already admitted.
    if (j % 7 == 0) fleet.FlushInput();
  }
  fleet.FlushInput();
  fleet.Finish();
  ExpectFleetBitwiseEqualToBatch(fleet.TakePredictions(), batch,
                                 BaseBundle().window_days, "flush-live");
}

// ---------------------------------------------------------------------------
// Fault injection / admission control

/// The fault harness: a service whose predict path can be remotely
/// stalled. Installed into one shard's pipeline through the
/// FleetOptions::shard_options_for_test seam, it parks that shard's
/// predict stage on a gate until Release() — the controlled "one replica
/// went dark" failure the admission-control contract is tested against.
class FaultInjectingService {
 public:
  void InstallOnShard(int target_shard, FleetOptions* options) {
    options->shard_options_for_test =
        [this, target_shard](int shard, ServingPipeline::Options* serving) {
          if (shard != target_shard) return;
          // Tighten the victim's internal queues so the stall reaches its
          // ingress (and sheds) within a few simulated days instead of
          // after thousands of buffered rows.
          serving->row_block_rows = 8;
          serving->row_queue_blocks = 1;
          serving->predict_queue_capacity = 1;
          serving->scored_queue_capacity = 1;
          serving->predict_fault_for_test = [this](int) { Wait(); };
        };
  }

  void Engage() {
    std::lock_guard<std::mutex> lock(mutex_);
    engaged_ = true;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      engaged_ = false;
    }
    released_.notify_all();
  }

 private:
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    released_.wait(lock, [&] { return !engaged_; });
  }

  std::mutex mutex_;
  std::condition_variable released_;
  bool engaged_ = false;
};

TEST(ForecastFleet, StalledShardShedsOnlyItsLoadOthersStayBitwiseEqual) {
  const Study& study = SharedStudy();
  const std::vector<std::vector<float>> batch =
      BatchScores(study, BaseBundle());
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);

  const int num_shards = 4;
  const int stalled = 2;
  FleetOptions options = FleetOptionsFor(study, num_shards);
  options.serving.row_block_rows = 8;
  options.ingress_queue_blocks = 32;
  FaultInjectingService fault;
  fault.Engage();
  fault.InstallOnShard(stalled, &options);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()), options);
  ASSERT_FALSE(fleet.shard_sectors(stalled).empty());

  const int hours = study.network.num_hours();
  const int release_hour = 24 * 10;  // well past the first shed rows
  uint64_t offered = 0;
  uint64_t routed = 0;
  uint64_t rejected = 0;
  for (int j = 0; j < hours; ++j) {
    if (j == release_hour) fault.Release();
    for (int i = 0; i < study.num_sectors(); ++i) {
      const PushVerdict verdict = fleet.Push(
          i, j, study.network.kpis.Slice(i, j), study.network.kpis.dim2());
      ++offered;
      if (verdict == PushVerdict::kRouted) {
        ++routed;
      } else {
        // Admission control may only ever shed the dark shard's rows.
        ASSERT_EQ(verdict, PushVerdict::kRejectedOverload);
        ASSERT_EQ(fleet.ShardOf(i), stalled)
            << "healthy shard shed a row at hour " << j;
        ++rejected;
      }
    }
    if (j % 4 == 3) {
      // Pace the producer against the healthy shards (a live feed's
      // natural cadence): never let a merely-descheduled router look like
      // an overloaded one. The stalled shard gets no such courtesy while
      // the fault is engaged — but once released it rejoins the pacing
      // set, so the tail of the stream is guaranteed to route and the
      // recovered shard's watermark reaches the final end day even on a
      // starved single-CPU host.
      for (int shard = 0; shard < num_shards; ++shard) {
        if (shard == stalled && j < release_hour) continue;
        while (fleet.IngressStats(shard).depth > 2) {
          std::this_thread::yield();
        }
      }
    }
  }
  fleet.Finish();

  // The stall engaged: the victim shed real load, and only the victim.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(offered, routed + rejected);
  EXPECT_EQ(context.metrics().counter("fleet/rows_offered").Total(), offered);
  EXPECT_EQ(context.metrics().counter("fleet/rows_routed").Total(), routed);
  EXPECT_EQ(
      context.metrics().counter("fleet/rows_rejected_overload").Total(),
      rejected);
  EXPECT_EQ(context.metrics().counter("fleet/rows_rejected_width").Total(),
            0u);
  uint64_t per_shard_routed = 0;
  for (int shard = 0; shard < num_shards; ++shard) {
    const uint64_t shard_rejected =
        context.metrics()
            .counter(obs::ShardMetricName(shard, "rows_rejected"))
            .Total();
    per_shard_routed += context.metrics()
                            .counter(obs::ShardMetricName(shard, "rows_routed"))
                            .Total();
    EXPECT_EQ(shard_rejected, shard == stalled ? rejected : 0u)
        << "shard " << shard;
  }
  EXPECT_EQ(per_shard_routed, routed);
  EXPECT_GE(fleet.IngressStats(stalled).high_water, 32);

  // Every batch completed (the victim catches up through gap fill after
  // release), and every healthy shard's sectors are bit-for-bit the batch
  // answers — shedding was surgical.
  std::vector<FleetPrediction> served = fleet.TakePredictions();
  ASSERT_EQ(served.size(), batch.size());
  for (size_t b = 0; b < served.size(); ++b) {
    for (int sector = 0; sector < study.num_sectors(); ++sector) {
      if (fleet.ShardOf(sector) == stalled) continue;
      EXPECT_TRUE(SameBits(served[b].scores[static_cast<size_t>(sector)],
                           batch[b][static_cast<size_t>(sector)]))
          << "end_day=" << served[b].end_day << " sector=" << sector;
    }
  }
}

TEST(ForecastFleet, AdmissionVerdictsForMalformedAndFinishedRows) {
  const Study& study = SharedStudy();
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                      FleetOptionsFor(study, 2));
  std::vector<float> bad_row(
      static_cast<size_t>(study.network.num_kpis() + 1), 0.0f);
  EXPECT_EQ(fleet.Push(0, 0, bad_row), PushVerdict::kRejectedWidth);
  // Out-of-range sectors are verdicts, not aborts: one bad row from an
  // external feed must not take the fleet down.
  EXPECT_EQ(fleet.Push(-1, 0, study.network.kpis.Slice(0, 0),
                       study.network.kpis.dim2()),
            PushVerdict::kRejectedSector);
  EXPECT_EQ(fleet.Push(study.num_sectors(), 0,
                       study.network.kpis.Slice(0, 0),
                       study.network.kpis.dim2()),
            PushVerdict::kRejectedSector);
  EXPECT_EQ(fleet.Push(0, 0, study.network.kpis.Slice(0, 0),
                       study.network.kpis.dim2()),
            PushVerdict::kRouted);
  fleet.Finish();
  EXPECT_EQ(fleet.Push(0, 1, study.network.kpis.Slice(0, 1),
                       study.network.kpis.dim2()),
            PushVerdict::kRejectedFinished);
  EXPECT_EQ(context.metrics().counter("fleet/rows_offered").Total(), 5u);
  EXPECT_EQ(context.metrics().counter("fleet/rows_routed").Total(), 1u);
  EXPECT_EQ(context.metrics().counter("fleet/rows_rejected_width").Total(),
            1u);
  EXPECT_EQ(
      context.metrics().counter("fleet/rows_rejected_sector").Total(), 2u);
  EXPECT_EQ(
      context.metrics().counter("fleet/rows_rejected_finished").Total(), 1u);
}

// ---------------------------------------------------------------------------
// RCU hot bundle swap

TEST(ForecastService, SwapLinearizabilityTortureAcrossThreads) {
  const Study& study = SharedStudy();
  // Distinct models, one per generation slot: the bundle installed at
  // generation g is variants[g % kVariants], so every prediction's
  // reported generation names exactly one expected score vector.
  constexpr int kVariants = 3;
  const int end_day = BaseBundle().window_days;
  std::vector<std::unique_ptr<serialize::ForecastBundle>> variants;
  std::vector<std::vector<float>> expected;
  for (int v = 0; v < kVariants; ++v) {
    variants.push_back(TrainVariant(study, 10 - 3 * v));
    ForecastService reference(serialize::CloneBundle(*variants.back()));
    expected.push_back(reference.PredictAtDay(study.features, end_day));
  }
  for (int v = 1; v < kVariants; ++v) {
    ASSERT_NE(std::memcmp(expected[0].data(),
                          expected[static_cast<size_t>(v)].data(),
                          expected[0].size() * sizeof(float)),
              0)
        << "variant " << v << " must score differently from variant 0";
  }

  constexpr int kPromotions = 1000;
  constexpr int kReaders = 4;
  constexpr int kMinReadsPerReader = 50;
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ForecastService service(serialize::CloneBundle(*variants[0]));
    std::atomic<bool> writer_done{false};
    std::thread writer([&] {
      for (int k = 1; k <= kPromotions; ++k) {
        uint64_t generation = 0;
        serialize::Status status = service.PromoteBundle(
            serialize::CloneBundle(
                *variants[static_cast<size_t>(k % kVariants)]),
            &generation);
        EXPECT_TRUE(status.ok) << status.error;
        EXPECT_EQ(generation, static_cast<uint64_t>(k));
      }
      writer_done.store(true, std::memory_order_release);
    });
    std::atomic<uint64_t> total_reads{0};
    std::atomic<uint64_t> torn_reads{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&] {
        std::set<uint64_t> generations_seen;
        uint64_t reads = 0;
        while (!writer_done.load(std::memory_order_acquire) ||
               reads < kMinReadsPerReader) {
          uint64_t generation = ~uint64_t{0};
          std::vector<float> scores =
              service.PredictAtDay(study.features, end_day, &generation);
          // Linearizability: the whole batch must be the exact output of
          // the one bundle its generation tag names — any mix of two
          // bundles (a torn read) cannot match either expected vector.
          const std::vector<float>& want =
              expected[static_cast<size_t>(generation % kVariants)];
          if (generation > kPromotions || scores.size() != want.size() ||
              std::memcmp(scores.data(), want.data(),
                          want.size() * sizeof(float)) != 0) {
            torn_reads.fetch_add(1, std::memory_order_relaxed);
          }
          generations_seen.insert(generation);
          ++reads;
        }
        total_reads.fetch_add(reads, std::memory_order_relaxed);
        EXPECT_GE(generations_seen.size(), 1u);
      });
    }
    writer.join();
    for (std::thread& reader : readers) reader.join();
    EXPECT_EQ(torn_reads.load(), 0u) << "threads=" << threads;
    EXPECT_EQ(service.generation(), static_cast<uint64_t>(kPromotions));
    EXPECT_GE(total_reads.load(),
              static_cast<uint64_t>(kReaders * kMinReadsPerReader));
  });
}

TEST(ForecastFleet, PromoteUnderLiveStreamTagsEveryRowWithItsGeneration) {
  const Study& study = SharedStudy();
  std::unique_ptr<serialize::ForecastBundle> next = TrainVariant(study, 6);
  const std::vector<std::vector<float>> batch_old =
      BatchScores(study, BaseBundle());
  const std::vector<std::vector<float>> batch_new = BatchScores(study, *next);

  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                      FleetOptionsFor(study, 2));
  const int hours = study.network.num_hours();
  const int promote_hour = hours / 2;
  for (int j = 0; j < hours; ++j) {
    if (j == promote_hour) {
      // Promote shard 0 mid-stream, under live load. Shard 1 keeps its
      // original bundle for the whole run.
      uint64_t generation = 0;
      serialize::Status status = fleet.PromoteBundle(
          0, serialize::CloneBundle(*next), &generation);
      ASSERT_TRUE(status.ok) << status.error;
      EXPECT_EQ(generation, 1u);
    }
    for (int i = 0; i < study.num_sectors(); ++i) {
      PushVerdict verdict;
      while ((verdict = fleet.Push(i, j, study.network.kpis.Slice(i, j),
                                   study.network.kpis.dim2())) ==
             PushVerdict::kRejectedOverload) {
        std::this_thread::yield();
      }
      ASSERT_EQ(verdict, PushVerdict::kRouted);
    }
  }
  fleet.Finish();
  std::vector<FleetPrediction> served = fleet.TakePredictions();
  ASSERT_EQ(served.size(), batch_old.size());

  uint64_t new_generation_rows = 0;
  uint64_t previous_shard0_generation = 0;
  for (size_t b = 0; b < served.size(); ++b) {
    uint64_t shard0_generation = ~uint64_t{0};
    for (int sector = 0; sector < study.num_sectors(); ++sector) {
      const size_t s = static_cast<size_t>(sector);
      const uint64_t generation = served[b].generations[s];
      if (fleet.ShardOf(sector) == 1) {
        // Never promoted: every shard-1 row stays generation 0.
        ASSERT_EQ(generation, 0u);
      } else {
        // A shard's batch is served by one bundle: every shard-0 row of
        // this end-day must carry the same tag (no torn batches)...
        if (shard0_generation == ~uint64_t{0}) {
          shard0_generation = generation;
        }
        ASSERT_EQ(generation, shard0_generation)
            << "end_day=" << served[b].end_day;
        if (generation == 1) ++new_generation_rows;
      }
      // ...and every row's score is the exact answer of the bundle its
      // tag names — the generation attributes each row to one model.
      const std::vector<std::vector<float>>& reference =
          generation == 0 ? batch_old : batch_new;
      ASSERT_TRUE(SameBits(served[b].scores[s], reference[b][s]))
          << "end_day=" << served[b].end_day << " sector=" << sector
          << " generation=" << generation;
    }
    // Generations only move forward along the served stream.
    ASSERT_GE(shard0_generation, previous_shard0_generation);
    previous_shard0_generation = shard0_generation;
  }
  // The promotion landed mid-stream: the new bundle actually served rows
  // (the tail of the stream is scored long after the swap).
  EXPECT_GT(new_generation_rows, 0u);
  EXPECT_EQ(served.back().generations[static_cast<size_t>(
                fleet.shard_sectors(0).front())],
            1u);
}

TEST(ForecastFleet, PromotionFailuresAreAtomicAndNamed) {
  const Study& study = SharedStudy();
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                      FleetOptionsFor(study, 2));
  // Out-of-range shard.
  serialize::Status status =
      fleet.PromoteBundle(9, serialize::CloneBundle(BaseBundle()));
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("out of range"), std::string::npos);
  // Serving-universe mismatch: a bundle with a different window cannot
  // serve the traffic this fleet was sized for.
  std::unique_ptr<serialize::ForecastBundle> wrong_window =
      serialize::CloneBundle(BaseBundle());
  wrong_window->window_days = BaseBundle().window_days + 1;
  status = fleet.PromoteBundle(0, std::move(wrong_window));
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.error.find("window_days"), std::string::npos);
  // Atomic: the shard still serves its original bundle at generation 0.
  ASSERT_NE(fleet.service(0), nullptr);
  EXPECT_EQ(fleet.service(0)->generation(), 0u);
  // And a healthy fleet-wide promotion still works afterwards.
  status = fleet.PromoteBundleAll(BaseBundle());
  EXPECT_TRUE(status.ok) << status.error;
  EXPECT_EQ(fleet.service(0)->generation(), 1u);
  EXPECT_EQ(fleet.service(1)->generation(), 1u);
  fleet.Finish();
}

// ---------------------------------------------------------------------------
// Fleet health aggregation

TEST(ForecastFleet, HealthAggregatesEveryShard) {
  const Study& study = SharedStudy();
  std::vector<int> table;
  for (int sector = 0; sector < study.num_sectors(); ++sector) {
    table.push_back(sector % 2 == 0 ? 0 : 2);
  }
  FleetOptions options = FleetOptionsFor(study, 3);
  options.shard_map = std::make_shared<PartitionShardMap>(table, 3);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()), options);
  ASSERT_TRUE(
      fleet.PromoteBundle(0, serialize::CloneBundle(BaseBundle())).ok);
  fleet::FleetHealth health = fleet.Health();
  ASSERT_EQ(health.shards.size(), 3u);
  int covered = 0;
  for (const fleet::ShardHealth& shard : health.shards) {
    covered += shard.num_sectors;
    EXPECT_EQ(shard.num_sectors,
              static_cast<int>(fleet.shard_sectors(shard.shard).size()));
  }
  EXPECT_EQ(covered, study.num_sectors());
  EXPECT_EQ(health.shards[0].generation, 1u);  // promoted above
  EXPECT_EQ(health.shards[1].generation, 0u);  // empty shard: no service
  EXPECT_EQ(health.shards[2].generation, 0u);
  // The bundle carries fingerprints, so the populated shards monitor.
  EXPECT_TRUE(health.shards[0].report.monitoring_enabled);
  EXPECT_FALSE(health.shards[1].report.monitoring_enabled);
  EXPECT_TRUE(health.shards[2].report.monitoring_enabled);
  EXPECT_EQ(health.overall, monitor::AlertState::kOk);
  fleet.Finish();
}

// ---------------------------------------------------------------------------
// Flight-recorder audit trail

TEST(ForecastFleet, HeterogeneousBundlesPerShardWithFlightAudit) {
  // Partition-style heterogeneous serving: two shards, each promoted to a
  // *different* bundle before the stream. Every row must be scored by its
  // own shard's model, and the flight recorder must hold both promotion
  // events with the right shard and generation tags.
  const Study& study = SharedStudy();
  std::unique_ptr<serialize::ForecastBundle> bundle_a =
      TrainVariant(study, 6);
  std::unique_ptr<serialize::ForecastBundle> bundle_b =
      TrainVariant(study, 4);
  const std::vector<std::vector<float>> batch_a =
      BatchScores(study, *bundle_a);
  const std::vector<std::vector<float>> batch_b =
      BatchScores(study, *bundle_b);
  ASSERT_NE(std::memcmp(batch_a[0].data(), batch_b[0].data(),
                        batch_a[0].size() * sizeof(float)),
            0)
      << "the two shard bundles must score differently";

  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                      FleetOptionsFor(study, 2));
  uint64_t generation = 0;
  ASSERT_TRUE(
      fleet.PromoteBundle(0, std::move(bundle_a), &generation).ok);
  EXPECT_EQ(generation, 1u);
  ASSERT_TRUE(
      fleet.PromoteBundle(1, std::move(bundle_b), &generation).ok);
  EXPECT_EQ(generation, 1u);

  std::vector<FleetPrediction> served = RunFleetServe(study, &fleet);
  ASSERT_EQ(served.size(), batch_a.size());
  for (size_t b = 0; b < served.size(); ++b) {
    for (int sector = 0; sector < study.num_sectors(); ++sector) {
      const size_t s = static_cast<size_t>(sector);
      ASSERT_EQ(served[b].generations[s], 1u);
      const std::vector<std::vector<float>>& reference =
          fleet.ShardOf(sector) == 0 ? batch_a : batch_b;
      ASSERT_TRUE(SameBits(served[b].scores[s], reference[b][s]))
          << "end_day=" << served[b].end_day << " sector=" << sector
          << " shard=" << fleet.ShardOf(sector);
    }
  }

  // The audit trail: one shard-tagged promotion event per shard, each
  // carrying the generation the predictions above reported.
  std::vector<bool> promoted(2, false);
  for (const obs::FlightEventRecord& event : context.flight().Snapshot()) {
    if (event.kind != obs::FlightEventKind::kPromotion) continue;
    if (event.a < 0) continue;  // the service-level record of the same swap
    ASSERT_GE(event.a, 0);
    ASSERT_LT(event.a, 2);
    EXPECT_FALSE(promoted[static_cast<size_t>(event.a)])
        << "duplicate promotion event for shard " << event.a;
    promoted[static_cast<size_t>(event.a)] = true;
    EXPECT_EQ(event.b, 1) << "shard " << event.a;
  }
  EXPECT_TRUE(promoted[0]);
  EXPECT_TRUE(promoted[1]);
}

TEST(ForecastFleet, SwapStormFlightLogReconcilesWithCounters) {
  // The flight-recorder torture from the issue: writers on every fleet
  // and pipeline thread (promotions, admission rejects, backpressure,
  // high-water marks) while a promoter hammers shard 0 with 1000 swaps
  // under live streaming load. With a ring big enough to retain
  // everything, the dumped log must reconcile exactly with the fleet/
  // counters, and the promotion events must cover exactly the generation
  // tags observable in predictions. Runs under TSan in CI.
  const Study& study = SharedStudy();
  constexpr int kPromotions = 1000;
  std::vector<std::unique_ptr<serialize::ForecastBundle>> variants;
  variants.push_back(TrainVariant(study, 10));
  variants.push_back(TrainVariant(study, 7));

  obs::PipelineContext context(/*flight_capacity=*/1 << 17);
  obs::PipelineContext::ScopedInstall install(&context);
  ForecastFleet fleet(serialize::CloneBundle(BaseBundle()),
                      FleetOptionsFor(study, 2));

  std::thread promoter([&] {
    for (int k = 1; k <= kPromotions; ++k) {
      uint64_t generation = 0;
      serialize::Status status = fleet.PromoteBundle(
          0,
          serialize::CloneBundle(*variants[static_cast<size_t>(k % 2)]),
          &generation);
      EXPECT_TRUE(status.ok) << status.error;
      EXPECT_EQ(generation, static_cast<uint64_t>(k));
    }
  });
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      PushVerdict verdict;
      while ((verdict = fleet.Push(i, j, study.network.kpis.Slice(i, j),
                                   study.network.kpis.dim2())) ==
             PushVerdict::kRejectedOverload) {
        std::this_thread::yield();
      }
      ASSERT_EQ(verdict, PushVerdict::kRouted);
    }
  }
  promoter.join();
  fleet.Finish();
  std::vector<FleetPrediction> served = fleet.TakePredictions();
  ASSERT_FALSE(served.empty());

  // Nothing may have been overwritten at this capacity, so every
  // reconciliation below is an exact equality, not a bound.
  ASSERT_EQ(context.flight().dropped(), 0u)
      << "flight ring too small for the storm; reconciliation would be "
         "lossy";
  uint64_t shard_promotions = 0;
  uint64_t service_promotions = 0;
  uint64_t admission_rejects = 0;
  std::set<int64_t> promoted_generations;
  uint64_t previous_sequence = 0;
  bool first_event = true;
  for (const obs::FlightEventRecord& event : context.flight().Snapshot()) {
    if (!first_event) {
      EXPECT_GT(event.sequence, previous_sequence);
    }
    previous_sequence = event.sequence;
    first_event = false;
    switch (event.kind) {
      case obs::FlightEventKind::kPromotion:
        if (event.a == 0) {
          ++shard_promotions;
          EXPECT_TRUE(promoted_generations.insert(event.b).second)
              << "generation " << event.b << " promoted twice";
        } else if (event.a == -1) {
          ++service_promotions;
        } else {
          ADD_FAILURE() << "promotion on unexpected shard " << event.a;
        }
        break;
      case obs::FlightEventKind::kAdmissionReject:
        ++admission_rejects;
        EXPECT_EQ(event.a,
                  static_cast<int64_t>(PushVerdict::kRejectedOverload));
        break;
      default:
        break;  // backpressure / high-water / health traffic is fine
    }
  }
  EXPECT_EQ(shard_promotions, static_cast<uint64_t>(kPromotions));
  EXPECT_EQ(service_promotions, static_cast<uint64_t>(kPromotions));
  for (int k = 1; k <= kPromotions; ++k) {
    EXPECT_TRUE(promoted_generations.count(k)) << "generation " << k;
  }
  // The log reconciles with the counters: one promotion counter tick and
  // one reject counter tick per corresponding flight event.
  EXPECT_EQ(context.metrics().counter("serve/promotions").Total(),
            static_cast<uint64_t>(kPromotions));
  EXPECT_EQ(
      context.metrics().counter("fleet/rows_rejected_overload").Total(),
      admission_rejects);
  EXPECT_EQ(context.metrics().counter("fleet/rows_offered").Total(),
            context.metrics().counter("fleet/rows_routed").Total() +
                admission_rejects);

  // Every generation tag observable in predictions names a promotion the
  // flight log recorded (generation 0 is the construction-time bundle).
  for (const FleetPrediction& batch : served) {
    for (size_t s = 0; s < batch.generations.size(); ++s) {
      const uint64_t generation = batch.generations[s];
      if (fleet.ShardOf(static_cast<int>(s)) != 0) {
        ASSERT_EQ(generation, 0u);
        continue;
      }
      ASSERT_LE(generation, static_cast<uint64_t>(kPromotions));
      if (generation > 0) {
        ASSERT_TRUE(
            promoted_generations.count(static_cast<int64_t>(generation)))
            << "prediction tagged with unrecorded generation "
            << generation;
      }
    }
  }
}

}  // namespace
}  // namespace hotspot
