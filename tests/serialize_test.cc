// Lockdown tests for the versioned model-serialization subsystem:
//   * round-trip determinism — Save → Load → predictions must be bitwise
//     identical to the in-memory model, at HOTSPOT_NUM_THREADS 1 and 4,
//     for the GBDT, the random forest, the single tree and the imputer;
//   * corruption fuzz — truncations, byte flips, wrong magic, future
//     format versions, kind mismatches and garbage payloads must all be
//     rejected with a clear error and no undefined behavior (this suite
//     runs under HOTSPOT_SANITIZE in CI);
//   * golden file — the checked-in fixed-seed bundle under tests/data/
//     must load and reproduce its checked-in predictions exactly.
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/forecast_service.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "nn/imputer.h"
#include "serialize/bundle.h"
#include "serialize/model_io.h"
#include "serialize_golden.h"
#include "thread_matrix.h"
#include "util/rng.h"

#ifndef HOTSPOT_TEST_DATA_DIR
#define HOTSPOT_TEST_DATA_DIR "."
#endif

namespace hotspot {
namespace {

// Thread sweeps below use the shared matrix from tests/thread_matrix.h
// (serial reference first; override with HOTSPOT_TEST_THREAD_MATRIX).

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hotspot_serialize_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

ml::Dataset MakeDataset(int n, int d, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.features = Matrix<float>(n, d);
  data.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float* row = data.features.Row(i);
    double signal = 0.0;
    for (int f = 0; f < d; ++f) {
      if (rng.Bernoulli(0.05)) {
        row[f] = MissingValue();
        continue;
      }
      row[f] = static_cast<float>(rng.Gaussian());
      if (f < 3) signal += row[f];
    }
    data.labels[static_cast<size_t>(i)] =
        signal + rng.Gaussian() > 0.5 ? 1.0f : 0.0f;
  }
  data.weights = ml::BalancedWeights(data.labels);
  return data;
}

std::vector<double> Predictions(const ml::BinaryClassifier& model,
                                const ml::Dataset& data) {
  std::vector<double> predictions;
  for (int i = 0; i < data.num_instances(); ++i) {
    predictions.push_back(model.PredictProba(data.features.Row(i)));
  }
  return predictions;
}

// ---------------------------------------------------------------------------
// Round-trip determinism
// ---------------------------------------------------------------------------

TEST_F(SerializeTest, GbdtRoundTripBitwiseIdentical) {
  ml::Dataset data = MakeDataset(300, 10, 99);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::GbdtConfig config;
    config.num_iterations = 20;
    config.num_leaves = 9;
    config.max_bins = 16;
    config.feature_fraction = 0.7;
    config.bagging_fraction = 0.8;
    config.seed = 5;
    ml::Gbdt model(config);
    model.Fit(data);

    ASSERT_TRUE(serialize::SaveGbdt(Path("model.hsb"), model).ok);
    std::unique_ptr<ml::Gbdt> loaded;
    serialize::Status status = serialize::LoadGbdt(Path("model.hsb"),
                                                   &loaded);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_NE(loaded, nullptr);

    // Exact (==) comparisons throughout: the contract is bitwise identity.
    EXPECT_EQ(Predictions(*loaded, data), Predictions(model, data))
        << threads << " threads";
    EXPECT_EQ(loaded->FeatureImportances(), model.FeatureImportances())
        << threads << " threads";
    EXPECT_EQ(loaded->training_loss(), model.training_loss())
        << threads << " threads";
    for (int i = 0; i < data.num_instances(); ++i) {
      EXPECT_EQ(loaded->PredictRaw(data.features.Row(i)),
                model.PredictRaw(data.features.Row(i)));
    }
  });
}

TEST_F(SerializeTest, RandomForestRoundTripBitwiseIdentical) {
  ml::Dataset data = MakeDataset(250, 8, 11);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::ForestConfig config;
    config.num_trees = 10;
    config.seed = 3;
    ml::RandomForest model(config);
    model.Fit(data);

    ASSERT_TRUE(serialize::SaveRandomForest(Path("forest.hsb"), model).ok);
    std::unique_ptr<ml::RandomForest> loaded;
    serialize::Status status =
        serialize::LoadRandomForest(Path("forest.hsb"), &loaded);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_NE(loaded, nullptr);

    EXPECT_EQ(Predictions(*loaded, data), Predictions(model, data))
        << threads << " threads";
    EXPECT_EQ(loaded->FeatureImportances(), model.FeatureImportances())
        << threads << " threads";
  });
}

TEST_F(SerializeTest, DecisionTreeRoundTripBitwiseIdentical) {
  ml::Dataset data = MakeDataset(200, 6, 23);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::TreeConfig config;
    config.seed = 9;
    ml::DecisionTree model(config);
    model.Fit(data);

    ASSERT_TRUE(serialize::SaveDecisionTree(Path("tree.hsb"), model).ok);
    std::unique_ptr<ml::DecisionTree> loaded;
    serialize::Status status =
        serialize::LoadDecisionTree(Path("tree.hsb"), &loaded);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_NE(loaded, nullptr);

    EXPECT_EQ(Predictions(*loaded, data), Predictions(model, data))
        << threads << " threads";
    EXPECT_EQ(loaded->FeatureImportances(), model.FeatureImportances())
        << threads << " threads";
  });
}

Tensor3<float> MakeKpis(int sectors, int hours, int kpis, uint64_t seed) {
  Tensor3<float> tensor(sectors, hours, kpis);
  Rng rng(seed);
  for (float& v : tensor.data()) {
    v = rng.Bernoulli(0.08) ? MissingValue()
                            : static_cast<float>(rng.Gaussian());
  }
  return tensor;
}

TEST_F(SerializeTest, ImputerRoundTripBitwiseIdentical) {
  Tensor3<float> kpis = MakeKpis(4, 24 * 7, 3, 61);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    nn::ImputerConfig config;
    config.slice_hours = 24;
    config.encoder_layers = 2;
    config.batch_size = 8;
    config.epochs = 2;
    config.seed = 41;
    nn::KpiImputer imputer(config);
    imputer.Fit(kpis);

    Tensor3<float> reference = kpis;
    imputer.Impute(&reference);

    ASSERT_TRUE(serialize::SaveImputer(Path("imputer.hsb"), imputer).ok);
    std::unique_ptr<nn::KpiImputer> loaded;
    serialize::Status status =
        serialize::LoadImputer(Path("imputer.hsb"), &loaded);
    ASSERT_TRUE(status.ok) << status.error;
    ASSERT_NE(loaded, nullptr);

    Tensor3<float> imputed = kpis;
    loaded->Impute(&imputed);
    EXPECT_EQ(imputed.data(), reference.data()) << threads << " threads";
  });
}

TEST_F(SerializeTest, ScoreConfigRoundTrip) {
  ScoreConfig config;
  config.indicators = {{1.5, 0.25, true}, {0.5, 0.9, false}, {2.0, 0.4,
                                                              true}};
  config.hot_threshold = 0.55;
  ASSERT_TRUE(serialize::SaveScoreConfig(Path("score.hsb"), config).ok);
  ScoreConfig loaded;
  serialize::Status status =
      serialize::LoadScoreConfig(Path("score.hsb"), &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  ASSERT_EQ(loaded.num_indicators(), config.num_indicators());
  for (int k = 0; k < config.num_indicators(); ++k) {
    EXPECT_EQ(loaded.indicators[static_cast<size_t>(k)].weight,
              config.indicators[static_cast<size_t>(k)].weight);
    EXPECT_EQ(loaded.indicators[static_cast<size_t>(k)].threshold,
              config.indicators[static_cast<size_t>(k)].threshold);
    EXPECT_EQ(loaded.indicators[static_cast<size_t>(k)].higher_is_worse,
              config.indicators[static_cast<size_t>(k)].higher_is_worse);
  }
  EXPECT_EQ(loaded.hot_threshold, config.hot_threshold);
}

TEST_F(SerializeTest, NormalizationRoundTrip) {
  Tensor3<float> kpis = MakeKpis(3, 48, 4, 77);
  serialize::NormalizationStats stats =
      serialize::NormalizationFromKpis(kpis);
  ASSERT_EQ(stats.means.size(), 4u);
  ASSERT_TRUE(serialize::SaveNormalization(Path("norm.hsb"), stats).ok);
  serialize::NormalizationStats loaded;
  serialize::Status status =
      serialize::LoadNormalization(Path("norm.hsb"), &loaded);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(loaded, stats);
}

// ---------------------------------------------------------------------------
// Bundle + warm-start serving
// ---------------------------------------------------------------------------

/// One shared golden study per process (building it is the expensive part).
const Study& SharedStudy() {
  static const Study* study = new Study(testing::BuildGoldenStudy());
  return *study;
}

TEST_F(SerializeTest, BundleServingMatchesForecasterRun) {
  const Study& study = SharedStudy();
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();

  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ForecastResult reference = forecaster.Run(config);

    std::unique_ptr<serialize::ForecastBundle> bundle =
        forecaster.TrainBundle(config);
    bundle->score = study.score_config;
    bundle->normalization =
        serialize::NormalizationFromKpis(study.network.kpis);
    ASSERT_TRUE(serialize::SaveBundle(Path("bundle.hsb"), *bundle).ok);

    std::unique_ptr<ForecastService> service;
    serialize::Status status =
        ForecastService::Load(Path("bundle.hsb"), &service);
    ASSERT_TRUE(status.ok) << status.error;

    // The served bundle must reproduce Run()'s predictions bit for bit:
    // same seed stream at train time, same feature path at serve time.
    EXPECT_EQ(service->PredictAtDay(study.features, config.t),
              reference.predictions)
        << threads << " threads";

    // The tensor-batch entry point sees the same windows and must agree.
    const int hours = 24 * config.w;
    const int start = 24 * (config.t - config.w);
    Tensor3<float> windows(study.num_sectors(), hours,
                           study.features.num_channels());
    for (int i = 0; i < study.num_sectors(); ++i) {
      for (int j = 0; j < hours; ++j) {
        const float* src = study.features.tensor().Slice(i, start + j);
        float* dst = windows.Slice(i, j);
        for (int k = 0; k < study.features.num_channels(); ++k) {
          dst[k] = src[k];
        }
      }
    }
    EXPECT_EQ(service->Predict(windows), reference.predictions)
        << threads << " threads";

    // Round-tripped metadata survives.
    EXPECT_EQ(service->bundle().score.hot_threshold,
              study.score_config.hot_threshold);
    EXPECT_EQ(service->bundle().window_days, config.w);
    EXPECT_EQ(service->bundle().horizon_days, config.h);
  });
}

TEST_F(SerializeTest, BundleRoundTripForEveryClassifierKind) {
  const Study& study = SharedStudy();
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();
  config.forest.num_trees = 5;

  for (ModelKind model : {ModelKind::kTree, ModelKind::kRfRaw,
                          ModelKind::kRfF1, ModelKind::kRfF2,
                          ModelKind::kGbdt}) {
    config.model = model;
    ForecastResult reference = forecaster.Run(config);
    std::unique_ptr<serialize::ForecastBundle> bundle =
        forecaster.TrainBundle(config);
    bundle->score = study.score_config;
    ASSERT_TRUE(serialize::SaveBundle(Path("kind.hsb"), *bundle).ok)
        << ModelName(model);

    std::unique_ptr<ForecastService> service;
    serialize::Status status =
        ForecastService::Load(Path("kind.hsb"), &service);
    ASSERT_TRUE(status.ok) << ModelName(model) << ": " << status.error;
    EXPECT_EQ(service->PredictAtDay(study.features, config.t),
              reference.predictions)
        << ModelName(model);
  }
}

// ---------------------------------------------------------------------------
// Corruption fuzz
// ---------------------------------------------------------------------------

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class SerializeFuzzTest : public SerializeTest {
 protected:
  void SetUp() override {
    SerializeTest::SetUp();
    ml::Dataset data = MakeDataset(120, 6, 7);
    ml::GbdtConfig config;
    config.num_iterations = 5;
    config.num_leaves = 4;
    config.max_bins = 8;
    ml::Gbdt model(config);
    model.Fit(data);
    ASSERT_TRUE(serialize::SaveGbdt(Path("valid.hsb"), model).ok);
    valid_ = ReadFile(Path("valid.hsb"));
    ASSERT_GT(valid_.size(), 32u);
  }

  /// Loads `bytes` as a GBDT artifact; returns the (expected) error text.
  std::string LoadCorrupt(const std::vector<uint8_t>& bytes) {
    WriteFile(Path("corrupt.hsb"), bytes);
    std::unique_ptr<ml::Gbdt> loaded;
    serialize::Status status =
        serialize::LoadGbdt(Path("corrupt.hsb"), &loaded);
    EXPECT_FALSE(status.ok) << "corrupt file accepted";
    EXPECT_FALSE(status.error.empty());
    EXPECT_EQ(loaded, nullptr) << "output written despite failure";
    return status.error;
  }

  std::vector<uint8_t> valid_;
};

TEST_F(SerializeFuzzTest, EveryTruncationRejected) {
  // Every header prefix, then strided points through the payload. None may
  // crash, index out of bounds, or be accepted.
  for (size_t len = 0; len < valid_.size();
       len = len < 40 ? len + 1 : len + 97) {
    std::vector<uint8_t> truncated(valid_.begin(),
                                   valid_.begin() +
                                       static_cast<ptrdiff_t>(len));
    LoadCorrupt(truncated);
  }
}

TEST_F(SerializeFuzzTest, EveryByteFlipRejected) {
  // The header is fully validated and the payload is checksummed, so any
  // single corrupted byte must surface as an error.
  for (size_t pos = 0; pos < valid_.size();
       pos = pos < 48 ? pos + 1 : pos + 131) {
    std::vector<uint8_t> flipped = valid_;
    flipped[pos] ^= 0xff;
    LoadCorrupt(flipped);
  }
}

TEST_F(SerializeFuzzTest, WrongMagicNamed) {
  std::vector<uint8_t> bad = valid_;
  bad[0] = 'X';
  EXPECT_NE(LoadCorrupt(bad).find("magic"), std::string::npos);
}

TEST_F(SerializeFuzzTest, FutureFormatVersionNamed) {
  std::vector<uint8_t> future = valid_;
  future[8] = 0x63;  // little-endian version 99
  future[9] = future[10] = future[11] = 0;
  std::string error = LoadCorrupt(future);
  EXPECT_NE(error.find("version 99"), std::string::npos) << error;
  EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST_F(SerializeFuzzTest, WrongArtifactKindNamed) {
  ScoreConfig config;
  config.indicators = {{1.0, 0.5, true}};
  ASSERT_TRUE(serialize::SaveScoreConfig(Path("score.hsb"), config).ok);
  std::unique_ptr<ml::Gbdt> loaded;
  serialize::Status status = serialize::LoadGbdt(Path("score.hsb"),
                                                 &loaded);
  ASSERT_FALSE(status.ok);
  EXPECT_NE(status.error.find("kind"), std::string::npos) << status.error;
  EXPECT_EQ(loaded, nullptr);
}

TEST_F(SerializeFuzzTest, TrailingGarbageRejected) {
  std::vector<uint8_t> padded = valid_;
  padded.insert(padded.end(), {0xde, 0xad, 0xbe, 0xef});
  std::string error = LoadCorrupt(padded);
  EXPECT_NE(error.find("mismatch"), std::string::npos) << error;
}

TEST_F(SerializeFuzzTest, ChecksummedGarbagePayloadRejected) {
  // A well-framed file whose payload is random bytes: the container checks
  // pass, so this exercises the structural validation of the decoder.
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    std::vector<uint8_t> payload(256 + static_cast<size_t>(seed) * 97);
    for (uint8_t& b : payload) {
      b = static_cast<uint8_t>(rng.NextUint64() & 0xff);
    }
    ASSERT_TRUE(serialize::WriteArtifactFile(Path("garbage.hsb"),
                                             serialize::ArtifactKind::kGbdt,
                                             payload)
                    .ok);
    std::unique_ptr<ml::Gbdt> loaded;
    serialize::Status status =
        serialize::LoadGbdt(Path("garbage.hsb"), &loaded);
    EXPECT_FALSE(status.ok) << "seed " << seed;
    EXPECT_EQ(loaded, nullptr);
  }
}

TEST_F(SerializeFuzzTest, CorruptBundleRejectedByService) {
  // valid.hsb is a GBDT artifact, not a bundle: the service must refuse it.
  std::unique_ptr<ForecastService> service;
  serialize::Status status =
      ForecastService::Load(Path("valid.hsb"), &service);
  EXPECT_FALSE(status.ok);
  EXPECT_EQ(service, nullptr);
}

TEST_F(SerializeFuzzTest, CorruptedBundlePromotionFailsAtomically) {
  // The hot-swap deployment path: an operator drops a new bundle file next
  // to a live ForecastService and promotes it. This fuzz drives that whole
  // path with damaged files — every corrupted or truncated candidate must
  // be refused with a real error, and the service must keep serving its
  // old bundle bit for bit, at its old generation, after every attempt.
  const Study& study = SharedStudy();
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  ASSERT_TRUE(serialize::SaveBundle(Path("swap.hsb"), *bundle).ok);
  const std::vector<uint8_t> good = ReadFile(Path("swap.hsb"));
  ASSERT_GT(good.size(), 64u);

  ForecastService service(serialize::CloneBundle(*bundle));
  const std::vector<float> before =
      service.PredictAtDay(study.features, config.t);

  // Loads `bytes` as a bundle and, if it somehow loads, promotes it —
  // exactly what a deployment agent would do. Returns the failure text.
  auto attempt_swap = [&](const std::vector<uint8_t>& bytes) {
    WriteFile(Path("swap_corrupt.hsb"), bytes);
    std::unique_ptr<serialize::ForecastBundle> next;
    serialize::Status status =
        serialize::LoadBundle(Path("swap_corrupt.hsb"), &next);
    if (status.ok) {
      status = service.PromoteBundle(std::move(next));
    } else {
      EXPECT_EQ(next, nullptr) << "output written despite failure";
    }
    EXPECT_FALSE(status.ok) << "corrupt bundle promoted";
    EXPECT_FALSE(status.error.empty());
    return status.error;
  };

  for (size_t len = 0; len < good.size();
       len = len < 40 ? len + 1 : len + 211) {
    attempt_swap(std::vector<uint8_t>(
        good.begin(), good.begin() + static_cast<ptrdiff_t>(len)));
  }
  for (size_t pos = 0; pos < good.size();
       pos = pos < 48 ? pos + 1 : pos + 307) {
    std::vector<uint8_t> flipped = good;
    flipped[pos] ^= 0xff;
    attempt_swap(flipped);
  }

  // A well-framed bundle from a newer binary: re-frame the valid payload
  // (fresh checksum) with its first section's version bumped to 99. The
  // refusal must name the section — the operator learns which part of the
  // bundle their serving binary is too old for, not just "bad file".
  {
    serialize::ByteWriter writer;
    serialize::EncodeBundle(*bundle, &writer);
    std::vector<uint8_t> payload = writer.TakeBytes();
    // Sectioned payload layout: 20-byte window-spec header, u32 section
    // count, then the first section's [id u32][version u32] at offset 24.
    payload[28] = 99;
    payload[29] = payload[30] = payload[31] = 0;
    ASSERT_TRUE(serialize::WriteArtifactFile(
                    Path("swap_future.hsb"),
                    serialize::ArtifactKind::kForecastBundle, payload)
                    .ok);
    std::unique_ptr<serialize::ForecastBundle> next;
    serialize::Status status =
        serialize::LoadBundle(Path("swap_future.hsb"), &next);
    ASSERT_FALSE(status.ok);
    EXPECT_EQ(next, nullptr);
    EXPECT_NE(status.error.find("section version 99"), std::string::npos)
        << status.error;
    EXPECT_NE(status.error.find("newer"), std::string::npos) << status.error;
  }

  // Atomicity, the whole point: nothing above moved the generation, and
  // the old bundle still serves the exact same bits.
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.PredictAtDay(study.features, config.t), before);

  // And the swap path itself still works: the undamaged file promotes.
  std::unique_ptr<serialize::ForecastBundle> fresh;
  ASSERT_TRUE(serialize::LoadBundle(Path("swap.hsb"), &fresh).ok);
  uint64_t generation = 0;
  ASSERT_TRUE(service.PromoteBundle(std::move(fresh), &generation).ok);
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(service.PredictAtDay(study.features, config.t), before);
}

// ---------------------------------------------------------------------------
// Golden file
// ---------------------------------------------------------------------------

TEST(SerializeGolden, CheckedInBundleReproducesGoldenPredictions) {
  const std::string dir = HOTSPOT_TEST_DATA_DIR;

  std::vector<float> golden;
  ASSERT_TRUE(testing::ReadGoldenPredictions(
      dir + "/" + testing::kGoldenPredictionsFile, &golden))
      << "missing fixture; regenerate with make_serialize_golden";

  std::unique_ptr<ForecastService> service;
  serialize::Status status = ForecastService::Load(
      dir + "/" + testing::kGoldenBundleFile, &service);
  ASSERT_TRUE(status.ok) << status.error;

  // The current-format fixture carries monitoring fingerprints, so the
  // service comes up with the online monitor armed.
  EXPECT_NE(service->bundle().fingerprints, nullptr);
  EXPECT_TRUE(service->monitoring_enabled());

  const Study& study = SharedStudy();
  ForecastConfig config = testing::GoldenForecastConfig();
  // Exact equality: the fixture stores hex floats, which carry the full
  // bit pattern through text.
  EXPECT_EQ(service->PredictAtDay(study.features, config.t), golden);

  // And the bundle's training is reproducible from source: retraining at
  // the golden seed yields the same predictions as the checked-in file.
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  EXPECT_EQ(forecaster.Run(config).predictions, golden);
}

TEST(SerializeGolden, FormatV1BundleServesWithMonitoringDisabled) {
  // The checked-in v1 fixture (flat layout, no fingerprint section) must
  // keep loading forever, produce the same golden predictions, and serve
  // with monitoring gracefully off — old artifacts never break, they just
  // don't get the new telemetry.
  const std::string dir = HOTSPOT_TEST_DATA_DIR;
  std::vector<float> golden;
  ASSERT_TRUE(testing::ReadGoldenPredictions(
      dir + "/" + testing::kGoldenPredictionsFile, &golden));

  std::unique_ptr<ForecastService> service;
  serialize::Status status =
      ForecastService::Load(dir + "/golden_bundle_v1.hsb", &service);
  ASSERT_TRUE(status.ok) << status.error;
  EXPECT_EQ(service->bundle().fingerprints, nullptr);
  EXPECT_FALSE(service->monitoring_enabled());

  const Study& study = SharedStudy();
  ForecastConfig config = testing::GoldenForecastConfig();
  EXPECT_EQ(service->PredictAtDay(study.features, config.t), golden);
  EXPECT_FALSE(service->Health().monitoring_enabled);
}

// ---------------------------------------------------------------------------
// Per-section version skew
// ---------------------------------------------------------------------------

uint32_t ReadU32At(const std::vector<uint8_t>& bytes, size_t pos) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(bytes[pos + static_cast<size_t>(i)])
             << (8 * i);
  }
  return value;
}

uint64_t ReadU64At(const std::vector<uint8_t>& bytes, size_t pos) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(bytes[pos + static_cast<size_t>(i)])
             << (8 * i);
  }
  return value;
}

void WriteU32At(std::vector<uint8_t>* bytes, size_t pos, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(value >> (8 * i));
  }
}

class SerializeSectionTest : public SerializeTest {
 protected:
  void SetUp() override {
    SerializeTest::SetUp();
    // Extract the sectioned payload of a freshly trained bundle.
    const Study& study = SharedStudy();
    Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
    std::unique_ptr<serialize::ForecastBundle> bundle =
        forecaster.TrainBundle(testing::GoldenForecastConfig());
    bundle->score = study.score_config;
    ASSERT_TRUE(serialize::SaveBundle(Path("bundle.hsb"), *bundle).ok);
    serialize::Status status = serialize::ReadArtifactFile(
        Path("bundle.hsb"), serialize::ArtifactKind::kForecastBundle,
        &payload_);
    ASSERT_TRUE(status.ok) << status.error;
  }

  /// Byte offset of the (id, version, size) frame of the section with
  /// `target_id` inside the payload, or npos. Layout: 20 header bytes,
  /// u32 section count, then (u32 id, u32 version, u64 size, body)*.
  size_t SectionOffset(uint32_t target_id) const {
    size_t off = 20;
    uint32_t count = ReadU32At(payload_, off);
    off += 4;
    for (uint32_t s = 0; s < count; ++s) {
      if (ReadU32At(payload_, off) == target_id) return off;
      off += 16 + ReadU64At(payload_, off + 8);
    }
    return std::string::npos;
  }

  /// Re-frames the (possibly patched) payload with a fresh checksum and
  /// loads it as a bundle, returning the load error ("" on success).
  std::string LoadPatched() {
    EXPECT_TRUE(serialize::WriteArtifactFile(
                    Path("patched.hsb"),
                    serialize::ArtifactKind::kForecastBundle, payload_)
                    .ok);
    std::unique_ptr<serialize::ForecastBundle> bundle;
    serialize::Status status =
        serialize::LoadBundle(Path("patched.hsb"), &bundle);
    if (status.ok) {
      EXPECT_NE(bundle, nullptr);
      return "";
    }
    EXPECT_EQ(bundle, nullptr);
    return status.error;
  }

  std::vector<uint8_t> payload_;
};

TEST_F(SerializeSectionTest, UnpatchedPayloadHasAllFiveSections) {
  for (uint32_t id : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_NE(SectionOffset(id), std::string::npos) << "section " << id;
  }
  EXPECT_EQ(LoadPatched(), "");
}

TEST_F(SerializeSectionTest, SkewErrorNamesTheExactSection) {
  // A future version of each section in turn: the error must say which
  // section is unreadable, not just "bad file".
  const struct {
    uint32_t id;
    const char* name;
  } kSections[] = {{1, "score_config"},
                   {2, "normalization"},
                   {3, "classifier"},
                   {4, "fingerprints"},
                   {5, "flat_forest"}};
  for (const auto& section : kSections) {
    std::vector<uint8_t> pristine = payload_;
    size_t off = SectionOffset(section.id);
    ASSERT_NE(off, std::string::npos) << section.name;
    WriteU32At(&payload_, off + 4, 99);  // the section's version field
    std::string error = LoadPatched();
    EXPECT_NE(error.find(std::string("'") + section.name + "'"),
              std::string::npos)
        << error;
    EXPECT_NE(error.find("version 99"), std::string::npos) << error;
    EXPECT_NE(error.find("newer"), std::string::npos) << error;
    payload_ = pristine;
  }
}

TEST_F(SerializeSectionTest, UnknownSectionIdIsRejectedByNumber) {
  size_t off = SectionOffset(4);
  ASSERT_NE(off, std::string::npos);
  WriteU32At(&payload_, off, 77);  // an id this binary has never heard of
  std::string error = LoadPatched();
  EXPECT_NE(error.find("section id 77"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Flat-forest section fuzz: the SIMD engine's serialized form is a derived
// artifact, so ANY corruption of its section — truncation, byte flip, bad
// child offset — must fail the load with an error naming 'flat_forest'
// (never a generic parse error, never an out-of-bounds read; the latter is
// what the HOTSPOT_SANITIZE builds of this suite pin).
// ---------------------------------------------------------------------------

class FlatSectionFuzzTest : public SerializeSectionTest {
 protected:
  static constexpr uint32_t kFlatId = 5;

  void SetUp() override {
    SerializeTest::SetUp();
    // The golden study's hot threshold yields an all-leaf model (no
    // positive labels to split on), which would leave the node-graph
    // checks unexercised. A lower threshold gives the same pipeline a
    // classifier with real internal nodes. The payload is built once and
    // cached — the study build dominates this suite's runtime.
    static const std::vector<uint8_t>* const cached = [] {
      StudyOptions options;
      options.hot_threshold_override = 0.5;
      Study study = BuildStudy(testing::GoldenNetworkConfig(), options);
      Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
      std::unique_ptr<serialize::ForecastBundle> bundle =
          forecaster.TrainBundle(testing::GoldenForecastConfig());
      bundle->score = study.score_config;
      serialize::ByteWriter writer;
      serialize::EncodeBundle(*bundle, &writer);
      return new std::vector<uint8_t>(writer.bytes());
    }();
    payload_ = *cached;
  }

  /// Offset of the first body byte of the flat section.
  size_t BodyOffset() const {
    size_t off = SectionOffset(kFlatId);
    EXPECT_NE(off, std::string::npos);
    return off + 16;
  }
  size_t BodySize() const {
    return static_cast<size_t>(ReadU64At(payload_, SectionOffset(kFlatId) + 8));
  }
};

TEST_F(FlatSectionFuzzTest, EveryBodyByteFlipNamesTheFlatSection) {
  const std::vector<uint8_t> pristine = payload_;
  const size_t body = BodyOffset();
  const size_t size = BodySize();
  ASSERT_GT(size, 0u);
  // Exhaustive single-byte corruption of the whole section body: XOR-0xFF
  // plus a single-bit flip at every position. Either the structural
  // validation rejects the section or the recompile-and-byte-compare
  // against the classifier does; both name flat_forest.
  int checked = 0;
  for (size_t pos = 0; pos < size; ++pos) {
    for (uint8_t mask : {uint8_t{0xFF}, uint8_t{0x01}}) {
      payload_ = pristine;
      payload_[body + pos] ^= mask;
      std::string error = LoadPatched();
      ASSERT_FALSE(error.empty())
          << "flip at body byte " << pos << " mask " << int(mask)
          << " loaded successfully";
      ASSERT_NE(error.find("flat_forest"), std::string::npos)
          << "flip at body byte " << pos << " mask " << int(mask)
          << " produced an unattributed error: " << error;
      ++checked;
    }
  }
  EXPECT_GE(checked, 2 * static_cast<int>(size));
  payload_ = pristine;
}

TEST_F(FlatSectionFuzzTest, TruncationsInsideTheFlatSectionAreNamed) {
  const std::vector<uint8_t> pristine = payload_;
  const size_t body = BodyOffset();
  const size_t size = BodySize();
  // The flat section is written last, so cutting the payload anywhere
  // inside its body makes the declared section size exceed what remains.
  for (size_t keep : {size_t{0}, size_t{1}, size / 2, size - 1}) {
    payload_ = pristine;
    payload_.resize(body + keep);
    std::string error = LoadPatched();
    ASSERT_FALSE(error.empty()) << "keep=" << keep;
    EXPECT_NE(error.find("flat_forest"), std::string::npos)
        << "keep=" << keep << ": " << error;
    EXPECT_NE(error.find("exceeds payload"), std::string::npos)
        << "keep=" << keep << ": " << error;
  }
  // Shrinking the declared size instead bounds the sub-reader short of
  // the real contents: the decode runs out mid-field and the error still
  // names the section.
  payload_ = pristine;
  const size_t frame = SectionOffset(kFlatId);
  for (uint64_t declared : {uint64_t{0}, uint64_t{24}, uint64_t{size / 2}}) {
    payload_ = pristine;
    for (int i = 0; i < 8; ++i) {
      payload_[frame + 8 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(declared >> (8 * i));
    }
    // Keep the overall payload well-formed by also cutting the body to
    // the declared size (the section is last).
    payload_.resize(frame + 16 + static_cast<size_t>(declared));
    std::string error = LoadPatched();
    ASSERT_FALSE(error.empty()) << "declared=" << declared;
    EXPECT_NE(error.find("flat_forest"), std::string::npos)
        << "declared=" << declared << ": " << error;
  }
  payload_ = pristine;
}

TEST_F(FlatSectionFuzzTest, ChildOffsetOutOfRangeIsStructurallyRejected) {
  const std::vector<uint8_t> pristine = payload_;
  const size_t body = BodyOffset();
  // Body layout: u32 aggregation, i32 num_features, f64 base_score,
  // u64 num_nodes, then 25-byte nodes (i32 feature, f32 threshold,
  // u8 miss_left, i32 left, i32 right, f64 leaf_value).
  const uint64_t num_nodes = ReadU64At(payload_, body + 16);
  ASSERT_GT(num_nodes, 0u);
  const size_t nodes = body + 24;
  // Find the first internal node (feature >= 0).
  size_t internal = std::string::npos;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    const size_t node = nodes + static_cast<size_t>(i) * 25;
    if (static_cast<int32_t>(ReadU32At(payload_, node)) >= 0) {
      internal = node;
      break;
    }
  }
  ASSERT_NE(internal, std::string::npos) << "model has no internal nodes";
  const struct {
    size_t field_offset;  // within the node record
    uint32_t value;
    const char* what;
  } kPatches[] = {
      {9, 0x7FFFFFFFu, "left child past the node array"},
      {13, 0x7FFFFFFFu, "right child past the node array"},
      {9, 0u, "left child pointing backwards"},
      {13, static_cast<uint32_t>(-1), "negative right child"},
  };
  for (const auto& patch : kPatches) {
    payload_ = pristine;
    WriteU32At(&payload_, internal + patch.field_offset, patch.value);
    std::string error = LoadPatched();
    ASSERT_FALSE(error.empty()) << patch.what;
    EXPECT_NE(error.find("flat_forest"), std::string::npos)
        << patch.what << ": " << error;
    EXPECT_NE(error.find("node graph invalid"), std::string::npos)
        << patch.what << ": " << error;
  }
  payload_ = pristine;
}

TEST_F(FlatSectionFuzzTest, LeafValueFlipIsCaughtByTheClassifierCheck) {
  // A flipped leaf payload survives every structural check — only the
  // recompile-and-byte-compare against the shipped classifier can catch
  // it. Find a node with feature == -1 and flip a bit of its leaf value.
  const size_t body = BodyOffset();
  const uint64_t num_nodes = ReadU64At(payload_, body + 16);
  const size_t nodes = body + 24;
  size_t leaf = std::string::npos;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    const size_t node = nodes + static_cast<size_t>(i) * 25;
    if (static_cast<int32_t>(ReadU32At(payload_, node)) == -1) {
      leaf = node;
      break;
    }
  }
  ASSERT_NE(leaf, std::string::npos);
  payload_[leaf + 17] ^= 0x01;  // low mantissa bit of the f64 leaf value
  std::string error = LoadPatched();
  ASSERT_FALSE(error.empty());
  EXPECT_NE(error.find("does not match its classifier"), std::string::npos)
      << error;
}

TEST_F(SerializeSectionTest, MissingRequiredSectionIsNamed) {
  // Truncate the section table to just the first (score_config) section:
  // the loader must name a missing required section rather than serve a
  // half-initialized bundle.
  size_t first = SectionOffset(1);
  size_t second = SectionOffset(2);
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  payload_.resize(second);
  WriteU32At(&payload_, 20, 1);  // section count
  std::string error = LoadPatched();
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
  EXPECT_NE(error.find("normalization"), std::string::npos) << error;
}

}  // namespace
}  // namespace hotspot
