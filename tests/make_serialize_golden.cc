// Regenerates the golden serving fixture under tests/data/: a tiny
// fixed-seed GBDT ForecastBundle plus the hex-float predictions it must
// produce on the golden study. Run after any intentional change to the
// binary format or to the training pipeline's numerics, then commit the
// refreshed files:
//
//   ./make_serialize_golden [output_dir]   (default: HOTSPOT_TEST_DATA_DIR)
#include <cstdio>
#include <string>

#include "core/forecast_service.h"
#include "serialize/bundle.h"
#include "serialize_golden.h"

#ifndef HOTSPOT_TEST_DATA_DIR
#define HOTSPOT_TEST_DATA_DIR "."
#endif

int main(int argc, char** argv) {
  using namespace hotspot;
  std::string dir = argc > 1 ? argv[1] : HOTSPOT_TEST_DATA_DIR;

  Study study = testing::BuildGoldenStudy();
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();

  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  bundle->normalization =
      serialize::NormalizationFromKpis(study.network.kpis);

  std::string bundle_path = dir + "/" + testing::kGoldenBundleFile;
  serialize::Status status = serialize::SaveBundle(bundle_path, *bundle);
  if (!status.ok) {
    std::fprintf(stderr, "save failed: %s\n", status.error.c_str());
    return 1;
  }

  ForecastService service(std::move(bundle));
  std::vector<float> predictions =
      service.PredictAtDay(study.features, config.t);
  std::string predictions_path =
      dir + "/" + testing::kGoldenPredictionsFile;
  if (!testing::WriteGoldenPredictions(predictions_path, predictions)) {
    std::fprintf(stderr, "cannot write %s\n", predictions_path.c_str());
    return 1;
  }

  std::printf("wrote %s and %s (%zu predictions)\n", bundle_path.c_str(),
              predictions_path.c_str(), predictions.size());
  return 0;
}
