#include <cmath>

#include "gtest/gtest.h"
#include "core/baselines.h"
#include "core/config.h"
#include "core/labels.h"
#include "core/score.h"
#include "core/sector_filter.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot {
namespace {

ScoreConfig TwoIndicatorConfig() {
  ScoreConfig config;
  // Indicator 0: weight 3, hot when value > 0.5 (higher worse).
  // Indicator 1: weight 1, hot when value < 0.2 (lower worse).
  config.indicators = {{3.0, 0.5, true}, {1.0, 0.2, false}};
  config.hot_threshold = 0.6;
  return config;
}

TEST(ScoreConfig, TotalWeight) {
  EXPECT_DOUBLE_EQ(TwoIndicatorConfig().TotalWeight(), 4.0);
}

TEST(ScoreConfig, FromCatalogMirrorsOmegaEpsilon) {
  simnet::KpiCatalog catalog = simnet::KpiCatalog::Default();
  ScoreConfig config = ScoreConfigFromCatalog(catalog);
  ASSERT_EQ(config.num_indicators(), catalog.size());
  for (int k = 0; k < catalog.size(); ++k) {
    EXPECT_DOUBLE_EQ(config.indicators[static_cast<size_t>(k)].weight,
                     catalog.spec(k).score_weight);
    EXPECT_DOUBLE_EQ(config.indicators[static_cast<size_t>(k)].threshold,
                     catalog.spec(k).score_threshold);
    EXPECT_EQ(config.indicators[static_cast<size_t>(k)].higher_is_worse,
              catalog.spec(k).higher_is_worse);
  }
}

TEST(Score, WeightedThresholdedSum) {
  ScoreConfig config = TwoIndicatorConfig();
  Tensor3<float> kpis(1, 4, 2);
  // Hour 0: neither trips -> 0.
  kpis(0, 0, 0) = 0.4f;
  kpis(0, 0, 1) = 0.5f;
  // Hour 1: indicator 0 trips -> 3/4.
  kpis(0, 1, 0) = 0.9f;
  kpis(0, 1, 1) = 0.5f;
  // Hour 2: indicator 1 trips (lower is worse) -> 1/4.
  kpis(0, 2, 0) = 0.4f;
  kpis(0, 2, 1) = 0.1f;
  // Hour 3: both trip -> 1.
  kpis(0, 3, 0) = 0.9f;
  kpis(0, 3, 1) = 0.1f;
  Matrix<float> score = ComputeHourlyScore(kpis, config);
  EXPECT_FLOAT_EQ(score(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(score(0, 1), 0.75f);
  EXPECT_FLOAT_EQ(score(0, 2), 0.25f);
  EXPECT_FLOAT_EQ(score(0, 3), 1.0f);
}

TEST(Score, MissingIndicatorsRenormalize) {
  ScoreConfig config = TwoIndicatorConfig();
  Tensor3<float> kpis(1, 2, 2);
  // Hour 0: indicator 0 missing, indicator 1 trips -> 1/1.
  kpis(0, 0, 0) = MissingValue();
  kpis(0, 0, 1) = 0.1f;
  // Hour 1: everything missing -> NaN.
  kpis(0, 1, 0) = MissingValue();
  kpis(0, 1, 1) = MissingValue();
  Matrix<float> score = ComputeHourlyScore(kpis, config);
  EXPECT_FLOAT_EQ(score(0, 0), 1.0f);
  EXPECT_TRUE(IsMissing(score(0, 1)));
}

TEST(Score, ExactThresholdDoesNotTrip) {
  ScoreConfig config = TwoIndicatorConfig();
  Tensor3<float> kpis(1, 1, 2);
  kpis(0, 0, 0) = 0.5f;  // exactly at threshold: not strictly above
  kpis(0, 0, 1) = 0.2f;  // exactly at threshold: not strictly below
  Matrix<float> score = ComputeHourlyScore(kpis, config);
  EXPECT_FLOAT_EQ(score(0, 0), 0.0f);
}

TEST(Score, ComputeScoresShapes) {
  ScoreConfig config = TwoIndicatorConfig();
  Tensor3<float> kpis(3, 2 * kHoursPerWeek, 2, 0.0f);
  ScoreSet scores = ComputeScores(kpis, config);
  EXPECT_EQ(scores.hourly.cols(), 2 * kHoursPerWeek);
  EXPECT_EQ(scores.daily.cols(), 14);
  EXPECT_EQ(scores.weekly.cols(), 2);
}

TEST(Labels, HeavisideOfScore) {
  Matrix<float> scores(1, 4);
  scores(0, 0) = 0.59f;
  scores(0, 1) = 0.60f;
  scores(0, 2) = 0.61f;
  scores(0, 3) = MissingValue();
  Matrix<float> labels = HotSpotLabels(scores, 0.6);
  EXPECT_FLOAT_EQ(labels(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(labels(0, 1), 1.0f);  // H(0) = 1: at threshold is hot
  EXPECT_FLOAT_EQ(labels(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(labels(0, 3), 0.0f);  // NaN -> not hot
}

TEST(Labels, PositiveRate) {
  Matrix<float> labels(2, 2, 0.0f);
  labels(0, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(PositiveRate(labels), 0.25);
}

TEST(BecomeLabels, TransitionDayIsMarked) {
  // One sector, 21 days: cold for 10 days, hot from day 10 on.
  Matrix<float> daily(1, 21, 0.1f);
  for (int j = 10; j < 21; ++j) daily(0, j) = 0.9f;
  Matrix<float> become = BecomeHotSpotLabels(daily, 0.6);
  // Day 9: week-before mean (days 3..9) = 0.1 < ε; week-after (10..16)
  // = 0.9 ≥ ε; day 9 cold, day 10 hot -> positive.
  EXPECT_FLOAT_EQ(become(0, 9), 1.0f);
  // No other day qualifies.
  for (int j = 0; j < 21; ++j) {
    if (j != 9) EXPECT_FLOAT_EQ(become(0, j), 0.0f) << "day " << j;
  }
}

TEST(BecomeLabels, AlreadyHotSectorNeverBecomes) {
  Matrix<float> daily(1, 21, 0.9f);
  Matrix<float> become = BecomeHotSpotLabels(daily, 0.6);
  for (int j = 0; j < 21; ++j) EXPECT_FLOAT_EQ(become(0, j), 0.0f);
}

TEST(BecomeLabels, SingleHotDayDoesNotBecome) {
  // A one-day spike: the following week's mean stays below ε.
  Matrix<float> daily(1, 21, 0.1f);
  daily(0, 10) = 0.9f;
  Matrix<float> become = BecomeHotSpotLabels(daily, 0.6);
  for (int j = 0; j < 21; ++j) EXPECT_FLOAT_EQ(become(0, j), 0.0f);
}

TEST(BecomeLabels, NoLookaheadPastEnd) {
  Matrix<float> daily(1, 8, 0.1f);
  daily(0, 7) = 0.9f;
  Matrix<float> become = BecomeHotSpotLabels(daily, 0.6);
  // Day 7 transitions but there is no full week after day 0..; with only
  // 8 days, j + 7 < 8 never holds for j >= 1 and j=0 lacks the hot week.
  for (int j = 0; j < 8; ++j) EXPECT_FLOAT_EQ(become(0, j), 0.0f);
}

TEST(SectorFilter, DiscardsSectorsWithMissingWeek) {
  const int hours = 2 * kHoursPerWeek;
  Tensor3<float> kpis(3, hours, 2, 1.0f);
  // Sector 1: 60 % of the second week missing -> discard.
  Rng rng(1);
  for (int j = kHoursPerWeek; j < hours; ++j) {
    for (int k = 0; k < 2; ++k) {
      if (rng.Bernoulli(0.6)) kpis(1, j, k) = MissingValue();
    }
  }
  // Sector 2: 30 % missing everywhere -> keep.
  for (int j = 0; j < hours; ++j) {
    for (int k = 0; k < 2; ++k) {
      if (rng.Bernoulli(0.3)) kpis(2, j, k) = MissingValue();
    }
  }
  std::vector<bool> keep = SectorFilterMask(kpis);
  EXPECT_TRUE(keep[0]);
  EXPECT_FALSE(keep[1]);
  EXPECT_TRUE(keep[2]);
}

TEST(SectorFilter, SlidingWindowCatchesStraddlingGap) {
  // A 60 %-missing stretch straddling the week boundary must still be
  // caught by the sliding window.
  const int hours = 2 * kHoursPerWeek;
  Tensor3<float> kpis(1, hours, 1, 1.0f);
  int start = kHoursPerWeek / 2;
  for (int j = start; j < start + kHoursPerWeek * 6 / 10 + 2; ++j) {
    kpis(0, j, 0) = MissingValue();
  }
  std::vector<bool> keep = SectorFilterMask(kpis);
  EXPECT_FALSE(keep[0]);
}

TEST(SectorFilter, ShortSeriesKeepsEverything) {
  Tensor3<float> kpis(2, 24, 1, MissingValue());
  std::vector<bool> keep = SectorFilterMask(kpis);
  EXPECT_TRUE(keep[0]);
  EXPECT_TRUE(keep[1]);
}

TEST(SectorFilter, FilterSectorsCopiesSurvivors) {
  Tensor3<float> kpis(3, 2, 1);
  for (int i = 0; i < 3; ++i) kpis(i, 0, 0) = static_cast<float>(i);
  Tensor3<float> filtered = FilterSectors(kpis, {true, false, true});
  EXPECT_EQ(filtered.dim0(), 2);
  EXPECT_FLOAT_EQ(filtered(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(filtered(1, 0, 0), 2.0f);
}

TEST(SectorFilter, FilterRowsCopiesSurvivors) {
  Matrix<float> m(3, 2);
  for (int i = 0; i < 3; ++i) m(i, 1) = static_cast<float>(10 * i);
  Matrix<float> filtered = FilterRows(m, {false, true, true});
  EXPECT_EQ(filtered.rows(), 2);
  EXPECT_FLOAT_EQ(filtered(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(filtered(1, 1), 20.0f);
}

TEST(Baselines, RandomInUnitInterval) {
  Rng rng(2);
  std::vector<float> predictions = RandomBaseline(100, &rng);
  ASSERT_EQ(predictions.size(), 100u);
  for (float p : predictions) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(Baselines, PersistCopiesCurrentLabel) {
  Matrix<float> labels(2, 5, 0.0f);
  labels(0, 3) = 1.0f;
  std::vector<float> predictions = PersistBaseline(labels, 3);
  EXPECT_FLOAT_EQ(predictions[0], 1.0f);
  EXPECT_FLOAT_EQ(predictions[1], 0.0f);
}

TEST(Baselines, AverageIsTrailingMean) {
  Matrix<float> scores(1, 6);
  for (int j = 0; j < 6; ++j) scores(0, j) = static_cast<float>(j);
  // µ(t=5, w=3): mean of scores at days 3,4,5 = 4.
  std::vector<float> predictions = AverageBaseline(scores, 5, 3);
  EXPECT_FLOAT_EQ(predictions[0], 4.0f);
}

TEST(Baselines, TrendAddsHalfWindowSlope) {
  Matrix<float> scores(1, 8);
  for (int j = 0; j < 8; ++j) scores(0, j) = static_cast<float>(j);
  // t=7, w=4: average of 4..7 = 5.5; recent half µ(7,2)=6.5; earlier half
  // µ(5,2)=4.5; trend = (6.5-4.5)/2 = 1.
  std::vector<float> predictions = TrendBaseline(scores, 7, 4);
  EXPECT_FLOAT_EQ(predictions[0], 6.5f);
}

TEST(Baselines, TrendFlatSeriesEqualsAverage) {
  Matrix<float> scores(1, 10, 0.4f);
  std::vector<float> trend = TrendBaseline(scores, 8, 6);
  std::vector<float> average = AverageBaseline(scores, 8, 6);
  EXPECT_FLOAT_EQ(trend[0], average[0]);
}

TEST(Baselines, NaNScoresTreatedAsNoEvidence) {
  Matrix<float> scores(1, 5, MissingValue());
  std::vector<float> average = AverageBaseline(scores, 4, 3);
  EXPECT_FLOAT_EQ(average[0], 0.0f);
}

}  // namespace
}  // namespace hotspot
