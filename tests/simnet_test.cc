#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "simnet/calendar.h"
#include "simnet/events.h"
#include "simnet/generator.h"
#include "simnet/kpi_catalog.h"
#include "simnet/load_model.h"
#include "simnet/missing.h"
#include "simnet/topology.h"
#include "tensor/temporal.h"

namespace hotspot::simnet {
namespace {

TEST(Calendar, AddDaysAcrossMonthAndLeapYear) {
  Date start{2015, 11, 30};
  EXPECT_EQ(AddDays(start, 1), (Date{2015, 12, 1}));
  EXPECT_EQ(AddDays(start, 32), (Date{2016, 1, 1}));
  // 2016 is a leap year: Feb 29 exists.
  EXPECT_EQ(AddDays(Date{2016, 2, 28}, 1), (Date{2016, 2, 29}));
  EXPECT_EQ(AddDays(Date{2016, 2, 29}, 1), (Date{2016, 3, 1}));
}

TEST(Calendar, DayOfWeekKnownDates) {
  EXPECT_EQ(DayOfWeek(Date{2015, 11, 30}), 0);  // Monday
  EXPECT_EQ(DayOfWeek(Date{2015, 12, 25}), 4);  // Friday
  EXPECT_EQ(DayOfWeek(Date{2016, 1, 1}), 4);    // Friday
  EXPECT_EQ(DayOfWeek(Date{2016, 4, 3}), 6);    // Sunday
}

TEST(Calendar, FormatDate) {
  EXPECT_EQ(FormatDate(Date{2016, 2, 9}), "2016-02-09");
}

TEST(Calendar, PaperPeriodShape) {
  StudyCalendar calendar = StudyCalendar::Paper();
  EXPECT_EQ(calendar.weeks(), 18);
  EXPECT_EQ(calendar.days(), 126);
  EXPECT_EQ(calendar.hours(), 3024);
  // Nov 30, 2015 is a Monday; the last day is Apr 3, 2016 (Sunday).
  EXPECT_EQ(calendar.DayOfWeekOfDay(0), 0);
  EXPECT_EQ(FormatDate(calendar.DateOfDay(125)), "2016-04-03");
}

TEST(Calendar, WeekendsAndHolidays) {
  StudyCalendar calendar = StudyCalendar::Paper();
  EXPECT_FALSE(calendar.IsWeekend(0));  // Monday
  EXPECT_TRUE(calendar.IsWeekend(5));   // Saturday
  EXPECT_TRUE(calendar.IsWeekend(6));   // Sunday
  // Christmas 2015 = day 25 from Nov 30.
  EXPECT_TRUE(calendar.IsHoliday(25));
  // New year = day 32.
  EXPECT_TRUE(calendar.IsHoliday(32));
  EXPECT_FALSE(calendar.IsHoliday(1));
}

TEST(Calendar, MatrixShapeAndUpsampling) {
  StudyCalendar calendar = StudyCalendar::Paper(2);
  Matrix<float> c = calendar.BuildCalendarMatrix();
  EXPECT_EQ(c.rows(), 2 * 168);
  EXPECT_EQ(c.cols(), 5);
  // Hour of day cycles; other columns repeat within the day.
  EXPECT_FLOAT_EQ(c(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(c(23, 0), 23.0f);
  EXPECT_FLOAT_EQ(c(24, 0), 0.0f);
  EXPECT_FLOAT_EQ(c(10, 1), c(20, 1));  // same day-of-week all day
  EXPECT_FLOAT_EQ(c(0, 2), 30.0f);      // day of month: Nov 30
  EXPECT_FLOAT_EQ(c(24, 2), 1.0f);      // Dec 1
}

TEST(Calendar, ShoppingDaysIncludePreChristmasRush) {
  StudyCalendar calendar = StudyCalendar::Paper();
  // Dec 19, 2015 = day 19.
  EXPECT_TRUE(calendar.IsShoppingDay(19));
}

TEST(Topology, GeneratesRequestedSectorCount) {
  TopologyConfig config;
  config.target_sectors = 120;
  Topology topology = Topology::Generate(config, 1);
  EXPECT_EQ(topology.num_sectors(), 120);
}

TEST(Topology, SameTowerSectorsShareCoordinates) {
  TopologyConfig config;
  config.target_sectors = 90;
  Topology topology = Topology::Generate(config, 2);
  int same_tower_pairs = 0;
  for (int i = 0; i < topology.num_sectors(); ++i) {
    for (int j = i + 1; j < topology.num_sectors(); ++j) {
      if (topology.sector(i).tower_id == topology.sector(j).tower_id) {
        EXPECT_DOUBLE_EQ(topology.DistanceKm(i, j), 0.0);
        ++same_tower_pairs;
      }
    }
  }
  EXPECT_GT(same_tower_pairs, 0);
}

TEST(Topology, NearestSectorsSortedByDistance) {
  TopologyConfig config;
  config.target_sectors = 60;
  Topology topology = Topology::Generate(config, 3);
  std::vector<int> nearest = topology.NearestSectors(0, 10);
  ASSERT_EQ(nearest.size(), 10u);
  for (size_t r = 1; r < nearest.size(); ++r) {
    EXPECT_LE(topology.DistanceKm(0, nearest[r - 1]),
              topology.DistanceKm(0, nearest[r]));
  }
  for (int j : nearest) EXPECT_NE(j, 0);
}

TEST(Topology, FilteredRenumbersContiguously) {
  TopologyConfig config;
  config.target_sectors = 30;
  Topology topology = Topology::Generate(config, 4);
  std::vector<bool> keep(30, true);
  keep[3] = keep[17] = false;
  Topology filtered = topology.Filtered(keep);
  EXPECT_EQ(filtered.num_sectors(), 28);
  for (int i = 0; i < filtered.num_sectors(); ++i) {
    EXPECT_EQ(filtered.sector(i).id, i);
  }
  // Survivor order preserved: old sector 4 becomes new sector 3.
  EXPECT_DOUBLE_EQ(filtered.sector(3).x_km, topology.sector(4).x_km);
}

TEST(Topology, DeterministicGivenSeed) {
  TopologyConfig config;
  config.target_sectors = 50;
  Topology a = Topology::Generate(config, 77);
  Topology b = Topology::Generate(config, 77);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.sector(i).x_km, b.sector(i).x_km);
    EXPECT_EQ(a.sector(i).archetype, b.sector(i).archetype);
  }
}

TEST(Topology, ArchetypesAreScatteredAcrossCities) {
  TopologyConfig config;
  config.target_sectors = 600;
  Topology topology = Topology::Generate(config, 5);
  // Each major archetype should appear in more than one city.
  std::map<Archetype, std::set<int>> cities_by_archetype;
  for (const Sector& sector : topology.sectors()) {
    if (sector.city_id >= 0) {
      cities_by_archetype[sector.archetype].insert(sector.city_id);
    }
  }
  EXPECT_GT(cities_by_archetype[Archetype::kCommercial].size(), 1u);
  EXPECT_GT(cities_by_archetype[Archetype::kBusiness].size(), 1u);
}

TEST(KpiCatalog, HasPaperDimensions) {
  KpiCatalog catalog = KpiCatalog::Default();
  EXPECT_EQ(catalog.size(), 21);
  std::set<std::string> names;
  for (const KpiSpec& spec : catalog.specs()) names.insert(spec.name);
  EXPECT_EQ(names.size(), 21u);  // unique names
}

TEST(KpiCatalog, PaperFeatureIndicesLineUp) {
  // Sec. V-D quotes 1-based indices; our catalog is 0-based.
  KpiCatalog catalog = KpiCatalog::Default();
  EXPECT_EQ(catalog.spec(5).name, "noise_rise_db");            // k=6
  EXPECT_EQ(catalog.spec(7).name, "data_utilization_rate");    // k=8
  EXPECT_EQ(catalog.spec(8).name, "hs_users_queued");          // k=9
  EXPECT_EQ(catalog.spec(9).name, "channel_setup_failure_ratio");  // k=10
  EXPECT_EQ(catalog.spec(11).name, "noise_floor_dbm");         // k=12
  EXPECT_EQ(catalog.spec(13).name, "tti_occupancy_ratio");     // k=14
}

TEST(KpiCatalog, CoversAllFiveClasses) {
  KpiCatalog catalog = KpiCatalog::Default();
  std::map<KpiClass, int> counts;
  for (const KpiSpec& spec : catalog.specs()) ++counts[spec.kpi_class];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [cls, count] : counts) EXPECT_GE(count, 2);
}

TEST(KpiCatalog, IndexOf) {
  KpiCatalog catalog = KpiCatalog::Default();
  EXPECT_EQ(catalog.IndexOf("noise_rise_db"), 5);
  EXPECT_EQ(catalog.IndexOf("nope"), -1);
}

TEST(LoadModel, DeterministicGivenSeed) {
  TopologyConfig tc;
  tc.target_sectors = 30;
  Topology topology = Topology::Generate(tc, 6);
  StudyCalendar calendar = StudyCalendar::Paper(2);
  LoadModelConfig config;
  Matrix<float> a = GenerateLoad(topology, calendar, config, 9);
  Matrix<float> b = GenerateLoad(topology, calendar, config, 9);
  EXPECT_EQ(a.data(), b.data());
}

TEST(LoadModel, NightLowerThanEvening) {
  TopologyConfig tc;
  tc.target_sectors = 60;
  Topology topology = Topology::Generate(tc, 7);
  StudyCalendar calendar = StudyCalendar::Paper(4);
  Matrix<float> load = GenerateLoad(topology, calendar, {}, 10);
  double night = 0.0, evening = 0.0;
  int count = 0;
  for (int i = 0; i < load.rows(); ++i) {
    for (int day = 0; day < calendar.days(); ++day) {
      night += load(i, day * 24 + 3);
      evening += load(i, day * 24 + 20);
      ++count;
    }
  }
  EXPECT_LT(night / count, 0.5 * evening / count);
}

TEST(LoadModel, BusinessSectorsDropOnWeekends) {
  TopologyConfig tc;
  tc.target_sectors = 300;
  Topology topology = Topology::Generate(tc, 8);
  StudyCalendar calendar = StudyCalendar::Paper(4);
  Matrix<float> load = GenerateLoad(topology, calendar, {}, 11);
  double workday = 0.0, weekend = 0.0;
  int count = 0;
  for (int i = 0; i < load.rows(); ++i) {
    if (topology.sector(i).archetype != Archetype::kBusiness) continue;
    for (int day = 0; day < calendar.days(); ++day) {
      double midday = load(i, day * 24 + 11);
      if (calendar.IsWeekend(day)) {
        weekend += midday;
      } else {
        workday += midday;
      }
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_LT(weekend, 0.5 * workday);
}

TEST(LoadModel, ChronicSectorsCarryHigherLoad) {
  TopologyConfig tc;
  tc.target_sectors = 400;
  Topology topology = Topology::Generate(tc, 12);
  StudyCalendar calendar = StudyCalendar::Paper(2);
  std::vector<SectorTraits> traits;
  Matrix<float> load = GenerateLoad(topology, calendar, {}, 13, &traits);
  double chronic_mean = 0.0, normal_mean = 0.0;
  int chronic_count = 0, normal_count = 0;
  for (int i = 0; i < load.rows(); ++i) {
    double mean = 0.0;
    for (int j = 0; j < load.cols(); ++j) mean += load(i, j);
    mean /= load.cols();
    if (traits[static_cast<size_t>(i)].chronic_hot) {
      chronic_mean += mean;
      ++chronic_count;
    } else {
      normal_mean += mean;
      ++normal_count;
    }
  }
  ASSERT_GT(chronic_count, 0);
  EXPECT_GT(chronic_mean / chronic_count, 1.3 * normal_mean / normal_count);
}

TEST(Events, FailuresCoverWholeTower) {
  TopologyConfig tc;
  tc.target_sectors = 200;
  Topology topology = Topology::Generate(tc, 14);
  StudyCalendar calendar = StudyCalendar::Paper(6);
  EventConfig config;
  config.failure_rate_per_tower_week = 0.2;
  EventTimelines timelines = GenerateEvents(topology, calendar, config, 15);
  ASSERT_FALSE(timelines.failures.empty());
  const FailureEvent& event = timelines.failures.front();
  int mid = event.start_hour + event.duration_hours / 2;
  if (mid < calendar.hours()) {
    for (const Sector& sector : topology.sectors()) {
      if (sector.tower_id != event.tower_id) continue;
      EXPECT_GT(timelines.failure(sector.id, mid), 0.0f);
    }
  }
}

TEST(Events, PrecursorRisesBeforeFailure) {
  TopologyConfig tc;
  tc.target_sectors = 120;
  Topology topology = Topology::Generate(tc, 16);
  StudyCalendar calendar = StudyCalendar::Paper(6);
  EventConfig config;
  config.failure_rate_per_tower_week = 0.2;
  EventTimelines timelines = GenerateEvents(topology, calendar, config, 17);
  // Find a failure with room for its precursor window.
  for (const FailureEvent& event : timelines.failures) {
    if (event.start_hour < config.precursor_hours + 2) continue;
    int sector = -1;
    for (const Sector& s : topology.sectors()) {
      if (s.tower_id == event.tower_id) {
        sector = s.id;
        break;
      }
    }
    ASSERT_GE(sector, 0);
    float just_before = timelines.precursor(sector, event.start_hour - 1);
    float window_start = timelines.precursor(
        sector, event.start_hour - config.precursor_hours + 1);
    EXPECT_GT(just_before, 0.9f);
    EXPECT_LE(window_start, just_before);
    return;
  }
  GTEST_SKIP() << "no failure with full precursor window in this draw";
}

TEST(Events, RampsRiseMonotonicallyToPlateau) {
  TopologyConfig tc;
  tc.target_sectors = 100;
  Topology topology = Topology::Generate(tc, 18);
  StudyCalendar calendar = StudyCalendar::Paper(10);
  EventConfig config;
  config.emerging_fraction = 0.5;
  config.emerging_recovery_prob = 0.0;
  EventTimelines timelines = GenerateEvents(topology, calendar, config, 19);
  ASSERT_FALSE(timelines.ramps.empty());
  const DegradationRamp& ramp = timelines.ramps.front();
  float previous = 0.0f;
  for (int j = ramp.start_hour;
       j < std::min(calendar.hours(), ramp.start_hour + ramp.ramp_hours);
       ++j) {
    float level = timelines.degradation(ramp.sector_id, j);
    EXPECT_GE(level, previous);
    previous = level;
  }
  int plateau_hour = ramp.start_hour + ramp.ramp_hours;
  if (plateau_hour < calendar.hours()) {
    EXPECT_NEAR(timelines.degradation(ramp.sector_id, plateau_hour),
                static_cast<float>(ramp.plateau), 1e-5);
  }
}

TEST(Missing, InjectionRatesInExpectedBand) {
  Tensor3<float> kpis(40, 4 * 168, 10, 1.0f);
  MissingConfig config;
  MissingStats stats = InjectMissing(config, 21, &kpis);
  EXPECT_GT(stats.MissingFraction(), 0.01);
  EXPECT_LT(stats.MissingFraction(), 0.15);
  EXPECT_EQ(stats.total_cells, 40LL * 4 * 168 * 10);
}

TEST(Missing, DeterministicGivenSeed) {
  Tensor3<float> a(10, 168, 5, 1.0f);
  Tensor3<float> b(10, 168, 5, 1.0f);
  MissingConfig config;
  InjectMissing(config, 22, &a);
  InjectMissing(config, 22, &b);
  for (size_t idx = 0; idx < a.data().size(); ++idx) {
    EXPECT_EQ(IsMissing(a.data()[idx]), IsMissing(b.data()[idx]));
  }
}

TEST(Missing, ZeroRatesLeaveDataIntact) {
  Tensor3<float> kpis(5, 168, 3, 2.0f);
  MissingConfig config;
  config.cell_rate = 0.0;
  config.slice_rate = 0.0;
  config.outage_rate_per_sector_week = 0.0;
  config.dead_sector_fraction = 0.0;
  MissingStats stats = InjectMissing(config, 23, &kpis);
  EXPECT_EQ(stats.missing_cells, 0);
}

TEST(Generator, KpiValueRespondsInSpecifiedDirections) {
  KpiSpec spec;
  spec.baseline = 0.1;
  spec.load_coef = 0.5;
  spec.failure_coef = 0.2;
  spec.degradation_coef = 0.1;
  spec.precursor_coef = 0.05;
  spec.noise_sigma = 0.0;
  spec.lo = 0.0;
  spec.hi = 1.0;
  EXPECT_DOUBLE_EQ(KpiValue(spec, 0, 0, 0, 0, 0), 0.1);
  EXPECT_DOUBLE_EQ(KpiValue(spec, 1, 0, 0, 0, 0), 0.6);
  EXPECT_DOUBLE_EQ(KpiValue(spec, 1, 1, 1, 1, 0), 0.95);
  // Clamped at hi.
  EXPECT_DOUBLE_EQ(KpiValue(spec, 10, 0, 0, 0, 0), 1.0);
}

TEST(Generator, ShapesMatchConfig) {
  GeneratorConfig config;
  config.topology.target_sectors = 24;
  config.weeks = 2;
  config.inject_missing = false;
  SyntheticNetwork network = GenerateNetwork(config);
  EXPECT_EQ(network.num_sectors(), 24);
  EXPECT_EQ(network.num_hours(), 2 * 168);
  EXPECT_EQ(network.num_kpis(), 21);
  EXPECT_EQ(network.calendar_matrix.rows(), 2 * 168);
  EXPECT_EQ(network.true_load.rows(), 24);
  // No missing values when injection is off.
  for (float v : network.kpis.data()) EXPECT_FALSE(IsMissing(v));
}

TEST(Generator, DeterministicGivenSeed) {
  GeneratorConfig config;
  config.topology.target_sectors = 12;
  config.weeks = 1;
  config.seed = 4242;
  SyntheticNetwork a = GenerateNetwork(config);
  SyntheticNetwork b = GenerateNetwork(config);
  ASSERT_EQ(a.kpis.size(), b.kpis.size());
  for (size_t idx = 0; idx < a.kpis.data().size(); ++idx) {
    float va = a.kpis.data()[idx];
    float vb = b.kpis.data()[idx];
    EXPECT_TRUE((IsMissing(va) && IsMissing(vb)) || va == vb);
  }
}

TEST(Generator, KpisStayInPhysicalRange) {
  GeneratorConfig config;
  config.topology.target_sectors = 30;
  config.weeks = 2;
  config.inject_missing = false;
  SyntheticNetwork network = GenerateNetwork(config);
  for (int k = 0; k < network.num_kpis(); ++k) {
    const KpiSpec& spec = network.catalog.spec(k);
    for (int i = 0; i < network.num_sectors(); ++i) {
      for (int j = 0; j < network.num_hours(); ++j) {
        float v = network.kpis(i, j, k);
        ASSERT_GE(v, spec.lo) << spec.name;
        ASSERT_LE(v, spec.hi) << spec.name;
      }
    }
  }
}

TEST(ArchetypeProfiles, HaveOvernightTrough) {
  for (int a = 0; a < kNumArchetypes; ++a) {
    if (static_cast<Archetype>(a) == Archetype::kNightlife) continue;
    const ArchetypeProfile& profile =
        ProfileFor(static_cast<Archetype>(a));
    double night = (profile.hourly[2] + profile.hourly[3] +
                    profile.hourly[4]) / 3.0;
    double peak = 0.0;
    for (double v : profile.hourly) peak = std::max(peak, v);
    EXPECT_LT(night, 0.25 * peak) << "archetype " << a;
    EXPECT_LE(peak, 1.0) << "profiles never exceed 1";
  }
}

}  // namespace
}  // namespace hotspot::simnet
