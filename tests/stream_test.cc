// The streaming subsystem's contract tests: ingestion ordering policy
// (in-watermark reorder, beyond-watermark drop, duplicates, gap fill),
// the batch/streaming bitwise feature-equivalence guarantee over a
// multi-week synthetic trace, and end-to-end streaming serving parity
// with ForecastService::PredictAtDay at several thread counts.
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/labels.h"
#include "monitor/health.h"
#include "core/score.h"
#include "core/study.h"
#include "features/feature_tensor.h"
#include "obs/pipeline_context.h"
#include "pipeline/serving_pipeline.h"
#include "thread_matrix.h"
#include "simnet/calendar.h"
#include "stream/incremental_features.h"
#include "stream/kpi_stream.h"
#include "tensor/temporal.h"

namespace hotspot {
namespace {

using stream::FeatureEngineConfig;
using stream::IncrementalFeatureEngine;
using stream::IngestorConfig;
using stream::KpiStreamIngestor;
using stream::PushResult;

simnet::GeneratorConfig SmallConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 60;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 77;
  return config;
}

/// The shared study: complete (forward-fill imputed) KPIs, so the stream
/// sees exactly the tensor the batch features were built from.
const Study& SharedStudy() {
  static const Study* study = new Study(BuildStudy(StudyInput(SmallConfig())));
  return *study;
}

FeatureEngineConfig EngineConfigFor(const Study& study, int history_weeks) {
  FeatureEngineConfig config;
  config.num_sectors = study.num_sectors();
  config.num_kpis = study.network.num_kpis();
  config.calendar = &study.network.calendar_matrix;
  config.score = study.score_config;
  config.history_weeks = history_weeks;
  return config;
}

/// Streams the study's KPI tensor in order through ingestor + engine and
/// returns the emitted feature rows as a tensor shaped like the batch one.
Tensor3<float> StreamFeatures(const Study& study) {
  const int n = study.num_sectors();
  const int hours = study.network.num_hours();
  IncrementalFeatureEngine engine(
      EngineConfigFor(study, study.num_weeks() + 1));
  Tensor3<float> streamed(n, hours, engine.channels(),
                          std::nanf("unwritten"));
  int emitted = 0;
  engine.set_row_sink(
      [&](int sector, int hour, const float* row, int channels) {
        std::memcpy(streamed.Slice(sector, hour), row,
                    static_cast<size_t>(channels) * sizeof(float));
        ++emitted;
      });
  IngestorConfig ingest;
  ingest.num_sectors = n;
  ingest.num_kpis = study.network.num_kpis();
  KpiStreamIngestor ingestor(ingest, engine.IngestorSink());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < hours; ++j) {
      PushResult result =
          ingestor.Push(i, j, study.network.kpis.Slice(i, j),
                        study.network.kpis.dim2());
      EXPECT_EQ(result, PushResult::kAccepted);
    }
  }
  EXPECT_EQ(emitted, n * hours);
  return streamed;
}

TEST(IncrementalFeatures, BitwiseEqualToBatchTensorOverMultiWeekTrace) {
  const Study& study = SharedStudy();
  Tensor3<float> streamed = StreamFeatures(study);
  const Tensor3<float>& batch = study.features.tensor();
  ASSERT_EQ(streamed.size(), batch.size());
  // Bitwise, not approximate: the incremental engine replays the batch
  // loops' arithmetic, so even NaN payloads must match.
  EXPECT_EQ(std::memcmp(streamed.data().data(), batch.data().data(),
                        batch.size() * sizeof(float)),
            0);
}

TEST(IncrementalFeatures, RollingStateTracksRunsAndPercentiles) {
  const Study& study = SharedStudy();
  IncrementalFeatureEngine engine(
      EngineConfigFor(study, study.num_weeks() + 1));
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    engine.Consume(0, j, study.network.kpis.Slice(0, j),
                   study.network.kpis.dim2());
  }
  stream::SectorStreamState state = engine.State(0);
  EXPECT_EQ(state.consumed_hours, hours);
  EXPECT_EQ(state.closed_days, hours / kHoursPerDay);
  EXPECT_EQ(state.finalized_hours, hours);
  // The run length matches a trailing scan of the study's daily labels.
  int expected_run = 0;
  for (int day = study.num_days() - 1; day >= 0; --day) {
    if (study.daily_labels.At(0, day) == 0.0f) break;
    ++expected_run;
  }
  EXPECT_EQ(state.hot_day_run, expected_run);
  EXPECT_TRUE(!std::isnan(state.day_score_p50));
  EXPECT_GE(state.day_score_p95, state.day_score_p50);
}

/// A tiny deterministic trace for the ordering-policy tests: 1 sector,
/// 2 KPIs, values a simple function of the hour.
struct TinyTrace {
  static constexpr int kKpis = 2;
  static std::vector<float> Row(int hour) {
    return {static_cast<float>(hour % 7),
            static_cast<float>((hour * 3) % 11)};
  }
};

struct CapturedRow {
  int sector;
  int hour;
  std::vector<float> values;
};

TEST(KpiStreamIngestor, InWatermarkReorderIsLossless) {
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  std::vector<CapturedRow> rows;
  IngestorConfig config;
  config.num_sectors = 1;
  config.num_kpis = TinyTrace::kKpis;
  config.watermark_hours = 24;
  KpiStreamIngestor ingestor(config, [&](int sector, int hour,
                                         const float* values, int num_kpis) {
    rows.push_back({sector, hour,
                    std::vector<float>(values, values + num_kpis)});
  });
  // Deliver each 6-hour block reversed — out of order, but well inside
  // the 24 h watermark.
  const int kHours = 48;
  for (int block = 0; block < kHours / 6; ++block) {
    for (int h = 6 * block + 5; h >= 6 * block; --h) {
      EXPECT_EQ(ingestor.Push(0, h, TinyTrace::Row(h)),
                PushResult::kAccepted);
    }
  }
  ingestor.Flush();
  ASSERT_EQ(static_cast<int>(rows.size()), kHours);
  for (int h = 0; h < kHours; ++h) {
    EXPECT_EQ(rows[static_cast<size_t>(h)].hour, h);
    EXPECT_EQ(rows[static_cast<size_t>(h)].values, TinyTrace::Row(h));
  }
  EXPECT_GT(context.metrics().counter("stream/rows_reordered").Total(), 0u);
  EXPECT_EQ(context.metrics().counter("stream/rows_late_dropped").Total(),
            0u);
  EXPECT_EQ(context.metrics().counter("stream/rows_gap_filled").Total(), 0u);
  EXPECT_EQ(context.metrics().counter("stream/rows_accepted").Total(),
            static_cast<uint64_t>(kHours));
}

TEST(KpiStreamIngestor, BeyondWatermarkRowIsDroppedAndCounted) {
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  std::vector<CapturedRow> rows;
  IngestorConfig config;
  config.num_sectors = 1;
  config.num_kpis = TinyTrace::kKpis;
  config.watermark_hours = 6;
  config.ring_hours = 12;
  KpiStreamIngestor ingestor(config, [&](int sector, int hour,
                                         const float* values, int num_kpis) {
    rows.push_back({sector, hour,
                    std::vector<float>(values, values + num_kpis)});
  });
  // Hour 5 never arrives on time; the stream runs on far enough that the
  // watermark passes it (gap-filled as all-NaN), then it shows up late.
  for (int h = 0; h < 20; ++h) {
    if (h == 5) continue;
    EXPECT_EQ(ingestor.Push(0, h, TinyTrace::Row(h)),
              PushResult::kAccepted);
  }
  EXPECT_EQ(ingestor.Push(0, 5, TinyTrace::Row(5)), PushResult::kLate);
  ingestor.Flush();
  ASSERT_EQ(static_cast<int>(rows.size()), 20);
  for (int h = 0; h < 20; ++h) {
    EXPECT_EQ(rows[static_cast<size_t>(h)].hour, h);
    if (h == 5) {
      for (float v : rows[5].values) EXPECT_TRUE(std::isnan(v));
    } else {
      EXPECT_EQ(rows[static_cast<size_t>(h)].values, TinyTrace::Row(h));
    }
  }
  EXPECT_EQ(context.metrics().counter("stream/rows_late_dropped").Total(),
            1u);
  EXPECT_EQ(context.metrics().counter("stream/rows_gap_filled").Total(), 1u);
}

TEST(KpiStreamIngestor, DuplicateRowFirstWinsAndIsCounted) {
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  std::vector<CapturedRow> rows;
  IngestorConfig config;
  config.num_sectors = 1;
  config.num_kpis = TinyTrace::kKpis;
  config.watermark_hours = 24;
  KpiStreamIngestor ingestor(config, [&](int sector, int hour,
                                         const float* values, int num_kpis) {
    rows.push_back({sector, hour,
                    std::vector<float>(values, values + num_kpis)});
  });
  // Hour 3 arrives while hour 2 is still outstanding (so it is buffered,
  // not yet flushed), then arrives again with different values.
  EXPECT_EQ(ingestor.Push(0, 0, TinyTrace::Row(0)), PushResult::kAccepted);
  EXPECT_EQ(ingestor.Push(0, 1, TinyTrace::Row(1)), PushResult::kAccepted);
  EXPECT_EQ(ingestor.Push(0, 3, TinyTrace::Row(3)), PushResult::kAccepted);
  std::vector<float> imposter = {99.0f, 99.0f};
  EXPECT_EQ(ingestor.Push(0, 3, imposter), PushResult::kDuplicate);
  EXPECT_EQ(ingestor.Push(0, 2, TinyTrace::Row(2)), PushResult::kAccepted);
  // A duplicate of an already-flushed hour is late by definition.
  EXPECT_EQ(ingestor.Push(0, 0, TinyTrace::Row(0)), PushResult::kLate);
  ASSERT_EQ(static_cast<int>(rows.size()), 4);
  EXPECT_EQ(rows[3].values, TinyTrace::Row(3));  // first row won
  EXPECT_EQ(
      context.metrics().counter("stream/rows_duplicate_dropped").Total(),
      1u);
  EXPECT_EQ(context.metrics().counter("stream/rows_late_dropped").Total(),
            1u);
}

TEST(KpiStreamIngestor, MalformedRowsAreRejectedNotFatal) {
  IngestorConfig config;
  config.num_sectors = 2;
  config.num_kpis = TinyTrace::kKpis;
  int delivered = 0;
  KpiStreamIngestor ingestor(
      config, [&](int, int, const float*, int) { ++delivered; });
  std::vector<float> row = TinyTrace::Row(0);
  EXPECT_EQ(ingestor.Push(5, 0, row), PushResult::kRejected);
  EXPECT_EQ(ingestor.Push(-1, 0, row), PushResult::kRejected);
  EXPECT_EQ(ingestor.Push(0, -2, row), PushResult::kRejected);
  std::vector<float> short_row = {1.0f};
  EXPECT_EQ(ingestor.Push(0, 0, short_row), PushResult::kRejected);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ingestor.Push(0, 0, row), PushResult::kAccepted);
  EXPECT_EQ(delivered, 1);
}

TEST(IncrementalFeatures, GapFilledHoursMatchBatchOnHoleyTensor) {
  // An hour the watermark declared missing must flow through scores,
  // labels and features exactly like a batch tensor with that hour NaN.
  const int kWeeks = 2;
  simnet::StudyCalendar calendar = simnet::StudyCalendar::Paper(kWeeks);
  Matrix<float> calendar_matrix = calendar.BuildCalendarMatrix();
  const int hours = calendar.hours();
  ScoreConfig score;
  score.indicators = {{1.0, 3.0, true}, {2.0, 4.0, false}};
  score.hot_threshold = 0.5;
  Tensor3<float> kpis(1, hours, 2);
  for (int j = 0; j < hours; ++j) {
    kpis.At(0, j, 0) = TinyTrace::Row(j)[0];
    kpis.At(0, j, 1) = TinyTrace::Row(j)[1];
  }
  const int kHole = 29;
  kpis.At(0, kHole, 0) = MissingValue();
  kpis.At(0, kHole, 1) = MissingValue();

  ScoreSet scores = ComputeScores(kpis, score);
  Matrix<float> daily_labels =
      HotSpotLabels(scores.daily, score.hot_threshold);
  features::FeatureTensor batch = features::FeatureTensor::Build(
      kpis, calendar_matrix, scores.hourly, scores.daily, scores.weekly,
      daily_labels);

  FeatureEngineConfig engine_config;
  engine_config.num_sectors = 1;
  engine_config.num_kpis = 2;
  engine_config.calendar = &calendar_matrix;
  engine_config.score = score;
  engine_config.history_weeks = kWeeks + 1;
  IncrementalFeatureEngine engine(engine_config);
  Tensor3<float> streamed(1, hours, engine.channels());
  engine.set_row_sink(
      [&](int sector, int hour, const float* row, int channels) {
        std::memcpy(streamed.Slice(sector, hour), row,
                    static_cast<size_t>(channels) * sizeof(float));
      });
  IngestorConfig ingest;
  ingest.num_sectors = 1;
  ingest.num_kpis = 2;
  ingest.watermark_hours = 6;
  ingest.ring_hours = 12;
  KpiStreamIngestor ingestor(ingest, engine.IngestorSink());
  for (int j = 0; j < hours; ++j) {
    if (j == kHole) continue;  // never arrives; the watermark fills it
    ASSERT_EQ(ingestor.Push(0, j, kpis.Slice(0, j), 2),
              PushResult::kAccepted);
  }
  ingestor.Flush();
  ASSERT_EQ(engine.finalized_hours(0), hours);
  EXPECT_EQ(std::memcmp(streamed.data().data(),
                        batch.tensor().data().data(),
                        batch.tensor().size() * sizeof(float)),
            0);
}

std::unique_ptr<ForecastService> MakeService(const Study& study) {
  ForecastConfig config;
  config.model = ModelKind::kGbdt;
  config.t = 55;
  config.h = 1;
  config.w = 3;
  config.gbdt.num_iterations = 10;
  config.gbdt.num_leaves = 15;
  config.gbdt.max_bins = 32;
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  return std::make_unique<ForecastService>(std::move(bundle));
}

pipeline::ServingPipeline::Options ServeOptionsFor(const Study& study) {
  pipeline::ServingPipeline::Options options;
  options.num_sectors = study.num_sectors();
  options.num_kpis = study.network.num_kpis();
  options.calendar = &study.network.calendar_matrix;
  options.score = study.score_config;
  options.history_weeks = study.num_weeks() + 1;
  return options;
}

/// Streams the whole study hour-major (all sectors advance together, as
/// live feeds do) through a ServingPipeline and returns every served
/// prediction.
std::vector<StreamingPrediction> RunStreamingServe(
    const Study& study, ForecastService* service) {
  pipeline::ServingPipeline serving(service, ServeOptionsFor(study));
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      serving.Push(i, j, study.network.kpis.Slice(i, j),
                   study.network.kpis.dim2());
    }
  }
  serving.Finish();
  return serving.TakePredictions();
}

TEST(StreamServe, PredictionsBitwiseEqualBatchServiceAcrossThreads) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const int w = service->bundle().window_days;
  const int num_days = study.num_days();

  std::vector<std::vector<float>> batch_scores;
  for (int end_day = w; end_day <= num_days; ++end_day) {
    batch_scores.push_back(service->PredictAtDay(study.features, end_day));
  }

  testing_util::ForEachThreadCount([&](const std::string& threads) {
    std::vector<StreamingPrediction> served =
        RunStreamingServe(study, service.get());
    ASSERT_EQ(static_cast<int>(served.size()), num_days - w + 1)
        << "threads=" << threads;
    for (size_t b = 0; b < served.size(); ++b) {
      EXPECT_EQ(served[b].end_day, w + static_cast<int>(b));
      ASSERT_EQ(served[b].scores.size(), batch_scores[b].size());
      EXPECT_EQ(std::memcmp(served[b].scores.data(),
                            batch_scores[b].data(),
                            batch_scores[b].size() * sizeof(float)),
                0)
          << "threads=" << threads << " end_day=" << served[b].end_day;
    }
  });
}

TEST(StreamServe, MaturedOutcomesFeedQualityMonitor) {
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  ASSERT_TRUE(service->monitoring_enabled());
  pipeline::ServingPipeline serving(service.get(), ServeOptionsFor(study));
  for (int i = 0; i < study.num_sectors(); ++i) {
    for (int j = 0; j < study.network.num_hours(); ++j) {
      serving.Push(i, j, study.network.kpis.Slice(i, j),
                   study.network.kpis.dim2());
    }
  }
  serving.Finish();
  ASSERT_FALSE(serving.TakePredictions().empty());
  // Every prediction whose target day the stream has already closed fed
  // the quality monitor; only the frontier ones are still waiting.
  const int horizon = service->bundle().horizon_days;
  EXPECT_EQ(serving.pending_outcomes(), horizon + 1);
  monitor::HealthReport health = service->Health();
  EXPECT_TRUE(health.monitoring_enabled);
  EXPECT_GT(health.quality.labels_total, 0u);
  EXPECT_GT(
      context.metrics().counter("stream/outcomes_recorded").Total(), 0u);
  EXPECT_GT(
      context.metrics().counter("stream/prediction_batches").Total(), 0u);
}

}  // namespace
}  // namespace hotspot
