#include <cmath>

#include "gtest/gtest.h"
#include "core/evaluation.h"
#include "core/forecaster.h"
#include "core/task.h"
#include "stats/average_precision.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot {
namespace {

/// A miniature deterministic study: 30 sectors over 8 weeks. Sectors with
/// an odd index are "hot-type": their first KPI sits at 0.8 (vs 0.2) and
/// their daily score/label is hot every day. The mapping from KPI to label
/// is exactly learnable, so classifier models should reach near-perfect
/// average precision.
class TinyStudy {
 public:
  TinyStudy() {
    const int n = 30;
    const int weeks = 8;
    const int hours = weeks * kHoursPerWeek;
    const int days = weeks * 7;
    Rng rng(5);

    Tensor3<float> kpis(n, hours, 2);
    hourly_scores_ = Matrix<float>(n, hours);
    for (int i = 0; i < n; ++i) {
      bool hot = i % 2 == 1;
      for (int j = 0; j < hours; ++j) {
        kpis(i, j, 0) =
            (hot ? 0.8f : 0.2f) + 0.02f * static_cast<float>(rng.Gaussian());
        kpis(i, j, 1) = static_cast<float>(rng.Gaussian());
        hourly_scores_(i, j) = hot ? 0.9f : 0.1f;
      }
    }
    Matrix<float> calendar(hours, 5, 0.0f);
    for (int j = 0; j < hours; ++j) {
      calendar(j, 0) = static_cast<float>(j % 24);
      calendar(j, 1) = static_cast<float>((j / 24) % 7);
    }
    daily_scores_ = IntegrateScores(hourly_scores_, Resolution::kDaily);
    Matrix<float> weekly = IntegrateScores(hourly_scores_,
                                           Resolution::kWeekly);
    daily_labels_ = Matrix<float>(n, days, 0.0f);
    for (int i = 1; i < n; i += 2) {
      for (int j = 0; j < days; ++j) daily_labels_(i, j) = 1.0f;
    }
    features_ = features::FeatureTensor::Build(
        kpis, calendar, hourly_scores_, daily_scores_, weekly,
        daily_labels_, {"signal", "noise"});
  }

  Forecaster MakeForecaster() const {
    return Forecaster(&features_, &daily_scores_, &daily_labels_);
  }

  const Matrix<float>& daily_labels() const { return daily_labels_; }

 private:
  features::FeatureTensor features_;
  Matrix<float> hourly_scores_;
  Matrix<float> daily_scores_;
  Matrix<float> daily_labels_;
};

ForecastConfig FastConfig(ModelKind model, int t, int h, int w) {
  ForecastConfig config;
  config.model = model;
  config.t = t;
  config.h = h;
  config.w = w;
  config.forest.num_trees = 10;
  config.gbdt.num_iterations = 10;
  return config;
}

TEST(ModelZoo, NamesAndPaperList) {
  EXPECT_STREQ(ModelName(ModelKind::kRfF1), "RF-F1");
  EXPECT_STREQ(ModelName(ModelKind::kAverage), "Average");
  EXPECT_STREQ(ModelName(ModelKind::kGbdt), "GBDT");
  std::vector<ModelKind> models = PaperModels();
  EXPECT_EQ(models.size(), 8u);
  EXPECT_EQ(models.front(), ModelKind::kRandom);
  EXPECT_EQ(models.back(), ModelKind::kRfF2);
}

TEST(ModelZoo, TargetNames) {
  EXPECT_STREQ(TargetName(TargetKind::kBeHotSpot), "be_hot_spot");
  EXPECT_STREQ(TargetName(TargetKind::kBecomeHotSpot), "become_hot_spot");
}

TEST(Forecaster, ExtractorSelection) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  EXPECT_EQ(forecaster.ExtractorFor(ModelKind::kAverage), nullptr);
  EXPECT_NE(forecaster.ExtractorFor(ModelKind::kTree), nullptr);
  EXPECT_EQ(forecaster.ExtractorFor(ModelKind::kTree),
            forecaster.ExtractorFor(ModelKind::kRfRaw));
  EXPECT_NE(forecaster.ExtractorFor(ModelKind::kRfF1),
            forecaster.ExtractorFor(ModelKind::kRfF2));
}

TEST(Forecaster, LabelsAtDay) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  std::vector<float> labels = forecaster.LabelsAtDay(10);
  ASSERT_EQ(labels.size(), 30u);
  EXPECT_FLOAT_EQ(labels[0], 0.0f);
  EXPECT_FLOAT_EQ(labels[1], 1.0f);
}

TEST(Forecaster, ClassifiersLearnTheSeparableRule) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  for (ModelKind model : {ModelKind::kTree, ModelKind::kRfRaw,
                          ModelKind::kRfF1, ModelKind::kRfF2,
                          ModelKind::kGbdt}) {
    ForecastResult result =
        forecaster.Run(FastConfig(model, 30, 2, 3));
    std::vector<float> labels = forecaster.LabelsAtDay(32);
    double ap = AveragePrecision(labels, result.predictions);
    EXPECT_GT(ap, 0.99) << ModelName(model);
  }
}

TEST(Forecaster, BaselinePredictionSizes) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  for (ModelKind model : {ModelKind::kRandom, ModelKind::kPersist,
                          ModelKind::kAverage, ModelKind::kTrend}) {
    ForecastResult result = forecaster.Run(FastConfig(model, 20, 1, 7));
    EXPECT_EQ(result.predictions.size(), 30u) << ModelName(model);
    EXPECT_TRUE(result.importances.empty());
  }
}

TEST(Forecaster, ClassifierProbabilitiesInUnitInterval) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastResult result =
      forecaster.Run(FastConfig(ModelKind::kRfF1, 25, 3, 5));
  for (float p : result.predictions) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Forecaster, ImportancesMatchFeatureDim) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastResult result =
      forecaster.Run(FastConfig(ModelKind::kRfRaw, 25, 3, 2));
  const features::FeatureExtractor* extractor =
      forecaster.ExtractorFor(ModelKind::kRfRaw);
  EXPECT_EQ(static_cast<int>(result.importances.size()),
            extractor->OutputDim(2, 11));
  EXPECT_EQ(result.feature_dim, extractor->OutputDim(2, 11));
  double sum = 0.0;
  for (double imp : result.importances) sum += imp;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Forecaster, DeterministicAcrossRuns) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastResult a = forecaster.Run(FastConfig(ModelKind::kRfF1, 30, 2, 3));
  ForecastResult b = forecaster.Run(FastConfig(ModelKind::kRfF1, 30, 2, 3));
  EXPECT_EQ(a.predictions, b.predictions);
  ForecastResult r1 = forecaster.Run(FastConfig(ModelKind::kRandom, 30, 2, 3));
  ForecastResult r2 = forecaster.Run(FastConfig(ModelKind::kRandom, 30, 2, 3));
  EXPECT_EQ(r1.predictions, r2.predictions);
}

TEST(Forecaster, TrainingDaysPoolingRuns) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastConfig config = FastConfig(ModelKind::kTree, 30, 2, 3);
  config.training_days = 4;
  ForecastResult result = forecaster.Run(config);
  std::vector<float> labels = forecaster.LabelsAtDay(32);
  EXPECT_GT(AveragePrecision(labels, result.predictions), 0.99);
}

TEST(Forecaster, RejectsInfeasibleWindows) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  EXPECT_DEATH(forecaster.Run(FastConfig(ModelKind::kAverage, 2, 5, 7)),
               "Check failed");
  EXPECT_DEATH(forecaster.Run(FastConfig(ModelKind::kAverage, 999, 1, 1)),
               "Check failed");
}

TEST(Evaluation, PerfectModelBeatsRandomByLargeLift) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastConfig base = FastConfig(ModelKind::kRfF1, 0, 0, 0);
  EvaluationRunner runner(&forecaster, base);
  CellResult cell = runner.Evaluate(ModelKind::kRfF1, 30, 2, 3);
  EXPECT_NEAR(cell.average_precision, 1.0, 1e-6);
  EXPECT_GT(cell.lift, 1.5);
  CellResult random_cell = runner.Evaluate(ModelKind::kRandom, 30, 2, 3);
  // Half the sectors are positive: random AP concentrates near 0.5, so
  // the random model's lift is near 1.
  EXPECT_NEAR(random_cell.lift, 1.0, 0.5);
}

TEST(Evaluation, RandomApCachedPerDay) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  EvaluationRunner runner(&forecaster, ForecastConfig{});
  double first = runner.RandomAp(30, 2);
  double second = runner.RandomAp(30, 2);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_GT(first, 0.3);
  EXPECT_LT(first, 0.8);
}

TEST(Evaluation, SetRandomRepeatsDropsStaleCache) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  EvaluationRunner runner(&forecaster, ForecastConfig{});
  // Warm the ψ(F₀) cache with the default repeat count...
  double warm = runner.RandomAp(30, 2);
  // ...then change the repeat count. The cached value was computed with
  // the old count and must be recomputed, not served stale.
  runner.set_random_repeats(1);
  double after = runner.RandomAp(30, 2);
  EXPECT_NE(after, warm);

  // A fresh runner configured with 1 repeat up front agrees exactly with
  // the post-setter value — proof the cache was actually cleared.
  EvaluationRunner fresh(&forecaster, ForecastConfig{});
  fresh.set_random_repeats(1);
  EXPECT_DOUBLE_EQ(fresh.RandomAp(30, 2), after);
}

TEST(Evaluation, AggregateLiftOverT) {
  std::vector<CellResult> cells;
  for (int t : {10, 11, 12}) {
    CellResult cell;
    cell.model = ModelKind::kAverage;
    cell.t = t;
    cell.h = 1;
    cell.w = 7;
    cell.lift = 10.0 + t - 10;
    cells.push_back(cell);
  }
  MeanCi ci = AggregateLiftOverT(cells, ModelKind::kAverage, 1, 7);
  EXPECT_DOUBLE_EQ(ci.mean, 11.0);
  EXPECT_EQ(ci.count, 3);
  // Different (h, w) excluded.
  MeanCi empty = AggregateLiftOverT(cells, ModelKind::kAverage, 2, 7);
  EXPECT_EQ(empty.count, 0);
}

TEST(Evaluation, AggregateDeltaPairsByT) {
  std::vector<CellResult> cells;
  for (int t : {1, 2}) {
    CellResult reference;
    reference.model = ModelKind::kAverage;
    reference.t = t;
    reference.h = 1;
    reference.w = 7;
    reference.lift = 10.0;
    cells.push_back(reference);
    CellResult model;
    model.model = ModelKind::kRfF1;
    model.t = t;
    model.h = 1;
    model.w = 7;
    model.lift = 11.4;
    cells.push_back(model);
  }
  MeanCi delta = AggregateDeltaOverT(cells, ModelKind::kRfF1,
                                     ModelKind::kAverage, 1, 7);
  EXPECT_NEAR(delta.mean, 14.0, 1e-9);
  EXPECT_EQ(delta.count, 2);
}

TEST(Evaluation, TemporalStabilityPValuesInRange) {
  // ψ values drawn from the same distribution on both sides of the split:
  // p-values must be in (0, 1] and mostly large.
  Rng rng(6);
  std::vector<CellResult> cells;
  for (int t = 52; t <= 87; ++t) {
    CellResult cell;
    cell.model = ModelKind::kAverage;
    cell.t = t;
    cell.h = 1;
    cell.w = 7;
    cell.average_precision = 0.5 + 0.05 * rng.Gaussian();
    cells.push_back(cell);
  }
  std::vector<double> p_values = TemporalStabilityPValues(cells, 69);
  ASSERT_EQ(p_values.size(), 1u);
  EXPECT_GT(p_values[0], 0.01);
  EXPECT_LE(p_values[0], 1.0);
}

TEST(ParameterGrid, PaperGridMatchesTable3) {
  ParameterGrid grid = ParameterGrid::Paper();
  EXPECT_EQ(grid.models.size(), 8u);
  EXPECT_EQ(grid.t_values.size(), 36u);
  EXPECT_EQ(grid.t_values.front(), 52);
  EXPECT_EQ(grid.t_values.back(), 87);
  EXPECT_EQ(grid.h_values.size(), 15u);
  EXPECT_EQ(grid.h_values.back(), 29);
  EXPECT_EQ(grid.w_values.size(), 8u);
  EXPECT_EQ(grid.w_values.back(), 21);
  EXPECT_EQ(grid.NumCells(), 8LL * 36 * 15 * 8);
}

TEST(ParameterGrid, SubsampledStridesT) {
  ParameterGrid grid = ParameterGrid::Subsampled(6, {1, 7}, {7});
  EXPECT_EQ(grid.t_values.size(), 6u);
  EXPECT_EQ(grid.h_values, (std::vector<int>{1, 7}));
  EXPECT_EQ(grid.w_values, (std::vector<int>{7}));
}

TEST(Sweep, RunsEveryCell) {
  TinyStudy study;
  Forecaster forecaster = study.MakeForecaster();
  ForecastConfig base;
  base.forest.num_trees = 4;
  EvaluationRunner runner(&forecaster, base);
  ParameterGrid grid;
  grid.models = {ModelKind::kAverage, ModelKind::kPersist};
  grid.t_values = {20, 25};
  grid.h_values = {1, 2};
  grid.w_values = {3};
  std::vector<CellResult> cells = RunSweep(&runner, grid);
  EXPECT_EQ(cells.size(), 8u);
  for (const CellResult& cell : cells) {
    EXPECT_GT(cell.average_precision, 0.0);
  }
}

}  // namespace
}  // namespace hotspot
