// Property-style parameterized suites: each TEST_P sweeps an invariant
// over many random seeds / shapes.
#include <cmath>

#include "gtest/gtest.h"
#include "features/handcrafted_features.h"
#include "features/percentile_features.h"
#include "features/raw_features.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/flat_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "serialize/binary_format.h"
#include "serialize/model_io.h"
#include "stats/average_precision.h"
#include "stats/ks_test.h"
#include "stats/percentile.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull, 55ull,
                                           89ull));

TEST_P(SeededProperty, AveragePrecisionBoundsAndExtremes) {
  Rng rng(GetParam());
  const int n = 50;
  std::vector<float> labels(n), scores(n);
  int positives = 0;
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = rng.Bernoulli(0.2) ? 1.0f : 0.0f;
    if (labels[static_cast<size_t>(i)] != 0.0f) ++positives;
    scores[static_cast<size_t>(i)] = static_cast<float>(rng.UniformDouble());
  }
  if (positives == 0) {
    EXPECT_TRUE(std::isnan(AveragePrecision(labels, scores)));
    return;
  }
  double ap = AveragePrecision(labels, scores);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
  // Scoring by the labels themselves is a perfect ranking.
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, labels), 1.0);
}

TEST_P(SeededProperty, AveragePrecisionInvariantToMonotoneTransform) {
  Rng rng(GetParam() + 100);
  const int n = 40;
  std::vector<float> labels(n), scores(n), transformed(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
    scores[static_cast<size_t>(i)] =
        static_cast<float>(rng.Uniform(-2.0, 2.0));
    transformed[static_cast<size_t>(i)] =
        std::exp(scores[static_cast<size_t>(i)]);
  }
  double a = AveragePrecision(labels, scores);
  double b = AveragePrecision(labels, transformed);
  if (std::isnan(a)) {
    EXPECT_TRUE(std::isnan(b));
  } else {
    EXPECT_NEAR(a, b, 1e-12);
  }
}

TEST_P(SeededProperty, KsTestPValueRangeAndSelfComparison) {
  Rng rng(GetParam() + 200);
  std::vector<double> sample;
  for (int i = 0; i < 60; ++i) sample.push_back(rng.Gaussian());
  KsResult self = KolmogorovSmirnovTest(sample, sample);
  EXPECT_NEAR(self.statistic, 0.0, 1e-12);
  EXPECT_GT(self.p_value, 0.999);

  std::vector<double> other;
  for (int i = 0; i < 60; ++i) other.push_back(rng.Gaussian());
  KsResult result = KolmogorovSmirnovTest(sample, other);
  EXPECT_GE(result.statistic, 0.0);
  EXPECT_LE(result.statistic, 1.0);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
}

TEST_P(SeededProperty, PercentilesAreMonotoneAndBounded) {
  Rng rng(GetParam() + 300);
  std::vector<float> values;
  for (int i = 0; i < 80; ++i) {
    values.push_back(static_cast<float>(rng.Gaussian(3.0, 2.0)));
  }
  std::vector<double> percentiles =
      Percentiles(values, {5.0, 25.0, 50.0, 75.0, 95.0});
  for (size_t p = 1; p < percentiles.size(); ++p) {
    EXPECT_LE(percentiles[p - 1], percentiles[p]);
  }
  EXPECT_GE(percentiles.front(), MinValue(values));
  EXPECT_LE(percentiles.back(), MaxValue(values));
}

TEST_P(SeededProperty, TrailingMeanBetweenMinAndMax) {
  Rng rng(GetParam() + 400);
  std::vector<float> series;
  for (int i = 0; i < 50; ++i) {
    series.push_back(static_cast<float>(rng.Uniform(-1.0, 5.0)));
  }
  for (int x = 0; x < 50; x += 7) {
    for (int y : {1, 3, 10}) {
      double mean = TrailingMean(x, y, series);
      EXPECT_GE(mean, MinValue(series) - 1e-6);
      EXPECT_LE(mean, MaxValue(series) + 1e-6);
    }
  }
}

TEST_P(SeededProperty, IntegrationPreservesGrandMean) {
  Rng rng(GetParam() + 500);
  Matrix<float> hourly(3, 2 * kHoursPerWeek);
  for (float& v : hourly.data()) {
    v = static_cast<float>(rng.UniformDouble());
  }
  Matrix<float> daily = IntegrateScores(hourly, Resolution::kDaily);
  for (int i = 0; i < 3; ++i) {
    double hourly_mean = 0.0;
    for (int j = 0; j < hourly.cols(); ++j) hourly_mean += hourly(i, j);
    hourly_mean /= hourly.cols();
    double daily_mean = 0.0;
    for (int j = 0; j < daily.cols(); ++j) daily_mean += daily(i, j);
    daily_mean /= daily.cols();
    EXPECT_NEAR(hourly_mean, daily_mean, 1e-4);
  }
}

TEST_P(SeededProperty, BalancedWeightsAlwaysEqualizeClasses) {
  Rng rng(GetParam() + 600);
  std::vector<float> labels;
  for (int i = 0; i < 30; ++i) {
    labels.push_back(rng.Bernoulli(0.25) ? 1.0f : 0.0f);
  }
  std::vector<double> weights = ml::BalancedWeights(labels);
  double positive = 0.0, negative = 0.0;
  bool has_both = false;
  for (size_t i = 0; i < labels.size(); ++i) {
    (labels[i] != 0.0f ? positive : negative) += weights[i];
  }
  has_both = positive > 0.0 && negative > 0.0;
  if (has_both) {
    EXPECT_NEAR(positive, negative, 1e-9);
    EXPECT_NEAR(positive + negative, static_cast<double>(labels.size()),
                1e-9);
  }
}

TEST_P(SeededProperty, TreePredictionsAreLeafProbabilities) {
  Rng rng(GetParam() + 700);
  ml::Dataset data;
  const int n = 120;
  data.features = Matrix<float>(n, 4);
  data.labels.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 4; ++k) {
      data.features(i, k) = static_cast<float>(rng.Gaussian());
    }
    data.labels[static_cast<size_t>(i)] =
        rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  data.weights = ml::BalancedWeights(data.labels);
  ml::TreeConfig config;
  config.seed = GetParam();
  config.min_weight_fraction = 0.05;
  ml::DecisionTree tree(config);
  tree.Fit(data);
  for (int i = 0; i < n; ++i) {
    double p = tree.PredictProba(data.features.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  std::vector<double> importances = tree.FeatureImportances();
  double sum = 0.0;
  for (double imp : importances) {
    EXPECT_GE(imp, 0.0);
    sum += imp;
  }
  EXPECT_TRUE(sum == 0.0 || std::abs(sum - 1.0) < 1e-9);
}

TEST_P(SeededProperty, GbdtBinnerPartitionsDomain) {
  Rng rng(GetParam() + 800);
  Matrix<float> features(60, 2);
  for (float& v : features.data()) {
    v = static_cast<float>(rng.Uniform(-10.0, 10.0));
  }
  ml::FeatureBinner binner;
  binner.Fit(features, 16);
  for (int f = 0; f < 2; ++f) {
    // Every training value lands in a finite bin within range.
    for (int i = 0; i < 60; ++i) {
      int bin = binner.Bin(f, features(i, f));
      EXPECT_GE(bin, 1);
      EXPECT_LT(bin, binner.NumBins(f));
    }
    // Thresholds strictly increasing.
    const std::vector<float>& cuts = binner.Thresholds(f);
    for (size_t c = 1; c < cuts.size(); ++c) {
      EXPECT_LT(cuts[c - 1], cuts[c]);
    }
  }
}

TEST_P(SeededProperty, FlatForestCompileIsAPureFunctionOfTheModel) {
  // FlatForest::Compile must be a pure function of the source model: no
  // pointer-derived ordering, no uninitialized padding, no global state.
  // Two independent compiles of the same trained model (and of a
  // serialize round-trip copy, which shares no memory with the original)
  // must produce byte-identical encodings.
  Rng rng(GetParam() + 1000);
  ml::Dataset data;
  const int n = 150;
  const int d = 6;
  data.features = Matrix<float>(n, d);
  data.labels.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < d; ++k) {
      data.features(i, k) = rng.Bernoulli(0.05)
                                ? MissingValue()
                                : static_cast<float>(rng.Gaussian());
    }
    data.labels[static_cast<size_t>(i)] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  data.weights = ml::BalancedWeights(data.labels);

  auto encode = [](const ml::FlatForest& flat) {
    serialize::ByteWriter writer;
    serialize::ModelAccess::EncodeFlatForest(flat, &writer);
    return writer.bytes();
  };
  auto expect_pure = [&](const ml::BinaryClassifier& model,
                         const char* what) {
    std::vector<uint8_t> first = encode(ml::FlatForest::Compile(model));
    std::vector<uint8_t> second = encode(ml::FlatForest::Compile(model));
    EXPECT_EQ(first, second) << what << ": two compiles differ";
    EXPECT_FALSE(first.empty()) << what;
    return first;
  };

  ml::GbdtConfig gbdt_config;
  gbdt_config.num_iterations = 6;
  gbdt_config.num_leaves = 5;
  gbdt_config.max_bins = 16;
  gbdt_config.seed = GetParam();
  ml::Gbdt gbdt(gbdt_config);
  gbdt.Fit(data);
  std::vector<uint8_t> gbdt_bytes = expect_pure(gbdt, "gbdt");
  // A round-trip copy shares no heap state with the original; compiling
  // it must still produce the same bytes.
  {
    serialize::ByteWriter writer;
    serialize::ModelAccess::EncodeGbdt(gbdt, &writer);
    serialize::ByteReader reader(writer.bytes().data(),
                                 writer.bytes().size());
    std::unique_ptr<ml::Gbdt> copy =
        serialize::ModelAccess::DecodeGbdt(&reader);
    ASSERT_NE(copy, nullptr) << reader.error();
    EXPECT_EQ(encode(ml::FlatForest::Compile(*copy)), gbdt_bytes)
        << "gbdt: round-trip copy compiles differently";
  }

  ml::ForestConfig forest_config;
  forest_config.num_trees = 5;
  forest_config.seed = GetParam();
  ml::RandomForest forest(forest_config);
  forest.Fit(data);
  expect_pure(forest, "forest");

  ml::TreeConfig tree_config;
  tree_config.min_weight_fraction = 0.05;
  tree_config.seed = GetParam();
  ml::DecisionTree tree(tree_config);
  tree.Fit(data);
  expect_pure(tree, "tree");
}

TEST_P(SeededProperty, RngUniformIntIsUnbiasedAcrossRange) {
  Rng rng(GetParam() + 900);
  const int kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  const int kSamples = 7000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(0, kBuckets - 1))];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, kSamples / kBuckets, 150);
  }
}

class WindowProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 10, 14, 21),
                       ::testing::Values(1, 4, 11)));

TEST_P(WindowProperty, ExtractorDimsConsistent) {
  auto [window_days, channels] = GetParam();
  features::RawExtractor raw;
  features::DailyPercentileExtractor percentile;
  features::HandcraftedExtractor handcrafted;

  Matrix<float> window(window_days * kHoursPerDay, channels, 0.5f);
  std::vector<float> out;

  raw.Extract(window, &out);
  EXPECT_EQ(static_cast<int>(out.size()),
            raw.OutputDim(window_days, channels));
  percentile.Extract(window, &out);
  EXPECT_EQ(static_cast<int>(out.size()),
            percentile.OutputDim(window_days, channels));
  handcrafted.Extract(window, &out);
  EXPECT_EQ(static_cast<int>(out.size()),
            handcrafted.OutputDim(window_days, channels));

  // SourceChannel stays within range for all three extractors.
  for (int index = 0; index < raw.OutputDim(window_days, channels);
       index += 13) {
    int channel = raw.SourceChannel(index, window_days, channels);
    EXPECT_GE(channel, 0);
    EXPECT_LT(channel, channels);
  }
  for (int index = 0;
       index < handcrafted.OutputDim(window_days, channels); index += 13) {
    int channel = handcrafted.SourceChannel(index, window_days, channels);
    EXPECT_GE(channel, 0);
    EXPECT_LT(channel, channels);
  }
}

TEST_P(WindowProperty, ConstantWindowGivesConstantSummaries) {
  auto [window_days, channels] = GetParam();
  Matrix<float> window(window_days * kHoursPerDay, channels, 2.5f);
  features::DailyPercentileExtractor percentile;
  std::vector<float> out;
  percentile.Extract(window, &out);
  for (float v : out) EXPECT_FLOAT_EQ(v, 2.5f);
  features::HandcraftedExtractor handcrafted;
  handcrafted.Extract(window, &out);
  // Means, mins, maxes and raw values are all 2.5; stds and diffs 0; week
  // buckets beyond the window are NaN.
  for (float v : out) {
    if (IsMissing(v)) continue;
    EXPECT_TRUE(v == 2.5f || v == 0.0f) << v;
  }
}

}  // namespace
}  // namespace hotspot
