#include <cmath>

#include "gtest/gtest.h"
#include "core/dynamics.h"
#include "tensor/temporal.h"

namespace hotspot {
namespace {

TEST(DurationStats, HoursPerDayCountsOnlyHotDays) {
  // One sector, 2 days: 3 hot hours on day 0, none on day 1.
  Matrix<float> hourly(1, 48, 0.0f);
  hourly(0, 5) = hourly(0, 6) = hourly(0, 7) = 1.0f;
  Matrix<float> daily(1, 2, 0.0f);
  Matrix<float> weekly(1, 1, 0.0f);
  DurationStats stats = ComputeDurationStats(hourly, daily, weekly);
  EXPECT_EQ(stats.hours_per_day.total(), 1);
  EXPECT_EQ(stats.hours_per_day.count(3), 1);
}

TEST(DurationStats, DaysPerWeekAndWeeks) {
  // 2 weeks of daily labels: week 0 has 2 hot days, week 1 has 0.
  Matrix<float> hourly(1, 2 * kHoursPerWeek, 0.0f);
  Matrix<float> daily(1, 14, 0.0f);
  daily(0, 1) = daily(0, 4) = 1.0f;
  Matrix<float> weekly(1, 2, 0.0f);
  weekly(0, 0) = 1.0f;
  DurationStats stats = ComputeDurationStats(hourly, daily, weekly);
  EXPECT_EQ(stats.days_per_week.count(2), 1);
  EXPECT_EQ(stats.days_per_week.total(), 1);
  EXPECT_EQ(stats.weeks_as_hotspot.count(1), 1);
}

TEST(DurationStats, ConsecutiveRuns) {
  Matrix<float> hourly(1, 48, 0.0f);
  for (int j = 10; j < 26; ++j) hourly(0, j) = 1.0f;  // 16-hour run
  Matrix<float> daily(1, 2, 1.0f);                    // 2-day run
  Matrix<float> weekly(1, 1, 0.0f);
  DurationStats stats = ComputeDurationStats(hourly, daily, weekly);
  EXPECT_EQ(stats.consecutive_hours.count(16), 1);
  EXPECT_EQ(stats.consecutive_days.count(2), 1);
}

TEST(WeeklyPatterns, CountsAndNormalizesExcludingEmpty) {
  // 2 sectors, 2 weeks. Sector 0: MTWTF both weeks. Sector 1: one empty
  // week, one Saturday-only week.
  Matrix<float> daily(2, 14, 0.0f);
  for (int week = 0; week < 2; ++week) {
    for (int d = 0; d < 5; ++d) daily(0, week * 7 + d) = 1.0f;
  }
  daily(1, 7 + 5) = 1.0f;
  std::vector<WeeklyPattern> patterns = TopWeeklyPatterns(daily, 10);
  ASSERT_EQ(patterns.size(), 2u);
  EXPECT_EQ(patterns[0].bits, 0b0011111);
  EXPECT_EQ(patterns[0].count, 2);
  EXPECT_NEAR(patterns[0].relative_count, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(patterns[1].bits, 1 << 5);
  EXPECT_NEAR(patterns[1].relative_count, 1.0 / 3.0, 1e-12);
}

TEST(WeeklyPatterns, TopKTruncates) {
  Matrix<float> daily(3, 7, 0.0f);
  daily(0, 0) = 1.0f;
  daily(1, 1) = 1.0f;
  daily(2, 2) = 1.0f;
  EXPECT_EQ(TopWeeklyPatterns(daily, 2).size(), 2u);
}

TEST(WeeklyPatterns, PatternStringFormat) {
  EXPECT_EQ(PatternString(0), "- - - - - - -");
  EXPECT_EQ(PatternString(0b1111111), "M T W T F S S");
  EXPECT_EQ(PatternString(0b0011111), "M T W T F - -");
  EXPECT_EQ(PatternString(0b1100000), "- - - - - S S");
}

TEST(WeeklyConsistency, PerfectlyRegularSectorScoresOne) {
  // Same MTWTF pattern every week.
  Matrix<float> daily(1, 28, 0.0f);
  for (int week = 0; week < 4; ++week) {
    for (int d = 0; d < 5; ++d) daily(0, week * 7 + d) = 1.0f;
  }
  ConsistencyStats stats = WeeklyConsistency(daily);
  EXPECT_NEAR(stats.mean, 1.0, 1e-6);
  EXPECT_NEAR(stats.p50, 1.0, 1e-6);
  EXPECT_EQ(stats.count, 4);
}

TEST(WeeklyConsistency, AlternatingPatternsScoreLower) {
  // Week 0: MTW; week 1: FSS; alternating -> average week is flat-ish and
  // correlations are far below 1.
  Matrix<float> daily(1, 28, 0.0f);
  for (int week = 0; week < 4; ++week) {
    if (week % 2 == 0) {
      daily(0, week * 7 + 0) = daily(0, week * 7 + 1) =
          daily(0, week * 7 + 2) = 1.0f;
    } else {
      daily(0, week * 7 + 4) = daily(0, week * 7 + 5) =
          daily(0, week * 7 + 6) = 1.0f;
    }
  }
  ConsistencyStats stats = WeeklyConsistency(daily);
  EXPECT_LT(stats.mean, 0.5);
}

TEST(SpatialBuckets, EdgesAreLogSpacedWithZeroBucket) {
  std::vector<double> edges = SpatialBucketEdges();
  ASSERT_GE(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 0.0);
  EXPECT_DOUBLE_EQ(edges[1], 0.05);
  for (size_t b = 2; b + 2 < edges.size(); ++b) {
    EXPECT_NEAR(edges[b + 1] / edges[b], 2.0, 1e-9);
  }
}

/// Builds a 2-tower topology (3 sectors each) with known label series.
struct SpatialFixture {
  simnet::Topology topology;
  Matrix<float> labels;

  SpatialFixture() {
    simnet::TopologyConfig config;
    config.target_sectors = 6;
    config.min_towers_per_patch = 2;
    config.max_towers_per_patch = 2;
    topology = simnet::Topology::Generate(config, 42);
    // Sectors 0-2 share tower A, 3-5 share tower B. Give sectors of the
    // same tower identical alternating series, and the other tower an
    // uncorrelated series.
    labels = Matrix<float>(6, 100);
    for (int j = 0; j < 100; ++j) {
      float a = j % 2 == 0 ? 1.0f : 0.0f;
      float b = (j / 3) % 2 == 0 ? 1.0f : 0.0f;
      for (int i = 0; i < 3; ++i) labels(i, j) = a;
      for (int i = 3; i < 6; ++i) labels(i, j) = b;
    }
  }
};

TEST(SpatialCorrelation, SameTowerBucketIsPerfectlyCorrelated) {
  SpatialFixture fixture;
  std::vector<BucketSummary> summaries = SpatialCorrelationByDistance(
      fixture.topology, fixture.labels, 5, SpatialAggregation::kAverage);
  // Bucket 0 = distance 0 (same tower): correlation exactly 1.
  EXPECT_GT(summaries[0].count, 0);
  EXPECT_NEAR(summaries[0].median, 1.0, 1e-6);
}

TEST(SpatialCorrelation, MaxAggregationAtLeastAverage) {
  SpatialFixture fixture;
  std::vector<BucketSummary> average = SpatialCorrelationByDistance(
      fixture.topology, fixture.labels, 5, SpatialAggregation::kAverage);
  std::vector<BucketSummary> maximum = SpatialCorrelationByDistance(
      fixture.topology, fixture.labels, 5, SpatialAggregation::kMaximum);
  for (size_t b = 0; b < average.size(); ++b) {
    if (average[b].count == 0) continue;
    EXPECT_GE(maximum[b].median, average[b].median - 1e-9);
  }
}

TEST(BestCorrelation, FindsPerfectTwinsRegardlessOfDistance) {
  SpatialFixture fixture;
  std::vector<BucketSummary> summaries =
      BestCorrelationByDistance(fixture.topology, fixture.labels, 5);
  // Every sector has two same-tower twins with correlation 1.
  EXPECT_NEAR(summaries[0].median, 1.0, 1e-6);
}

TEST(DurationStatsConstruction, HistogramSizes) {
  DurationStats stats(18);
  EXPECT_EQ(stats.hours_per_day.max_value(), 24);
  EXPECT_EQ(stats.days_per_week.max_value(), 7);
  EXPECT_EQ(stats.weeks_as_hotspot.max_value(), 18);
}

}  // namespace
}  // namespace hotspot
