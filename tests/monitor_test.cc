// Lockdown tests for the online monitoring subsystem (src/monitor):
//   * fingerprint sketches — deterministic, NaN-excluding, codec
//     round-trip;
//   * drift detection — rolling two-sample KS against the fingerprints,
//     with the min-sample and effect-size gates of the alert ladder;
//   * delayed-label quality tracking — rolling AP / lift Λ / calibration;
//   * health reporting — JSON schema contract and alert aggregation;
//   * end-to-end — a ForecastService whose live traffic comes from a
//     simnet network with a shifted load profile must transition
//     OK → DRIFT while an undrifted control service stays OK.
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/forecast_service.h"
#include "gtest/gtest.h"
#include "monitor/drift.h"
#include "monitor/fingerprint.h"
#include "monitor/health.h"
#include "monitor/monitor.h"
#include "monitor/quality.h"
#include "serialize/bundle.h"
#include "serialize_golden.h"
#include "util/rng.h"

namespace hotspot {
namespace {

using monitor::AlertState;

// ---------------------------------------------------------------------------
// Distribution sketches
// ---------------------------------------------------------------------------

std::vector<float> GaussianSample(int n, double mean, double sigma,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(static_cast<size_t>(n));
  for (float& v : values) {
    v = static_cast<float>(mean + sigma * rng.Gaussian());
  }
  return values;
}

TEST(Sketch, DeterministicAndSorted) {
  std::vector<float> values = GaussianSample(5000, 2.0, 0.5, 7);
  monitor::DistributionSketch a = monitor::BuildSketch("ch", values, 256, 3);
  monitor::DistributionSketch b = monitor::BuildSketch("ch", values, 256, 3);
  EXPECT_EQ(a, b);  // same seed → bitwise identical
  ASSERT_EQ(a.reservoir.size(), 256u);
  EXPECT_TRUE(std::is_sorted(a.reservoir.begin(), a.reservoir.end()));
  EXPECT_EQ(a.count, 5000u);
  EXPECT_NEAR(a.mean, 2.0, 0.05);
  EXPECT_NEAR(a.stddev, 0.5, 0.05);
  ASSERT_EQ(a.quantile_ps.size(), a.quantiles.size());
  EXPECT_TRUE(std::is_sorted(a.quantiles.begin(), a.quantiles.end()));

  // A different seed draws a different (but equally valid) reservoir.
  monitor::DistributionSketch c = monitor::BuildSketch("ch", values, 256, 4);
  EXPECT_NE(a.reservoir, c.reservoir);
}

TEST(Sketch, DropsNaNsAndHandlesEmpty) {
  std::vector<float> values = {1.0f, MissingValue(), 2.0f, MissingValue(),
                               3.0f};
  monitor::DistributionSketch sketch =
      monitor::BuildSketch("ch", values, 8, 1);
  EXPECT_EQ(sketch.count, 3u);
  EXPECT_EQ(sketch.reservoir.size(), 3u);
  for (float v : sketch.reservoir) EXPECT_TRUE(std::isfinite(v));

  monitor::DistributionSketch empty =
      monitor::BuildSketch("none", {MissingValue(), MissingValue()}, 8, 1);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(empty.reservoir.empty());
}

TEST(Sketch, FingerprintCodecRoundTrip) {
  monitor::BundleFingerprints fingerprints;
  fingerprints.first_hour = 24;
  fingerprints.last_hour = 24 * 8;
  fingerprints.channels.push_back(
      monitor::BuildSketch("kpi_a", GaussianSample(500, 0.0, 1.0, 1), 64, 1));
  fingerprints.channels.push_back(
      monitor::BuildSketch("kpi_b", GaussianSample(500, 5.0, 2.0, 2), 64, 2));
  fingerprints.scores = monitor::BuildSketch(
      "prediction_score", GaussianSample(200, 0.4, 0.1, 3), 64, 3);

  serialize::ByteWriter writer;
  monitor::EncodeFingerprints(fingerprints, &writer);
  serialize::ByteReader reader(writer.bytes().data(), writer.bytes().size());
  monitor::BundleFingerprints loaded;
  ASSERT_TRUE(monitor::DecodeFingerprints(&reader, &loaded))
      << reader.error();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(loaded, fingerprints);
}

// ---------------------------------------------------------------------------
// Drift detection
// ---------------------------------------------------------------------------

monitor::BundleFingerprints GaussianFingerprints() {
  monitor::BundleFingerprints fingerprints;
  fingerprints.channels.push_back(monitor::BuildSketch(
      "kpi_a", GaussianSample(4000, 0.0, 1.0, 11), 256, 1));
  fingerprints.scores = monitor::BuildSketch(
      "prediction_score", GaussianSample(4000, 0.5, 0.1, 12), 256, 2);
  return fingerprints;
}

TEST(DriftDetector, InDistributionTrafficStaysOk) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::DriftDetector detector(&fingerprints, monitor::DriftThresholds{},
                                  512);
  for (float v : GaussianSample(512, 0.0, 1.0, 99)) {
    detector.ObserveInput(0, v);
  }
  monitor::DriftFinding finding = detector.EvaluateChannel(0);
  EXPECT_EQ(finding.state, AlertState::kOk);
  EXPECT_EQ(finding.live_samples, 512u);
  EXPECT_EQ(finding.name, "kpi_a");
}

TEST(DriftDetector, ShiftedTrafficEscalatesToDrift) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::DriftDetector detector(&fingerprints, monitor::DriftThresholds{},
                                  512);
  // Live inputs shifted by two training standard deviations.
  for (float v : GaussianSample(512, 2.0, 1.0, 99)) {
    detector.ObserveInput(0, v);
  }
  monitor::DriftFinding finding = detector.EvaluateChannel(0);
  EXPECT_EQ(finding.state, AlertState::kDrift);
  EXPECT_GT(finding.statistic, 0.25);
  EXPECT_LT(finding.p_value, 1e-3);
  EXPECT_EQ(detector.OverallState(), AlertState::kDrift);
}

TEST(DriftDetector, TooFewSamplesIsAlwaysOk) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::DriftThresholds thresholds;
  monitor::DriftDetector detector(&fingerprints, thresholds, 512);
  // One sample short of the gate, maximally shifted: still OK.
  for (int i = 0; i < thresholds.min_samples - 1; ++i) {
    detector.ObserveInput(0, 100.0f);
  }
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kOk);
  // NaNs don't count toward the gate.
  for (int i = 0; i < 10; ++i) detector.ObserveInput(0, MissingValue());
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kOk);
  // The final finite sample crosses it.
  detector.ObserveInput(0, 100.0f);
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kDrift);
}

TEST(DriftDetector, EmptyReferenceNeverAlerts) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  fingerprints.channels[0].reservoir.clear();  // all-NaN training channel
  monitor::DriftDetector detector(&fingerprints, monitor::DriftThresholds{},
                                  512);
  for (float v : GaussianSample(512, 50.0, 1.0, 99)) {
    detector.ObserveInput(0, v);
  }
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kOk);
}

TEST(DriftDetector, RollingWindowRecovers) {
  // Drifted traffic followed by a full window of in-distribution traffic:
  // the verdict must return to OK (the window forgets the excursion).
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::DriftDetector detector(&fingerprints, monitor::DriftThresholds{},
                                  256);
  for (float v : GaussianSample(256, 3.0, 1.0, 5)) {
    detector.ObserveInput(0, v);
  }
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kDrift);
  for (float v : GaussianSample(256, 0.0, 1.0, 6)) {
    detector.ObserveInput(0, v);
  }
  EXPECT_EQ(detector.EvaluateChannel(0).state, AlertState::kOk);
  EXPECT_EQ(detector.EvaluateChannel(0).observed_total, 512u);
}

TEST(DriftState, WorstStateAndNames) {
  EXPECT_EQ(monitor::WorstState(AlertState::kOk, AlertState::kWarn),
            AlertState::kWarn);
  EXPECT_EQ(monitor::WorstState(AlertState::kDrift, AlertState::kWarn),
            AlertState::kDrift);
  EXPECT_STREQ(monitor::AlertStateName(AlertState::kOk), "OK");
  EXPECT_STREQ(monitor::AlertStateName(AlertState::kWarn), "WARN");
  EXPECT_STREQ(monitor::AlertStateName(AlertState::kDrift), "DRIFT");
}

// ---------------------------------------------------------------------------
// Quality tracking
// ---------------------------------------------------------------------------

TEST(QualityTracker, PerfectRankingLiftAndCalibration) {
  monitor::QualityConfig config;
  config.window = 1000;
  monitor::QualityTracker tracker(config);
  // 1000 pairs, 10 % positives, scores perfectly separate the classes and
  // sit at the observed rate of their calibration bin.
  for (int i = 0; i < 1000; ++i) {
    bool hot = i % 10 == 0;
    tracker.Record(hot ? 0.95f : 0.05f, hot ? 1.0f : 0.0f);
  }
  monitor::QualitySummary summary = tracker.Summarize();
  EXPECT_EQ(summary.labels_total, 1000u);
  EXPECT_EQ(summary.window_count, 1000);
  EXPECT_DOUBLE_EQ(summary.positive_rate, 0.1);
  EXPECT_DOUBLE_EQ(summary.average_precision, 1.0);
  EXPECT_DOUBLE_EQ(summary.lift, 10.0);  // Λ = ψ / positive_rate

  ASSERT_EQ(summary.calibration.size(), 10u);
  EXPECT_EQ(summary.calibration[0].count, 900u);  // scores at 0.05
  EXPECT_EQ(summary.calibration[9].count, 100u);  // scores at 0.95
  EXPECT_DOUBLE_EQ(summary.calibration[0].observed_rate, 0.0);
  EXPECT_DOUBLE_EQ(summary.calibration[9].observed_rate, 1.0);
  // Perfectly confident and right: ECE = 0.9·|0.05−0| + 0.1·|0.95−1|.
  EXPECT_NEAR(summary.expected_calibration_error, 0.05, 1e-6);
}

TEST(QualityTracker, RollingWindowEvictsOldPairs) {
  monitor::QualityConfig config;
  config.window = 100;
  monitor::QualityTracker tracker(config);
  // 100 inverted pairs (worst ranking), then 100 perfect ones: the window
  // must only see the perfect tail.
  for (int i = 0; i < 100; ++i) {
    tracker.Record(i % 2 ? 0.9f : 0.1f, i % 2 ? 0.0f : 1.0f);
  }
  for (int i = 0; i < 100; ++i) {
    tracker.Record(i % 2 ? 0.9f : 0.1f, i % 2 ? 1.0f : 0.0f);
  }
  monitor::QualitySummary summary = tracker.Summarize();
  EXPECT_EQ(summary.labels_total, 200u);
  EXPECT_EQ(summary.window_count, 100);
  EXPECT_DOUBLE_EQ(summary.average_precision, 1.0);
}

TEST(QualityTracker, NonFinitePairsAreSkipped) {
  monitor::QualityTracker tracker(monitor::QualityConfig{});
  tracker.Record(MissingValue(), 1.0f);
  tracker.Record(0.5f, MissingValue());
  EXPECT_EQ(tracker.labels_total(), 0u);
  monitor::QualitySummary summary = tracker.Summarize();
  EXPECT_EQ(summary.window_count, 0);
  EXPECT_TRUE(std::isnan(summary.average_precision));
  EXPECT_TRUE(std::isnan(summary.lift));
}

// ---------------------------------------------------------------------------
// Health report JSON
// ---------------------------------------------------------------------------

TEST(HealthReport, JsonCarriesTheSchemaContract) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::MonitorConfig config;
  monitor::ServingMonitor monitor(&fingerprints, config);

  Tensor3<float> tensor(8, 24, 1);
  Rng rng(4);
  for (float& v : tensor.data()) v = static_cast<float>(rng.Gaussian());
  std::vector<float> scores(8, 0.5f);
  for (int batch = 0; batch < 8; ++batch) {
    monitor.ObserveBatch(tensor, 0, 24, scores, 0.004);
  }
  std::vector<float> labels(8, 0.0f);
  labels[0] = 1.0f;
  monitor.RecordOutcomes(scores, labels);

  monitor::HealthReport report = monitor.Report();
  EXPECT_TRUE(report.monitoring_enabled);
  EXPECT_EQ(report.requests, 8u);
  EXPECT_EQ(report.windows, 64u);
  EXPECT_EQ(report.latency.count, 8u);
  EXPECT_GT(report.latency.p99_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.latency.in_slo_fraction, 1.0);
  EXPECT_EQ(report.latency.state, AlertState::kOk);

  std::string json = monitor::HealthReportToJson(report);
  for (const char* key :
       {"\"monitoring_enabled\"", "\"status\"", "\"requests\"",
        "\"windows\"", "\"drift\"", "\"score\"", "\"channels\"",
        "\"ks_statistic\"", "\"p_value\"", "\"live_samples\"",
        "\"observed_total\"", "\"quality\"", "\"labels_total\"",
        "\"window_count\"", "\"positive_rate\"", "\"average_precision\"",
        "\"lift\"", "\"expected_calibration_error\"", "\"calibration\"",
        "\"mean_score\"", "\"observed_rate\"", "\"latency\"",
        "\"sum_seconds\"", "\"p50_seconds\"", "\"p99_seconds\"",
        "\"slo_seconds\"", "\"in_slo_fraction\"", "\"alerts\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // 8 labels < min_labels (64): quality metrics exist but are reported as
  // null-free numbers, and no quality verdict is issued.
  EXPECT_EQ(report.quality_state, AlertState::kOk);
  // NaN-free contract: %g never emits "nan"/"inf" (they become null).
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(HealthReport, LatencySloViolationsEscalate) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::MonitorConfig config;
  config.latency.slo_seconds = 0.010;
  monitor::ServingMonitor monitor(&fingerprints, config);
  Tensor3<float> tensor(1, 24, 1);
  std::vector<float> scores(1, 0.5f);
  // 10 batches, 3 of which blow the 10 ms SLO: in-SLO 70 % < 95 % → DRIFT.
  for (int batch = 0; batch < 10; ++batch) {
    monitor.ObserveBatch(tensor, 0, 24, scores,
                         batch < 3 ? 0.200 : 0.001);
  }
  monitor::HealthReport report = monitor.Report();
  EXPECT_LT(report.latency.in_slo_fraction, 0.95);
  EXPECT_EQ(report.latency.state, AlertState::kDrift);
  EXPECT_EQ(report.overall, AlertState::kDrift);
  ASSERT_FALSE(report.alerts.empty());
  EXPECT_EQ(report.alerts.back().target, "latency/slo");
}

TEST(HealthReport, DegradedQualityFiresTheLiftAlert) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::MonitorConfig config;
  monitor::ServingMonitor monitor(&fingerprints, config);
  // 256 matured labels with anti-correlated, tie-free scores (ties would
  // be grouped by the AP computation and read as a random ranking): every
  // positive ranks below every negative, so lift < 1 → DRIFT.
  std::vector<float> scores, labels;
  for (int i = 0; i < 256; ++i) {
    bool hot = i % 4 == 0;
    scores.push_back((hot ? 0.0f : 0.5f) + 0.001f * static_cast<float>(i));
    labels.push_back(hot ? 1.0f : 0.0f);
  }
  monitor.RecordOutcomes(scores, labels);
  monitor::HealthReport report = monitor.Report();
  EXPECT_LT(report.quality.lift, 1.0);
  EXPECT_EQ(report.quality_state, AlertState::kDrift);
  ASSERT_FALSE(report.alerts.empty());
  EXPECT_EQ(report.alerts.back().target, "quality/lift");
}

// ---------------------------------------------------------------------------
// De-escalation hysteresis: a drift episode that subsides
// ---------------------------------------------------------------------------

TEST(HealthReport, SubsidedDriftWalksDownTheLadderWithoutOscillating) {
  monitor::BundleFingerprints fingerprints = GaussianFingerprints();
  monitor::MonitorConfig config;
  config.drift_window = 256;
  config.input_sample_hours = 24;
  config.ladder_hold_reports = 2;
  monitor::ServingMonitor monitor(&fingerprints, config);

  // Each ObserveBatch refreshes at most drift_window/4 ring slots (the
  // per-batch observation budget), so a phase change needs a few batches
  // before the rolling window fully forgets the previous regime: 4
  // drifted batches saturate the verdict, 8 calm ones flush every slot.
  uint64_t seed = 100;
  auto feed = [&monitor, &seed](double mean, int batches) {
    for (int b = 0; b < batches; ++b, ++seed) {
      Tensor3<float> tensor(11, 24, 1);
      std::vector<float> values = GaussianSample(11 * 24, mean, 1.0, seed);
      std::copy(values.begin(), values.end(), tensor.data().begin());
      // Scores stay in-distribution throughout: this test isolates the
      // input-drift ladder (constant scores would trip the score sketch).
      monitor.ObserveBatch(tensor, 0, 24,
                           GaussianSample(11, 0.5, 0.1, seed + 1000),
                           0.001);
    }
  };

  // The injected episode: shifted traffic escalates immediately — no
  // hysteresis on the way up.
  feed(3.0, 4);
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kDrift);

  // The episode subsides: in-distribution traffic flushes the rolling
  // window, so every raw verdict from here on is OK. The reported ladder
  // must hold each rung for ladder_hold_reports consecutive calmer
  // Reports and then step down exactly one rung — DRIFT, DRIFT→WARN,
  // WARN, WARN→OK — never snapping straight to OK and never climbing
  // back up without raw evidence.
  feed(0.0, 8);
  std::vector<AlertState> walk;
  for (int report = 0; report < 6; ++report) {
    monitor::HealthReport snapshot = monitor.Report();
    // Quality and latency are quiet, so the overall state — the "page
    // someone" bit — must track the damped drift rung, not the raw OK.
    EXPECT_EQ(snapshot.overall, snapshot.drift_state);
    walk.push_back(snapshot.drift_state);
  }
  const std::vector<AlertState> expected = {
      AlertState::kDrift, AlertState::kWarn, AlertState::kWarn,
      AlertState::kOk,    AlertState::kOk,   AlertState::kOk};
  EXPECT_EQ(walk, expected);

  // A flicker back into drift mid-descent snaps the ladder straight back
  // to DRIFT (escalation is immediate) and restarts the descent clock —
  // the rung sequence never oscillates through intermediate states.
  feed(3.0, 4);
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kDrift);
  feed(0.0, 8);
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kDrift);  // hold 1/2
  feed(3.0, 4);  // the flicker: resets the hold count
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kDrift);
  feed(0.0, 8);
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kDrift);  // hold 1/2
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kWarn);   // step down
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kWarn);
  EXPECT_EQ(monitor.Report().drift_state, AlertState::kOk);
}

// ---------------------------------------------------------------------------
// End-to-end: injected load drift through a served bundle
// ---------------------------------------------------------------------------

class MonitorServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("hotspot_monitor_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

/// One shared golden study per process (building it is the expensive part).
const Study& ControlStudy() {
  static const Study* study =
      new Study(BuildStudy(StudyInput(testing::GoldenNetworkConfig())));
  return *study;
}

/// The drift injection: the same network topology and seed, but with the
/// latent load process pushed into chronic overload everywhere — the
/// "shifted load profile" scenario the monitor exists to catch.
const Study& DriftedStudy() {
  static const Study* study = [] {
    simnet::GeneratorConfig config = testing::GoldenNetworkConfig();
    config.load.chronic_fraction = 1.0;
    config.load.chronic_min = 2.0;
    config.load.chronic_max = 3.0;
    return new Study(BuildStudy(StudyInput(config)));
  }();
  return *study;
}

/// The test monitor config: every hour of the freshest served day is
/// sampled so the live distribution covers the same diurnal support as the
/// training fingerprint (the default strided sampling trades a little of
/// that fidelity for serve-path cheapness).
monitor::MonitorConfig TestMonitorConfig() {
  monitor::MonitorConfig config;
  config.input_sample_hours = 24;
  config.drift_window = 1024;
  return config;
}

TEST_F(MonitorServingTest, InjectedLoadDriftEscalatesWhileControlStaysOk) {
  const Study& control = ControlStudy();
  Forecaster forecaster = control.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();

  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = control.score_config;
  bundle->normalization =
      serialize::NormalizationFromKpis(control.network.kpis);
  ASSERT_NE(bundle->fingerprints, nullptr);
  const std::string path = (dir_ / "bundle.hsb").string();
  ASSERT_TRUE(serialize::SaveBundle(path, *bundle).ok);

  // Two services off the same artifact: one keeps seeing the training-era
  // network, one is pointed at the drifted network.
  std::unique_ptr<ForecastService> control_service;
  std::unique_ptr<ForecastService> drifted_service;
  ASSERT_TRUE(ForecastService::Load(path, &control_service).ok);
  ASSERT_TRUE(ForecastService::Load(path, &drifted_service).ok);
  ASSERT_TRUE(control_service->EnableMonitoring(TestMonitorConfig()));
  ASSERT_TRUE(drifted_service->EnableMonitoring(TestMonitorConfig()));

  // Before any traffic: both healthy, no evidence of anything.
  EXPECT_EQ(control_service->Health().overall, AlertState::kOk);
  EXPECT_EQ(drifted_service->Health().overall, AlertState::kOk);

  const Study& drifted = DriftedStudy();
  ASSERT_EQ(drifted.features.num_channels(),
            control.features.num_channels());
  for (int round = 0; round < 3; ++round) {
    control_service->PredictAtDay(control.features, config.t);
    drifted_service->PredictAtDay(drifted.features, config.t);
  }

  monitor::HealthReport control_report = control_service->Health();
  monitor::HealthReport drifted_report = drifted_service->Health();

  // The control stream matches the fingerprints: fleet state stays OK.
  EXPECT_EQ(control_report.overall, AlertState::kOk)
      << monitor::HealthReportToJson(control_report);
  EXPECT_TRUE(control_report.alerts.empty());

  // The drifted stream must escalate to DRIFT on at least one KPI channel
  // (the load shift moves every congestion KPI), and the overall state —
  // the "page someone" bit — must follow.
  EXPECT_EQ(drifted_report.drift_state, AlertState::kDrift)
      << monitor::HealthReportToJson(drifted_report);
  EXPECT_EQ(drifted_report.overall, AlertState::kDrift);
  EXPECT_FALSE(drifted_report.alerts.empty());
  int drifted_channels = 0;
  for (const monitor::DriftFinding& finding : drifted_report.channel_drift) {
    if (finding.state == AlertState::kDrift) ++drifted_channels;
  }
  EXPECT_GT(drifted_channels, 0);

  // Monitoring is an observer: both services must produce bit-identical
  // predictions for identical inputs, drifted traffic or not.
  EXPECT_EQ(control_service->PredictAtDay(control.features, config.t),
            drifted_service->PredictAtDay(control.features, config.t));
}

TEST_F(MonitorServingTest, MonitoringTogglesAndSurvivesDisable) {
  const Study& control = ControlStudy();
  Forecaster forecaster = control.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = control.score_config;

  ForecastService service(std::move(bundle));
  EXPECT_TRUE(service.monitoring_enabled());  // auto-on with fingerprints

  service.DisableMonitoring();
  EXPECT_FALSE(service.monitoring_enabled());
  monitor::HealthReport disabled = service.Health();
  EXPECT_FALSE(disabled.monitoring_enabled);
  EXPECT_EQ(disabled.overall, AlertState::kOk);
  EXPECT_EQ(disabled.requests, 0u);
  // Serving and label feedback still work with monitoring off.
  std::vector<float> scores =
      service.PredictAtDay(control.features, config.t);
  service.RecordOutcomes(scores, forecaster.LabelsAtDay(config.t));
  EXPECT_EQ(service.Health().requests, 0u);

  ASSERT_TRUE(service.EnableMonitoring(TestMonitorConfig()));
  service.PredictAtDay(control.features, config.t);
  service.RecordOutcomes(scores, forecaster.LabelsAtDay(config.t));
  monitor::HealthReport report = service.Health();
  EXPECT_TRUE(report.monitoring_enabled);
  EXPECT_EQ(report.requests, 1u);
  EXPECT_EQ(report.windows,
            static_cast<uint64_t>(control.num_sectors()));
  EXPECT_EQ(report.quality.labels_total,
            static_cast<uint64_t>(control.num_sectors()));
}

TEST_F(MonitorServingTest, BundleWithoutFingerprintsServesUnmonitored) {
  const Study& control = ControlStudy();
  Forecaster forecaster = control.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = control.score_config;
  bundle->fingerprints.reset();  // what loading a v1 file produces

  ForecastService service(std::move(bundle));
  EXPECT_FALSE(service.monitoring_enabled());
  EXPECT_FALSE(service.EnableMonitoring(TestMonitorConfig()));
  EXPECT_FALSE(service.monitoring_enabled());
  std::vector<float> scores =
      service.PredictAtDay(control.features, config.t);
  EXPECT_EQ(static_cast<int>(scores.size()), control.num_sectors());
  EXPECT_FALSE(service.Health().monitoring_enabled);
}

}  // namespace
}  // namespace hotspot
