#include <cmath>

#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::ml {
namespace {

/// Linearly separable: label = x0 > 0.5.
Dataset SeparableDataset(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.features = Matrix<float>(n, 3);
  data.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float x0 = static_cast<float>(rng.UniformDouble());
    data.features(i, 0) = x0;
    data.features(i, 1) = static_cast<float>(rng.Gaussian());
    data.features(i, 2) = static_cast<float>(rng.Gaussian());
    data.labels[static_cast<size_t>(i)] = x0 > 0.5f ? 1.0f : 0.0f;
  }
  data.weights.assign(static_cast<size_t>(n), 1.0);
  return data;
}

/// XOR of two binary features, not linearly separable.
Dataset XorDataset(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.features = Matrix<float>(n, 2);
  data.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    int a = static_cast<int>(rng.UniformInt(0, 1));
    int b = static_cast<int>(rng.UniformInt(0, 1));
    data.features(i, 0) = static_cast<float>(a);
    data.features(i, 1) = static_cast<float>(b);
    data.labels[static_cast<size_t>(i)] = (a ^ b) ? 1.0f : 0.0f;
  }
  data.weights.assign(static_cast<size_t>(n), 1.0);
  return data;
}

double Accuracy(const BinaryClassifier& model, const Dataset& data) {
  int correct = 0;
  for (int i = 0; i < data.num_instances(); ++i) {
    double p = model.PredictProba(data.features.Row(i));
    bool predicted = p >= 0.5;
    bool actual = data.labels[static_cast<size_t>(i)] != 0.0f;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / data.num_instances();
}

TEST(BalancedWeights, ClassesCarryEqualTotalWeight) {
  std::vector<float> labels = {1, 0, 0, 0};
  std::vector<double> weights = BalancedWeights(labels);
  double positive = weights[0];
  double negative = weights[1] + weights[2] + weights[3];
  EXPECT_DOUBLE_EQ(positive, negative);
  EXPECT_DOUBLE_EQ(positive + negative, 4.0);
}

TEST(BalancedWeights, DegenerateClassYieldsOnes) {
  std::vector<double> weights = BalancedWeights({1, 1, 1});
  for (double w : weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(DecisionTree, FitsSeparableData) {
  Dataset data = SeparableDataset(300, 1);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.min_weight_fraction = 0.01;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_GT(Accuracy(tree, data), 0.97);
}

TEST(DecisionTree, SolvesXorWithDepth) {
  Dataset data = XorDataset(400, 2);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.min_weight_fraction = 0.001;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_GT(Accuracy(tree, data), 0.99);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  Dataset data = XorDataset(400, 3);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.max_depth = 1;
  config.min_weight_fraction = 0.001;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_LE(tree.depth(), 1);
  EXPECT_LE(tree.num_nodes(), 3);
}

TEST(DecisionTree, MinWeightFractionStopsPartitioning) {
  // XOR needs two split levels; a strict weight floor blocks the second.
  Dataset data = XorDataset(200, 4);
  TreeConfig loose;
  loose.max_features_fraction = 1.0;
  loose.min_weight_fraction = 0.001;
  TreeConfig strict = loose;
  strict.min_weight_fraction = 0.9;
  DecisionTree deep(loose);
  DecisionTree shallow(strict);
  deep.Fit(data);
  shallow.Fit(data);
  EXPECT_GT(deep.num_nodes(), shallow.num_nodes());
}

TEST(DecisionTree, PureNodeIsSingleLeaf) {
  Dataset data;
  data.features = Matrix<float>(4, 1);
  data.labels = {1, 1, 1, 1};
  data.weights = {1, 1, 1, 1};
  DecisionTree tree(TreeConfig{});
  tree.Fit(data);
  EXPECT_EQ(tree.num_nodes(), 1);
  float row = 0.0f;
  EXPECT_DOUBLE_EQ(tree.PredictProba(&row), 1.0);
}

TEST(DecisionTree, MissingValuesRoutedLeft) {
  // Feature 0 separates; NaN at prediction time goes to the left child
  // (the <= branch).
  Dataset data = SeparableDataset(300, 5);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.max_depth = 1;
  config.min_weight_fraction = 0.01;
  DecisionTree tree(config);
  tree.Fit(data);
  float low[3] = {0.0f, 0.0f, 0.0f};
  float missing[3] = {MissingValue(), 0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(tree.PredictProba(missing), tree.PredictProba(low));
}

TEST(DecisionTree, ImportancesConcentrateOnInformativeFeature) {
  Dataset data = SeparableDataset(400, 6);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.min_weight_fraction = 0.01;
  DecisionTree tree(config);
  tree.Fit(data);
  std::vector<double> importances = tree.FeatureImportances();
  ASSERT_EQ(importances.size(), 3u);
  double sum = importances[0] + importances[1] + importances[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(importances[0], 0.8);
}

TEST(DecisionTree, DeterministicGivenSeed) {
  Dataset data = SeparableDataset(200, 7);
  TreeConfig config;
  config.seed = 99;
  DecisionTree a(config);
  DecisionTree b(config);
  a.Fit(data);
  b.Fit(data);
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    float row[3] = {static_cast<float>(rng.UniformDouble()),
                    static_cast<float>(rng.Gaussian()),
                    static_cast<float>(rng.Gaussian())};
    EXPECT_DOUBLE_EQ(a.PredictProba(row), b.PredictProba(row));
  }
}

TEST(DecisionTree, SplitFeatureAtInspectsFirstSplits) {
  Dataset data = SeparableDataset(400, 9);
  TreeConfig config;
  config.max_features_fraction = 1.0;
  config.min_weight_fraction = 0.01;
  DecisionTree tree(config);
  tree.Fit(data);
  EXPECT_EQ(tree.SplitFeatureAt(0), 0);  // root splits on the signal
  EXPECT_EQ(tree.SplitFeatureAt(100000), -1);
}

TEST(DecisionTree, RespectsSampleWeights) {
  // Two contradictory points; the heavier one wins the leaf probability.
  Dataset data;
  data.features = Matrix<float>(2, 1, 0.5f);
  data.labels = {1, 0};
  data.weights = {9.0, 1.0};
  DecisionTree tree(TreeConfig{});
  tree.Fit(data);
  float row = 0.5f;
  EXPECT_NEAR(tree.PredictProba(&row), 0.9, 1e-6);
}

TEST(RandomForest, BeatsSingleTreeOnNoisyXor) {
  // XOR plus many noise features: a single tree with random feature
  // subsets struggles; the forest averages it out.
  Rng rng(10);
  const int n = 500;
  Dataset data;
  data.features = Matrix<float>(n, 12);
  data.labels.resize(n);
  for (int i = 0; i < n; ++i) {
    int a = static_cast<int>(rng.UniformInt(0, 1));
    int b = static_cast<int>(rng.UniformInt(0, 1));
    data.features(i, 0) = static_cast<float>(a);
    data.features(i, 1) = static_cast<float>(b);
    for (int k = 2; k < 12; ++k) {
      data.features(i, k) = static_cast<float>(rng.Gaussian());
    }
    data.labels[static_cast<size_t>(i)] = (a ^ b) ? 1.0f : 0.0f;
  }
  data.weights.assign(n, 1.0);

  ForestConfig forest_config;
  forest_config.num_trees = 40;
  forest_config.min_weight_fraction = 0.005;
  RandomForest forest(forest_config);
  forest.Fit(data);
  EXPECT_GT(Accuracy(forest, data), 0.9);
}

TEST(RandomForest, ProbabilitiesInUnitInterval) {
  Dataset data = SeparableDataset(200, 11);
  ForestConfig config;
  config.num_trees = 10;
  RandomForest forest(config);
  forest.Fit(data);
  for (int i = 0; i < data.num_instances(); ++i) {
    double p = forest.PredictProba(data.features.Row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, ImportancesNormalizedAndInformative) {
  Dataset data = SeparableDataset(300, 12);
  ForestConfig config;
  config.num_trees = 20;
  RandomForest forest(config);
  forest.Fit(data);
  std::vector<double> importances = forest.FeatureImportances();
  double sum = 0.0;
  for (double v : importances) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(importances[0], importances[1]);
  EXPECT_GT(importances[0], importances[2]);
}

TEST(RandomForest, DeterministicGivenSeed) {
  Dataset data = SeparableDataset(150, 13);
  ForestConfig config;
  config.num_trees = 8;
  config.seed = 1234;
  RandomForest a(config);
  RandomForest b(config);
  a.Fit(data);
  b.Fit(data);
  for (int i = 0; i < data.num_instances(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictProba(data.features.Row(i)),
                     b.PredictProba(data.features.Row(i)));
  }
}

TEST(FeatureBinner, BinsAreMonotoneInValue) {
  Matrix<float> features(100, 1);
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    features(i, 0) = static_cast<float>(rng.Gaussian());
  }
  FeatureBinner binner;
  binner.Fit(features, 16);
  int previous = -1;
  for (float v = -3.0f; v <= 3.0f; v += 0.05f) {
    int bin = binner.Bin(0, v);
    EXPECT_GE(bin, previous);
    EXPECT_GE(bin, 1);
    EXPECT_LT(bin, binner.NumBins(0));
    previous = bin;
  }
}

TEST(FeatureBinner, MissingGoesToBinZero) {
  Matrix<float> features(10, 1);
  for (int i = 0; i < 10; ++i) features(i, 0) = static_cast<float>(i);
  FeatureBinner binner;
  binner.Fit(features, 8);
  EXPECT_EQ(binner.Bin(0, MissingValue()), 0);
}

TEST(FeatureBinner, ConstantFeatureHasSingleFiniteBin) {
  Matrix<float> features(10, 1, 3.0f);
  FeatureBinner binner;
  binner.Fit(features, 8);
  EXPECT_EQ(binner.Bin(0, 3.0f), 1);
  EXPECT_EQ(binner.Bin(0, 100.0f), 1);
  EXPECT_EQ(binner.NumBins(0), 2);
}

TEST(Gbdt, FitsSeparableData) {
  Dataset data = SeparableDataset(300, 15);
  GbdtConfig config;
  config.num_iterations = 30;
  Gbdt model(config);
  model.Fit(data);
  EXPECT_GT(Accuracy(model, data), 0.95);
}

TEST(Gbdt, SolvesXor) {
  Dataset data = XorDataset(400, 16);
  GbdtConfig config;
  config.num_iterations = 40;
  Gbdt model(config);
  model.Fit(data);
  EXPECT_GT(Accuracy(model, data), 0.99);
}

TEST(Gbdt, TrainingLossDecreases) {
  Dataset data = SeparableDataset(200, 17);
  GbdtConfig config;
  config.num_iterations = 25;
  Gbdt model(config);
  model.Fit(data);
  const std::vector<double>& loss = model.training_loss();
  ASSERT_EQ(loss.size(), 25u);
  EXPECT_LT(loss.back(), 0.5 * loss.front());
}

TEST(Gbdt, ProbabilitiesInUnitInterval) {
  Dataset data = SeparableDataset(200, 18);
  GbdtConfig config;
  config.num_iterations = 15;
  Gbdt model(config);
  model.Fit(data);
  for (int i = 0; i < data.num_instances(); ++i) {
    double p = model.PredictProba(data.features.Row(i));
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(Gbdt, ImportancesHighlightSignal) {
  Dataset data = SeparableDataset(400, 19);
  GbdtConfig config;
  config.num_iterations = 20;
  Gbdt model(config);
  model.Fit(data);
  std::vector<double> importances = model.FeatureImportances();
  EXPECT_GT(importances[0], 0.5);
}

TEST(Gbdt, DeterministicGivenSeed) {
  Dataset data = SeparableDataset(150, 20);
  GbdtConfig config;
  config.num_iterations = 10;
  config.bagging_fraction = 0.8;
  config.feature_fraction = 0.8;
  config.seed = 777;
  Gbdt a(config);
  Gbdt b(config);
  a.Fit(data);
  b.Fit(data);
  for (int i = 0; i < data.num_instances(); ++i) {
    EXPECT_DOUBLE_EQ(a.PredictRaw(data.features.Row(i)),
                     b.PredictRaw(data.features.Row(i)));
  }
}

TEST(Gbdt, RespectsMaxDepthOne) {
  Dataset data = XorDataset(300, 21);
  GbdtConfig config;
  config.num_iterations = 40;
  config.max_depth = 1;  // stumps cannot represent XOR
  Gbdt model(config);
  model.Fit(data);
  EXPECT_LT(Accuracy(model, data), 0.8);
}

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(40.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-40.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace hotspot::ml
