// Unit tests for the observability layer (src/obs): sharded metrics and
// their merge-on-snapshot semantics, trace span nesting and aggregation,
// the process-wide PipelineContext install protocol, and the JSON/CSV
// snapshot exporters.
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hotspot::obs {
namespace {

TEST(Metrics, CounterMergesShardsOnTotal) {
  Counter counter;
  counter.Add(3);
  counter.Increment();
  EXPECT_EQ(counter.Total(), 4u);
  counter.Reset();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(Metrics, CounterMergesAcrossThreads) {
  // Hammer one counter from many raw threads (each thread gets its own
  // shard id); the merged total must be exact. Run under TSan in CI.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int k = 0; k < kIncrements; ++k) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Total(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, CounterMergesAcrossPoolWorkers) {
  Counter counter;
  util::ParallelFor(0, 5000, [&](int64_t) { counter.Add(2); });
  EXPECT_EQ(counter.Total(), 10000u);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.25);
}

TEST(Metrics, HistogramBucketsObservationsByUpperBound) {
  Histogram histogram({0.1, 1.0, 10.0});
  histogram.Observe(0.05);   // <= 0.1
  histogram.Observe(0.1);    // <= 0.1 (bounds are inclusive)
  histogram.Observe(0.5);    // <= 1.0
  histogram.Observe(100.0);  // overflow bucket
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(Metrics, HistogramMergesAcrossPoolWorkers) {
  Histogram histogram({0.5});
  util::ParallelFor(0, 4000, [&](int64_t i) {
    histogram.Observe(i % 2 == 0 ? 0.25 : 0.75);
  });
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], 2000u);
  EXPECT_EQ(buckets[1], 2000u);
  EXPECT_EQ(histogram.Count(), 4000u);
}

TEST(Metrics, RegistryReturnsSameInstrumentByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x/count");
  Counter& b = registry.counter("x/count");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Total(), 1u);
  EXPECT_NE(&registry.counter("y/count"), &a);
  // Name-sorted listing.
  registry.gauge("g");
  std::vector<std::pair<std::string, const Counter*>> counters =
      registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "x/count");
  EXPECT_EQ(counters[1].first, "y/count");
}

TEST(Trace, SpansNestAndAggregateByPath) {
  TraceCollector collector;
  {
    ScopedSpan outer(&collector, "outer");
    {
      ScopedSpan inner(&collector, "inner");
    }
    {
      ScopedSpan inner(&collector, "inner");
    }
  }
  {
    ScopedSpan outer(&collector, "outer");
  }
  std::vector<TraceCollector::SpanStats> spans = collector.Aggregate();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].path, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].count, 2u);
  EXPECT_EQ(spans[1].path, "outer/inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].count, 2u);
  EXPECT_GE(spans[0].total_seconds, spans[1].total_seconds);
}

TEST(Trace, NullCollectorIsNoOp) {
  ScopedSpan span(static_cast<TraceCollector*>(nullptr), "ignored");
  // Nothing to assert beyond "does not crash"; the null path is the
  // disabled-observability fast path.
}

TEST(Trace, ResetDropsSpans) {
  TraceCollector collector;
  {
    ScopedSpan span(&collector, "s");
  }
  EXPECT_FALSE(collector.Aggregate().empty());
  collector.Reset();
  EXPECT_TRUE(collector.Aggregate().empty());
}

TEST(PipelineContext, ScopedInstallSetsAndRestoresCurrent) {
  EXPECT_EQ(PipelineContext::Current(), nullptr);
  PipelineContext outer_context;
  {
    PipelineContext::ScopedInstall outer(&outer_context);
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
    PipelineContext inner_context;
    {
      PipelineContext::ScopedInstall inner(&inner_context);
      EXPECT_EQ(PipelineContext::Current(), &inner_context);
    }
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
    {
      // Installing null is a no-op: the outer context stays current, so
      // entry points can pass an optional context unconditionally.
      PipelineContext::ScopedInstall noop(nullptr);
      EXPECT_EQ(PipelineContext::Current(), &outer_context);
    }
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
  }
  EXPECT_EQ(PipelineContext::Current(), nullptr);
}

TEST(PipelineContext, SpanMacroRecordsIntoInstalledContext) {
  PipelineContext context;
  {
    PipelineContext::ScopedInstall install(&context);
    HOTSPOT_SPAN("macro/test");
  }
  std::vector<TraceCollector::SpanStats> spans =
      context.trace().Aggregate();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].path, "macro/test");
  EXPECT_EQ(spans[0].count, 1u);
}

TEST(PipelineContext, SpanMacroWithoutContextIsNoOp) {
  ASSERT_EQ(PipelineContext::Current(), nullptr);
  HOTSPOT_SPAN("nobody/listens");  // must not crash
}

Snapshot MakeSampleSnapshot() {
  PipelineContext context;
  context.metrics().counter("a/count").Add(42);
  context.metrics().gauge("b/gauge").Set(0.1 + 0.2);  // non-representable
  Histogram& histogram =
      context.metrics().histogram("c/hist", {0.001, 1.0});
  histogram.Observe(0.0005);
  histogram.Observe(2.5);
  {
    PipelineContext::ScopedInstall install(&context);
    HOTSPOT_SPAN("root");
    HOTSPOT_SPAN("child");
  }
  return TakeSnapshot(context);
}

TEST(Snapshot, JsonRoundTripIsExact) {
  Snapshot snapshot = MakeSampleSnapshot();
  std::string json = SnapshotToJson(snapshot);
  Snapshot parsed;
  ASSERT_TRUE(SnapshotFromJson(json, &parsed));

  ASSERT_EQ(parsed.counters.size(), snapshot.counters.size());
  EXPECT_EQ(parsed.counters[0].name, "a/count");
  EXPECT_EQ(parsed.counters[0].value, 42u);

  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0].name, "b/gauge");
  // %.17g makes the double survive the text round trip bit-exactly.
  EXPECT_EQ(parsed.gauges[0].value, snapshot.gauges[0].value);

  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].name, "c/hist");
  EXPECT_EQ(parsed.histograms[0].bounds, snapshot.histograms[0].bounds);
  EXPECT_EQ(parsed.histograms[0].buckets, snapshot.histograms[0].buckets);
  EXPECT_EQ(parsed.histograms[0].count, 2u);
  EXPECT_EQ(parsed.histograms[0].sum, snapshot.histograms[0].sum);

  ASSERT_EQ(parsed.spans.size(), 2u);
  EXPECT_EQ(parsed.spans[0].path, "root");
  EXPECT_EQ(parsed.spans[1].path, "root/child");
  EXPECT_EQ(parsed.spans[1].depth, 1);
  EXPECT_EQ(parsed.spans[0].total_seconds,
            snapshot.spans[0].total_seconds);
}

TEST(Snapshot, FromJsonRejectsMalformedInput) {
  Snapshot parsed;
  EXPECT_FALSE(SnapshotFromJson("", &parsed));
  EXPECT_FALSE(SnapshotFromJson("[]", &parsed));
  EXPECT_FALSE(SnapshotFromJson("{\"counters\": []}", &parsed));
  EXPECT_FALSE(SnapshotFromJson("{\"counters\": [ {\"value\": 1} ], "
                                "\"gauges\": [], \"histograms\": [], "
                                "\"spans\": []}",
                                &parsed));
}

TEST(Snapshot, TopLevelSpanSecondsSumsDepthZeroOnly) {
  Snapshot snapshot;
  snapshot.spans.push_back({"a", 0, 1, 2.0});
  snapshot.spans.push_back({"a/b", 1, 1, 1.5});
  snapshot.spans.push_back({"c", 0, 1, 3.0});
  EXPECT_DOUBLE_EQ(snapshot.TopLevelSpanSeconds(), 5.0);
}

TEST(Snapshot, CsvHasOneRowPerInstrument) {
  Snapshot snapshot = MakeSampleSnapshot();
  std::string csv = SnapshotToCsv(snapshot);
  EXPECT_NE(csv.find("counter,a/count,42"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b/gauge,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c/hist,"), std::string::npos);
  EXPECT_NE(csv.find("span,root,"), std::string::npos);
}

}  // namespace
}  // namespace hotspot::obs
