// Unit tests for the observability layer (src/obs): sharded metrics and
// their merge-on-snapshot semantics, trace span nesting and aggregation,
// the process-wide PipelineContext install protocol, the JSON/CSV
// snapshot exporters, the flight recorder's MPMC ring (ordering, wrap
// accounting, concurrent-writer torture, the dump formats), and the
// metric-name charset lint with its reversible Prometheus mangling.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "obs/snapshot.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace hotspot::obs {
namespace {

TEST(Metrics, CounterMergesShardsOnTotal) {
  Counter counter;
  counter.Add(3);
  counter.Increment();
  EXPECT_EQ(counter.Total(), 4u);
  counter.Reset();
  EXPECT_EQ(counter.Total(), 0u);
}

TEST(Metrics, CounterMergesAcrossThreads) {
  // Hammer one counter from many raw threads (each thread gets its own
  // shard id); the merged total must be exact. Run under TSan in CI.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter] {
      for (int k = 0; k < kIncrements; ++k) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Total(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, CounterMergesAcrossPoolWorkers) {
  Counter counter;
  util::ParallelFor(0, 5000, [&](int64_t) { counter.Add(2); });
  EXPECT_EQ(counter.Total(), 10000u);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge gauge;
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -2.25);
}

TEST(Metrics, HistogramBucketsObservationsByUpperBound) {
  Histogram histogram({0.1, 1.0, 10.0});
  histogram.Observe(0.05);   // <= 0.1
  histogram.Observe(0.1);    // <= 0.1 (bounds are inclusive)
  histogram.Observe(0.5);    // <= 1.0
  histogram.Observe(100.0);  // overflow bucket
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.05 + 0.1 + 0.5 + 100.0);
}

TEST(Metrics, HistogramMergesAcrossPoolWorkers) {
  Histogram histogram({0.5});
  util::ParallelFor(0, 4000, [&](int64_t i) {
    histogram.Observe(i % 2 == 0 ? 0.25 : 0.75);
  });
  std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], 2000u);
  EXPECT_EQ(buckets[1], 2000u);
  EXPECT_EQ(histogram.Count(), 4000u);
}

TEST(Metrics, RegistryReturnsSameInstrumentByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x/count");
  Counter& b = registry.counter("x/count");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Total(), 1u);
  EXPECT_NE(&registry.counter("y/count"), &a);
  // Name-sorted listing.
  registry.gauge("g");
  std::vector<std::pair<std::string, const Counter*>> counters =
      registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "x/count");
  EXPECT_EQ(counters[1].first, "y/count");
}

TEST(Trace, SpansNestAndAggregateByPath) {
  TraceCollector collector;
  {
    ScopedSpan outer(&collector, "outer");
    {
      ScopedSpan inner(&collector, "inner");
    }
    {
      ScopedSpan inner(&collector, "inner");
    }
  }
  {
    ScopedSpan outer(&collector, "outer");
  }
  std::vector<TraceCollector::SpanStats> spans = collector.Aggregate();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].path, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].count, 2u);
  EXPECT_EQ(spans[1].path, "outer/inner");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].count, 2u);
  EXPECT_GE(spans[0].total_seconds, spans[1].total_seconds);
}

TEST(Trace, NullCollectorIsNoOp) {
  ScopedSpan span(static_cast<TraceCollector*>(nullptr), "ignored");
  // Nothing to assert beyond "does not crash"; the null path is the
  // disabled-observability fast path.
}

TEST(Trace, ResetDropsSpans) {
  TraceCollector collector;
  {
    ScopedSpan span(&collector, "s");
  }
  EXPECT_FALSE(collector.Aggregate().empty());
  collector.Reset();
  EXPECT_TRUE(collector.Aggregate().empty());
}

TEST(PipelineContext, ScopedInstallSetsAndRestoresCurrent) {
  EXPECT_EQ(PipelineContext::Current(), nullptr);
  PipelineContext outer_context;
  {
    PipelineContext::ScopedInstall outer(&outer_context);
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
    PipelineContext inner_context;
    {
      PipelineContext::ScopedInstall inner(&inner_context);
      EXPECT_EQ(PipelineContext::Current(), &inner_context);
    }
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
    {
      // Installing null is a no-op: the outer context stays current, so
      // entry points can pass an optional context unconditionally.
      PipelineContext::ScopedInstall noop(nullptr);
      EXPECT_EQ(PipelineContext::Current(), &outer_context);
    }
    EXPECT_EQ(PipelineContext::Current(), &outer_context);
  }
  EXPECT_EQ(PipelineContext::Current(), nullptr);
}

TEST(PipelineContext, SpanMacroRecordsIntoInstalledContext) {
  PipelineContext context;
  {
    PipelineContext::ScopedInstall install(&context);
    HOTSPOT_SPAN("macro/test");
  }
  std::vector<TraceCollector::SpanStats> spans =
      context.trace().Aggregate();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].path, "macro/test");
  EXPECT_EQ(spans[0].count, 1u);
}

TEST(PipelineContext, SpanMacroWithoutContextIsNoOp) {
  ASSERT_EQ(PipelineContext::Current(), nullptr);
  HOTSPOT_SPAN("nobody/listens");  // must not crash
}

Snapshot MakeSampleSnapshot() {
  PipelineContext context;
  context.metrics().counter("a/count").Add(42);
  context.metrics().gauge("b/gauge").Set(0.1 + 0.2);  // non-representable
  Histogram& histogram =
      context.metrics().histogram("c/hist", {0.001, 1.0});
  histogram.Observe(0.0005);
  histogram.Observe(2.5);
  {
    PipelineContext::ScopedInstall install(&context);
    HOTSPOT_SPAN("root");
    HOTSPOT_SPAN("child");
  }
  return TakeSnapshot(context);
}

TEST(Snapshot, JsonRoundTripIsExact) {
  Snapshot snapshot = MakeSampleSnapshot();
  std::string json = SnapshotToJson(snapshot);
  Snapshot parsed;
  ASSERT_TRUE(SnapshotFromJson(json, &parsed));

  ASSERT_EQ(parsed.counters.size(), snapshot.counters.size());
  EXPECT_EQ(parsed.counters[0].name, "a/count");
  EXPECT_EQ(parsed.counters[0].value, 42u);

  ASSERT_EQ(parsed.gauges.size(), 1u);
  EXPECT_EQ(parsed.gauges[0].name, "b/gauge");
  // %.17g makes the double survive the text round trip bit-exactly.
  EXPECT_EQ(parsed.gauges[0].value, snapshot.gauges[0].value);

  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].name, "c/hist");
  EXPECT_EQ(parsed.histograms[0].bounds, snapshot.histograms[0].bounds);
  EXPECT_EQ(parsed.histograms[0].buckets, snapshot.histograms[0].buckets);
  EXPECT_EQ(parsed.histograms[0].count, 2u);
  EXPECT_EQ(parsed.histograms[0].sum, snapshot.histograms[0].sum);

  ASSERT_EQ(parsed.spans.size(), 2u);
  EXPECT_EQ(parsed.spans[0].path, "root");
  EXPECT_EQ(parsed.spans[1].path, "root/child");
  EXPECT_EQ(parsed.spans[1].depth, 1);
  EXPECT_EQ(parsed.spans[0].total_seconds,
            snapshot.spans[0].total_seconds);
}

TEST(Snapshot, FromJsonRejectsMalformedInput) {
  Snapshot parsed;
  EXPECT_FALSE(SnapshotFromJson("", &parsed));
  EXPECT_FALSE(SnapshotFromJson("[]", &parsed));
  EXPECT_FALSE(SnapshotFromJson("{\"counters\": []}", &parsed));
  EXPECT_FALSE(SnapshotFromJson("{\"counters\": [ {\"value\": 1} ], "
                                "\"gauges\": [], \"histograms\": [], "
                                "\"spans\": []}",
                                &parsed));
}

TEST(Snapshot, TopLevelSpanSecondsSumsDepthZeroOnly) {
  Snapshot snapshot;
  snapshot.spans.push_back({"a", 0, 1, 2.0});
  snapshot.spans.push_back({"a/b", 1, 1, 1.5});
  snapshot.spans.push_back({"c", 0, 1, 3.0});
  EXPECT_DOUBLE_EQ(snapshot.TopLevelSpanSeconds(), 5.0);
}

TEST(Snapshot, CsvHasOneRowPerInstrument) {
  Snapshot snapshot = MakeSampleSnapshot();
  std::string csv = SnapshotToCsv(snapshot);
  EXPECT_NE(csv.find("counter,a/count,42"), std::string::npos);
  EXPECT_NE(csv.find("gauge,b/gauge,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,c/hist,"), std::string::npos);
  EXPECT_NE(csv.find("span,root,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram exemplars

TEST(Metrics, HistogramCarriesLastWriteWinsExemplar) {
  Histogram histogram({0.1, 1.0});
  int64_t exemplar = 0;
  double value = 0.0;
  EXPECT_FALSE(histogram.LastExemplar(&exemplar, &value));
  histogram.ObserveWithExemplar(0.05, 7);
  histogram.ObserveWithExemplar(0.5, 42);
  ASSERT_TRUE(histogram.LastExemplar(&exemplar, &value));
  EXPECT_EQ(exemplar, 42);
  EXPECT_DOUBLE_EQ(value, 0.5);
  // The exemplar is a diagnostics pointer riding on top of the normal
  // accounting, not a separate observation stream.
  EXPECT_EQ(histogram.Count(), 2u);
  histogram.Reset();
  EXPECT_FALSE(histogram.LastExemplar(&exemplar, &value));
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorder, RecordsInOrderWithMonotonicSequence) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kPromotion, -1, 1);
  recorder.Record(FlightEventKind::kAdmissionReject, 3, 17, 54);
  recorder.Record(FlightEventKind::kCustom, 0, 0, 0, 2.5);
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  std::vector<FlightEventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].sequence, 0u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kPromotion);
  EXPECT_EQ(events[0].a, -1);
  EXPECT_EQ(events[0].b, 1);
  EXPECT_EQ(events[1].sequence, 1u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kAdmissionReject);
  EXPECT_EQ(events[1].c, 54);
  EXPECT_EQ(events[2].kind, FlightEventKind::kCustom);
  EXPECT_DOUBLE_EQ(events[2].d, 2.5);
  // Time stamps never run backwards along the ticket order.
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  EXPECT_LE(events[1].t_ns, events[2].t_ns);
}

TEST(FlightRecorder, RingKeepsNewestAndCountsDropsExactly) {
  FlightRecorder recorder(8);  // already a power of two
  EXPECT_EQ(recorder.capacity(), 8u);
  for (int k = 0; k < 20; ++k) {
    recorder.Record(FlightEventKind::kCustom, k);
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  std::vector<FlightEventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    // The retained window is exactly the newest capacity() events,
    // oldest first.
    EXPECT_EQ(events[i].sequence, 12 + i);
    EXPECT_EQ(events[i].a, static_cast<int64_t>(12 + i));
  }
  recorder.Reset();
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(4096).capacity(), 4096u);
  EXPECT_EQ(FlightRecorder(4097).capacity(), 8192u);
}

TEST(FlightRecorder, ConcurrentWritersNeverFabricateEvents) {
  // Writer torture with concurrent snapshots: every accepted event must
  // be one some writer actually recorded (payload a encodes writer and
  // ordinal), sequences must be unique, and the lifetime accounting must
  // be exact. Run under TSan in CI — the ring's memory-order argument is
  // what this pins.
  FlightRecorder recorder(64);
  constexpr int kWriters = 4;
  constexpr int kEventsPerWriter = 5000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::vector<FlightEventRecord> events = recorder.Snapshot();
      std::set<uint64_t> sequences;
      for (const FlightEventRecord& event : events) {
        EXPECT_TRUE(sequences.insert(event.sequence).second);
        const int64_t writer = event.a / kEventsPerWriter;
        const int64_t ordinal = event.a % kEventsPerWriter;
        EXPECT_LT(writer, kWriters);
        EXPECT_EQ(event.b, ordinal * 2);  // payload written atomically
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&recorder, w] {
      for (int k = 0; k < kEventsPerWriter; ++k) {
        const int64_t tag = static_cast<int64_t>(w) * kEventsPerWriter + k;
        recorder.Record(FlightEventKind::kCustom, tag,
                        (tag % kEventsPerWriter) * 2);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<uint64_t>(kWriters) * kEventsPerWriter);
  EXPECT_EQ(recorder.dropped(), recorder.recorded() - recorder.capacity());
  // Quiesced: the final snapshot retains a full, contiguous tail.
  std::vector<FlightEventRecord> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), recorder.capacity());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, events[i - 1].sequence + 1);
  }
}

TEST(FlightRecorder, ToJsonNamesKindsAndCarriesTotals) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kPromotion, 2, 5);
  recorder.Record(FlightEventKind::kShardHealth, 1, 0, 2);
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"schema\":\"hotspot.flight.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"promotion\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"shard_health\""), std::string::npos);

  const std::string path =
      (std::filesystem::temp_directory_path() / "hotspot_flight_test.json")
          .string();
  ASSERT_TRUE(recorder.DumpToJson(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents(1 << 12, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), file));
  std::fclose(file);
  std::filesystem::remove(path);
  EXPECT_EQ(contents, json);
}

TEST(FlightRecorder, DumpRawToWritesOneLinePerEvent) {
  FlightRecorder recorder(8);
  recorder.Record(FlightEventKind::kPromotion, -1, 3);
  recorder.Record(FlightEventKind::kBackpressure, 2, 11);
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotspot_flight_raw.txt")
          .string();
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(recorder.DumpRawTo(fd), 2);
  ::close(fd);
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents(1 << 12, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), file));
  std::fclose(file);
  std::filesystem::remove(path);
  // One line per event, the negative payload formatted correctly.
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 2);
  EXPECT_NE(contents.find("promotion"), std::string::npos);
  EXPECT_NE(contents.find("-1"), std::string::npos);
  EXPECT_NE(contents.find("backpressure"), std::string::npos);
}

TEST(PipelineContext, ResetClearsFlightRecorder) {
  PipelineContext context(/*flight_capacity=*/16);
  context.flight().Record(FlightEventKind::kCustom, 1);
  EXPECT_EQ(context.flight().recorded(), 1u);
  context.Reset();
  EXPECT_EQ(context.flight().recorded(), 0u);
}

// ---------------------------------------------------------------------------
// Metric-name lint and Prometheus mangling

TEST(Telemetry, MetricNameCharsetLint) {
  EXPECT_TRUE(IsValidMetricName("fleet/rows_routed"));
  EXPECT_TRUE(IsValidMetricName("pipeline/stage0/residency_seconds"));
  EXPECT_TRUE(IsValidMetricName("_private"));
  EXPECT_TRUE(IsValidMetricName("x"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("/starts_with_slash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has:colon"));
  EXPECT_FALSE(IsValidMetricName("unicode/µs"));
}

TEST(Telemetry, PrometheusNameManglingIsReversible) {
  EXPECT_EQ(ToPrometheusName("fleet/rows_routed"), "fleet:rows_routed");
  EXPECT_EQ(FromPrometheusName("fleet:rows_routed"), "fleet/rows_routed");
  // Round trip over the names the serving stack actually registers,
  // including the shard-scoped family — the `/` → `:` bijection must hold
  // for every name the lint admits.
  const std::string names[] = {
      "serve/requests",
      "pipeline/stage3/residency_seconds",
      ShardMetricName(0, "e2e_seconds"),
      ShardMetricName(12, "rows_routed"),
      ShardMetricName(7, "ingress_high_water"),
  };
  for (const std::string& name : names) {
    ASSERT_TRUE(IsValidMetricName(name)) << name;
    EXPECT_EQ(FromPrometheusName(ToPrometheusName(name)), name);
    // The mangled form introduces no `/` (Prometheus-illegal) characters.
    EXPECT_EQ(ToPrometheusName(name).find('/'), std::string::npos);
  }
}

}  // namespace
}  // namespace hotspot::obs
