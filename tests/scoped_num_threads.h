#ifndef HOTSPOT_TESTS_SCOPED_NUM_THREADS_H_
#define HOTSPOT_TESTS_SCOPED_NUM_THREADS_H_

#include <cstdlib>
#include <string>

namespace hotspot {

/// Test helper: overrides HOTSPOT_NUM_THREADS for one scope and restores
/// the previous value on destruction. Empty `value` unsets the variable.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(const std::string& value) {
    if (const char* old_value = std::getenv("HOTSPOT_NUM_THREADS")) {
      had_previous_ = true;
      previous_ = old_value;
    }
    if (value.empty()) {
      unsetenv("HOTSPOT_NUM_THREADS");
    } else {
      setenv("HOTSPOT_NUM_THREADS", value.c_str(), 1);
    }
  }
  ~ScopedNumThreads() {
    if (had_previous_) {
      setenv("HOTSPOT_NUM_THREADS", previous_.c_str(), 1);
    } else {
      unsetenv("HOTSPOT_NUM_THREADS");
    }
  }

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  bool had_previous_ = false;
  std::string previous_;
};

}  // namespace hotspot

#endif  // HOTSPOT_TESTS_SCOPED_NUM_THREADS_H_
