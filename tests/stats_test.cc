#include <cmath>
#include <limits>
#include <utility>

#include "gtest/gtest.h"
#include "stats/average_precision.h"
#include "stats/confidence.h"
#include "stats/correlation.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/percentile.h"
#include "stats/runlength.h"
#include "tensor/matrix.h"

namespace hotspot {
namespace {

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 1.0, 10);
  hist.Add(0.05);   // bin 0
  hist.Add(0.95);   // bin 9
  hist.Add(-5.0);   // clamped to bin 0
  hist.Add(5.0);    // clamped to bin 9
  hist.Add(std::nan(""));  // ignored
  EXPECT_EQ(hist.total(), 4);
  EXPECT_EQ(hist.count(0), 2);
  EXPECT_EQ(hist.count(9), 2);
  EXPECT_DOUBLE_EQ(hist.RelativeCount(0), 0.5);
}

TEST(Histogram, BinGeometry) {
  Histogram hist(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(hist.BinLow(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.BinCenter(1), 3.0);
}

TEST(Histogram, ArgMaxBin) {
  Histogram hist(0.0, 1.0, 4);
  hist.Add(0.6);
  hist.Add(0.6);
  hist.Add(0.1);
  EXPECT_EQ(hist.ArgMaxBin(), 2);
}

TEST(Histogram, AsciiRendering) {
  Histogram hist(0.0, 1.0, 2);
  hist.Add(0.25);
  std::string ascii = hist.ToAscii(10);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

TEST(CountHistogram, CountsAndIgnoresOutOfRange) {
  CountHistogram hist(5);
  hist.Add(0);
  hist.Add(3);
  hist.Add(3);
  hist.Add(-1);  // ignored
  hist.Add(6);   // ignored
  EXPECT_EQ(hist.total(), 3);
  EXPECT_EQ(hist.count(3), 2);
  EXPECT_DOUBLE_EQ(hist.RelativeCount(3), 2.0 / 3.0);
}

TEST(CountHistogram, PeaksFindLocalMaxima) {
  CountHistogram hist(6);
  // Counts: 0,5,1,4,1,0,0 -> peaks at 1 and 3.
  for (int i = 0; i < 5; ++i) hist.Add(1);
  hist.Add(2);
  for (int i = 0; i < 4; ++i) hist.Add(3);
  hist.Add(4);
  std::vector<int> peaks = hist.Peaks(0.05);
  EXPECT_EQ(peaks, (std::vector<int>{1, 3}));
}

TEST(Percentile, KnownQuartiles) {
  std::vector<float> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25.0), 2.0);
  // Interpolated.
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50.0), 2.5);
}

TEST(Percentile, DropsNaN) {
  std::vector<float> values = {MissingValue(), 10.0f, MissingValue(), 20.0f};
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 15.0);
  EXPECT_TRUE(std::isnan(Percentile({MissingValue()}, 50.0)));
}

TEST(Percentile, MultiplePercentilesSingleSort) {
  std::vector<double> result =
      Percentiles({4, 1, 3, 2, 5}, {0.0, 50.0, 100.0});
  EXPECT_DOUBLE_EQ(result[0], 1.0);
  EXPECT_DOUBLE_EQ(result[1], 3.0);
  EXPECT_DOUBLE_EQ(result[2], 5.0);
}

TEST(Percentile, SummaryStats) {
  std::vector<float> values = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(values), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);
  EXPECT_DOUBLE_EQ(MinValue(values), 2.0);
  EXPECT_DOUBLE_EQ(MaxValue(values), 9.0);
  EXPECT_TRUE(std::isnan(Mean({})));
  EXPECT_TRUE(std::isnan(MinValue({MissingValue()})));
}

TEST(Correlation, PerfectPositiveAndNegative) {
  std::vector<float> x = {1, 2, 3, 4};
  std::vector<float> y = {2, 4, 6, 8};
  std::vector<float> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-9);
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-9);
}

TEST(Correlation, ConstantSeriesIsNaN) {
  std::vector<float> x = {1, 2, 3};
  std::vector<float> c = {5, 5, 5};
  EXPECT_TRUE(std::isnan(PearsonCorrelation(x, c)));
}

TEST(Correlation, SkipsNaNPairs) {
  std::vector<float> x = {1, MissingValue(), 2, 3};
  std::vector<float> y = {2, 100.0f, 4, 6};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-9);
}

TEST(Correlation, TooFewPairsIsNaN) {
  std::vector<float> x = {1.0f, MissingValue()};
  std::vector<float> y = {2.0f, 3.0f};
  EXPECT_TRUE(std::isnan(PearsonCorrelation(x, y)));
}

TEST(RunLength, BasicRuns) {
  std::vector<float> binary = {0, 1, 1, 0, 1, 1, 1, 0, 0, 1};
  EXPECT_EQ(RunLengthsOfOnes(binary), (std::vector<int>{2, 3, 1}));
}

TEST(RunLength, TrailingRunCounted) {
  EXPECT_EQ(RunLengthsOfOnes({1, 1}), (std::vector<int>{2}));
  EXPECT_TRUE(RunLengthsOfOnes({0, 0}).empty());
}

TEST(RunLength, NaNBreaksRun) {
  std::vector<float> binary = {1, MissingValue(), 1};
  EXPECT_EQ(RunLengthsOfOnes(binary), (std::vector<int>{1, 1}));
}

TEST(RunLength, CountOnesPerBlock) {
  std::vector<float> binary = {1, 0, 1, 1, 1, 0, 0, 0};
  EXPECT_EQ(CountOnesPerBlock(binary, 4), (std::vector<int>{3, 1}));
  // Trailing partial block dropped.
  EXPECT_EQ(CountOnesPerBlock(binary, 3), (std::vector<int>{2, 2}));
}

TEST(KsTest, IdenticalSamplesHaveHighP) {
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(i * 0.01);
    b.push_back(i * 0.01);
  }
  KsResult result = KolmogorovSmirnovTest(a, b);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTest, ShiftedSamplesHaveLowP) {
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(i * 0.01);
    b.push_back(i * 0.01 + 1.0);
  }
  KsResult result = KolmogorovSmirnovTest(a, b);
  EXPECT_GT(result.statistic, 0.4);
  EXPECT_LT(result.p_value, 0.001);
}

TEST(KsTest, StatisticExactOnTinySamples) {
  // F1 jumps at {1,2}, F2 jumps at {3,4}; max gap is 1.0.
  KsResult result = KolmogorovSmirnovTest({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
}

TEST(KsTest, SymmetricInArguments) {
  std::vector<double> a = {0.1, 0.5, 0.9, 1.4, 2.0};
  std::vector<double> b = {0.2, 0.6, 1.1, 1.2};
  KsResult ab = KolmogorovSmirnovTest(a, b);
  KsResult ba = KolmogorovSmirnovTest(b, a);
  EXPECT_DOUBLE_EQ(ab.statistic, ba.statistic);
  EXPECT_DOUBLE_EQ(ab.p_value, ba.p_value);
}

TEST(KsTest, KolmogorovSurvivalReferenceValues) {
  // Q(λ) reference values of the Kolmogorov distribution.
  EXPECT_NEAR(KolmogorovSurvival(0.5), 0.9639, 1e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.0), 0.2700, 1e-3);
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.0491, 1e-3);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
}

TEST(KsTest, HeavyTiesFromSameDistribution) {
  // Discrete samples with many ties (counter-style KPIs): two draws of the
  // same support must not look different.
  std::vector<double> a, b;
  for (int i = 0; i < 120; ++i) {
    a.push_back(i % 4);
    b.push_back((i + 1) % 4);
  }
  KsResult result = KolmogorovSmirnovTest(a, b);
  EXPECT_LT(result.statistic, 0.05);
  EXPECT_GT(result.p_value, 0.5);
}

TEST(KsTest, AllIdenticalValuesInBothSamples) {
  // Degenerate but legal: a constant channel (e.g. a KPI pinned at 0)
  // compared against its own fingerprint. Zero evidence of drift.
  std::vector<double> a(50, 3.25);
  std::vector<double> b(40, 3.25);
  KsResult result = KolmogorovSmirnovTest(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTest, ConstantSamplesAtDifferentValues) {
  // Two different constants: maximal statistic, decisive p with enough
  // samples.
  std::vector<double> a(64, 0.0);
  std::vector<double> b(64, 1.0);
  KsResult result = KolmogorovSmirnovTest(a, b);
  EXPECT_DOUBLE_EQ(result.statistic, 1.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTest, TinyWindowsStayConservative) {
  // Below ~8 samples the asymptotic p-value must stay well-behaved: in
  // [0, 1], and not significant for overlapping draws.
  for (int n = 1; n < 8; ++n) {
    std::vector<double> a, b;
    for (int i = 0; i < n; ++i) {
      a.push_back(i);
      b.push_back(i + 0.5);
    }
    KsResult result = KolmogorovSmirnovTest(a, b);
    EXPECT_GE(result.p_value, 0.0) << n;
    EXPECT_LE(result.p_value, 1.0) << n;
    EXPECT_GE(result.statistic, 0.0) << n;
    EXPECT_LE(result.statistic, 1.0) << n;
    if (n > 1) EXPECT_GT(result.p_value, 0.05) << n;
  }
}

TEST(KsTest, MaskedVariantDropsNaN) {
  // NaN-padded inputs must give exactly the all-finite answer.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> a, b, a_masked, b_masked;
  for (int i = 0; i < 100; ++i) {
    a.push_back(i * 0.02);
    b.push_back(i * 0.02 + 0.8);
    a_masked.push_back(a.back());
    b_masked.push_back(b.back());
    if (i % 5 == 0) a_masked.push_back(nan);
    if (i % 7 == 0) {
      b_masked.push_back(nan);
      b_masked.push_back(std::numeric_limits<double>::infinity());
    }
  }
  KsResult clean = KolmogorovSmirnovTest(a, b);
  KsResult masked = KolmogorovSmirnovTestMasked(a_masked, b_masked);
  EXPECT_DOUBLE_EQ(masked.statistic, clean.statistic);
  EXPECT_DOUBLE_EQ(masked.p_value, clean.p_value);
}

TEST(KsTest, MaskedVariantWithNoFiniteDataIsNoEvidence) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> all_nan(16, nan);
  std::vector<double> finite = {0.0, 1.0, 2.0};
  for (const auto& [a, b] :
       {std::pair(all_nan, finite), std::pair(finite, all_nan),
        std::pair(all_nan, all_nan),
        std::pair(std::vector<double>{}, finite)}) {
    KsResult result = KolmogorovSmirnovTestMasked(a, b);
    EXPECT_DOUBLE_EQ(result.statistic, 0.0);
    EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  }
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  std::vector<float> labels = {1, 1, 0, 0};
  std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), 1.0);
}

TEST(AveragePrecision, WorstRanking) {
  // Positives ranked last: AP = (1/3 + 2/4) / 2.
  std::vector<float> labels = {0, 0, 1, 1};
  std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
  EXPECT_NEAR(AveragePrecision(labels, scores), (1.0 / 3.0 + 0.5) / 2.0,
              1e-12);
}

TEST(AveragePrecision, MatchesSklearnExample) {
  // sklearn.metrics.average_precision_score([0,0,1,1],[0.1,0.4,0.35,0.8])
  // = 0.8333...
  std::vector<float> labels = {0, 0, 1, 1};
  std::vector<float> scores = {0.1f, 0.4f, 0.35f, 0.8f};
  EXPECT_NEAR(AveragePrecision(labels, scores), 0.8333333333, 1e-9);
}

TEST(AveragePrecision, NoPositivesIsNaN) {
  EXPECT_TRUE(std::isnan(AveragePrecision({0, 0}, {0.5f, 0.6f})));
}

TEST(AveragePrecision, TiesAreGrouped) {
  // Two tied scores, one positive: precision evaluated at the group end,
  // invariant to the order of the tied items.
  std::vector<float> labels_a = {1, 0};
  std::vector<float> labels_b = {0, 1};
  std::vector<float> scores = {0.5f, 0.5f};
  double ap_a = AveragePrecision(labels_a, scores);
  double ap_b = AveragePrecision(labels_b, scores);
  EXPECT_DOUBLE_EQ(ap_a, ap_b);
  EXPECT_DOUBLE_EQ(ap_a, 0.5);
}

TEST(AveragePrecision, AllTiedEqualsPrevalence) {
  std::vector<float> labels = {1, 0, 0, 0};
  std::vector<float> scores(4, 0.7f);
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), 0.25);
}

TEST(PrecisionRecall, CurveShape) {
  std::vector<float> labels = {1, 0, 1, 0};
  std::vector<float> scores = {0.9f, 0.7f, 0.6f, 0.1f};
  std::vector<PrPoint> curve = PrecisionRecallCurve(labels, scores);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
}

TEST(PrecisionRecall, EmptyWithoutPositives) {
  EXPECT_TRUE(PrecisionRecallCurve({0, 0}, {0.1f, 0.2f}).empty());
}

TEST(Lift, RatioAndDegenerate) {
  EXPECT_DOUBLE_EQ(Lift(0.4, 0.1), 4.0);
  EXPECT_TRUE(std::isnan(Lift(0.4, 0.0)));
}

TEST(RelativeImprovement, MatchesPaperFormula) {
  // ∆ = 100(Λj/Λi − 1).
  EXPECT_NEAR(RelativeImprovement(10.0, 11.4), 14.0, 1e-9);
  EXPECT_DOUBLE_EQ(RelativeImprovement(2.0, 1.0), -50.0);
  EXPECT_TRUE(std::isnan(RelativeImprovement(0.0, 1.0)));
}

TEST(MeanCi, BasicInterval) {
  MeanCi ci = MeanWithCi95({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_EQ(ci.count, 5);
  EXPECT_LT(ci.ci_low, 3.0);
  EXPECT_GT(ci.ci_high, 3.0);
  EXPECT_NEAR(ci.ci_high - ci.mean, 1.96 * std::sqrt(2.5) / std::sqrt(5.0),
              1e-9);
}

TEST(MeanCi, HandlesNaNAndSingletons) {
  MeanCi ci = MeanWithCi95({2.0, std::nan("")});
  EXPECT_EQ(ci.count, 1);
  EXPECT_DOUBLE_EQ(ci.mean, 2.0);
  EXPECT_DOUBLE_EQ(ci.ci_low, 2.0);
  MeanCi empty = MeanWithCi95({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_TRUE(std::isnan(empty.mean));
}

}  // namespace
}  // namespace hotspot
