#include <cmath>

#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/temporal.h"
#include "tensor/tensor3.h"

namespace hotspot {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix<float> m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.5f);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 7.0f);
}

TEST(Matrix, RowPointerIsContiguous) {
  Matrix<int> m(3, 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) m(r, c) = r * 10 + c;
  }
  const int* row1 = m.Row(1);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(row1[c], 10 + c);
}

TEST(Matrix, RowAndColVectors) {
  Matrix<float> m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  EXPECT_EQ(m.RowVector(1), (std::vector<float>{4, 5, 6}));
  EXPECT_EQ(m.ColVector(2), (std::vector<float>{3, 6}));
}

TEST(Matrix, FillOverwrites) {
  Matrix<float> m(2, 2, 1.0f);
  m.Fill(9.0f);
  for (float v : m.data()) EXPECT_FLOAT_EQ(v, 9.0f);
}

TEST(Matrix, OutOfBoundsDies) {
  Matrix<float> m(2, 2);
  EXPECT_DEATH(m(2, 0), "Check failed");
  EXPECT_DEATH(m(0, -1), "Check failed");
}

TEST(Matrix, MissingValueHelpers) {
  EXPECT_TRUE(IsMissing(MissingValue()));
  EXPECT_FALSE(IsMissing(0.0f));
  EXPECT_FALSE(IsMissing(-1e30f));
}

TEST(Tensor3, ShapeAndIndexing) {
  Tensor3<float> t(2, 3, 4, 0.5f);
  EXPECT_EQ(t.dim0(), 2);
  EXPECT_EQ(t.dim1(), 3);
  EXPECT_EQ(t.dim2(), 4);
  EXPECT_EQ(t.size(), 24u);
  t(1, 2, 3) = 8.0f;
  EXPECT_FLOAT_EQ(t.At(1, 2, 3), 8.0f);
  EXPECT_FLOAT_EQ(t(0, 0, 0), 0.5f);
}

TEST(Tensor3, SliceIsContiguousFeatureVector) {
  Tensor3<float> t(2, 2, 3);
  for (int k = 0; k < 3; ++k) t(1, 0, k) = static_cast<float>(k);
  const float* slice = t.Slice(1, 0);
  for (int k = 0; k < 3; ++k) EXPECT_FLOAT_EQ(slice[k], k);
}

TEST(Tensor3, TimeSeriesExtraction) {
  Tensor3<float> t(1, 5, 2);
  for (int j = 0; j < 5; ++j) t(0, j, 1) = static_cast<float>(j * j);
  std::vector<float> series = t.TimeSeries(0, 1, 1, 4);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_FLOAT_EQ(series[0], 1.0f);
  EXPECT_FLOAT_EQ(series[2], 9.0f);
}

TEST(Tensor3, SectorSlab) {
  Tensor3<float> t(2, 4, 2);
  for (int j = 0; j < 4; ++j) {
    t(1, j, 0) = static_cast<float>(j);
    t(1, j, 1) = static_cast<float>(10 + j);
  }
  Matrix<float> slab = t.SectorSlab(1, 1, 3);
  EXPECT_EQ(slab.rows(), 2);
  EXPECT_EQ(slab.cols(), 2);
  EXPECT_FLOAT_EQ(slab(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(slab(1, 1), 12.0f);
}

TEST(Tensor3, FeaturePlaneRoundTrip) {
  Tensor3<float> t(2, 3, 2);
  Matrix<float> plane(2, 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) plane(i, j) = static_cast<float>(i + 10 * j);
  }
  t.SetFeaturePlane(1, plane);
  Matrix<float> back = t.FeaturePlane(1);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(back(i, j), plane(i, j));
  }
  // Plane 0 untouched.
  EXPECT_FLOAT_EQ(t(0, 0, 0), 0.0f);
}

TEST(Temporal, IntegrationHoursConstants) {
  EXPECT_EQ(IntegrationHours(Resolution::kHourly), 1);
  EXPECT_EQ(IntegrationHours(Resolution::kDaily), 24);
  EXPECT_EQ(IntegrationHours(Resolution::kWeekly), 168);
}

TEST(Temporal, TrailingMeanBasic) {
  std::vector<float> z = {1, 2, 3, 4, 5};
  // Window of 3 ending at (and including) index 4: mean(3, 4, 5).
  EXPECT_DOUBLE_EQ(TrailingMean(4, 3, z), 4.0);
  // Window of 1: just the sample.
  EXPECT_DOUBLE_EQ(TrailingMean(2, 1, z), 3.0);
}

TEST(Temporal, TrailingMeanClipsAtBoundaries) {
  std::vector<float> z = {2, 4, 6};
  // Window of 5 ending at index 1 only covers indices 0..1.
  EXPECT_DOUBLE_EQ(TrailingMean(1, 5, z), 3.0);
  // Entirely out of range -> NaN.
  EXPECT_TRUE(std::isnan(TrailingMean(-1, 1, z)));
  EXPECT_TRUE(std::isnan(TrailingMean(10, 2, z)));
}

TEST(Temporal, TrailingMeanSkipsNaN) {
  std::vector<float> z = {1.0f, MissingValue(), 3.0f};
  EXPECT_DOUBLE_EQ(TrailingMean(2, 3, z), 2.0);
  std::vector<float> all_missing = {MissingValue(), MissingValue()};
  EXPECT_TRUE(std::isnan(TrailingMean(1, 2, all_missing)));
}

TEST(Temporal, IntegrateScoresDaily) {
  Matrix<float> hourly(1, 48);
  for (int j = 0; j < 24; ++j) hourly(0, j) = 1.0f;
  for (int j = 24; j < 48; ++j) hourly(0, j) = 3.0f;
  Matrix<float> daily = IntegrateScores(hourly, Resolution::kDaily);
  ASSERT_EQ(daily.cols(), 2);
  EXPECT_FLOAT_EQ(daily(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(daily(0, 1), 3.0f);
}

TEST(Temporal, IntegrateScoresWeeklyDropsPartialWeek) {
  Matrix<float> hourly(1, 168 + 24, 2.0f);
  Matrix<float> weekly = IntegrateScores(hourly, Resolution::kWeekly);
  EXPECT_EQ(weekly.cols(), 1);
  EXPECT_FLOAT_EQ(weekly(0, 0), 2.0f);
}

TEST(Temporal, IntegrateScoresIgnoresNaN) {
  Matrix<float> hourly(1, 24, 5.0f);
  hourly(0, 3) = MissingValue();
  Matrix<float> daily = IntegrateScores(hourly, Resolution::kDaily);
  EXPECT_FLOAT_EQ(daily(0, 0), 5.0f);
}

TEST(Temporal, IntegrateScoresAllNaNWindowIsNaN) {
  Matrix<float> hourly(1, 24, MissingValue());
  Matrix<float> daily = IntegrateScores(hourly, Resolution::kDaily);
  EXPECT_TRUE(IsMissing(daily(0, 0)));
}

TEST(Temporal, UpsampleTimeRepeatsValues) {
  Matrix<float> coarse(1, 2);
  coarse(0, 0) = 1.0f;
  coarse(0, 1) = 2.0f;
  Matrix<float> fine = UpsampleTime(coarse, 3);
  ASSERT_EQ(fine.cols(), 6);
  EXPECT_FLOAT_EQ(fine(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(fine(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(fine(0, 3), 2.0f);
  EXPECT_FLOAT_EQ(fine(0, 5), 2.0f);
}

TEST(Temporal, UpsampleVector) {
  std::vector<float> fine = UpsampleVector({1.0f, 2.0f}, 2);
  EXPECT_EQ(fine, (std::vector<float>{1.0f, 1.0f, 2.0f, 2.0f}));
}

TEST(Temporal, IntegrationInverseOfUpsample) {
  // Integrating an upsampled series recovers the original.
  Matrix<float> coarse(2, 3);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) coarse(i, j) = static_cast<float>(i + j);
  }
  Matrix<float> fine = UpsampleTime(coarse, 24);
  Matrix<float> back = IntegrateScores(fine, Resolution::kDaily);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(back(i, j), coarse(i, j));
  }
}

}  // namespace
}  // namespace hotspot
