#ifndef HOTSPOT_TESTS_SERIALIZE_GOLDEN_H_
#define HOTSPOT_TESTS_SERIALIZE_GOLDEN_H_

/// Shared definition of the golden serving fixture: the generator
/// (make_serialize_golden) and the golden-file test must build the exact
/// same study and bundle, so both include this header. Predictions are
/// stored as hex floats ("%a"), which round-trip through text bit for bit.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "core/study.h"
#include "simnet/generator.h"

namespace hotspot::testing {

inline constexpr char kGoldenBundleFile[] = "golden_bundle.hsb";
inline constexpr char kGoldenPredictionsFile[] = "golden_predictions.txt";

inline simnet::GeneratorConfig GoldenNetworkConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 24;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 20260805;
  return config;
}

inline ForecastConfig GoldenForecastConfig() {
  ForecastConfig config;
  config.model = ModelKind::kGbdt;
  config.t = 55;
  config.h = 1;
  config.w = 3;
  config.seed = 17;
  config.gbdt.num_iterations = 10;
  config.gbdt.num_leaves = 7;
  config.gbdt.max_bins = 16;
  return config;
}

inline Study BuildGoldenStudy() {
  return BuildStudy(StudyInput(GoldenNetworkConfig()), StudyOptions{});
}

inline bool WriteGoldenPredictions(const std::string& path,
                                   const std::vector<float>& predictions) {
  std::ofstream out(path);
  if (!out) return false;
  char buffer[64];
  for (float value : predictions) {
    std::snprintf(buffer, sizeof(buffer), "%a", static_cast<double>(value));
    out << buffer << "\n";
  }
  out.flush();
  return static_cast<bool>(out);
}

inline bool ReadGoldenPredictions(const std::string& path,
                                  std::vector<float>* predictions) {
  std::ifstream in(path);
  if (!in) return false;
  predictions->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    double value = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) return false;
    predictions->push_back(static_cast<float>(value));
  }
  return !predictions->empty();
}

}  // namespace hotspot::testing

#endif  // HOTSPOT_TESTS_SERIALIZE_GOLDEN_H_
