// Robustness and edge-case suite: degenerate inputs, NaN-heavy paths, and
// semantics of the scale-adaptation knobs.
#include <cmath>

#include "gtest/gtest.h"
#include "core/baselines.h"
#include "core/evaluation.h"
#include "core/forecaster.h"
#include "core/labels.h"
#include "core/score.h"
#include "core/sector_filter.h"
#include "features/feature_tensor.h"
#include "ml/gbdt.h"
#include "simnet/calendar.h"
#include "stats/average_precision.h"
#include "stats/correlation.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot {
namespace {

TEST(Robustness, ScoreOnAllMissingTensor) {
  ScoreConfig config;
  config.indicators = {{1.0, 0.5, true}};
  Tensor3<float> kpis(2, 48, 1, MissingValue());
  Matrix<float> score = ComputeHourlyScore(kpis, config);
  for (float v : score.data()) EXPECT_TRUE(IsMissing(v));
  // Labels over an all-NaN score matrix are all cold.
  Matrix<float> labels = HotSpotLabels(score, 0.5);
  EXPECT_DOUBLE_EQ(PositiveRate(labels), 0.0);
}

TEST(Robustness, IntegrateScoresOnEmptyMatrix) {
  Matrix<float> empty(0, 0);
  Matrix<float> daily = IntegrateScores(empty, Resolution::kDaily);
  EXPECT_EQ(daily.rows(), 0);
  EXPECT_EQ(daily.cols(), 0);
}

TEST(Robustness, BecomeLabelsOnShortSeries) {
  // Fewer than 8 days: no day has a full look-ahead week.
  Matrix<float> daily(3, 7, 0.9f);
  Matrix<float> become = BecomeHotSpotLabels(daily, 0.5);
  EXPECT_DOUBLE_EQ(PositiveRate(become), 0.0);
}

TEST(Robustness, SectorFilterAllMissingDiscardsEverything) {
  Tensor3<float> kpis(3, 2 * kHoursPerWeek, 2, MissingValue());
  std::vector<bool> keep = SectorFilterMask(kpis);
  for (bool k : keep) EXPECT_FALSE(k);
  Tensor3<float> filtered = FilterSectors(kpis, keep);
  EXPECT_EQ(filtered.dim0(), 0);
}

TEST(Robustness, AveragePrecisionAllPositives) {
  std::vector<float> labels(5, 1.0f);
  std::vector<float> scores = {0.1f, 0.5f, 0.2f, 0.9f, 0.3f};
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), 1.0);
}

TEST(Robustness, AveragePrecisionSingleElement) {
  EXPECT_DOUBLE_EQ(AveragePrecision({1.0f}, {0.3f}), 1.0);
  EXPECT_TRUE(std::isnan(AveragePrecision({0.0f}, {0.3f})));
}

TEST(Robustness, BaselinesOnSingleDayHistory) {
  Matrix<float> scores(2, 3, 0.4f);
  // Window longer than history: trailing mean clips, no crash.
  std::vector<float> average = AverageBaseline(scores, 1, 14);
  EXPECT_FLOAT_EQ(average[0], 0.4f);
  std::vector<float> trend = TrendBaseline(scores, 1, 14);
  EXPECT_FLOAT_EQ(trend[0], 0.4f);
}

TEST(Robustness, GbdtOnConstantFeatures) {
  // No informative splits: the model must fall back to the prior and
  // still emit valid probabilities.
  ml::Dataset data;
  data.features = Matrix<float>(20, 3, 1.0f);
  data.labels.assign(20, 0.0f);
  for (int i = 0; i < 5; ++i) data.labels[static_cast<size_t>(i)] = 1.0f;
  data.weights.assign(20, 1.0);
  ml::GbdtConfig config;
  config.num_iterations = 5;
  ml::Gbdt model(config);
  model.Fit(data);
  float row[3] = {1.0f, 1.0f, 1.0f};
  double p = model.PredictProba(row);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  EXPECT_NEAR(p, 0.25, 0.15);  // near the prior
}

TEST(Robustness, GbdtBaggingStaysDeterministic) {
  Rng rng(3);
  ml::Dataset data;
  data.features = Matrix<float>(60, 4);
  data.labels.resize(60);
  for (int i = 0; i < 60; ++i) {
    for (int k = 0; k < 4; ++k) {
      data.features(i, k) = static_cast<float>(rng.Gaussian());
    }
    data.labels[static_cast<size_t>(i)] =
        data.features(i, 0) > 0 ? 1.0f : 0.0f;
  }
  data.weights.assign(60, 1.0);
  ml::GbdtConfig config;
  config.num_iterations = 8;
  config.bagging_fraction = 0.6;
  config.seed = 5;
  ml::Gbdt a(config);
  ml::Gbdt b(config);
  a.Fit(data);
  b.Fit(data);
  for (int i = 0; i < 60; ++i) {
    EXPECT_DOUBLE_EQ(a.PredictRaw(data.features.Row(i)),
                     b.PredictRaw(data.features.Row(i)));
  }
}

/// Forecaster fixture with deterministic labels for stride semantics.
class StrideFixture {
 public:
  StrideFixture() {
    const int n = 10;
    const int weeks = 10;
    const int hours = weeks * kHoursPerWeek;
    Tensor3<float> kpis(n, hours, 1, 0.5f);
    Matrix<float> calendar(hours, 5, 0.0f);
    Matrix<float> hourly(n, hours, 0.1f);
    daily_scores_ = IntegrateScores(hourly, Resolution::kDaily);
    Matrix<float> weekly = IntegrateScores(hourly, Resolution::kWeekly);
    daily_labels_ = Matrix<float>(n, weeks * 7, 0.0f);
    features_ = features::FeatureTensor::Build(
        kpis, calendar, hourly, daily_scores_, weekly, daily_labels_);
  }
  Forecaster Make() const {
    return Forecaster(&features_, &daily_scores_, &daily_labels_);
  }

 private:
  features::FeatureTensor features_;
  Matrix<float> daily_scores_;
  Matrix<float> daily_labels_;
};

TEST(Robustness, TrainingPoolClampsAtHistoryStart) {
  // t=10, h=2, w=7: only the day-10 window fits; asking to pool 5 weekly
  // strides must silently clamp, not crash.
  StrideFixture fixture;
  Forecaster forecaster = fixture.Make();
  ForecastConfig config;
  config.model = ModelKind::kTree;
  config.t = 10;
  config.h = 2;
  config.w = 7;
  config.training_days = 5;
  config.training_day_stride = 7;
  ForecastResult result = forecaster.Run(config);
  EXPECT_EQ(result.predictions.size(), 10u);
}

TEST(Robustness, TreeTrainingDaysOverrideRuns) {
  StrideFixture fixture;
  Forecaster forecaster = fixture.Make();
  ForecastConfig config;
  config.model = ModelKind::kTree;
  config.t = 40;
  config.h = 1;
  config.w = 3;
  config.training_days = 6;
  config.tree_training_days = 1;
  ForecastResult result = forecaster.Run(config);
  EXPECT_EQ(result.predictions.size(), 10u);
}

TEST(Robustness, EvaluationWithNoPositivesYieldsNaNNotCrash) {
  StrideFixture fixture;  // all labels are 0
  Forecaster forecaster = fixture.Make();
  EvaluationRunner runner(&forecaster, ForecastConfig{});
  CellResult cell = runner.Evaluate(ModelKind::kAverage, 40, 1, 7);
  EXPECT_TRUE(std::isnan(cell.average_precision));
  EXPECT_TRUE(std::isnan(cell.lift));
  // Aggregations over all-NaN cells return empty CIs.
  MeanCi ci = AggregateLiftOverT({cell}, ModelKind::kAverage, 1, 7);
  EXPECT_EQ(ci.count, 0);
}

TEST(Robustness, CalendarSingleWeek) {
  simnet::StudyCalendar calendar = simnet::StudyCalendar::Paper(1);
  EXPECT_EQ(calendar.days(), 7);
  Matrix<float> c = calendar.BuildCalendarMatrix();
  EXPECT_EQ(c.rows(), 168);
  // No holiday falls in the first week (Nov 30 - Dec 6, 2015).
  for (int day = 0; day < 7; ++day) EXPECT_FALSE(calendar.IsHoliday(day));
}

TEST(Robustness, CalendarYearBoundaryDayOfMonth) {
  simnet::StudyCalendar calendar = simnet::StudyCalendar::Paper(6);
  // Dec 31, 2015 is day 31; Jan 1, 2016 is day 32.
  EXPECT_EQ(calendar.DateOfDay(31), (simnet::Date{2015, 12, 31}));
  EXPECT_EQ(calendar.DateOfDay(32), (simnet::Date{2016, 1, 1}));
}

TEST(Robustness, PearsonOfSelfIsOneEvenWithBinaryData) {
  std::vector<float> binary = {0, 1, 0, 0, 1, 1, 0, 1};
  EXPECT_NEAR(PearsonCorrelation(binary, binary), 1.0, 1e-9);
}

}  // namespace
}  // namespace hotspot
