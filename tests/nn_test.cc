#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "nn/autoencoder.h"
#include "nn/imputer.h"
#include "nn/layers.h"
#include "nn/matrix_ops.h"
#include "nn/optimizer.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::nn {
namespace {

Matrix<float> Make(const std::vector<std::vector<float>>& rows) {
  Matrix<float> m(static_cast<int>(rows.size()),
                  static_cast<int>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      m(static_cast<int>(r), static_cast<int>(c)) = rows[r][c];
    }
  }
  return m;
}

TEST(MatrixOps, MatMulHandComputed) {
  Matrix<float> a = Make({{1, 2}, {3, 4}});
  Matrix<float> b = Make({{5, 6}, {7, 8}});
  Matrix<float> out;
  MatMul(a, b, &out);
  EXPECT_FLOAT_EQ(out(0, 0), 19);
  EXPECT_FLOAT_EQ(out(0, 1), 22);
  EXPECT_FLOAT_EQ(out(1, 0), 43);
  EXPECT_FLOAT_EQ(out(1, 1), 50);
}

TEST(MatrixOps, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(3);
  Matrix<float> a(4, 3);
  Matrix<float> b(4, 5);
  for (float& v : a.data()) v = static_cast<float>(rng.Gaussian());
  for (float& v : b.data()) v = static_cast<float>(rng.Gaussian());
  // aᵀ·b via MatMulTransposedA vs manual transpose.
  Matrix<float> at(3, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) at(j, i) = a(i, j);
  }
  Matrix<float> expected, actual;
  MatMul(at, b, &expected);
  MatMulTransposedA(a, b, &actual);
  for (size_t idx = 0; idx < expected.data().size(); ++idx) {
    EXPECT_NEAR(actual.data()[idx], expected.data()[idx], 1e-5);
  }
  // a·bᵀ via MatMulTransposedB where shapes permit: use b (4x5), c (2x5).
  Matrix<float> c(2, 5);
  for (float& v : c.data()) v = static_cast<float>(rng.Gaussian());
  Matrix<float> ct(5, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 5; ++j) ct(j, i) = c(i, j);
  }
  MatMul(b, ct, &expected);
  MatMulTransposedB(b, c, &actual);
  for (size_t idx = 0; idx < expected.data().size(); ++idx) {
    EXPECT_NEAR(actual.data()[idx], expected.data()[idx], 1e-5);
  }
}

TEST(Dense, ForwardAffine) {
  Rng rng(5);
  Dense dense(2, 1, &rng);
  // Overwrite parameters for a deterministic check: out = 2x + 3y + 1.
  std::vector<ParamView> params = dense.Params();
  params[0].values[0] = 2.0f;
  params[0].values[1] = 3.0f;
  params[1].values[0] = 1.0f;
  Matrix<float> out = dense.Forward(Make({{1, 1}, {2, 0}}));
  EXPECT_FLOAT_EQ(out(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(out(1, 0), 5.0f);
}

/// Numerical gradient check of a Dense+PReLU+Dense stack against the
/// analytic backward pass, through the masked MSE loss.
TEST(Layers, NumericalGradientCheck) {
  Rng rng(7);
  Sequential network;
  network.Add(std::make_unique<Dense>(3, 4, &rng));
  network.Add(std::make_unique<PRelu>(4));
  network.Add(std::make_unique<Dense>(4, 2, &rng));

  Matrix<float> input = Make({{0.5f, -0.3f, 0.8f}, {-1.0f, 0.2f, 0.1f}});
  Matrix<float> target = Make({{0.3f, -0.1f}, {0.0f, 0.7f}});
  Matrix<float> mask = Make({{1, 1}, {1, 0}});

  auto loss_fn = [&]() {
    Matrix<float> recon = network.Forward(input);
    return MaskedMse(recon, target, mask, nullptr);
  };

  // Analytic gradients.
  network.ZeroGrads();
  Matrix<float> recon = network.Forward(input);
  Matrix<float> grad;
  MaskedMse(recon, target, mask, &grad);
  network.Backward(grad);

  // Compare a sample of parameters against central differences.
  const float kEps = 1e-3f;
  for (ParamView view : network.Params()) {
    size_t stride = std::max<size_t>(1, view.size / 5);
    for (size_t p = 0; p < view.size; p += stride) {
      float saved = view.values[p];
      view.values[p] = saved + kEps;
      double up = loss_fn();
      view.values[p] = saved - kEps;
      double down = loss_fn();
      view.values[p] = saved;
      double numeric = (up - down) / (2.0 * kEps);
      EXPECT_NEAR(view.grads[p], numeric, 2e-2)
          << "param " << p << " of view with size " << view.size;
    }
  }
}

TEST(PRelu, ForwardSlopes) {
  PRelu prelu(2, 0.5f);
  Matrix<float> out = prelu.Forward(Make({{2.0f, -2.0f}}));
  EXPECT_FLOAT_EQ(out(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(out(0, 1), -1.0f);
}

TEST(RmsProp, MinimizesQuadratic) {
  // One parameter, loss = (x - 3)^2, gradient 2(x-3).
  std::vector<float> x = {0.0f};
  std::vector<float> grad = {0.0f};
  RmsProp optimizer(0.05, 0.9);
  std::vector<ParamView> params = {{x.data(), grad.data(), 1}};
  for (int step = 0; step < 500; ++step) {
    grad[0] = 2.0f * (x[0] - 3.0f);
    optimizer.Step(params);
  }
  EXPECT_NEAR(x[0], 3.0f, 0.1f);
}

TEST(MaskedMse, ValueAndGradient) {
  Matrix<float> recon = Make({{1.0f, 2.0f}});
  Matrix<float> target = Make({{0.0f, 5.0f}});
  Matrix<float> mask = Make({{1.0f, 0.0f}});
  Matrix<float> grad;
  double loss = MaskedMse(recon, target, mask, &grad);
  EXPECT_DOUBLE_EQ(loss, 1.0);  // only the first cell counts
  EXPECT_FLOAT_EQ(grad(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(grad(0, 1), 0.0f);
}

TEST(MaskedMse, AllMaskedIsZero) {
  Matrix<float> m = Make({{1.0f}});
  Matrix<float> zero_mask = Make({{0.0f}});
  EXPECT_DOUBLE_EQ(MaskedMse(m, m, zero_mask, nullptr), 0.0);
}

TEST(Autoencoder, ArchitectureHalvesWidths) {
  AutoencoderConfig config;
  config.input_dim = 64;
  config.encoder_layers = 3;
  DenoisingAutoencoder autoencoder(config);
  EXPECT_EQ(autoencoder.input_dim(), 64);
  EXPECT_EQ(autoencoder.code_dim(), 8);
}

TEST(Autoencoder, LearnsLowRankStructure) {
  // Data on a 1-D manifold: x = t * direction. The autoencoder should
  // reconstruct it much better after training than before.
  const int kDim = 16;
  Rng rng(11);
  std::vector<float> direction(kDim);
  for (float& v : direction) v = static_cast<float>(rng.Gaussian());

  auto make_batch = [&](int batch) {
    Matrix<float> data(batch, kDim);
    for (int r = 0; r < batch; ++r) {
      float t = static_cast<float>(rng.Gaussian());
      for (int c = 0; c < kDim; ++c) data(r, c) = t * direction[c];
    }
    return data;
  };

  AutoencoderConfig config;
  config.input_dim = kDim;
  config.encoder_layers = 2;
  config.learning_rate = 3e-3;
  DenoisingAutoencoder autoencoder(config);

  Matrix<float> ones_mask(32, kDim, 1.0f);
  Matrix<float> eval = make_batch(32);
  double before = autoencoder.Loss(eval, eval, ones_mask);
  for (int step = 0; step < 400; ++step) {
    Matrix<float> batch = make_batch(32);
    autoencoder.TrainBatch(batch, batch, ones_mask);
  }
  double after = autoencoder.Loss(eval, eval, ones_mask);
  EXPECT_LT(after, 0.25 * before);
}

TEST(Imputer, FillsAllMissingValues) {
  // Two weeks of a sinusoidal KPI with injected gaps.
  const int kSectors = 6;
  const int kHours = 2 * 168;
  const int kKpis = 3;
  Tensor3<float> kpis(kSectors, kHours, kKpis);
  Rng rng(13);
  for (int i = 0; i < kSectors; ++i) {
    for (int j = 0; j < kHours; ++j) {
      for (int k = 0; k < kKpis; ++k) {
        kpis(i, j, k) = static_cast<float>(
            std::sin(2 * M_PI * (j % 24) / 24.0 + k) + 0.05 * rng.Gaussian());
      }
    }
  }
  Tensor3<float> truth = kpis;
  for (int i = 0; i < kSectors; ++i) {
    for (int j = 100; j < 130; ++j) {
      for (int k = 0; k < kKpis; ++k) kpis(i, j, k) = MissingValue();
    }
  }

  ImputerConfig config;
  config.slice_hours = 168;
  config.encoder_layers = 2;
  config.epochs = 3;
  config.batch_size = 8;
  config.learning_rate = 1e-3;
  KpiImputer imputer(config);
  ImputerReport report = imputer.FitAndImpute(&kpis);
  EXPECT_GT(report.imputed_cells, 0);
  for (float v : kpis.data()) EXPECT_FALSE(IsMissing(v));
  EXPECT_GT(report.initial_missing_fraction, 0.0);
}

TEST(Imputer, OnlyMissingCellsAreReplaced) {
  Tensor3<float> kpis(4, 168, 2, 1.5f);
  kpis(0, 10, 0) = MissingValue();
  Tensor3<float> original = kpis;
  ImputerConfig config;
  config.encoder_layers = 2;
  config.epochs = 2;
  config.batch_size = 4;
  KpiImputer imputer(config);
  imputer.FitAndImpute(&kpis);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 168; ++j) {
      for (int k = 0; k < 2; ++k) {
        if (i == 0 && j == 10 && k == 0) {
          EXPECT_FALSE(IsMissing(kpis(i, j, k)));
        } else {
          EXPECT_FLOAT_EQ(kpis(i, j, k), original(i, j, k));
        }
      }
    }
  }
}

TEST(Imputer, LossDecreasesOverEpochs) {
  Tensor3<float> kpis(8, 168, 2);
  Rng rng(17);
  for (size_t idx = 0; idx < kpis.data().size(); ++idx) {
    kpis.data()[idx] = static_cast<float>(
        std::sin(idx * 0.1) + 0.01 * rng.Gaussian());
  }
  ImputerConfig config;
  config.encoder_layers = 2;
  config.epochs = 6;
  config.batch_size = 8;
  config.learning_rate = 1e-3;
  KpiImputer imputer(config);
  ImputerReport report = imputer.Fit(kpis);
  EXPECT_LT(report.final_epoch_loss, report.first_epoch_loss);
}

TEST(ForwardFill, FillsInteriorGapsWithPreviousValue) {
  Tensor3<float> kpis(1, 6, 1);
  kpis(0, 0, 0) = 1.0f;
  kpis(0, 1, 0) = MissingValue();
  kpis(0, 2, 0) = MissingValue();
  kpis(0, 3, 0) = 4.0f;
  kpis(0, 4, 0) = MissingValue();
  kpis(0, 5, 0) = 6.0f;
  long long filled = ImputeForwardFill(&kpis);
  EXPECT_EQ(filled, 3);
  EXPECT_FLOAT_EQ(kpis(0, 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(kpis(0, 2, 0), 1.0f);
  EXPECT_FLOAT_EQ(kpis(0, 4, 0), 4.0f);
}

TEST(ForwardFill, LeadingGapBackfilled) {
  Tensor3<float> kpis(1, 3, 1);
  kpis(0, 0, 0) = MissingValue();
  kpis(0, 1, 0) = MissingValue();
  kpis(0, 2, 0) = 9.0f;
  ImputeForwardFill(&kpis);
  EXPECT_FLOAT_EQ(kpis(0, 0, 0), 9.0f);
  EXPECT_FLOAT_EQ(kpis(0, 1, 0), 9.0f);
}

TEST(FeatureMean, FillsWithPerKpiMean) {
  Tensor3<float> kpis(1, 4, 2);
  kpis(0, 0, 0) = 2.0f;
  kpis(0, 1, 0) = 4.0f;
  kpis(0, 2, 0) = MissingValue();
  kpis(0, 3, 0) = 6.0f;
  for (int j = 0; j < 4; ++j) kpis(0, j, 1) = 10.0f;
  long long filled = ImputeFeatureMean(&kpis);
  EXPECT_EQ(filled, 1);
  EXPECT_FLOAT_EQ(kpis(0, 2, 0), 4.0f);
}

}  // namespace
}  // namespace hotspot::nn
