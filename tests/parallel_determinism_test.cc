// Determinism regression tests for the parallel execution layer: every
// parallel site must produce bitwise-identical output at any thread count
// (the serial path at HOTSPOT_NUM_THREADS=1 is the reference). These tests
// run the GBDT, the random forest, feature extraction, a small end-to-end
// study and an evaluation sweep over the shared thread-count matrix
// (tests/thread_matrix.h; override with HOTSPOT_TEST_THREAD_MATRIX) and
// compare exactly.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "core/study.h"
#include "core/task.h"
#include "gtest/gtest.h"
#include "obs/pipeline_context.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "scoped_num_threads.h"
#include "thread_matrix.h"
#include "util/rng.h"

namespace hotspot {
namespace {

/// Exact comparison that treats NaN == NaN as equal (empty-label days can
/// legitimately yield NaN average precision).
void ExpectSameDouble(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what;
}

ml::Dataset MakeDataset(int n, int d, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.features = Matrix<float>(n, d);
  data.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float* row = data.features.Row(i);
    double signal = 0.0;
    for (int f = 0; f < d; ++f) {
      if (rng.Bernoulli(0.05)) {
        row[f] = MissingValue();
        continue;
      }
      row[f] = static_cast<float>(rng.Gaussian());
      if (f < 3) signal += row[f];
    }
    data.labels[static_cast<size_t>(i)] =
        signal + rng.Gaussian() > 0.5 ? 1.0f : 0.0f;
  }
  data.weights = ml::BalancedWeights(data.labels);
  return data;
}

struct GbdtOutputs {
  std::vector<double> losses;
  std::vector<double> importances;
  std::vector<double> predictions;
};

GbdtOutputs FitGbdt(const ml::Dataset& data) {
  ml::GbdtConfig config;
  config.num_iterations = 25;
  config.num_leaves = 15;
  config.max_bins = 16;
  config.feature_fraction = 0.7;  // exercises the Rng paths
  config.bagging_fraction = 0.7;
  config.seed = 7;
  ml::Gbdt model(config);
  model.Fit(data);
  GbdtOutputs outputs;
  outputs.losses = model.training_loss();
  outputs.importances = model.FeatureImportances();
  for (int i = 0; i < data.num_instances(); ++i) {
    outputs.predictions.push_back(model.PredictRaw(data.features.Row(i)));
  }
  return outputs;
}

TEST(ParallelDeterminism, GbdtBitwiseIdenticalAcrossThreadCounts) {
  ml::Dataset data = MakeDataset(400, 12, 2024);
  ScopedNumThreads serial("1");
  GbdtOutputs reference = FitGbdt(data);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    GbdtOutputs outputs = FitGbdt(data);
    // Exact (==) comparisons throughout: the contract is bitwise identity.
    EXPECT_EQ(outputs.losses, reference.losses) << threads << " threads";
    EXPECT_EQ(outputs.importances, reference.importances)
        << threads << " threads";
    EXPECT_EQ(outputs.predictions, reference.predictions)
        << threads << " threads";
  });
}

TEST(ParallelDeterminism, FeatureBinnerIdenticalAcrossThreadCounts) {
  ml::Dataset data = MakeDataset(300, 9, 77);
  std::vector<std::vector<float>> reference;
  {
    ScopedNumThreads serial("1");
    ml::FeatureBinner binner;
    binner.Fit(data.features, 32);
    for (int f = 0; f < data.num_features(); ++f) {
      reference.push_back(binner.Thresholds(f));
    }
  }
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::FeatureBinner binner;
    binner.Fit(data.features, 32);
    for (int f = 0; f < data.num_features(); ++f) {
      EXPECT_EQ(binner.Thresholds(f), reference[static_cast<size_t>(f)])
          << "feature " << f << " at " << threads << " threads";
    }
  });
}

std::vector<double> FitForest(const ml::Dataset& data) {
  ml::ForestConfig config;
  config.num_trees = 12;
  config.seed = 5;
  ml::RandomForest forest(config);
  forest.Fit(data);
  std::vector<double> outputs;
  for (int i = 0; i < data.num_instances(); ++i) {
    outputs.push_back(forest.PredictProba(data.features.Row(i)));
  }
  std::vector<double> importances = forest.FeatureImportances();
  outputs.insert(outputs.end(), importances.begin(), importances.end());
  return outputs;
}

TEST(ParallelDeterminism, RandomForestBitwiseIdenticalAcrossThreadCounts) {
  ml::Dataset data = MakeDataset(250, 10, 11);
  ScopedNumThreads serial("1");
  std::vector<double> reference = FitForest(data);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    EXPECT_EQ(FitForest(data), reference) << threads << " threads";
  });
}

// Per-unit RNG audit: refitting with the same seed must be bit-identical,
// which fails if any parallel unit shared a mutable Rng with another. The
// count is intentionally pinned high (not the shared matrix): the audit
// needs real parallelism, not a sweep.
TEST(ParallelDeterminism, RefitSameSeedIsBitIdentical) {
  ml::Dataset data = MakeDataset(250, 10, 13);
  ScopedNumThreads env("8");
  EXPECT_EQ(FitForest(data), FitForest(data));
  GbdtOutputs first = FitGbdt(data);
  GbdtOutputs second = FitGbdt(data);
  EXPECT_EQ(first.losses, second.losses);
  EXPECT_EQ(first.predictions, second.predictions);
}

simnet::GeneratorConfig SmallNetworkConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 36;
  config.topology.num_cities = 2;
  config.weeks = 10;
  config.seed = 4242;
  return config;
}

struct StudyOutputs {
  std::vector<float> hourly_scores;
  std::vector<float> daily_labels;
  std::vector<float> become_labels;
  std::vector<float> features;
};

StudyOutputs BuildSmallStudy(const simnet::SyntheticNetwork& network) {
  Study study = BuildStudy(StudyInput(network), StudyOptions{});
  StudyOutputs outputs;
  outputs.hourly_scores = study.scores.hourly.data();
  outputs.daily_labels = study.daily_labels.data();
  outputs.become_labels = study.become_labels.data();
  outputs.features = study.features.tensor().data();
  return outputs;
}

TEST(ParallelDeterminism, StudyPipelineIdenticalAcrossThreadCounts) {
  simnet::SyntheticNetwork network =
      simnet::GenerateNetwork(SmallNetworkConfig());
  ScopedNumThreads serial("1");
  StudyOutputs reference = BuildSmallStudy(network);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    StudyOutputs outputs = BuildSmallStudy(network);
    EXPECT_EQ(outputs.hourly_scores, reference.hourly_scores)
        << threads << " threads";
    EXPECT_EQ(outputs.daily_labels, reference.daily_labels)
        << threads << " threads";
    EXPECT_EQ(outputs.become_labels, reference.become_labels)
        << threads << " threads";
    EXPECT_EQ(outputs.features, reference.features) << threads << " threads";
  });
}

std::vector<CellResult> RunSmallSweep(const Study& study,
                                      obs::PipelineContext* context =
                                          nullptr) {
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig base;
  base.seed = 31;
  base.forest.num_trees = 6;
  EvaluationRunner runner(&forecaster, base);
  runner.set_random_repeats(3);
  ParameterGrid grid;
  grid.models = {ModelKind::kPersist, ModelKind::kAverage,
                 ModelKind::kRfRaw};
  grid.t_values = {50, 52};
  grid.h_values = {1, 2};
  grid.w_values = {3};
  SweepOptions options;
  options.context = context;
  return RunSweep(&runner, grid, options);
}

void ExpectSameCells(const std::vector<CellResult>& cells,
                     const std::vector<CellResult>& reference,
                     const std::string& label) {
  ASSERT_EQ(cells.size(), reference.size()) << label;
  for (size_t c = 0; c < cells.size(); ++c) {
    const std::string what = "cell " + std::to_string(c) + " " + label;
    EXPECT_EQ(static_cast<int>(cells[c].model),
              static_cast<int>(reference[c].model))
        << what;
    EXPECT_EQ(cells[c].t, reference[c].t) << what;
    EXPECT_EQ(cells[c].h, reference[c].h) << what;
    EXPECT_EQ(cells[c].w, reference[c].w) << what;
    ExpectSameDouble(cells[c].average_precision,
                     reference[c].average_precision, what);
    ExpectSameDouble(cells[c].lift, reference[c].lift, what);
  }
}

TEST(ParallelDeterminism, EvaluationSweepIdenticalAcrossThreadCounts) {
  simnet::SyntheticNetwork network =
      simnet::GenerateNetwork(SmallNetworkConfig());
  Study study = BuildStudy(StudyInput(std::move(network)), StudyOptions{});
  ScopedNumThreads serial("1");
  std::vector<CellResult> reference = RunSmallSweep(study);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    std::vector<CellResult> cells = RunSmallSweep(study);
    ExpectSameCells(cells, reference, "at " + threads + " threads");
  });
}

// Observability is read-only with respect to the computation: attaching a
// live PipelineContext (spans, counters, histograms all firing) must not
// change a single result bit, at any thread count.
TEST(ParallelDeterminism, SweepIdenticalWithLivePipelineContext) {
  simnet::SyntheticNetwork network =
      simnet::GenerateNetwork(SmallNetworkConfig());
  Study study = BuildStudy(StudyInput(std::move(network)), StudyOptions{});
  ScopedNumThreads serial("1");
  std::vector<CellResult> reference = RunSmallSweep(study);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    obs::PipelineContext context;
    std::vector<CellResult> cells = RunSmallSweep(study, &context);
    ExpectSameCells(cells, reference,
                    "with context at " + threads + " threads");
    // The context actually observed the sweep (it was not a no-op).
    EXPECT_GT(context.metrics().counter("eval/cells").Total(), 0u)
        << threads << " threads";
    EXPECT_FALSE(context.trace().Aggregate().empty())
        << threads << " threads";
  });
}

}  // namespace
}  // namespace hotspot
