// The live-telemetry lockdown suite: TelemetryExporter frame semantics
// (deltas, rates, quantiles, exemplars, NDJSON/Prometheus rendering), the
// background sampling thread, and the observe-only contract — a serving
// pipeline with a live exporter + flight recorder produces predictions
// bitwise identical to a run with telemetry disabled, at every
// thread-matrix count. Also the registry-wide metric-name lint: after a
// real pipeline + fleet workload, every registered name must match
// `[a-zA-Z_][a-zA-Z0-9_/]*` and survive the Prometheus mangling round
// trip.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/forecast_service.h"
#include "core/study.h"
#include "fleet/forecast_fleet.h"
#include "obs/pipeline_context.h"
#include "obs/telemetry.h"
#include "pipeline/serving_pipeline.h"
#include "thread_matrix.h"

namespace hotspot {
namespace {

using obs::FrameToJsonLine;
using obs::FrameToPrometheusText;
using obs::PipelineContext;
using obs::TelemetryExporter;
using obs::TelemetryFrame;
using obs::TelemetryOptions;
using pipeline::ServingPipeline;

// ---------------------------------------------------------------------------
// Fixtures (the pipeline_test recipe: small single-city study, GBDT
// bundle, complete forward-fill-imputed KPIs).

simnet::GeneratorConfig SmallConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 60;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 77;
  return config;
}

const Study& SharedStudy() {
  static const Study* study = new Study(BuildStudy(StudyInput(SmallConfig())));
  return *study;
}

const ForecastService& SharedService() {
  static const ForecastService* service = [] {
    const Study& study = SharedStudy();
    ForecastConfig config;
    config.model = ModelKind::kGbdt;
    config.t = 55;
    config.h = 1;
    config.w = 3;
    config.gbdt.num_iterations = 10;
    config.gbdt.num_leaves = 15;
    config.gbdt.max_bins = 32;
    Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
    std::unique_ptr<serialize::ForecastBundle> bundle =
        forecaster.TrainBundle(config);
    bundle->score = study.score_config;
    return new ForecastService(std::move(bundle));
  }();
  return *service;
}

ServingPipeline::Options OptionsFor(const Study& study) {
  ServingPipeline::Options options;
  options.num_sectors = study.num_sectors();
  options.num_kpis = study.network.num_kpis();
  options.calendar = &study.network.calendar_matrix;
  options.score = study.score_config;
  options.history_weeks = study.num_weeks() + 1;
  return options;
}

/// Streams the study hour-major through a fresh pipeline over the shared
/// service and returns the served predictions.
std::vector<StreamingPrediction> RunPipelineServe(const Study& study) {
  ForecastService service(serialize::CloneBundle(SharedService().bundle()));
  ServingPipeline serving(&service, OptionsFor(study));
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      EXPECT_TRUE(serving.Push(i, j, study.network.kpis.Slice(i, j),
                               study.network.kpis.dim2()));
    }
  }
  serving.Finish();
  return serving.TakePredictions();
}

// ---------------------------------------------------------------------------
// Frame semantics

TEST(TelemetryExporter, FrameCarriesDeltasRatesAndQuantiles) {
  PipelineContext context;
  context.metrics().counter("t/count").Add(10);
  obs::Histogram& histogram =
      context.metrics().histogram("t/hist", {0.1, 1.0, 10.0});
  for (int k = 0; k < 100; ++k) histogram.Observe(0.05);
  for (int k = 0; k < 9; ++k) histogram.Observe(5.0);
  histogram.ObserveWithExemplar(5.0, 77);
  context.metrics().gauge("t/gauge").Set(3.5);
  context.flight().Record(obs::FlightEventKind::kCustom, 1);

  TelemetryOptions options;
  options.final_frame_on_stop = false;
  TelemetryExporter exporter(&context, options);

  TelemetryFrame first = exporter.SampleNow();
  EXPECT_EQ(first.index, 0u);
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].name, "t/count");
  EXPECT_EQ(first.counters[0].total, 10u);
  // The first frame's delta equals the total (previous frame = zero).
  EXPECT_EQ(first.counters[0].delta, 10u);
  EXPECT_GT(first.counters[0].rate, 0.0);
  ASSERT_EQ(first.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(first.gauges[0].value, 3.5);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].count, 110u);
  EXPECT_EQ(first.histograms[0].delta, 110u);
  // 100 of 110 observations land in the first bucket: p50 sits inside
  // (0, 0.1], p99 inside (1, 10] — the exemplar points at an outlier.
  EXPECT_GT(first.histograms[0].p50, 0.0);
  EXPECT_LE(first.histograms[0].p50, 0.1);
  EXPECT_GT(first.histograms[0].p99, 1.0);
  ASSERT_TRUE(first.histograms[0].has_exemplar);
  EXPECT_EQ(first.histograms[0].exemplar, 77);
  EXPECT_DOUBLE_EQ(first.histograms[0].exemplar_value, 5.0);
  EXPECT_EQ(first.flight_recorded, 1u);
  EXPECT_EQ(first.flight_dropped, 0u);

  // A quiet interval: deltas and rates return to zero, totals persist.
  context.metrics().counter("t/count").Add(5);
  TelemetryFrame second = exporter.SampleNow();
  EXPECT_EQ(second.index, 1u);
  EXPECT_EQ(second.counters[0].total, 15u);
  EXPECT_EQ(second.counters[0].delta, 5u);
  EXPECT_EQ(second.histograms[0].delta, 0u);
  TelemetryFrame third = exporter.SampleNow();
  EXPECT_EQ(third.counters[0].delta, 0u);
  EXPECT_DOUBLE_EQ(third.counters[0].rate, 0.0);
  EXPECT_EQ(exporter.frames(), 3u);
}

TEST(TelemetryExporter, RendersSingleLineNdjsonAndPrometheusText) {
  PipelineContext context;
  context.metrics().counter("fleet/rows_routed").Add(3);
  context.metrics().histogram("serve/latency_seconds", {0.1}).Observe(0.05);
  TelemetryOptions options;
  options.final_frame_on_stop = false;
  TelemetryExporter exporter(&context, options);
  TelemetryFrame frame = exporter.SampleNow();

  std::string line = FrameToJsonLine(frame);
  // NDJSON: one object, schema-tagged, with no interior newlines — the
  // sinks append the line terminator.
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 0);
  EXPECT_NE(line.find("\"schema\":\"hotspot.telemetry.v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"name\":\"fleet/rows_routed\""), std::string::npos);
  EXPECT_NE(line.find("\"flight\":"), std::string::npos);

  std::string text = FrameToPrometheusText(frame);
  // Prometheus text: mangled names, TYPE annotations, summary quantiles.
  EXPECT_NE(text.find("# TYPE fleet:rows_routed counter"),
            std::string::npos);
  EXPECT_NE(text.find("fleet:rows_routed 3"), std::string::npos);
  EXPECT_NE(text.find("serve:latency_seconds"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_EQ(text.find('/'), std::string::npos);  // no illegal names leak
}

TEST(TelemetryExporter, AppendsNdjsonFramesToFile) {
  PipelineContext context;
  context.metrics().counter("t/count").Increment();
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotspot_telemetry_test.ndjson")
          .string();
  std::filesystem::remove(path);
  {
    TelemetryOptions options;
    options.json_path = path;
    options.period = std::chrono::hours(1);  // only explicit samples
    TelemetryExporter exporter(&context, options);
    exporter.SampleNow();
    exporter.Stop();  // final_frame_on_stop appends one more
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), file));
  std::fclose(file);
  std::filesystem::remove(path);
  EXPECT_EQ(std::count(contents.begin(), contents.end(), '\n'), 2);
  EXPECT_NE(contents.find("\"frame\":0"), std::string::npos);
  EXPECT_NE(contents.find("\"frame\":1"), std::string::npos);
}

TEST(TelemetryExporter, BackgroundThreadProducesFrames) {
  PipelineContext context;
  std::atomic<uint64_t> delivered{0};
  TelemetryOptions options;
  options.period = std::chrono::milliseconds(5);
  options.final_frame_on_stop = false;
  options.on_frame = [&delivered](const TelemetryFrame&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  TelemetryExporter exporter(&context, options);
  // Timing-lenient: wait up to 5 s for two background frames rather than
  // asserting on a sleep.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (delivered.load(std::memory_order_relaxed) < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  exporter.Stop();
  EXPECT_GE(delivered.load(), 2u);
  EXPECT_GE(exporter.frames(), 2u);
  // Stop is idempotent and the destructor tolerates a stopped exporter.
  exporter.Stop();
}

// ---------------------------------------------------------------------------
// The observe-only contract: telemetry must never change a prediction

TEST(Telemetry, PipelinePredictionsBitwiseIdenticalWithExporterOn) {
  const Study& study = SharedStudy();
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    // Reference run: no context installed, all instrumentation off.
    std::vector<StreamingPrediction> baseline = RunPipelineServe(study);
    ASSERT_FALSE(baseline.empty());

    // Instrumented run: full context (metrics + flight recorder) with a
    // fast background exporter sampling concurrently.
    PipelineContext context;
    PipelineContext::ScopedInstall install(&context);
    TelemetryOptions options;
    options.period = std::chrono::milliseconds(2);
    TelemetryExporter exporter(&context, options);
    std::vector<StreamingPrediction> instrumented = RunPipelineServe(study);
    exporter.Stop();

    ASSERT_EQ(instrumented.size(), baseline.size()) << "threads=" << threads;
    for (size_t b = 0; b < baseline.size(); ++b) {
      EXPECT_EQ(instrumented[b].end_day, baseline[b].end_day);
      ASSERT_EQ(instrumented[b].scores.size(), baseline[b].scores.size());
      EXPECT_EQ(std::memcmp(instrumented[b].scores.data(),
                            baseline[b].scores.data(),
                            baseline[b].scores.size() * sizeof(float)),
                0)
          << "threads=" << threads << " end_day=" << baseline[b].end_day;
    }

    // The run actually exercised the tracing: every stage's residency
    // histogram observed every traced item, exemplars included.
    for (int stage = 0; stage < 4; ++stage) {
      obs::Histogram& residency = context.metrics().histogram(
          "pipeline/stage" + std::to_string(stage) + "/residency_seconds",
          obs::DefaultLatencySeconds());
      EXPECT_GT(residency.Count(), 0u)
          << "threads=" << threads << " stage=" << stage;
      int64_t exemplar = 0;
      double value = 0.0;
      EXPECT_TRUE(residency.LastExemplar(&exemplar, &value))
          << "threads=" << threads << " stage=" << stage;
      EXPECT_GE(value, 0.0);
    }
  });
}

// ---------------------------------------------------------------------------
// Registry-wide name lint after a real workload

TEST(Telemetry, EveryRegisteredMetricNamePassesTheLint) {
  const Study& study = SharedStudy();
  PipelineContext context;
  PipelineContext::ScopedInstall install(&context);

  // A pipeline run and a 2-shard fleet run, so the registry holds the
  // full production name surface: pipeline/, serve/, stream/, fleet/ and
  // the shard-scoped families.
  (void)RunPipelineServe(study);
  {
    fleet::FleetOptions options;
    options.num_shards = 2;
    options.serving = OptionsFor(study);
    fleet::ForecastFleet fleet(
        serialize::CloneBundle(SharedService().bundle()), options);
    const int hours = study.network.num_hours();
    for (int j = 0; j < hours; ++j) {
      for (int i = 0; i < study.num_sectors(); ++i) {
        fleet::ForecastFleet::PushVerdict verdict;
        while ((verdict = fleet.Push(i, j, study.network.kpis.Slice(i, j),
                                     study.network.kpis.dim2())) ==
               fleet::ForecastFleet::PushVerdict::kRejectedOverload) {
          std::this_thread::yield();
        }
        ASSERT_EQ(verdict, fleet::ForecastFleet::PushVerdict::kRouted);
      }
    }
    fleet.Finish();
  }

  int checked = 0;
  for (const auto& [name, counter] : context.metrics().Counters()) {
    (void)counter;
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
    EXPECT_EQ(obs::FromPrometheusName(obs::ToPrometheusName(name)), name);
    ++checked;
  }
  for (const auto& [name, gauge] : context.metrics().Gauges()) {
    (void)gauge;
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
    EXPECT_EQ(obs::FromPrometheusName(obs::ToPrometheusName(name)), name);
    ++checked;
  }
  for (const auto& [name, histogram] : context.metrics().Histograms()) {
    (void)histogram;
    EXPECT_TRUE(obs::IsValidMetricName(name)) << name;
    EXPECT_EQ(obs::FromPrometheusName(obs::ToPrometheusName(name)), name);
    ++checked;
  }
  // The workload registered the expected families; an empty registry
  // would vacuously pass.
  EXPECT_GT(checked, 20);
  EXPECT_GT(context.metrics().counter("fleet/rows_routed").Total(), 0u);
  obs::Histogram& shard_e2e = context.metrics().histogram(
      obs::ShardMetricName(0, "e2e_seconds"), obs::DefaultLatencySeconds());
  EXPECT_GT(shard_e2e.Count(), 0u);
}

}  // namespace
}  // namespace hotspot
