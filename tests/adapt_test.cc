// Lockdown tests for the continual-learning subsystem (src/adapt):
//   * FeatureCapture — the rolling training corpus rebuilt from the live
//     serving path must be bitwise the batch study's tensors;
//   * champion/challenger comparison — paired-bootstrap verdict semantics
//     on synthetic rankings, including the degenerate no-positives case;
//   * paired percentile bootstrap — determinism and CI sanity;
//   * bundle lineage — codec round trip of the retrain provenance;
//   * end-to-end closed loop — a served stream whose network shifted away
//     from the champion's training era must walk kIdle → kRetraining →
//     kShadowing → kPromoted → kIdle with the challenger genuinely
//     beating the champion on matured-label lift, pre-promotion
//     predictions bitwise-identical to a controller-free run, and the
//     flight log reconciling every transition against the adapt/*
//     counters;
//   * fault drills — an injected regressing challenger must be promoted
//     and then rolled back inside the guard window; an injected
//     no-better challenger must be rejected at the maximum shadow age
//     and start the cooldown.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "adapt/adaptation_controller.h"
#include "adapt/capture.h"
#include "adapt/champion_challenger.h"
#include "core/forecast_service.h"
#include "core/study.h"
#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/pipeline_context.h"
#include "pipeline/serving_pipeline.h"
#include "serialize/bundle.h"
#include "stats/bootstrap.h"
#include "tensor/temporal.h"
#include "util/rng.h"

namespace hotspot {
namespace {

using adapt::AdaptState;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

simnet::GeneratorConfig AdaptNetworkConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 48;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 20260808;
  return config;
}

/// The champion's training era: the unmodified network.
const Study& ControlStudy() {
  static const Study* study =
      new Study(BuildStudy(StudyInput(AdaptNetworkConfig())));
  return *study;
}

/// The serving era: same topology and seed, but the latent load process
/// reassigned — a different subset of sectors is now chronically
/// overloaded, so both the KPI marginals and the hot-spot label
/// assignment moved away from the champion's training distribution.
const Study& ShiftedStudy() {
  static const Study* study = [] {
    simnet::GeneratorConfig config = AdaptNetworkConfig();
    config.load.chronic_fraction = 0.6;
    config.load.chronic_min = 1.5;
    config.load.chronic_max = 2.5;
    return new Study(BuildStudy(StudyInput(config)));
  }();
  return *study;
}

ForecastConfig ChampionConfig() {
  ForecastConfig config;
  config.model = ModelKind::kGbdt;
  config.t = 55;
  config.h = 1;
  config.w = 3;
  config.training_days = 10;
  config.seed = 17;
  config.gbdt.num_iterations = 10;
  config.gbdt.num_leaves = 15;
  config.gbdt.max_bins = 32;
  return config;
}

std::unique_ptr<serialize::ForecastBundle> TrainChampion(const Study& study) {
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(ChampionConfig());
  bundle->score = study.score_config;
  return bundle;
}

pipeline::ServingPipeline::Options ServeOptionsFor(const Study& study) {
  pipeline::ServingPipeline::Options options;
  options.num_sectors = study.num_sectors();
  options.num_kpis = study.network.num_kpis();
  options.calendar = &study.network.calendar_matrix;
  options.score = study.score_config;
  options.history_weeks = study.num_weeks() + 1;
  return options;
}

/// Streams `kpis` hour-major through the pipeline, polling the controller
/// at every day close. While a retrain is in flight the feed pauses until
/// the worker hands off — that pins the shadow episode's day span to the
/// stream clock instead of the scheduler's.
void StreamWithPolls(const Tensor3<float>& kpis,
                     pipeline::ServingPipeline* serving,
                     adapt::AdaptationController* controller,
                     std::vector<AdaptState>* states) {
  for (int j = 0; j < kpis.dim1(); ++j) {
    for (int i = 0; i < kpis.dim0(); ++i) {
      EXPECT_TRUE(serving->Push(i, j, kpis.Slice(i, j), kpis.dim2()));
    }
    if ((j + 1) % kHoursPerDay != 0) continue;
    AdaptState state = controller->Poll();
    if (state == AdaptState::kRetraining) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(120);
      while (controller->state() == AdaptState::kRetraining &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_NE(controller->state(), AdaptState::kRetraining)
          << "retrain worker stuck past the deadline";
    }
    states->push_back(controller->state());
  }
}

/// Every adapt-ladder edge in the flight log must reconcile with the
/// adapt/* counters and the controller's own report: the log is a
/// connected walk starting at kIdle, and the per-edge counts match the
/// counters exactly.
void ReconcileFlightLog(obs::PipelineContext* context,
                        const adapt::AdaptReport& report) {
  EXPECT_EQ(context->flight().dropped(), 0u);
  uint64_t transitions = 0;
  uint64_t into_retraining = 0;
  uint64_t into_shadowing = 0;
  uint64_t into_promoted = 0;
  uint64_t into_rolled_back = 0;
  uint64_t into_rejected = 0;
  int64_t previous = static_cast<int64_t>(AdaptState::kIdle);
  for (const obs::FlightEventRecord& event : context->flight().Snapshot()) {
    if (event.kind != obs::FlightEventKind::kAdaptTransition) continue;
    ++transitions;
    EXPECT_EQ(event.a, previous) << "disconnected ladder walk";
    previous = event.b;
    switch (static_cast<AdaptState>(event.b)) {
      case AdaptState::kRetraining:
        ++into_retraining;
        break;
      case AdaptState::kShadowing:
        ++into_shadowing;
        break;
      case AdaptState::kPromoted:
        ++into_promoted;
        break;
      case AdaptState::kRolledBack:
        ++into_rolled_back;
        break;
      case AdaptState::kRejected:
        ++into_rejected;
        break;
      case AdaptState::kIdle:
        break;
    }
  }
  obs::MetricsRegistry& metrics = context->metrics();
  EXPECT_EQ(transitions, metrics.counter("adapt/transitions").Total());
  EXPECT_EQ(into_retraining, metrics.counter("adapt/retrains").Total());
  EXPECT_EQ(into_retraining, report.retrains);
  EXPECT_EQ(into_shadowing,
            into_retraining -
                metrics.counter("adapt/retrain_failures").Total());
  EXPECT_EQ(into_promoted, metrics.counter("adapt/promotions").Total());
  EXPECT_EQ(into_promoted, report.promotions);
  EXPECT_EQ(into_rolled_back, metrics.counter("adapt/rollbacks").Total());
  EXPECT_EQ(into_rolled_back, report.rollbacks);
  EXPECT_EQ(into_rejected, metrics.counter("adapt/rejections").Total());
  EXPECT_EQ(into_rejected, report.rejections);
}

// ---------------------------------------------------------------------------
// FeatureCapture
// ---------------------------------------------------------------------------

TEST(FeatureCapture, SnapshotRebuildsBatchTrainingInputsBitwise) {
  const Study& study = ControlStudy();
  const Tensor3<float>& batch = study.features.tensor();
  const int num_kpis = study.network.num_kpis();

  adapt::CaptureConfig config;
  config.num_sectors = study.num_sectors();
  config.num_kpis = num_kpis;
  config.capture_weeks = 4;
  adapt::FeatureCapture capture(config);
  ASSERT_EQ(capture.channels(), batch.dim2());

  // Nothing captured yet: a snapshot must refuse, not fabricate.
  adapt::TrainingSlice slice;
  EXPECT_FALSE(capture.Snapshot(1, &slice));

  // Feed the study's finalized feature rows in the engine's order.
  for (int j = 0; j < batch.dim1(); ++j) {
    for (int i = 0; i < batch.dim0(); ++i) {
      capture.OnRow(i, j, batch.Slice(i, j), batch.dim2());
    }
  }
  EXPECT_EQ(capture.min_captured_hours(), batch.dim1());

  ASSERT_TRUE(capture.Snapshot(config.capture_weeks * kDaysPerWeek, &slice));
  EXPECT_EQ(slice.num_days, config.capture_weeks * kDaysPerWeek);
  EXPECT_EQ(slice.base_day, study.num_days() - slice.num_days);

  // The rebuilt feature tensor is bitwise the tail of the batch tensor —
  // no second feature path exists to diverge.
  const Tensor3<float>& rebuilt = slice.features.tensor();
  ASSERT_EQ(rebuilt.dim0(), batch.dim0());
  ASSERT_EQ(rebuilt.dim1(), slice.num_days * kHoursPerDay);
  ASSERT_EQ(rebuilt.dim2(), batch.dim2());
  const int base_hour = slice.base_day * kHoursPerDay;
  for (int i = 0; i < batch.dim0(); ++i) {
    for (int j = 0; j < rebuilt.dim1(); ++j) {
      ASSERT_EQ(std::memcmp(rebuilt.Slice(i, j),
                            batch.Slice(i, base_hour + j),
                            static_cast<size_t>(batch.dim2()) *
                                sizeof(float)),
                0)
          << "sector " << i << " hour " << j;
    }
  }

  // The daily score and label matrices are exact reconstructions of the
  // study's — up(S^d) and up(Y^d) are constant within a day.
  for (int i = 0; i < batch.dim0(); ++i) {
    for (int d = 0; d < slice.num_days; ++d) {
      EXPECT_EQ(slice.daily_scores.At(i, d),
                study.scores.daily.At(i, slice.base_day + d));
      EXPECT_EQ(slice.target_labels.At(i, d),
                study.daily_labels.At(i, slice.base_day + d));
    }
  }

  // A snapshot deeper than the ring keeps refusing.
  EXPECT_FALSE(
      capture.Snapshot(config.capture_weeks * kDaysPerWeek + 1, &slice));
}

// ---------------------------------------------------------------------------
// Champion/challenger comparison
// ---------------------------------------------------------------------------

adapt::ComparisonSample RankedSample(int rows) {
  adapt::ComparisonSample sample;
  for (int i = 0; i < rows; ++i) {
    const bool hot = i % 4 == 0;
    sample.labels.push_back(hot ? 1.0f : 0.0f);
    // Challenger ranks perfectly (tie-free); champion anti-ranks.
    sample.challenger.push_back((hot ? 0.8f : 0.2f) +
                                0.0005f * static_cast<float>(i));
    sample.champion.push_back((hot ? 0.2f : 0.8f) +
                              0.0005f * static_cast<float>(i));
  }
  sample.days = 4;
  return sample;
}

TEST(ChampionChallenger, PerfectChallengerWinsWithCiSeparation) {
  adapt::ComparisonSample sample = RankedSample(256);
  adapt::ComparisonPolicy policy;
  ASSERT_TRUE(policy.require_ci_separation);
  adapt::ComparisonVerdict verdict =
      adapt::CompareChampionChallenger(sample, policy);
  EXPECT_EQ(verdict.days, 4);
  EXPECT_EQ(verdict.rows, 256u);
  EXPECT_GT(verdict.challenger_ap, 0.99);
  EXPECT_LT(verdict.champion_ap, 0.5);
  EXPECT_GT(verdict.lift_delta, 0.0);
  EXPECT_GT(verdict.ap_delta, 0.0);
  EXPECT_GT(verdict.lift_delta_ci.ci_low, 0.0);
  EXPECT_LE(verdict.lift_delta_ci.ci_low, verdict.lift_delta_ci.ci_high);
  EXPECT_TRUE(verdict.challenger_wins);

  // The verdict is deterministic: the bootstrap stream is seeded.
  adapt::ComparisonVerdict again =
      adapt::CompareChampionChallenger(sample, policy);
  EXPECT_EQ(verdict.lift_delta_ci.ci_low, again.lift_delta_ci.ci_low);
  EXPECT_EQ(verdict.lift_delta_ci.ci_high, again.lift_delta_ci.ci_high);
}

TEST(ChampionChallenger, IdenticalModelsNeverWin) {
  adapt::ComparisonSample sample = RankedSample(128);
  sample.champion = sample.challenger;
  adapt::ComparisonVerdict verdict = adapt::CompareChampionChallenger(
      sample, adapt::ComparisonPolicy{});
  EXPECT_EQ(verdict.lift_delta, 0.0);
  EXPECT_FALSE(verdict.challenger_wins);
}

TEST(ChampionChallenger, NoPositiveLabelsNeverWins) {
  adapt::ComparisonSample sample = RankedSample(64);
  std::fill(sample.labels.begin(), sample.labels.end(), 0.0f);
  adapt::ComparisonPolicy policy;
  policy.min_lift_delta = -1e9;  // even the laxest gate must refuse
  policy.require_ci_separation = false;
  adapt::ComparisonVerdict verdict =
      adapt::CompareChampionChallenger(sample, policy);
  EXPECT_FALSE(verdict.challenger_wins);
}

// ---------------------------------------------------------------------------
// Paired percentile bootstrap
// ---------------------------------------------------------------------------

TEST(Bootstrap, DeterministicCiBracketsTheEstimate) {
  std::vector<double> values;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) values.push_back(rng.Gaussian());
  auto mean = [&values](const std::vector<int>& indices) {
    double sum = 0.0;
    for (int index : indices) sum += values[static_cast<size_t>(index)];
    return sum / static_cast<double>(indices.size());
  };
  BootstrapCi ci = BootstrapPercentileCi(
      static_cast<int>(values.size()), 500, 7, 0.05, mean);
  EXPECT_EQ(ci.resamples, 500);
  EXPECT_LE(ci.ci_low, ci.estimate);
  EXPECT_GE(ci.ci_high, ci.estimate);
  EXPECT_LT(ci.ci_high - ci.ci_low, 0.5);  // ~4 s.e. of a 200-sample mean

  BootstrapCi again = BootstrapPercentileCi(
      static_cast<int>(values.size()), 500, 7, 0.05, mean);
  EXPECT_EQ(ci.ci_low, again.ci_low);
  EXPECT_EQ(ci.ci_high, again.ci_high);

  // A different seed draws different resamples.
  BootstrapCi other = BootstrapPercentileCi(
      static_cast<int>(values.size()), 500, 8, 0.05, mean);
  EXPECT_NE(ci.ci_low, other.ci_low);
}

// ---------------------------------------------------------------------------
// Bundle lineage codec
// ---------------------------------------------------------------------------

TEST(BundleLineage, SurvivesCloneRoundTrip) {
  std::unique_ptr<serialize::ForecastBundle> bundle =
      TrainChampion(ControlStudy());
  ASSERT_EQ(bundle->lineage, nullptr);  // offline training carries none

  bundle->lineage = std::make_unique<serialize::BundleLineage>();
  bundle->lineage->parent_generation = 7;
  bundle->lineage->retrain_index = 3;
  bundle->lineage->trained_end_day = 41;
  bundle->lineage->source = "adapt/drift";

  // CloneBundle is a codec round trip, so this pins the v2 section too.
  std::unique_ptr<serialize::ForecastBundle> clone =
      serialize::CloneBundle(*bundle);
  ASSERT_NE(clone->lineage, nullptr);
  EXPECT_EQ(clone->lineage->parent_generation, 7u);
  EXPECT_EQ(clone->lineage->retrain_index, 3u);
  EXPECT_EQ(clone->lineage->trained_end_day, 41);
  EXPECT_EQ(clone->lineage->source, "adapt/drift");

  // And absence round-trips as absence.
  bundle->lineage.reset();
  clone = serialize::CloneBundle(*bundle);
  EXPECT_EQ(clone->lineage, nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end: the closed loop on a shifted network
// ---------------------------------------------------------------------------

TEST(ClosedLoop, DriftRetrainShadowPromoteOnShiftedNetwork) {
  const Study& control = ControlStudy();
  const Study& shifted = ShiftedStudy();
  ASSERT_EQ(control.num_sectors(), shifted.num_sectors());
  ASSERT_EQ(control.network.num_kpis(), shifted.network.num_kpis());

  std::unique_ptr<serialize::ForecastBundle> champion =
      TrainChampion(control);
  ASSERT_NE(champion->fingerprints, nullptr);

  // The controller-free twin: the same champion over the same shifted
  // stream, no taps — the bitwise reference for every pre-promotion
  // batch.
  std::map<int, std::vector<float>> reference;
  {
    obs::PipelineContext twin_context;
    obs::PipelineContext::ScopedInstall install(&twin_context);
    ForecastService twin(serialize::CloneBundle(*champion));
    pipeline::ServingPipeline serving(&twin, ServeOptionsFor(shifted));
    const Tensor3<float>& kpis = shifted.network.kpis;
    for (int j = 0; j < kpis.dim1(); ++j) {
      for (int i = 0; i < kpis.dim0(); ++i) {
        ASSERT_TRUE(serving.Push(i, j, kpis.Slice(i, j), kpis.dim2()));
      }
    }
    serving.Finish();
    for (StreamingPrediction& prediction : serving.TakePredictions()) {
      EXPECT_EQ(prediction.generation, 0u);
      reference[prediction.end_day] = std::move(prediction.scores);
    }
  }
  ASSERT_FALSE(reference.empty());

  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);

  ForecastService service(serialize::CloneBundle(*champion));
  ASSERT_TRUE(service.monitoring_enabled());

  adapt::AdaptOptions options;
  options.num_sectors = shifted.num_sectors();
  options.capture_weeks = 4;
  options.train = ChampionConfig();
  options.policy.trigger = monitor::AlertState::kDrift;
  options.policy.training_days = 10;
  options.policy.min_shadow_days = 3;
  options.policy.min_compared_rows = 96;
  options.policy.max_shadow_days = 14;
  options.policy.guard_days = 3;
  options.policy.rollback_lift_margin = 0.25;
  options.policy.cooldown_days = 30;  // one episode per stream
  adapt::AdaptationController controller(&service, options);

  std::vector<AdaptState> states;
  std::vector<StreamingPrediction> served;
  {
    pipeline::ServingPipeline::Options serve_options =
        ServeOptionsFor(shifted);
    controller.AttachTaps(&serve_options);
    pipeline::ServingPipeline serving(&service, serve_options);
    StreamWithPolls(shifted.network.kpis, &serving, &controller, &states);
    serving.Finish();
    served = serving.TakePredictions();
  }

  // The ladder visited retrain → shadow → promoted and settled back to
  // idle before the stream ended.
  auto visited = [&states](AdaptState state) {
    return std::find(states.begin(), states.end(), state) != states.end();
  };
  EXPECT_TRUE(visited(AdaptState::kShadowing)) << "never shadowed";
  EXPECT_TRUE(visited(AdaptState::kPromoted)) << "never promoted";
  EXPECT_FALSE(visited(AdaptState::kRolledBack));
  EXPECT_EQ(states.back(), AdaptState::kIdle);

  adapt::AdaptReport report = controller.Report();
  EXPECT_GE(report.retrains, 1u);
  EXPECT_EQ(report.promotions, 1u);
  EXPECT_EQ(report.rollbacks, 0u);
  EXPECT_EQ(report.champion_generation, 1u);

  // The challenger won on matured-label lift over live shadow traffic —
  // the promotion verdict is the guard verdict's predecessor, so check
  // the promoted bundle's provenance instead of the (overwritten)
  // last_verdict.
  std::shared_ptr<const serialize::ForecastBundle> promoted =
      service.bundle_snapshot();
  ASSERT_NE(promoted->lineage, nullptr);
  EXPECT_EQ(promoted->lineage->source, "adapt/drift");
  EXPECT_EQ(promoted->lineage->parent_generation, 0u);
  EXPECT_GT(promoted->lineage->trained_end_day, 0);

  // Pre-promotion champion predictions are bitwise-identical to the
  // controller-free run: the taps are observers, promotion is the first
  // point of divergence.
  uint64_t champion_batches = 0;
  uint64_t challenger_batches = 0;
  for (const StreamingPrediction& prediction : served) {
    if (prediction.generation == 0) {
      ++champion_batches;
      auto expected = reference.find(prediction.end_day);
      ASSERT_NE(expected, reference.end());
      ASSERT_EQ(prediction.scores.size(), expected->second.size());
      EXPECT_EQ(std::memcmp(prediction.scores.data(),
                            expected->second.data(),
                            prediction.scores.size() * sizeof(float)),
                0)
          << "pre-promotion divergence at end day " << prediction.end_day;
    } else {
      EXPECT_EQ(prediction.generation, 1u);
      ++challenger_batches;
    }
  }
  EXPECT_GT(champion_batches, 0u);
  EXPECT_GT(challenger_batches, 0u) << "promotion never reached serving";

  // Observability: the flight log reconciles every transition against
  // the adapt/* counters, the shadow actually scored traffic, and the
  // promote-to-first-serve latency was recorded.
  ReconcileFlightLog(&context, report);
  obs::MetricsRegistry& metrics = context.metrics();
  EXPECT_GT(metrics.counter("adapt/shadow_batches").Total(), 0u);
  EXPECT_GT(metrics.counter("adapt/shadow_rows").Total(), 0u);
  EXPECT_EQ(metrics.counter("adapt/shadow_dropped").Total(), 0u);
  EXPECT_GE(metrics.histogram("adapt/retrain_seconds").Count(), 1u);
  EXPECT_GT(metrics.gauge("adapt/promote_to_first_serve_seconds").Value(),
            0.0);
}

// ---------------------------------------------------------------------------
// Fault drills: rollback and rejection
// ---------------------------------------------------------------------------

/// A challenger deliberately trained against inverted labels: it
/// anti-ranks, so it loses any honest comparison — the regressing model
/// for the rollback drill.
std::unique_ptr<serialize::ForecastBundle> TrainAntiChampion(
    const Study& study) {
  Matrix<float> inverted = study.daily_labels;
  for (int i = 0; i < inverted.rows(); ++i) {
    for (int d = 0; d < inverted.cols(); ++d) {
      inverted.At(i, d) = 1.0f - inverted.At(i, d);
    }
  }
  Forecaster forecaster(&study.features, &study.scores.daily, &inverted);
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(ChampionConfig());
  bundle->score = study.score_config;
  return bundle;
}

TEST(ClosedLoop, RegressingChallengerIsRolledBackInsideGuardWindow) {
  const Study& study = ControlStudy();
  std::unique_ptr<serialize::ForecastBundle> champion = TrainChampion(study);
  ForecastService reference(serialize::CloneBundle(*champion));

  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);

  ForecastService service(serialize::CloneBundle(*champion));

  adapt::AdaptOptions options;
  options.num_sectors = study.num_sectors();
  options.capture_weeks = 4;
  options.train = ChampionConfig();
  // Always-armed test trigger plus gates lax enough that the regressing
  // challenger IS promoted — the guard window is the safety net under
  // test, not the promotion gate.
  options.policy.trigger = monitor::AlertState::kOk;
  options.policy.min_shadow_days = 2;
  options.policy.min_compared_rows = 48;
  options.policy.max_shadow_days = 14;
  options.policy.comparison.min_lift_delta = -1e9;
  options.policy.comparison.require_ci_separation = false;
  options.policy.guard_days = 2;
  options.policy.rollback_lift_margin = 0.0;
  options.policy.cooldown_days = 60;  // one episode per stream
  options.challenger_for_test =
      [&study](const serialize::ForecastBundle& /*champion*/) {
        return TrainAntiChampion(study);
      };
  adapt::AdaptationController controller(&service, options);

  std::vector<AdaptState> states;
  {
    pipeline::ServingPipeline::Options serve_options = ServeOptionsFor(study);
    controller.AttachTaps(&serve_options);
    pipeline::ServingPipeline serving(&service, serve_options);
    StreamWithPolls(study.network.kpis, &serving, &controller, &states);
    serving.Finish();
  }

  auto visited = [&states](AdaptState state) {
    return std::find(states.begin(), states.end(), state) != states.end();
  };
  EXPECT_TRUE(visited(AdaptState::kPromoted)) << "drill never promoted";
  EXPECT_TRUE(visited(AdaptState::kRolledBack)) << "regression not caught";
  EXPECT_EQ(states.back(), AdaptState::kIdle);

  adapt::AdaptReport report = controller.Report();
  EXPECT_EQ(report.retrains, 1u);
  EXPECT_EQ(report.promotions, 1u);
  EXPECT_EQ(report.rollbacks, 1u);
  EXPECT_EQ(report.rejections, 0u);
  // Promote then rollback: two RCU swaps.
  EXPECT_EQ(report.champion_generation, 2u);
  // The guard verdict measured the regression: the archived champion
  // (the "challenger" of the guard comparison) beat the promoted model.
  EXPECT_GT(report.last_verdict.lift_delta, 0.0);

  // Rollback restored the champion exactly: the re-promoted archive is a
  // codec round-trip clone, so batch answers are bitwise the originals.
  const ForecastConfig config = ChampionConfig();
  EXPECT_EQ(service.PredictAtDay(study.features, config.t),
            reference.PredictAtDay(study.features, config.t));

  ReconcileFlightLog(&context, report);
}

TEST(ClosedLoop, NoBetterChallengerIsRejectedAtMaxShadowAge) {
  const Study& study = ControlStudy();
  std::unique_ptr<serialize::ForecastBundle> champion = TrainChampion(study);

  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);

  ForecastService service(serialize::CloneBundle(*champion));

  adapt::AdaptOptions options;
  options.num_sectors = study.num_sectors();
  options.capture_weeks = 4;
  options.train = ChampionConfig();
  options.policy.trigger = monitor::AlertState::kOk;  // always armed
  options.policy.min_shadow_days = 2;
  options.policy.min_compared_rows = 48;
  options.policy.max_shadow_days = 4;  // a short audition
  // Honest gates: a clone of the champion scores identically, delta == 0,
  // and 0 > 0 never promotes.
  options.policy.comparison.min_lift_delta = 0.0;
  options.policy.comparison.require_ci_separation = false;
  options.policy.cooldown_days = 10;
  options.challenger_for_test =
      [](const serialize::ForecastBundle& champion_bundle) {
        return serialize::CloneBundle(champion_bundle);
      };
  adapt::AdaptationController controller(&service, options);

  std::vector<AdaptState> states;
  {
    pipeline::ServingPipeline::Options serve_options = ServeOptionsFor(study);
    controller.AttachTaps(&serve_options);
    pipeline::ServingPipeline serving(&service, serve_options);
    StreamWithPolls(study.network.kpis, &serving, &controller, &states);
    serving.Finish();
  }

  auto visited = [&states](AdaptState state) {
    return std::find(states.begin(), states.end(), state) != states.end();
  };
  EXPECT_TRUE(visited(AdaptState::kShadowing));
  EXPECT_TRUE(visited(AdaptState::kRejected)) << "audition never expired";
  EXPECT_FALSE(visited(AdaptState::kPromoted));
  // The always-armed trigger re-opens an audition after every cooldown,
  // so the stream may end with one still shadowing (maturation freezes
  // at Finish, so it can never conclude) — but never mid-retrain or in a
  // latched terminal state.
  EXPECT_TRUE(states.back() == AdaptState::kIdle ||
              states.back() == AdaptState::kShadowing)
      << "ended in " << adapt::AdaptStateName(states.back());

  adapt::AdaptReport report = controller.Report();
  EXPECT_GE(report.rejections, 1u);
  EXPECT_EQ(report.promotions, 0u);
  // The champion never stopped serving: no swap ever happened.
  EXPECT_EQ(report.champion_generation, 0u);
  // The clone had identical scores, so the verdict's delta is exactly 0.
  EXPECT_EQ(report.last_verdict.lift_delta, 0.0);
  // Every episode that ran to a verdict was rejected; at most the
  // trailing in-flight audition is unaccounted for.
  EXPECT_LE(report.retrains - report.rejections, 1u);

  ReconcileFlightLog(&context, report);
}

}  // namespace
}  // namespace hotspot
