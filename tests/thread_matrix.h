#ifndef HOTSPOT_TESTS_THREAD_MATRIX_H_
#define HOTSPOT_TESTS_THREAD_MATRIX_H_

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scoped_num_threads.h"

namespace hotspot::testing_util {

/// The shared thread-count equivalence matrix: every bitwise-equivalence
/// suite (flat_tree_test, stream_test, parallel_determinism_test, ...)
/// sweeps the same counts instead of pinning its own ad-hoc list. The
/// first entry is always "1" — the serial reference the parallel runs are
/// compared against. Override with HOTSPOT_TEST_THREAD_MATRIX="1,2,8"
/// (comma-separated; "1" is prepended when missing).
class ThreadMatrixEnvironment : public ::testing::Environment {
 public:
  static const std::vector<std::string>& Counts() {
    static const std::vector<std::string>* const counts = [] {
      auto* list = new std::vector<std::string>();
      if (const char* env = std::getenv("HOTSPOT_TEST_THREAD_MATRIX")) {
        std::stringstream stream(env);
        std::string item;
        while (std::getline(stream, item, ',')) {
          if (!item.empty()) list->push_back(item);
        }
      }
      if (list->empty()) *list = {"1", "4"};
      if (list->front() != "1") list->insert(list->begin(), "1");
      return list;
    }();
    return *counts;
  }

  void SetUp() override {
    std::string matrix;
    for (const std::string& count : Counts()) {
      if (!matrix.empty()) matrix += ",";
      matrix += count;
    }
    ::testing::Test::RecordProperty("hotspot_thread_matrix", matrix);
  }
};

/// Registers the environment once per test binary (gtest takes ownership;
/// duplicate registrations across translation units are harmless).
inline ::testing::Environment* const kThreadMatrixEnvironment =
    ::testing::AddGlobalTestEnvironment(new ThreadMatrixEnvironment);

/// Runs `body(threads)` once per matrix entry with HOTSPOT_NUM_THREADS
/// pinned to it — serial reference ("1") first, then the parallel counts.
template <typename Body>
void ForEachThreadCount(Body&& body) {
  for (const std::string& threads : ThreadMatrixEnvironment::Counts()) {
    ScopedNumThreads scoped(threads);
    body(threads);
  }
}

}  // namespace hotspot::testing_util

#endif  // HOTSPOT_TESTS_THREAD_MATRIX_H_
