#include <cmath>

#include "gtest/gtest.h"
#include "core/dynamics.h"
#include "core/labels.h"
#include "core/study.h"
#include "core/task.h"
#include "tensor/temporal.h"

namespace hotspot {
namespace {

simnet::GeneratorConfig SmallConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 90;
  config.weeks = 10;
  config.seed = 321;
  return config;
}

TEST(Integration, StudyPipelineProducesConsistentShapes) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  const int n = study.num_sectors();
  EXPECT_GT(n, 60);
  EXPECT_EQ(study.num_days(), 70);
  EXPECT_EQ(study.num_weeks(), 10);
  EXPECT_EQ(study.scores.hourly.rows(), n);
  EXPECT_EQ(study.daily_labels.rows(), n);
  EXPECT_EQ(study.features.num_sectors(), n);
  EXPECT_EQ(study.features.num_channels(), 21 + 5 + 3 + 1);
  EXPECT_EQ(study.network.topology.num_sectors(), n);
  EXPECT_EQ(static_cast<int>(study.network.traits.size()), n);
}

TEST(Integration, ImputationRemovesAllMissingValues) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  for (float v : study.network.kpis.data()) {
    ASSERT_FALSE(IsMissing(v));
  }
  // Scores are then NaN-free as well.
  for (float v : study.scores.hourly.data()) ASSERT_FALSE(IsMissing(v));
}

TEST(Integration, PrevalencesInPlausibleBands) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  double daily = PositiveRate(study.daily_labels);
  EXPECT_GT(daily, 0.005);
  EXPECT_LT(daily, 0.25);
  double hourly = PositiveRate(study.hourly_labels);
  EXPECT_GT(hourly, 0.005);
  EXPECT_LT(hourly, 0.3);
  // Hot hours are concentrated in waking hours, so the hourly rate stays
  // above a third of... rather: daily rate >= weekly is not guaranteed;
  // instead check become-positives exist but are rare.
  double become = PositiveRate(study.become_labels);
  EXPECT_GT(become, 0.0);
  EXPECT_LT(become, 0.05);
}

TEST(Integration, SectorFilterDropsDeadSectors) {
  simnet::GeneratorConfig config = SmallConfig();
  config.missing.dead_sector_fraction = 0.2;
  Study study = BuildStudy(StudyInput(config), {});
  EXPECT_GT(study.sectors_filtered_out, 0);
}

TEST(Integration, NetworkInputMatchesGeneratorInput) {
  // The two StudyInput flavors (generator config vs. pre-built network)
  // must produce bit-identical studies for the same seed.
  Study from_network =
      BuildStudy(StudyInput(simnet::GenerateNetwork(SmallConfig())), {});
  Study from_config = BuildStudy(StudyInput(SmallConfig()), {});
  ASSERT_EQ(from_network.num_sectors(), from_config.num_sectors());
  EXPECT_EQ(from_network.scores.daily.data(),
            from_config.scores.daily.data());
  EXPECT_EQ(from_network.daily_labels.data(),
            from_config.daily_labels.data());
}

TEST(Integration, StudyDeterministicGivenSeed) {
  Study a = BuildStudy(StudyInput(SmallConfig()), {});
  Study b = BuildStudy(StudyInput(SmallConfig()), {});
  ASSERT_EQ(a.num_sectors(), b.num_sectors());
  EXPECT_EQ(a.scores.daily.data(), b.scores.daily.data());
  EXPECT_EQ(a.daily_labels.data(), b.daily_labels.data());
}

TEST(Integration, DifferentSeedsDiffer) {
  simnet::GeneratorConfig other = SmallConfig();
  other.seed = 999;
  Study a = BuildStudy(StudyInput(SmallConfig()), {});
  Study b = BuildStudy(StudyInput(other), {});
  EXPECT_NE(a.scores.daily.data(), b.scores.daily.data());
}

TEST(Integration, ChronicSectorsAreHotMostWeeks) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  int chronic_weeks = 0, chronic_count = 0;
  for (int i = 0; i < study.num_sectors(); ++i) {
    if (!study.network.traits[static_cast<size_t>(i)].chronic_hot) continue;
    ++chronic_count;
    for (int week = 0; week < study.num_weeks(); ++week) {
      if (study.weekly_labels(i, week) != 0.0f) ++chronic_weeks;
    }
  }
  ASSERT_GT(chronic_count, 0);
  double weeks_per_chronic =
      static_cast<double>(chronic_weeks) / chronic_count;
  EXPECT_GT(weeks_per_chronic, 0.4 * study.num_weeks());
}

TEST(Integration, NonChronicHealthySectorsMostlyCold) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  // Sectors without chronic overload are hot on far fewer days.
  double chronic_rate = 0.0, normal_rate = 0.0;
  int chronic_count = 0, normal_count = 0;
  for (int i = 0; i < study.num_sectors(); ++i) {
    double rate = 0.0;
    for (int j = 0; j < study.num_days(); ++j) {
      if (study.daily_labels(i, j) != 0.0f) rate += 1.0;
    }
    rate /= study.num_days();
    if (study.network.traits[static_cast<size_t>(i)].chronic_hot) {
      chronic_rate += rate;
      ++chronic_count;
    } else {
      normal_rate += rate;
      ++normal_count;
    }
  }
  ASSERT_GT(chronic_count, 0);
  ASSERT_GT(normal_count, 0);
  EXPECT_GT(chronic_rate / chronic_count, 5.0 * normal_rate / normal_count);
}

TEST(Integration, AllModelsRunOnBothTargets) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  for (TargetKind target :
       {TargetKind::kBeHotSpot, TargetKind::kBecomeHotSpot}) {
    Forecaster forecaster = study.MakeForecaster(target);
    for (ModelKind model :
         {ModelKind::kRandom, ModelKind::kPersist, ModelKind::kAverage,
          ModelKind::kTrend, ModelKind::kTree, ModelKind::kRfRaw,
          ModelKind::kRfF1, ModelKind::kRfF2, ModelKind::kGbdt}) {
      ForecastConfig config;
      config.model = model;
      config.t = 40;
      config.h = 2;
      config.w = 3;
      config.forest.num_trees = 5;
      config.gbdt.num_iterations = 5;
      ForecastResult result = forecaster.Run(config);
      EXPECT_EQ(static_cast<int>(result.predictions.size()),
                study.num_sectors())
          << ModelName(model) << " on " << TargetName(target);
    }
  }
}

TEST(Integration, AverageBeatsRandomOnBeHotTask) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig base;
  base.forest.num_trees = 5;
  EvaluationRunner runner(&forecaster, base);
  double average_lift = 0.0;
  int count = 0;
  for (int t : {40, 45, 50}) {
    CellResult cell = runner.Evaluate(ModelKind::kAverage, t, 1, 7);
    if (!std::isnan(cell.lift)) {
      average_lift += cell.lift;
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(average_lift / count, 3.0);
}

TEST(Integration, AutoencoderImputationPathRuns) {
  simnet::GeneratorConfig config = SmallConfig();
  config.topology.target_sectors = 30;
  config.weeks = 4;
  StudyOptions options;
  options.imputation = ImputationKind::kAutoencoder;
  options.imputer.epochs = 2;
  options.imputer.encoder_layers = 2;
  options.imputer.batch_size = 16;
  Study study = BuildStudy(StudyInput(config), options);
  EXPECT_GT(study.imputer_report.imputed_cells, 0);
  for (float v : study.network.kpis.data()) ASSERT_FALSE(IsMissing(v));
}

TEST(Integration, DynamicsAnalysesRunOnStudyOutput) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  DurationStats stats = ComputeDurationStats(
      study.hourly_labels, study.daily_labels, study.weekly_labels);
  EXPECT_GT(stats.hours_per_day.total(), 0);
  EXPECT_GT(stats.consecutive_days.total(), 0);
  std::vector<WeeklyPattern> patterns =
      TopWeeklyPatterns(study.daily_labels, 5);
  EXPECT_FALSE(patterns.empty());
  ConsistencyStats consistency = WeeklyConsistency(study.daily_labels);
  EXPECT_GT(consistency.count, 0);
  EXPECT_GE(consistency.mean, -1.0);
  EXPECT_LE(consistency.mean, 1.0);
}

TEST(Integration, HotHoursConcentrateInWakingHours) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  long long waking = 0, night = 0;
  for (int i = 0; i < study.num_sectors(); ++i) {
    for (int j = 0; j < study.scores.hourly.cols(); ++j) {
      if (study.hourly_labels(i, j) == 0.0f) continue;
      int hour = j % 24;
      if (hour >= 2 && hour <= 5) {
        ++night;
      } else if (hour >= 9 && hour <= 22) {
        ++waking;
      }
    }
  }
  EXPECT_GT(waking, 5 * std::max(1LL, night));
}

TEST(Integration, BecomePositivesPrecededByColdWeek) {
  Study study = BuildStudy(StudyInput(SmallConfig()), {});
  double epsilon = study.score_config.hot_threshold;
  int checked = 0;
  for (int i = 0; i < study.num_sectors() && checked < 20; ++i) {
    for (int j = 0; j + 7 < study.num_days(); ++j) {
      if (study.become_labels(i, j) == 0.0f) continue;
      ++checked;
      std::vector<float> series = study.scores.daily.RowVector(i);
      EXPECT_LT(TrailingMean(j, 7, series), epsilon);
      EXPECT_GE(TrailingMean(j + 7, 7, series), epsilon);
    }
  }
}

}  // namespace
}  // namespace hotspot
