#include <algorithm>
#include <set>
#include <sstream>

#include "gtest/gtest.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hotspot {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(17);
  double sum = 0.0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / kSamples, 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(29);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(31);
  long long sum = 0;
  const int kSamples = 30000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(static_cast<double>(sum) / kSamples, 3.0, 0.1);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(37);
  long long sum = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.Poisson(100.0);
  EXPECT_NEAR(static_cast<double>(sum) / kSamples, 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(47);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(53);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(59);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextUint64() == child2.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(writer.rows_written(), 1);
}

TEST(CsvWriter, EscapesSeparatorsAndQuotes) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteNumericRow({1.0, 2.5});
  EXPECT_EQ(out.str(), "1,2.5\n");
}

TEST(CsvWriter, CustomSeparator) {
  std::ostringstream out;
  CsvWriter writer(&out, ';');
  writer.WriteRow({"a", "b,c"});
  EXPECT_EQ(out.str(), "a;b,c\n");
}

TEST(FormatNumber, SignificantDigits) {
  EXPECT_EQ(FormatNumber(3.14159265, 3), "3.14");
  EXPECT_EQ(FormatNumber(1234567.0, 3), "1.23e+06");
  EXPECT_EQ(FormatNumber(0.5), "0.5");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddNumericRow({2.0, 3.5});
  std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("3.5"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2);
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST(Logging, MinLevelRoundTrip) {
  LogLevel previous = SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(previous);
  EXPECT_EQ(MinLogLevel(), previous);
}

TEST(CheckMacros, FatalOnViolation) {
  EXPECT_DEATH({ HOTSPOT_CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

TEST(CheckMacros, PassesSilently) {
  HOTSPOT_CHECK(true);
  HOTSPOT_CHECK_LE(1, 1);
  HOTSPOT_CHECK_GT(2, 1);
}

}  // namespace
}  // namespace hotspot
