// The staged serving runtime's contract tests: BoundedQueue backpressure
// and drain semantics, the ServingPipeline facade's bitwise parity with
// the direct-call batch path at every thread-matrix count (slow-predict
// injection included — backpressure must engage without dropping or
// reordering a single row), queue-bound edge cases (capacity 1 and
// capacity beyond the stream length), drain-on-shutdown via the
// destructor, Options-over-env engine/kernel selection, and per-stage
// accounting landing in the obs snapshot.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/forecast_service.h"
#include "core/study.h"
#include "obs/pipeline_context.h"
#include "obs/snapshot.h"
#include "pipeline/bounded_queue.h"
#include "pipeline/serving_pipeline.h"
#include "pipeline/stage.h"
#include "thread_matrix.h"

namespace hotspot {
namespace {

using pipeline::BoundedQueue;
using pipeline::QueueStats;
using pipeline::ServingPipeline;
using pipeline::StageStats;

// ---------------------------------------------------------------------------
// BoundedQueue

TEST(BoundedQueue, FifoOrderAndStats) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.depth(), 4);
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);  // strict FIFO — the determinism backbone
  }
  QueueStats stats = queue.Stats();
  EXPECT_EQ(stats.capacity, 4);
  EXPECT_EQ(stats.depth, 0);
  EXPECT_EQ(stats.high_water, 4);
  EXPECT_EQ(stats.pushed, 4u);
  EXPECT_EQ(stats.popped, 4u);
  EXPECT_EQ(stats.push_waits, 0u);
}

TEST(BoundedQueue, PushBlocksOnFullUntilPopFreesASlot) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(1));
  std::atomic<bool> second_push_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // must block, then succeed — never drop
    second_push_done.store(true);
  });
  // Give the producer time to actually hit the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_push_done.load());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_GE(queue.Stats().push_waits, 1u);
  EXPECT_GT(queue.Stats().push_blocked_seconds, 0.0);
}

TEST(BoundedQueue, CloseDrainsPendingItemsThenPopReturnsFalse) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(7));
  EXPECT_TRUE(queue.Push(8));
  queue.Close();
  EXPECT_FALSE(queue.Push(9));  // push after close is refused
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // pending items survive the close
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(BoundedQueue, CloseWakesABlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::atomic<bool> pop_returned{false};
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));
    pop_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pop_returned.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(pop_returned.load());
}

// ---------------------------------------------------------------------------
// ServingPipeline fixtures (the stream_test recipe: small single-city
// study, GBDT bundle, complete forward-fill-imputed KPIs).

simnet::GeneratorConfig SmallConfig() {
  simnet::GeneratorConfig config;
  config.topology.target_sectors = 60;
  config.topology.num_cities = 1;
  config.weeks = 9;
  config.seed = 77;
  return config;
}

const Study& SharedStudy() {
  static const Study* study = new Study(BuildStudy(StudyInput(SmallConfig())));
  return *study;
}

std::unique_ptr<ForecastService> MakeService(const Study& study) {
  ForecastConfig config;
  config.model = ModelKind::kGbdt;
  config.t = 55;
  config.h = 1;
  config.w = 3;
  config.gbdt.num_iterations = 10;
  config.gbdt.num_leaves = 15;
  config.gbdt.max_bins = 32;
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  return std::make_unique<ForecastService>(std::move(bundle));
}

ServingPipeline::Options OptionsFor(const Study& study) {
  ServingPipeline::Options options;
  options.num_sectors = study.num_sectors();
  options.num_kpis = study.network.num_kpis();
  options.calendar = &study.network.calendar_matrix;
  options.score = study.score_config;
  options.history_weeks = study.num_weeks() + 1;
  return options;
}

/// Streams the study's KPI tensor hour-major (all sectors advance
/// together, as live feeds do) through a pipeline built from `options`,
/// finishes it, and returns every served prediction.
std::vector<StreamingPrediction> RunPipelineServe(
    const Study& study, ForecastService* service,
    const ServingPipeline::Options& options,
    std::vector<StageStats>* final_stages = nullptr) {
  ServingPipeline serving(service, options);
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      EXPECT_TRUE(serving.Push(i, j, study.network.kpis.Slice(i, j),
                               study.network.kpis.dim2()));
    }
  }
  serving.Finish();
  if (final_stages != nullptr) *final_stages = serving.StageSnapshot();
  return serving.TakePredictions();
}

/// The batch references: PredictAtDay at every servable end day.
std::vector<std::vector<float>> BatchScores(const Study& study,
                                            const ForecastService& service) {
  std::vector<std::vector<float>> scores;
  for (int end_day = service.bundle().window_days;
       end_day <= study.num_days(); ++end_day) {
    scores.push_back(service.PredictAtDay(study.features, end_day));
  }
  return scores;
}

void ExpectBitwiseEqualToBatch(
    const std::vector<StreamingPrediction>& served,
    const std::vector<std::vector<float>>& batch, int window_days,
    const std::string& tag) {
  ASSERT_EQ(served.size(), batch.size()) << tag;
  for (size_t b = 0; b < served.size(); ++b) {
    EXPECT_EQ(served[b].end_day, window_days + static_cast<int>(b)) << tag;
    ASSERT_EQ(served[b].scores.size(), batch[b].size()) << tag;
    EXPECT_EQ(std::memcmp(served[b].scores.data(), batch[b].data(),
                          batch[b].size() * sizeof(float)),
              0)
        << tag << " end_day=" << served[b].end_day;
  }
}

// ---------------------------------------------------------------------------
// ServingPipeline

TEST(ServingPipeline, BitwiseEqualBatchPredictAtDayAcrossThreads) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    std::vector<StreamingPrediction> served =
        RunPipelineServe(study, service.get(), OptionsFor(study));
    ExpectBitwiseEqualToBatch(served, batch,
                              service->bundle().window_days,
                              "threads=" + threads);
  });
}

TEST(ServingPipeline, SlowPredictStageEngagesBackpressureWithoutLoss) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    obs::PipelineContext context;
    obs::PipelineContext::ScopedInstall install(&context);
    ServingPipeline::Options options = OptionsFor(study);
    // A crawling model behind a one-slot predict queue: feature
    // extraction fills it instantly and everything upstream must wait.
    options.predict_queue_capacity = 1;
    options.scored_queue_capacity = 1;
    options.row_queue_blocks = 1;
    options.row_block_rows = 256;
    options.predict_stall_for_test = std::chrono::milliseconds(3);
    std::vector<StageStats> stages;
    std::vector<StreamingPrediction> served =
        RunPipelineServe(study, service.get(), options, &stages);
    // Zero loss, zero reordering: every row reached the engine and the
    // scores are still bit-for-bit the batch answers.
    const int total_rows = study.num_sectors() * study.network.num_hours();
    EXPECT_EQ(context.metrics().counter("stream/rows_accepted").Total(),
              static_cast<uint64_t>(total_rows))
        << "threads=" << threads;
    EXPECT_EQ(context.metrics().counter("stream/rows_late_dropped").Total(),
              0u);
    EXPECT_EQ(context.metrics().counter("stream/rows_rejected").Total(), 0u);
    ExpectBitwiseEqualToBatch(served, batch,
                              service->bundle().window_days,
                              "threads=" + threads);
    // And the stall was actually felt as backpressure on the predict
    // boundary (upstream pushes had to wait for the slow stage).
    ASSERT_EQ(stages.size(), 4u);
    const StageStats& predict = stages[2];
    EXPECT_EQ(predict.name, "predict");
    EXPECT_GE(predict.input.push_waits, 1u) << "threads=" << threads;
    EXPECT_GT(predict.input.push_blocked_seconds, 0.0);
    EXPECT_EQ(context.metrics()
                  .counter("pipeline/predict_backpressure_waits")
                  .Total(),
              predict.input.push_waits);
  });
}

TEST(ServingPipeline, QueueCapacityOneIsLosslessAndBitwiseEqual) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  ServingPipeline::Options options = OptionsFor(study);
  // The tightest legal pipeline: every boundary one item deep, one row
  // per block — maximum handoff pressure, same bits out.
  options.row_queue_blocks = 1;
  options.row_block_rows = 1;
  options.predict_queue_capacity = 1;
  options.scored_queue_capacity = 1;
  std::vector<StreamingPrediction> served =
      RunPipelineServe(study, service.get(), options);
  ExpectBitwiseEqualToBatch(served, batch, service->bundle().window_days,
                            "capacity=1");
}

TEST(ServingPipeline, QueueCapacityBeyondStreamLengthNeverBlocks) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  const int total_rows = study.num_sectors() * study.network.num_hours();
  ServingPipeline::Options options = OptionsFor(study);
  // Queues wider than the whole stream: pure pipelining, no
  // backpressure anywhere, still the same bits.
  options.row_block_rows = 64;
  options.row_queue_blocks = total_rows / 64 + 2;
  options.predict_queue_capacity = study.num_days() + 2;
  options.scored_queue_capacity =
      study.num_days() + 2 + study.num_days();  // predictions + outcomes
  std::vector<StageStats> stages;
  std::vector<StreamingPrediction> served =
      RunPipelineServe(study, service.get(), options, &stages);
  ExpectBitwiseEqualToBatch(served, batch, service->bundle().window_days,
                            "capacity=stream");
  for (const StageStats& stage : stages) {
    EXPECT_EQ(stage.input.push_waits, 0u) << "stage " << stage.name;
  }
}

TEST(ServingPipeline, DestructorDrainsInFlightWorkCleanly) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  std::vector<StreamingPrediction> delivered;
  {
    ServingPipeline::Options options = OptionsFor(study);
    options.predict_queue_capacity = 1;
    options.predict_stall_for_test = std::chrono::milliseconds(1);
    options.on_prediction = [&](const StreamingPrediction& prediction) {
      delivered.push_back(prediction);
    };
    ServingPipeline serving(service.get(), options);
    const int hours = study.network.num_hours();
    for (int j = 0; j < hours; ++j) {
      for (int i = 0; i < study.num_sectors(); ++i) {
        serving.Push(i, j, study.network.kpis.Slice(i, j),
                     study.network.kpis.dim2());
      }
    }
    // No Finish(): the destructor must flush the partial input block,
    // ripple the drain through all four stages and join them — losing
    // none of the in-flight batches.
  }
  ExpectBitwiseEqualToBatch(delivered, batch, service->bundle().window_days,
                            "destructor-drain");
}

TEST(ServingPipeline, DestructorMidStreamWithRowsQueuedAtEveryStage) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  std::vector<StreamingPrediction> delivered;
  {
    // Every stage gets a capacity-1 queue and tiny blocks, and predict is
    // slowed, so by mid-stream there are rows buffered in the open input
    // block, the row queue, the predict queue and the scored queue
    // simultaneously — then the pipeline is destroyed with the feed still
    // live: no Finish(), no quiesce. The destructor must ripple a clean
    // drain through all of it (ASan is the judge of "clean").
    ServingPipeline::Options options = OptionsFor(study);
    options.row_block_rows = 8;
    options.row_queue_blocks = 1;
    options.predict_queue_capacity = 1;
    options.scored_queue_capacity = 1;
    options.predict_stall_for_test = std::chrono::milliseconds(2);
    options.on_prediction = [&](const StreamingPrediction& prediction) {
      delivered.push_back(prediction);
    };
    ServingPipeline serving(service.get(), options);
    const int hours = study.network.num_hours() / 2;
    for (int j = 0; j < hours; ++j) {
      for (int i = 0; i < study.num_sectors(); ++i) {
        serving.Push(i, j, study.network.kpis.Slice(i, j),
                     study.network.kpis.dim2());
      }
    }
  }
  // Whatever was served is a bitwise-exact prefix of the batch answers:
  // the abandoned pipeline dropped the un-servable tail, never a scored
  // batch, and never tore one.
  const int window_days = service->bundle().window_days;
  ASSERT_GT(delivered.size(), 0u);
  ASSERT_LE(delivered.size(), batch.size());
  for (size_t b = 0; b < delivered.size(); ++b) {
    EXPECT_EQ(delivered[b].end_day, window_days + static_cast<int>(b));
    ASSERT_EQ(delivered[b].scores.size(), batch[b].size());
    EXPECT_EQ(std::memcmp(delivered[b].scores.data(), batch[b].data(),
                          batch[b].size() * sizeof(float)),
              0)
        << "end_day=" << delivered[b].end_day;
  }
}

TEST(ServingPipeline, OptionsOverrideEnvDefaultsForEngineAndKernel) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  // The service boots on the env-seeded defaults...
  EXPECT_EQ(service->predict_engine(), ForecastService::DefaultPredictEngine());
  EXPECT_EQ(service->flat_kernel(), ml::FlatForest::ChooseKernel());
  // ...and the Options fields override them as the primary API.
  ServingPipeline::Options options = OptionsFor(study);
  options.predict_engine = PredictEngine::kClassic;
  options.flat_kernel = ml::FlatKernel::kScalar;
  {
    ServingPipeline serving(service.get(), options);
    EXPECT_EQ(service->predict_engine(), PredictEngine::kClassic);
    EXPECT_EQ(service->flat_kernel(), ml::FlatKernel::kScalar);
    serving.Finish();
  }
  // The setters are live API, not construction-only.
  service->set_predict_engine(PredictEngine::kFlat);
  service->set_flat_kernel(ml::FlatForest::ChooseKernel());
  EXPECT_EQ(service->predict_engine(), PredictEngine::kFlat);
}

TEST(ServingPipeline, EngineSelectionViaOptionsKeepsScoresBitwiseEqual) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  const std::vector<std::vector<float>> batch = BatchScores(study, *service);
  for (PredictEngine engine :
       {PredictEngine::kClassic, PredictEngine::kFlat}) {
    ServingPipeline::Options options = OptionsFor(study);
    options.predict_engine = engine;
    options.flat_kernel = ml::FlatKernel::kScalar;
    std::vector<StreamingPrediction> served =
        RunPipelineServe(study, service.get(), options);
    ExpectBitwiseEqualToBatch(served, batch, service->bundle().window_days,
                              engine == PredictEngine::kFlat ? "flat"
                                                             : "classic");
  }
}

TEST(ServingPipeline, RejectsWrongWidthRowsWithoutStallingTheStream) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  ServingPipeline serving(service.get(), OptionsFor(study));
  std::vector<float> bad_row(
      static_cast<size_t>(study.network.num_kpis() + 1), 0.0f);
  EXPECT_FALSE(serving.Push(0, 0, bad_row));
  EXPECT_TRUE(serving.Push(0, 0, study.network.kpis.Slice(0, 0),
                           study.network.kpis.dim2()));
  serving.Finish();
  EXPECT_FALSE(serving.Push(0, 1, study.network.kpis.Slice(0, 1),
                            study.network.kpis.dim2()));
  EXPECT_EQ(context.metrics().counter("stream/rows_rejected").Total(), 1u);
  EXPECT_EQ(context.metrics().counter("stream/rows_accepted").Total(), 1u);
}

TEST(ServingPipeline, StageAccountingLandsInObsSnapshot) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  std::vector<StageStats> stages;
  std::vector<StreamingPrediction> served =
      RunPipelineServe(study, service.get(), OptionsFor(study), &stages);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "ingest");
  EXPECT_EQ(stages[1].name, "features");
  EXPECT_EQ(stages[2].name, "predict");
  EXPECT_EQ(stages[3].name, "monitor");
  const uint64_t batches = static_cast<uint64_t>(served.size());
  for (const StageStats& stage : stages) {
    EXPECT_EQ(pipeline::StageStateName(stage.state), std::string("done"));
    EXPECT_GT(stage.items_in, 0u) << "stage " << stage.name;
    // The cached-handle per-stage counters mirror the stage's own books.
    EXPECT_EQ(context.metrics()
                  .counter("pipeline/" + stage.name + "_items")
                  .Total(),
              stage.items_in)
        << "stage " << stage.name;
  }
  // The predict stage saw every prediction batch plus the outcome
  // pass-throughs; the monitor stage consumed exactly what it emitted.
  EXPECT_GE(stages[2].items_in, batches);
  EXPECT_EQ(stages[3].items_in, stages[2].items_out);
  // Everything served matured in-stream except the final horizon days.
  const obs::Snapshot snapshot = obs::TakeSnapshot(context);
  bool found_latency = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "pipeline/predict_latency_seconds") {
      found_latency = true;
      EXPECT_GE(histogram.count, batches);
    }
  }
  EXPECT_TRUE(found_latency);
}

TEST(ServingPipeline, FrontierAccessorsAndOutcomeLoopMatchRunnerSemantics) {
  const Study& study = SharedStudy();
  std::unique_ptr<ForecastService> service = MakeService(study);
  obs::PipelineContext context;
  obs::PipelineContext::ScopedInstall install(&context);
  ServingPipeline serving(service.get(), OptionsFor(study));
  EXPECT_EQ(serving.next_end_day(), service->bundle().window_days);
  const int hours = study.network.num_hours();
  for (int j = 0; j < hours; ++j) {
    for (int i = 0; i < study.num_sectors(); ++i) {
      serving.Push(i, j, study.network.kpis.Slice(i, j),
                   study.network.kpis.dim2());
    }
  }
  serving.Finish();
  EXPECT_TRUE(serving.finished());
  EXPECT_EQ(serving.next_end_day(), study.num_days() + 1);
  // The last horizon's predictions can never mature inside the stream.
  EXPECT_EQ(serving.pending_outcomes(), service->bundle().horizon_days + 1);
  const int n = study.num_sectors();
  const int matured_batches =
      study.num_days() - service->bundle().window_days -
      service->bundle().horizon_days;
  EXPECT_EQ(context.metrics().counter("stream/outcomes_recorded").Total(),
            static_cast<uint64_t>(matured_batches * n));
}

}  // namespace
}  // namespace hotspot
