// Lockdown harness for the SIMD flat-tree inference engine. The contract
// (same discipline as the serialization and streaming PRs): FlatForest
// predictions are BITWISE identical to the scalar pointer-walking models —
// for every kernel (scalar / AVX2), every variant (float / quantized),
// every batch decomposition and every HOTSPOT_NUM_THREADS — on
//   * trained Gbdt / RandomForest / DecisionTree models over NaN-bearing
//     data and the full golden study tensor, and
//   * >= 1000 fuzzer-generated adversarial trees (degenerate chains,
//     single leaves, all-NaN feature columns, +-inf and NaN thresholds,
//     out-of-range bin thresholds), constructed through the serialize
//     decoders so only loadable node graphs are exercised.
// Also locks the runtime CPUID gate: an AVX2 request on any host must
// degrade gracefully to scalar with identical scores.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/forecast_service.h"
#include "core/forecaster.h"
#include "core/study.h"
#include "features/raw_features.h"
#include "features/window.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/flat_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "serialize/binary_format.h"
#include "serialize/model_io.h"
#include "serialize_golden.h"
#include "tensor/matrix.h"
#include "thread_matrix.h"
#include "util/rng.h"

namespace hotspot {
namespace {

using ml::FlatForest;
using ml::FlatKernel;
using ml::FlatVariant;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// memcmp-level equality: distinguishes -0.0 from 0.0 and compares NaN
/// payloads bit for bit, which EXPECT_EQ on doubles would not.
void ExpectBitwiseEqual(const std::vector<double>& actual,
                        const std::vector<double>& expected,
                        const std::string& what) {
  ASSERT_EQ(actual.size(), expected.size()) << what;
  if (actual.empty()) return;
  if (std::memcmp(actual.data(), expected.data(),
                  actual.size() * sizeof(double)) == 0) {
    return;
  }
  for (size_t i = 0; i < actual.size(); ++i) {
    uint64_t a = 0;
    uint64_t b = 0;
    std::memcpy(&a, &actual[i], sizeof(a));
    std::memcpy(&b, &expected[i], sizeof(b));
    ASSERT_EQ(a, b) << what << ": row " << i << " differs (" << actual[i]
                    << " vs " << expected[i] << ")";
  }
}

/// Scalar reference: one PredictProba per row.
std::vector<double> ScalarPredictions(const ml::BinaryClassifier& model,
                                      const Matrix<float>& rows) {
  std::vector<double> out(static_cast<size_t>(rows.rows()));
  for (int i = 0; i < rows.rows(); ++i) {
    out[static_cast<size_t>(i)] = model.PredictProba(rows.Row(i));
  }
  return out;
}

std::vector<double> FlatPredictions(const FlatForest& flat,
                                    const Matrix<float>& rows,
                                    FlatKernel kernel, FlatVariant variant) {
  std::vector<double> out(static_cast<size_t>(rows.rows()));
  flat.PredictBatch(rows.Row(0), rows.rows(), rows.cols(), out.data(),
                    kernel, variant);
  return out;
}

/// Sweeps every kernel x variant combination plus the one-row entry point
/// and asserts each is bitwise identical to the scalar model.
void ExpectFlatMatchesScalar(const ml::BinaryClassifier& model,
                             const FlatForest& flat,
                             const Matrix<float>& rows,
                             const std::string& what) {
  const std::vector<double> reference = ScalarPredictions(model, rows);
  std::vector<FlatVariant> variants = {FlatVariant::kFloat};
  if (flat.has_quantized()) variants.push_back(FlatVariant::kQuantized);
  for (FlatKernel kernel : {FlatKernel::kScalar, FlatKernel::kAvx2}) {
    for (FlatVariant variant : variants) {
      const std::string label =
          what + (kernel == FlatKernel::kScalar ? " scalar" : " avx2") +
          (variant == FlatVariant::kQuantized ? " quantized" : " float");
      ExpectBitwiseEqual(FlatPredictions(flat, rows, kernel, variant),
                        reference, label);
    }
  }
  // Row-at-a-time must agree with the batch (blocking is unobservable).
  for (int i = 0; i < rows.rows() && i < 16; ++i) {
    const double one = flat.PredictOne(rows.Row(i));
    ExpectBitwiseEqual({one}, {reference[static_cast<size_t>(i)]},
                      what + " PredictOne row " + std::to_string(i));
  }
}

/// NaN with a non-default payload: must route exactly like any other NaN.
float PayloadNaN(uint32_t payload) {
  uint32_t bits = 0x7FC00000u | (payload & 0x000FFFFFu);
  float value = 0.0f;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Adversarial prediction rows: NaN payloads, +-inf, denormals, zeros and
/// a band of all-NaN feature columns.
Matrix<float> AdversarialRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix<float> rows(n, d);
  const int nan_columns = d >= 4 ? d / 4 : 0;
  for (int i = 0; i < n; ++i) {
    float* row = rows.Row(i);
    for (int f = 0; f < d; ++f) {
      if (f < nan_columns) {  // all-NaN feature column
        row[f] = PayloadNaN(static_cast<uint32_t>(f * 31 + 1));
        continue;
      }
      switch (rng.UniformInt(0, 9)) {
        case 0:
          row[f] = MissingValue();
          break;
        case 1:
          row[f] = PayloadNaN(static_cast<uint32_t>(rng.UniformInt(1, 1 << 20)));
          break;
        case 2:
          row[f] = std::numeric_limits<float>::infinity();
          break;
        case 3:
          row[f] = -std::numeric_limits<float>::infinity();
          break;
        case 4:
          row[f] = std::numeric_limits<float>::denorm_min();
          break;
        case 5:
          row[f] = 0.0f;
          break;
        case 6:
          row[f] = -0.0f;
          break;
        default:
          row[f] = static_cast<float>(rng.Gaussian(0.0, 2.0));
          break;
      }
    }
  }
  // One row of each extreme.
  if (n >= 3) {
    for (int f = 0; f < d; ++f) {
      rows.Row(n - 1)[f] = MissingValue();
      rows.Row(n - 2)[f] = std::numeric_limits<float>::infinity();
      rows.Row(n - 3)[f] = -std::numeric_limits<float>::infinity();
    }
  }
  return rows;
}

ml::Dataset MakeDataset(int n, int d, uint64_t seed) {
  Rng rng(seed);
  ml::Dataset data;
  data.features = Matrix<float>(n, d);
  data.labels.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float* row = data.features.Row(i);
    double signal = 0.0;
    for (int f = 0; f < d; ++f) {
      if (rng.Bernoulli(0.05)) {
        row[f] = MissingValue();
        continue;
      }
      row[f] = static_cast<float>(rng.Gaussian());
      if (f < 3) signal += row[f];
    }
    data.labels[static_cast<size_t>(i)] =
        signal + rng.Gaussian() > 0.5 ? 1.0f : 0.0f;
  }
  data.weights = ml::BalancedWeights(data.labels);
  return data;
}

// ---------------------------------------------------------------------------
// Trained-model equivalence (thread matrix: serial reference + parallel)
// ---------------------------------------------------------------------------

TEST(FlatTreeTrained, GbdtBitwiseIdenticalAcrossKernelsAndThreads) {
  ml::Dataset data = MakeDataset(300, 12, 404);
  Matrix<float> adversarial = AdversarialRows(64, 12, 405);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::GbdtConfig config;
    config.num_iterations = 20;
    config.num_leaves = 15;
    config.max_bins = 32;
    config.feature_fraction = 0.7;
    config.bagging_fraction = 0.8;
    config.seed = 11;
    ml::Gbdt model(config);
    model.Fit(data);
    FlatForest flat = FlatForest::Compile(model);
    EXPECT_TRUE(flat.has_quantized());
    EXPECT_EQ(flat.num_trees(), model.num_trees());
    ExpectFlatMatchesScalar(model, flat, data.features,
                            "gbdt@" + threads + " threads");
    ExpectFlatMatchesScalar(model, flat, adversarial,
                            "gbdt adversarial@" + threads + " threads");
  });
}

TEST(FlatTreeTrained, RandomForestBitwiseIdenticalAcrossKernelsAndThreads) {
  ml::Dataset data = MakeDataset(250, 10, 77);
  Matrix<float> adversarial = AdversarialRows(48, 10, 78);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::ForestConfig config;
    config.num_trees = 12;
    config.seed = 5;
    ml::RandomForest model(config);
    model.Fit(data);
    FlatForest flat = FlatForest::Compile(model);
    EXPECT_FALSE(flat.has_quantized());
    EXPECT_EQ(flat.num_trees(), model.num_trees());
    ExpectFlatMatchesScalar(model, flat, data.features,
                            "forest@" + threads + " threads");
    ExpectFlatMatchesScalar(model, flat, adversarial,
                            "forest adversarial@" + threads + " threads");
  });
}

TEST(FlatTreeTrained, DecisionTreeBitwiseIdenticalAcrossKernelsAndThreads) {
  ml::Dataset data = MakeDataset(200, 8, 13);
  Matrix<float> adversarial = AdversarialRows(40, 8, 14);
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    ml::TreeConfig config;
    config.min_weight_fraction = 0.01;
    config.seed = 3;
    ml::DecisionTree model(config);
    model.Fit(data);
    FlatForest flat = FlatForest::Compile(model);
    EXPECT_EQ(flat.num_trees(), 1);
    ExpectFlatMatchesScalar(model, flat, data.features,
                            "tree@" + threads + " threads");
    ExpectFlatMatchesScalar(model, flat, adversarial,
                            "tree adversarial@" + threads + " threads");
  });
}

/// Compile also accepts the models through their BinaryClassifier base.
TEST(FlatTreeTrained, CompileDispatchesOnConcreteType) {
  ml::Dataset data = MakeDataset(150, 6, 21);
  ml::GbdtConfig config;
  config.num_iterations = 5;
  config.num_leaves = 4;
  config.max_bins = 8;
  ml::Gbdt model(config);
  model.Fit(data);
  const ml::BinaryClassifier& base = model;
  FlatForest flat = FlatForest::Compile(base);
  EXPECT_EQ(flat.aggregation(), FlatForest::Aggregation::kGbdtSigmoid);
  ExpectFlatMatchesScalar(model, flat, data.features, "base dispatch");
}

// ---------------------------------------------------------------------------
// Full study tensor through the serving path
// ---------------------------------------------------------------------------

/// One shared study per process (building it is the expensive part). The
/// golden hot threshold yields an all-leaf model on this small network, so
/// the threshold is lowered to give the classifier real internal nodes —
/// otherwise the engine comparison would never traverse a split.
const Study& SharedStudy() {
  static const Study* const study = [] {
    StudyOptions options;
    options.hot_threshold_override = 0.5;
    return new Study(BuildStudy(testing::GoldenNetworkConfig(), options));
  }();
  return *study;
}

TEST(FlatTreeServing, ServiceEnginesBitwiseIdenticalOverStudyTensor) {
  const Study& study = SharedStudy();
  Forecaster forecaster = study.MakeForecaster(TargetKind::kBeHotSpot);
  ForecastConfig config = testing::GoldenForecastConfig();
  std::unique_ptr<serialize::ForecastBundle> bundle =
      forecaster.TrainBundle(config);
  bundle->score = study.score_config;
  ForecastService service(std::move(bundle));
  ASSERT_EQ(service.predict_engine(), PredictEngine::kFlat);
  // The comparison is only meaningful if the model actually branches.
  ASSERT_GT(service.flat_forest().num_nodes(),
            service.flat_forest().num_trees());

  // Serial classic scores are the reference; every engine/thread
  // combination must reproduce them bit for bit (memcmp over the float
  // vectors, so NaNs — if any — would also have to match exactly).
  std::vector<float> reference;
  {
    ScopedNumThreads serial("1");
    service.set_predict_engine(PredictEngine::kClassic);
    reference = service.PredictAtDay(study.features, config.t);
    service.set_predict_engine(PredictEngine::kFlat);
  }
  ASSERT_EQ(static_cast<int>(reference.size()), study.num_sectors());
  testing_util::ForEachThreadCount([&](const std::string& threads) {
    for (PredictEngine engine :
         {PredictEngine::kFlat, PredictEngine::kClassic}) {
      service.set_predict_engine(engine);
      std::vector<float> scores =
          service.PredictAtDay(study.features, config.t);
      ASSERT_EQ(scores.size(), reference.size());
      EXPECT_EQ(std::memcmp(scores.data(), reference.data(),
                            reference.size() * sizeof(float)),
                0)
          << (engine == PredictEngine::kFlat ? "flat" : "classic") << "@"
          << threads << " threads";
    }
  });
  service.set_predict_engine(PredictEngine::kFlat);

  // The bundle-carried flat forest matches a fresh compile over the whole
  // study tensor too (direct PredictBatch, both kernels).
  Matrix<float> rows(study.num_sectors(), service.bundle().feature_dim);
  {
    features::RawExtractor extractor;
    std::vector<float> row;
    for (int i = 0; i < study.num_sectors(); ++i) {
      Matrix<float> window =
          features::ExtractWindow(study.features, i, config.t, config.w);
      extractor.Extract(window, &row);
      ASSERT_EQ(static_cast<int>(row.size()), rows.cols());
      std::memcpy(rows.Row(i), row.data(), row.size() * sizeof(float));
    }
  }
  ExpectFlatMatchesScalar(*service.bundle().classifier,
                          service.flat_forest(), rows, "study tensor");
}

// ---------------------------------------------------------------------------
// Randomized adversarial tree fuzzer
// ---------------------------------------------------------------------------

/// Tree shapes the generator produces. Chains pin the degenerate-depth
/// case (every split has one leaf child), single leaves pin the no-split
/// case.
enum class TreeShape { kRandom, kDegenerateChain, kSingleLeaf };

struct FuzzNode {
  int feature = -1;
  float threshold = 0.0f;
  int left = -1;
  int right = -1;
  float prob = 0.0f;
};

float FuzzThreshold(Rng* rng) {
  switch (rng->UniformInt(0, 7)) {
    case 0:
      return std::numeric_limits<float>::infinity();
    case 1:
      return -std::numeric_limits<float>::infinity();
    case 2:
      return std::numeric_limits<float>::quiet_NaN();  // nothing <= NaN
    case 3:
      return 0.0f;
    case 4:
      return -0.0f;
    case 5:
      return std::numeric_limits<float>::denorm_min();
    default:
      return static_cast<float>(rng->Gaussian(0.0, 3.0));
  }
}

/// Appends a preorder subtree (children strictly after parents, as the
/// serialize decoders require) and returns its root index.
int GrowFuzzTree(Rng* rng, int depth, int max_depth, int num_features,
                 TreeShape shape, std::vector<FuzzNode>* nodes) {
  const int index = static_cast<int>(nodes->size());
  nodes->push_back(FuzzNode{});
  FuzzNode node;
  node.prob = static_cast<float>(rng->UniformDouble());
  const bool leaf =
      shape == TreeShape::kSingleLeaf || depth >= max_depth ||
      (shape == TreeShape::kRandom && rng->Bernoulli(0.3));
  if (!leaf) {
    node.feature = rng->UniformInt(0, num_features - 1);
    node.threshold = FuzzThreshold(rng);
    if (shape == TreeShape::kDegenerateChain) {
      // One child is a leaf, the other continues the chain: maximal depth
      // for the node count.
      const bool chain_left = rng->Bernoulli(0.5);
      int first = GrowFuzzTree(rng, depth + 1, max_depth, num_features,
                               chain_left ? shape : TreeShape::kSingleLeaf,
                               nodes);
      int second = GrowFuzzTree(rng, depth + 1, max_depth, num_features,
                                chain_left ? TreeShape::kSingleLeaf : shape,
                                nodes);
      node.left = first;
      node.right = second;
    } else {
      node.left =
          GrowFuzzTree(rng, depth + 1, max_depth, num_features, shape, nodes);
      node.right =
          GrowFuzzTree(rng, depth + 1, max_depth, num_features, shape, nodes);
    }
  }
  (*nodes)[static_cast<size_t>(index)] = node;
  return index;
}

/// Materializes the fuzzed node list as a real DecisionTree through the
/// serialize codec — the same constructor loaded models use, so the
/// fuzzer can only produce trees the decoder's validation admits.
std::unique_ptr<ml::DecisionTree> BuildFuzzTree(
    const std::vector<FuzzNode>& nodes, int num_features) {
  serialize::ByteWriter writer;
  ml::TreeConfig config;
  writer.WriteF64(config.max_features_fraction);
  writer.WriteBool(config.max_features_sqrt);
  writer.WriteF64(config.min_weight_fraction);
  writer.WriteI32(config.max_depth);
  writer.WriteU64(config.seed);
  writer.WriteI32(num_features);
  writer.WriteF64(1.0);                              // total_weight
  writer.WriteI32(0);                                // depth (informational)
  writer.WriteU64(nodes.size());
  for (const FuzzNode& node : nodes) {
    writer.WriteI32(node.feature);
    writer.WriteF32(node.threshold);
    writer.WriteI32(node.left);
    writer.WriteI32(node.right);
    writer.WriteF32(node.prob);
  }
  writer.WriteF64Vector(
      std::vector<double>(static_cast<size_t>(num_features), 0.0));
  serialize::ByteReader reader(writer.bytes().data(), writer.bytes().size());
  std::unique_ptr<ml::DecisionTree> tree =
      serialize::ModelAccess::DecodeTree(&reader);
  EXPECT_NE(tree, nullptr) << reader.error();
  return tree;
}

TEST(FlatTreeFuzz, ThousandAdversarialTreesMatchScalar) {
  int trees_checked = 0;
  for (uint64_t seed = 0; seed < 1100; ++seed) {
    Rng rng(seed * 2654435761u + 17);
    const TreeShape shape = seed % 5 == 0   ? TreeShape::kSingleLeaf
                            : seed % 5 == 1 ? TreeShape::kDegenerateChain
                                            : TreeShape::kRandom;
    const int num_features = rng.UniformInt(1, 8);
    const int max_depth = shape == TreeShape::kDegenerateChain
                              ? rng.UniformInt(8, 24)
                              : rng.UniformInt(1, 7);
    std::vector<FuzzNode> nodes;
    GrowFuzzTree(&rng, 0, max_depth, num_features, shape, &nodes);
    std::unique_ptr<ml::DecisionTree> tree =
        BuildFuzzTree(nodes, num_features);
    ASSERT_NE(tree, nullptr);
    FlatForest flat = FlatForest::Compile(*tree);
    ASSERT_EQ(flat.num_nodes(), static_cast<int>(nodes.size()));
    Matrix<float> rows = AdversarialRows(16, num_features, seed + 900000);
    ExpectFlatMatchesScalar(*tree, flat, rows,
                            "fuzz tree seed " + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
    ++trees_checked;
  }
  EXPECT_GE(trees_checked, 1000);
}

/// Fuzzed GBDTs: random strictly-increasing cut sets (including +-inf
/// endpoints and empty/constant features) and bin thresholds thrown across
/// and beyond the valid range, so every branch of the bin->float threshold
/// conversion (nothing-left, NaN-only-left, cut compare, everything-left)
/// is exercised, in both the float and quantized variants.
std::unique_ptr<ml::Gbdt> BuildFuzzGbdt(Rng* rng, int num_features,
                                        int num_trees) {
  serialize::ByteWriter writer;
  ml::GbdtConfig config;
  writer.WriteI32(config.num_iterations);
  writer.WriteF64(config.learning_rate);
  writer.WriteI32(config.num_leaves);
  writer.WriteI32(config.max_depth);
  writer.WriteI32(config.max_bins);
  writer.WriteF64(config.lambda_l2);
  writer.WriteF64(config.min_child_hessian);
  writer.WriteF64(config.feature_fraction);
  writer.WriteF64(config.bagging_fraction);
  writer.WriteU64(config.seed);
  writer.WriteI32(num_features);
  writer.WriteF64(rng->Gaussian(0.0, 1.0));  // base_score
  writer.WriteU64(static_cast<uint64_t>(num_features));
  std::vector<int> cut_counts;
  for (int f = 0; f < num_features; ++f) {
    std::vector<float> cuts;
    const int count = rng->UniformInt(0, 6);
    float previous = -std::numeric_limits<float>::infinity();
    if (count > 0 && rng->Bernoulli(0.15)) {
      cuts.push_back(previous);  // -inf as the lowest cut
    }
    for (int c = static_cast<int>(cuts.size()); c < count; ++c) {
      float next = static_cast<float>(rng->Gaussian(0.0, 2.0));
      if (!cuts.empty() && next <= cuts.back()) continue;
      cuts.push_back(next);
    }
    if (rng->Bernoulli(0.15)) {
      cuts.push_back(std::numeric_limits<float>::infinity());
    }
    cut_counts.push_back(static_cast<int>(cuts.size()));
    writer.WriteF32Vector(cuts);
  }
  writer.WriteU64(static_cast<uint64_t>(num_trees));
  for (int t = 0; t < num_trees; ++t) {
    std::vector<FuzzNode> nodes;
    GrowFuzzTree(rng, 0, rng->UniformInt(1, 6), num_features,
                 t % 3 == 0 ? TreeShape::kDegenerateChain : TreeShape::kRandom,
                 &nodes);
    writer.WriteU64(nodes.size());
    for (const FuzzNode& node : nodes) {
      writer.WriteI32(node.feature);
      if (node.feature >= 0) {
        // Bin thresholds across and beyond the valid range [0, cuts+1].
        const int cuts = cut_counts[static_cast<size_t>(node.feature)];
        writer.WriteI32(rng->UniformInt(-2, cuts + 2));
      } else {
        writer.WriteI32(0);
      }
      writer.WriteI32(node.left);
      writer.WriteI32(node.right);
      writer.WriteF64(node.feature >= 0 ? 0.0 : rng->Gaussian(0.0, 1.0));
    }
  }
  writer.WriteF64Vector(
      std::vector<double>(static_cast<size_t>(num_features), 0.0));
  writer.WriteF64Vector({});  // training loss
  serialize::ByteReader reader(writer.bytes().data(), writer.bytes().size());
  std::unique_ptr<ml::Gbdt> model = serialize::ModelAccess::DecodeGbdt(&reader);
  EXPECT_NE(model, nullptr) << reader.error();
  return model;
}

TEST(FlatTreeFuzz, AdversarialGbdtsMatchScalarInBothVariants) {
  for (uint64_t seed = 0; seed < 250; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);
    const int num_features = rng.UniformInt(1, 6);
    const int num_trees = rng.UniformInt(1, 4);
    std::unique_ptr<ml::Gbdt> model =
        BuildFuzzGbdt(&rng, num_features, num_trees);
    ASSERT_NE(model, nullptr);
    FlatForest flat = FlatForest::Compile(*model);
    ASSERT_TRUE(flat.has_quantized());
    Matrix<float> rows = AdversarialRows(24, num_features, seed + 700000);
    ExpectFlatMatchesScalar(*model, flat, rows,
                            "fuzz gbdt seed " + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Runtime CPUID gate / kernel selection
// ---------------------------------------------------------------------------

TEST(FlatTreeSimd, SupportImpliesCompiledAndFallbackIsGraceful) {
  // Supported => compiled (the converse depends on the host CPU).
  if (FlatForest::SimdSupported()) {
    EXPECT_TRUE(FlatForest::SimdCompiled());
  }
  // An explicit AVX2 request must work on EVERY host: where AVX2 is
  // unsupported (or compiled out) it silently degrades to the scalar
  // kernel, with identical scores either way. This is the test that keeps
  // -DHOTSPOT_SIMD=OFF and non-AVX2 hosts green.
  ml::Dataset data = MakeDataset(100, 6, 55);
  ml::GbdtConfig config;
  config.num_iterations = 8;
  config.num_leaves = 6;
  config.max_bins = 16;
  ml::Gbdt model(config);
  model.Fit(data);
  FlatForest flat = FlatForest::Compile(model);
  std::vector<double> scalar =
      FlatPredictions(flat, data.features, FlatKernel::kScalar,
                      FlatVariant::kAuto);
  std::vector<double> avx2 = FlatPredictions(
      flat, data.features, FlatKernel::kAvx2, FlatVariant::kAuto);
  ExpectBitwiseEqual(avx2, scalar, "explicit avx2 request");
}

TEST(FlatTreeSimd, KernelEnvOverrideForcesScalar) {
  ASSERT_EQ(::setenv("HOTSPOT_FLAT_KERNEL", "scalar", 1), 0);
  EXPECT_EQ(FlatForest::ChooseKernel(), FlatKernel::kScalar);
  ASSERT_EQ(::unsetenv("HOTSPOT_FLAT_KERNEL"), 0);
  // Without the override the choice tracks the CPUID gate.
  EXPECT_EQ(FlatForest::ChooseKernel() == FlatKernel::kAvx2,
            FlatForest::SimdSupported());
}

}  // namespace
}  // namespace hotspot
