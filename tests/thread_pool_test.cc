#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "scoped_num_threads.h"

namespace hotspot::util {
namespace {

using hotspot::ScopedNumThreads;

TEST(NumThreads, RespectsEnvVariable) {
  ScopedNumThreads env("3");
  EXPECT_EQ(NumThreads(), 3);
}

TEST(NumThreads, OneIsAccepted) {
  ScopedNumThreads env("1");
  EXPECT_EQ(NumThreads(), 1);
}

TEST(NumThreads, ClampsToMaxThreads) {
  ScopedNumThreads env("100000");
  EXPECT_EQ(NumThreads(), kMaxThreads);
}

TEST(NumThreads, InvalidValuesFallBackToHardware) {
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware == 0) hardware = 1;
  int expected = std::min(hardware, kMaxThreads);
  {
    ScopedNumThreads env("abc");
    EXPECT_EQ(NumThreads(), expected);
  }
  {
    ScopedNumThreads env("0");
    EXPECT_EQ(NumThreads(), expected);
  }
  {
    ScopedNumThreads env("-4");
    EXPECT_EQ(NumThreads(), expected);
  }
  {
    ScopedNumThreads env("");
    EXPECT_EQ(NumThreads(), expected);
  }
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](int64_t) { ++calls; }, 8);
  ParallelFor(7, 3, [&](int64_t) { ++calls; }, 8);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr int kCount = 10000;
  std::vector<int> hits(kCount, 0);
  // Each index only writes its own slot, per the determinism contract.
  ParallelFor(0, kCount, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; },
              8);
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ParallelFor, RangeSmallerThanThreadCount) {
  std::vector<int> hits(3, 0);
  ParallelFor(0, 3, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; }, 8);
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, NonZeroBegin) {
  std::vector<int> hits(10, 0);
  ParallelFor(4, 10, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; }, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)], i >= 4 ? 1 : 0);
  }
}

TEST(ParallelFor, WorkerExceptionSurfacesToCallerExactlyOnce) {
  int caught = 0;
  try {
    ParallelFor(
        0, 10000,
        [&](int64_t i) {
          if (i == 4321) throw std::runtime_error("boom");
        },
        8);
  } catch (const std::runtime_error& error) {
    ++caught;
    EXPECT_STREQ(error.what(), "boom");
  }
  EXPECT_EQ(caught, 1);
}

TEST(ParallelFor, SerialPathExceptionPropagates) {
  ScopedNumThreads env("1");
  EXPECT_THROW(
      ParallelFor(0, 10,
                  [&](int64_t i) {
                    if (i == 5) throw std::runtime_error("serial boom");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, NestedParallelForDoesNotDeadlockAndCoversAll) {
  constexpr int kOuter = 8;
  constexpr int kInner = 8;
  std::atomic<int> total{0};
  ParallelFor(
      0, kOuter,
      [&](int64_t) {
        // Inside a parallel region nested constructs run serially.
        EXPECT_TRUE(InParallelRegion());
        ParallelFor(0, kInner, [&](int64_t) { ++total; }, 8);
      },
      8);
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ParallelFor, EnvOneBypassesThePool) {
  ScopedNumThreads env("1");
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(0, 64, [&](int64_t) {
    // Exact serial fallback: runs inline on the caller, not as a region.
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_FALSE(InParallelRegion());
    ++calls;  // safe: single-threaded by construction
  });
  EXPECT_EQ(calls, 64);
}

TEST(ParallelFor, ExplicitThreadCountOverridesEnv) {
  ScopedNumThreads env("1");
  // num_threads = 4 passed explicitly must still cover the range.
  std::vector<int> hits(100, 0);
  ParallelFor(0, 100, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; }, 4);
  for (int hit : hits) ASSERT_EQ(hit, 1);
}

TEST(ParallelMap, ReturnsResultsInIndexOrder) {
  std::vector<int64_t> squares = ParallelMap<int64_t>(
      0, 1000, [](int64_t i) { return i * i; }, 8);
  ASSERT_EQ(squares.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelMap, EmptyRange) {
  std::vector<int> none =
      ParallelMap<int>(3, 3, [](int64_t) { return 1; }, 8);
  EXPECT_TRUE(none.empty());
}

TEST(ThreadPool, GlobalPoolGrowsOnDemand) {
  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(2);
  EXPECT_GE(pool.num_workers(), 2);
  int before = pool.num_workers();
  pool.EnsureWorkers(1);  // never shrinks
  EXPECT_EQ(pool.num_workers(), before);
}

}  // namespace
}  // namespace hotspot::util
