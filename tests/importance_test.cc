#include <cmath>

#include "gtest/gtest.h"
#include "core/importance.h"
#include "features/percentile_features.h"
#include "features/raw_features.h"
#include "tensor/temporal.h"

namespace hotspot {
namespace {

/// Minimal 2-channel feature tensor (1 sector, 1 week) for shape plumbing.
features::FeatureTensor TinySource() {
  const int hours = kHoursPerWeek;
  Tensor3<float> kpis(1, hours, 2, 0.0f);
  Matrix<float> calendar(hours, 5, 0.0f);
  Matrix<float> hourly(1, hours, 0.0f);
  Matrix<float> daily(1, hours / 24, 0.0f);
  Matrix<float> weekly(1, 1, 0.0f);
  Matrix<float> labels(1, hours / 24, 0.0f);
  return features::FeatureTensor::Build(kpis, calendar, hourly, daily,
                                        weekly, labels, {"alpha", "beta"});
}

TEST(ImportanceMap, RawExtractorResolvesHourAndChannel) {
  features::FeatureTensor source = TinySource();
  features::RawExtractor extractor;
  const int channels = source.num_channels();
  const int window_days = 2;
  std::vector<double> importances(
      static_cast<size_t>(extractor.OutputDim(window_days, channels)), 0.0);
  // Put mass at (hour 5, channel 3) and (hour 40, channel 0).
  importances[static_cast<size_t>(5 * channels + 3)] = 0.7;
  importances[static_cast<size_t>(40 * channels + 0)] = 0.3;

  ImportanceMap map = ImportanceMap::FromForecast(source, extractor,
                                                  importances, window_days);
  EXPECT_TRUE(map.has_hour_attribution());
  EXPECT_DOUBLE_EQ(map.grid().At(5, 3), 0.7);
  EXPECT_DOUBLE_EQ(map.grid().At(40, 0), 0.3);
  EXPECT_DOUBLE_EQ(map.ChannelTotal(3), 0.7);
  EXPECT_DOUBLE_EQ(map.ChannelTotal(0), 0.3);
  EXPECT_DOUBLE_EQ(map.ChannelTotal(1), 0.0);
}

TEST(ImportanceMap, SummaryExtractorCollapsesHours) {
  features::FeatureTensor source = TinySource();
  features::DailyPercentileExtractor extractor;
  const int channels = source.num_channels();
  std::vector<double> importances(
      static_cast<size_t>(extractor.OutputDim(3, channels)), 0.0);
  importances[0] = 1.0;  // day 0, channel 0, p5
  ImportanceMap map =
      ImportanceMap::FromForecast(source, extractor, importances, 3);
  EXPECT_FALSE(map.has_hour_attribution());
  EXPECT_DOUBLE_EQ(map.ChannelTotal(0), 1.0);
  EXPECT_DOUBLE_EQ(map.LateWindowShare(0, 1), 0.0);  // unavailable
}

TEST(ImportanceMap, LateWindowShare) {
  features::FeatureTensor source = TinySource();
  features::RawExtractor extractor;
  const int channels = source.num_channels();
  const int window_days = 3;
  std::vector<double> importances(
      static_cast<size_t>(extractor.OutputDim(window_days, channels)), 0.0);
  // Channel 2: 0.25 on day 0, 0.75 on day 2 (the last day).
  importances[static_cast<size_t>(3 * channels + 2)] = 0.25;
  importances[static_cast<size_t>((2 * 24 + 5) * channels + 2)] = 0.75;
  ImportanceMap map = ImportanceMap::FromForecast(source, extractor,
                                                  importances, window_days);
  EXPECT_NEAR(map.LateWindowShare(2, 1), 0.75, 1e-12);
  EXPECT_NEAR(map.LateWindowShare(2, 3), 1.0, 1e-12);
}

TEST(ImportanceMap, GroupTotalsAndRanking) {
  features::FeatureTensor source = TinySource();
  features::RawExtractor extractor;
  const int channels = source.num_channels();
  std::vector<double> importances(
      static_cast<size_t>(extractor.OutputDim(1, channels)), 0.0);
  // Channel 0/1 are KPIs; channel 2 is calendar (cal_hour_of_day).
  importances[0] = 0.5;                                   // kpi alpha
  importances[2] = 0.2;                                   // calendar
  importances[static_cast<size_t>(channels + 1)] = 0.3;   // kpi beta, hour 1
  ImportanceMap map =
      ImportanceMap::FromForecast(source, extractor, importances, 1);
  EXPECT_DOUBLE_EQ(map.GroupTotal(source, features::FeatureGroup::kKpi),
                   0.8);
  EXPECT_DOUBLE_EQ(
      map.GroupTotal(source, features::FeatureGroup::kCalendar), 0.2);
  std::vector<int> ranked = map.RankedChannels();
  EXPECT_EQ(ranked[0], 0);
  EXPECT_EQ(ranked[1], 1);
  EXPECT_EQ(ranked[2], 2);
}

TEST(ImportanceMap, AverageOfMaps) {
  features::FeatureTensor source = TinySource();
  features::RawExtractor extractor;
  const int channels = source.num_channels();
  std::vector<double> a(
      static_cast<size_t>(extractor.OutputDim(1, channels)), 0.0);
  std::vector<double> b = a;
  a[0] = 1.0;
  b[1] = 1.0;
  ImportanceMap map_a =
      ImportanceMap::FromForecast(source, extractor, a, 1);
  ImportanceMap map_b =
      ImportanceMap::FromForecast(source, extractor, b, 1);
  ImportanceMap average = ImportanceMap::Average({map_a, map_b});
  EXPECT_DOUBLE_EQ(average.ChannelTotal(0), 0.5);
  EXPECT_DOUBLE_EQ(average.ChannelTotal(1), 0.5);
}

TEST(ImportanceMap, TableRendering) {
  features::FeatureTensor source = TinySource();
  features::RawExtractor extractor;
  const int channels = source.num_channels();
  std::vector<double> importances(
      static_cast<size_t>(extractor.OutputDim(1, channels)), 0.0);
  importances[0] = 1.0;
  ImportanceMap map =
      ImportanceMap::FromForecast(source, extractor, importances, 1);
  std::string table = map.ToTable(source, 3);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("kpi"), std::string::npos);
}

}  // namespace
}  // namespace hotspot
