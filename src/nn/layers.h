#ifndef HOTSPOT_NN_LAYERS_H_
#define HOTSPOT_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::nn {

/// View into one trainable parameter vector and its gradient accumulator.
struct ParamView {
  float* values = nullptr;
  float* grads = nullptr;
  size_t size = 0;
};

/// A differentiable layer operating on batches (rows = examples).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output and caches whatever Backward needs.
  virtual Matrix<float> Forward(const Matrix<float>& input) = 0;

  /// Propagates the loss gradient, accumulating parameter gradients.
  virtual Matrix<float> Backward(const Matrix<float>& grad_output) = 0;

  /// Trainable parameters (empty for parameter-free layers).
  virtual std::vector<ParamView> Params() = 0;

  /// Zeroes all gradient accumulators.
  void ZeroGrads();
};

/// Fully connected affine layer: out = in · W + b, with Glorot-uniform
/// initialization.
class Dense : public Layer {
 public:
  Dense(int in_dim, int out_dim, Rng* rng);

  Matrix<float> Forward(const Matrix<float>& input) override;
  Matrix<float> Backward(const Matrix<float>& grad_output) override;
  std::vector<ParamView> Params() override;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_;
  int out_dim_;
  Matrix<float> weights_;       // in_dim x out_dim
  Matrix<float> weight_grads_;  // same shape
  std::vector<float> bias_;
  std::vector<float> bias_grads_;
  Matrix<float> cached_input_;
};

/// Parametric rectified linear unit with one learnable slope per channel
/// (He et al. 2015), as used by the paper's autoencoder.
class PRelu : public Layer {
 public:
  explicit PRelu(int dim, float initial_alpha = 0.25f);

  Matrix<float> Forward(const Matrix<float>& input) override;
  Matrix<float> Backward(const Matrix<float>& grad_output) override;
  std::vector<ParamView> Params() override;

  const std::vector<float>& alphas() const { return alpha_; }

 private:
  std::vector<float> alpha_;
  std::vector<float> alpha_grads_;
  Matrix<float> cached_input_;
};

/// A plain sequential container.
class Sequential {
 public:
  Sequential() = default;

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Matrix<float> Forward(const Matrix<float>& input);
  /// Backward through all layers; returns the input gradient.
  Matrix<float> Backward(const Matrix<float>& grad_output);

  void ZeroGrads();
  std::vector<ParamView> Params();

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace hotspot::nn

#endif  // HOTSPOT_NN_LAYERS_H_
