#ifndef HOTSPOT_NN_AUTOENCODER_H_
#define HOTSPOT_NN_AUTOENCODER_H_

#include <vector>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::nn {

/// Architecture/training knobs of the denoising autoencoder of Sec. II-C.
struct AutoencoderConfig {
  int input_dim = 0;
  /// Encoder depth; each encoder layer halves its input size (paper: 4).
  int encoder_layers = 4;
  double learning_rate = 1e-4;  ///< paper value
  double rms_decay = 0.99;      ///< paper value
  uint64_t seed = 1;
};

/// Stacked denoising autoencoder: `encoder_layers` Dense+PReLU blocks with
/// halving widths, then a symmetric decoder (the last decoder layer is
/// linear so the output can take any real value).
class DenoisingAutoencoder {
 public:
  explicit DenoisingAutoencoder(const AutoencoderConfig& config);

  DenoisingAutoencoder(const DenoisingAutoencoder&) = delete;
  DenoisingAutoencoder& operator=(const DenoisingAutoencoder&) = delete;

  /// One SGD step on a batch. `corrupted` is the noised input, `target`
  /// the clean signal, and `mask` selects the cells that contribute to the
  /// loss (1 = originally observed). All three are batch x input_dim.
  /// Returns the masked mean-squared error of the batch before the update.
  double TrainBatch(const Matrix<float>& corrupted,
                    const Matrix<float>& target, const Matrix<float>& mask);

  /// Reconstructs a batch (no training side effects beyond layer caches).
  Matrix<float> Reconstruct(const Matrix<float>& input);

  /// Masked mean-squared error without updating parameters.
  double Loss(const Matrix<float>& corrupted, const Matrix<float>& target,
              const Matrix<float>& mask);

  int input_dim() const { return config_.input_dim; }
  /// Width of the innermost code layer.
  int code_dim() const { return code_dim_; }

 private:
  friend struct ::hotspot::serialize::ModelAccess;

  AutoencoderConfig config_;
  int code_dim_ = 0;
  Sequential network_;
  RmsProp optimizer_;
};

/// Computes masked MSE and (optionally) its gradient w.r.t. the
/// reconstruction. Exposed for tests.
double MaskedMse(const Matrix<float>& reconstruction,
                 const Matrix<float>& target, const Matrix<float>& mask,
                 Matrix<float>* grad_out = nullptr);

}  // namespace hotspot::nn

#endif  // HOTSPOT_NN_AUTOENCODER_H_
