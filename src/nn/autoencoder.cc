#include "nn/autoencoder.h"

#include <memory>

#include "util/logging.h"

namespace hotspot::nn {

double MaskedMse(const Matrix<float>& reconstruction,
                 const Matrix<float>& target, const Matrix<float>& mask,
                 Matrix<float>* grad_out) {
  HOTSPOT_CHECK_EQ(reconstruction.rows(), target.rows());
  HOTSPOT_CHECK_EQ(reconstruction.cols(), target.cols());
  HOTSPOT_CHECK_EQ(reconstruction.rows(), mask.rows());
  HOTSPOT_CHECK_EQ(reconstruction.cols(), mask.cols());
  double sum_sq = 0.0;
  long long count = 0;
  for (size_t idx = 0; idx < reconstruction.data().size(); ++idx) {
    if (mask.data()[idx] == 0.0f) continue;
    double diff = reconstruction.data()[idx] - target.data()[idx];
    sum_sq += diff * diff;
    ++count;
  }
  double denom = count > 0 ? static_cast<double>(count) : 1.0;
  if (grad_out != nullptr) {
    *grad_out = Matrix<float>(reconstruction.rows(), reconstruction.cols(),
                              0.0f);
    for (size_t idx = 0; idx < reconstruction.data().size(); ++idx) {
      if (mask.data()[idx] == 0.0f) continue;
      grad_out->data()[idx] = static_cast<float>(
          2.0 * (reconstruction.data()[idx] - target.data()[idx]) / denom);
    }
  }
  return count > 0 ? sum_sq / denom : 0.0;
}

DenoisingAutoencoder::DenoisingAutoencoder(const AutoencoderConfig& config)
    : config_(config),
      optimizer_(config.learning_rate, config.rms_decay) {
  HOTSPOT_CHECK_GT(config.input_dim, 0);
  HOTSPOT_CHECK_GT(config.encoder_layers, 0);
  Rng rng(config.seed);

  // Encoder: halving widths.
  std::vector<int> widths = {config.input_dim};
  for (int layer = 0; layer < config.encoder_layers; ++layer) {
    int next = widths.back() / 2;
    HOTSPOT_CHECK_GT(next, 0);
    widths.push_back(next);
  }
  code_dim_ = widths.back();
  for (size_t layer = 0; layer + 1 < widths.size(); ++layer) {
    network_.Add(std::make_unique<Dense>(widths[layer], widths[layer + 1],
                                         &rng));
    network_.Add(std::make_unique<PRelu>(widths[layer + 1]));
  }
  // Decoder: symmetric, PReLU between layers, linear output.
  for (size_t layer = widths.size() - 1; layer > 0; --layer) {
    network_.Add(std::make_unique<Dense>(widths[layer], widths[layer - 1],
                                         &rng));
    if (layer > 1) {
      network_.Add(std::make_unique<PRelu>(widths[layer - 1]));
    }
  }
}

double DenoisingAutoencoder::TrainBatch(const Matrix<float>& corrupted,
                                        const Matrix<float>& target,
                                        const Matrix<float>& mask) {
  Matrix<float> reconstruction = network_.Forward(corrupted);
  Matrix<float> grad;
  double loss = MaskedMse(reconstruction, target, mask, &grad);
  network_.ZeroGrads();
  network_.Backward(grad);
  optimizer_.Step(network_.Params());
  return loss;
}

Matrix<float> DenoisingAutoencoder::Reconstruct(const Matrix<float>& input) {
  return network_.Forward(input);
}

double DenoisingAutoencoder::Loss(const Matrix<float>& corrupted,
                                  const Matrix<float>& target,
                                  const Matrix<float>& mask) {
  Matrix<float> reconstruction = network_.Forward(corrupted);
  return MaskedMse(reconstruction, target, mask, nullptr);
}

}  // namespace hotspot::nn
