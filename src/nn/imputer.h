#ifndef HOTSPOT_NN_IMPUTER_H_
#define HOTSPOT_NN_IMPUTER_H_

#include <vector>

#include "nn/autoencoder.h"
#include "tensor/tensor3.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::nn {

/// Per-KPI mean/std over the finite cells of the tensor (stds of constant
/// features become 1). The per-study normalization stats the imputer and
/// the serialized ForecastBundle carry.
void ComputeKpiNormalization(const Tensor3<float>& kpis,
                             std::vector<double>* means,
                             std::vector<double>* stds);

/// Training/imputation knobs for the KPI imputer of Sec. II-C.
struct ImputerConfig {
  /// Slice length in hours; the paper uses one week (168).
  int slice_hours = 168;
  int encoder_layers = 4;
  int batch_size = 128;  ///< paper value
  /// Number of epochs; the paper trains 1000 epochs of n·m_w/128 batches.
  /// Benches use far fewer — the loss plateaus quickly at this scale.
  int epochs = 30;
  double learning_rate = 1e-4;  ///< paper value
  double rms_decay = 0.99;      ///< paper value
  /// Fraction of each slice corrupted at the encoder input (missing cells
  /// plus extra substitutions "up to half of the slice size").
  double corruption_fraction = 0.5;
  uint64_t seed = 7;
};

/// Outcome report of a Fit() + Impute() run.
struct ImputerReport {
  double initial_missing_fraction = 0.0;
  double first_epoch_loss = 0.0;
  double final_epoch_loss = 0.0;
  long long imputed_cells = 0;
  std::vector<double> epoch_losses;
};

/// Denoising-autoencoder imputer for the KPI tensor K:
/// * z-normalizes each KPI over its finite values,
/// * trains the autoencoder on randomly drawn (sector, week) slices with
///   the paper's corruption scheme (missing values and extra corrupted
///   cells are forward-filled with the most recent available sample),
/// * replaces ONLY the originally-missing cells with reconstructions,
///   restoring the original per-KPI offset and scale.
class KpiImputer {
 public:
  explicit KpiImputer(const ImputerConfig& config);

  KpiImputer(const KpiImputer&) = delete;
  KpiImputer& operator=(const KpiImputer&) = delete;

  /// Trains on `kpis` (not modified). Must be called before Impute().
  ImputerReport Fit(const Tensor3<float>& kpis);

  /// Fills missing cells of `kpis` in place; returns the number filled.
  /// Requires Fit() to have been called on compatible data (same number of
  /// KPI features and slice length dividing the hour count).
  long long Impute(Tensor3<float>* kpis) const;

  /// Convenience: Fit + Impute.
  ImputerReport FitAndImpute(Tensor3<float>* kpis);

  const ImputerConfig& config() const { return config_; }

 private:
  friend struct ::hotspot::serialize::ModelAccess;

  /// Builds the clean target, corrupted input, and observation mask for
  /// one (sector, week) slice, flattened to a single row. At least the
  /// missing cells are corrupted; extra observed cells are corrupted until
  /// `corruption_fraction` of the slice is covered.
  void BuildSliceRows(const Tensor3<float>& kpis, int sector, int slice,
                      double corruption_fraction, Rng* rng,
                      std::vector<float>* corrupted,
                      std::vector<float>* target,
                      std::vector<float>* mask) const;

  ImputerConfig config_;
  std::vector<double> feature_means_;
  std::vector<double> feature_stds_;
  std::unique_ptr<DenoisingAutoencoder> network_;
};

/// Baseline imputations used by the ablation bench: forward-fill with the
/// most recent available value per (sector, KPI) (falling back to the next
/// available, then the KPI mean), or a constant fill with the KPI mean.
long long ImputeForwardFill(Tensor3<float>* kpis);
long long ImputeFeatureMean(Tensor3<float>* kpis);

}  // namespace hotspot::nn

#endif  // HOTSPOT_NN_IMPUTER_H_
