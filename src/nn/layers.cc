#include "nn/layers.h"

#include <cmath>
#include <cstring>

#include "nn/matrix_ops.h"
#include "util/logging.h"

namespace hotspot::nn {

void Layer::ZeroGrads() {
  for (ParamView view : Params()) {
    std::memset(view.grads, 0, view.size * sizeof(float));
  }
}

Dense::Dense(int in_dim, int out_dim, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim),
      weights_(in_dim, out_dim),
      weight_grads_(in_dim, out_dim, 0.0f),
      bias_(static_cast<size_t>(out_dim), 0.0f),
      bias_grads_(static_cast<size_t>(out_dim), 0.0f) {
  HOTSPOT_CHECK_GT(in_dim, 0);
  HOTSPOT_CHECK_GT(out_dim, 0);
  HOTSPOT_CHECK(rng != nullptr);
  // Glorot-uniform initialization.
  float limit = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  for (float& w : weights_.data()) {
    w = static_cast<float>(rng->Uniform(-limit, limit));
  }
}

Matrix<float> Dense::Forward(const Matrix<float>& input) {
  HOTSPOT_CHECK_EQ(input.cols(), in_dim_);
  cached_input_ = input;
  Matrix<float> output;
  MatMul(input, weights_, &output);
  for (int r = 0; r < output.rows(); ++r) {
    float* row = output.Row(r);
    for (int c = 0; c < out_dim_; ++c) {
      row[c] += bias_[static_cast<size_t>(c)];
    }
  }
  return output;
}

Matrix<float> Dense::Backward(const Matrix<float>& grad_output) {
  HOTSPOT_CHECK_EQ(grad_output.cols(), out_dim_);
  HOTSPOT_CHECK_EQ(grad_output.rows(), cached_input_.rows());
  Matrix<float> weight_grad;
  MatMulTransposedA(cached_input_, grad_output, &weight_grad);
  for (size_t idx = 0; idx < weight_grad.data().size(); ++idx) {
    weight_grads_.data()[idx] += weight_grad.data()[idx];
  }
  for (int r = 0; r < grad_output.rows(); ++r) {
    const float* row = grad_output.Row(r);
    for (int c = 0; c < out_dim_; ++c) {
      bias_grads_[static_cast<size_t>(c)] += row[c];
    }
  }
  Matrix<float> grad_input;
  MatMulTransposedB(grad_output, weights_, &grad_input);
  return grad_input;
}

std::vector<ParamView> Dense::Params() {
  return {
      {weights_.data().data(), weight_grads_.data().data(),
       weights_.data().size()},
      {bias_.data(), bias_grads_.data(), bias_.size()},
  };
}

PRelu::PRelu(int dim, float initial_alpha)
    : alpha_(static_cast<size_t>(dim), initial_alpha),
      alpha_grads_(static_cast<size_t>(dim), 0.0f) {
  HOTSPOT_CHECK_GT(dim, 0);
}

Matrix<float> PRelu::Forward(const Matrix<float>& input) {
  HOTSPOT_CHECK_EQ(input.cols(), static_cast<int>(alpha_.size()));
  cached_input_ = input;
  Matrix<float> output = input;
  for (int r = 0; r < output.rows(); ++r) {
    float* row = output.Row(r);
    for (int c = 0; c < output.cols(); ++c) {
      if (row[c] < 0.0f) row[c] *= alpha_[static_cast<size_t>(c)];
    }
  }
  return output;
}

Matrix<float> PRelu::Backward(const Matrix<float>& grad_output) {
  HOTSPOT_CHECK_EQ(grad_output.rows(), cached_input_.rows());
  HOTSPOT_CHECK_EQ(grad_output.cols(), cached_input_.cols());
  Matrix<float> grad_input = grad_output;
  for (int r = 0; r < grad_output.rows(); ++r) {
    const float* in = cached_input_.Row(r);
    const float* gout = grad_output.Row(r);
    float* gin = grad_input.Row(r);
    for (int c = 0; c < grad_output.cols(); ++c) {
      if (in[c] < 0.0f) {
        alpha_grads_[static_cast<size_t>(c)] += gout[c] * in[c];
        gin[c] = gout[c] * alpha_[static_cast<size_t>(c)];
      }
    }
  }
  return grad_input;
}

std::vector<ParamView> PRelu::Params() {
  return {{alpha_.data(), alpha_grads_.data(), alpha_.size()}};
}

Matrix<float> Sequential::Forward(const Matrix<float>& input) {
  Matrix<float> activation = input;
  for (auto& layer : layers_) activation = layer->Forward(activation);
  return activation;
}

Matrix<float> Sequential::Backward(const Matrix<float>& grad_output) {
  Matrix<float> grad = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->Backward(grad);
  }
  return grad;
}

void Sequential::ZeroGrads() {
  for (auto& layer : layers_) layer->ZeroGrads();
}

std::vector<ParamView> Sequential::Params() {
  std::vector<ParamView> params;
  for (auto& layer : layers_) {
    for (ParamView view : layer->Params()) params.push_back(view);
  }
  return params;
}

}  // namespace hotspot::nn
