#include "nn/matrix_ops.h"

#include "util/logging.h"

namespace hotspot::nn {

void MatMul(const Matrix<float>& a, const Matrix<float>& b,
            Matrix<float>* out) {
  HOTSPOT_CHECK_EQ(a.cols(), b.rows());
  *out = Matrix<float>(a.rows(), b.cols(), 0.0f);
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (int k = 0; k < a.cols(); ++k) {
      float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b.Row(k);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
}

void MatMulTransposedA(const Matrix<float>& a, const Matrix<float>& b,
                       Matrix<float>* out) {
  HOTSPOT_CHECK_EQ(a.rows(), b.rows());
  *out = Matrix<float>(a.cols(), b.cols(), 0.0f);
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.Row(k);
    const float* brow = b.Row(k);
    for (int i = 0; i < a.cols(); ++i) {
      float aki = arow[i];
      if (aki == 0.0f) continue;
      float* orow = out->Row(i);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
}

void MatMulTransposedB(const Matrix<float>& a, const Matrix<float>& b,
                       Matrix<float>* out) {
  HOTSPOT_CHECK_EQ(a.cols(), b.cols());
  *out = Matrix<float>(a.rows(), b.rows(), 0.0f);
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.Row(j);
      float sum = 0.0f;
      for (int k = 0; k < a.cols(); ++k) sum += arow[k] * brow[k];
      orow[j] = sum;
    }
  }
}

}  // namespace hotspot::nn
