#ifndef HOTSPOT_NN_OPTIMIZER_H_
#define HOTSPOT_NN_OPTIMIZER_H_

#include <vector>

#include "nn/layers.h"

namespace hotspot::nn {

/// RMSprop (Tieleman & Hinton 2012), the optimizer the paper trains its
/// autoencoder with: per-parameter learning rates from a running average
/// of squared gradients.
class RmsProp {
 public:
  /// `learning_rate` and `decay` match the paper's 1e-4 and 0.99 defaults.
  explicit RmsProp(double learning_rate = 1e-4, double decay = 0.99,
                   double epsilon = 1e-8);

  /// Applies one update using the gradients currently accumulated in
  /// `params` and then leaves the gradients untouched (caller zeroes them).
  /// The set and order of parameter views must be stable across calls.
  void Step(const std::vector<ParamView>& params);

  double learning_rate() const { return learning_rate_; }

 private:
  double learning_rate_;
  double decay_;
  double epsilon_;
  std::vector<std::vector<float>> mean_square_;
};

}  // namespace hotspot::nn

#endif  // HOTSPOT_NN_OPTIMIZER_H_
