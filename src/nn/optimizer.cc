#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace hotspot::nn {

RmsProp::RmsProp(double learning_rate, double decay, double epsilon)
    : learning_rate_(learning_rate), decay_(decay), epsilon_(epsilon) {
  HOTSPOT_CHECK_GT(learning_rate, 0.0);
  HOTSPOT_CHECK(decay > 0.0 && decay < 1.0);
}

void RmsProp::Step(const std::vector<ParamView>& params) {
  if (mean_square_.empty()) {
    mean_square_.resize(params.size());
    for (size_t p = 0; p < params.size(); ++p) {
      mean_square_[p].assign(params[p].size, 0.0f);
    }
  }
  HOTSPOT_CHECK_EQ(mean_square_.size(), params.size());
  for (size_t p = 0; p < params.size(); ++p) {
    const ParamView& view = params[p];
    std::vector<float>& ms = mean_square_[p];
    HOTSPOT_CHECK_EQ(ms.size(), view.size);
    for (size_t i = 0; i < view.size; ++i) {
      float g = view.grads[i];
      ms[i] = static_cast<float>(decay_ * ms[i] + (1.0 - decay_) * g * g);
      view.values[i] -= static_cast<float>(
          learning_rate_ * g / (std::sqrt(ms[i]) + epsilon_));
    }
  }
}

}  // namespace hotspot::nn
