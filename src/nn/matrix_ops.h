#ifndef HOTSPOT_NN_MATRIX_OPS_H_
#define HOTSPOT_NN_MATRIX_OPS_H_

#include "tensor/matrix.h"

namespace hotspot::nn {

/// out = a (m x k) * b (k x n). `out` is resized/overwritten.
void MatMul(const Matrix<float>& a, const Matrix<float>& b,
            Matrix<float>* out);

/// out = aᵀ (m x k, a is k x m) * b (k x n). Used for weight gradients.
void MatMulTransposedA(const Matrix<float>& a, const Matrix<float>& b,
                       Matrix<float>* out);

/// out = a (m x k) * bᵀ (k x n, b is n x k). Used for input gradients.
void MatMulTransposedB(const Matrix<float>& a, const Matrix<float>& b,
                       Matrix<float>* out);

}  // namespace hotspot::nn

#endif  // HOTSPOT_NN_MATRIX_OPS_H_
