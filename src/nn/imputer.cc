#include "nn/imputer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::nn {

void ComputeKpiNormalization(const Tensor3<float>& kpis,
                             std::vector<double>* means,
                             std::vector<double>* stds) {
  const int l = kpis.dim2();
  means->assign(static_cast<size_t>(l), 0.0);
  stds->assign(static_cast<size_t>(l), 1.0);
  std::vector<double> sums(static_cast<size_t>(l), 0.0);
  std::vector<double> sums_sq(static_cast<size_t>(l), 0.0);
  std::vector<long long> counts(static_cast<size_t>(l), 0);
  for (int i = 0; i < kpis.dim0(); ++i) {
    for (int j = 0; j < kpis.dim1(); ++j) {
      const float* slice = kpis.Slice(i, j);
      for (int k = 0; k < l; ++k) {
        if (IsMissing(slice[k])) continue;
        sums[static_cast<size_t>(k)] += slice[k];
        sums_sq[static_cast<size_t>(k)] +=
            static_cast<double>(slice[k]) * slice[k];
        ++counts[static_cast<size_t>(k)];
      }
    }
  }
  for (int k = 0; k < l; ++k) {
    size_t ks = static_cast<size_t>(k);
    if (counts[ks] == 0) continue;
    double mean = sums[ks] / counts[ks];
    double var = sums_sq[ks] / counts[ks] - mean * mean;
    (*means)[ks] = mean;
    (*stds)[ks] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }
}

KpiImputer::KpiImputer(const ImputerConfig& config) : config_(config) {
  HOTSPOT_CHECK_GT(config.slice_hours, 0);
  HOTSPOT_CHECK_GT(config.batch_size, 0);
  HOTSPOT_CHECK_GT(config.epochs, 0);
  HOTSPOT_CHECK(config.corruption_fraction >= 0.0 &&
                config.corruption_fraction <= 1.0);
}

void KpiImputer::BuildSliceRows(const Tensor3<float>& kpis, int sector,
                                int slice, double corruption_fraction,
                                Rng* rng, std::vector<float>* corrupted,
                                std::vector<float>* target,
                                std::vector<float>* mask) const {
  const int l = kpis.dim2();
  const int hours = config_.slice_hours;
  const int start = slice * hours;
  const size_t dim = static_cast<size_t>(hours) * static_cast<size_t>(l);
  corrupted->assign(dim, 0.0f);
  target->assign(dim, 0.0f);
  mask->assign(dim, 0.0f);

  // Normalized clean target + observation mask. Missing targets stay 0
  // (they are masked out of the loss anyway).
  for (int h = 0; h < hours; ++h) {
    const float* src = kpis.Slice(sector, start + h);
    for (int k = 0; k < l; ++k) {
      size_t idx = static_cast<size_t>(h) * l + k;
      if (IsMissing(src[k])) continue;
      (*target)[idx] = static_cast<float>(
          (src[k] - feature_means_[static_cast<size_t>(k)]) /
          feature_stds_[static_cast<size_t>(k)]);
      (*mask)[idx] = 1.0f;
    }
  }

  // Corruption plan: all missing cells are corrupted; additional observed
  // cells are corrupted until `corruption_fraction` of the slice is
  // covered (the paper corrupts "up to half of the slice size").
  std::vector<bool> corrupt(dim, false);
  size_t corrupt_count = 0;
  for (size_t idx = 0; idx < dim; ++idx) {
    if ((*mask)[idx] == 0.0f) {
      corrupt[idx] = true;
      ++corrupt_count;
    }
  }
  size_t budget =
      static_cast<size_t>(corruption_fraction * static_cast<double>(dim));
  while (corrupt_count < budget) {
    size_t idx = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(dim) - 1));
    if (corrupt[idx]) continue;
    corrupt[idx] = true;
    ++corrupt_count;
  }

  // Corrupted input: corrupted cells take "the first available previous
  // time sample" of the same KPI. A forward scan makes the substitution
  // propagate through runs; cells corrupted at the very start fall back to
  // 0 (the normalized mean).
  for (int k = 0; k < l; ++k) {
    float last = 0.0f;
    for (int h = 0; h < hours; ++h) {
      size_t idx = static_cast<size_t>(h) * l + k;
      if (corrupt[idx]) {
        (*corrupted)[idx] = last;
      } else {
        (*corrupted)[idx] = (*target)[idx];
        last = (*target)[idx];
      }
    }
  }
}

ImputerReport KpiImputer::Fit(const Tensor3<float>& kpis) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("imputer/fit");
  const int n = kpis.dim0();
  const int l = kpis.dim2();
  const int slices = kpis.dim1() / config_.slice_hours;
  HOTSPOT_CHECK_GT(n, 0);
  HOTSPOT_CHECK_GT(slices, 0);

  ComputeKpiNormalization(kpis, &feature_means_, &feature_stds_);

  AutoencoderConfig net_config;
  net_config.input_dim = config_.slice_hours * l;
  net_config.encoder_layers = config_.encoder_layers;
  net_config.learning_rate = config_.learning_rate;
  net_config.rms_decay = config_.rms_decay;
  net_config.seed = config_.seed;
  network_ = std::make_unique<DenoisingAutoencoder>(net_config);

  ImputerReport report;
  long long missing = 0;
  for (float v : kpis.data()) {
    if (IsMissing(v)) ++missing;
  }
  report.initial_missing_fraction =
      kpis.size() == 0 ? 0.0
                       : static_cast<double>(missing) /
                             static_cast<double>(kpis.size());

  Rng rng(config_.seed ^ 0xabcdef12345ull);
  // The paper's epoch = n*m_w/128 batches of 128 random slices.
  int batches_per_epoch =
      std::max(1, n * slices / config_.batch_size);
  const int dim = config_.slice_hours * l;
  std::vector<float> corrupted_row, target_row, mask_row;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (int b = 0; b < batches_per_epoch; ++b) {
      Matrix<float> corrupted(config_.batch_size, dim);
      Matrix<float> target(config_.batch_size, dim);
      Matrix<float> mask(config_.batch_size, dim);
      for (int r = 0; r < config_.batch_size; ++r) {
        int sector = static_cast<int>(rng.UniformInt(0, n - 1));
        int slice = static_cast<int>(rng.UniformInt(0, slices - 1));
        BuildSliceRows(kpis, sector, slice, config_.corruption_fraction,
                       &rng, &corrupted_row, &target_row, &mask_row);
        std::copy(corrupted_row.begin(), corrupted_row.end(),
                  corrupted.Row(r));
        std::copy(target_row.begin(), target_row.end(), target.Row(r));
        std::copy(mask_row.begin(), mask_row.end(), mask.Row(r));
      }
      epoch_loss += network_->TrainBatch(corrupted, target, mask);
    }
    epoch_loss /= batches_per_epoch;
    report.epoch_losses.push_back(epoch_loss);
    if (epoch == 0) report.first_epoch_loss = epoch_loss;
    report.final_epoch_loss = epoch_loss;
    if (ctx != nullptr) {
      ctx->metrics().counter("imputer/epochs").Increment();
      ctx->metrics().gauge("imputer/last_epoch_loss").Set(epoch_loss);
    }
  }
  if (ctx != nullptr) {
    ctx->metrics().gauge("imputer/initial_missing_fraction")
        .Set(report.initial_missing_fraction);
  }
  return report;
}

long long KpiImputer::Impute(Tensor3<float>* kpis) const {
  HOTSPOT_SPAN("imputer/impute");
  HOTSPOT_CHECK(kpis != nullptr);
  HOTSPOT_CHECK(network_ != nullptr);
  const int n = kpis->dim0();
  const int l = kpis->dim2();
  const int slices = kpis->dim1() / config_.slice_hours;
  const int dim = config_.slice_hours * l;
  HOTSPOT_CHECK_EQ(dim, network_->input_dim());

  long long filled = 0;
  std::vector<float> corrupted_row, target_row, mask_row;
  // Imputation is deterministic: no extra corruption beyond the real
  // missing cells, so the rng is only needed by the shared builder API.
  Rng rng(config_.seed ^ 0x5eed1234ull);
  for (int i = 0; i < n; ++i) {
    for (int s = 0; s < slices; ++s) {
      // Skip complete slices.
      bool has_missing = false;
      for (int h = s * config_.slice_hours;
           h < (s + 1) * config_.slice_hours && !has_missing; ++h) {
        const float* slice = kpis->Slice(i, h);
        for (int k = 0; k < l; ++k) {
          if (IsMissing(slice[k])) {
            has_missing = true;
            break;
          }
        }
      }
      if (!has_missing) continue;

      // Build the forward-filled input without extra corruption.
      BuildSliceRows(*kpis, i, s, /*corruption_fraction=*/0.0, &rng,
                     &corrupted_row, &target_row, &mask_row);

      Matrix<float> input(1, dim);
      std::copy(corrupted_row.begin(), corrupted_row.end(), input.Row(0));
      Matrix<float> reconstruction = network_->Reconstruct(input);

      for (int h = 0; h < config_.slice_hours; ++h) {
        float* dst = kpis->Slice(i, s * config_.slice_hours + h);
        for (int k = 0; k < l; ++k) {
          if (!IsMissing(dst[k])) continue;
          size_t idx = static_cast<size_t>(h) * l + k;
          double value =
              reconstruction.At(0, static_cast<int>(idx)) *
                  feature_stds_[static_cast<size_t>(k)] +
              feature_means_[static_cast<size_t>(k)];
          dst[k] = static_cast<float>(value);
          ++filled;
        }
      }
    }
  }
  // Any hours beyond the last full slice: forward-fill as a fallback.
  int tail_start = slices * config_.slice_hours;
  if (tail_start < kpis->dim1()) {
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < l; ++k) {
        float last = MissingValue();
        for (int j = 0; j < kpis->dim1(); ++j) {
          float& cell = kpis->At(i, j, k);
          if (!IsMissing(cell)) {
            last = cell;
          } else if (j >= tail_start && !IsMissing(last)) {
            cell = last;
            ++filled;
          }
        }
      }
    }
  }
  return filled;
}

ImputerReport KpiImputer::FitAndImpute(Tensor3<float>* kpis) {
  HOTSPOT_CHECK(kpis != nullptr);
  ImputerReport report = Fit(*kpis);
  report.imputed_cells = Impute(kpis);
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("imputer/imputed_cells")
        .Add(static_cast<uint64_t>(report.imputed_cells));
  }
  return report;
}

long long ImputeForwardFill(Tensor3<float>* kpis) {
  HOTSPOT_CHECK(kpis != nullptr);
  const int n = kpis->dim0();
  const int hours = kpis->dim1();
  const int l = kpis->dim2();
  // Per-feature mean for the all-missing-prefix fallback.
  std::vector<double> means, stds;
  ComputeKpiNormalization(*kpis, &means, &stds);

  long long filled = 0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < l; ++k) {
      float last = MissingValue();
      // Forward pass.
      for (int j = 0; j < hours; ++j) {
        float& cell = kpis->At(i, j, k);
        if (!IsMissing(cell)) {
          last = cell;
        } else if (!IsMissing(last)) {
          cell = last;
          ++filled;
        }
      }
      // Leading gap: fill backward from the first observation, then mean.
      for (int j = hours - 1; j >= 0; --j) {
        float& cell = kpis->At(i, j, k);
        if (!IsMissing(cell)) {
          last = cell;
        } else {
          cell = IsMissing(last)
                     ? static_cast<float>(means[static_cast<size_t>(k)])
                     : last;
          ++filled;
        }
      }
    }
  }
  return filled;
}

long long ImputeFeatureMean(Tensor3<float>* kpis) {
  HOTSPOT_CHECK(kpis != nullptr);
  std::vector<double> means, stds;
  ComputeKpiNormalization(*kpis, &means, &stds);
  long long filled = 0;
  const int l = kpis->dim2();
  for (int i = 0; i < kpis->dim0(); ++i) {
    for (int j = 0; j < kpis->dim1(); ++j) {
      float* slice = kpis->Slice(i, j);
      for (int k = 0; k < l; ++k) {
        if (!IsMissing(slice[k])) continue;
        slice[k] = static_cast<float>(means[static_cast<size_t>(k)]);
        ++filled;
      }
    }
  }
  return filled;
}

}  // namespace hotspot::nn
