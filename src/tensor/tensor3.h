#ifndef HOTSPOT_TENSOR_TENSOR3_H_
#define HOTSPOT_TENSOR_TENSOR3_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/logging.h"

namespace hotspot {

/// Dense three-dimensional tensor with the paper's axis convention:
///   dim0 = sector i, dim1 = time sample j, dim2 = feature/indicator k.
/// Storage is row-major in (i, j, k), so the k-axis is contiguous and a
/// (time, feature) slab of one sector is a contiguous block — the layout the
/// feature extractors and the autoencoder batcher want.
template <typename T>
class Tensor3 {
 public:
  Tensor3() = default;

  Tensor3(int dim0, int dim1, int dim2, T fill = T{})
      : dim0_(dim0), dim1_(dim1), dim2_(dim2),
        data_(static_cast<size_t>(dim0) * static_cast<size_t>(dim1) *
                  static_cast<size_t>(dim2),
              fill) {
    HOTSPOT_CHECK_GE(dim0, 0);
    HOTSPOT_CHECK_GE(dim1, 0);
    HOTSPOT_CHECK_GE(dim2, 0);
  }

  int dim0() const { return dim0_; }
  int dim1() const { return dim1_; }
  int dim2() const { return dim2_; }
  size_t size() const { return data_.size(); }

  T& operator()(int i, int j, int k) {
    HOTSPOT_CHECK(InBounds(i, j, k));
    return data_[Index(i, j, k)];
  }
  const T& operator()(int i, int j, int k) const {
    HOTSPOT_CHECK(InBounds(i, j, k));
    return data_[Index(i, j, k)];
  }

  /// Unchecked access for hot loops.
  T& At(int i, int j, int k) { return data_[Index(i, j, k)]; }
  const T& At(int i, int j, int k) const { return data_[Index(i, j, k)]; }

  /// Pointer to the contiguous feature vector of (sector i, time j).
  T* Slice(int i, int j) {
    HOTSPOT_CHECK(i >= 0 && i < dim0_ && j >= 0 && j < dim1_);
    return data_.data() + Index(i, j, 0);
  }
  const T* Slice(int i, int j) const {
    HOTSPOT_CHECK(i >= 0 && i < dim0_ && j >= 0 && j < dim1_);
    return data_.data() + Index(i, j, 0);
  }

  /// Copies the time series of (sector i, feature k) over [t0, t1).
  std::vector<T> TimeSeries(int i, int k, int t0, int t1) const {
    HOTSPOT_CHECK(t0 >= 0 && t1 <= dim1_ && t0 <= t1);
    std::vector<T> series(static_cast<size_t>(t1 - t0));
    for (int j = t0; j < t1; ++j) {
      series[static_cast<size_t>(j - t0)] = At(i, j, k);
    }
    return series;
  }

  /// Copies the (time, feature) slab of sector i over [t0, t1) into a
  /// (t1-t0) x dim2 matrix — the X_{i, a:b, :} slice of Eq. 6.
  Matrix<T> SectorSlab(int i, int t0, int t1) const {
    HOTSPOT_CHECK(i >= 0 && i < dim0_);
    HOTSPOT_CHECK(t0 >= 0 && t1 <= dim1_ && t0 <= t1);
    Matrix<T> slab(t1 - t0, dim2_);
    for (int j = t0; j < t1; ++j) {
      const T* src = Slice(i, j);
      T* dst = slab.Row(j - t0);
      for (int k = 0; k < dim2_; ++k) dst[k] = src[k];
    }
    return slab;
  }

  /// Extracts the full time series matrix of one feature: dim0 x dim1.
  Matrix<T> FeaturePlane(int k) const {
    HOTSPOT_CHECK(k >= 0 && k < dim2_);
    Matrix<T> plane(dim0_, dim1_);
    for (int i = 0; i < dim0_; ++i) {
      for (int j = 0; j < dim1_; ++j) plane.At(i, j) = At(i, j, k);
    }
    return plane;
  }

  /// Writes `plane` (dim0 x dim1) into feature k.
  void SetFeaturePlane(int k, const Matrix<T>& plane) {
    HOTSPOT_CHECK(k >= 0 && k < dim2_);
    HOTSPOT_CHECK_EQ(plane.rows(), dim0_);
    HOTSPOT_CHECK_EQ(plane.cols(), dim1_);
    for (int i = 0; i < dim0_; ++i) {
      for (int j = 0; j < dim1_; ++j) At(i, j, k) = plane.At(i, j);
    }
  }

  void Fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

 private:
  size_t Index(int i, int j, int k) const {
    return (static_cast<size_t>(i) * dim1_ + j) * dim2_ + k;
  }
  bool InBounds(int i, int j, int k) const {
    return i >= 0 && i < dim0_ && j >= 0 && j < dim1_ && k >= 0 && k < dim2_;
  }

  int dim0_ = 0;
  int dim1_ = 0;
  int dim2_ = 0;
  std::vector<T> data_;
};

}  // namespace hotspot

#endif  // HOTSPOT_TENSOR_TENSOR3_H_
