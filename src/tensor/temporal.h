#ifndef HOTSPOT_TENSOR_TEMPORAL_H_
#define HOTSPOT_TENSOR_TEMPORAL_H_

#include <vector>

#include "tensor/matrix.h"

namespace hotspot {

/// Temporal resolutions used throughout the paper (Sec. II-B): hourly,
/// daily and weekly integration periods.
enum class Resolution { kHourly, kDaily, kWeekly };

/// Integration length in hours for a resolution: δh=1, δd=24, δw=168.
int IntegrationHours(Resolution resolution);

/// Hours per day / days per week constants.
inline constexpr int kHoursPerDay = 24;
inline constexpr int kHoursPerWeek = 168;
inline constexpr int kDaysPerWeek = 7;

/// The paper's µ(x, y, z) (Eq. 3): the mean of z over the window of length
/// y that *precedes and includes* sample x, i.e. indices (x-y, x] in
/// half-open terms [x-y+1, x+1). Values outside [0, z.size()) are skipped;
/// NaN entries are skipped as well. Returns NaN when no valid sample exists.
double TrailingMean(int x, int y, const std::vector<float>& z);

/// Integrates an hourly score matrix (sectors x hours) into the requested
/// resolution (Eq. 2): output column j is the mean of the δ hours
/// [j*δ, (j+1)*δ). NaN entries are excluded from the mean; a window with no
/// valid samples yields NaN. Output has floor(hours/δ) columns.
Matrix<float> IntegrateScores(const Matrix<float>& hourly,
                              Resolution resolution);

/// Upsamples a coarse matrix along time by `factor` (the paper's U1):
/// output(:, j) = input(:, j / factor). Output has cols*factor columns.
Matrix<float> UpsampleTime(const Matrix<float>& coarse, int factor);

/// Brute-force upsampling of a vector by `factor` (used for calendar
/// signals with daily resolution).
std::vector<float> UpsampleVector(const std::vector<float>& coarse,
                                  int factor);

}  // namespace hotspot

#endif  // HOTSPOT_TENSOR_TEMPORAL_H_
