#ifndef HOTSPOT_TENSOR_MATRIX_H_
#define HOTSPOT_TENSOR_MATRIX_H_

#include <cmath>
#include <vector>

#include "util/logging.h"

namespace hotspot {

/// Dense row-major matrix. Rows usually index sectors and columns index
/// time samples (the paper's S, Y and C matrices).
///
/// Missing values are represented as quiet NaN for floating-point T; every
/// consumer in this library states its NaN policy explicitly.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(int rows, int cols, T fill = T{})
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    HOTSPOT_CHECK_GE(rows, 0);
    HOTSPOT_CHECK_GE(cols, 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  T& operator()(int r, int c) {
    HOTSPOT_CHECK(InBounds(r, c));
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  const T& operator()(int r, int c) const {
    HOTSPOT_CHECK(InBounds(r, c));
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Unchecked access for hot loops. Prefer operator() elsewhere.
  T& At(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  const T& At(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() elements).
  T* Row(int r) {
    HOTSPOT_CHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }
  const T* Row(int r) const {
    HOTSPOT_CHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row r into a vector.
  std::vector<T> RowVector(int r) const {
    const T* p = Row(r);
    return std::vector<T>(p, p + cols_);
  }

  /// Copies column c into a vector.
  std::vector<T> ColVector(int c) const {
    HOTSPOT_CHECK(c >= 0 && c < cols_);
    std::vector<T> column(static_cast<size_t>(rows_));
    for (int r = 0; r < rows_; ++r) column[static_cast<size_t>(r)] = At(r, c);
    return column;
  }

  void Fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

 private:
  bool InBounds(int r, int c) const {
    return r >= 0 && r < rows_ && c >= 0 && c < cols_;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// True when `value` represents a missing observation (NaN).
inline bool IsMissing(float value) { return std::isnan(value); }
inline bool IsMissing(double value) { return std::isnan(value); }

/// The canonical missing-value marker.
inline float MissingValue() { return std::nanf(""); }

}  // namespace hotspot

#endif  // HOTSPOT_TENSOR_MATRIX_H_
