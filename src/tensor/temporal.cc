#include "tensor/temporal.h"

#include <cmath>

#include "util/logging.h"

namespace hotspot {

int IntegrationHours(Resolution resolution) {
  switch (resolution) {
    case Resolution::kHourly:
      return 1;
    case Resolution::kDaily:
      return kHoursPerDay;
    case Resolution::kWeekly:
      return kHoursPerWeek;
  }
  return 1;
}

double TrailingMean(int x, int y, const std::vector<float>& z) {
  HOTSPOT_CHECK_GT(y, 0);
  double sum = 0.0;
  int count = 0;
  int lo = x - y + 1;
  int hi = x + 1;
  if (lo < 0) lo = 0;
  if (hi > static_cast<int>(z.size())) hi = static_cast<int>(z.size());
  for (int j = lo; j < hi; ++j) {
    float value = z[static_cast<size_t>(j)];
    if (IsMissing(value)) continue;
    sum += value;
    ++count;
  }
  if (count == 0) return std::nan("");
  return sum / count;
}

Matrix<float> IntegrateScores(const Matrix<float>& hourly,
                              Resolution resolution) {
  int delta = IntegrationHours(resolution);
  int out_cols = hourly.cols() / delta;
  Matrix<float> integrated(hourly.rows(), out_cols);
  for (int i = 0; i < hourly.rows(); ++i) {
    const float* row = hourly.Row(i);
    for (int j = 0; j < out_cols; ++j) {
      double sum = 0.0;
      int count = 0;
      for (int h = j * delta; h < (j + 1) * delta; ++h) {
        if (IsMissing(row[h])) continue;
        sum += row[h];
        ++count;
      }
      integrated.At(i, j) =
          count == 0 ? MissingValue() : static_cast<float>(sum / count);
    }
  }
  return integrated;
}

Matrix<float> UpsampleTime(const Matrix<float>& coarse, int factor) {
  HOTSPOT_CHECK_GT(factor, 0);
  Matrix<float> fine(coarse.rows(), coarse.cols() * factor);
  for (int i = 0; i < coarse.rows(); ++i) {
    const float* src = coarse.Row(i);
    float* dst = fine.Row(i);
    for (int j = 0; j < fine.cols(); ++j) dst[j] = src[j / factor];
  }
  return fine;
}

std::vector<float> UpsampleVector(const std::vector<float>& coarse,
                                  int factor) {
  HOTSPOT_CHECK_GT(factor, 0);
  std::vector<float> fine(coarse.size() * static_cast<size_t>(factor));
  for (size_t j = 0; j < fine.size(); ++j) {
    fine[j] = coarse[j / static_cast<size_t>(factor)];
  }
  return fine;
}

}  // namespace hotspot
