#include "stream/incremental_features.h"

#include <cstring>

#include "obs/pipeline_context.h"
#include "stats/percentile.h"
#include "util/logging.h"

namespace hotspot::stream {

void IncrementalFeatureEngine::Counters::Refresh() {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  if (ctx == context) return;
  context = ctx;
  if (ctx == nullptr) {
    rows = days = hot_days = weeks = feature_rows = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = ctx->metrics();
  rows = &metrics.counter("stream/rows_consumed");
  days = &metrics.counter("stream/days_finalized");
  hot_days = &metrics.counter("stream/hot_days");
  weeks = &metrics.counter("stream/weeks_finalized");
  feature_rows = &metrics.counter("stream/feature_rows_emitted");
}

IncrementalFeatureEngine::IncrementalFeatureEngine(
    const FeatureEngineConfig& config)
    : config_(config) {
  HOTSPOT_CHECK_GT(config_.num_sectors, 0);
  HOTSPOT_CHECK_GT(config_.num_kpis, 0);
  HOTSPOT_CHECK(config_.calendar != nullptr);
  HOTSPOT_CHECK_EQ(config_.calendar->cols(), 5);
  HOTSPOT_CHECK_EQ(config_.score.num_indicators(), config_.num_kpis);
  HOTSPOT_CHECK_GE(config_.history_weeks, 1);
  sectors_.resize(static_cast<size_t>(config_.num_sectors));
  const size_t l = static_cast<size_t>(config_.num_kpis);
  for (SectorState& state : sectors_) {
    state.week_values.assign(static_cast<size_t>(kHoursPerWeek) * l, 0.0f);
    state.week_scores.assign(static_cast<size_t>(kHoursPerWeek), 0.0f);
    state.feature_history.assign(static_cast<size_t>(history_hours()) *
                                     static_cast<size_t>(channels()),
                                 0.0f);
    state.label_history.assign(
        static_cast<size_t>(config_.history_weeks * kDaysPerWeek), 0.0f);
    state.recent_day_scores.assign(static_cast<size_t>(kRecentDays),
                                   MissingValue());
  }
}

void IncrementalFeatureEngine::Consume(int sector, int hour,
                                       const float* values, int num_kpis) {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  HOTSPOT_CHECK_EQ(num_kpis, config_.num_kpis);
  SectorState& state = sectors_[static_cast<size_t>(sector)];
  // In-order contract: the ingestor delivers hour 0, 1, 2, ... per sector.
  HOTSPOT_CHECK_EQ(hour, state.consumed_hours);
  HOTSPOT_CHECK_LT(hour, config_.calendar->rows());
  counters_.Refresh();

  const int l = config_.num_kpis;
  const int hour_of_week = hour % kHoursPerWeek;
  float* week_row = state.week_values.data() +
                    static_cast<size_t>(hour_of_week) *
                        static_cast<size_t>(l);
  std::memcpy(week_row, values, static_cast<size_t>(l) * sizeof(float));

  // Eq. 1 — the exact loop of ComputeHourlyScore, so the result is
  // bitwise what the batch path stores.
  double tripped = 0.0;
  double available = 0.0;
  for (int k = 0; k < l; ++k) {
    float value = values[k];
    if (IsMissing(value)) continue;
    const ScoreConfig::Indicator& indicator =
        config_.score.indicators[static_cast<size_t>(k)];
    available += indicator.weight;
    bool bad = indicator.higher_is_worse ? value > indicator.threshold
                                         : value < indicator.threshold;
    if (bad) tripped += indicator.weight;
  }
  state.week_scores[static_cast<size_t>(hour_of_week)] =
      available > 0.0 ? static_cast<float>(tripped / available)
                      : MissingValue();

  state.consumed_hours = hour + 1;
  if (counters_.rows != nullptr) counters_.rows->Increment();
  if (state.consumed_hours % kHoursPerDay == 0) {
    CloseDay(sector, &state, hour / kHoursPerDay);
  }
  if (state.consumed_hours % kHoursPerWeek == 0) {
    CloseWeek(sector, &state, hour / kHoursPerWeek);
  }
}

void IncrementalFeatureEngine::CloseDay(int sector, SectorState* state,
                                        int day) {
  (void)sector;
  const int day_of_week = day % kDaysPerWeek;
  // Eq. 2 at daily resolution — IntegrateScores' loop verbatim: double
  // accumulation over the day's 24 hourly scores in hour order, NaNs
  // skipped, empty day -> NaN.
  double sum = 0.0;
  int count = 0;
  const float* scores = state->week_scores.data() +
                        static_cast<size_t>(day_of_week) * kHoursPerDay;
  for (int h = 0; h < kHoursPerDay; ++h) {
    if (IsMissing(scores[h])) continue;
    sum += scores[h];
    ++count;
  }
  const float day_score =
      count == 0 ? MissingValue() : static_cast<float>(sum / count);
  // Eq. 4 — HotSpotLabels' cut, float score against double ε.
  const float label =
      (!IsMissing(day_score) && day_score >= config_.score.hot_threshold)
          ? 1.0f
          : 0.0f;
  state->day_scores[day_of_week] = day_score;
  state->day_labels[day_of_week] = label;
  state->label_history[static_cast<size_t>(
      day % (config_.history_weeks * kDaysPerWeek))] = label;
  state->recent_day_scores[static_cast<size_t>(day % kRecentDays)] =
      day_score;
  state->hot_day_run = label != 0.0f ? state->hot_day_run + 1 : 0;
  state->closed_days = day + 1;
  if (counters_.days != nullptr) counters_.days->Increment();
  if (label != 0.0f && counters_.hot_days != nullptr) {
    counters_.hot_days->Increment();
  }
}

void IncrementalFeatureEngine::CloseWeek(int sector, SectorState* state,
                                         int week) {
  // Eq. 2 at weekly resolution, again in batch hour order.
  double sum = 0.0;
  int count = 0;
  for (int h = 0; h < kHoursPerWeek; ++h) {
    const float score = state->week_scores[static_cast<size_t>(h)];
    if (IsMissing(score)) continue;
    sum += score;
    ++count;
  }
  const float week_score =
      count == 0 ? MissingValue() : static_cast<float>(sum / count);

  // Emit the week's 168 now-final feature rows, laid out exactly like the
  // batch tensor's (sector, hour) slices: KPIs ‖ calendar ‖ S^h ‖ up(S^d)
  // ‖ up(S^w) ‖ up(Y^d).
  const int l = config_.num_kpis;
  const int ch = channels();
  for (int h = 0; h < kHoursPerWeek; ++h) {
    const int hour = week * kHoursPerWeek + h;
    float* row = state->feature_history.data() +
                 static_cast<size_t>(hour % history_hours()) *
                     static_cast<size_t>(ch);
    const float* kpi = state->week_values.data() +
                       static_cast<size_t>(h) * static_cast<size_t>(l);
    int c = 0;
    for (int k = 0; k < l; ++k) row[c++] = kpi[k];
    const float* cal = config_.calendar->Row(hour);
    for (int k = 0; k < 5; ++k) row[c++] = cal[k];
    row[c++] = state->week_scores[static_cast<size_t>(h)];
    row[c++] = state->day_scores[h / kHoursPerDay];
    row[c++] = week_score;
    row[c++] = state->day_labels[h / kHoursPerDay];
    if (row_sink_ != nullptr) row_sink_(sector, hour, row, ch);
  }
  state->finalized_hours = (week + 1) * kHoursPerWeek;
  if (counters_.weeks != nullptr) counters_.weeks->Increment();
  if (counters_.feature_rows != nullptr) {
    counters_.feature_rows->Add(kHoursPerWeek);
  }
}

int IncrementalFeatureEngine::finalized_hours(int sector) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  return sectors_[static_cast<size_t>(sector)].finalized_hours;
}

int IncrementalFeatureEngine::min_finalized_hours() const {
  int min_hours = sectors_.empty() ? 0 : sectors_[0].finalized_hours;
  for (const SectorState& state : sectors_) {
    if (state.finalized_hours < min_hours) min_hours = state.finalized_hours;
  }
  return min_hours;
}

int IncrementalFeatureEngine::closed_days(int sector) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  return sectors_[static_cast<size_t>(sector)].closed_days;
}

int IncrementalFeatureEngine::min_closed_days() const {
  int min_days = sectors_.empty() ? 0 : sectors_[0].closed_days;
  for (const SectorState& state : sectors_) {
    if (state.closed_days < min_days) min_days = state.closed_days;
  }
  return min_days;
}

float IncrementalFeatureEngine::DailyLabel(int sector, int day) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  const SectorState& state = sectors_[static_cast<size_t>(sector)];
  const int history_days = config_.history_weeks * kDaysPerWeek;
  HOTSPOT_CHECK(day >= 0 && day < state.closed_days);
  HOTSPOT_CHECK_GT(day + history_days, state.closed_days - 1);
  return state.label_history[static_cast<size_t>(day % history_days)];
}

void IncrementalFeatureEngine::CopyFeatureRows(int sector, int first_hour,
                                               int num_hours,
                                               float* dst) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  HOTSPOT_CHECK(dst != nullptr);
  const SectorState& state = sectors_[static_cast<size_t>(sector)];
  HOTSPOT_CHECK_GE(first_hour, 0);
  HOTSPOT_CHECK_LE(first_hour + num_hours, state.finalized_hours);
  HOTSPOT_CHECK_GE(first_hour, state.finalized_hours - history_hours());
  const size_t ch = static_cast<size_t>(channels());
  for (int h = 0; h < num_hours; ++h) {
    const float* src = state.feature_history.data() +
                       static_cast<size_t>((first_hour + h) %
                                           history_hours()) *
                           ch;
    std::memcpy(dst + static_cast<size_t>(h) * ch, src,
                ch * sizeof(float));
  }
}

SectorStreamState IncrementalFeatureEngine::State(int sector) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  const SectorState& state = sectors_[static_cast<size_t>(sector)];
  SectorStreamState out;
  out.consumed_hours = state.consumed_hours;
  out.closed_days = state.closed_days;
  out.finalized_hours = state.finalized_hours;
  out.hot_day_run = state.hot_day_run;
  const int recent = state.closed_days < kRecentDays ? state.closed_days
                                                     : kRecentDays;
  std::vector<float> scores;
  scores.reserve(static_cast<size_t>(recent));
  for (int day = state.closed_days - recent; day < state.closed_days;
       ++day) {
    scores.push_back(
        state.recent_day_scores[static_cast<size_t>(day % kRecentDays)]);
  }
  out.week_score_sum = 0.0;
  const int week_days = recent < kDaysPerWeek ? recent : kDaysPerWeek;
  for (size_t i = scores.size() - static_cast<size_t>(week_days);
       i < scores.size(); ++i) {
    if (!IsMissing(scores[i])) out.week_score_sum += scores[i];
  }
  std::vector<double> percentiles = Percentiles(scores, {50.0, 95.0});
  out.day_score_p50 = percentiles[0];
  out.day_score_p95 = percentiles[1];
  return out;
}

}  // namespace hotspot::stream
