#ifndef HOTSPOT_STREAM_INCREMENTAL_FEATURES_H_
#define HOTSPOT_STREAM_INCREMENTAL_FEATURES_H_

#include <functional>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "stream/kpi_stream.h"
#include "tensor/matrix.h"
#include "tensor/temporal.h"

namespace hotspot::stream {

/// Configuration of the incremental feature engine.
struct FeatureEngineConfig {
  int num_sectors = 0;
  int num_kpis = 0;
  /// The enriched calendar matrix C (hours x 5) covering every hour the
  /// stream will reach — the same matrix the batch FeatureTensor consumes
  /// (simnet::StudyCalendar::BuildCalendarMatrix). Not owned; must outlive
  /// the engine.
  const Matrix<float>* calendar = nullptr;
  /// Operator scoring config: Eq. 1 indicators plus the hot threshold ε
  /// the daily labels are cut at.
  ScoreConfig score;
  /// Finalized feature rows (and daily labels) retained per sector, in
  /// weeks. Must cover the serving window plus at least one week of slack
  /// (ServingPipeline checks).
  int history_weeks = 8;
};

/// Per-sector rolling summary the engine maintains as a byproduct of
/// ingestion — window sums, run lengths and recent-score percentiles, the
/// streaming analogues of the paper's Figs. 6/7 batch statistics.
struct SectorStreamState {
  int consumed_hours = 0;   ///< rows applied (in-order frontier)
  int closed_days = 0;      ///< days whose score/label are final
  int finalized_hours = 0;  ///< hours with emitted feature rows (week multiples)
  int hot_day_run = 0;      ///< consecutive closed days with label 1
  double week_score_sum = 0.0;  ///< sum of the last <=7 closed daily scores
  double day_score_p50 = 0.0;   ///< percentiles of the last <=28 closed
  double day_score_p95 = 0.0;   ///< daily scores (NaN while no day closed)
};

/// Receives each finalized feature row: `row` has `channels` floats laid
/// out exactly like one (sector, hour) slice of the batch FeatureTensor.
/// Valid only for the duration of the call.
using FeatureRowSink = std::function<void(int sector, int hour,
                                          const float* row, int channels)>;

/// Incremental replacement for the batch score → label → FeatureTensor
/// pipeline: consumes in-order per-sector KPI rows (the KpiStreamIngestor
/// sink contract) and maintains rolling state — the current week's KPI
/// ring and hourly scores, per-day sums, run lengths and recent-score
/// percentiles — so each row costs O(l) amortized, with no offline
/// rebuild.
///
/// Equivalence guarantee: for in-order complete data the emitted feature
/// rows are bitwise-identical to the batch path
/// (ComputeScores → HotSpotLabels → features::FeatureTensor::Build over
/// the same KPI tensor, calendar and ScoreConfig), because every
/// accumulation runs the batch loops' exact order and arithmetic (double
/// accumulators over float samples, NaNs skipped). Locked down by
/// tests/stream_test.cc over a multi-week trace.
///
/// Rows finalize when their week closes: the feature layout carries the
/// enclosing day's and week's integrated scores (Eq. 2 upsampling), so an
/// hour's vector is only final once hour 167 of its week has been
/// consumed. Finalized rows land in a bounded per-sector history ring
/// (history_weeks) that the serving runner cuts prediction windows from.
///
/// Single-writer, like the ingestor. Reads (CopyFeatureRows, State) are
/// safe from other threads only while no Consume is running — the pattern
/// the runner's fan-out uses.
class IncrementalFeatureEngine {
 public:
  explicit IncrementalFeatureEngine(const FeatureEngineConfig& config);

  IncrementalFeatureEngine(const IncrementalFeatureEngine&) = delete;
  IncrementalFeatureEngine& operator=(const IncrementalFeatureEngine&) =
      delete;

  /// Optional per-row tap, e.g. for tests or downstream fan-out. Called
  /// under the Consume thread.
  void set_row_sink(FeatureRowSink sink) { row_sink_ = std::move(sink); }

  /// Applies one in-order row (hour must equal the sector's consumed
  /// frontier; the ingestor guarantees this). NaN values mark missing
  /// readings.
  void Consume(int sector, int hour, const float* values, int num_kpis);

  /// Adapter: the KpiRowSink that feeds this engine.
  KpiRowSink IngestorSink() {
    return [this](int sector, int hour, const float* values, int num_kpis) {
      Consume(sector, hour, values, num_kpis);
    };
  }

  /// Feature channels per row: l KPIs + 5 calendar + 3 scores + 1 label.
  int channels() const { return config_.num_kpis + 5 + 3 + 1; }
  int history_hours() const {
    return config_.history_weeks * kHoursPerWeek;
  }

  int finalized_hours(int sector) const;
  /// Slowest sector's finalized frontier — the stream-wide hour up to
  /// which prediction windows can be cut for every sector.
  int min_finalized_hours() const;
  int closed_days(int sector) const;
  int min_closed_days() const;

  /// Daily hot-spot label of a closed day still inside the retention
  /// window (Eq. 4 on the day's integrated score).
  float DailyLabel(int sector, int day) const;

  /// Copies `num_hours` finalized feature rows starting at `first_hour`
  /// into `dst` (num_hours x channels, row-major — one sector slab of the
  /// batch tensor). The span must be finalized and within history.
  void CopyFeatureRows(int sector, int first_hour, int num_hours,
                       float* dst) const;

  /// Rolling summary of one sector (cheap; percentiles sort <=28 values).
  SectorStreamState State(int sector) const;

  double epsilon() const { return config_.score.hot_threshold; }
  const FeatureEngineConfig& config() const { return config_; }

 private:
  struct SectorState {
    std::vector<float> week_values;  ///< current week's KPIs, 168 x l
    std::vector<float> week_scores;  ///< current week's hourly scores, 168
    float day_scores[kDaysPerWeek];  ///< closed days of the current week
    float day_labels[kDaysPerWeek];
    std::vector<float> feature_history;  ///< history_hours x channels ring
    std::vector<float> label_history;    ///< history_days daily-label ring
    std::vector<float> recent_day_scores;  ///< last kRecentDays scores ring
    int consumed_hours = 0;
    int closed_days = 0;
    int finalized_hours = 0;
    int hot_day_run = 0;
  };

  struct Counters {
    void Refresh();
    obs::Counter* rows = nullptr;
    obs::Counter* days = nullptr;
    obs::Counter* hot_days = nullptr;
    obs::Counter* weeks = nullptr;
    obs::Counter* feature_rows = nullptr;
    const void* context = nullptr;
  };

  /// Daily-score percentile window (four weeks, matching the drift
  /// monitor's blending horizon).
  static constexpr int kRecentDays = 28;

  void CloseDay(int sector, SectorState* state, int day);
  void CloseWeek(int sector, SectorState* state, int week);

  FeatureEngineConfig config_;
  FeatureRowSink row_sink_;
  std::vector<SectorState> sectors_;
  Counters counters_;
};

}  // namespace hotspot::stream

#endif  // HOTSPOT_STREAM_INCREMENTAL_FEATURES_H_
