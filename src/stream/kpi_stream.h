#ifndef HOTSPOT_STREAM_KPI_STREAM_H_
#define HOTSPOT_STREAM_KPI_STREAM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/csv_io.h"
#include "obs/metrics.h"
#include "tensor/temporal.h"

namespace hotspot::stream {

/// Callback receiving finalized rows in strict per-sector hour order
/// (hour 0, 1, 2, ... with no holes). `values` points at `num_kpis`
/// floats valid only for the duration of the call; NaN marks a missing
/// KPI reading. Synthesized gap rows (see IngestorConfig) arrive here as
/// all-NaN vectors, indistinguishable from an operator row whose every
/// KPI was missing — exactly how the batch pipeline treats such hours.
using KpiRowSink =
    std::function<void(int sector, int hour, const float* values,
                       int num_kpis)>;

/// Policy knobs of the ingestor. Memory is bounded by
/// num_sectors x ring_hours x num_kpis floats.
struct IngestorConfig {
  int num_sectors = 0;
  int num_kpis = 0;
  /// Late-arrival window: a row for hour h is still accepted while
  /// h + watermark_hours >= max hour seen for that sector. Once the
  /// sector's stream has advanced further, the hour is finalized — as the
  /// buffered row if one arrived, as an all-NaN gap row otherwise — and
  /// any row for it that shows up afterwards is dropped and counted.
  int watermark_hours = kHoursPerDay;
  /// Per-sector reorder ring capacity in hours; must be strictly greater
  /// than watermark_hours (the watermark advance keeps occupancy at or
  /// below watermark_hours + 1 slots).
  int ring_hours = 2 * kHoursPerDay;
};

/// What happened to one pushed row.
enum class PushResult {
  kAccepted,   ///< buffered (and possibly flushed) in order
  kDuplicate,  ///< a row for this (sector, hour) is already buffered
  kLate,       ///< hour already finalized (flushed or gap-filled) — dropped
  kRejected,   ///< malformed: sector/hour out of range or wrong KPI count
};

const char* PushResultName(PushResult result);

/// Streaming front door of the serving pipeline: accepts hourly KPI rows
/// (sector id, hour, l-KPI vector, NaN-maskable) in whatever order the
/// transport delivers them, and emits them to the sink in strict per-
/// sector hour order with an explicit out-of-order / late-arrival policy:
///
///   * rows within the watermark window are buffered in a bounded
///     per-sector ring and released as soon as the contiguous prefix
///     fills in;
///   * duplicate (sector, hour) rows are first-wins dropped;
///   * rows older than the watermark are dropped;
///   * hours the watermark passes without a row are synthesized as
///     all-NaN gap rows so one straggler sector cannot stall the stream.
///
/// Everything is surfaced via `stream/rows_*` counters in the installed
/// obs::PipelineContext (null context = counting off, behavior
/// unchanged). Single-writer: Push/Flush must come from one thread at a
/// time; the downstream feature engine shares that contract.
class KpiStreamIngestor {
 public:
  KpiStreamIngestor(const IngestorConfig& config, KpiRowSink sink);

  KpiStreamIngestor(const KpiStreamIngestor&) = delete;
  KpiStreamIngestor& operator=(const KpiStreamIngestor&) = delete;

  /// Offers one row. `values` must hold config().num_kpis floats (checked
  /// against `num_kpis`; a mismatch is kRejected, not fatal — transports
  /// carry malformed rows).
  PushResult Push(int sector, int hour, const float* values, int num_kpis);
  PushResult Push(int sector, int hour, const std::vector<float>& values) {
    return Push(sector, hour, values.data(),
                static_cast<int>(values.size()));
  }

  /// End-of-stream: finalizes everything still buffered (gap-filling
  /// interior holes) so the last watermark window reaches the sink.
  void Flush();

  /// Hours already handed to the sink for `sector` (the sector's
  /// finalized frontier: hours [0, FlushedHours) are done).
  int FlushedHours(int sector) const;

  const IngestorConfig& config() const { return config_; }

 private:
  struct SectorState {
    std::vector<float> ring;     ///< ring_hours x num_kpis values
    std::vector<uint8_t> filled; ///< ring_hours occupancy flags
    int next_flush = 0;          ///< first hour not yet emitted
    int max_seen = -1;           ///< newest accepted hour
  };

  /// Cached counter handles, re-resolved when the installed context
  /// changes; Push is too hot for a name lookup per row.
  struct Counters {
    void Refresh();
    obs::Counter* offered = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* reordered = nullptr;
    obs::Counter* duplicate = nullptr;
    obs::Counter* late = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* gap_filled = nullptr;
    const void* context = nullptr;
  };

  /// Emits finalized hours of `state`: the filled contiguous prefix
  /// always; unfilled hours too once the watermark passes them (or
  /// unconditionally up to max_seen when `to_end`).
  void Advance(int sector, SectorState* state, bool to_end);

  IngestorConfig config_;
  KpiRowSink sink_;
  std::vector<SectorState> sectors_;
  std::vector<float> gap_row_;  ///< reusable all-NaN row
  Counters counters_;
};

/// Streams a long-form KPI CSV (io::KpiCsvStreamReader) into `ingestor`,
/// row by row — the file-fed variant of a live transport. Does not Flush:
/// callers append more sources first if they have them. The file's KPI
/// column count must match the ingestor's config. Returns the first read
/// error, if any.
io::IoStatus IngestKpiCsv(const std::string& path,
                          KpiStreamIngestor* ingestor);

}  // namespace hotspot::stream

#endif  // HOTSPOT_STREAM_KPI_STREAM_H_
