#include "stream/kpi_stream.h"

#include "obs/pipeline_context.h"
#include "obs/trace.h"
#include "tensor/matrix.h"
#include "util/logging.h"

namespace hotspot::stream {

const char* PushResultName(PushResult result) {
  switch (result) {
    case PushResult::kAccepted:
      return "accepted";
    case PushResult::kDuplicate:
      return "duplicate";
    case PushResult::kLate:
      return "late";
    case PushResult::kRejected:
      return "rejected";
  }
  return "unknown";
}

void KpiStreamIngestor::Counters::Refresh() {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  if (ctx == context) return;
  context = ctx;
  if (ctx == nullptr) {
    offered = accepted = reordered = duplicate = late = rejected =
        gap_filled = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = ctx->metrics();
  offered = &metrics.counter("stream/rows_offered");
  accepted = &metrics.counter("stream/rows_accepted");
  reordered = &metrics.counter("stream/rows_reordered");
  duplicate = &metrics.counter("stream/rows_duplicate_dropped");
  late = &metrics.counter("stream/rows_late_dropped");
  rejected = &metrics.counter("stream/rows_rejected");
  gap_filled = &metrics.counter("stream/rows_gap_filled");
}

KpiStreamIngestor::KpiStreamIngestor(const IngestorConfig& config,
                                     KpiRowSink sink)
    : config_(config), sink_(std::move(sink)) {
  HOTSPOT_CHECK_GT(config_.num_sectors, 0);
  HOTSPOT_CHECK_GT(config_.num_kpis, 0);
  HOTSPOT_CHECK_GE(config_.watermark_hours, 0);
  HOTSPOT_CHECK_GT(config_.ring_hours, config_.watermark_hours);
  HOTSPOT_CHECK(sink_ != nullptr);
  sectors_.resize(static_cast<size_t>(config_.num_sectors));
  for (SectorState& state : sectors_) {
    state.ring.assign(static_cast<size_t>(config_.ring_hours) *
                          static_cast<size_t>(config_.num_kpis),
                      0.0f);
    state.filled.assign(static_cast<size_t>(config_.ring_hours), 0);
  }
  gap_row_.assign(static_cast<size_t>(config_.num_kpis), MissingValue());
}

void KpiStreamIngestor::Advance(int sector, SectorState* state,
                                bool to_end) {
  const int horizon =
      to_end ? state->max_seen : state->max_seen - config_.watermark_hours;
  while (true) {
    const size_t slot = static_cast<size_t>(
        state->next_flush % config_.ring_hours);
    if (state->filled[slot]) {
      sink_(sector, state->next_flush,
            state->ring.data() + slot * static_cast<size_t>(config_.num_kpis),
            config_.num_kpis);
      state->filled[slot] = 0;
    } else if (state->next_flush < horizon) {
      // The watermark passed an hour no row arrived for: finalize it as
      // all-missing so one straggler cannot stall the sector forever.
      sink_(sector, state->next_flush, gap_row_.data(), config_.num_kpis);
      if (counters_.gap_filled != nullptr) counters_.gap_filled->Increment();
    } else {
      break;
    }
    ++state->next_flush;
  }
}

PushResult KpiStreamIngestor::Push(int sector, int hour, const float* values,
                                   int num_kpis) {
  counters_.Refresh();
  if (counters_.offered != nullptr) counters_.offered->Increment();
  if (sector < 0 || sector >= config_.num_sectors || hour < 0 ||
      num_kpis != config_.num_kpis || values == nullptr) {
    if (counters_.rejected != nullptr) counters_.rejected->Increment();
    return PushResult::kRejected;
  }
  SectorState& state = sectors_[static_cast<size_t>(sector)];
  if (hour < state.next_flush) {
    // Already finalized — a duplicate of a flushed row or a row beyond
    // the watermark; either way it cannot be applied in order anymore.
    if (counters_.late != nullptr) counters_.late->Increment();
    return PushResult::kLate;
  }
  if (hour > state.max_seen) {
    // A forward jump may strand hours beyond the ring; move the watermark
    // frontier first so occupancy stays within watermark_hours + 1.
    state.max_seen = hour;
    Advance(sector, &state, /*to_end=*/false);
  } else if (counters_.reordered != nullptr) {
    counters_.reordered->Increment();
  }
  const size_t slot = static_cast<size_t>(hour % config_.ring_hours);
  if (state.filled[slot]) {
    if (counters_.duplicate != nullptr) counters_.duplicate->Increment();
    return PushResult::kDuplicate;  // first row wins
  }
  float* dst =
      state.ring.data() + slot * static_cast<size_t>(config_.num_kpis);
  for (int k = 0; k < config_.num_kpis; ++k) dst[k] = values[k];
  state.filled[slot] = 1;
  if (counters_.accepted != nullptr) counters_.accepted->Increment();
  Advance(sector, &state, /*to_end=*/false);
  return PushResult::kAccepted;
}

void KpiStreamIngestor::Flush() {
  counters_.Refresh();
  for (int i = 0; i < config_.num_sectors; ++i) {
    Advance(i, &sectors_[static_cast<size_t>(i)], /*to_end=*/true);
  }
}

int KpiStreamIngestor::FlushedHours(int sector) const {
  HOTSPOT_CHECK(sector >= 0 && sector < config_.num_sectors);
  return sectors_[static_cast<size_t>(sector)].next_flush;
}

io::IoStatus IngestKpiCsv(const std::string& path,
                          KpiStreamIngestor* ingestor) {
  HOTSPOT_CHECK(ingestor != nullptr);
  HOTSPOT_SPAN("stream/ingest_csv");
  io::KpiCsvStreamReader reader;
  io::IoStatus status = reader.Open(path);
  if (!status.ok) return status;
  if (reader.num_kpis() != ingestor->config().num_kpis) {
    return io::IoStatus::Error(
        path + ": " + std::to_string(reader.num_kpis()) +
        " KPI columns, ingestor expects " +
        std::to_string(ingestor->config().num_kpis));
  }
  int sector = 0;
  int hour = 0;
  std::vector<float> values;
  while (reader.Next(&sector, &hour, &values)) {
    ingestor->Push(sector, hour, values);
  }
  return reader.status();
}

}  // namespace hotspot::stream
