#include "pipeline/serving_pipeline.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/pipeline_context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace hotspot::pipeline {

namespace {

/// Min-merge of ingress stamps, 0-aware (0 = unstamped, never wins).
void MergeBorn(uint64_t* dst, uint64_t src) {
  if (src != 0 && (*dst == 0 || src < *dst)) *dst = src;
}

}  // namespace

void ServingPipeline::Counters::Refresh() {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  if (ctx == context) return;
  context = ctx;
  if (ctx == nullptr) {
    rows_offered = nullptr;
    rows_rejected = nullptr;
    prediction_batches = nullptr;
    predictions = nullptr;
    outcomes_recorded = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = ctx->metrics();
  rows_offered = &metrics.counter("stream/rows_offered");
  rows_rejected = &metrics.counter("stream/rows_rejected");
  prediction_batches = &metrics.counter("stream/prediction_batches");
  predictions = &metrics.counter("stream/predictions");
  outcomes_recorded = &metrics.counter("stream/outcomes_recorded");
}

ServingPipeline::ServingPipeline(ForecastService* service,
                                 const Options& options)
    : service_(service),
      options_(options),
      raw_queue_(std::max(1, options.row_queue_blocks)),
      ordered_queue_(std::max(1, options.row_queue_blocks)),
      predict_queue_(std::max(1, options.predict_queue_capacity)),
      scored_queue_(std::max(1, options.scored_queue_capacity)) {
  HOTSPOT_CHECK(service_ != nullptr);
  HOTSPOT_CHECK_GT(options_.num_sectors, 0);
  HOTSPOT_CHECK_GT(options_.num_kpis, 0);
  HOTSPOT_CHECK(options_.calendar != nullptr);
  HOTSPOT_CHECK_GE(options_.row_block_rows, 1);
  window_hours_ = service_->window_hours();
  horizon_days_ = service_->horizon_days();

  // Options are the primary engine/kernel/monitoring API; the env knobs
  // only seeded the service's defaults before we got here.
  if (options_.predict_engine.has_value()) {
    service_->set_predict_engine(*options_.predict_engine);
  }
  if (options_.flat_kernel.has_value()) {
    service_->set_flat_kernel(*options_.flat_kernel);
  }
  if (options_.disable_monitoring) {
    service_->DisableMonitoring();
  } else if (options_.monitor.has_value()) {
    service_->EnableMonitoring(*options_.monitor);
  }

  stream::FeatureEngineConfig feature_config;
  feature_config.num_sectors = options_.num_sectors;
  feature_config.num_kpis = options_.num_kpis;
  feature_config.calendar = options_.calendar;
  feature_config.score =
      options_.score.value_or(service_->bundle_snapshot()->score);
  feature_config.history_weeks = options_.history_weeks;
  engine_ =
      std::make_unique<stream::IncrementalFeatureEngine>(feature_config);
  HOTSPOT_CHECK_EQ(engine_->channels(), service_->num_channels());
  if (options_.feature_row_tap) {
    engine_->set_row_sink(options_.feature_row_tap);
  }
  // A window must still be in history when its end-day becomes servable;
  // the frontier can run up to one week past the last served day, so
  // retention needs the window plus that slack (the runner's check).
  HOTSPOT_CHECK_GE(engine_->history_hours(),
                   window_hours_ + kHoursPerWeek);

  stream::IngestorConfig ingest_config;
  ingest_config.num_sectors = options_.num_sectors;
  ingest_config.num_kpis = options_.num_kpis;
  ingest_config.watermark_hours = options_.watermark_hours;
  ingest_config.ring_hours = options_.ring_hours;
  ingestor_ = std::make_unique<stream::KpiStreamIngestor>(
      ingest_config,
      [this](int sector, int hour, const float* values, int num_kpis) {
        ordered_block_.sectors.push_back(sector);
        ordered_block_.hours.push_back(hour);
        ordered_block_.values.insert(ordered_block_.values.end(), values,
                                     values + num_kpis);
        ordered_block_.num_kpis = num_kpis;
        // The row emerging from the reorder window came from the raw
        // block being unpacked right now (or from an earlier one the
        // ingestor buffered — either way current block's stamp is an
        // upper bound, and min-merge keeps the oldest).
        MergeBorn(&ordered_block_.born_ns, current_raw_born_ns_);
        if (ordered_block_.rows() >= options_.row_block_rows) {
          FlushOrderedBlock();
        }
      });

  input_block_.num_kpis = options_.num_kpis;
  next_end_day_.store(service_->window_days(), std::memory_order_relaxed);
  next_outcome_day_ = service_->window_days() + horizon_days_;

  // Each stage reads its item's ingress stamp through a trace extractor
  // (the Stage template cannot know the item layouts), feeding the
  // pipeline/stageK/residency_seconds histograms: cumulative time from
  // serving-stack ingress to each stage boundary, exemplar-tagged with
  // the block's row count or the batch's end-day.
  ingest_stage_ = std::make_unique<Stage<RowBlock>>(
      "ingest", /*index=*/0, &raw_queue_,
      [this](RowBlock&& block) { return IngestBlock(std::move(block)); },
      [this] {
        // End-of-stream: finalize the last watermark window (gap-filling
        // interior holes), ship the partial block, close downstream.
        ingestor_->Flush();
        FlushOrderedBlock();
        ordered_queue_.Close();
      },
      [](const RowBlock& block) {
        return StageTrace{block.born_ns, block.rows()};
      });
  features_stage_ = std::make_unique<Stage<RowBlock>>(
      "features", /*index=*/1, &ordered_queue_,
      [this](RowBlock&& block) { return ConsumeBlock(std::move(block)); },
      [this] {
        ServeReady();  // flush-finalized rows may have opened new batches
        predict_queue_.Close();
      },
      [](const RowBlock& block) {
        return StageTrace{block.born_ns, block.rows()};
      });
  predict_stage_ = std::make_unique<Stage<FeatureWork>>(
      "predict", /*index=*/2, &predict_queue_,
      [this](FeatureWork&& work) { return PredictWork(std::move(work)); },
      [this] { scored_queue_.Close(); },
      [](const FeatureWork& work) {
        return StageTrace{work.born_ns, work.end_day};
      });
  monitor_stage_ = std::make_unique<Stage<ScoredWork>>(
      "monitor", /*index=*/3, &scored_queue_,
      [this](ScoredWork&& work) { return DeliverWork(std::move(work)); },
      [] {},
      [](const ScoredWork& work) {
        return StageTrace{work.born_ns, work.prediction.end_day};
      });

  // Dedicated orchestration threads, NOT pool workers: ParallelFor waits
  // for every helper task it submitted to run, so parking these loops on
  // pool workers could starve the nested fan-outs into deadlock. The
  // loops spend their lives blocked on queues; compute lands on the pool.
  threads_.reserve(4);
  threads_.emplace_back([stage = ingest_stage_.get()] { stage->Run(); });
  threads_.emplace_back([stage = features_stage_.get()] { stage->Run(); });
  threads_.emplace_back([stage = predict_stage_.get()] { stage->Run(); });
  threads_.emplace_back([stage = monitor_stage_.get()] { stage->Run(); });
}

ServingPipeline::~ServingPipeline() { Finish(); }

bool ServingPipeline::Push(int sector, int hour, const float* values,
                           int num_kpis, uint64_t born_ns) {
  if (input_closed_) return false;
  if (num_kpis != options_.num_kpis) {
    // Pre-queue reject: the ingestor never sees this row, so account for
    // it here (the in-contract rows are counted by the ingestor itself).
    producer_counters_.Refresh();
    if (producer_counters_.rows_offered != nullptr) {
      producer_counters_.rows_offered->Increment();
      producer_counters_.rows_rejected->Increment();
    }
    return false;
  }
  input_block_.sectors.push_back(sector);
  input_block_.hours.push_back(hour);
  input_block_.values.insert(input_block_.values.end(), values,
                             values + num_kpis);
  MergeBorn(&input_block_.born_ns, born_ns);
  if (input_block_.rows() >= options_.row_block_rows) FlushInputBlock();
  return true;
}

void ServingPipeline::FlushInput() {
  if (input_closed_) return;
  FlushInputBlock();
}

void ServingPipeline::FlushInputBlock() {
  if (input_block_.rows() == 0) return;
  RowBlock block = std::move(input_block_);
  input_block_.Clear();
  input_block_.num_kpis = options_.num_kpis;
  // Pipeline ingress is the default stamping point; producers that
  // stamped earlier (the fleet's admission path) already set born_ns and
  // keep the older stamp.
  if (block.born_ns == 0) block.born_ns = SteadyNowNs();
  raw_queue_.Push(std::move(block));
}

void ServingPipeline::Finish() {
  if (input_closed_) return;
  input_closed_ = true;
  FlushInputBlock();
  raw_queue_.Close();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  PublishFinalStats();
  finished_.store(true, std::memory_order_release);
}

std::vector<StreamingPrediction> ServingPipeline::TakePredictions() {
  std::lock_guard<std::mutex> lock(results_mutex_);
  std::vector<StreamingPrediction> taken = std::move(results_);
  results_.clear();
  return taken;
}

std::vector<StageStats> ServingPipeline::StageSnapshot() const {
  return {ingest_stage_->Stats(), features_stage_->Stats(),
          predict_stage_->Stats(), monitor_stage_->Stats()};
}

uint64_t ServingPipeline::IngestBlock(RowBlock&& block) {
  const uint64_t before = ordered_blocks_pushed_;
  const int rows = block.rows();
  current_raw_born_ns_ = block.born_ns;
  for (int r = 0; r < rows; ++r) {
    ingestor_->Push(
        block.sectors[static_cast<size_t>(r)],
        block.hours[static_cast<size_t>(r)],
        block.values.data() + static_cast<size_t>(r) * block.num_kpis,
        block.num_kpis);
  }
  current_raw_born_ns_ = 0;
  return ordered_blocks_pushed_ - before;
}

void ServingPipeline::FlushOrderedBlock() {
  if (ordered_block_.rows() == 0) return;
  RowBlock block = std::move(ordered_block_);
  ordered_block_.Clear();
  ordered_block_.num_kpis = options_.num_kpis;
  ordered_queue_.Push(std::move(block));
  ++ordered_blocks_pushed_;
}

uint64_t ServingPipeline::ConsumeBlock(RowBlock&& block) {
  const int rows = block.rows();
  MergeBorn(&pending_serve_born_ns_, block.born_ns);
  for (int r = 0; r < rows; ++r) {
    engine_->Consume(
        block.sectors[static_cast<size_t>(r)],
        block.hours[static_cast<size_t>(r)],
        block.values.data() + static_cast<size_t>(r) * block.num_kpis,
        block.num_kpis);
  }
  return ServeReady();
}

uint64_t ServingPipeline::ServeReady() {
  uint64_t pushed = 0;
  // Ready prediction batches first, matured outcome days second — the
  // exact relative order Poll() produced, so the monitor stage sees the
  // same sequence the runner's synchronous loop did.
  int end_day = next_end_day_.load(std::memory_order_relaxed);
  while (engine_->min_finalized_hours() >= kHoursPerDay * end_day) {
    HOTSPOT_SPAN("pipeline/assemble");
    FeatureWork work;
    work.kind = FeatureWork::Kind::kPredict;
    work.end_day = end_day;
    work.target_day = end_day + horizon_days_;
    // Batches opened by the same consumed blocks share the oldest
    // contributing stamp — residency measures worst-case row age.
    work.born_ns = pending_serve_born_ns_;
    work.windows = AssembleServingWindows(*engine_, window_hours_, end_day);
    predict_queue_.Push(std::move(work));
    ++pushed;
    ++end_day;
    next_end_day_.store(end_day, std::memory_order_relaxed);
  }
  if (pushed > 0) pending_serve_born_ns_ = 0;
  // Labels are extracted here — the only stage that owns the engine — and
  // shipped downstream, so the monitor stage never races the feature
  // state. Shipped even with record_outcomes off, to keep the monitor's
  // awaiting queue bounded; recording itself is gated there.
  while (engine_->min_closed_days() > next_outcome_day_) {
    FeatureWork work;
    work.kind = FeatureWork::Kind::kOutcomes;
    work.day = next_outcome_day_;
    work.labels = GatherDayLabels(*engine_, next_outcome_day_);
    predict_queue_.Push(std::move(work));
    ++pushed;
    ++next_outcome_day_;
  }
  return pushed;
}

uint64_t ServingPipeline::PredictWork(FeatureWork&& work) {
  ScoredWork out;
  if (work.kind == FeatureWork::Kind::kPredict) {
    HOTSPOT_SPAN("pipeline/predict");
    if (options_.predict_stall_for_test.count() > 0) {
      std::this_thread::sleep_for(options_.predict_stall_for_test);
    }
    if (options_.predict_fault_for_test) {
      options_.predict_fault_for_test(work.end_day);
    }
    // The shadow tee sees the exact windows the champion is about to
    // score, on the same thread, before the score — so a shadow model
    // fed from here scores byte-identical inputs with no synchronization
    // beyond the tee's own handoff.
    if (options_.predict_tee) {
      options_.predict_tee(work.end_day, work.target_day, work.windows);
    }
    out.kind = ScoredWork::Kind::kPrediction;
    out.born_ns = work.born_ns;
    out.prediction.end_day = work.end_day;
    out.prediction.target_day = work.target_day;
    out.prediction.born_ns = work.born_ns;
    out.prediction.scores =
        service_->Predict(work.windows, &out.prediction.generation);
    predict_counters_.Refresh();
    if (predict_counters_.prediction_batches != nullptr) {
      predict_counters_.prediction_batches->Increment();
      predict_counters_.predictions->Add(
          static_cast<uint64_t>(out.prediction.scores.size()));
    }
  } else {
    out.kind = ScoredWork::Kind::kOutcomes;
    out.day = work.day;
    out.labels = std::move(work.labels);
  }
  scored_queue_.Push(std::move(out));
  return 1;
}

uint64_t ServingPipeline::DeliverWork(ScoredWork&& work) {
  if (work.kind == ScoredWork::Kind::kPrediction) {
    awaiting_outcomes_.push_back(work.prediction);
    pending_outcomes_.store(
        static_cast<int>(awaiting_outcomes_.size()),
        std::memory_order_relaxed);
    if (options_.on_prediction) options_.on_prediction(work.prediction);
    if (options_.prediction_tee) options_.prediction_tee(work.prediction);
    {
      std::lock_guard<std::mutex> lock(results_mutex_);
      results_.push_back(std::move(work.prediction));
    }
  } else {
    if (options_.outcome_tee) options_.outcome_tee(work.day, work.labels);
    matured_labels_[work.day] = std::move(work.labels);
  }
  RecordReadyOutcomes();
  return 0;
}

void ServingPipeline::RecordReadyOutcomes() {
  while (!awaiting_outcomes_.empty()) {
    const StreamingPrediction& front = awaiting_outcomes_.front();
    auto labels = matured_labels_.find(front.target_day);
    if (labels == matured_labels_.end()) break;
    if (options_.record_outcomes) {
      service_->RecordOutcomes(front.scores, labels->second);
      monitor_counters_.Refresh();
      if (monitor_counters_.outcomes_recorded != nullptr) {
        monitor_counters_.outcomes_recorded->Add(
            static_cast<uint64_t>(labels->second.size()));
      }
    }
    matured_labels_.erase(labels);
    awaiting_outcomes_.pop_front();
    pending_outcomes_.store(static_cast<int>(awaiting_outcomes_.size()),
                            std::memory_order_relaxed);
  }
}

void ServingPipeline::PublishFinalStats() {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  if (ctx == nullptr) return;
  // Cold path (once per pipeline lifetime): the queue high-water marks,
  // so a snapshot taken after Finish still shows how full each boundary
  // ever ran.
  obs::MetricsRegistry& metrics = ctx->metrics();
  const StageStats stages[] = {ingest_stage_->Stats(),
                               features_stage_->Stats(),
                               predict_stage_->Stats(),
                               monitor_stage_->Stats()};
  for (const StageStats& stage : stages) {
    metrics.gauge("pipeline/" + stage.name + "_queue_high_water")
        .Set(static_cast<double>(stage.input.high_water));
  }
}

}  // namespace hotspot::pipeline
