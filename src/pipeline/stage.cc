#include "pipeline/stage.h"

#include "obs/pipeline_context.h"

namespace hotspot::pipeline {

const char* StageStateName(StageState state) {
  switch (state) {
    case StageState::kIdle:
      return "idle";
    case StageState::kDispatch:
      return "dispatch";
    case StageState::kDrain:
      return "drain";
    case StageState::kDone:
      return "done";
  }
  return "unknown";
}

StageObs::StageObs(const char* stage_name, int stage_index)
    : stage_index_(stage_index),
      items_name_(std::string("pipeline/") + stage_name + "_items"),
      latency_name_(std::string("pipeline/") + stage_name +
                    "_latency_seconds"),
      depth_name_(std::string("pipeline/") + stage_name + "_queue_depth"),
      backpressure_name_(std::string("pipeline/") + stage_name +
                         "_backpressure_waits"),
      residency_name_("pipeline/stage" + std::to_string(stage_index) +
                      "/residency_seconds") {}

void StageObs::Refresh() {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  if (ctx == context_) return;
  context_ = ctx;
  if (ctx == nullptr) {
    items_ = nullptr;
    latency_ = nullptr;
    depth_ = nullptr;
    backpressure_ = nullptr;
    residency_ = nullptr;
    flight_ = nullptr;
    return;
  }
  obs::MetricsRegistry& metrics = ctx->metrics();
  items_ = &metrics.counter(items_name_);
  latency_ =
      &metrics.histogram(latency_name_, obs::DefaultLatencySeconds());
  depth_ = &metrics.gauge(depth_name_);
  backpressure_ = &metrics.counter(backpressure_name_);
  residency_ =
      &metrics.histogram(residency_name_, obs::DefaultLatencySeconds());
  flight_ = &ctx->flight();
}

}  // namespace hotspot::pipeline
