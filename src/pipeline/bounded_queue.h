#ifndef HOTSPOT_PIPELINE_BOUNDED_QUEUE_H_
#define HOTSPOT_PIPELINE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.h"

namespace hotspot::pipeline {

/// Point-in-time accounting of one queue, taken under the queue's lock so
/// the numbers are mutually consistent.
struct QueueStats {
  int capacity = 0;
  int depth = 0;       ///< items currently queued
  int high_water = 0;  ///< max depth ever reached
  uint64_t pushed = 0;
  uint64_t popped = 0;
  /// Push calls that found the queue full and had to wait — the
  /// backpressure events of the stage boundary this queue implements.
  uint64_t push_waits = 0;
  /// Pop calls that found the queue empty and had to wait (starvation).
  uint64_t pop_waits = 0;
  /// Total wall time producers spent blocked in Push.
  double push_blocked_seconds = 0.0;
};

/// Bounded blocking MPSC/MPMC queue — the elastic register between two
/// pipeline stages. The contract that makes the staged runtime lossless:
///
///   * Push on a full queue BLOCKS until a slot frees (or the queue is
///     closed); it never drops and never reorders — backpressure
///     propagates upstream instead of data loss propagating downstream.
///   * Pop on an empty open queue blocks until an item arrives; once the
///     queue is closed Pop drains the remaining items and then returns
///     false — the downstream stage's signal to enter its drain state.
///   * Close is idempotent; Push after Close returns false (the caller is
///     shutting down anyway).
///
/// FIFO order is preserved per producer (and totally, with the single
/// producer each linear stage boundary has), which is what keeps the
/// staged serving path bitwise-identical to the direct-call path.
/// Plain mutex + two condvars: at the row-block/batch granularity the
/// serving pipeline queues at, lock cost is noise next to stage work.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int capacity) : capacity_(capacity) {
    HOTSPOT_CHECK_GE(capacity, 1);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns true when the item was
  /// enqueued, false when the queue was closed (item dropped — only
  /// happens during teardown, and Close() is only called by the producer
  /// side in the serving pipeline, so a drain never loses data).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (static_cast<int>(items_.size()) >= capacity_ && !closed_) {
      ++push_waits_;
      const auto blocked_from = std::chrono::steady_clock::now();
      not_full_.wait(lock, [&] {
        return closed_ || static_cast<int>(items_.size()) < capacity_;
      });
      push_blocked_seconds_ +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        blocked_from)
              .count();
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++pushed_;
    if (static_cast<int>(items_.size()) > high_water_) {
      high_water_ = static_cast<int>(items_.size());
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push: enqueues only when a slot is free right now.
  /// Returns false — leaving `item` untouched — when the queue is full or
  /// closed. This is the admission-control primitive: where Push converts
  /// overload into upstream backpressure, TryPush converts it into an
  /// immediate reject the caller can count and surface.
  bool TryPush(T& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || static_cast<int>(items_.size()) >= capacity_) return false;
    items_.push_back(std::move(item));
    ++pushed_;
    if (static_cast<int>(items_.size()) > high_water_) {
      high_water_ = static_cast<int>(items_.size());
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty and open. Returns true with an item,
  /// or false once the queue is closed AND drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_) {
      ++pop_waits_;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    }
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    ++popped_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// No more pushes; pending items remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  int depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(items_.size());
  }

  QueueStats Stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    QueueStats stats;
    stats.capacity = capacity_;
    stats.depth = static_cast<int>(items_.size());
    stats.high_water = high_water_;
    stats.pushed = pushed_;
    stats.popped = popped_;
    stats.push_waits = push_waits_;
    stats.pop_waits = pop_waits_;
    stats.push_blocked_seconds = push_blocked_seconds_;
    return stats;
  }

 private:
  const int capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  int high_water_ = 0;
  uint64_t pushed_ = 0;
  uint64_t popped_ = 0;
  uint64_t push_waits_ = 0;
  uint64_t pop_waits_ = 0;
  double push_blocked_seconds_ = 0.0;
};

}  // namespace hotspot::pipeline

#endif  // HOTSPOT_PIPELINE_BOUNDED_QUEUE_H_
