#ifndef HOTSPOT_PIPELINE_SERVING_PIPELINE_H_
#define HOTSPOT_PIPELINE_SERVING_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/forecast_service.h"
#include "core/serving_ops.h"
#include "ml/flat_tree.h"
#include "monitor/monitor.h"
#include "obs/metrics.h"
#include "pipeline/bounded_queue.h"
#include "pipeline/stage.h"
#include "stream/incremental_features.h"
#include "stream/kpi_stream.h"
#include "tensor/matrix.h"
#include "tensor/temporal.h"

namespace hotspot::pipeline {

/// A block of KPI rows in delivery order — the unit the row-granularity
/// queues carry, so per-row hot paths amortize one lock + one clock pair
/// over `rows()` rows instead of paying them per row.
struct RowBlock {
  std::vector<int> sectors;
  std::vector<int> hours;
  std::vector<float> values;  ///< rows() x num_kpis, row-major
  int num_kpis = 0;
  /// Telemetry stamp: SteadyNowNs() when the oldest row in this block
  /// entered the serving stack (0 = unstamped). Carried through every
  /// stage boundary — min-merged when blocks combine — so residency
  /// histograms measure from true ingress, not from the last re-blocking.
  uint64_t born_ns = 0;

  int rows() const { return static_cast<int>(sectors.size()); }
  void Clear() {
    sectors.clear();
    hours.clear();
    values.clear();
    born_ns = 0;
  }
};

/// Work flowing features → predict: either one assembled prediction-window
/// batch, or the matured daily labels of one closed day (passed through
/// the predict stage untouched so the monitor stage sees scores and
/// outcomes in one ordered stream).
struct FeatureWork {
  enum class Kind { kPredict, kOutcomes };
  Kind kind = Kind::kPredict;
  int end_day = 0;     ///< kPredict
  int target_day = 0;  ///< kPredict
  Tensor3<float> windows;
  int day = 0;  ///< kOutcomes
  std::vector<float> labels;
  /// Oldest contributing row's ingress stamp (see RowBlock::born_ns).
  uint64_t born_ns = 0;
};

/// Work flowing predict → monitor: a scored batch or pass-through labels.
struct ScoredWork {
  enum class Kind { kPrediction, kOutcomes };
  Kind kind = Kind::kPrediction;
  StreamingPrediction prediction;
  int day = 0;
  std::vector<float> labels;
  /// Oldest contributing row's ingress stamp (see RowBlock::born_ns).
  uint64_t born_ns = 0;
};

/// The one way to stand up a streaming serving path: ingest → incremental
/// features → predict → monitor as four explicit, backpressured pipeline
/// stages behind a single facade, replacing the hand-wired
/// KpiStreamIngestor / IncrementalFeatureEngine / runner chain.
///
/// Dataflow and staging:
///
///   Push() ─raw rows─▶ [ingest]  reorder/dedup/gap-fill (KpiStreamIngestor)
///              │q0         │q1 ordered rows
///              ▼           ▼
///                      [features] incremental Eq.1/2 features, window cut,
///              │q2         │      matured-label extraction
///              ▼           ▼q2 windows + labels
///                      [predict]  ForecastService::Predict (pool fan-out)
///                          │q3 scores + labels
///                          ▼
///                      [monitor]  RecordOutcomes + prediction delivery
///
/// Every queue is a BoundedQueue: a full downstream queue blocks the
/// upstream push — all the way back to Push(), which blocks the caller —
/// and never drops or reorders a row. A slow predict shard therefore
/// surfaces as backpressure (visible in the pipeline/* counters), not as
/// silently lost late KPI rows.
///
/// Determinism: each stage has a single consumer and the queues are FIFO,
/// so rows, windows and scores flow in the exact order of the direct-call
/// path; the heavy stage work (window assembly, inference) fans out over
/// the shared deterministic thread pool with index-owned writes. Streamed
/// scores are bitwise-identical to batch PredictAtDay at any HOTSPOT_NUM_THREADS and any queue bounds — pinned
/// by tests/pipeline_test.cc, slow-predict injection included.
///
/// The four stage loops run on dedicated orchestration threads rather
/// than pool workers: ParallelFor blocks until every helper task it
/// submitted has run, so parking long-lived loops on pool workers could
/// starve the nested fan-outs of the predict stage into deadlock. The
/// orchestration threads spend their lives blocked on queues; all
/// compute still lands on the pool.
///
/// Threading contract: Push / PushRow / FlushInput / Finish are
/// single-writer (one producer thread at a time, the KpiStreamIngestor
/// discipline). TakePredictions(), StageSnapshot() and the frontier
/// accessors are safe from any thread at any time.
class ServingPipeline {
 public:
  /// Everything a serving path is configured by, in one place. The env
  /// knobs (HOTSPOT_PREDICT_ENGINE, HOTSPOT_FLAT_KERNEL) remain a
  /// process-wide *defaults layer* only: they seed the service's initial
  /// engine/kernel, and the optional fields here override them per
  /// pipeline — the setters are the primary API.
  struct Options {
    // --- serving universe (must match the service's bundle) ---
    int num_sectors = 0;
    int num_kpis = 0;
    /// Enriched calendar matrix C (hours x 5) covering every hour the
    /// stream will reach. Not owned; must outlive the pipeline.
    const Matrix<float>* calendar = nullptr;
    /// Operator scoring config; defaults to the bundle's own ScoreConfig
    /// when unset — the common case.
    std::optional<ScoreConfig> score;
    /// Finalized feature rows retained per sector, in weeks; must cover
    /// the serving window plus one week of frontier slack (checked).
    int history_weeks = 8;

    // --- ingest policy (KpiStreamIngestor) ---
    int watermark_hours = kHoursPerDay;
    int ring_hours = 2 * kHoursPerDay;

    // --- staging / queue bounds ---
    /// Rows per queued block on the two row-granularity boundaries.
    int row_block_rows = 64;
    /// Capacity (in blocks) of the Push→ingest and ingest→features queues.
    int row_queue_blocks = 64;
    /// Capacity (in items) of the features→predict queue — the knob that
    /// bounds how far feature extraction may run ahead of a slow model.
    int predict_queue_capacity = 4;
    /// Capacity (in items) of the predict→monitor queue.
    int scored_queue_capacity = 4;

    // --- engine / kernel selection (primary API; env = defaults) ---
    std::optional<PredictEngine> predict_engine;
    std::optional<ml::FlatKernel> flat_kernel;

    // --- monitoring toggles ---
    /// Feed matured daily labels back into the service's quality monitor.
    bool record_outcomes = true;
    /// Restart monitoring with this config at pipeline construction.
    std::optional<monitor::MonitorConfig> monitor;
    /// Turn the service's monitor off entirely for this serving path.
    bool disable_monitoring = false;

    // --- delivery ---
    /// Optional push delivery: called from the monitor stage thread for
    /// every served batch, in end-day order. Predictions are also always
    /// collected for TakePredictions().
    std::function<void(const StreamingPrediction&)> on_prediction;

    // --- adaptation taps (src/adapt; all optional, and strictly
    // read-only with respect to the serving path — with no taps installed
    // nothing changes, and with them installed the champion's scores stay
    // bitwise-identical) ---
    /// Called on the features stage thread for every finalized feature
    /// row (installed as the engine's row sink): the adaptation
    /// controller's rolling training-data capture. The row pointer is
    /// valid only for the duration of the call.
    stream::FeatureRowSink feature_row_tap;
    /// Shadow-scoring tee: called on the predict stage thread for every
    /// prediction batch BEFORE the champion scores it, with the assembled
    /// windows. The windows are owned by the predict stage and valid only
    /// for the call — a consumer that scores asynchronously must copy.
    /// Blocking here backpressures the pipeline (deliberate: lossless
    /// shadow comparison beats a fast one).
    std::function<void(int end_day, int target_day,
                       const Tensor3<float>& windows)>
        predict_tee;
    /// Champion-score tee: called on the monitor stage thread for every
    /// served batch, like on_prediction — which the fleet reserves for
    /// its aggregation, hence the second hook.
    std::function<void(const StreamingPrediction&)> prediction_tee;
    /// Matured-label tee: called on the monitor stage thread when a
    /// day's ground-truth labels close in the stream.
    std::function<void(int day, const std::vector<float>& labels)>
        outcome_tee;

    // --- test / chaos knobs ---
    /// Artificial stall per prediction batch in the predict stage — the
    /// documented way to rehearse a slow predict shard and watch
    /// backpressure engage without code changes.
    std::chrono::microseconds predict_stall_for_test{0};
    /// General fault-injection hook: runs in the predict stage before each
    /// prediction batch is scored (after predict_stall_for_test), with the
    /// batch's end-day. Tests park a shard on a latch here or throw its
    /// serving path into a controlled stall — the FaultInjectingService
    /// seam tests/fleet_test.cc drives. Must not call back into the
    /// pipeline.
    std::function<void(int end_day)> predict_fault_for_test;
  };

  /// `service` is not owned and must outlive the pipeline. Construction
  /// applies the Options engine/kernel/monitoring selections to the
  /// service and starts the four stage threads; the pipeline is live
  /// (accepting Push) when the constructor returns.
  ServingPipeline(ForecastService* service, const Options& options);

  /// Drains and joins (Finish) if the caller has not already.
  ~ServingPipeline();

  ServingPipeline(const ServingPipeline&) = delete;
  ServingPipeline& operator=(const ServingPipeline&) = delete;

  /// Offers one hourly KPI row, in any transport order; NaN marks a
  /// missing reading. Blocks when the pipeline is backpressured. Returns
  /// false — and drops the row — only when `num_kpis` mismatches the
  /// configured width (counted under stream/rows_rejected) or the
  /// pipeline is already finished; the reorder/duplicate/late verdicts
  /// land asynchronously in the stream/rows_* counters.
  bool Push(int sector, int hour, const float* values, int num_kpis) {
    return Push(sector, hour, values, num_kpis, /*born_ns=*/0);
  }
  bool Push(int sector, int hour, const std::vector<float>& values) {
    return Push(sector, hour, values.data(),
                static_cast<int>(values.size()));
  }
  /// Push with an explicit ingress stamp: `born_ns` is SteadyNowNs() at
  /// the moment the row entered the serving stack upstream of this
  /// pipeline (the fleet stamps at admission so residency includes the
  /// ingress-queue wait). 0 means "stamp at block flush" — the plain
  /// overloads' behavior.
  bool Push(int sector, int hour, const float* values, int num_kpis,
            uint64_t born_ns);

  /// Hands the producer-side partial row block to the ingest stage now
  /// instead of waiting for it to fill — call when the feed goes quiet.
  void FlushInput();

  /// End-of-stream: flushes buffered input, finalizes the ingestor's
  /// watermark window (gap-filling interior holes), drains every stage in
  /// order and joins the stage threads. Idempotent; Push afterwards
  /// returns false. Also publishes the final queue high-water gauges.
  void Finish();

  bool finished() const {
    return finished_.load(std::memory_order_acquire);
  }

  /// Served predictions accumulated since the last call, in end-day
  /// order. Thread-safe; call during streaming or after Finish().
  std::vector<StreamingPrediction> TakePredictions();

  /// The next window end-day the pipeline will serve once the stream
  /// reaches it (the features stage's serving frontier).
  int next_end_day() const {
    return next_end_day_.load(std::memory_order_relaxed);
  }
  /// Served predictions whose target day has not matured in the stream.
  int pending_outcomes() const {
    return pending_outcomes_.load(std::memory_order_relaxed);
  }

  /// Point-in-time accounting of all four stages (ingest, features,
  /// predict, monitor — in dataflow order).
  std::vector<StageStats> StageSnapshot() const;

  ForecastService& service() { return *service_; }
  const Options& options() const { return options_; }

 private:
  /// Cached stream/serve counter handles (per-item hot paths must not pay
  /// name lookups — the stream/rows_* discipline).
  struct Counters {
    void Refresh();
    obs::Counter* rows_offered = nullptr;
    obs::Counter* rows_rejected = nullptr;
    obs::Counter* prediction_batches = nullptr;
    obs::Counter* predictions = nullptr;
    obs::Counter* outcomes_recorded = nullptr;
    const void* context = nullptr;
  };

  uint64_t IngestBlock(RowBlock&& block);
  uint64_t ConsumeBlock(RowBlock&& block);
  /// Serves every ready window batch and ships every newly matured label
  /// day; returns the number of items pushed to the predict queue.
  uint64_t ServeReady();
  uint64_t PredictWork(FeatureWork&& work);
  uint64_t DeliverWork(ScoredWork&& work);
  /// Records every awaiting prediction whose target-day labels arrived.
  void RecordReadyOutcomes();
  void FlushInputBlock();
  void FlushOrderedBlock();
  void PublishFinalStats();

  ForecastService* service_;
  Options options_;
  int window_hours_ = 0;
  // Cached serving-universe invariant (fixed across bundle promotions), so
  // the features stage never dereferences the swappable bundle.
  int horizon_days_ = 0;

  std::unique_ptr<stream::IncrementalFeatureEngine> engine_;
  std::unique_ptr<stream::KpiStreamIngestor> ingestor_;

  BoundedQueue<RowBlock> raw_queue_;
  BoundedQueue<RowBlock> ordered_queue_;
  BoundedQueue<FeatureWork> predict_queue_;
  BoundedQueue<ScoredWork> scored_queue_;

  std::unique_ptr<Stage<RowBlock>> ingest_stage_;
  std::unique_ptr<Stage<RowBlock>> features_stage_;
  std::unique_ptr<Stage<FeatureWork>> predict_stage_;
  std::unique_ptr<Stage<ScoredWork>> monitor_stage_;
  std::vector<std::thread> threads_;

  // Producer side (single-writer).
  RowBlock input_block_;
  Counters producer_counters_;

  // Ingest stage state: ordered rows buffered into the next block.
  RowBlock ordered_block_;
  uint64_t ordered_blocks_pushed_ = 0;
  /// Ingress stamp of the raw block the ingestor is currently unpacking —
  /// min-merged into ordered_block_.born_ns by the reorder callback, so a
  /// stamp survives the ingestor's reordering (stage-local, single
  /// writer).
  uint64_t current_raw_born_ns_ = 0;

  // Features stage state.
  std::atomic<int> next_end_day_{0};
  int next_outcome_day_ = 0;
  /// Oldest ingress stamp among rows consumed since the last served
  /// batch; becomes the born_ns of the next FeatureWork batch.
  uint64_t pending_serve_born_ns_ = 0;

  // Predict stage state.
  Counters predict_counters_;

  // Monitor stage state.
  std::deque<StreamingPrediction> awaiting_outcomes_;
  std::map<int, std::vector<float>> matured_labels_;
  std::atomic<int> pending_outcomes_{0};
  Counters monitor_counters_;

  std::mutex results_mutex_;
  std::vector<StreamingPrediction> results_;

  std::atomic<bool> finished_{false};
  bool input_closed_ = false;
};

}  // namespace hotspot::pipeline

#endif  // HOTSPOT_PIPELINE_SERVING_PIPELINE_H_
