#ifndef HOTSPOT_PIPELINE_STAGE_H_
#define HOTSPOT_PIPELINE_STAGE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "pipeline/bounded_queue.h"

namespace hotspot::pipeline {

/// The PipeStage dispatch/drain state machine every stage of the staged
/// serving runtime walks:
///
///   kIdle     — constructed, loop not yet entered
///   kDispatch — popping items from the input queue and handling them
///   kDrain    — input closed and empty; flushing stage-local state and
///               closing the downstream queue
///   kDone     — loop exited, downstream closed
///
/// The transition kDispatch → kDrain happens exactly once, when Pop
/// returns false (closed + drained), so shutdown ripples stage by stage
/// from the front of the pipeline to the back and no in-flight item is
/// ever abandoned.
enum class StageState : int { kIdle = 0, kDispatch, kDrain, kDone };

const char* StageStateName(StageState state);

/// One stage's accounting, readable from any thread while the stage runs.
struct StageStats {
  std::string name;
  StageState state = StageState::kIdle;
  uint64_t items_in = 0;   ///< items popped from the input queue
  uint64_t items_out = 0;  ///< items pushed downstream (reported by handler)
  double busy_seconds = 0.0;  ///< wall time spent inside the handler
  QueueStats input;  ///< the stage's input queue (depth = waiting work)
};

/// Steady-clock nanoseconds since an arbitrary process epoch — the
/// timestamp base every block-residency stamp in the serving stack shares
/// (RowBlock::born_ns, StreamingPrediction::born_ns, the fleet's
/// admission stamps), so residencies are plain subtractions.
inline uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The (born_ns, exemplar) pair a stage's trace extractor reads off an
/// item: born_ns = SteadyNowNs() at the item's serving-stack ingress (0 =
/// unstamped, residency not recorded), exemplar = a caller-meaningful tag
/// for the residency histogram (row count, end-day).
struct StageTrace {
  uint64_t born_ns = 0;
  int64_t exemplar = 0;
};

/// Cached observability handles of one stage — resolved once per installed
/// PipelineContext, so the per-item hot path is pointer tests and lock-free
/// increments, never a name lookup (the same discipline as the
/// stream/rows_* counters). Null context = counting off.
class StageObs {
 public:
  /// `stage_index` is the stage's position in dataflow order; it names the
  /// pipeline/stageK/residency_seconds histogram and tags this stage's
  /// flight events.
  StageObs(const char* stage_name, int stage_index);

  /// Re-resolves the handles when the installed context changed. Call once
  /// per popped item (one pointer compare when nothing changed).
  void Refresh();

  /// Records one handled item: items counter, handler latency histogram.
  void OnItem(double handler_seconds) {
    if (items_ != nullptr) {
      items_->Increment();
      latency_->Observe(handler_seconds);
    }
  }

  /// Publishes the input-queue depth observed at pop time.
  void SetQueueDepth(int depth) {
    if (depth_ != nullptr) depth_->Set(static_cast<double>(depth));
  }

  /// Records how long a stamped item had been in flight when this stage
  /// popped it — cumulative residency from serving-stack ingress through
  /// this stage boundary, under pipeline/stageK/residency_seconds.
  void ObserveResidency(uint64_t born_ns, int64_t exemplar) {
    if (residency_ == nullptr || born_ns == 0) return;
    const uint64_t now = SteadyNowNs();
    const double seconds =
        now > born_ns ? static_cast<double>(now - born_ns) * 1e-9 : 0.0;
    residency_->ObserveWithExemplar(seconds, exemplar);
  }

  /// Records upstream pushes into this stage's input that had to block —
  /// the queue-boundary backpressure events — and flight-records the
  /// onset (one event per burst of new waits, not per wait).
  void AddBackpressureWaits(uint64_t waits) {
    if (backpressure_ != nullptr && waits > 0) {
      backpressure_->Add(waits);
      if (flight_ != nullptr) {
        flight_->Record(obs::FlightEventKind::kBackpressure, stage_index_,
                        static_cast<int64_t>(waits));
      }
    }
  }

  /// Flight-records a new input-queue high-water mark.
  void RecordHighWater(int depth) {
    if (flight_ != nullptr) {
      flight_->Record(obs::FlightEventKind::kQueueHighWater, stage_index_,
                      depth);
    }
  }

 private:
  int stage_index_ = 0;
  std::string items_name_;
  std::string latency_name_;
  std::string depth_name_;
  std::string backpressure_name_;
  std::string residency_name_;
  obs::Counter* items_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  obs::Gauge* depth_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Histogram* residency_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  const void* context_ = nullptr;
};

/// One elastic pipeline stage: a dispatch loop over a BoundedQueue input,
/// a handler that does the stage's work (and pushes downstream — pushing
/// is the handler's business because item types change across the stage
/// boundary), and a drain hook that flushes stage-local state before the
/// downstream queue is closed.
///
/// Run() is the stage body; the serving pipeline runs it on a dedicated
/// orchestration thread while the heavy lifting inside the handlers
/// (window assembly, model inference) fans out over the shared
/// deterministic thread pool. Stats() is safe from any thread.
template <typename In>
class Stage {
 public:
  /// `handler` receives each popped item and returns the number of items
  /// it pushed downstream (for the items_out accounting). `drain` runs
  /// once after the input closes and drains; it must flush any buffered
  /// state and close the downstream queue. `index` is the stage's
  /// position in dataflow order (see StageObs). `trace`, when set, reads
  /// the (born_ns, exemplar) pair off each popped item so the stage can
  /// record cumulative residency — the template cannot know the item's
  /// fields, the owner can.
  Stage(const char* name, int index, BoundedQueue<In>* input,
        std::function<uint64_t(In&&)> handler, std::function<void()> drain,
        std::function<StageTrace(const In&)> trace = {})
      : name_(name),
        obs_(name, index),
        input_(input),
        handler_(std::move(handler)),
        drain_(std::move(drain)),
        trace_(std::move(trace)) {}

  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;

  /// The stage body: dispatch until the input closes and drains, then
  /// drain and finish. Runs to completion exactly once.
  void Run() {
    state_.store(static_cast<int>(StageState::kDispatch),
                 std::memory_order_relaxed);
    In item;
    uint64_t seen_waits = 0;
    int seen_high_water = 0;
    while (input_->Pop(&item)) {
      obs_.Refresh();
      obs_.SetQueueDepth(input_->depth());
      if (trace_) {
        const StageTrace trace = trace_(item);
        obs_.ObserveResidency(trace.born_ns, trace.exemplar);
      }
      const auto start = std::chrono::steady_clock::now();
      const uint64_t pushed = handler_(std::move(item));
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      items_in_.fetch_add(1, std::memory_order_relaxed);
      items_out_.fetch_add(pushed, std::memory_order_relaxed);
      busy_seconds_.store(busy_seconds_.load(std::memory_order_relaxed) +
                              seconds,
                          std::memory_order_relaxed);
      obs_.OnItem(seconds);
      // Backpressure events on our input since the last item: producers
      // that had to wait for this stage to make room. The same Stats()
      // read feeds the high-water flight events — no extra lock.
      const QueueStats input_stats = input_->Stats();
      obs_.AddBackpressureWaits(input_stats.push_waits - seen_waits);
      seen_waits = input_stats.push_waits;
      if (input_stats.high_water > seen_high_water) {
        seen_high_water = input_stats.high_water;
        obs_.RecordHighWater(seen_high_water);
      }
    }
    state_.store(static_cast<int>(StageState::kDrain),
                 std::memory_order_relaxed);
    drain_();
    obs_.SetQueueDepth(0);
    state_.store(static_cast<int>(StageState::kDone),
                 std::memory_order_relaxed);
  }

  StageState state() const {
    return static_cast<StageState>(state_.load(std::memory_order_relaxed));
  }

  StageStats Stats() const {
    StageStats stats;
    stats.name = name_;
    stats.state = state();
    stats.items_in = items_in_.load(std::memory_order_relaxed);
    stats.items_out = items_out_.load(std::memory_order_relaxed);
    stats.busy_seconds = busy_seconds_.load(std::memory_order_relaxed);
    stats.input = input_->Stats();
    return stats;
  }

 private:
  const std::string name_;
  StageObs obs_;
  BoundedQueue<In>* input_;
  std::function<uint64_t(In&&)> handler_;
  std::function<void()> drain_;
  std::function<StageTrace(const In&)> trace_;
  std::atomic<int> state_{static_cast<int>(StageState::kIdle)};
  std::atomic<uint64_t> items_in_{0};
  std::atomic<uint64_t> items_out_{0};
  std::atomic<double> busy_seconds_{0.0};
};

}  // namespace hotspot::pipeline

#endif  // HOTSPOT_PIPELINE_STAGE_H_
