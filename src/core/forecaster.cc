#include "core/forecaster.h"

#include "core/baselines.h"
#include "features/window.h"
#include "monitor/fingerprint.h"
#include "obs/pipeline_context.h"
#include "serialize/bundle.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hotspot {

const char* ModelName(ModelKind model) {
  switch (model) {
    case ModelKind::kRandom:
      return "Random";
    case ModelKind::kPersist:
      return "Persist";
    case ModelKind::kAverage:
      return "Average";
    case ModelKind::kTrend:
      return "Trend";
    case ModelKind::kTree:
      return "Tree";
    case ModelKind::kRfRaw:
      return "RF-R";
    case ModelKind::kRfF1:
      return "RF-F1";
    case ModelKind::kRfF2:
      return "RF-F2";
    case ModelKind::kGbdt:
      return "GBDT";
  }
  return "unknown";
}

std::vector<ModelKind> PaperModels() {
  return {ModelKind::kRandom, ModelKind::kPersist, ModelKind::kAverage,
          ModelKind::kTrend,  ModelKind::kTree,    ModelKind::kRfRaw,
          ModelKind::kRfF1,   ModelKind::kRfF2};
}

const char* TargetName(TargetKind target) {
  switch (target) {
    case TargetKind::kBeHotSpot:
      return "be_hot_spot";
    case TargetKind::kBecomeHotSpot:
      return "become_hot_spot";
  }
  return "unknown";
}

Forecaster::Forecaster(const features::FeatureTensor* features,
                       const Matrix<float>* daily_scores,
                       const Matrix<float>* target_labels)
    : features_(features), daily_scores_(daily_scores),
      target_labels_(target_labels) {
  HOTSPOT_CHECK(features != nullptr);
  HOTSPOT_CHECK(daily_scores != nullptr);
  HOTSPOT_CHECK(target_labels != nullptr);
  HOTSPOT_CHECK_EQ(features->num_sectors(), daily_scores->rows());
  HOTSPOT_CHECK_EQ(features->num_sectors(), target_labels->rows());
  HOTSPOT_CHECK_EQ(daily_scores->cols(), target_labels->cols());
}

int Forecaster::num_sectors() const { return features_->num_sectors(); }

std::vector<float> Forecaster::LabelsAtDay(int day) const {
  HOTSPOT_CHECK(day >= 0 && day < target_labels_->cols());
  std::vector<float> labels(static_cast<size_t>(num_sectors()));
  for (int i = 0; i < num_sectors(); ++i) {
    float value = target_labels_->At(i, day);
    labels[static_cast<size_t>(i)] = IsMissing(value) ? 0.0f : value;
  }
  return labels;
}

const features::FeatureExtractor* Forecaster::ExtractorFor(
    ModelKind model) const {
  switch (model) {
    case ModelKind::kTree:
    case ModelKind::kRfRaw:
    case ModelKind::kGbdt:
      return &raw_extractor_;
    case ModelKind::kRfF1:
      return &percentile_extractor_;
    case ModelKind::kRfF2:
      return &handcrafted_extractor_;
    default:
      return nullptr;
  }
}

ml::Dataset Forecaster::BuildTrainingSet(
    const ForecastConfig& config,
    const features::FeatureExtractor& extractor) const {
  const int n = num_sectors();
  const int channels = features_->num_channels();
  const int dim = extractor.OutputDim(config.w, channels);

  // Pooled target days: t, t - stride, t - 2*stride, ... as long as the
  // h-delayed window still fits into the data (day t always fits, which
  // Run() checks).
  std::vector<int> label_days;
  for (int pooled = 0; pooled < config.training_days; ++pooled) {
    int label_day = config.t - pooled * config.training_day_stride;
    if (label_day - config.h - config.w < 0) break;
    label_days.push_back(label_day);
  }
  HOTSPOT_CHECK(!label_days.empty());
  const int rows = n * static_cast<int>(label_days.size());

  HOTSPOT_SPAN("forecast/build_training_set");
  ml::Dataset data;
  data.features = Matrix<float>(rows, dim);
  data.labels.resize(static_cast<size_t>(rows));

  for (int label_day : label_days) {
    HOTSPOT_CHECK_LT(label_day, target_labels_->cols());
  }
  // Parallel over (pooled day, sector) pairs; each pair fills exactly one
  // output row, with per-invocation scratch (the extractors are stateless).
  util::ParallelFor(0, rows, [&](int64_t out_row) {
    const int day_index = static_cast<int>(out_row / n);
    const int i = static_cast<int>(out_row % n);
    const int label_day = label_days[static_cast<size_t>(day_index)];
    const int window_end = label_day - config.h;
    Matrix<float> window =
        features::ExtractWindow(*features_, i, window_end, config.w);
    std::vector<float> row;
    extractor.Extract(window, &row);
    HOTSPOT_CHECK_EQ(static_cast<int>(row.size()), dim);
    float* dst = data.features.Row(static_cast<int>(out_row));
    for (int c = 0; c < dim; ++c) dst[c] = row[static_cast<size_t>(c)];
    float label = target_labels_->At(i, label_day);
    data.labels[static_cast<size_t>(out_row)] =
        (!IsMissing(label) && label != 0.0f) ? 1.0f : 0.0f;
  });
  data.weights = ml::BalancedWeights(data.labels);
  return data;
}

Matrix<float> Forecaster::BuildPredictionRows(
    const ForecastConfig& config,
    const features::FeatureExtractor& extractor) const {
  const int n = num_sectors();
  const int channels = features_->num_channels();
  const int dim = extractor.OutputDim(config.w, channels);
  HOTSPOT_SPAN("forecast/build_prediction_rows");
  Matrix<float> rows(n, dim);
  // Parallel over sectors; sector i only fills row i.
  util::ParallelFor(0, n, [&](int64_t i64) {
    const int i = static_cast<int>(i64);
    Matrix<float> window =
        features::ExtractWindow(*features_, i, config.t, config.w);
    std::vector<float> row;
    extractor.Extract(window, &row);
    float* dst = rows.Row(i);
    for (int c = 0; c < dim; ++c) dst[c] = row[static_cast<size_t>(c)];
  });
  return rows;
}

std::unique_ptr<ml::BinaryClassifier> Forecaster::TrainClassifier(
    const ForecastConfig& config) const {
  HOTSPOT_CHECK_GE(config.h, 1);
  HOTSPOT_CHECK_GE(config.w, 1);
  HOTSPOT_CHECK_GE(config.training_days, 1);
  HOTSPOT_CHECK_GE(config.training_day_stride, 1);
  HOTSPOT_CHECK_GE(config.t - config.h - config.w, 0);
  HOTSPOT_CHECK_LT(config.t, target_labels_->cols());

  // Deterministic per-(model, t, h, w) seed stream, identical to Run()'s.
  Rng seeder(config.seed ^
             (static_cast<uint64_t>(config.t) << 40) ^
             (static_cast<uint64_t>(config.h) << 24) ^
             (static_cast<uint64_t>(config.w) << 8) ^
             static_cast<uint64_t>(config.model));

  const features::FeatureExtractor& extractor =
      *ExtractorFor(config.model);
  ForecastConfig training_config = config;
  if (config.model == ModelKind::kTree && config.tree_training_days > 0) {
    training_config.training_days = config.tree_training_days;
  }
  ml::Dataset train = BuildTrainingSet(training_config, extractor);

  std::unique_ptr<ml::BinaryClassifier> classifier;
  switch (config.model) {
    case ModelKind::kTree: {
      ml::TreeConfig tree = config.tree;
      tree.seed = seeder.NextUint64();
      classifier = std::make_unique<ml::DecisionTree>(tree);
      break;
    }
    case ModelKind::kRfRaw:
    case ModelKind::kRfF1:
    case ModelKind::kRfF2: {
      ml::ForestConfig forest = config.forest;
      forest.seed = seeder.NextUint64();
      classifier = std::make_unique<ml::RandomForest>(forest);
      break;
    }
    case ModelKind::kGbdt: {
      ml::GbdtConfig gbdt = config.gbdt;
      gbdt.seed = seeder.NextUint64();
      classifier = std::make_unique<ml::Gbdt>(gbdt);
      break;
    }
    default:
      HOTSPOT_CHECK(false) << "not a classifier model";
  }

  {
    HOTSPOT_SPAN("forecast/train");
    classifier->Fit(train);
  }
  return classifier;
}

/// Per-channel reservoir size of the monitoring fingerprints: large enough
/// for a stable two-sample KS reference, small enough that a bundle grows
/// by only a few KB per channel.
constexpr int kFingerprintReservoir = 256;

std::unique_ptr<monitor::BundleFingerprints> Forecaster::BuildFingerprints(
    const ForecastConfig& config,
    const ml::BinaryClassifier& classifier) const {
  HOTSPOT_SPAN("forecast/fingerprint");
  // The same pooled label days BuildTrainingSet uses (including the Tree
  // override), so the sketches summarize exactly the data the classifier
  // saw.
  ForecastConfig training_config = config;
  if (config.model == ModelKind::kTree && config.tree_training_days > 0) {
    training_config.training_days = config.tree_training_days;
  }
  int min_label_day = config.t;
  for (int pooled = 0; pooled < training_config.training_days; ++pooled) {
    int label_day = config.t - pooled * training_config.training_day_stride;
    if (label_day - config.h - config.w < 0) break;
    min_label_day = label_day;
  }
  const int first_hour = 24 * (min_label_day - config.h - config.w);
  const int last_hour = 24 * (config.t - config.h);

  const int n = num_sectors();
  const int channels = features_->num_channels();
  const Tensor3<float>& tensor = features_->tensor();
  auto fingerprints = std::make_unique<monitor::BundleFingerprints>();
  fingerprints->first_hour = first_hour;
  fingerprints->last_hour = last_hour;
  fingerprints->channels.resize(static_cast<size_t>(channels));
  // Parallel over channels; channel k only writes its own sketch, and each
  // sketch's reservoir has its own seed, so the result is bitwise
  // independent of the thread count.
  util::ParallelFor(0, channels, [&](int64_t k64) {
    const int k = static_cast<int>(k64);
    const uint64_t seed =
        config.seed ^ 0x6670ull << 32 ^ static_cast<uint64_t>(k);
    // Only channels whose hourly values form a stationary distribution get
    // a drift reference. Calendar channels are clock features — the served
    // day always differs from the training days, so a KS test against them
    // reads "time moved forward" as drift — and the up-sampled daily/weekly
    // channels are piecewise constant, so one served day has degenerate
    // support. Their sketches stay empty, which the detector reads as
    // "not monitored".
    const features::FeatureGroup group = features_->ChannelGroup(k);
    if (group != features::FeatureGroup::kKpi &&
        group != features::FeatureGroup::kHourlyScore) {
      fingerprints->channels[static_cast<size_t>(k)] = monitor::BuildSketch(
          features_->ChannelName(k), {}, kFingerprintReservoir, seed);
      return;
    }
    std::vector<float> values;
    values.reserve(static_cast<size_t>(n) *
                   static_cast<size_t>(last_hour - first_hour));
    for (int i = 0; i < n; ++i) {
      for (int j = first_hour; j < last_hour; ++j) {
        values.push_back(tensor.At(i, j, k));
      }
    }
    fingerprints->channels[static_cast<size_t>(k)] = monitor::BuildSketch(
        features_->ChannelName(k), values, kFingerprintReservoir, seed);
  });

  // Score reference: what the trained classifier predicts on the day-t
  // windows — the distribution Run() reports and serving should keep
  // producing while the world looks like the training window.
  Matrix<float> rows =
      BuildPredictionRows(config, *ExtractorFor(config.model));
  std::vector<float> scores(static_cast<size_t>(n));
  util::ParallelFor(0, n, [&](int64_t i) {
    scores[static_cast<size_t>(i)] = static_cast<float>(
        classifier.PredictProba(rows.Row(static_cast<int>(i))));
  });
  fingerprints->scores =
      monitor::BuildSketch("prediction_score", scores, kFingerprintReservoir,
                           config.seed ^ 0x5343ull << 32);
  return fingerprints;
}

std::unique_ptr<serialize::ForecastBundle> Forecaster::TrainBundle(
    const ForecastConfig& config) const {
  HOTSPOT_CHECK(ExtractorFor(config.model) != nullptr)
      << "only classifier models can be bundled";
  auto bundle = std::make_unique<serialize::ForecastBundle>();
  bundle->model = config.model;
  bundle->window_days = config.w;
  bundle->horizon_days = config.h;
  bundle->num_channels = features_->num_channels();
  bundle->feature_dim = ExtractorFor(config.model)
                            ->OutputDim(config.w, features_->num_channels());
  bundle->classifier = TrainClassifier(config);
  bundle->fingerprints = BuildFingerprints(config, *bundle->classifier);
  bundle->flat =
      std::make_unique<ml::FlatForest>(ml::FlatForest::Compile(*bundle->classifier));
  return bundle;
}

ForecastResult Forecaster::Run(const ForecastConfig& config) const {
  HOTSPOT_CHECK_GE(config.h, 1);
  HOTSPOT_CHECK_GE(config.w, 1);
  HOTSPOT_CHECK_GE(config.t - config.h - config.w, 0);
  HOTSPOT_CHECK_LT(config.t, target_labels_->cols());

  ForecastResult result;
  result.model = config.model;

  switch (config.model) {
    case ModelKind::kRandom: {
      // Deterministic per-(model, t, h, w) seed stream.
      Rng seeder(config.seed ^
                 (static_cast<uint64_t>(config.t) << 40) ^
                 (static_cast<uint64_t>(config.h) << 24) ^
                 (static_cast<uint64_t>(config.w) << 8) ^
                 static_cast<uint64_t>(config.model));
      Rng rng = seeder.Fork(1);
      result.predictions = RandomBaseline(num_sectors(), &rng);
      return result;
    }
    case ModelKind::kPersist:
      result.predictions = PersistBaseline(*target_labels_, config.t);
      return result;
    case ModelKind::kAverage:
      result.predictions =
          AverageBaseline(*daily_scores_, config.t, config.w);
      return result;
    case ModelKind::kTrend:
      result.predictions = TrendBaseline(*daily_scores_, config.t, config.w);
      return result;
    default:
      break;
  }

  std::unique_ptr<ml::BinaryClassifier> classifier =
      TrainClassifier(config);
  const features::FeatureExtractor& extractor =
      *ExtractorFor(config.model);
  Matrix<float> prediction_rows = BuildPredictionRows(config, extractor);
  {
    HOTSPOT_SPAN("forecast/predict");
    result.predictions.resize(static_cast<size_t>(num_sectors()));
    // Batch inference parallel over sectors (PredictProba is const).
    util::ParallelFor(0, num_sectors(), [&](int64_t i) {
      result.predictions[static_cast<size_t>(i)] =
          static_cast<float>(classifier->PredictProba(
              prediction_rows.Row(static_cast<int>(i))));
    });
  }
  result.importances = classifier->FeatureImportances();
  result.feature_dim = prediction_rows.cols();
  return result;
}

}  // namespace hotspot
