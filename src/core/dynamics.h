#ifndef HOTSPOT_CORE_DYNAMICS_H_
#define HOTSPOT_CORE_DYNAMICS_H_

#include <string>
#include <vector>

#include "simnet/topology.h"
#include "stats/histogram.h"
#include "tensor/matrix.h"

namespace hotspot {

/// Duration statistics of Sec. III (Figs. 6-7).
struct DurationStats {
  explicit DurationStats(int weeks);

  CountHistogram hours_per_day;      ///< Fig. 6A: hot hours per hot day
  CountHistogram days_per_week;      ///< Fig. 6B: hot days per hot week
  CountHistogram weeks_as_hotspot;   ///< Fig. 6C: hot weeks per hot sector
  CountHistogram consecutive_hours;  ///< Fig. 7A
  CountHistogram consecutive_days;   ///< Fig. 7B
};

/// Computes all duration histograms from the three label matrices
/// (sector-days/weeks with zero hot samples are not counted, matching the
/// paper's "as hot spot" phrasing).
DurationStats ComputeDurationStats(const Matrix<float>& hourly_labels,
                                   const Matrix<float>& daily_labels,
                                   const Matrix<float>& weekly_labels);

/// One row of Table II: a 7-day hot pattern and its relative count.
struct WeeklyPattern {
  int bits = 0;          ///< bit d set = hot on weekday d (0 = Monday)
  long long count = 0;
  double relative_count = 0.0;  ///< normalized excluding the all-zero pattern
};

/// Counts (sector, week) day-patterns of `daily_labels` (columns must be a
/// multiple of 7, aligned to Monday) and returns the `top_k` most frequent
/// non-empty patterns, with counts normalized over non-empty patterns
/// (Table II's confidentiality convention).
std::vector<WeeklyPattern> TopWeeklyPatterns(const Matrix<float>& daily_labels,
                                             int top_k);

/// "M T W T F S S"-style rendering, hyphen for non-hot days.
std::string PatternString(int bits);

/// Weekly-pattern temporal consistency (Sec. III): per sector, the
/// correlation between its average week and each individual week.
struct ConsistencyStats {
  double mean = 0.0;
  double p5 = 0.0, p25 = 0.0, p50 = 0.0, p75 = 0.0, p95 = 0.0;
  long long count = 0;
};

ConsistencyStats WeeklyConsistency(const Matrix<float>& daily_labels);

/// Box-plot summary of correlations inside one spatial distance bucket
/// (Fig. 8): median, quartiles and 5/95 % whiskers across sectors.
struct BucketSummary {
  double lo_km = 0.0;
  double hi_km = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
  double whisker_lo = 0.0;
  double whisker_hi = 0.0;
  int count = 0;
};

/// The logarithmically-spaced distance bucket edges used by Fig. 8; the
/// first bucket [0, 0.05) holds same-tower sectors.
std::vector<double> SpatialBucketEdges();

enum class SpatialAggregation { kAverage, kMaximum };

/// Fig. 8A/B: for every sector, correlate its hourly hot-spot sequence
/// with its `num_neighbors` spatially closest sectors, aggregate per
/// (sector, distance bucket) by mean or max, and summarize each bucket
/// across sectors.
std::vector<BucketSummary> SpatialCorrelationByDistance(
    const simnet::Topology& topology, const Matrix<float>& hourly_labels,
    int num_neighbors, SpatialAggregation aggregation);

/// Fig. 8C: for every sector, find its `num_best` most correlated sectors
/// anywhere in the country, then summarize the per-(sector, bucket)
/// maxima.
std::vector<BucketSummary> BestCorrelationByDistance(
    const simnet::Topology& topology, const Matrix<float>& hourly_labels,
    int num_best);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_DYNAMICS_H_
