#ifndef HOTSPOT_CORE_BASELINES_H_
#define HOTSPOT_CORE_BASELINES_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot {

/// The four baseline forecasters of Sec. IV-C. Each returns one ranking
/// score per sector for the target day t+h, computed from information
/// available at day t. Outputs need not be probabilities — only the
/// induced ranking matters for ψ (Sec. IV-B).

/// Random model F0: Ŷ_{i,t+h} = G(0,1). Chance-level reference.
std::vector<float> RandomBaseline(int num_sectors, Rng* rng);

/// Persistence: Ŷ_{i,t+h} = Y_{i,t}.
std::vector<float> PersistBaseline(const Matrix<float>& daily_labels, int t);

/// Average: Ŷ_{i,t+h} = µ(t, w, S_{i,:}) over the daily scores.
std::vector<float> AverageBaseline(const Matrix<float>& daily_scores, int t,
                                   int w);

/// Trend: the Average plus a projection of the current score trend,
///   Ŷ = µ(t, w, S) + [µ(t, w/2, S) − µ(t − w/2, w/2, S)] / (w/2).
/// For w == 1 the trend term is the difference of the last two days.
std::vector<float> TrendBaseline(const Matrix<float>& daily_scores, int t,
                                 int w);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_BASELINES_H_
