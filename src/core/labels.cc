#include "core/labels.h"

#include "tensor/temporal.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot {

Matrix<float> HotSpotLabels(const Matrix<float>& scores, double epsilon) {
  Matrix<float> labels(scores.rows(), scores.cols(), 0.0f);
  // Parallel over sectors; sector i only writes label row i.
  util::ParallelFor(0, scores.rows(), [&](int64_t i) {
    const float* src = scores.Row(static_cast<int>(i));
    float* dst = labels.Row(static_cast<int>(i));
    for (int j = 0; j < scores.cols(); ++j) {
      if (!IsMissing(src[j]) && src[j] >= epsilon) dst[j] = 1.0f;
    }
  });
  return labels;
}

Matrix<float> BecomeHotSpotLabels(const Matrix<float>& daily_scores,
                                  double epsilon) {
  const int n = daily_scores.rows();
  const int days = daily_scores.cols();
  Matrix<float> labels(n, days, 0.0f);
  // Parallel over sectors; sector i only writes label row i.
  util::ParallelFor(0, n, [&](int64_t i64) {
    const int i = static_cast<int>(i64);
    std::vector<float> series = daily_scores.RowVector(i);
    for (int j = 0; j + kDaysPerWeek < days; ++j) {
      double week_before = TrailingMean(j, kDaysPerWeek, series);
      double week_after =
          TrailingMean(j + kDaysPerWeek, kDaysPerWeek, series);
      float today = series[static_cast<size_t>(j)];
      float tomorrow = series[static_cast<size_t>(j + 1)];
      bool positive =
          !std::isnan(week_before) && week_before < epsilon &&
          !std::isnan(week_after) && week_after >= epsilon &&
          !IsMissing(today) && today < epsilon &&
          !IsMissing(tomorrow) && tomorrow >= epsilon;
      if (positive) labels.At(i, j) = 1.0f;
    }
  });
  return labels;
}

double PositiveRate(const Matrix<float>& labels) {
  if (labels.size() == 0) return 0.0;
  double positives = 0.0;
  for (float y : labels.data()) {
    if (y != 0.0f) positives += 1.0;
  }
  return positives / static_cast<double>(labels.size());
}

}  // namespace hotspot
