#ifndef HOTSPOT_CORE_STUDY_H_
#define HOTSPOT_CORE_STUDY_H_

#include <cmath>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/forecaster.h"
#include "core/score.h"
#include "features/feature_tensor.h"
#include "nn/imputer.h"
#include "simnet/generator.h"
#include "tensor/matrix.h"

namespace hotspot {

/// How missing values are handled before scoring (Sec. II-C; the
/// autoencoder is the paper's method, the others are ablation baselines).
enum class ImputationKind { kAutoencoder, kForwardFill, kFeatureMean, kNone };

/// End-to-end preprocessing options.
struct StudyOptions {
  ImputationKind imputation = ImputationKind::kForwardFill;
  /// Autoencoder settings (used when imputation == kAutoencoder). The
  /// defaults keep bench runtimes sane; raise epochs for fidelity.
  nn::ImputerConfig imputer;
  /// Overrides the hot threshold ε (NaN = use the score config default).
  double hot_threshold_override = std::nan("");
};

/// Everything the paper's analyses and forecasts consume, derived from a
/// synthetic network by the standard pipeline:
///   sector filter → imputation → S'/S^d/S^w → Y labels → X tensor.
struct Study {
  simnet::SyntheticNetwork network;   ///< post-filter network (ground truth)
  ScoreConfig score_config;
  ScoreSet scores;                    ///< hourly/daily/weekly
  Matrix<float> hourly_labels;        ///< Y^h
  Matrix<float> daily_labels;         ///< Y^d
  Matrix<float> weekly_labels;        ///< Y^w
  Matrix<float> become_labels;        ///< "become a hot spot" (daily)
  features::FeatureTensor features;   ///< X (Eq. 5)
  int sectors_filtered_out = 0;
  nn::ImputerReport imputer_report;   ///< meaningful for kAutoencoder

  int num_sectors() const { return network.num_sectors(); }
  int num_days() const { return daily_labels.cols(); }
  int num_weeks() const { return weekly_labels.cols(); }

  /// Target-label matrix for a scenario.
  const Matrix<float>& TargetLabels(TargetKind target) const {
    return target == TargetKind::kBeHotSpot ? daily_labels : become_labels;
  }

  /// Builds a Forecaster bound to this study's tensors for a scenario.
  Forecaster MakeForecaster(TargetKind target) const {
    return Forecaster(&features, &scores.daily, &TargetLabels(target));
  }
};

/// Runs the full pipeline on a freshly generated network.
Study BuildStudy(const simnet::GeneratorConfig& generator_config,
                 const StudyOptions& options = {});

/// Runs the full pipeline on an already generated network (consumed).
Study BuildStudyFromNetwork(simnet::SyntheticNetwork network,
                            const StudyOptions& options = {});

}  // namespace hotspot

#endif  // HOTSPOT_CORE_STUDY_H_
