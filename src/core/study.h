#ifndef HOTSPOT_CORE_STUDY_H_
#define HOTSPOT_CORE_STUDY_H_

#include <cmath>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/forecaster.h"
#include "core/score.h"
#include "features/feature_tensor.h"
#include "nn/imputer.h"
#include "simnet/generator.h"
#include "tensor/matrix.h"

namespace hotspot {

namespace obs {
class PipelineContext;
}  // namespace obs

/// How missing values are handled before scoring (Sec. II-C; the
/// autoencoder is the paper's method, the others are ablation baselines).
enum class ImputationKind { kAutoencoder, kForwardFill, kFeatureMean, kNone };

/// End-to-end preprocessing options.
struct StudyOptions {
  ImputationKind imputation = ImputationKind::kForwardFill;
  /// Autoencoder settings (used when imputation == kAutoencoder). The
  /// defaults keep bench runtimes sane; raise epochs for fidelity.
  nn::ImputerConfig imputer;
  /// Overrides the hot threshold ε (NaN = use the score config default).
  double hot_threshold_override = std::nan("");
  /// Optional observability context: BuildStudy installs it for the
  /// duration of the call, so stage spans and pipeline metrics land in it
  /// (see src/obs). Null = observability off (near-zero overhead); the
  /// result is bitwise-identical either way. Must outlive the call.
  obs::PipelineContext* context = nullptr;
};

/// Everything the paper's analyses and forecasts consume, derived from a
/// synthetic network by the standard pipeline:
///   sector filter → imputation → S'/S^d/S^w → Y labels → X tensor.
struct Study {
  simnet::SyntheticNetwork network;   ///< post-filter network (ground truth)
  ScoreConfig score_config;
  ScoreSet scores;                    ///< hourly/daily/weekly
  Matrix<float> hourly_labels;        ///< Y^h
  Matrix<float> daily_labels;         ///< Y^d
  Matrix<float> weekly_labels;        ///< Y^w
  Matrix<float> become_labels;        ///< "become a hot spot" (daily)
  features::FeatureTensor features;   ///< X (Eq. 5)
  int sectors_filtered_out = 0;
  nn::ImputerReport imputer_report;   ///< meaningful for kAutoencoder

  int num_sectors() const { return network.num_sectors(); }
  int num_days() const { return daily_labels.cols(); }
  int num_weeks() const { return weekly_labels.cols(); }

  /// Target-label matrix for a scenario.
  const Matrix<float>& TargetLabels(TargetKind target) const {
    return target == TargetKind::kBeHotSpot ? daily_labels : become_labels;
  }

  /// Builds a Forecaster bound to this study's tensors for a scenario.
  Forecaster MakeForecaster(TargetKind target) const {
    return Forecaster(&features, &scores.daily, &TargetLabels(target));
  }
};

/// The input side of the study pipeline: either a generator config (a
/// network is generated first) or an already built network (consumed).
/// Implicitly constructible from both, so call sites read
/// `BuildStudy(config)` / `BuildStudy(std::move(network))`.
class StudyInput {
 public:
  StudyInput(simnet::GeneratorConfig config)  // NOLINT(runtime/explicit)
      : config_(std::move(config)) {}
  StudyInput(simnet::SyntheticNetwork network)  // NOLINT(runtime/explicit)
      : network_(std::move(network)), has_network_(true) {}

  bool has_network() const { return has_network_; }
  const simnet::GeneratorConfig& config() const { return config_; }

  /// Moves the network out (generating from the config when none was
  /// supplied). One-shot: a StudyInput is consumed by BuildStudy.
  simnet::SyntheticNetwork TakeNetwork() &&;

 private:
  simnet::GeneratorConfig config_;
  simnet::SyntheticNetwork network_;
  bool has_network_ = false;
};

/// Runs the full pipeline — sector filter, imputation, scores, labels,
/// feature tensor — on the given input. The single entry point: StudyInput
/// converts implicitly from both a GeneratorConfig and a built network.
/// (The legacy BuildStudy(config)/BuildStudyFromNetwork(network) wrapper
/// pair was removed after its deprecation cycle.)
Study BuildStudy(StudyInput input, const StudyOptions& options = {});

}  // namespace hotspot

#endif  // HOTSPOT_CORE_STUDY_H_
