#ifndef HOTSPOT_CORE_FORECAST_SERVICE_H_
#define HOTSPOT_CORE_FORECAST_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ml/flat_tree.h"
#include "monitor/monitor.h"
#include "serialize/bundle.h"
#include "tensor/tensor3.h"

namespace hotspot {

/// Which predict engine ForecastService runs a batch through. kFlat is the
/// default: the classifier re-compiled into SoA arrays (ml::FlatForest) and
/// traversed in 8-row blocks — bitwise identical to kClassic, the original
/// pointer-walking BinaryClassifier::PredictProba path, which remains
/// available as a runtime opt-out (HOTSPOT_PREDICT_ENGINE=classic).
enum class PredictEngine { kFlat, kClassic };

/// Warm-start forecast serving: loads a ForecastBundle once and answers
/// batched predictions over incoming KPI windows for the rest of its
/// lifetime — the deployment half of the train-offline / serve-online
/// split the bundle format exists for.
///
/// Serving reuses the training-time feature path (the extractor the
/// bundle's model kind pins) on caller-provided windows, runs the batch
/// through the thread pool (one sector per task, index-owned writes, so
/// results are bitwise-independent of HOTSPOT_NUM_THREADS), and reports
/// under the `serve/` observability namespace: counters serve/requests
/// and serve/windows, spans serve/load and serve/predict, and the
/// serve/latency_seconds histogram.
///
/// When the bundle carries monitoring fingerprints (format v2), the
/// service also runs an online ServingMonitor: every Predict batch feeds
/// the drift detector and the latency SLO tracker, RecordOutcomes()
/// accepts matured ground-truth labels for model-quality tracking, and
/// Health() snapshots the whole thing. Monitoring never feeds back into
/// the scores — predictions are bitwise identical with it on or off.
/// Bundles without fingerprints (v1 files) serve normally with
/// monitoring gracefully disabled.
///
/// Hot bundle swap (RCU): everything a prediction reads — the bundle, the
/// extractor it pins, the compiled flat forest, the monitor — lives in one
/// immutable ServingState published through a guarded shared_ptr cell.
/// PromoteBundle() builds a fully validated replacement state and installs
/// it with a single pointer publish; each Predict batch snapshots the state
/// pointer exactly once and holds a reference for the whole batch, so
/// in-flight batches finish on the model they started on, new batches see
/// the new model, and no batch ever observes a half-swapped mix (the
/// swap-linearizability contract tests/fleet_test.cc tortures under TSan).
/// Every published state carries a monotonic generation tag that Predict
/// reports out, so callers can prove exactly which model served each row.
/// Promotion failures (unservable bundle, serving-universe mismatch) are
/// atomic: the error is returned and the old state keeps serving.
class ForecastService {
 public:
  /// Takes ownership of a loaded (servable) bundle.
  explicit ForecastService(std::unique_ptr<serialize::ForecastBundle> bundle);

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Loads the bundle at `path` and wraps it in a service. On error the
  /// status carries the reason and `service` is untouched.
  static serialize::Status Load(const std::string& path,
                                std::unique_ptr<ForecastService>* service);

  /// Scores one batch of sector windows. `windows` is a
  /// sectors x (24·window_days) x channels tensor — each sector's slab is
  /// the X_{i, t−w : t, :} slice of Eq. 6 — and the result is one hot-spot
  /// score per sector for day t+h. When `served_generation` is non-null it
  /// receives the generation tag of the bundle that scored this batch —
  /// the whole batch, every row (batches never straddle a swap).
  std::vector<float> Predict(const Tensor3<float>& windows,
                             uint64_t* served_generation = nullptr) const;

  /// Convenience for callers that hold a full feature tensor: scores the
  /// windows ending at `end_day` for every sector.
  std::vector<float> PredictAtDay(const features::FeatureTensor& features,
                                  int end_day,
                                  uint64_t* served_generation = nullptr) const;

  /// RCU hot swap: validates `bundle` (servable classifier, same serving
  /// universe — window_days, horizon_days, num_channels — as the current
  /// bundle), compiles its flat engine if absent, arms its monitor when it
  /// carries fingerprints (reusing the current monitor config), and
  /// installs it atomically under live traffic. In-flight batches finish
  /// on the old bundle; the old state is freed when its last batch drops
  /// its reference. On failure the status names the reason, the old
  /// bundle keeps serving and the generation does not advance. Thread-safe
  /// against Predict from any number of threads; concurrent promotions are
  /// serialized. `new_generation` (optional) receives the installed
  /// state's tag. Counted under serve/promotions.
  serialize::Status PromoteBundle(
      std::unique_ptr<serialize::ForecastBundle> bundle,
      uint64_t* new_generation = nullptr);

  /// Generation tag of the currently installed bundle: 0 at construction,
  /// +1 per successful promotion (monitoring toggles do not advance it).
  uint64_t generation() const;

  /// True when `score` crosses the bundle's operator hot-spot threshold.
  bool IsHot(float score) const;

  /// (Re)starts online monitoring with `config`. Returns false — and
  /// leaves monitoring off — when the bundle has no fingerprints (v1
  /// files). Monitoring starts automatically with a default config at
  /// construction when fingerprints are present, so this is only needed
  /// to tune thresholds or to re-enable after DisableMonitoring().
  bool EnableMonitoring(const monitor::MonitorConfig& config = {});
  void DisableMonitoring();
  bool monitoring_enabled() const;

  /// Feeds matured ground-truth labels for previously served scores into
  /// the quality tracker (scores[i] and labels[i] are the same
  /// sector/day). No-op when monitoring is disabled.
  void RecordOutcomes(const std::vector<float>& scores,
                      const std::vector<float>& labels) const;

  /// Current health snapshot. With monitoring disabled the report says so
  /// (monitoring_enabled = false, everything OK and empty).
  monitor::HealthReport Health() const;

  /// The currently installed bundle. The reference is only stable while
  /// no concurrent PromoteBundle runs — once a promotion publishes a new
  /// state it can dangle as soon as the old state's last batch reference
  /// drops. Prefer bundle_snapshot() in new code (it keeps the bundle
  /// alive for as long as the returned pointer is held), or the
  /// serving-universe invariant accessors below when only the shape is
  /// needed; bundle() remains for single-threaded tooling and tests.
  const serialize::ForecastBundle& bundle() const;
  std::shared_ptr<const serialize::ForecastBundle> bundle_snapshot() const;

  /// Serving-universe invariants (fixed across promotions, so they are
  /// safe to cache and to read concurrently with swaps).
  int window_hours() const { return 24 * window_days_; }
  int window_days() const { return window_days_; }
  int horizon_days() const { return horizon_days_; }
  int num_channels() const { return num_channels_; }

  /// Predict-engine selection. The service starts on DefaultPredictEngine()
  /// — kFlat unless the HOTSPOT_PREDICT_ENGINE=classic opt-out is set — and
  /// can be switched at any time; scores are bitwise identical either way
  /// (enforced by tests/flat_tree_test.cc).
  static PredictEngine DefaultPredictEngine();
  void set_predict_engine(PredictEngine engine) {
    engine_.store(engine, std::memory_order_relaxed);
  }
  PredictEngine predict_engine() const {
    return engine_.load(std::memory_order_relaxed);
  }

  /// Flat-kernel selection (scalar vs AVX2), same contract as the engine
  /// switch: the service starts on ml::FlatForest::ChooseKernel() — the
  /// CPUID-gated best kernel unless the HOTSPOT_FLAT_KERNEL=scalar env
  /// opt-out is set — and can be repointed at any time. The env knob is a
  /// process-wide *defaults layer*; these setters (and
  /// pipeline::ServingPipeline::Options) are the primary API. Kernels are
  /// bitwise-identical (enforced by tests/flat_tree_test.cc), so switching
  /// never changes scores.
  void set_flat_kernel(ml::FlatKernel kernel) {
    kernel_.store(kernel, std::memory_order_relaxed);
  }
  ml::FlatKernel flat_kernel() const {
    return kernel_.load(std::memory_order_relaxed);
  }

  /// The compiled flat forest the kFlat engine runs (never null). Same
  /// stability caveat as bundle().
  const ml::FlatForest& flat_forest() const;

 private:
  /// One immutable serving configuration: the bundle, the extractor its
  /// model kind pins, the (internally synchronized) monitor, and the
  /// generation tag. Published via `state_`; never mutated after
  /// publication — replaced wholesale by PromoteBundle and the monitoring
  /// toggles, which is what makes a reader's single pointer snapshot a
  /// consistent view of all four.
  struct ServingState {
    std::shared_ptr<serialize::ForecastBundle> bundle;
    const features::FeatureExtractor* extractor = nullptr;
    std::shared_ptr<monitor::ServingMonitor> monitor;
    uint64_t generation = 0;
  };

  /// Builds (and validates) the state for `bundle`: extractor selection by
  /// model kind, flat-forest compile when absent, monitor when
  /// fingerprints are present. Returns null with the reason in `error`.
  std::shared_ptr<ServingState> BuildState(
      std::shared_ptr<serialize::ForecastBundle> bundle, uint64_t generation,
      const monitor::MonitorConfig& monitor_config, bool enable_monitoring,
      std::string* error) const;

  std::shared_ptr<const ServingState> state() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return state_;
  }

  void PublishState(std::shared_ptr<const ServingState> next) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state_ = std::move(next);
  }

  /// Shared batch core: extracts the feature row of each of `n` sectors
  /// with `window_of` and scores them through the selected engine. The
  /// flat path works in 8-row blocks (extract + PredictBatch per block,
  /// one block per thread-pool task); the classic path is one sector per
  /// task. Both write scores[i] from sector i only, so results are
  /// bitwise-independent of HOTSPOT_NUM_THREADS and of the engine.
  std::vector<float> ScoreBatch(
      const ServingState& serving, int n,
      const std::function<Matrix<float>(int)>& window_of) const;

  /// The RCU publication point: readers snapshot the pointer once per
  /// batch, writers (PromoteBundle, monitoring toggles — serialized by
  /// `swap_mutex_`) publish a fresh immutable state. The cell is a
  /// mutex-guarded shared_ptr rather than std::atomic<std::shared_ptr>:
  /// libstdc++ 12's _Sp_atomic unlocks its reader spinlock with a relaxed
  /// RMW (shared_ptr_atomic.h, load()), which leaves no happens-before
  /// edge from a reader's raw-pointer read to the next writer's store —
  /// ThreadSanitizer flags the pair, and the letter of the memory model
  /// agrees. The lock here covers only the refcount bump; batches run on
  /// the snapshot outside it, so promotions still never wait on in-flight
  /// batches and a batch can never observe a torn state.
  std::shared_ptr<const ServingState> state_;
  mutable std::mutex state_mutex_;
  std::mutex swap_mutex_;

  // Serving-universe invariants, pinned at construction and enforced on
  // every promotion — the reason they are plain members, not state.
  int window_days_ = 0;
  int horizon_days_ = 0;
  int num_channels_ = 0;

  std::atomic<PredictEngine> engine_{PredictEngine::kFlat};
  std::atomic<ml::FlatKernel> kernel_{ml::FlatKernel::kScalar};
  features::RawExtractor raw_extractor_;
  features::DailyPercentileExtractor percentile_extractor_;
  features::HandcraftedExtractor handcrafted_extractor_;
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_FORECAST_SERVICE_H_
