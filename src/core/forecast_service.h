#ifndef HOTSPOT_CORE_FORECAST_SERVICE_H_
#define HOTSPOT_CORE_FORECAST_SERVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/flat_tree.h"
#include "monitor/monitor.h"
#include "serialize/bundle.h"
#include "tensor/tensor3.h"

namespace hotspot {

/// Which predict engine ForecastService runs a batch through. kFlat is the
/// default: the classifier re-compiled into SoA arrays (ml::FlatForest) and
/// traversed in 8-row blocks — bitwise identical to kClassic, the original
/// pointer-walking BinaryClassifier::PredictProba path, which remains
/// available as a runtime opt-out (HOTSPOT_PREDICT_ENGINE=classic).
enum class PredictEngine { kFlat, kClassic };

/// Warm-start forecast serving: loads a ForecastBundle once and answers
/// batched predictions over incoming KPI windows for the rest of its
/// lifetime — the deployment half of the train-offline / serve-online
/// split the bundle format exists for.
///
/// Serving reuses the training-time feature path (the extractor the
/// bundle's model kind pins) on caller-provided windows, runs the batch
/// through the thread pool (one sector per task, index-owned writes, so
/// results are bitwise-independent of HOTSPOT_NUM_THREADS), and reports
/// under the `serve/` observability namespace: counters serve/requests
/// and serve/windows, spans serve/load and serve/predict, and the
/// serve/latency_seconds histogram.
///
/// When the bundle carries monitoring fingerprints (format v2), the
/// service also runs an online ServingMonitor: every Predict batch feeds
/// the drift detector and the latency SLO tracker, RecordOutcomes()
/// accepts matured ground-truth labels for model-quality tracking, and
/// Health() snapshots the whole thing. Monitoring never feeds back into
/// the scores — predictions are bitwise identical with it on or off.
/// Bundles without fingerprints (v1 files) serve normally with
/// monitoring gracefully disabled.
class ForecastService {
 public:
  /// Takes ownership of a loaded (servable) bundle.
  explicit ForecastService(std::unique_ptr<serialize::ForecastBundle> bundle);

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// Loads the bundle at `path` and wraps it in a service. On error the
  /// status carries the reason and `service` is untouched.
  static serialize::Status Load(const std::string& path,
                                std::unique_ptr<ForecastService>* service);

  /// Scores one batch of sector windows. `windows` is a
  /// sectors x (24·window_days) x channels tensor — each sector's slab is
  /// the X_{i, t−w : t, :} slice of Eq. 6 — and the result is one hot-spot
  /// score per sector for day t+h.
  std::vector<float> Predict(const Tensor3<float>& windows) const;

  /// Convenience for callers that hold a full feature tensor: scores the
  /// windows ending at `end_day` for every sector.
  std::vector<float> PredictAtDay(const features::FeatureTensor& features,
                                  int end_day) const;

  /// True when `score` crosses the bundle's operator hot-spot threshold.
  bool IsHot(float score) const {
    return score >= bundle_->score.hot_threshold;
  }

  /// (Re)starts online monitoring with `config`. Returns false — and
  /// leaves monitoring off — when the bundle has no fingerprints (v1
  /// files). Monitoring starts automatically with a default config at
  /// construction when fingerprints are present, so this is only needed
  /// to tune thresholds or to re-enable after DisableMonitoring().
  bool EnableMonitoring(const monitor::MonitorConfig& config = {});
  void DisableMonitoring() { monitor_.reset(); }
  bool monitoring_enabled() const { return monitor_ != nullptr; }

  /// Feeds matured ground-truth labels for previously served scores into
  /// the quality tracker (scores[i] and labels[i] are the same
  /// sector/day). No-op when monitoring is disabled.
  void RecordOutcomes(const std::vector<float>& scores,
                      const std::vector<float>& labels) const;

  /// Current health snapshot. With monitoring disabled the report says so
  /// (monitoring_enabled = false, everything OK and empty).
  monitor::HealthReport Health() const;

  const serialize::ForecastBundle& bundle() const { return *bundle_; }
  int window_hours() const { return 24 * bundle_->window_days; }

  /// Predict-engine selection. The service starts on DefaultPredictEngine()
  /// — kFlat unless the HOTSPOT_PREDICT_ENGINE=classic opt-out is set — and
  /// can be switched at any time; scores are bitwise identical either way
  /// (enforced by tests/flat_tree_test.cc).
  static PredictEngine DefaultPredictEngine();
  void set_predict_engine(PredictEngine engine) { engine_ = engine; }
  PredictEngine predict_engine() const { return engine_; }

  /// Flat-kernel selection (scalar vs AVX2), same contract as the engine
  /// switch: the service starts on ml::FlatForest::ChooseKernel() — the
  /// CPUID-gated best kernel unless the HOTSPOT_FLAT_KERNEL=scalar env
  /// opt-out is set — and can be repointed at any time. The env knob is a
  /// process-wide *defaults layer*; these setters (and
  /// pipeline::ServingPipeline::Options) are the primary API. Kernels are
  /// bitwise-identical (enforced by tests/flat_tree_test.cc), so switching
  /// never changes scores.
  void set_flat_kernel(ml::FlatKernel kernel) { kernel_ = kernel; }
  ml::FlatKernel flat_kernel() const { return kernel_; }

  /// The compiled flat forest the kFlat engine runs (never null).
  const ml::FlatForest& flat_forest() const { return *bundle_->flat; }

 private:
  /// Shared batch core: extracts the feature row of each of `n` sectors
  /// with `window_of` and scores them through the selected engine. The
  /// flat path works in 8-row blocks (extract + PredictBatch per block,
  /// one block per thread-pool task); the classic path is one sector per
  /// task. Both write scores[i] from sector i only, so results are
  /// bitwise-independent of HOTSPOT_NUM_THREADS and of the engine.
  std::vector<float> ScoreBatch(
      int n, const std::function<Matrix<float>(int)>& window_of) const;

  std::unique_ptr<serialize::ForecastBundle> bundle_;
  PredictEngine engine_ = PredictEngine::kFlat;
  ml::FlatKernel kernel_ = ml::FlatKernel::kScalar;
  /// Mutable so the const Predict paths can record observations; the
  /// monitor itself is internally synchronized.
  mutable std::unique_ptr<monitor::ServingMonitor> monitor_;
  const features::FeatureExtractor* extractor_ = nullptr;
  features::RawExtractor raw_extractor_;
  features::DailyPercentileExtractor percentile_extractor_;
  features::HandcraftedExtractor handcrafted_extractor_;
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_FORECAST_SERVICE_H_
