#ifndef HOTSPOT_CORE_EVALUATION_H_
#define HOTSPOT_CORE_EVALUATION_H_

#include <map>
#include <mutex>
#include <vector>

#include "core/forecaster.h"
#include "stats/confidence.h"
#include "stats/ks_test.h"

namespace hotspot {

/// One evaluated grid cell: a model at (t, h, w) scored against the true
/// labels of day t+h.
struct CellResult {
  ModelKind model = ModelKind::kRandom;
  int t = 0;
  int h = 0;
  int w = 0;
  double average_precision = 0.0;  ///< ψ
  double lift = 0.0;               ///< Λ = ψ / ψ(Random)
};

/// Evaluates forecasts with the paper's protocol (Sec. IV-B): rank sectors
/// by Ŷ, compute average precision ψ against the labels of day t+h, and
/// report the lift Λ over the empirical random model.
class EvaluationRunner {
 public:
  /// `base` supplies everything but (model, t, h, w); those are filled per
  /// Evaluate call.
  EvaluationRunner(const Forecaster* forecaster, ForecastConfig base);

  /// Runs one (model, t, h, w) cell. The random reference ψ(F₀) is the
  /// mean AP of `random_repeats` independent random rankings of the same
  /// labels (cached per (t, h)). Thread-safe: concurrent Evaluate calls on
  /// the same runner are deterministic, because ψ(F₀) depends only on the
  /// day and the base seed.
  CellResult Evaluate(ModelKind model, int t, int h, int w);

  /// The cached ψ(F₀) for the labels at day t+h. Thread-safe.
  double RandomAp(int t, int h);

  /// Number of random rankings averaged for ψ(F₀). Drops any cached
  /// ψ(F₀) values, which were computed with the previous repeat count —
  /// otherwise a call after a cache-warming Evaluate/RandomAp would keep
  /// serving stale references. Thread-safe, but do not change the repeat
  /// count while a sweep is in flight.
  void set_random_repeats(int repeats) {
    std::lock_guard<std::mutex> lock(random_ap_mutex_);
    random_repeats_ = repeats;
    random_ap_by_day_.clear();
  }

 private:
  const Forecaster* forecaster_;
  ForecastConfig base_;
  int random_repeats_ = 11;
  std::mutex random_ap_mutex_;              ///< guards the cache below
  std::map<int, double> random_ap_by_day_;  ///< keyed by t+h
};

/// Mean lift with a 95 % CI across the t axis for a fixed (model, h, w)
/// (the shaded series of Figs. 9-14). Cells with NaN lift are skipped.
MeanCi AggregateLiftOverT(const std::vector<CellResult>& cells,
                          ModelKind model, int h, int w);

/// Mean ratio ∆ of `model` over `reference` with a 95 % CI across t,
/// pairing cells by t (Figs. 10/12).
MeanCi AggregateDeltaOverT(const std::vector<CellResult>& cells,
                           ModelKind model, ModelKind reference, int h,
                           int w);

/// The temporal-stability analysis of Sec. V-A: for every (model, h, w)
/// present in `cells`, split the ψ values by t into [t_split_low, t_mid]
/// and (t_mid, t_split_high] and run a two-sample KS test. Returns the
/// p-values of all combinations.
std::vector<double> TemporalStabilityPValues(
    const std::vector<CellResult>& cells, int t_mid);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_EVALUATION_H_
