#include "core/score.h"

#include "obs/pipeline_context.h"
#include "tensor/temporal.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot {

Matrix<float> ComputeHourlyScore(const Tensor3<float>& kpis,
                                 const ScoreConfig& config) {
  HOTSPOT_CHECK_EQ(kpis.dim2(), config.num_indicators());
  const int n = kpis.dim0();
  const int hours = kpis.dim1();
  const int l = kpis.dim2();
  Matrix<float> score(n, hours);
  // Parallel over sectors; sector i only writes score row i.
  util::ParallelFor(0, n, [&](int64_t i64) {
    const int i = static_cast<int>(i64);
    for (int j = 0; j < hours; ++j) {
      const float* slice = kpis.Slice(i, j);
      double tripped = 0.0;
      double available = 0.0;
      for (int k = 0; k < l; ++k) {
        float value = slice[k];
        if (IsMissing(value)) continue;
        const ScoreConfig::Indicator& indicator =
            config.indicators[static_cast<size_t>(k)];
        available += indicator.weight;
        bool bad = indicator.higher_is_worse
                       ? value > indicator.threshold
                       : value < indicator.threshold;
        if (bad) tripped += indicator.weight;
      }
      score.At(i, j) = available > 0.0
                           ? static_cast<float>(tripped / available)
                           : MissingValue();
    }
  });
  return score;
}

ScoreSet ComputeScores(const Tensor3<float>& kpis,
                       const ScoreConfig& config) {
  HOTSPOT_SPAN("score/compute");
  ScoreSet scores;
  scores.hourly = ComputeHourlyScore(kpis, config);
  scores.daily = IntegrateScores(scores.hourly, Resolution::kDaily);
  scores.weekly = IntegrateScores(scores.hourly, Resolution::kWeekly);
  return scores;
}

}  // namespace hotspot
