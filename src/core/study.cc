#include "core/study.h"

#include <cmath>

#include "core/labels.h"
#include "core/sector_filter.h"
#include "util/logging.h"

namespace hotspot {

Study BuildStudy(const simnet::GeneratorConfig& generator_config,
                 const StudyOptions& options) {
  return BuildStudyFromNetwork(simnet::GenerateNetwork(generator_config),
                               options);
}

Study BuildStudyFromNetwork(simnet::SyntheticNetwork network,
                            const StudyOptions& options) {
  Study study;

  // 1. Sector filtering (Sec. II-C).
  std::vector<bool> keep = SectorFilterMask(network.kpis);
  int kept = 0;
  for (bool k : keep) {
    if (k) ++kept;
  }
  study.sectors_filtered_out = network.num_sectors() - kept;
  if (study.sectors_filtered_out > 0) {
    network.kpis = FilterSectors(network.kpis, keep);
    network.true_load = FilterRows(network.true_load, keep);
    network.true_failure = FilterRows(network.true_failure, keep);
    network.true_degradation = FilterRows(network.true_degradation, keep);
    network.true_precursor = FilterRows(network.true_precursor, keep);
    network.topology = network.topology.Filtered(keep);
    std::vector<simnet::SectorTraits> traits;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) traits.push_back(network.traits[i]);
    }
    network.traits = std::move(traits);
    // Event lists keep original ids; ground-truth consumers should use the
    // matrices, which are filtered consistently.
  }

  // 2. Imputation.
  switch (options.imputation) {
    case ImputationKind::kAutoencoder: {
      nn::KpiImputer imputer(options.imputer);
      study.imputer_report = imputer.FitAndImpute(&network.kpis);
      // The autoencoder only covers whole slices; guarantee completeness.
      nn::ImputeForwardFill(&network.kpis);
      break;
    }
    case ImputationKind::kForwardFill:
      nn::ImputeForwardFill(&network.kpis);
      break;
    case ImputationKind::kFeatureMean:
      nn::ImputeFeatureMean(&network.kpis);
      break;
    case ImputationKind::kNone:
      break;
  }

  // 3. Scores and labels.
  study.score_config = ScoreConfigFromCatalog(network.catalog);
  if (!std::isnan(options.hot_threshold_override)) {
    study.score_config.hot_threshold = options.hot_threshold_override;
  }
  study.scores = ComputeScores(network.kpis, study.score_config);
  double epsilon = study.score_config.hot_threshold;
  study.hourly_labels = HotSpotLabels(study.scores.hourly, epsilon);
  study.daily_labels = HotSpotLabels(study.scores.daily, epsilon);
  study.weekly_labels = HotSpotLabels(study.scores.weekly, epsilon);
  study.become_labels = BecomeHotSpotLabels(study.scores.daily, epsilon);

  // 4. The X tensor (Eq. 5).
  std::vector<std::string> kpi_names;
  kpi_names.reserve(static_cast<size_t>(network.catalog.size()));
  for (const simnet::KpiSpec& spec : network.catalog.specs()) {
    kpi_names.push_back(spec.name);
  }
  study.features = features::FeatureTensor::Build(
      network.kpis, network.calendar_matrix, study.scores.hourly,
      study.scores.daily, study.scores.weekly, study.daily_labels,
      kpi_names);

  study.network = std::move(network);
  return study;
}

}  // namespace hotspot
