#include "core/study.h"

#include <cmath>
#include <utility>

#include "core/labels.h"
#include "core/sector_filter.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"

namespace hotspot {

simnet::SyntheticNetwork StudyInput::TakeNetwork() && {
  if (has_network_) return std::move(network_);
  return simnet::GenerateNetwork(config_);
}

namespace {

Study RunPipeline(simnet::SyntheticNetwork network,
                  const StudyOptions& options) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("study/build");
  Study study;

  // 1. Sector filtering (Sec. II-C).
  {
    HOTSPOT_SPAN("study/filter");
    std::vector<bool> keep = SectorFilterMask(network.kpis);
    int kept = 0;
    for (bool k : keep) {
      if (k) ++kept;
    }
    study.sectors_filtered_out = network.num_sectors() - kept;
    if (study.sectors_filtered_out > 0) {
      network.kpis = FilterSectors(network.kpis, keep);
      network.true_load = FilterRows(network.true_load, keep);
      network.true_failure = FilterRows(network.true_failure, keep);
      network.true_degradation = FilterRows(network.true_degradation, keep);
      network.true_precursor = FilterRows(network.true_precursor, keep);
      network.topology = network.topology.Filtered(keep);
      std::vector<simnet::SectorTraits> traits;
      for (size_t i = 0; i < keep.size(); ++i) {
        if (keep[i]) traits.push_back(network.traits[i]);
      }
      network.traits = std::move(traits);
      // Event lists keep original ids; ground-truth consumers should use
      // the matrices, which are filtered consistently.
    }
    if (ctx != nullptr) {
      ctx->metrics().counter("study/sectors_kept").Add(
          static_cast<uint64_t>(kept));
      ctx->metrics().counter("study/sectors_filtered_out").Add(
          static_cast<uint64_t>(study.sectors_filtered_out));
    }
  }

  // 2. Imputation.
  {
    HOTSPOT_SPAN("study/impute");
    switch (options.imputation) {
      case ImputationKind::kAutoencoder: {
        nn::KpiImputer imputer(options.imputer);
        study.imputer_report = imputer.FitAndImpute(&network.kpis);
        // The autoencoder only covers whole slices; guarantee completeness.
        nn::ImputeForwardFill(&network.kpis);
        break;
      }
      case ImputationKind::kForwardFill:
        nn::ImputeForwardFill(&network.kpis);
        break;
      case ImputationKind::kFeatureMean:
        nn::ImputeFeatureMean(&network.kpis);
        break;
      case ImputationKind::kNone:
        break;
    }
  }

  // 3. Scores and labels.
  {
    HOTSPOT_SPAN("study/scores");
    study.score_config = ScoreConfigFromCatalog(network.catalog);
    if (!std::isnan(options.hot_threshold_override)) {
      study.score_config.hot_threshold = options.hot_threshold_override;
    }
    study.scores = ComputeScores(network.kpis, study.score_config);
  }
  {
    HOTSPOT_SPAN("study/labels");
    double epsilon = study.score_config.hot_threshold;
    study.hourly_labels = HotSpotLabels(study.scores.hourly, epsilon);
    study.daily_labels = HotSpotLabels(study.scores.daily, epsilon);
    study.weekly_labels = HotSpotLabels(study.scores.weekly, epsilon);
    study.become_labels = BecomeHotSpotLabels(study.scores.daily, epsilon);
  }

  // 4. The X tensor (Eq. 5).
  {
    HOTSPOT_SPAN("study/features");
    std::vector<std::string> kpi_names;
    kpi_names.reserve(static_cast<size_t>(network.catalog.size()));
    for (const simnet::KpiSpec& spec : network.catalog.specs()) {
      kpi_names.push_back(spec.name);
    }
    study.features = features::FeatureTensor::Build(
        network.kpis, network.calendar_matrix, study.scores.hourly,
        study.scores.daily, study.scores.weekly, study.daily_labels,
        kpi_names);
  }

  study.network = std::move(network);
  if (ctx != nullptr) {
    ctx->metrics().gauge("study/num_sectors").Set(study.num_sectors());
    ctx->metrics().gauge("study/num_days").Set(study.num_days());
  }
  return study;
}

}  // namespace

Study BuildStudy(StudyInput input, const StudyOptions& options) {
  obs::PipelineContext::ScopedInstall install(options.context);
  simnet::SyntheticNetwork network = std::move(input).TakeNetwork();
  return RunPipeline(std::move(network), options);
}

}  // namespace hotspot
