#ifndef HOTSPOT_CORE_SCORE_H_
#define HOTSPOT_CORE_SCORE_H_

#include "core/config.h"
#include "tensor/matrix.h"
#include "tensor/tensor3.h"

namespace hotspot {

/// The hot-spot score at the three temporal resolutions of Sec. II-B.
struct ScoreSet {
  Matrix<float> hourly;  ///< S^h, sectors x hours (the normalized S')
  Matrix<float> daily;   ///< S^d, sectors x days
  Matrix<float> weekly;  ///< S^w, sectors x weeks
};

/// Computes the hourly operator score S' (Eq. 1), normalized into [0, 1]
/// by the weight of the indicators actually present at that hour (missing
/// KPI values neither trip nor count). Returns NaN for hours where every
/// KPI is missing.
Matrix<float> ComputeHourlyScore(const Tensor3<float>& kpis,
                                 const ScoreConfig& config);

/// Computes S^h and its daily/weekly integrations (Eq. 2).
ScoreSet ComputeScores(const Tensor3<float>& kpis, const ScoreConfig& config);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_SCORE_H_
