#include "core/importance.h"

#include <algorithm>
#include <numeric>

#include "features/raw_features.h"
#include "tensor/temporal.h"
#include "util/csv.h"
#include "util/logging.h"

namespace hotspot {

ImportanceMap ImportanceMap::FromForecast(
    const features::FeatureTensor& source,
    const features::FeatureExtractor& extractor,
    const std::vector<double>& importances, int window_days) {
  const int channels = source.num_channels();
  HOTSPOT_CHECK_EQ(static_cast<int>(importances.size()),
                   extractor.OutputDim(window_days, channels));
  ImportanceMap map;
  // Hour attribution is only defined for the raw extractor, whose output
  // index factorizes as hour * channels + channel.
  const bool raw =
      dynamic_cast<const features::RawExtractor*>(&extractor) != nullptr;
  int rows = raw ? window_days * kHoursPerDay : 1;
  map.grid_ = Matrix<double>(rows, channels, 0.0);
  for (int index = 0; index < static_cast<int>(importances.size());
       ++index) {
    int channel = extractor.SourceChannel(index, window_days, channels);
    int hour = raw ? features::RawExtractor::SourceHour(index, channels) : 0;
    map.grid_.At(hour, channel) += importances[static_cast<size_t>(index)];
  }
  return map;
}

ImportanceMap ImportanceMap::Average(const std::vector<ImportanceMap>& maps) {
  HOTSPOT_CHECK(!maps.empty());
  ImportanceMap average;
  average.grid_ = Matrix<double>(maps[0].grid_.rows(),
                                 maps[0].grid_.cols(), 0.0);
  for (const ImportanceMap& map : maps) {
    HOTSPOT_CHECK_EQ(map.grid_.rows(), average.grid_.rows());
    HOTSPOT_CHECK_EQ(map.grid_.cols(), average.grid_.cols());
    for (size_t idx = 0; idx < map.grid_.data().size(); ++idx) {
      average.grid_.data()[idx] +=
          map.grid_.data()[idx] / static_cast<double>(maps.size());
    }
  }
  return average;
}

double ImportanceMap::ChannelTotal(int channel) const {
  HOTSPOT_CHECK(channel >= 0 && channel < grid_.cols());
  double total = 0.0;
  for (int row = 0; row < grid_.rows(); ++row) {
    total += grid_.At(row, channel);
  }
  return total;
}

double ImportanceMap::GroupTotal(const features::FeatureTensor& source,
                                 features::FeatureGroup group) const {
  HOTSPOT_CHECK_EQ(source.num_channels(), grid_.cols());
  double total = 0.0;
  for (int channel = 0; channel < grid_.cols(); ++channel) {
    if (source.ChannelGroup(channel) == group) {
      total += ChannelTotal(channel);
    }
  }
  return total;
}

double ImportanceMap::LateWindowShare(int channel, int days) const {
  if (!has_hour_attribution()) return 0.0;
  double total = ChannelTotal(channel);
  if (total <= 0.0) return 0.0;
  int cutoff = std::max(0, grid_.rows() - days * kHoursPerDay);
  double late = 0.0;
  for (int row = cutoff; row < grid_.rows(); ++row) {
    late += grid_.At(row, channel);
  }
  return late / total;
}

std::vector<int> ImportanceMap::RankedChannels() const {
  std::vector<int> order(static_cast<size_t>(grid_.cols()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return ChannelTotal(a) > ChannelTotal(b);
  });
  return order;
}

std::string ImportanceMap::ToTable(const features::FeatureTensor& source,
                                   int top_k) const {
  HOTSPOT_CHECK_EQ(source.num_channels(), grid_.cols());
  TextTable table({"rank", "channel", "group", "importance",
                   "late-window share"});
  std::vector<int> ranked = RankedChannels();
  for (int r = 0; r < top_k && r < static_cast<int>(ranked.size()); ++r) {
    int channel = ranked[static_cast<size_t>(r)];
    table.AddRow({std::to_string(r + 1), source.ChannelName(channel),
                  features::FeatureGroupName(source.ChannelGroup(channel)),
                  FormatNumber(ChannelTotal(channel), 3),
                  FormatNumber(LateWindowShare(channel, 2), 3)});
  }
  return table.ToString();
}

}  // namespace hotspot
