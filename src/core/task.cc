#include "core/task.h"

#include <cstdio>

#include "util/logging.h"

namespace hotspot {

ParameterGrid ParameterGrid::Paper() {
  ParameterGrid grid;
  grid.models = PaperModels();
  for (int t = 52; t <= 87; ++t) grid.t_values.push_back(t);
  grid.h_values = {1, 2, 3, 4, 5, 7, 8, 10, 12, 14, 16, 19, 22, 26, 29};
  grid.w_values = {1, 2, 3, 5, 7, 10, 14, 21};
  return grid;
}

ParameterGrid ParameterGrid::Subsampled(int t_stride,
                                        std::vector<int> h_subset,
                                        std::vector<int> w_subset) {
  HOTSPOT_CHECK_GE(t_stride, 1);
  ParameterGrid grid = Paper();
  std::vector<int> t_values;
  for (size_t index = 0; index < grid.t_values.size(); index += t_stride) {
    t_values.push_back(grid.t_values[index]);
  }
  grid.t_values = std::move(t_values);
  if (!h_subset.empty()) grid.h_values = std::move(h_subset);
  if (!w_subset.empty()) grid.w_values = std::move(w_subset);
  return grid;
}

std::vector<CellResult> RunSweep(EvaluationRunner* runner,
                                 const ParameterGrid& grid,
                                 const SweepOptions& options) {
  HOTSPOT_CHECK(runner != nullptr);
  std::vector<CellResult> cells;
  cells.reserve(static_cast<size_t>(grid.NumCells()));
  long long done = 0;
  for (ModelKind model : grid.models) {
    for (int h : grid.h_values) {
      for (int w : grid.w_values) {
        for (int t : grid.t_values) {
          cells.push_back(runner->Evaluate(model, t, h, w));
          ++done;
        }
      }
    }
    if (options.progress_to_stderr) {
      std::fprintf(stderr, "  sweep: %s done (%lld/%lld cells)\n",
                   ModelName(model), done, grid.NumCells());
    }
  }
  return cells;
}

}  // namespace hotspot
