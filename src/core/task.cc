#include "core/task.h"

#include <chrono>
#include <cstdio>

#include "obs/pipeline_context.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot {

ParameterGrid ParameterGrid::Paper() {
  ParameterGrid grid;
  grid.models = PaperModels();
  for (int t = 52; t <= 87; ++t) grid.t_values.push_back(t);
  grid.h_values = {1, 2, 3, 4, 5, 7, 8, 10, 12, 14, 16, 19, 22, 26, 29};
  grid.w_values = {1, 2, 3, 5, 7, 10, 14, 21};
  return grid;
}

ParameterGrid ParameterGrid::Subsampled(int t_stride,
                                        std::vector<int> h_subset,
                                        std::vector<int> w_subset) {
  HOTSPOT_CHECK_GE(t_stride, 1);
  ParameterGrid grid = Paper();
  std::vector<int> t_values;
  for (size_t index = 0; index < grid.t_values.size(); index += t_stride) {
    t_values.push_back(grid.t_values[index]);
  }
  grid.t_values = std::move(t_values);
  if (!h_subset.empty()) grid.h_values = std::move(h_subset);
  if (!w_subset.empty()) grid.w_values = std::move(w_subset);
  return grid;
}

SweepProgressFn StderrSweepProgress() {
  return [](const SweepProgress& progress) {
    std::fprintf(stderr, "  sweep: %s done (%lld/%lld cells)\n",
                 progress.model_name, progress.cells_done,
                 progress.cells_total);
  };
}

std::vector<CellResult> RunSweep(EvaluationRunner* runner,
                                 const ParameterGrid& grid,
                                 const SweepOptions& options) {
  HOTSPOT_CHECK(runner != nullptr);
  obs::PipelineContext::ScopedInstall install(options.context);
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("sweep/run");
  const auto start = std::chrono::steady_clock::now();

  // Warm the random-reference cache serially so the parallel cells below
  // only read it (ψ(F₀) is deterministic per day, so order is irrelevant).
  {
    HOTSPOT_SPAN("sweep/warm_random_ap");
    for (int h : grid.h_values) {
      for (int t : grid.t_values) runner->RandomAp(t, h);
    }
  }

  const int64_t num_h = static_cast<int64_t>(grid.h_values.size());
  const int64_t num_w = static_cast<int64_t>(grid.w_values.size());
  const int64_t num_t = static_cast<int64_t>(grid.t_values.size());
  const int64_t cells_per_model = num_h * num_w * num_t;

  if (ctx != nullptr) {
    ctx->metrics().gauge("sweep/cells_total")
        .Set(static_cast<double>(grid.NumCells()));
    ctx->metrics().gauge("sweep/cells_done").Set(0.0);
  }

  std::vector<CellResult> cells;
  cells.reserve(static_cast<size_t>(grid.NumCells()));
  long long done = 0;
  int models_done = 0;
  for (ModelKind model : grid.models) {
    // Parallel over the model's (h, w, t) cells; results come back in the
    // serial sweep order (h-major, then w, then t) regardless of thread
    // count, and each Evaluate is an independent train-and-score.
    std::vector<CellResult> model_cells = util::ParallelMap<CellResult>(
        0, cells_per_model, [&](int64_t index) {
          const int h = grid.h_values[static_cast<size_t>(
              index / (num_w * num_t))];
          const int w = grid.w_values[static_cast<size_t>(
              (index / num_t) % num_w)];
          const int t = grid.t_values[static_cast<size_t>(index % num_t)];
          return runner->Evaluate(model, t, h, w);
        });
    cells.insert(cells.end(), model_cells.begin(), model_cells.end());
    done += cells_per_model;
    ++models_done;

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double eta =
        done > 0 && done < grid.NumCells()
            ? elapsed / static_cast<double>(done) *
                  static_cast<double>(grid.NumCells() - done)
            : 0.0;
    if (ctx != nullptr) {
      ctx->metrics().counter("sweep/cells_evaluated")
          .Add(static_cast<uint64_t>(cells_per_model));
      ctx->metrics().gauge("sweep/cells_done")
          .Set(static_cast<double>(done));
      ctx->metrics().gauge("sweep/eta_seconds").Set(eta);
    }
    if (options.progress) {
      SweepProgress progress;
      progress.cells_done = done;
      progress.cells_total = grid.NumCells();
      progress.models_done = models_done;
      progress.models_total = static_cast<int>(grid.models.size());
      progress.model_name = ModelName(model);
      progress.elapsed_seconds = elapsed;
      progress.eta_seconds = eta;
      options.progress(progress);
    }
  }
  return cells;
}

}  // namespace hotspot
