#ifndef HOTSPOT_CORE_LABELS_H_
#define HOTSPOT_CORE_LABELS_H_

#include "tensor/matrix.h"

namespace hotspot {

/// Binary hot-spot labels (Eq. 4): Y = H(S − ε) applied elementwise to an
/// integrated score matrix. NaN scores yield label 0 (a sector can only be
/// declared hot on evidence).
Matrix<float> HotSpotLabels(const Matrix<float>& scores, double epsilon);

/// "Become a hot spot" labels (Sec. IV-A) on the daily score matrix:
/// day j is a positive for sector i when
///   * the weekly mean ending at day j is NOT hot:   µ(j, 7, S) < ε
///   * the weekly mean of days j+1..j+7 IS hot:      µ(j+7, 7, S) ≥ ε
///   * day j itself is not hot and day j+1 is:       S_j < ε ≤ S_{j+1}
/// (the prose-consistent orientation of the paper's formula; see
/// DESIGN.md for the discrepancy note). Days without a full look-ahead
/// week are 0. NaN scores make the affected condition fail.
Matrix<float> BecomeHotSpotLabels(const Matrix<float>& daily_scores,
                                  double epsilon);

/// Fraction of positive labels (prevalence). NaN-free input expected.
double PositiveRate(const Matrix<float>& labels);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_LABELS_H_
