#include "core/forecast_service.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "features/window.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace hotspot {

ForecastService::ForecastService(
    std::unique_ptr<serialize::ForecastBundle> bundle)
    : bundle_(std::move(bundle)) {
  HOTSPOT_CHECK(bundle_ != nullptr);
  HOTSPOT_CHECK(bundle_->classifier != nullptr);
  HOTSPOT_CHECK_GE(bundle_->window_days, 1);
  HOTSPOT_CHECK_GE(bundle_->num_channels, 1);
  switch (bundle_->model) {
    case ModelKind::kTree:
    case ModelKind::kRfRaw:
    case ModelKind::kGbdt:
      extractor_ = &raw_extractor_;
      break;
    case ModelKind::kRfF1:
      extractor_ = &percentile_extractor_;
      break;
    case ModelKind::kRfF2:
      extractor_ = &handcrafted_extractor_;
      break;
    default:
      HOTSPOT_CHECK(false) << "bundle model is not a servable classifier";
  }
  HOTSPOT_CHECK_EQ(
      extractor_->OutputDim(bundle_->window_days, bundle_->num_channels),
      bundle_->feature_dim);
  // Bundles written before the flat_forest section (or hand-built ones)
  // get their flat engine compiled here; loaded sections were already
  // verified against the classifier by the bundle decoder.
  if (bundle_->flat == nullptr) {
    bundle_->flat = std::make_unique<ml::FlatForest>(
        ml::FlatForest::Compile(*bundle_->classifier));
  }
  HOTSPOT_CHECK_EQ(bundle_->flat->num_features(), bundle_->feature_dim);
  engine_ = DefaultPredictEngine();
  // Resolve the kernel once (CPUID probe + env opt-out) instead of per
  // batch; set_flat_kernel overrides it for the service's lifetime.
  kernel_ = ml::FlatForest::ChooseKernel();
  if (bundle_->fingerprints != nullptr) EnableMonitoring();
}

PredictEngine ForecastService::DefaultPredictEngine() {
  if (const char* env = std::getenv("HOTSPOT_PREDICT_ENGINE")) {
    if (std::string_view(env) == "classic") return PredictEngine::kClassic;
  }
  return PredictEngine::kFlat;
}

bool ForecastService::EnableMonitoring(const monitor::MonitorConfig& config) {
  if (bundle_->fingerprints == nullptr) return false;
  HOTSPOT_CHECK_EQ(
      static_cast<int>(bundle_->fingerprints->channels.size()),
      bundle_->num_channels);
  monitor_ = std::make_unique<monitor::ServingMonitor>(
      bundle_->fingerprints.get(), config);
  return true;
}

void ForecastService::RecordOutcomes(const std::vector<float>& scores,
                                     const std::vector<float>& labels) const {
  if (monitor_ != nullptr) monitor_->RecordOutcomes(scores, labels);
}

monitor::HealthReport ForecastService::Health() const {
  if (monitor_ == nullptr) return monitor::HealthReport{};
  return monitor_->Report();
}

serialize::Status ForecastService::Load(
    const std::string& path, std::unique_ptr<ForecastService>* service) {
  HOTSPOT_CHECK(service != nullptr);
  HOTSPOT_SPAN("serve/load");
  std::unique_ptr<serialize::ForecastBundle> bundle;
  serialize::Status status = serialize::LoadBundle(path, &bundle);
  if (!status.ok) return status;
  *service = std::make_unique<ForecastService>(std::move(bundle));
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/loads").Increment();
  }
  return serialize::Status::Ok();
}

std::vector<float> ForecastService::ScoreBatch(
    int n, const std::function<Matrix<float>(int)>& window_of) const {
  std::vector<float> scores(static_cast<size_t>(n));
  if (engine_ == PredictEngine::kClassic) {
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("serve/rows_classic").Add(
          static_cast<uint64_t>(n));
    }
    // Parallel over sectors; sector i only writes scores[i], so the batch
    // is deterministic under any thread count.
    util::ParallelFor(0, n, [&](int64_t i64) {
      const int i = static_cast<int>(i64);
      Matrix<float> window = window_of(i);
      std::vector<float> row;
      extractor_->Extract(window, &row);
      HOTSPOT_CHECK_EQ(static_cast<int>(row.size()), bundle_->feature_dim);
      scores[static_cast<size_t>(i)] =
          static_cast<float>(bundle_->classifier->PredictProba(row.data()));
    });
    return scores;
  }
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/rows_flat").Add(static_cast<uint64_t>(n));
  }
  const ml::FlatForest& flat = *bundle_->flat;
  const ml::FlatKernel kernel = kernel_;
  const int dim = bundle_->feature_dim;
  constexpr int kBlock = ml::flat_detail::kBlockRows;
  const int num_blocks = (n + kBlock - 1) / kBlock;
  // Parallel over 8-row blocks; block b only writes scores[8b..8b+7], and
  // each row's score is independent of its block, so the result is
  // bitwise-identical to the classic path at any thread count.
  util::ParallelFor(0, num_blocks, [&](int64_t b64) {
    const int begin = static_cast<int>(b64) * kBlock;
    const int count = std::min(kBlock, n - begin);
    Matrix<float> rows(count, dim);
    std::vector<float> row;
    for (int r = 0; r < count; ++r) {
      Matrix<float> window = window_of(begin + r);
      extractor_->Extract(window, &row);
      HOTSPOT_CHECK_EQ(static_cast<int>(row.size()), bundle_->feature_dim);
      std::copy(row.begin(), row.end(), rows.Row(r));
    }
    double out[kBlock];
    flat.PredictBatch(rows.Row(0), count, dim, out, kernel);
    for (int r = 0; r < count; ++r) {
      scores[static_cast<size_t>(begin + r)] = static_cast<float>(out[r]);
    }
  });
  return scores;
}

std::vector<float> ForecastService::Predict(
    const Tensor3<float>& windows) const {
  HOTSPOT_CHECK_EQ(windows.dim1(), window_hours());
  HOTSPOT_CHECK_EQ(windows.dim2(), bundle_->num_channels);
  HOTSPOT_SPAN("serve/predict");
  Stopwatch watch;
  const int n = windows.dim0();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/requests").Increment();
    ctx->metrics().counter("serve/windows").Add(static_cast<uint64_t>(n));
  }
  std::vector<float> scores = ScoreBatch(n, [&](int i) {
    return windows.SectorSlab(i, 0, windows.dim1());
  });
  const double seconds = watch.ElapsedSeconds();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics()
        .histogram("serve/latency_seconds", obs::DefaultLatencySeconds())
        .Observe(seconds);
  }
  if (monitor_ != nullptr) {
    monitor_->ObserveBatch(windows, 0, windows.dim1(), scores, seconds);
  }
  return scores;
}

std::vector<float> ForecastService::PredictAtDay(
    const features::FeatureTensor& features, int end_day) const {
  HOTSPOT_CHECK_EQ(features.num_channels(), bundle_->num_channels);
  HOTSPOT_SPAN("serve/predict");
  Stopwatch watch;
  const int n = features.num_sectors();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/requests").Increment();
    ctx->metrics().counter("serve/windows").Add(static_cast<uint64_t>(n));
  }
  std::vector<float> scores = ScoreBatch(n, [&](int i) {
    return features::ExtractWindow(features, i, end_day,
                                   bundle_->window_days);
  });
  const double seconds = watch.ElapsedSeconds();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics()
        .histogram("serve/latency_seconds", obs::DefaultLatencySeconds())
        .Observe(seconds);
  }
  if (monitor_ != nullptr) {
    monitor_->ObserveBatch(features.tensor(),
                           24 * (end_day - bundle_->window_days),
                           24 * end_day, scores, seconds);
  }
  return scores;
}

}  // namespace hotspot
