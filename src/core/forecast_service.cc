#include "core/forecast_service.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "features/window.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace hotspot {

ForecastService::ForecastService(
    std::unique_ptr<serialize::ForecastBundle> bundle) {
  HOTSPOT_CHECK(bundle != nullptr);
  window_days_ = bundle->window_days;
  horizon_days_ = bundle->horizon_days;
  num_channels_ = bundle->num_channels;
  HOTSPOT_CHECK_GE(window_days_, 1);
  HOTSPOT_CHECK_GE(num_channels_, 1);
  std::string error;
  std::shared_ptr<ServingState> initial =
      BuildState(std::shared_ptr<serialize::ForecastBundle>(std::move(bundle)),
                 /*generation=*/0, monitor::MonitorConfig{},
                 /*enable_monitoring=*/true, &error);
  HOTSPOT_CHECK(initial != nullptr) << error;
  PublishState(std::move(initial));
  engine_.store(DefaultPredictEngine(), std::memory_order_relaxed);
  // Resolve the kernel once (CPUID probe + env opt-out) instead of per
  // batch; set_flat_kernel overrides it for the service's lifetime.
  kernel_.store(ml::FlatForest::ChooseKernel(), std::memory_order_relaxed);
}

std::shared_ptr<ForecastService::ServingState> ForecastService::BuildState(
    std::shared_ptr<serialize::ForecastBundle> bundle, uint64_t generation,
    const monitor::MonitorConfig& monitor_config, bool enable_monitoring,
    std::string* error) const {
  if (bundle == nullptr || bundle->classifier == nullptr) {
    *error = "bundle has no trained classifier";
    return nullptr;
  }
  auto state = std::make_shared<ServingState>();
  switch (bundle->model) {
    case ModelKind::kTree:
    case ModelKind::kRfRaw:
    case ModelKind::kGbdt:
      state->extractor = &raw_extractor_;
      break;
    case ModelKind::kRfF1:
      state->extractor = &percentile_extractor_;
      break;
    case ModelKind::kRfF2:
      state->extractor = &handcrafted_extractor_;
      break;
    default:
      *error = "bundle model is not a servable classifier";
      return nullptr;
  }
  if (state->extractor->OutputDim(bundle->window_days,
                                  bundle->num_channels) !=
      bundle->feature_dim) {
    *error = "bundle feature_dim does not match its extractor";
    return nullptr;
  }
  // Bundles written before the flat_forest section (or hand-built ones)
  // get their flat engine compiled here; loaded sections were already
  // verified against the classifier by the bundle decoder.
  if (bundle->flat == nullptr) {
    bundle->flat = std::make_unique<ml::FlatForest>(
        ml::FlatForest::Compile(*bundle->classifier));
  }
  if (bundle->flat->num_features() != bundle->feature_dim) {
    *error = "flat forest feature count does not match the bundle";
    return nullptr;
  }
  if (enable_monitoring && bundle->fingerprints != nullptr) {
    if (static_cast<int>(bundle->fingerprints->channels.size()) !=
        bundle->num_channels) {
      *error = "bundle fingerprints do not cover every channel";
      return nullptr;
    }
    state->monitor = std::make_shared<monitor::ServingMonitor>(
        bundle->fingerprints.get(), monitor_config);
  }
  state->bundle = std::move(bundle);
  state->generation = generation;
  return state;
}

PredictEngine ForecastService::DefaultPredictEngine() {
  if (const char* env = std::getenv("HOTSPOT_PREDICT_ENGINE")) {
    if (std::string_view(env) == "classic") return PredictEngine::kClassic;
  }
  return PredictEngine::kFlat;
}

serialize::Status ForecastService::PromoteBundle(
    std::unique_ptr<serialize::ForecastBundle> bundle,
    uint64_t* new_generation) {
  if (bundle == nullptr) {
    return serialize::Status::Error("promote: bundle is null");
  }
  std::lock_guard<std::mutex> lock(swap_mutex_);
  std::shared_ptr<const ServingState> current = state();
  // The serving universe is pinned at construction: callers size their
  // windows and streams from it, so a promotion may change the model, not
  // the shape of the traffic it serves.
  if (bundle->window_days != window_days_) {
    return serialize::Status::Error(
        "promote: bundle window_days " + std::to_string(bundle->window_days) +
        " != serving window_days " + std::to_string(window_days_));
  }
  if (bundle->horizon_days != horizon_days_) {
    return serialize::Status::Error(
        "promote: bundle horizon_days " +
        std::to_string(bundle->horizon_days) + " != serving horizon_days " +
        std::to_string(horizon_days_));
  }
  if (bundle->num_channels != num_channels_) {
    return serialize::Status::Error(
        "promote: bundle num_channels " +
        std::to_string(bundle->num_channels) + " != serving num_channels " +
        std::to_string(num_channels_));
  }
  // Promotion re-arms monitoring iff the incoming bundle carries
  // fingerprints (the construction rule), reusing the tuned config of the
  // monitor being replaced when there is one.
  monitor::MonitorConfig config;
  if (current->monitor != nullptr) config = current->monitor->config();
  std::string error;
  std::shared_ptr<ServingState> next =
      BuildState(std::shared_ptr<serialize::ForecastBundle>(std::move(bundle)),
                 current->generation + 1, config, /*enable_monitoring=*/true,
                 &error);
  if (next == nullptr) return serialize::Status::Error("promote: " + error);
  if (new_generation != nullptr) *new_generation = next->generation;
  // The swap itself: one pointer publish. Readers that already snapshotted
  // the old state keep it alive through their shared_ptr until the batch
  // ends.
  const uint64_t installed_generation = next->generation;
  PublishState(std::move(next));
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/promotions").Increment();
    // Flight-record the swap instant with its generation tag; shard -1
    // marks a bare service (the fleet adds its own shard-tagged event).
    ctx->flight().Record(obs::FlightEventKind::kPromotion, /*a=*/-1,
                         static_cast<int64_t>(installed_generation));
  }
  return serialize::Status::Ok();
}

uint64_t ForecastService::generation() const { return state()->generation; }

bool ForecastService::IsHot(float score) const {
  return score >= state()->bundle->score.hot_threshold;
}

bool ForecastService::EnableMonitoring(const monitor::MonitorConfig& config) {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  std::shared_ptr<const ServingState> current = state();
  if (current->bundle->fingerprints == nullptr) return false;
  HOTSPOT_CHECK_EQ(
      static_cast<int>(current->bundle->fingerprints->channels.size()),
      current->bundle->num_channels);
  auto next = std::make_shared<ServingState>(*current);
  next->monitor = std::make_shared<monitor::ServingMonitor>(
      current->bundle->fingerprints.get(), config);
  PublishState(std::move(next));
  return true;
}

void ForecastService::DisableMonitoring() {
  std::lock_guard<std::mutex> lock(swap_mutex_);
  auto next = std::make_shared<ServingState>(*state());
  next->monitor = nullptr;
  PublishState(std::move(next));
}

bool ForecastService::monitoring_enabled() const {
  return state()->monitor != nullptr;
}

void ForecastService::RecordOutcomes(const std::vector<float>& scores,
                                     const std::vector<float>& labels) const {
  std::shared_ptr<const ServingState> serving = state();
  if (serving->monitor != nullptr) {
    serving->monitor->RecordOutcomes(scores, labels);
  }
}

monitor::HealthReport ForecastService::Health() const {
  std::shared_ptr<const ServingState> serving = state();
  if (serving->monitor == nullptr) return monitor::HealthReport{};
  return serving->monitor->Report();
}

const serialize::ForecastBundle& ForecastService::bundle() const {
  return *state()->bundle;
}

std::shared_ptr<const serialize::ForecastBundle>
ForecastService::bundle_snapshot() const {
  std::shared_ptr<const ServingState> serving = state();
  return std::shared_ptr<const serialize::ForecastBundle>(serving,
                                                          serving->bundle.get());
}

const ml::FlatForest& ForecastService::flat_forest() const {
  return *state()->bundle->flat;
}

serialize::Status ForecastService::Load(
    const std::string& path, std::unique_ptr<ForecastService>* service) {
  HOTSPOT_CHECK(service != nullptr);
  HOTSPOT_SPAN("serve/load");
  std::unique_ptr<serialize::ForecastBundle> bundle;
  serialize::Status status = serialize::LoadBundle(path, &bundle);
  if (!status.ok) return status;
  *service = std::make_unique<ForecastService>(std::move(bundle));
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/loads").Increment();
  }
  return serialize::Status::Ok();
}

std::vector<float> ForecastService::ScoreBatch(
    const ServingState& serving, int n,
    const std::function<Matrix<float>(int)>& window_of) const {
  const serialize::ForecastBundle& bundle = *serving.bundle;
  std::vector<float> scores(static_cast<size_t>(n));
  if (predict_engine() == PredictEngine::kClassic) {
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("serve/rows_classic").Add(
          static_cast<uint64_t>(n));
    }
    // Parallel over sectors; sector i only writes scores[i], so the batch
    // is deterministic under any thread count.
    util::ParallelFor(0, n, [&](int64_t i64) {
      const int i = static_cast<int>(i64);
      Matrix<float> window = window_of(i);
      std::vector<float> row;
      serving.extractor->Extract(window, &row);
      HOTSPOT_CHECK_EQ(static_cast<int>(row.size()), bundle.feature_dim);
      scores[static_cast<size_t>(i)] =
          static_cast<float>(bundle.classifier->PredictProba(row.data()));
    });
    return scores;
  }
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/rows_flat").Add(static_cast<uint64_t>(n));
  }
  const ml::FlatForest& flat = *bundle.flat;
  const ml::FlatKernel kernel = flat_kernel();
  const int dim = bundle.feature_dim;
  constexpr int kBlock = ml::flat_detail::kBlockRows;
  const int num_blocks = (n + kBlock - 1) / kBlock;
  // Parallel over 8-row blocks; block b only writes scores[8b..8b+7], and
  // each row's score is independent of its block, so the result is
  // bitwise-identical to the classic path at any thread count.
  util::ParallelFor(0, num_blocks, [&](int64_t b64) {
    const int begin = static_cast<int>(b64) * kBlock;
    const int count = std::min(kBlock, n - begin);
    Matrix<float> rows(count, dim);
    std::vector<float> row;
    for (int r = 0; r < count; ++r) {
      Matrix<float> window = window_of(begin + r);
      serving.extractor->Extract(window, &row);
      HOTSPOT_CHECK_EQ(static_cast<int>(row.size()), bundle.feature_dim);
      std::copy(row.begin(), row.end(), rows.Row(r));
    }
    double out[kBlock];
    flat.PredictBatch(rows.Row(0), count, dim, out, kernel);
    for (int r = 0; r < count; ++r) {
      scores[static_cast<size_t>(begin + r)] = static_cast<float>(out[r]);
    }
  });
  return scores;
}

std::vector<float> ForecastService::Predict(
    const Tensor3<float>& windows, uint64_t* served_generation) const {
  HOTSPOT_CHECK_EQ(windows.dim1(), window_hours());
  HOTSPOT_CHECK_EQ(windows.dim2(), num_channels_);
  HOTSPOT_SPAN("serve/predict");
  Stopwatch watch;
  // The batch's one snapshot: everything below reads this state, so the
  // whole batch is served by one generation even while a promotion lands.
  std::shared_ptr<const ServingState> serving = state();
  if (served_generation != nullptr) *served_generation = serving->generation;
  const int n = windows.dim0();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/requests").Increment();
    ctx->metrics().counter("serve/windows").Add(static_cast<uint64_t>(n));
  }
  std::vector<float> scores = ScoreBatch(*serving, n, [&](int i) {
    return windows.SectorSlab(i, 0, windows.dim1());
  });
  const double seconds = watch.ElapsedSeconds();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics()
        .histogram("serve/latency_seconds", obs::DefaultLatencySeconds())
        .Observe(seconds);
  }
  if (serving->monitor != nullptr) {
    serving->monitor->ObserveBatch(windows, 0, windows.dim1(), scores,
                                   seconds);
  }
  return scores;
}

std::vector<float> ForecastService::PredictAtDay(
    const features::FeatureTensor& features, int end_day,
    uint64_t* served_generation) const {
  HOTSPOT_CHECK_EQ(features.num_channels(), num_channels_);
  HOTSPOT_SPAN("serve/predict");
  Stopwatch watch;
  std::shared_ptr<const ServingState> serving = state();
  if (served_generation != nullptr) *served_generation = serving->generation;
  const int n = features.num_sectors();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics().counter("serve/requests").Increment();
    ctx->metrics().counter("serve/windows").Add(static_cast<uint64_t>(n));
  }
  std::vector<float> scores = ScoreBatch(*serving, n, [&](int i) {
    return features::ExtractWindow(features, i, end_day, window_days_);
  });
  const double seconds = watch.ElapsedSeconds();
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    ctx->metrics()
        .histogram("serve/latency_seconds", obs::DefaultLatencySeconds())
        .Observe(seconds);
  }
  if (serving->monitor != nullptr) {
    serving->monitor->ObserveBatch(features.tensor(),
                                   24 * (end_day - window_days_),
                                   24 * end_day, scores, seconds);
  }
  return scores;
}

}  // namespace hotspot
