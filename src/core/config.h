#ifndef HOTSPOT_CORE_CONFIG_H_
#define HOTSPOT_CORE_CONFIG_H_

#include <vector>

#include "simnet/kpi_catalog.h"

namespace hotspot {

/// Operator scoring configuration (Eq. 1): one weighted threshold test per
/// KPI, plus the hot-spot threshold ε applied to the integrated score
/// (Eq. 4).
///
/// Eq. 1 of the paper writes S' = Σ_k Ω_k · H(K_k − ε_k); real catalogs
/// mix "higher is worse" and "lower is worse" indicators, so each entry
/// carries the test direction (equivalent to Eq. 1 after negating the
/// KPI).
struct ScoreConfig {
  struct Indicator {
    double weight = 1.0;     ///< Ω_k
    double threshold = 0.5;  ///< ε_k
    bool higher_is_worse = true;
  };

  std::vector<Indicator> indicators;
  /// ε of Eq. 4, applied to the score normalized into [0, 1]. The default
  /// matches the natural threshold visible in the S^w histogram (Fig. 4).
  double hot_threshold = 0.6;

  int num_indicators() const { return static_cast<int>(indicators.size()); }
  double TotalWeight() const;
};

/// Builds the scoring configuration the synthetic operator uses, straight
/// from the KPI catalog's Ω/ε columns.
ScoreConfig ScoreConfigFromCatalog(const simnet::KpiCatalog& catalog);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_CONFIG_H_
