#include "core/config.h"

namespace hotspot {

double ScoreConfig::TotalWeight() const {
  double total = 0.0;
  for (const Indicator& indicator : indicators) total += indicator.weight;
  return total;
}

ScoreConfig ScoreConfigFromCatalog(const simnet::KpiCatalog& catalog) {
  ScoreConfig config;
  config.indicators.reserve(static_cast<size_t>(catalog.size()));
  for (const simnet::KpiSpec& spec : catalog.specs()) {
    config.indicators.push_back(
        {spec.score_weight, spec.score_threshold, spec.higher_is_worse});
  }
  return config;
}

}  // namespace hotspot
