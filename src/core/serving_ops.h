#ifndef HOTSPOT_CORE_SERVING_OPS_H_
#define HOTSPOT_CORE_SERVING_OPS_H_

#include <cstdint>
#include <vector>

#include "stream/incremental_features.h"
#include "tensor/tensor3.h"

namespace hotspot {

/// One served streaming batch: scores for the windows ending at `end_day`
/// (one per sector, sector-id order), forecasting day `target_day` =
/// end_day + the bundle's horizon.
struct StreamingPrediction {
  int end_day = 0;
  int target_day = 0;
  std::vector<float> scores;
  /// Generation tag of the bundle that scored this batch
  /// (ForecastService::generation() at serve time) — how fleet callers
  /// prove which model served each row across RCU hot swaps.
  uint64_t generation = 0;
  /// Telemetry metadata: steady-clock nanoseconds at which the oldest raw
  /// KPI row contributing to this batch entered the serving stack
  /// (pipeline ingress, or fleet admission when served through a fleet);
  /// 0 when the producer did not stamp it. Feeds the
  /// pipeline/stageK/residency_seconds and fleet/shardK/e2e_seconds
  /// histograms; excluded from every equivalence contract — scores are
  /// bitwise-identical whether or not blocks are stamped.
  uint64_t born_ns = 0;
};

/// Cuts the per-sector serving windows (Eq. 6) ending at `end_day` out of
/// the engine's finalized history into a sectors x window_hours x channels
/// tensor — the exact input ForecastService::Predict scores. Fans out over
/// the thread pool; sector i only writes its own slab, so the assembled
/// tensor is bitwise-independent of the thread count. The span
/// [24*end_day - window_hours, 24*end_day) must be finalized and within
/// the engine's retention for every sector.
///
/// The staged pipeline::ServingPipeline's window-assembly primitive —
/// one implementation shared with direct callers (tests, tools) is what
/// keeps streamed and batch scores bitwise-identical by construction.
Tensor3<float> AssembleServingWindows(
    const stream::IncrementalFeatureEngine& engine, int window_hours,
    int end_day);

/// Gathers the matured daily hot-spot labels of `day` (Eq. 4 ground truth)
/// for every sector, in sector-id order — the outcome vector fed back to
/// ForecastService::RecordOutcomes. Every sector must have closed `day`
/// (engine.min_closed_days() > day) and the day must be within retention.
std::vector<float> GatherDayLabels(
    const stream::IncrementalFeatureEngine& engine, int day);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_SERVING_OPS_H_
