#include "core/dynamics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/correlation.h"
#include "stats/percentile.h"
#include "stats/runlength.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot {

DurationStats::DurationStats(int weeks)
    : hours_per_day(kHoursPerDay),
      days_per_week(kDaysPerWeek),
      weeks_as_hotspot(weeks),
      consecutive_hours(96),
      consecutive_days(70) {}

DurationStats ComputeDurationStats(const Matrix<float>& hourly_labels,
                                   const Matrix<float>& daily_labels,
                                   const Matrix<float>& weekly_labels) {
  const int n = hourly_labels.rows();
  HOTSPOT_CHECK_EQ(daily_labels.rows(), n);
  HOTSPOT_CHECK_EQ(weekly_labels.rows(), n);
  DurationStats stats(weekly_labels.cols());

  for (int i = 0; i < n; ++i) {
    std::vector<float> hourly = hourly_labels.RowVector(i);
    std::vector<float> daily = daily_labels.RowVector(i);
    std::vector<float> weekly = weekly_labels.RowVector(i);

    for (int count : CountOnesPerBlock(hourly, kHoursPerDay)) {
      if (count > 0) stats.hours_per_day.Add(count);
    }
    for (int count : CountOnesPerBlock(daily, kDaysPerWeek)) {
      if (count > 0) stats.days_per_week.Add(count);
    }
    int hot_weeks = 0;
    for (float y : weekly) {
      if (y != 0.0f) ++hot_weeks;
    }
    if (hot_weeks > 0) stats.weeks_as_hotspot.Add(hot_weeks);

    for (int run : RunLengthsOfOnes(hourly)) stats.consecutive_hours.Add(run);
    for (int run : RunLengthsOfOnes(daily)) stats.consecutive_days.Add(run);
  }
  return stats;
}

std::vector<WeeklyPattern> TopWeeklyPatterns(const Matrix<float>& daily_labels,
                                             int top_k) {
  const int weeks = daily_labels.cols() / kDaysPerWeek;
  std::map<int, long long> counts;
  long long nonempty_total = 0;
  for (int i = 0; i < daily_labels.rows(); ++i) {
    for (int week = 0; week < weeks; ++week) {
      int bits = 0;
      for (int d = 0; d < kDaysPerWeek; ++d) {
        float y = daily_labels.At(i, week * kDaysPerWeek + d);
        if (!IsMissing(y) && y != 0.0f) bits |= 1 << d;
      }
      if (bits == 0) continue;
      ++counts[bits];
      ++nonempty_total;
    }
  }
  std::vector<WeeklyPattern> patterns;
  patterns.reserve(counts.size());
  for (const auto& [bits, count] : counts) {
    WeeklyPattern pattern;
    pattern.bits = bits;
    pattern.count = count;
    pattern.relative_count =
        nonempty_total > 0
            ? static_cast<double>(count) / static_cast<double>(nonempty_total)
            : 0.0;
    patterns.push_back(pattern);
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const WeeklyPattern& a, const WeeklyPattern& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.bits < b.bits;
            });
  if (static_cast<int>(patterns.size()) > top_k) {
    patterns.resize(static_cast<size_t>(top_k));
  }
  return patterns;
}

std::string PatternString(int bits) {
  static const char kDayLetters[kDaysPerWeek] = {'M', 'T', 'W', 'T',
                                                 'F', 'S', 'S'};
  std::string out;
  for (int d = 0; d < kDaysPerWeek; ++d) {
    if (d > 0) out += ' ';
    out += (bits >> d) & 1 ? kDayLetters[d] : '-';
  }
  return out;
}

ConsistencyStats WeeklyConsistency(const Matrix<float>& daily_labels) {
  const int weeks = daily_labels.cols() / kDaysPerWeek;
  std::vector<float> correlations;
  for (int i = 0; i < daily_labels.rows(); ++i) {
    // Average week of the sector.
    float average[kDaysPerWeek] = {};
    for (int week = 0; week < weeks; ++week) {
      for (int d = 0; d < kDaysPerWeek; ++d) {
        float y = daily_labels.At(i, week * kDaysPerWeek + d);
        if (!IsMissing(y) && y != 0.0f) average[d] += 1.0f;
      }
    }
    for (float& a : average) a /= static_cast<float>(weeks);

    for (int week = 0; week < weeks; ++week) {
      float this_week[kDaysPerWeek];
      for (int d = 0; d < kDaysPerWeek; ++d) {
        float y = daily_labels.At(i, week * kDaysPerWeek + d);
        this_week[d] = (!IsMissing(y) && y != 0.0f) ? 1.0f : 0.0f;
      }
      double corr = PearsonCorrelation(average, this_week, kDaysPerWeek);
      if (!std::isnan(corr)) {
        correlations.push_back(static_cast<float>(corr));
      }
    }
  }
  ConsistencyStats stats;
  stats.count = static_cast<long long>(correlations.size());
  stats.mean = Mean(correlations);
  std::vector<double> percentiles =
      Percentiles(correlations, {5.0, 25.0, 50.0, 75.0, 95.0});
  stats.p5 = percentiles[0];
  stats.p25 = percentiles[1];
  stats.p50 = percentiles[2];
  stats.p75 = percentiles[3];
  stats.p95 = percentiles[4];
  return stats;
}

std::vector<double> SpatialBucketEdges() {
  std::vector<double> edges = {0.0, 0.05};
  double edge = 0.1;
  while (edge <= 204.8) {
    edges.push_back(edge);
    edge *= 2.0;
  }
  edges.push_back(1e9);
  return edges;
}

namespace {

int BucketOf(double distance_km, const std::vector<double>& edges) {
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    if (distance_km >= edges[b] && distance_km < edges[b + 1]) {
      return static_cast<int>(b);
    }
  }
  return static_cast<int>(edges.size()) - 2;
}

std::vector<BucketSummary> SummarizeBuckets(
    const std::vector<std::vector<float>>& per_bucket_values,
    const std::vector<double>& edges) {
  std::vector<BucketSummary> summaries;
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    const std::vector<float>& values = per_bucket_values[b];
    BucketSummary summary;
    summary.lo_km = edges[b];
    summary.hi_km = edges[b + 1];
    summary.count = static_cast<int>(values.size());
    if (!values.empty()) {
      std::vector<double> percentiles =
          Percentiles(values, {5.0, 25.0, 50.0, 75.0, 95.0});
      summary.whisker_lo = percentiles[0];
      summary.q25 = percentiles[1];
      summary.median = percentiles[2];
      summary.q75 = percentiles[3];
      summary.whisker_hi = percentiles[4];
    } else {
      summary.median = summary.q25 = summary.q75 = std::nan("");
      summary.whisker_lo = summary.whisker_hi = std::nan("");
    }
    summaries.push_back(summary);
  }
  return summaries;
}

}  // namespace

std::vector<BucketSummary> SpatialCorrelationByDistance(
    const simnet::Topology& topology, const Matrix<float>& hourly_labels,
    int num_neighbors, SpatialAggregation aggregation) {
  const int n = topology.num_sectors();
  HOTSPOT_CHECK_EQ(hourly_labels.rows(), n);
  std::vector<double> edges = SpatialBucketEdges();
  const int num_buckets = static_cast<int>(edges.size()) - 1;
  std::vector<std::vector<float>> per_bucket_values(
      static_cast<size_t>(num_buckets));

  for (int i = 0; i < n; ++i) {
    std::vector<int> neighbors = topology.NearestSectors(i, num_neighbors);
    // Aggregate per bucket for this sector.
    std::vector<double> agg(static_cast<size_t>(num_buckets),
                            std::nan(""));
    std::vector<int> counts(static_cast<size_t>(num_buckets), 0);
    for (int j : neighbors) {
      double corr = PearsonCorrelation(hourly_labels.Row(i),
                                       hourly_labels.Row(j),
                                       hourly_labels.cols());
      if (std::isnan(corr)) continue;
      int bucket = BucketOf(topology.DistanceKm(i, j), edges);
      size_t bs = static_cast<size_t>(bucket);
      if (aggregation == SpatialAggregation::kAverage) {
        if (counts[bs] == 0) agg[bs] = 0.0;
        agg[bs] += corr;
        ++counts[bs];
      } else {
        if (std::isnan(agg[bs]) || corr > agg[bs]) agg[bs] = corr;
        ++counts[bs];
      }
    }
    for (int b = 0; b < num_buckets; ++b) {
      size_t bs = static_cast<size_t>(b);
      if (counts[bs] == 0) continue;
      double value = aggregation == SpatialAggregation::kAverage
                         ? agg[bs] / counts[bs]
                         : agg[bs];
      per_bucket_values[bs].push_back(static_cast<float>(value));
    }
  }
  return SummarizeBuckets(per_bucket_values, edges);
}

std::vector<BucketSummary> BestCorrelationByDistance(
    const simnet::Topology& topology, const Matrix<float>& hourly_labels,
    int num_best) {
  const int n = topology.num_sectors();
  HOTSPOT_CHECK_EQ(hourly_labels.rows(), n);
  std::vector<double> edges = SpatialBucketEdges();
  const int num_buckets = static_cast<int>(edges.size()) - 1;
  std::vector<std::vector<float>> per_bucket_values(
      static_cast<size_t>(num_buckets));

  for (int i = 0; i < n; ++i) {
    // All correlations from sector i.
    std::vector<std::pair<float, int>> correlations;  // (corr, j)
    correlations.reserve(static_cast<size_t>(n) - 1);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      double corr = PearsonCorrelation(hourly_labels.Row(i),
                                       hourly_labels.Row(j),
                                       hourly_labels.cols());
      if (std::isnan(corr)) continue;
      correlations.emplace_back(static_cast<float>(corr), j);
    }
    int take = std::min<int>(num_best, static_cast<int>(correlations.size()));
    std::partial_sort(
        correlations.begin(), correlations.begin() + take,
        correlations.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });

    std::vector<double> best(static_cast<size_t>(num_buckets),
                             std::nan(""));
    for (int r = 0; r < take; ++r) {
      auto [corr, j] = correlations[static_cast<size_t>(r)];
      int bucket = BucketOf(topology.DistanceKm(i, j), edges);
      size_t bs = static_cast<size_t>(bucket);
      if (std::isnan(best[bs]) || corr > best[bs]) best[bs] = corr;
    }
    for (int b = 0; b < num_buckets; ++b) {
      if (!std::isnan(best[static_cast<size_t>(b)])) {
        per_bucket_values[static_cast<size_t>(b)].push_back(
            static_cast<float>(best[static_cast<size_t>(b)]));
      }
    }
  }
  return SummarizeBuckets(per_bucket_values, edges);
}

}  // namespace hotspot
