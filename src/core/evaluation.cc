#include "core/evaluation.h"

#include <chrono>
#include <cmath>
#include <tuple>

#include "core/baselines.h"
#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "stats/average_precision.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hotspot {

EvaluationRunner::EvaluationRunner(const Forecaster* forecaster,
                                   ForecastConfig base)
    : forecaster_(forecaster), base_(base) {
  HOTSPOT_CHECK(forecaster != nullptr);
}

double EvaluationRunner::RandomAp(int t, int h) {
  int day = t + h;
  // Computed under the lock: the value depends only on (day, seed), so a
  // concurrent caller would produce the identical number anyway; the lock
  // just keeps the map well-formed. RunSweep precomputes all days serially
  // before fanning out, so contention here is cold-path only.
  std::lock_guard<std::mutex> lock(random_ap_mutex_);
  auto it = random_ap_by_day_.find(day);
  if (it != random_ap_by_day_.end()) return it->second;

  std::vector<float> labels = forecaster_->LabelsAtDay(day);
  Rng rng(base_.seed ^ (static_cast<uint64_t>(day) * 0x9e3779b9ull));
  double sum = 0.0;
  int valid = 0;
  for (int r = 0; r < random_repeats_; ++r) {
    std::vector<float> scores =
        RandomBaseline(static_cast<int>(labels.size()), &rng);
    double ap = AveragePrecision(labels, scores);
    if (!std::isnan(ap)) {
      sum += ap;
      ++valid;
    }
  }
  double mean = valid > 0 ? sum / valid : std::nan("");
  random_ap_by_day_[day] = mean;
  return mean;
}

CellResult EvaluationRunner::Evaluate(ModelKind model, int t, int h, int w) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("eval/cell");
  const auto cell_start = std::chrono::steady_clock::now();

  ForecastConfig config = base_;
  config.model = model;
  config.t = t;
  config.h = h;
  config.w = w;
  ForecastResult forecast = forecaster_->Run(config);

  CellResult cell;
  cell.model = model;
  cell.t = t;
  cell.h = h;
  cell.w = w;
  std::vector<float> labels = forecaster_->LabelsAtDay(t + h);
  cell.average_precision = AveragePrecision(labels, forecast.predictions);
  cell.lift = Lift(cell.average_precision, RandomAp(t, h));

  if (ctx != nullptr) {
    ctx->metrics().counter("eval/cells").Increment();
    if (std::isnan(cell.average_precision)) {
      ctx->metrics().counter("eval/cells_nan_ap").Increment();
    }
    ctx->metrics().histogram("eval/cell_seconds")
        .Observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - cell_start)
                     .count());
  }
  return cell;
}

MeanCi AggregateLiftOverT(const std::vector<CellResult>& cells,
                          ModelKind model, int h, int w) {
  std::vector<double> lifts;
  for (const CellResult& cell : cells) {
    if (cell.model != model || cell.h != h || cell.w != w) continue;
    if (std::isnan(cell.lift)) continue;
    lifts.push_back(cell.lift);
  }
  return MeanWithCi95(lifts);
}

MeanCi AggregateDeltaOverT(const std::vector<CellResult>& cells,
                           ModelKind model, ModelKind reference, int h,
                           int w) {
  // Pair by t.
  std::map<int, double> model_lift;
  std::map<int, double> reference_lift;
  for (const CellResult& cell : cells) {
    if (cell.h != h || cell.w != w) continue;
    if (cell.model == model) model_lift[cell.t] = cell.lift;
    if (cell.model == reference) reference_lift[cell.t] = cell.lift;
  }
  std::vector<double> deltas;
  for (const auto& [t, lift] : model_lift) {
    auto it = reference_lift.find(t);
    if (it == reference_lift.end()) continue;
    double delta = RelativeImprovement(it->second, lift);
    if (!std::isnan(delta)) deltas.push_back(delta);
  }
  return MeanWithCi95(deltas);
}

std::vector<double> TemporalStabilityPValues(
    const std::vector<CellResult>& cells, int t_mid) {
  // Group ψ by (model, h, w).
  std::map<std::tuple<int, int, int>, std::pair<std::vector<double>,
                                                std::vector<double>>>
      groups;
  for (const CellResult& cell : cells) {
    if (std::isnan(cell.average_precision)) continue;
    auto key = std::make_tuple(static_cast<int>(cell.model), cell.h, cell.w);
    if (cell.t <= t_mid) {
      groups[key].first.push_back(cell.average_precision);
    } else {
      groups[key].second.push_back(cell.average_precision);
    }
  }
  std::vector<double> p_values;
  for (const auto& [key, split] : groups) {
    if (split.first.empty() || split.second.empty()) continue;
    KsResult result = KolmogorovSmirnovTest(split.first, split.second);
    p_values.push_back(result.p_value);
  }
  return p_values;
}

}  // namespace hotspot
