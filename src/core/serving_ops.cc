#include "core/serving_ops.h"

#include "tensor/temporal.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot {

Tensor3<float> AssembleServingWindows(
    const stream::IncrementalFeatureEngine& engine, int window_hours,
    int end_day) {
  const int n = engine.config().num_sectors;
  const int ch = engine.channels();
  const int first_hour = kHoursPerDay * end_day - window_hours;
  HOTSPOT_CHECK_GE(first_hour, 0);
  Tensor3<float> windows(n, window_hours, ch);
  // Parallel over sectors; sector i only writes its own slab, so the
  // assembled tensor is bitwise-independent of the thread count.
  util::ParallelFor(0, n, [&](int64_t i64) {
    const int i = static_cast<int>(i64);
    engine.CopyFeatureRows(i, first_hour, window_hours,
                           windows.Slice(i, 0));
  });
  return windows;
}

std::vector<float> GatherDayLabels(
    const stream::IncrementalFeatureEngine& engine, int day) {
  const int n = engine.config().num_sectors;
  std::vector<float> labels(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = engine.DailyLabel(i, day);
  }
  return labels;
}

}  // namespace hotspot
