#include "core/sector_filter.h"

#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot {

std::vector<bool> SectorFilterMask(const Tensor3<float>& kpis,
                                   double max_missing_fraction) {
  const int n = kpis.dim0();
  const int hours = kpis.dim1();
  const int l = kpis.dim2();
  std::vector<bool> keep(static_cast<size_t>(n), true);
  if (hours < kHoursPerWeek) return keep;

  std::vector<int> missing_per_hour(static_cast<size_t>(hours));
  for (int i = 0; i < n; ++i) {
    // Missing cells per hour, then a sliding one-week sum.
    for (int j = 0; j < hours; ++j) {
      const float* slice = kpis.Slice(i, j);
      int missing = 0;
      for (int k = 0; k < l; ++k) {
        if (IsMissing(slice[k])) ++missing;
      }
      missing_per_hour[static_cast<size_t>(j)] = missing;
    }
    long long window = 0;
    const long long cells_per_week =
        static_cast<long long>(kHoursPerWeek) * l;
    for (int j = 0; j < kHoursPerWeek; ++j) {
      window += missing_per_hour[static_cast<size_t>(j)];
    }
    bool discard = window > max_missing_fraction * cells_per_week;
    for (int j = kHoursPerWeek; j < hours && !discard; ++j) {
      window += missing_per_hour[static_cast<size_t>(j)] -
                missing_per_hour[static_cast<size_t>(j - kHoursPerWeek)];
      discard = window > max_missing_fraction * cells_per_week;
    }
    keep[static_cast<size_t>(i)] = !discard;
  }
  return keep;
}

Tensor3<float> FilterSectors(const Tensor3<float>& kpis,
                             const std::vector<bool>& keep) {
  HOTSPOT_CHECK_EQ(static_cast<int>(keep.size()), kpis.dim0());
  int kept = 0;
  for (bool k : keep) {
    if (k) ++kept;
  }
  Tensor3<float> filtered(kept, kpis.dim1(), kpis.dim2());
  int row = 0;
  for (int i = 0; i < kpis.dim0(); ++i) {
    if (!keep[static_cast<size_t>(i)]) continue;
    for (int j = 0; j < kpis.dim1(); ++j) {
      const float* src = kpis.Slice(i, j);
      float* dst = filtered.Slice(row, j);
      for (int k = 0; k < kpis.dim2(); ++k) dst[k] = src[k];
    }
    ++row;
  }
  return filtered;
}

Matrix<float> FilterRows(const Matrix<float>& matrix,
                         const std::vector<bool>& keep) {
  HOTSPOT_CHECK_EQ(static_cast<int>(keep.size()), matrix.rows());
  int kept = 0;
  for (bool k : keep) {
    if (k) ++kept;
  }
  Matrix<float> filtered(kept, matrix.cols());
  int row = 0;
  for (int i = 0; i < matrix.rows(); ++i) {
    if (!keep[static_cast<size_t>(i)]) continue;
    const float* src = matrix.Row(i);
    float* dst = filtered.Row(row);
    for (int j = 0; j < matrix.cols(); ++j) dst[j] = src[j];
    ++row;
  }
  return filtered;
}

}  // namespace hotspot
