#include "core/baselines.h"

#include <cmath>

#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot {

namespace {

/// NaN-safe fetch: baselines treat a NaN aggregate as "no evidence" (score
/// 0) so rankings stay well defined.
float OrZero(double value) {
  return std::isnan(value) ? 0.0f : static_cast<float>(value);
}

}  // namespace

std::vector<float> RandomBaseline(int num_sectors, Rng* rng) {
  HOTSPOT_CHECK(rng != nullptr);
  std::vector<float> predictions(static_cast<size_t>(num_sectors));
  for (float& p : predictions) {
    p = static_cast<float>(rng->UniformDouble());
  }
  return predictions;
}

std::vector<float> PersistBaseline(const Matrix<float>& daily_labels,
                                   int t) {
  HOTSPOT_CHECK(t >= 0 && t < daily_labels.cols());
  std::vector<float> predictions(static_cast<size_t>(daily_labels.rows()));
  for (int i = 0; i < daily_labels.rows(); ++i) {
    float value = daily_labels.At(i, t);
    predictions[static_cast<size_t>(i)] = IsMissing(value) ? 0.0f : value;
  }
  return predictions;
}

std::vector<float> AverageBaseline(const Matrix<float>& daily_scores, int t,
                                   int w) {
  HOTSPOT_CHECK(t >= 0 && t < daily_scores.cols());
  HOTSPOT_CHECK_GE(w, 1);
  std::vector<float> predictions(static_cast<size_t>(daily_scores.rows()));
  for (int i = 0; i < daily_scores.rows(); ++i) {
    std::vector<float> series = daily_scores.RowVector(i);
    predictions[static_cast<size_t>(i)] = OrZero(TrailingMean(t, w, series));
  }
  return predictions;
}

std::vector<float> TrendBaseline(const Matrix<float>& daily_scores, int t,
                                 int w) {
  HOTSPOT_CHECK(t >= 0 && t < daily_scores.cols());
  HOTSPOT_CHECK_GE(w, 1);
  std::vector<float> predictions(static_cast<size_t>(daily_scores.rows()));
  const int half = std::max(1, w / 2);
  for (int i = 0; i < daily_scores.rows(); ++i) {
    std::vector<float> series = daily_scores.RowVector(i);
    double average = TrailingMean(t, w, series);
    double recent = TrailingMean(t, half, series);
    double earlier = TrailingMean(t - half, half, series);
    double trend = 0.0;
    if (!std::isnan(recent) && !std::isnan(earlier)) {
      trend = (recent - earlier) / half;
    }
    predictions[static_cast<size_t>(i)] = OrZero(average) +
                                          static_cast<float>(trend);
  }
  return predictions;
}

}  // namespace hotspot
