#ifndef HOTSPOT_CORE_SECTOR_FILTER_H_
#define HOTSPOT_CORE_SECTOR_FILTER_H_

#include <vector>

#include "tensor/matrix.h"
#include "tensor/tensor3.h"

namespace hotspot {

/// The sector-filtering rule of Sec. II-C: a sector is discarded when more
/// than `max_missing_fraction` of its KPI cells are missing within any
/// sliding one-week window. Returns keep[i] = true for survivors.
std::vector<bool> SectorFilterMask(const Tensor3<float>& kpis,
                                   double max_missing_fraction = 0.5);

/// Copies the kept sectors of a tensor into a new, smaller tensor.
Tensor3<float> FilterSectors(const Tensor3<float>& kpis,
                             const std::vector<bool>& keep);

/// Copies the kept rows of a (sectors x time) matrix.
Matrix<float> FilterRows(const Matrix<float>& matrix,
                         const std::vector<bool>& keep);

}  // namespace hotspot

#endif  // HOTSPOT_CORE_SECTOR_FILTER_H_
