#ifndef HOTSPOT_CORE_STREAMING_RUNNER_H_
#define HOTSPOT_CORE_STREAMING_RUNNER_H_

#include <deque>
#include <vector>

#include "core/forecast_service.h"
#include "core/serving_ops.h"
#include "stream/incremental_features.h"

namespace hotspot {

/// DEPRECATED: synchronous predecessor of pipeline::ServingPipeline.
///
/// New code should construct a ServingPipeline — it owns the whole
/// ingest → features → predict → monitor chain behind one Options struct,
/// runs the stages concurrently with bounded queues and explicit
/// backpressure, and exports per-stage accounting. This runner remains as
/// a thin compatibility port for callers that already own an ingestor and
/// feature engine and want the original single-threaded call-and-return
/// Poll() flow; both paths share the same serving ops
/// (AssembleServingWindows / GatherDayLabels), so their scores are
/// bitwise-identical by construction.
///
/// Original contract, unchanged: watches the engine's finalized frontier
/// and, whenever every sector has finalized features through another day
/// boundary, cuts the per-sector windows (Eq. 6) out of the engine's
/// history, batches them through ForecastService::Predict, and — once the
/// stream reaches a prediction's target day — feeds the matured hot-spot
/// labels back via RecordOutcomes. Streaming scores are bitwise-identical
/// to the batch PredictAtDay(features, end_day) at every
/// HOTSPOT_NUM_THREADS (pinned by tests/stream_test.cc). Counters land
/// under `stream/`.
///
/// Poll from the ingest thread (or any single thread at a time), after
/// pushing rows, at least once per engine retention window — windows
/// older than the engine's history cannot be rebuilt, which the runner
/// enforces with a history-coverage check at construction.
class StreamingForecastRunner {
 public:
  /// Neither pointer is owned; both must outlive the runner. The engine's
  /// channel count must match the bundle's, and its retention must cover
  /// the serving window plus one week of frontier slack.
  StreamingForecastRunner(ForecastService* service,
                          stream::IncrementalFeatureEngine* engine);

  StreamingForecastRunner(const StreamingForecastRunner&) = delete;
  StreamingForecastRunner& operator=(const StreamingForecastRunner&) =
      delete;

  /// Runs every prediction batch that became ready since the last call
  /// (possibly none — the frontier advances in whole weeks) and feeds
  /// matured outcomes to the service's quality monitor. Returns the new
  /// predictions in end-day order.
  std::vector<StreamingPrediction> Poll();

  /// The next window end-day Poll will serve once the stream reaches it.
  int next_end_day() const { return next_end_day_; }
  /// Predictions whose target day has not matured in the stream yet.
  int pending_outcomes() const {
    return static_cast<int>(awaiting_outcomes_.size());
  }

 private:
  void RecordMaturedOutcomes();

  ForecastService* service_;
  stream::IncrementalFeatureEngine* engine_;
  int next_end_day_;
  std::deque<StreamingPrediction> awaiting_outcomes_;
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_STREAMING_RUNNER_H_
