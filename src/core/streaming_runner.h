#ifndef HOTSPOT_CORE_STREAMING_RUNNER_H_
#define HOTSPOT_CORE_STREAMING_RUNNER_H_

#include <deque>
#include <vector>

#include "core/forecast_service.h"
#include "stream/incremental_features.h"

namespace hotspot {

/// One served streaming batch: scores for the windows ending at `end_day`
/// (one per sector, sector-id order), forecasting day `target_day` =
/// end_day + the bundle's horizon.
struct StreamingPrediction {
  int end_day = 0;
  int target_day = 0;
  std::vector<float> scores;
};

/// The serving tail of the streaming pipeline: watches an
/// IncrementalFeatureEngine's finalized frontier and, whenever every
/// sector has finalized features through another day boundary, cuts the
/// per-sector windows (Eq. 6) out of the engine's history and batches
/// them through ForecastService::Predict — ingest → incremental features
/// → prediction → drift/quality monitoring in one process, no offline
/// tensor rebuild.
///
/// Window assembly fans out over the existing thread pool (sector i only
/// writes its own slab) and Predict keeps its own determinism contract,
/// so streaming scores are bitwise-identical to the batch
/// PredictAtDay(features, end_day) at every HOTSPOT_NUM_THREADS — pinned
/// by tests/stream_test.cc.
///
/// The runner also closes the monitoring loop: once the stream reaches a
/// prediction's target day, that day's matured hot-spot labels are fed
/// back via ForecastService::RecordOutcomes (the daily "is a hot spot"
/// ground truth — the serving default; other target kinds need their own
/// maturation rule). Counters land under `stream/` in the installed
/// observability context.
///
/// Poll from the ingest thread (or any single thread at a time), after
/// pushing rows. Poll at least once per engine retention window —
/// windows older than the engine's history cannot be rebuilt, which the
/// runner enforces with a history-coverage check at construction.
class StreamingForecastRunner {
 public:
  /// Neither pointer is owned; both must outlive the runner. The engine's
  /// channel count must match the bundle's, and its retention must cover
  /// the serving window plus one week of frontier slack.
  StreamingForecastRunner(ForecastService* service,
                          stream::IncrementalFeatureEngine* engine);

  StreamingForecastRunner(const StreamingForecastRunner&) = delete;
  StreamingForecastRunner& operator=(const StreamingForecastRunner&) =
      delete;

  /// Runs every prediction batch that became ready since the last call
  /// (possibly none — the frontier advances in whole weeks) and feeds
  /// matured outcomes to the service's quality monitor. Returns the new
  /// predictions in end-day order.
  std::vector<StreamingPrediction> Poll();

  /// The next window end-day Poll will serve once the stream reaches it.
  int next_end_day() const { return next_end_day_; }
  /// Predictions whose target day has not matured in the stream yet.
  int pending_outcomes() const {
    return static_cast<int>(awaiting_outcomes_.size());
  }

 private:
  void RecordMaturedOutcomes();

  ForecastService* service_;
  stream::IncrementalFeatureEngine* engine_;
  int next_end_day_;
  std::deque<StreamingPrediction> awaiting_outcomes_;
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_STREAMING_RUNNER_H_
