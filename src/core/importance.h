#ifndef HOTSPOT_CORE_IMPORTANCE_H_
#define HOTSPOT_CORE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "core/forecaster.h"
#include "features/feature_tensor.h"
#include "tensor/matrix.h"

namespace hotspot {

/// Aggregated view of a classifier's flat feature importances, resolved
/// back to the (window hour j, input channel k) grid of Figs. 15-16 and to
/// channel/group totals. Works for any of the library's extractors via
/// FeatureExtractor::SourceChannel.
class ImportanceMap {
 public:
  /// Builds the map from one forecast's importances. For the raw extractor
  /// the (hour, channel) grid is exact; for summary extractors (RF-F1/F2)
  /// hour attribution is unavailable and only channel totals are filled
  /// (the grid collapses to one row).
  static ImportanceMap FromForecast(const features::FeatureTensor& source,
                                    const features::FeatureExtractor& extractor,
                                    const std::vector<double>& importances,
                                    int window_days);

  /// Averages several maps (e.g., across forecast days t). All maps must
  /// share shapes.
  static ImportanceMap Average(const std::vector<ImportanceMap>& maps);

  /// Importance mass of channel k summed over the window.
  double ChannelTotal(int channel) const;

  /// Importance mass of one feature group.
  double GroupTotal(const features::FeatureTensor& source,
                    features::FeatureGroup group) const;

  /// Fraction of a channel's mass in the last `days` days of the window
  /// (Fig. 15's "importance increases as we get closer to the present").
  /// Returns 0 for channels without mass or when hour attribution is
  /// unavailable.
  double LateWindowShare(int channel, int days) const;

  /// Channels ordered by descending total importance.
  std::vector<int> RankedChannels() const;

  /// The (hours x channels) grid; one row when hour attribution is
  /// unavailable.
  const Matrix<double>& grid() const { return grid_; }
  bool has_hour_attribution() const { return grid_.rows() > 1; }
  int num_channels() const { return grid_.cols(); }

  /// Renders the top-k channels as an aligned text table.
  std::string ToTable(const features::FeatureTensor& source,
                      int top_k = 12) const;

 private:
  Matrix<double> grid_;  // hours (or 1) x channels
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_IMPORTANCE_H_
