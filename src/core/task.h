#ifndef HOTSPOT_CORE_TASK_H_
#define HOTSPOT_CORE_TASK_H_

#include <vector>

#include "core/evaluation.h"
#include "core/forecaster.h"

namespace hotspot {

/// The paper's evaluation grid (Table III).
struct ParameterGrid {
  std::vector<ModelKind> models;
  std::vector<int> t_values;
  std::vector<int> h_values;
  std::vector<int> w_values;

  /// The exact Table III grid: 8 models, t ∈ {52..87},
  /// h ∈ {1,2,3,4,5,7,8,10,12,14,16,19,22,26,29}, w ∈ {1,2,3,5,7,10,14,21}.
  static ParameterGrid Paper();

  /// A subsampled grid for CPU-bounded benches: every `t_stride`-th t, the
  /// given h and w subsets (empty = paper values).
  static ParameterGrid Subsampled(int t_stride, std::vector<int> h_subset,
                                  std::vector<int> w_subset);

  long long NumCells() const {
    return static_cast<long long>(models.size()) * t_values.size() *
           h_values.size() * w_values.size();
  }
};

/// Sweep options: which slices of the grid to run.
struct SweepOptions {
  /// Fixed w while sweeping h (Figs. 9-12), or fixed h while sweeping w
  /// (Figs. 13-14); the full grid runs both axes.
  bool progress_to_stderr = false;
};

/// Runs every (model, t, h, w) cell of `grid` through `runner` and returns
/// the per-cell results. This is the engine behind the figure benches and
/// the temporal-stability analysis. Cells are evaluated in parallel over
/// HOTSPOT_NUM_THREADS threads; the returned vector is in the serial sweep
/// order (model-major, then h, w, t) and bitwise-identical at any thread
/// count.
std::vector<CellResult> RunSweep(EvaluationRunner* runner,
                                 const ParameterGrid& grid,
                                 const SweepOptions& options = {});

}  // namespace hotspot

#endif  // HOTSPOT_CORE_TASK_H_
