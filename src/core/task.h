#ifndef HOTSPOT_CORE_TASK_H_
#define HOTSPOT_CORE_TASK_H_

#include <functional>
#include <vector>

#include "core/evaluation.h"
#include "core/forecaster.h"

namespace hotspot {

namespace obs {
class PipelineContext;
}  // namespace obs

/// The paper's evaluation grid (Table III).
struct ParameterGrid {
  std::vector<ModelKind> models;
  std::vector<int> t_values;
  std::vector<int> h_values;
  std::vector<int> w_values;

  /// The exact Table III grid: 8 models, t ∈ {52..87},
  /// h ∈ {1,2,3,4,5,7,8,10,12,14,16,19,22,26,29}, w ∈ {1,2,3,5,7,10,14,21}.
  static ParameterGrid Paper();

  /// A subsampled grid for CPU-bounded benches: every `t_stride`-th t, the
  /// given h and w subsets (empty = paper values).
  static ParameterGrid Subsampled(int t_stride, std::vector<int> h_subset,
                                  std::vector<int> w_subset);

  long long NumCells() const {
    return static_cast<long long>(models.size()) * t_values.size() *
           h_values.size() * w_values.size();
  }
};

/// Progress of a running sweep, reported after each completed model
/// (the granularity the parallel fan-out naturally yields).
struct SweepProgress {
  long long cells_done = 0;
  long long cells_total = 0;
  int models_done = 0;
  int models_total = 0;
  const char* model_name = "";   ///< model that just finished
  double elapsed_seconds = 0.0;
  double eta_seconds = 0.0;      ///< linear extrapolation; 0 when done
};

/// Sweep progress callback. Invoked on the calling thread, between model
/// fan-outs — it may print, update a UI, or abort via exception.
using SweepProgressFn = std::function<void(const SweepProgress&)>;

/// The stderr reporter that `SweepOptions::progress_to_stderr` used to
/// hard-wire: "  sweep: <model> done (<done>/<total> cells)".
SweepProgressFn StderrSweepProgress();

/// Sweep options.
struct SweepOptions {
  /// Progress callback; null = silent. Use StderrSweepProgress() for the
  /// classic stderr lines.
  SweepProgressFn progress;
  /// Optional observability context, installed for the duration of the
  /// sweep: cells/ETA gauges, per-cell latency histograms and trace spans
  /// land in it (see src/obs). Null = observability off; results are
  /// bitwise-identical either way. Must outlive the call.
  obs::PipelineContext* context = nullptr;
};

/// Runs every (model, t, h, w) cell of `grid` through `runner` and returns
/// the per-cell results. This is the engine behind the figure benches and
/// the temporal-stability analysis. Cells are evaluated in parallel over
/// HOTSPOT_NUM_THREADS threads; the returned vector is in the serial sweep
/// order (model-major, then h, w, t) and bitwise-identical at any thread
/// count.
std::vector<CellResult> RunSweep(EvaluationRunner* runner,
                                 const ParameterGrid& grid,
                                 const SweepOptions& options = {});

}  // namespace hotspot

#endif  // HOTSPOT_CORE_TASK_H_
