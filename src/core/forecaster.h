#ifndef HOTSPOT_CORE_FORECASTER_H_
#define HOTSPOT_CORE_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "features/feature_tensor.h"
#include "features/handcrafted_features.h"
#include "features/percentile_features.h"
#include "features/raw_features.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "tensor/matrix.h"

namespace hotspot::serialize {
struct ForecastBundle;
}  // namespace hotspot::serialize

namespace hotspot::monitor {
struct BundleFingerprints;
}  // namespace hotspot::monitor

namespace hotspot {

/// The forecasting models of Table III, plus the GBDT extension.
enum class ModelKind {
  kRandom,
  kPersist,
  kAverage,
  kTrend,
  kTree,   ///< single CART on raw window features
  kRfRaw,  ///< RF-R: random forest on the raw window
  kRfF1,   ///< RF-F1: random forest on daily percentile features
  kRfF2,   ///< RF-F2: random forest on hand-crafted features
  kGbdt,   ///< extension: gradient-boosted trees on the raw window
};

const char* ModelName(ModelKind model);

/// The 8 models the paper sweeps (Table III), in paper order.
std::vector<ModelKind> PaperModels();

/// The two forecasting scenarios of Sec. IV-A.
enum class TargetKind { kBeHotSpot, kBecomeHotSpot };

const char* TargetName(TargetKind target);

/// One forecast request: model and the (t, h, w) coordinates of Table III.
/// Training uses windows ending at day t−h with labels at day t (Eq. 7);
/// prediction uses windows ending at day t, for the target day t+h
/// (Eq. 6).
struct ForecastConfig {
  ModelKind model = ModelKind::kAverage;
  int t = 52;  ///< current day
  int h = 1;   ///< prediction horizon in days (>= 1)
  int w = 7;   ///< past-window length in days (>= 1)
  /// Extension: pool training labels from this many target days to
  /// enlarge the training set. 1 = the paper's single-day setup (Eq. 7).
  int training_days = 1;
  /// Override of `training_days` for the single-Tree model (0 = same as
  /// training_days). The paper's Tree trains on one day (Eq. 7); exact
  /// CART split search over 80 % of the raw features scales poorly with
  /// pooled instances, so benches keep the Tree paper-faithful at 1.
  int tree_training_days = 0;
  /// Spacing between pooled target days: 1 pools consecutive days
  /// (t, t−1, ...); 7 pools same-weekday days (t, t−7, ...), which
  /// preserves the weekday alignment between window and target that the
  /// paper's single-day training has implicitly. When the window of an
  /// older pooled day would start before day 0, pooling stops early (at
  /// least the day t itself is always used).
  int training_day_stride = 1;
  /// Hyperparameters of the classifier models (paper defaults).
  ml::TreeConfig tree;
  ml::ForestConfig forest;
  ml::GbdtConfig gbdt;
  uint64_t seed = 99;
};

/// A forecast for all sectors at day t+h.
struct ForecastResult {
  ModelKind model = ModelKind::kAverage;
  std::vector<float> predictions;  ///< per-sector ranking score
  /// Flattened per-feature importances (classifier models; empty for
  /// baselines). Index semantics follow the model's extractor layout.
  std::vector<double> importances;
  int feature_dim = 0;
};

/// Runs the paper's forecasting methodology for one target variable.
/// Holds references to the inputs; they must outlive the forecaster.
class Forecaster {
 public:
  /// `target_labels` is Yᵈ for the "be a hot spot" task and the
  /// become-a-hot-spot matrix for the other scenario (both sectors x days).
  Forecaster(const features::FeatureTensor* features,
             const Matrix<float>* daily_scores,
             const Matrix<float>* target_labels);

  /// Produces predictions Ŷ_{:,t+h} for one configuration.
  ForecastResult Run(const ForecastConfig& config) const;

  /// Trains the classifier of `config` (a classifier ModelKind) and packs
  /// it with the feature-window spec into a servable bundle. Training uses
  /// the exact seed stream of Run(), so serving the bundle on windows
  /// ending at day t reproduces Run()'s predictions bit for bit. The
  /// bundle also carries the monitoring fingerprints: per-channel
  /// distribution sketches over the exact hour span the training windows
  /// covered, plus a sketch of the scores the trained classifier produces
  /// on the day-t windows (the reference the serving-side drift detector
  /// tests live traffic against). The caller fills in the bundle's score
  /// config and normalization stats (study-level state the forecaster
  /// never sees).
  std::unique_ptr<serialize::ForecastBundle> TrainBundle(
      const ForecastConfig& config) const;

  /// The extractor a classifier model uses (nullptr for baselines).
  const features::FeatureExtractor* ExtractorFor(ModelKind model) const;

  int num_sectors() const;
  int num_days() const { return target_labels_->cols(); }

  /// True labels of the target day (evaluation convenience).
  std::vector<float> LabelsAtDay(int day) const;

 private:
  /// The shared training path of Run() and TrainBundle(): builds the
  /// training set and fits the classifier of `config.model` with the
  /// deterministic per-(model, t, h, w) seed stream.
  std::unique_ptr<ml::BinaryClassifier> TrainClassifier(
      const ForecastConfig& config) const;
  /// Sketches the training-window input distributions (one per channel)
  /// and the trained classifier's day-t score distribution — the drift
  /// references TrainBundle packs into the bundle.
  std::unique_ptr<monitor::BundleFingerprints> BuildFingerprints(
      const ForecastConfig& config,
      const ml::BinaryClassifier& classifier) const;
  ml::Dataset BuildTrainingSet(const ForecastConfig& config,
                               const features::FeatureExtractor& extractor)
      const;
  Matrix<float> BuildPredictionRows(
      const ForecastConfig& config,
      const features::FeatureExtractor& extractor) const;

  const features::FeatureTensor* features_;
  const Matrix<float>* daily_scores_;
  const Matrix<float>* target_labels_;
  features::RawExtractor raw_extractor_;
  features::DailyPercentileExtractor percentile_extractor_;
  features::HandcraftedExtractor handcrafted_extractor_;
};

}  // namespace hotspot

#endif  // HOTSPOT_CORE_FORECASTER_H_
