#include "core/streaming_runner.h"

#include <utility>

#include "obs/pipeline_context.h"
#include "obs/trace.h"
#include "tensor/temporal.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot {

StreamingForecastRunner::StreamingForecastRunner(
    ForecastService* service, stream::IncrementalFeatureEngine* engine)
    : service_(service), engine_(engine) {
  HOTSPOT_CHECK(service_ != nullptr);
  HOTSPOT_CHECK(engine_ != nullptr);
  HOTSPOT_CHECK_EQ(engine_->channels(), service_->bundle().num_channels);
  // A window must still be in history when its end-day becomes servable;
  // the frontier can run up to one week past the last served day between
  // Polls, so retention needs the window plus that slack.
  HOTSPOT_CHECK_GE(engine_->history_hours(),
                   service_->window_hours() + kHoursPerWeek);
  next_end_day_ = service_->bundle().window_days;
}

std::vector<StreamingPrediction> StreamingForecastRunner::Poll() {
  std::vector<StreamingPrediction> served;
  const int n = engine_->config().num_sectors;
  const int window_hours = service_->window_hours();
  const int ch = engine_->channels();
  while (engine_->min_finalized_hours() >= kHoursPerDay * next_end_day_) {
    HOTSPOT_SPAN("stream/predict");
    StreamingPrediction prediction;
    prediction.end_day = next_end_day_;
    prediction.target_day = next_end_day_ + service_->bundle().horizon_days;
    const int first_hour = kHoursPerDay * next_end_day_ - window_hours;
    Tensor3<float> windows(n, window_hours, ch);
    // Parallel over sectors; sector i only writes its own slab, so the
    // assembled tensor is bitwise-independent of the thread count.
    util::ParallelFor(0, n, [&](int64_t i64) {
      const int i = static_cast<int>(i64);
      engine_->CopyFeatureRows(i, first_hour, window_hours,
                               windows.Slice(i, 0));
    });
    prediction.scores = service_->Predict(windows);
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("stream/prediction_batches").Increment();
      ctx->metrics().counter("stream/predictions").Add(
          static_cast<uint64_t>(n));
    }
    awaiting_outcomes_.push_back(prediction);
    served.push_back(std::move(prediction));
    ++next_end_day_;
  }
  RecordMaturedOutcomes();
  return served;
}

void StreamingForecastRunner::RecordMaturedOutcomes() {
  const int n = engine_->config().num_sectors;
  while (!awaiting_outcomes_.empty() &&
         engine_->min_closed_days() >
             awaiting_outcomes_.front().target_day) {
    const StreamingPrediction& prediction = awaiting_outcomes_.front();
    std::vector<float> labels(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      labels[static_cast<size_t>(i)] =
          engine_->DailyLabel(i, prediction.target_day);
    }
    service_->RecordOutcomes(prediction.scores, labels);
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("stream/outcomes_recorded").Add(
          static_cast<uint64_t>(n));
    }
    awaiting_outcomes_.pop_front();
  }
}

}  // namespace hotspot
