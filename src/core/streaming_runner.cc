#include "core/streaming_runner.h"

#include <utility>

#include "obs/pipeline_context.h"
#include "obs/trace.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot {

StreamingForecastRunner::StreamingForecastRunner(
    ForecastService* service, stream::IncrementalFeatureEngine* engine)
    : service_(service), engine_(engine) {
  HOTSPOT_CHECK(service_ != nullptr);
  HOTSPOT_CHECK(engine_ != nullptr);
  // Serving-universe invariants only (fixed across promotions): the
  // runner stays swap-safe without ever holding a bundle reference.
  HOTSPOT_CHECK_EQ(engine_->channels(), service_->num_channels());
  // A window must still be in history when its end-day becomes servable;
  // the frontier can run up to one week past the last served day between
  // Polls, so retention needs the window plus that slack.
  HOTSPOT_CHECK_GE(engine_->history_hours(),
                   service_->window_hours() + kHoursPerWeek);
  next_end_day_ = service_->window_days();
}

std::vector<StreamingPrediction> StreamingForecastRunner::Poll() {
  std::vector<StreamingPrediction> served;
  const int n = engine_->config().num_sectors;
  const int window_hours = service_->window_hours();
  while (engine_->min_finalized_hours() >= kHoursPerDay * next_end_day_) {
    HOTSPOT_SPAN("stream/predict");
    StreamingPrediction prediction;
    prediction.end_day = next_end_day_;
    prediction.target_day = next_end_day_ + service_->horizon_days();
    prediction.scores = service_->Predict(
        AssembleServingWindows(*engine_, window_hours, next_end_day_));
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("stream/prediction_batches").Increment();
      ctx->metrics().counter("stream/predictions").Add(
          static_cast<uint64_t>(n));
    }
    awaiting_outcomes_.push_back(prediction);
    served.push_back(std::move(prediction));
    ++next_end_day_;
  }
  RecordMaturedOutcomes();
  return served;
}

void StreamingForecastRunner::RecordMaturedOutcomes() {
  const int n = engine_->config().num_sectors;
  while (!awaiting_outcomes_.empty() &&
         engine_->min_closed_days() >
             awaiting_outcomes_.front().target_day) {
    const StreamingPrediction& prediction = awaiting_outcomes_.front();
    service_->RecordOutcomes(
        prediction.scores,
        GatherDayLabels(*engine_, prediction.target_day));
    if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
      ctx->metrics().counter("stream/outcomes_recorded").Add(
          static_cast<uint64_t>(n));
    }
    awaiting_outcomes_.pop_front();
  }
}

}  // namespace hotspot
