#ifndef HOTSPOT_FEATURES_RAW_FEATURES_H_
#define HOTSPOT_FEATURES_RAW_FEATURES_H_

#include <string>
#include <vector>

#include "features/feature_tensor.h"
#include "tensor/matrix.h"

namespace hotspot::features {

/// Abstract per-window feature extractor: turns one (hours x channels)
/// window into a flat feature row. Implementations must produce the same
/// dimensionality for every window of the same shape.
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Output dimensionality for a window of `window_days` days over
  /// `channels` input channels.
  virtual int OutputDim(int window_days, int channels) const = 0;

  /// Fills `out` (resized to OutputDim) from `window` (24·w x channels).
  virtual void Extract(const Matrix<float>& window,
                       std::vector<float>* out) const = 0;

  /// Human-readable name of output feature `index` (for importance
  /// reports). Default: "f<index>".
  virtual std::string FeatureName(int index, int window_days,
                                  const FeatureTensor& source) const;

  /// Source channel of output feature `index` (every extractor output maps
  /// to exactly one input channel k, which Figs. 15/16 aggregate over).
  virtual int SourceChannel(int index, int window_days,
                            int channels) const = 0;
};

/// RF-R: the raw hourly window, flattened time-major — output index
/// j·channels + k holds X(i, hour j of the window, channel k).
class RawExtractor : public FeatureExtractor {
 public:
  int OutputDim(int window_days, int channels) const override;
  void Extract(const Matrix<float>& window,
               std::vector<float>* out) const override;
  int SourceChannel(int index, int window_days, int channels) const override;
  std::string FeatureName(int index, int window_days,
                          const FeatureTensor& source) const override;

  /// The hour-of-window of output feature `index` (for Fig. 15/16's
  /// time axis).
  static int SourceHour(int index, int channels) { return index / channels; }
};

}  // namespace hotspot::features

#endif  // HOTSPOT_FEATURES_RAW_FEATURES_H_
