#ifndef HOTSPOT_FEATURES_HANDCRAFTED_FEATURES_H_
#define HOTSPOT_FEATURES_HANDCRAFTED_FEATURES_H_

#include "features/raw_features.h"

namespace hotspot::features {

/// RF-F2 (Sec. IV-D): hand-crafted per-channel summaries of the window.
/// For every input channel, in order:
///   [0..3]    mean/std/min/max of the whole window
///   [4..7]    the same for the first half
///   [8..11]   the same for the second half
///   [12..15]  second-half minus first-half differences of the four stats
///   [16..39]  average day profile (mean per hour-of-day, 24)
///   [40..46]  average week profile (mean of daily means per day-of-window
///             modulo 7, 7; NaN for absent buckets when w < 7)
///   [47]      day-profile peak minus trough
///   [48]      week-profile peak minus trough
///   [49..72]  extreme day profile: minimum per hour-of-day (24)
///   [73..96]  extreme day profile: maximum per hour-of-day (24)
///   [97..103] extreme week profile: minimum daily mean per bucket (7)
///   [104..110] extreme week profile: maximum daily mean per bucket (7)
///   [111..134] raw values of the last day's 24 hours
///   [135..136] mean and std of the last day
/// i.e. kPerChannel = 137 outputs per channel, channel-major layout.
/// This feature set contains the Persistence, Average and Trend models'
/// information, as the paper notes.
class HandcraftedExtractor : public FeatureExtractor {
 public:
  static constexpr int kPerChannel = 137;

  int OutputDim(int window_days, int channels) const override;
  void Extract(const Matrix<float>& window,
               std::vector<float>* out) const override;
  int SourceChannel(int index, int window_days, int channels) const override;
  std::string FeatureName(int index, int window_days,
                          const FeatureTensor& source) const override;
};

}  // namespace hotspot::features

#endif  // HOTSPOT_FEATURES_HANDCRAFTED_FEATURES_H_
