#include "features/handcrafted_features.h"

#include <cmath>

#include "stats/percentile.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::features {

namespace {

float ToF(double value) {
  return std::isnan(value) ? MissingValue() : static_cast<float>(value);
}

/// Writes mean/std/min/max of `values` at out[offset..offset+3].
void WriteStats(const std::vector<float>& values, std::vector<float>* out,
                size_t offset) {
  (*out)[offset + 0] = ToF(Mean(values));
  (*out)[offset + 1] = ToF(StdDev(values));
  (*out)[offset + 2] = ToF(MinValue(values));
  (*out)[offset + 3] = ToF(MaxValue(values));
}

double RangeOf(const float* values, int count) {
  double lo = std::nan("");
  double hi = std::nan("");
  for (int i = 0; i < count; ++i) {
    float v = values[i];
    if (IsMissing(v)) continue;
    if (std::isnan(lo) || v < lo) lo = v;
    if (std::isnan(hi) || v > hi) hi = v;
  }
  if (std::isnan(lo)) return std::nan("");
  return hi - lo;
}

}  // namespace

int HandcraftedExtractor::OutputDim(int window_days, int channels) const {
  (void)window_days;
  return channels * kPerChannel;
}

void HandcraftedExtractor::Extract(const Matrix<float>& window,
                                   std::vector<float>* out) const {
  HOTSPOT_CHECK(out != nullptr);
  const int hours = window.rows();
  const int channels = window.cols();
  HOTSPOT_CHECK_EQ(hours % kHoursPerDay, 0);
  const int days = hours / kHoursPerDay;
  HOTSPOT_CHECK_GE(days, 1);
  out->assign(static_cast<size_t>(channels) * kPerChannel, 0.0f);

  std::vector<float> series(static_cast<size_t>(hours));
  std::vector<float> half;
  for (int k = 0; k < channels; ++k) {
    for (int h = 0; h < hours; ++h) {
      series[static_cast<size_t>(h)] = window.At(h, k);
    }
    size_t base = static_cast<size_t>(k) * kPerChannel;

    // Whole-window and half-window statistics.
    WriteStats(series, out, base + 0);
    int split = hours / 2;
    half.assign(series.begin(), series.begin() + split);
    WriteStats(half, out, base + 4);
    half.assign(series.begin() + split, series.end());
    WriteStats(half, out, base + 8);
    for (int s = 0; s < 4; ++s) {
      float first = (*out)[base + 4 + static_cast<size_t>(s)];
      float second = (*out)[base + 8 + static_cast<size_t>(s)];
      (*out)[base + 12 + static_cast<size_t>(s)] =
          (IsMissing(first) || IsMissing(second)) ? MissingValue()
                                                  : second - first;
    }

    // Average / extreme day profiles.
    float day_avg[kHoursPerDay];
    float day_min[kHoursPerDay];
    float day_max[kHoursPerDay];
    for (int h = 0; h < kHoursPerDay; ++h) {
      double sum = 0.0;
      int count = 0;
      double lo = std::nan("");
      double hi = std::nan("");
      for (int d = 0; d < days; ++d) {
        float v = series[static_cast<size_t>(d * kHoursPerDay + h)];
        if (IsMissing(v)) continue;
        sum += v;
        ++count;
        if (std::isnan(lo) || v < lo) lo = v;
        if (std::isnan(hi) || v > hi) hi = v;
      }
      day_avg[h] = count > 0 ? static_cast<float>(sum / count)
                             : MissingValue();
      day_min[h] = ToF(lo);
      day_max[h] = ToF(hi);
    }
    for (int h = 0; h < kHoursPerDay; ++h) {
      (*out)[base + 16 + static_cast<size_t>(h)] = day_avg[h];
      (*out)[base + 49 + static_cast<size_t>(h)] = day_min[h];
      (*out)[base + 73 + static_cast<size_t>(h)] = day_max[h];
    }

    // Daily means, then average / extreme week profiles over day-of-window
    // modulo 7 buckets.
    std::vector<float> daily_mean(static_cast<size_t>(days));
    for (int d = 0; d < days; ++d) {
      double sum = 0.0;
      int count = 0;
      for (int h = 0; h < kHoursPerDay; ++h) {
        float v = series[static_cast<size_t>(d * kHoursPerDay + h)];
        if (IsMissing(v)) continue;
        sum += v;
        ++count;
      }
      daily_mean[static_cast<size_t>(d)] =
          count > 0 ? static_cast<float>(sum / count) : MissingValue();
    }
    float week_avg[kDaysPerWeek];
    float week_min[kDaysPerWeek];
    float week_max[kDaysPerWeek];
    for (int b = 0; b < kDaysPerWeek; ++b) {
      double sum = 0.0;
      int count = 0;
      double lo = std::nan("");
      double hi = std::nan("");
      for (int d = b; d < days; d += kDaysPerWeek) {
        float v = daily_mean[static_cast<size_t>(d)];
        if (IsMissing(v)) continue;
        sum += v;
        ++count;
        if (std::isnan(lo) || v < lo) lo = v;
        if (std::isnan(hi) || v > hi) hi = v;
      }
      week_avg[b] = count > 0 ? static_cast<float>(sum / count)
                              : MissingValue();
      week_min[b] = ToF(lo);
      week_max[b] = ToF(hi);
    }
    for (int b = 0; b < kDaysPerWeek; ++b) {
      (*out)[base + 40 + static_cast<size_t>(b)] = week_avg[b];
      (*out)[base + 97 + static_cast<size_t>(b)] = week_min[b];
      (*out)[base + 104 + static_cast<size_t>(b)] = week_max[b];
    }

    // Profile peak-trough differences.
    (*out)[base + 47] = ToF(RangeOf(day_avg, kHoursPerDay));
    (*out)[base + 48] = ToF(RangeOf(week_avg, kDaysPerWeek));

    // Last-day raw values and stats.
    std::vector<float> last_day(
        series.end() - kHoursPerDay, series.end());
    for (int h = 0; h < kHoursPerDay; ++h) {
      (*out)[base + 111 + static_cast<size_t>(h)] =
          last_day[static_cast<size_t>(h)];
    }
    (*out)[base + 135] = ToF(Mean(last_day));
    (*out)[base + 136] = ToF(StdDev(last_day));
  }
}

int HandcraftedExtractor::SourceChannel(int index, int window_days,
                                        int channels) const {
  (void)window_days;
  (void)channels;
  return index / kPerChannel;
}

std::string HandcraftedExtractor::FeatureName(
    int index, int window_days, const FeatureTensor& source) const {
  (void)window_days;
  int channel = index / kPerChannel;
  int offset = index % kPerChannel;
  const char* suffix;
  char buffer[32];
  if (offset < 4) {
    static const char* kStats[] = {"mean", "std", "min", "max"};
    std::snprintf(buffer, sizeof(buffer), "whole_%s", kStats[offset]);
    suffix = buffer;
  } else if (offset < 8) {
    static const char* kStats[] = {"mean", "std", "min", "max"};
    std::snprintf(buffer, sizeof(buffer), "half1_%s", kStats[offset - 4]);
    suffix = buffer;
  } else if (offset < 12) {
    static const char* kStats[] = {"mean", "std", "min", "max"};
    std::snprintf(buffer, sizeof(buffer), "half2_%s", kStats[offset - 8]);
    suffix = buffer;
  } else if (offset < 16) {
    static const char* kStats[] = {"mean", "std", "min", "max"};
    std::snprintf(buffer, sizeof(buffer), "halfdiff_%s", kStats[offset - 12]);
    suffix = buffer;
  } else if (offset < 40) {
    std::snprintf(buffer, sizeof(buffer), "dayavg_h%d", offset - 16);
    suffix = buffer;
  } else if (offset < 47) {
    std::snprintf(buffer, sizeof(buffer), "weekavg_d%d", offset - 40);
    suffix = buffer;
  } else if (offset == 47) {
    suffix = "dayrange";
  } else if (offset == 48) {
    suffix = "weekrange";
  } else if (offset < 73) {
    std::snprintf(buffer, sizeof(buffer), "daymin_h%d", offset - 49);
    suffix = buffer;
  } else if (offset < 97) {
    std::snprintf(buffer, sizeof(buffer), "daymax_h%d", offset - 73);
    suffix = buffer;
  } else if (offset < 104) {
    std::snprintf(buffer, sizeof(buffer), "weekmin_d%d", offset - 97);
    suffix = buffer;
  } else if (offset < 111) {
    std::snprintf(buffer, sizeof(buffer), "weekmax_d%d", offset - 104);
    suffix = buffer;
  } else if (offset < 135) {
    std::snprintf(buffer, sizeof(buffer), "lastday_h%d", offset - 111);
    suffix = buffer;
  } else if (offset == 135) {
    suffix = "lastday_mean";
  } else {
    suffix = "lastday_std";
  }
  return source.ChannelName(channel) + "." + suffix;
}

}  // namespace hotspot::features
