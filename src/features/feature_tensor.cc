#include "features/feature_tensor.h"

#include "obs/pipeline_context.h"
#include "tensor/temporal.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot::features {

const char* FeatureGroupName(FeatureGroup group) {
  switch (group) {
    case FeatureGroup::kKpi:
      return "kpi";
    case FeatureGroup::kCalendar:
      return "calendar";
    case FeatureGroup::kHourlyScore:
      return "score_hourly";
    case FeatureGroup::kDailyScore:
      return "score_daily";
    case FeatureGroup::kWeeklyScore:
      return "score_weekly";
    case FeatureGroup::kDailyLabel:
      return "label_daily";
  }
  return "unknown";
}

namespace {

/// Channel names/groups of the Eq. 5 layout, shared by both factories.
void BuildChannelMeta(int num_kpis, const std::vector<std::string>& kpi_names,
                      std::vector<std::string>* names,
                      std::vector<FeatureGroup>* groups) {
  names->reserve(static_cast<size_t>(num_kpis + 9));
  groups->reserve(static_cast<size_t>(num_kpis + 9));
  for (int k = 0; k < num_kpis; ++k) {
    names->push_back(kpi_names.empty() ? "kpi_" + std::to_string(k)
                                       : kpi_names[static_cast<size_t>(k)]);
    groups->push_back(FeatureGroup::kKpi);
  }
  const char* kCalendarNames[5] = {"cal_hour_of_day", "cal_day_of_week",
                                   "cal_day_of_month", "cal_weekend",
                                   "cal_holiday"};
  for (const char* name : kCalendarNames) {
    names->push_back(name);
    groups->push_back(FeatureGroup::kCalendar);
  }
  names->push_back("score_hourly");
  groups->push_back(FeatureGroup::kHourlyScore);
  names->push_back("score_daily");
  groups->push_back(FeatureGroup::kDailyScore);
  names->push_back("score_weekly");
  groups->push_back(FeatureGroup::kWeeklyScore);
  names->push_back("label_daily");
  groups->push_back(FeatureGroup::kDailyLabel);
}

}  // namespace

FeatureTensor FeatureTensor::FromChannels(
    Tensor3<float> tensor, int num_kpis,
    const std::vector<std::string>& kpi_names) {
  HOTSPOT_CHECK_GT(num_kpis, 0);
  HOTSPOT_CHECK_EQ(tensor.dim2(), num_kpis + 9);
  if (!kpi_names.empty()) {
    HOTSPOT_CHECK_EQ(static_cast<int>(kpi_names.size()), num_kpis);
  }
  FeatureTensor built;
  built.tensor_ = std::move(tensor);
  BuildChannelMeta(num_kpis, kpi_names, &built.names_, &built.groups_);
  return built;
}

FeatureTensor FeatureTensor::Build(
    const Tensor3<float>& kpis, const Matrix<float>& calendar,
    const Matrix<float>& hourly_scores, const Matrix<float>& daily_scores,
    const Matrix<float>& weekly_scores, const Matrix<float>& daily_labels,
    const std::vector<std::string>& kpi_names) {
  HOTSPOT_SPAN("features/build");
  const int n = kpis.dim0();
  const int hours = kpis.dim1();
  const int l = kpis.dim2();
  HOTSPOT_CHECK_EQ(calendar.rows(), hours);
  HOTSPOT_CHECK_EQ(calendar.cols(), 5);
  HOTSPOT_CHECK_EQ(hourly_scores.rows(), n);
  HOTSPOT_CHECK_EQ(hourly_scores.cols(), hours);
  HOTSPOT_CHECK_EQ(daily_scores.rows(), n);
  HOTSPOT_CHECK_EQ(daily_scores.cols(), hours / kHoursPerDay);
  HOTSPOT_CHECK_EQ(weekly_scores.rows(), n);
  HOTSPOT_CHECK_EQ(weekly_scores.cols(), hours / kHoursPerWeek);
  HOTSPOT_CHECK_EQ(daily_labels.rows(), n);
  HOTSPOT_CHECK_EQ(daily_labels.cols(), hours / kHoursPerDay);
  if (!kpi_names.empty()) {
    HOTSPOT_CHECK_EQ(static_cast<int>(kpi_names.size()), l);
  }

  FeatureTensor built;
  const int channels = l + 5 + 3 + 1;
  built.tensor_ = Tensor3<float>(n, hours, channels);
  BuildChannelMeta(l, kpi_names, &built.names_, &built.groups_);

  // Parallel over sectors; sector i only writes its own (i, :, :) slab.
  util::ParallelFor(0, n, [&](int64_t i64) {
    const int i = static_cast<int>(i64);
    for (int j = 0; j < hours; ++j) {
      float* dst = built.tensor_.Slice(i, j);
      const float* kpi = kpis.Slice(i, j);
      int c = 0;
      for (int k = 0; k < l; ++k) dst[c++] = kpi[k];
      const float* cal = calendar.Row(j);
      for (int k = 0; k < 5; ++k) dst[c++] = cal[k];
      dst[c++] = hourly_scores.At(i, j);
      dst[c++] = daily_scores.At(i, j / kHoursPerDay);
      dst[c++] = weekly_scores.At(i, j / kHoursPerWeek);
      dst[c++] = daily_labels.At(i, j / kHoursPerDay);
    }
  });
  return built;
}

const std::string& FeatureTensor::ChannelName(int channel) const {
  HOTSPOT_CHECK(channel >= 0 && channel < num_channels());
  return names_[static_cast<size_t>(channel)];
}

FeatureGroup FeatureTensor::ChannelGroup(int channel) const {
  HOTSPOT_CHECK(channel >= 0 && channel < num_channels());
  return groups_[static_cast<size_t>(channel)];
}

}  // namespace hotspot::features
