#include "features/window.h"

#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::features {

Matrix<float> ExtractWindow(const FeatureTensor& features, int sector,
                            int end_day, int window_days) {
  HOTSPOT_CHECK_GE(window_days, 1);
  HOTSPOT_CHECK_GE(end_day - window_days, 0);
  HOTSPOT_CHECK_LE(end_day * kHoursPerDay, features.num_hours());
  int start_hour = (end_day - window_days) * kHoursPerDay;
  int end_hour = end_day * kHoursPerDay;
  return features.tensor().SectorSlab(sector, start_hour, end_hour);
}

}  // namespace hotspot::features
