#include "features/raw_features.h"

#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::features {

std::string FeatureExtractor::FeatureName(int index, int window_days,
                                          const FeatureTensor& source) const {
  (void)window_days;
  (void)source;
  return "f" + std::to_string(index);
}

int RawExtractor::OutputDim(int window_days, int channels) const {
  return window_days * kHoursPerDay * channels;
}

void RawExtractor::Extract(const Matrix<float>& window,
                           std::vector<float>* out) const {
  HOTSPOT_CHECK(out != nullptr);
  out->assign(window.data().begin(), window.data().end());
}

int RawExtractor::SourceChannel(int index, int window_days,
                                int channels) const {
  (void)window_days;
  return index % channels;
}

std::string RawExtractor::FeatureName(int index, int window_days,
                                      const FeatureTensor& source) const {
  (void)window_days;
  int channels = source.num_channels();
  int hour = SourceHour(index, channels);
  int channel = index % channels;
  return source.ChannelName(channel) + "@h" + std::to_string(hour);
}

}  // namespace hotspot::features
