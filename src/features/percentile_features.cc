#include "features/percentile_features.h"

#include "stats/percentile.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::features {

const double* DailyPercentileExtractor::Levels() {
  static const double kLevels[kNumPercentiles] = {5.0, 25.0, 50.0, 75.0,
                                                  95.0};
  return kLevels;
}

int DailyPercentileExtractor::OutputDim(int window_days, int channels) const {
  return window_days * channels * kNumPercentiles;
}

void DailyPercentileExtractor::Extract(const Matrix<float>& window,
                                       std::vector<float>* out) const {
  HOTSPOT_CHECK(out != nullptr);
  const int hours = window.rows();
  const int channels = window.cols();
  HOTSPOT_CHECK_EQ(hours % kHoursPerDay, 0);
  const int days = hours / kHoursPerDay;
  out->assign(static_cast<size_t>(OutputDim(days, channels)), 0.0f);

  std::vector<float> day_values(kHoursPerDay);
  std::vector<double> levels(Levels(), Levels() + kNumPercentiles);
  for (int d = 0; d < days; ++d) {
    for (int k = 0; k < channels; ++k) {
      for (int h = 0; h < kHoursPerDay; ++h) {
        day_values[static_cast<size_t>(h)] =
            window.At(d * kHoursPerDay + h, k);
      }
      std::vector<double> percentiles = Percentiles(day_values, levels);
      for (int p = 0; p < kNumPercentiles; ++p) {
        size_t index = (static_cast<size_t>(d) * channels + k) *
                           kNumPercentiles +
                       static_cast<size_t>(p);
        double value = percentiles[static_cast<size_t>(p)];
        (*out)[index] =
            std::isnan(value) ? MissingValue() : static_cast<float>(value);
      }
    }
  }
}

int DailyPercentileExtractor::SourceChannel(int index, int window_days,
                                            int channels) const {
  (void)window_days;
  return (index / kNumPercentiles) % channels;
}

std::string DailyPercentileExtractor::FeatureName(
    int index, int window_days, const FeatureTensor& source) const {
  (void)window_days;
  int channels = source.num_channels();
  int percentile = index % kNumPercentiles;
  int channel = (index / kNumPercentiles) % channels;
  int day = index / (kNumPercentiles * channels);
  return source.ChannelName(channel) + "@d" + std::to_string(day) + "_p" +
         std::to_string(static_cast<int>(Levels()[percentile]));
}

}  // namespace hotspot::features
