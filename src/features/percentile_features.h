#ifndef HOTSPOT_FEATURES_PERCENTILE_FEATURES_H_
#define HOTSPOT_FEATURES_PERCENTILE_FEATURES_H_

#include "features/raw_features.h"

namespace hotspot::features {

/// RF-F1 (Sec. IV-D): w daily percentile summaries. For every day of the
/// window and every channel, the 5/25/50/75/95 percentiles of the 24
/// hourly samples — reducing each channel's day from 24 values to 5.
/// Output layout: index = (day·channels + channel)·5 + percentile.
class DailyPercentileExtractor : public FeatureExtractor {
 public:
  static constexpr int kNumPercentiles = 5;
  /// The percentile levels the paper uses.
  static const double* Levels();

  int OutputDim(int window_days, int channels) const override;
  void Extract(const Matrix<float>& window,
               std::vector<float>* out) const override;
  int SourceChannel(int index, int window_days, int channels) const override;
  std::string FeatureName(int index, int window_days,
                          const FeatureTensor& source) const override;
};

}  // namespace hotspot::features

#endif  // HOTSPOT_FEATURES_PERCENTILE_FEATURES_H_
