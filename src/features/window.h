#ifndef HOTSPOT_FEATURES_WINDOW_H_
#define HOTSPOT_FEATURES_WINDOW_H_

#include "features/feature_tensor.h"
#include "tensor/matrix.h"

namespace hotspot::features {

/// Extracts the input window of Eqs. 6/7 for one sector: the slice
/// X_{i, end_day−w : end_day, :} in days, i.e. hours
/// [24·(end_day−w), 24·end_day). Returns a (24·w) x channels matrix.
/// Requires 0 <= end_day−w and end_day <= num_days.
Matrix<float> ExtractWindow(const FeatureTensor& features, int sector,
                            int end_day, int window_days);

}  // namespace hotspot::features

#endif  // HOTSPOT_FEATURES_WINDOW_H_
