#ifndef HOTSPOT_FEATURES_FEATURE_TENSOR_H_
#define HOTSPOT_FEATURES_FEATURE_TENSOR_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/tensor3.h"

namespace hotspot::features {

/// Coarse feature groups of the assembled tensor, used by the Fig. 15/16
/// importance reports.
enum class FeatureGroup {
  kKpi,            ///< the l raw KPIs
  kCalendar,       ///< the 5 calendar columns of C
  kHourlyScore,    ///< S^h
  kDailyScore,     ///< up(S^d)
  kWeeklyScore,    ///< up(S^w)
  kDailyLabel,     ///< up(Y^d)
};

const char* FeatureGroupName(FeatureGroup group);

/// The paper's input tensor X (Eq. 5): KPIs ‖ calendar ‖ S^h ‖ up(S^d) ‖
/// up(S^w) ‖ up(Y^d), all at hourly resolution — size n x m_h x (l+5+3+1).
/// Holds per-channel names/groups so downstream reports can label
/// importances the way Sec. V-D does.
class FeatureTensor {
 public:
  /// Assembles X. `kpi_names` may be empty (generic names are used).
  static FeatureTensor Build(const Tensor3<float>& kpis,
                             const Matrix<float>& calendar,
                             const Matrix<float>& hourly_scores,
                             const Matrix<float>& daily_scores,
                             const Matrix<float>& weekly_scores,
                             const Matrix<float>& daily_labels,
                             const std::vector<std::string>& kpi_names = {});

  /// Wraps a tensor whose channel layout already matches Build()'s output
  /// (l KPIs ‖ 5 calendar ‖ S^h ‖ up(S^d) ‖ up(S^w) ‖ up(Y^d)) — the
  /// layout the incremental engine's finalized rows carry, which is how
  /// the adaptation controller turns captured serving-path rows back into
  /// a trainable tensor without the batch rebuild. Takes ownership of
  /// `tensor`; dim2 must equal num_kpis + 9.
  static FeatureTensor FromChannels(Tensor3<float> tensor, int num_kpis,
                                    const std::vector<std::string>& kpi_names =
                                        {});

  const Tensor3<float>& tensor() const { return tensor_; }
  int num_sectors() const { return tensor_.dim0(); }
  int num_hours() const { return tensor_.dim1(); }
  int num_channels() const { return tensor_.dim2(); }

  const std::string& ChannelName(int channel) const;
  FeatureGroup ChannelGroup(int channel) const;

 private:
  Tensor3<float> tensor_;
  std::vector<std::string> names_;
  std::vector<FeatureGroup> groups_;
};

}  // namespace hotspot::features

#endif  // HOTSPOT_FEATURES_FEATURE_TENSOR_H_
