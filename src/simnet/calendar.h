#ifndef HOTSPOT_SIMNET_CALENDAR_H_
#define HOTSPOT_SIMNET_CALENDAR_H_

#include <string>
#include <vector>

#include "tensor/matrix.h"

namespace hotspot::simnet {

/// A calendar date (proleptic Gregorian).
struct Date {
  int year = 2015;
  int month = 11;  ///< 1..12
  int day = 30;    ///< 1..31

  bool operator==(const Date&) const = default;
};

/// Returns `base` advanced by `days` (days >= 0).
Date AddDays(Date base, int days);

/// Day of week with Monday = 0 ... Sunday = 6.
int DayOfWeek(const Date& date);

/// "YYYY-MM-DD".
std::string FormatDate(const Date& date);

/// The study calendar: hourly timeline starting at `start_date` 00:00 and
/// spanning `weeks` whole weeks (the paper: Nov 30, 2015 + 18 weeks). Knows
/// weekends, public holidays, and commercially special "shopping days"
/// (used by the event generator for Fig. 1B-style peaks).
class StudyCalendar {
 public:
  /// `holiday_offsets` / `shopping_day_offsets` are day indices from
  /// `start_date`; pass `DefaultHolidays()` etc. for the paper period.
  StudyCalendar(Date start_date, int weeks, std::vector<int> holiday_offsets,
                std::vector<int> shopping_day_offsets);

  /// Calendar matching the paper's study period: Monday Nov 30, 2015,
  /// 18 weeks, Spanish-style December/January holidays and Easter 2016,
  /// with pre-Christmas Saturdays and first-Saturday sales as shopping days.
  static StudyCalendar Paper(int weeks = 18);

  int weeks() const { return weeks_; }
  int days() const { return weeks_ * 7; }
  int hours() const { return days() * 24; }
  Date start_date() const { return start_date_; }

  Date DateOfDay(int day) const;
  int HourOfDay(int hour_index) const { return hour_index % 24; }
  int DayOfHour(int hour_index) const { return hour_index / 24; }
  /// Monday = 0 ... Sunday = 6.
  int DayOfWeekOfDay(int day) const;
  bool IsWeekend(int day) const;
  bool IsHoliday(int day) const;
  bool IsShoppingDay(int day) const;

  /// The paper's enriched calendar matrix C (hours x 5): hour of day, day
  /// of week, day of month, weekend flag, holiday flag; columns 2-5 are
  /// brute-force upsampled to hourly resolution (Sec. II-B).
  Matrix<float> BuildCalendarMatrix() const;

  static std::vector<int> DefaultHolidays(const Date& start, int weeks);
  static std::vector<int> DefaultShoppingDays(const Date& start, int weeks);

 private:
  Date start_date_;
  int weeks_;
  std::vector<bool> holiday_;
  std::vector<bool> shopping_;
};

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_CALENDAR_H_
