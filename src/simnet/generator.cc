#include "simnet/generator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"

namespace hotspot::simnet {

double KpiValue(const KpiSpec& spec, double load, double failure,
                double degradation, double precursor, double noise_unit) {
  double value = spec.baseline + spec.load_coef * load +
                 spec.failure_coef * failure +
                 spec.degradation_coef * degradation +
                 spec.precursor_coef * precursor +
                 spec.noise_sigma * noise_unit;
  return std::clamp(value, spec.lo, spec.hi);
}

SyntheticNetwork GenerateNetwork(const GeneratorConfig& config) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("simnet/generate");
  HOTSPOT_CHECK_GT(config.weeks, 0);
  SyntheticNetwork network;
  network.catalog = KpiCatalog::Default();
  network.calendar = StudyCalendar::Paper(config.weeks);

  Rng root(config.seed);
  uint64_t topology_seed = root.NextUint64();
  uint64_t load_seed = root.NextUint64();
  uint64_t event_seed = root.NextUint64();
  uint64_t kpi_seed = root.NextUint64();
  uint64_t missing_seed = root.NextUint64();

  {
    HOTSPOT_SPAN("simnet/topology");
    network.topology = Topology::Generate(config.topology, topology_seed);
  }
  {
    HOTSPOT_SPAN("simnet/load");
    network.true_load = GenerateLoad(network.topology, network.calendar,
                                     config.load, load_seed,
                                     &network.traits);
  }
  {
    HOTSPOT_SPAN("simnet/events");
    EventTimelines events = GenerateEvents(
        network.topology, network.calendar, config.events, event_seed);
    network.true_failure = std::move(events.failure);
    network.true_degradation = std::move(events.degradation);
    network.true_precursor = std::move(events.precursor);
    network.failures = std::move(events.failures);
    network.ramps = std::move(events.ramps);
  }

  const int n = network.topology.num_sectors();
  const int hours = network.calendar.hours();
  const int l = network.catalog.size();
  network.kpis = Tensor3<float>(n, hours, l);

  // Chronic overload stresses equipment: apply each chronic sector's
  // persistent degradation floor before synthesizing KPIs.
  for (int i = 0; i < n; ++i) {
    double floor = network.traits[static_cast<size_t>(i)].chronic_degradation;
    if (floor <= 0.0) continue;
    for (int j = 0; j < hours; ++j) {
      float& cell = network.true_degradation.At(i, j);
      cell = std::max(cell, static_cast<float>(floor));
    }
  }

  {
    HOTSPOT_SPAN("simnet/kpi_synthesis");
    Rng kpi_rng(kpi_seed);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < hours; ++j) {
        double load = network.true_load.At(i, j);
        double failure = network.true_failure.At(i, j);
        double degradation = network.true_degradation.At(i, j);
        double precursor = network.true_precursor.At(i, j);
        float* slice = network.kpis.Slice(i, j);
        for (int k = 0; k < l; ++k) {
          slice[k] = static_cast<float>(KpiValue(
              network.catalog.spec(k), load, failure, degradation, precursor,
              kpi_rng.Gaussian()));
        }
      }
    }
  }

  network.calendar_matrix = network.calendar.BuildCalendarMatrix();

  if (config.inject_missing) {
    HOTSPOT_SPAN("simnet/inject_missing");
    network.missing_stats =
        InjectMissing(config.missing, missing_seed, &network.kpis);
  }

  if (ctx != nullptr) {
    ctx->metrics().counter("simnet/networks_generated").Increment();
    ctx->metrics().counter("simnet/kpi_cells").Add(
        static_cast<uint64_t>(network.kpis.size()));
    if (config.inject_missing) {
      ctx->metrics().counter("simnet/missing_cells").Add(
          static_cast<uint64_t>(network.missing_stats.missing_cells));
    }
  }
  return network;
}

}  // namespace hotspot::simnet
