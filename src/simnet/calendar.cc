#include "simnet/calendar.h"

#include <cstdio>

#include "util/logging.h"

namespace hotspot::simnet {

namespace {

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

}  // namespace

Date AddDays(Date base, int days) {
  HOTSPOT_CHECK_GE(days, 0);
  base.day += days;
  while (base.day > DaysInMonth(base.year, base.month)) {
    base.day -= DaysInMonth(base.year, base.month);
    ++base.month;
    if (base.month > 12) {
      base.month = 1;
      ++base.year;
    }
  }
  return base;
}

int DayOfWeek(const Date& date) {
  // Sakamoto's algorithm, shifted so Monday = 0.
  static const int kOffsets[] = {0, 3, 2, 5, 0, 3, 5, 1, 4, 6, 2, 4};
  int y = date.year;
  if (date.month < 3) --y;
  int sunday0 =
      (y + y / 4 - y / 100 + y / 400 + kOffsets[date.month - 1] + date.day) %
      7;
  return (sunday0 + 6) % 7;
}

std::string FormatDate(const Date& date) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", date.year,
                date.month, date.day);
  return buffer;
}

StudyCalendar::StudyCalendar(Date start_date, int weeks,
                             std::vector<int> holiday_offsets,
                             std::vector<int> shopping_day_offsets)
    : start_date_(start_date), weeks_(weeks) {
  HOTSPOT_CHECK_GT(weeks, 0);
  holiday_.assign(static_cast<size_t>(days()), false);
  shopping_.assign(static_cast<size_t>(days()), false);
  for (int offset : holiday_offsets) {
    if (offset >= 0 && offset < days()) {
      holiday_[static_cast<size_t>(offset)] = true;
    }
  }
  for (int offset : shopping_day_offsets) {
    if (offset >= 0 && offset < days()) {
      shopping_[static_cast<size_t>(offset)] = true;
    }
  }
}

StudyCalendar StudyCalendar::Paper(int weeks) {
  Date start{2015, 11, 30};
  return StudyCalendar(start, weeks, DefaultHolidays(start, weeks),
                       DefaultShoppingDays(start, weeks));
}

Date StudyCalendar::DateOfDay(int day) const {
  HOTSPOT_CHECK(day >= 0 && day < days());
  return AddDays(start_date_, day);
}

int StudyCalendar::DayOfWeekOfDay(int day) const {
  return (DayOfWeek(start_date_) + day) % 7;
}

bool StudyCalendar::IsWeekend(int day) const {
  int dow = DayOfWeekOfDay(day);
  return dow == 5 || dow == 6;
}

bool StudyCalendar::IsHoliday(int day) const {
  HOTSPOT_CHECK(day >= 0 && day < days());
  return holiday_[static_cast<size_t>(day)];
}

bool StudyCalendar::IsShoppingDay(int day) const {
  HOTSPOT_CHECK(day >= 0 && day < days());
  return shopping_[static_cast<size_t>(day)];
}

Matrix<float> StudyCalendar::BuildCalendarMatrix() const {
  Matrix<float> calendar(hours(), 5);
  for (int h = 0; h < hours(); ++h) {
    int day = DayOfHour(h);
    Date date = DateOfDay(day);
    calendar.At(h, 0) = static_cast<float>(HourOfDay(h));
    calendar.At(h, 1) = static_cast<float>(DayOfWeekOfDay(day));
    calendar.At(h, 2) = static_cast<float>(date.day);
    calendar.At(h, 3) = IsWeekend(day) ? 1.0f : 0.0f;
    calendar.At(h, 4) = IsHoliday(day) ? 1.0f : 0.0f;
  }
  return calendar;
}

namespace {

int OffsetOf(const Date& start, const Date& target) {
  // Linear scan is fine: the study period is a few hundred days.
  Date cursor = start;
  for (int offset = 0; offset < 400; ++offset) {
    if (cursor == target) return offset;
    cursor = AddDays(cursor, 1);
  }
  return -1;
}

}  // namespace

std::vector<int> StudyCalendar::DefaultHolidays(const Date& start,
                                                int weeks) {
  // Spanish national holidays falling inside Nov 30, 2015 - Apr 3, 2016,
  // matching the operator country flavor of the paper's data.
  const Date holidays[] = {
      {2015, 12, 8},  // Immaculate Conception
      {2015, 12, 25},  // Christmas
      {2015, 12, 26},  // St. Stephen's (regional)
      {2016, 1, 1},    // New Year
      {2016, 1, 6},    // Epiphany
      {2016, 3, 25},   // Good Friday
      {2016, 3, 28},   // Easter Monday
  };
  std::vector<int> offsets;
  for (const Date& holiday : holidays) {
    int offset = OffsetOf(start, holiday);
    if (offset >= 0 && offset < weeks * 7) offsets.push_back(offset);
  }
  return offsets;
}

std::vector<int> StudyCalendar::DefaultShoppingDays(const Date& start,
                                                    int weeks) {
  std::vector<int> offsets;
  // Pre-Christmas rush: Dec 19-23 and the January sales kick-off Jan 7-9.
  const Date rush[] = {{2015, 12, 19}, {2015, 12, 21}, {2015, 12, 22},
                       {2015, 12, 23}, {2016, 1, 7},   {2016, 1, 8},
                       {2016, 1, 9}};
  for (const Date& date : rush) {
    int offset = OffsetOf(start, date);
    if (offset >= 0 && offset < weeks * 7) offsets.push_back(offset);
  }
  // First Saturday of every month is a popular shopping day.
  Date cursor = start;
  for (int day = 0; day < weeks * 7; ++day) {
    if (cursor.day <= 7 && DayOfWeek(cursor) == 5) offsets.push_back(day);
    cursor = AddDays(cursor, 1);
  }
  return offsets;
}

}  // namespace hotspot::simnet
