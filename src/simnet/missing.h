#ifndef HOTSPOT_SIMNET_MISSING_H_
#define HOTSPOT_SIMNET_MISSING_H_

#include <vector>

#include "tensor/tensor3.h"
#include "util/rng.h"

namespace hotspot::simnet {

/// Missing-data injection parameters, mirroring the three granularities of
/// Sec. II-C: single (sector, hour, KPI) cells; whole-KPI slices for a
/// (sector, hour); and multi-hour outages of a sector across all KPIs
/// (site offline / congested backbone / probe malfunction).
struct MissingConfig {
  double cell_rate = 0.012;           ///< per-cell independent missingness
  double slice_rate = 0.004;          ///< per-(sector,hour) full-slice loss
  double outage_rate_per_sector_week = 0.05;  ///< Poisson outage arrivals
  double outage_mean_hours = 18.0;
  double outage_max_hours = 120.0;
  /// Fraction of sectors made mostly-dead for one week so the >50 %
  /// missing-per-week filter of Sec. II-C has something to discard.
  double dead_sector_fraction = 0.02;
};

/// Statistics of an injection pass (ground truth for tests).
struct MissingStats {
  long long missing_cells = 0;
  long long total_cells = 0;
  int dead_sectors = 0;

  double MissingFraction() const {
    return total_cells == 0
               ? 0.0
               : static_cast<double>(missing_cells) / total_cells;
  }
};

/// Replaces entries of `kpis` with NaN according to `config`.
/// Deterministic given `seed`.
MissingStats InjectMissing(const MissingConfig& config, uint64_t seed,
                           Tensor3<float>* kpis);

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_MISSING_H_
