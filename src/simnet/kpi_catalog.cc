#include "simnet/kpi_catalog.h"

#include "util/logging.h"

namespace hotspot::simnet {

const char* KpiClassName(KpiClass kpi_class) {
  switch (kpi_class) {
    case KpiClass::kCoverage:
      return "coverage";
    case KpiClass::kAccessibility:
      return "accessibility";
    case KpiClass::kRetainability:
      return "retainability";
    case KpiClass::kMobility:
      return "mobility";
    case KpiClass::kCongestion:
      return "congestion";
  }
  return "unknown";
}

KpiCatalog KpiCatalog::Default() {
  // Field order: name, class, baseline, load_coef, failure_coef,
  // degradation_coef, noise_sigma, lo, hi, higher_is_worse, Ω, ε.
  //
  // Calibration intent (latent load is ~0.1 at night, ~0.7-0.9 at a normal
  // sector's busy hour, >1.05 under overload; failure and degradation are
  // in [0, 1]): a KPI's threshold should NOT trip at a normal busy hour,
  // and SHOULD trip under overload, hardware failure, or persistent
  // degradation — so that the weighted score separates healthy and hot
  // sectors the way the operator formula of Eq. 1 intends.
  std::vector<KpiSpec> specs = {
      // 1-based k = 1..5: accessibility (channel establishment + HS alloc).
      {"rrc_setup_success_ratio", KpiClass::kAccessibility, 0.995, -0.05,
       -0.30, -0.10, 0.004, 0.0, 1.0, false, 1.5, 0.945},
      {"cs_call_setup_success_ratio", KpiClass::kAccessibility, 0.99, -0.05,
       -0.35, -0.12, 0.005, 0.0, 1.0, false, 1.5, 0.935},
      {"ps_session_setup_success_ratio", KpiClass::kAccessibility, 0.985,
       -0.06, -0.30, -0.15, 0.006, 0.0, 1.0, false, 1.5, 0.92},
      {"paging_success_ratio", KpiClass::kAccessibility, 0.99, -0.03, -0.25,
       -0.05, 0.004, 0.0, 1.0, false, 1.5, 0.945},
      {"hsdpa_allocation_success_ratio", KpiClass::kAccessibility, 0.97,
       -0.12, -0.20, -0.20, 0.01, 0.0, 1.0, false, 1.5, 0.85},
      // k = 6: noise rise (the interference KPI highlighted in Fig. 16).
      {"noise_rise_db", KpiClass::kCoverage, 2.0, 3.2, 6.0, 3.5, 0.35, 0.0,
       25.0, true, 1.0, 5.8},
      // k = 7: pilot pollution.
      {"pilot_pollution_ratio", KpiClass::kCoverage, 0.03, 0.02, 0.10, 0.06,
       0.008, 0.0, 1.0, true, 1.0, 0.09},
      // k = 8: data utilization rate (Fig. 15/16).
      {"data_utilization_rate", KpiClass::kCongestion, 0.15, 0.62, 0.10,
       0.30, 0.04, 0.0, 1.0, true, 2.0, 0.83},
      // k = 9: users queued for a high-speed channel (Fig. 15/16).
      {"hs_users_queued", KpiClass::kCongestion, 0.2, 5.0, 2.0, 4.0, 0.5,
       0.0, 60.0, true, 2.0, 5.6},
      // k = 10: channel setup failure (the signalling KPI of Fig. 16).
      {"channel_setup_failure_ratio", KpiClass::kAccessibility, 0.01, 0.05,
       0.30, 0.10, 0.006, 0.0, 1.0, true, 1.5, 0.065},
      // k = 11: CS drop ratio.
      {"cs_drop_ratio", KpiClass::kRetainability, 0.008, 0.02, 0.25, 0.05,
       0.004, 0.0, 1.0, true, 1.5, 0.033},
      // k = 12: absolute noise floor (Fig. 16).
      {"noise_floor_dbm", KpiClass::kCoverage, -103.0, 4.0, 9.0, 6.0, 0.8,
       -110.0, -70.0, true, 1.0, -95.0},
      // k = 13: PS drop ratio.
      {"ps_drop_ratio", KpiClass::kRetainability, 0.012, 0.03, 0.28, 0.10,
       0.005, 0.0, 1.0, true, 1.5, 0.05},
      // k = 14: transmission (TTI) occupancy (Fig. 15/16).
      {"tti_occupancy_ratio", KpiClass::kCongestion, 0.25, 0.55, 0.05, 0.25,
       0.03, 0.0, 1.0, true, 2.0, 0.86},
      // k = 15: HS drop ratio.
      {"hs_drop_ratio", KpiClass::kRetainability, 0.015, 0.04, 0.25, 0.12,
       0.006, 0.0, 1.0, true, 1.5, 0.062},
      // k = 16..17: mobility.
      {"soft_handover_success_ratio", KpiClass::kMobility, 0.975, -0.02,
       -0.30, -0.06, 0.005, 0.0, 1.0, false, 0.75, 0.935},
      {"irat_handover_success_ratio", KpiClass::kMobility, 0.94, -0.03,
       -0.25, -0.08, 0.01, 0.0, 1.0, false, 0.75, 0.885},
      // k = 18: PS data throughput (the data-based KPI of Fig. 1B).
      {"ps_data_throughput_mbps", KpiClass::kCongestion, 7.5, -4.5, -3.0,
       -3.0, 0.45, 0.05, 30.0, false, 2.0, 2.6},
      // k = 19: congestion ratio.
      {"congestion_ratio", KpiClass::kCongestion, 0.02, 0.28, 0.05, 0.25,
       0.02, 0.0, 1.0, true, 2.0, 0.33},
      // k = 20: transmit power utilization.
      {"tx_power_utilization", KpiClass::kCoverage, 0.45, 0.38, 0.10, 0.20,
       0.03, 0.0, 1.0, true, 1.0, 0.88},
      // k = 21: CS voice blocking (the voice-based KPI of Fig. 1A).
      {"cs_voice_blocking_ratio", KpiClass::kCongestion, 0.004, 0.045, 0.25,
       0.08, 0.004, 0.0, 1.0, true, 2.0, 0.055},
  };
  // Pre-failure precursors: interference and signalling indicators creep
  // up before a failure, below their scoring thresholds (Sec. V-D's
  // interference/signalling KPIs are exactly the informative ones for the
  // 'become a hot spot' task).
  specs[5].precursor_coef = 2.2;    // noise_rise_db (ε 5.8, baseline 2)
  specs[6].precursor_coef = 0.035;  // pilot_pollution_ratio (ε 0.09)
  specs[9].precursor_coef = 0.03;   // channel_setup_failure_ratio (ε 0.065)
  specs[11].precursor_coef = 4.5;   // noise_floor_dbm (ε -95, baseline -103)
  return KpiCatalog(std::move(specs));
}

const KpiSpec& KpiCatalog::spec(int k) const {
  HOTSPOT_CHECK(k >= 0 && k < size());
  return specs_[static_cast<size_t>(k)];
}

int KpiCatalog::IndexOf(const std::string& name) const {
  for (int k = 0; k < size(); ++k) {
    if (specs_[static_cast<size_t>(k)].name == name) return k;
  }
  return -1;
}

}  // namespace hotspot::simnet
