#include "simnet/missing.h"

#include <algorithm>
#include <cmath>

#include "tensor/matrix.h"
#include "tensor/temporal.h"
#include "util/logging.h"

namespace hotspot::simnet {

MissingStats InjectMissing(const MissingConfig& config, uint64_t seed,
                           Tensor3<float>* kpis) {
  HOTSPOT_CHECK(kpis != nullptr);
  const int n = kpis->dim0();
  const int hours = kpis->dim1();
  const int l = kpis->dim2();

  Rng root(seed);
  Rng cell_rng = root.Fork(1);
  Rng slice_rng = root.Fork(2);
  Rng outage_rng = root.Fork(3);
  Rng dead_rng = root.Fork(4);

  MissingStats stats;
  stats.total_cells =
      static_cast<long long>(n) * hours * l;

  // Level 1: independent single-cell losses.
  if (config.cell_rate > 0.0) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < hours; ++j) {
        float* slice = kpis->Slice(i, j);
        for (int k = 0; k < l; ++k) {
          if (cell_rng.Bernoulli(config.cell_rate)) {
            slice[k] = MissingValue();
          }
        }
      }
    }
  }

  // Level 2: whole-slice (sector, hour) losses.
  if (config.slice_rate > 0.0) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < hours; ++j) {
        if (!slice_rng.Bernoulli(config.slice_rate)) continue;
        float* slice = kpis->Slice(i, j);
        for (int k = 0; k < l; ++k) slice[k] = MissingValue();
      }
    }
  }

  // Level 3: multi-hour outages (all KPIs of a sector).
  const double weeks = static_cast<double>(hours) / kHoursPerWeek;
  for (int i = 0; i < n; ++i) {
    int count =
        outage_rng.Poisson(config.outage_rate_per_sector_week * weeks);
    for (int e = 0; e < count; ++e) {
      int start = static_cast<int>(outage_rng.UniformInt(0, hours - 1));
      double duration =
          outage_rng.Exponential(1.0 / config.outage_mean_hours);
      duration = std::min(duration, config.outage_max_hours);
      int end = std::min(hours, start + std::max(1, (int)duration));
      for (int j = start; j < end; ++j) {
        float* slice = kpis->Slice(i, j);
        for (int k = 0; k < l; ++k) slice[k] = MissingValue();
      }
    }
  }

  // Dead sectors: one entire week mostly missing (~70 %), to be discarded
  // by the sector filter.
  int weeks_int = hours / kHoursPerWeek;
  for (int i = 0; i < n; ++i) {
    if (!dead_rng.Bernoulli(config.dead_sector_fraction)) continue;
    ++stats.dead_sectors;
    if (weeks_int == 0) continue;
    int week = static_cast<int>(dead_rng.UniformInt(0, weeks_int - 1));
    for (int j = week * kHoursPerWeek; j < (week + 1) * kHoursPerWeek; ++j) {
      if (!dead_rng.Bernoulli(0.7)) continue;
      float* slice = kpis->Slice(i, j);
      for (int k = 0; k < l; ++k) slice[k] = MissingValue();
    }
  }

  // Count what actually went missing.
  stats.missing_cells = 0;
  for (float v : kpis->data()) {
    if (IsMissing(v)) ++stats.missing_cells;
  }
  return stats;
}

}  // namespace hotspot::simnet
