#ifndef HOTSPOT_SIMNET_TOPOLOGY_H_
#define HOTSPOT_SIMNET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace hotspot::simnet {

/// Land-use archetypes driving a sector's load profile. Archetypes are
/// assigned per *patch* (a small neighborhood of towers), and patches of
/// the same archetype are scattered across all cities — which is what makes
/// far-away sectors behave alike (Fig. 8C / the land-use argument in
/// Sec. III).
enum class Archetype {
  kResidential,
  kBusiness,    ///< busy Mon-Fri working hours
  kCommercial,  ///< busy Mon-Sat, shopping-day spikes, quiet Sundays
  kTransport,   ///< commute peaks
  kNightlife,   ///< busy Fri/Sat evenings
  kRural,
};

inline constexpr int kNumArchetypes = 6;

const char* ArchetypeName(Archetype archetype);

/// One antenna sector. Sectors of the same tower share coordinates
/// (distance 0 km, the leftmost bucket of Fig. 8).
struct Sector {
  int id = 0;
  int tower_id = 0;
  int patch_id = 0;
  int city_id = 0;
  double x_km = 0.0;
  double y_km = 0.0;
  double azimuth_deg = 0.0;
  Archetype archetype = Archetype::kResidential;
};

/// Parameters of the synthetic deployment.
struct TopologyConfig {
  int target_sectors = 600;
  int num_cities = 5;
  double country_size_km = 400.0;  ///< bounding box side
  double city_sigma_km = 6.0;      ///< spread of towers around a city center
  double patch_sigma_km = 0.15;    ///< spread of towers within a patch
  int min_towers_per_patch = 1;
  int max_towers_per_patch = 6;
  int sectors_per_tower = 3;
  double rural_fraction = 0.12;  ///< patches placed uniformly, not in cities
};

/// The generated deployment: sectors with coordinates and archetypes, plus
/// spatial query helpers.
class Topology {
 public:
  /// Generates a deployment with roughly `config.target_sectors` sectors
  /// (always a multiple of sectors_per_tower). Deterministic given `seed`.
  static Topology Generate(const TopologyConfig& config, uint64_t seed);

  /// Wraps an explicit sector list (e.g., loaded from a file). Sector ids
  /// must equal their position.
  static Topology FromSectors(std::vector<Sector> sectors);

  int num_sectors() const { return static_cast<int>(sectors_.size()); }
  const Sector& sector(int i) const;
  const std::vector<Sector>& sectors() const { return sectors_; }

  /// Euclidean distance between two sectors in km.
  double DistanceKm(int a, int b) const;

  /// Indices of the `count` sectors spatially closest to `i` (excluding i
  /// itself), ordered by increasing distance.
  std::vector<int> NearestSectors(int i, int count) const;

  /// Drops the listed sectors and renumbers ids contiguously (used by the
  /// sector-filtering step of Sec. II-C to keep topology and tensors in
  /// sync). `keep[i]` tells whether sector i survives.
  Topology Filtered(const std::vector<bool>& keep) const;

 private:
  std::vector<Sector> sectors_;
};

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_TOPOLOGY_H_
