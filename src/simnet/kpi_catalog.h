#ifndef HOTSPOT_SIMNET_KPI_CATALOG_H_
#define HOTSPOT_SIMNET_KPI_CATALOG_H_

#include <string>
#include <vector>

namespace hotspot::simnet {

/// The paper's five KPI classes (Sec. II-B).
enum class KpiClass {
  kCoverage,       ///< radio interference, noise, power characteristics
  kAccessibility,  ///< channel establishment, paging, HS allocation
  kRetainability,  ///< abnormally dropped channels
  kMobility,       ///< handover success ratios
  kCongestion,     ///< TTIs, queued users, congestion ratios, free channels
};

const char* KpiClassName(KpiClass kpi_class);

/// Static description of one key performance indicator: what it measures
/// and how the synthetic generator derives it from the latent sector state
/// (load, failure intensity, persistent degradation).
///
/// The generated value is
///   clamp(baseline + load_coef·load + failure_coef·failure
///         + degradation_coef·degradation + noise_sigma·N(0,1), lo, hi).
/// For "success ratio"-style KPIs the coefficients are negative and
/// `higher_is_worse` is false.
struct KpiSpec {
  std::string name;
  KpiClass kpi_class = KpiClass::kCoverage;
  double baseline = 0.0;
  double load_coef = 0.0;
  double failure_coef = 0.0;
  double degradation_coef = 0.0;
  double noise_sigma = 0.0;
  double lo = 0.0;  ///< physical lower clamp
  double hi = 1.0;  ///< physical upper clamp
  bool higher_is_worse = true;
  /// Operator scoring parameters (Eq. 1): indicator weight Ω_k and
  /// threshold ε_k, tripped in the KPI's bad direction.
  double score_weight = 1.0;
  double score_threshold = 0.5;
  /// Response to the pre-failure precursor latent (interference creeping
  /// up in the days before a hardware failure). Kept small enough that a
  /// precursor does NOT trip the score threshold — it is visible to
  /// feature-based forecasters only.
  double precursor_coef = 0.0;
};

/// Ordered collection of KPI specs. The default catalog has the paper's
/// l = 21 indicators arranged so that the 1-based feature indices quoted in
/// Sec. V-D line up: k=6 noise rise, k=8 data utilization rate, k=9 queued
/// HS users, k=10 channel setup failure, k=12 noise floor, k=14 TTI
/// occupancy.
class KpiCatalog {
 public:
  KpiCatalog() = default;
  explicit KpiCatalog(std::vector<KpiSpec> specs) : specs_(std::move(specs)) {}

  /// The default 21-KPI catalog described above.
  static KpiCatalog Default();

  int size() const { return static_cast<int>(specs_.size()); }
  const KpiSpec& spec(int k) const;
  const std::vector<KpiSpec>& specs() const { return specs_; }

  /// Index of the KPI with the given name; -1 when absent.
  int IndexOf(const std::string& name) const;

 private:
  std::vector<KpiSpec> specs_;
};

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_KPI_CATALOG_H_
