#ifndef HOTSPOT_SIMNET_EVENTS_H_
#define HOTSPOT_SIMNET_EVENTS_H_

#include <vector>

#include "simnet/calendar.h"
#include "simnet/topology.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::simnet {

/// A hardware failure affecting a whole tower (all its sectors), as in the
/// Fig. 8A discussion ("if there is a failure, it can affect all the
/// sectors of the site").
struct FailureEvent {
  int tower_id = 0;
  int start_hour = 0;
  int duration_hours = 0;
  double intensity = 0.0;  ///< peak failure level in [0, 1]
};

/// A slow capacity-exhaustion / degradation ramp that turns a previously
/// healthy sector into a *persistent* hot spot — the positives of the
/// "become a hot spot" task (Sec. IV-A).
struct DegradationRamp {
  int sector_id = 0;
  int start_hour = 0;
  int ramp_hours = 0;      ///< hours to reach the plateau
  double plateau = 0.0;    ///< degradation level reached, in [0, 1]
  int hold_hours = 0;      ///< hours at the plateau before recovery
  int recovery_hours = 0;  ///< hours to ramp back down (0 = permanent)
};

struct EventConfig {
  /// Expected hardware failures per tower per week.
  double failure_rate_per_tower_week = 0.05;
  double failure_mean_duration_hours = 30.0;
  double failure_max_duration_hours = 120.0;
  double failure_min_intensity = 0.45;
  double failure_max_intensity = 1.0;
  /// Fraction of sectors that experience one degradation ramp during the
  /// study (the "emerging hot spot" population).
  double emerging_fraction = 0.06;
  int emerging_min_ramp_hours = 72;
  int emerging_max_ramp_hours = 14 * 24;
  double emerging_min_plateau = 0.45;
  double emerging_max_plateau = 0.9;
  /// Probability that a ramp eventually recovers (otherwise permanent).
  double emerging_recovery_prob = 0.35;
  /// Hours of pre-failure precursor (interference creep) before each
  /// hardware failure; 0 disables precursors.
  int precursor_hours = 72;
};

/// The generated event timelines: per-sector hourly failure intensity and
/// degradation level, plus the ground-truth event lists.
struct EventTimelines {
  Matrix<float> failure;      ///< sectors x hours, in [0, 1]
  Matrix<float> degradation;  ///< sectors x hours, in [0, 1]
  /// Pre-failure precursor level, rising linearly to 1 at failure onset.
  Matrix<float> precursor;    ///< sectors x hours, in [0, 1]
  std::vector<FailureEvent> failures;
  std::vector<DegradationRamp> ramps;
};

/// Simulates failures and degradation ramps. Deterministic given `seed`.
EventTimelines GenerateEvents(const Topology& topology,
                              const StudyCalendar& calendar,
                              const EventConfig& config, uint64_t seed);

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_EVENTS_H_
