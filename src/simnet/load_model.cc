#include "simnet/load_model.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace hotspot::simnet {

namespace {

ArchetypeProfile MakeProfile(std::initializer_list<double> hourly,
                             std::initializer_list<double> weekday) {
  ArchetypeProfile profile;
  HOTSPOT_CHECK_EQ(hourly.size(), 24u);
  HOTSPOT_CHECK_EQ(weekday.size(), 7u);
  int index = 0;
  for (double v : hourly) profile.hourly[index++] = v;
  index = 0;
  for (double v : weekday) profile.weekday[index++] = v;
  return profile;
}

// Hour-of-day demand shapes. Index 0 = midnight. All shapes have a deep
// overnight trough (~8 sleeping hours), which is what produces the 16
// hours/day knee of Fig. 6A.
const ArchetypeProfile& ResidentialProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.12, 0.08, 0.06, 0.05, 0.05, 0.07, 0.20, 0.45, 0.58, 0.56, 0.55,
       0.58, 0.63, 0.61, 0.57, 0.57, 0.62, 0.70, 0.80, 0.90, 0.97, 1.00,
       0.85, 0.45},
      {1.0, 1.0, 1.0, 1.0, 1.02, 1.05, 1.05});
  return kProfile;
}

const ArchetypeProfile& BusinessProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.05, 0.04, 0.03, 0.03, 0.03, 0.05, 0.18, 0.55, 0.85, 0.96, 1.00,
       0.98, 0.88, 0.92, 0.97, 0.95, 0.92, 0.85, 0.70, 0.52, 0.35, 0.22,
       0.12, 0.07},
      {1.0, 1.0, 1.0, 1.0, 0.95, 0.18, 0.12});
  return kProfile;
}

const ArchetypeProfile& CommercialProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.06, 0.04, 0.03, 0.03, 0.03, 0.04, 0.08, 0.20, 0.45, 0.65, 0.80,
       0.88, 0.85, 0.75, 0.70, 0.78, 0.90, 1.00, 1.00, 0.90, 0.65, 0.35,
       0.18, 0.10},
      {0.85, 0.85, 0.88, 0.92, 1.05, 1.15, 0.15});
  return kProfile;
}

const ArchetypeProfile& TransportProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.08, 0.05, 0.04, 0.04, 0.06, 0.15, 0.45, 0.95, 1.00, 0.60, 0.45,
       0.45, 0.50, 0.50, 0.48, 0.50, 0.60, 0.90, 1.00, 0.80, 0.50, 0.35,
       0.25, 0.15},
      {1.0, 1.0, 1.0, 1.0, 1.05, 0.45, 0.35});
  return kProfile;
}

const ArchetypeProfile& NightlifeProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.85, 0.70, 0.50, 0.30, 0.15, 0.08, 0.06, 0.08, 0.12, 0.15, 0.18,
       0.25, 0.35, 0.35, 0.30, 0.30, 0.35, 0.45, 0.55, 0.65, 0.80, 0.95,
       1.00, 0.95},
      {0.35, 0.35, 0.40, 0.50, 0.90, 1.00, 0.55});
  return kProfile;
}

const ArchetypeProfile& RuralProfile() {
  static const ArchetypeProfile kProfile = MakeProfile(
      {0.05, 0.04, 0.03, 0.03, 0.04, 0.08, 0.15, 0.25, 0.30, 0.32, 0.33,
       0.35, 0.36, 0.34, 0.32, 0.32, 0.33, 0.35, 0.38, 0.40, 0.38, 0.30,
       0.18, 0.08},
      {1.0, 1.0, 1.0, 1.0, 1.0, 0.9, 0.85});
  return kProfile;
}

}  // namespace

const ArchetypeProfile& ProfileFor(Archetype archetype) {
  switch (archetype) {
    case Archetype::kResidential:
      return ResidentialProfile();
    case Archetype::kBusiness:
      return BusinessProfile();
    case Archetype::kCommercial:
      return CommercialProfile();
    case Archetype::kTransport:
      return TransportProfile();
    case Archetype::kNightlife:
      return NightlifeProfile();
    case Archetype::kRural:
      return RuralProfile();
  }
  return ResidentialProfile();
}

Matrix<float> GenerateLoad(const Topology& topology,
                           const StudyCalendar& calendar,
                           const LoadModelConfig& config, uint64_t seed,
                           std::vector<SectorTraits>* traits_out) {
  const int n = topology.num_sectors();
  const int hours = calendar.hours();
  const int days = calendar.days();
  Matrix<float> load(n, hours);

  Rng root(seed);
  Rng traits_rng = root.Fork(1);
  Rng shock_rng = root.Fork(2);
  Rng noise_rng = root.Fork(3);
  Rng sunday_rng = root.Fork(4);

  // Per-sector traits.
  std::vector<SectorTraits> traits(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    SectorTraits& trait = traits[static_cast<size_t>(i)];
    trait.scale = std::exp(traits_rng.Gaussian(0.0, config.scale_sigma));
    if (traits_rng.Bernoulli(config.chronic_fraction)) {
      trait.chronic =
          traits_rng.Uniform(config.chronic_min, config.chronic_max);
      trait.chronic_degradation =
          traits_rng.Uniform(config.chronic_degradation_min,
                             config.chronic_degradation_max);
      trait.chronic_hot = true;
    }
    trait.phase_hours = static_cast<int>(traits_rng.UniformInt(-1, 1));
  }

  // Shared per-(patch, day) demand shocks: nearby sectors move together,
  // which creates the short-range correlations of Fig. 8A.
  int max_patch = 0;
  for (const Sector& sector : topology.sectors()) {
    max_patch = std::max(max_patch, sector.patch_id);
  }
  Matrix<float> patch_shock(max_patch + 1, days);
  for (int p = 0; p <= max_patch; ++p) {
    for (int d = 0; d < days; ++d) {
      patch_shock.At(p, d) = static_cast<float>(
          std::exp(shock_rng.Gaussian(0.0, config.patch_shock_sigma)));
    }
  }

  // Commercial sectors occasionally open on a Sunday (the 7x+6 pattern of
  // Fig. 7B): decided per (sector, week).
  const int weeks = calendar.weeks();

  for (int i = 0; i < n; ++i) {
    const Sector& sector = topology.sector(i);
    const SectorTraits& trait = traits[static_cast<size_t>(i)];
    const ArchetypeProfile& profile = ProfileFor(sector.archetype);

    std::vector<bool> sunday_open(static_cast<size_t>(weeks), false);
    if (sector.archetype == Archetype::kCommercial) {
      for (int w = 0; w < weeks; ++w) {
        sunday_open[static_cast<size_t>(w)] =
            sunday_rng.Bernoulli(config.sunday_open_prob);
      }
    }

    double ar_state = 0.0;
    for (int j = 0; j < hours; ++j) {
      int day = calendar.DayOfHour(j);
      int hour_of_day = calendar.HourOfDay(j);
      int dow = calendar.DayOfWeekOfDay(day);
      int week = day / 7;

      double weekday_mult = profile.weekday[dow];
      if (sector.archetype == Archetype::kCommercial && dow == 6 &&
          sunday_open[static_cast<size_t>(week)]) {
        weekday_mult = 0.95;
      }
      if (calendar.IsHoliday(day)) {
        switch (sector.archetype) {
          case Archetype::kBusiness:
          case Archetype::kTransport:
            weekday_mult *= config.holiday_business_drop;
            break;
          case Archetype::kResidential:
          case Archetype::kNightlife:
            weekday_mult *= config.holiday_residential_boost;
            break;
          case Archetype::kCommercial:
          case Archetype::kRural:
            break;
        }
      }
      double shopping_mult = 1.0;
      if (calendar.IsShoppingDay(day) &&
          sector.archetype == Archetype::kCommercial) {
        // Afternoon-weighted boost: the Fig. 1B "popular shopping day"
        // peak appears in the afternoon.
        double afternoon =
            hour_of_day >= 15 && hour_of_day <= 20 ? 1.25 : 1.0;
        shopping_mult = config.shopping_boost * afternoon;
      }

      int profile_hour = ((hour_of_day + trait.phase_hours) % 24 + 24) % 24;
      double base = trait.scale * trait.chronic * weekday_mult *
                    profile.hourly[profile_hour] *
                    patch_shock.At(sector.patch_id, day) * shopping_mult;

      ar_state = config.ar_rho * ar_state +
                 noise_rng.Gaussian(0.0, config.ar_sigma);
      double value = base + ar_state;
      load.At(i, j) = static_cast<float>(std::max(0.0, value));
    }
  }

  if (traits_out != nullptr) *traits_out = std::move(traits);
  return load;
}

}  // namespace hotspot::simnet
