#ifndef HOTSPOT_SIMNET_LOAD_MODEL_H_
#define HOTSPOT_SIMNET_LOAD_MODEL_H_

#include <vector>

#include "simnet/calendar.h"
#include "simnet/topology.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hotspot::simnet {

/// Per-sector latent traits drawn at generation time; exposed as ground
/// truth for tests and for the dynamics analyses.
struct SectorTraits {
  double scale = 1.0;       ///< lognormal per-sector demand scale
  double chronic = 1.0;     ///< >1 for chronically overloaded sectors
  /// Persistent equipment stress of chronically overloaded sectors
  /// (interference, drops); applied as a degradation floor by the
  /// generator so chronic sectors trip non-congestion KPIs too.
  double chronic_degradation = 0.0;
  int phase_hours = 0;      ///< small shift of the diurnal profile
  bool chronic_hot = false; ///< scale*chronic makes it hot most weeks
};

/// Tuning knobs of the latent demand process.
struct LoadModelConfig {
  double scale_sigma = 0.22;        ///< σ of log-normal sector scale
  double chronic_fraction = 0.08;   ///< chronically overloaded sectors
  double chronic_min = 1.3;
  double chronic_max = 2.0;
  double chronic_degradation_min = 0.3;
  double chronic_degradation_max = 0.6;
  double ar_rho = 0.8;              ///< AR(1) persistence of hourly noise
  double ar_sigma = 0.065;          ///< AR(1) innovation σ
  double patch_shock_sigma = 0.12;  ///< per-(patch, day) shared log-shock
  double sunday_open_prob = 0.12;   ///< commercial sector opens a Sunday
  double shopping_boost = 1.4;      ///< load multiplier on shopping days
  double holiday_residential_boost = 1.15;
  double holiday_business_drop = 0.3;  ///< business load factor on holidays
};

/// 24-hour base profile (0..23, local time) of one archetype plus its
/// day-of-week multipliers (Mon..Sun).
struct ArchetypeProfile {
  double hourly[24] = {};
  double weekday[7] = {};
};

/// The base profile table used by the generator; exposed for tests and for
/// documentation of the synthetic workload.
const ArchetypeProfile& ProfileFor(Archetype archetype);

/// Generates the latent hourly demand ("load") of every sector:
/// a (sectors x hours) matrix where a typical sector peaks around 0.7-0.9
/// at its busiest hour, chronically overloaded sectors exceed 1.0, and the
/// night trough sits near 0.05-0.15. Deterministic given `seed`.
///
/// The process per sector i and hour j (day d, hour-of-day h):
///   load = scale_i * chronic_i * weekday_mult(archetype, d)
///          * hourly_profile(archetype, h + phase_i)
///          * patch_shock(patch_i, d) * shopping/holiday adjustments
///          + AR1_noise(i, j),  clamped at 0.
///
/// If `traits_out` is non-null it receives the per-sector traits.
Matrix<float> GenerateLoad(const Topology& topology,
                           const StudyCalendar& calendar,
                           const LoadModelConfig& config, uint64_t seed,
                           std::vector<SectorTraits>* traits_out = nullptr);

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_LOAD_MODEL_H_
