#include "simnet/topology.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hotspot::simnet {

const char* ArchetypeName(Archetype archetype) {
  switch (archetype) {
    case Archetype::kResidential:
      return "residential";
    case Archetype::kBusiness:
      return "business";
    case Archetype::kCommercial:
      return "commercial";
    case Archetype::kTransport:
      return "transport";
    case Archetype::kNightlife:
      return "nightlife";
    case Archetype::kRural:
      return "rural";
  }
  return "unknown";
}

Topology Topology::Generate(const TopologyConfig& config, uint64_t seed) {
  HOTSPOT_CHECK_GT(config.target_sectors, 0);
  HOTSPOT_CHECK_GT(config.num_cities, 0);
  HOTSPOT_CHECK_GE(config.max_towers_per_patch, config.min_towers_per_patch);
  HOTSPOT_CHECK_GT(config.sectors_per_tower, 0);

  Rng rng(seed);
  Topology topology;

  // City centers, uniform over the bounding box with a margin.
  struct City {
    double x, y;
  };
  std::vector<City> cities;
  for (int c = 0; c < config.num_cities; ++c) {
    cities.push_back({rng.Uniform(0.1, 0.9) * config.country_size_km,
                      rng.Uniform(0.1, 0.9) * config.country_size_km});
  }

  // Archetype frequencies: urban patches mostly residential / business /
  // commercial; the rural archetype is used only for rural patches.
  const Archetype kUrbanArchetypes[] = {
      Archetype::kResidential, Archetype::kResidential,
      Archetype::kBusiness,    Archetype::kBusiness,
      Archetype::kBusiness,    Archetype::kCommercial,
      Archetype::kCommercial,  Archetype::kTransport,
      Archetype::kNightlife,
  };
  constexpr int kNumUrban = static_cast<int>(std::size(kUrbanArchetypes));

  int tower_id = 0;
  int patch_id = 0;
  int sector_id = 0;
  while (sector_id < config.target_sectors) {
    bool rural = rng.Bernoulli(config.rural_fraction);
    double patch_x, patch_y;
    int city_id;
    Archetype archetype;
    if (rural) {
      patch_x = rng.Uniform(0.0, config.country_size_km);
      patch_y = rng.Uniform(0.0, config.country_size_km);
      city_id = -1;
      archetype = Archetype::kRural;
    } else {
      city_id = static_cast<int>(
          rng.UniformInt(0, static_cast<int64_t>(cities.size()) - 1));
      const City& city = cities[static_cast<size_t>(city_id)];
      patch_x = city.x + rng.Gaussian(0.0, config.city_sigma_km);
      patch_y = city.y + rng.Gaussian(0.0, config.city_sigma_km);
      archetype = kUrbanArchetypes[rng.UniformInt(0, kNumUrban - 1)];
    }
    int towers = static_cast<int>(rng.UniformInt(
        config.min_towers_per_patch, config.max_towers_per_patch));
    for (int t = 0; t < towers && sector_id < config.target_sectors; ++t) {
      double tower_x = patch_x + rng.Gaussian(0.0, config.patch_sigma_km);
      double tower_y = patch_y + rng.Gaussian(0.0, config.patch_sigma_km);
      for (int s = 0;
           s < config.sectors_per_tower && sector_id < config.target_sectors;
           ++s) {
        Sector sector;
        sector.id = sector_id++;
        sector.tower_id = tower_id;
        sector.patch_id = patch_id;
        sector.city_id = city_id;
        sector.x_km = tower_x;
        sector.y_km = tower_y;
        sector.azimuth_deg = 360.0 * s / config.sectors_per_tower;
        sector.archetype = archetype;
        topology.sectors_.push_back(sector);
      }
      ++tower_id;
    }
    ++patch_id;
  }
  return topology;
}

Topology Topology::FromSectors(std::vector<Sector> sectors) {
  for (size_t i = 0; i < sectors.size(); ++i) {
    HOTSPOT_CHECK_EQ(sectors[i].id, static_cast<int>(i));
  }
  Topology topology;
  topology.sectors_ = std::move(sectors);
  return topology;
}

const Sector& Topology::sector(int i) const {
  HOTSPOT_CHECK(i >= 0 && i < num_sectors());
  return sectors_[static_cast<size_t>(i)];
}

double Topology::DistanceKm(int a, int b) const {
  const Sector& sa = sector(a);
  const Sector& sb = sector(b);
  double dx = sa.x_km - sb.x_km;
  double dy = sa.y_km - sb.y_km;
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<int> Topology::NearestSectors(int i, int count) const {
  HOTSPOT_CHECK(i >= 0 && i < num_sectors());
  std::vector<int> others;
  others.reserve(static_cast<size_t>(num_sectors()) - 1);
  for (int j = 0; j < num_sectors(); ++j) {
    if (j != i) others.push_back(j);
  }
  int k = std::min<int>(count, static_cast<int>(others.size()));
  std::partial_sort(others.begin(), others.begin() + k, others.end(),
                    [&](int a, int b) {
                      return DistanceKm(i, a) < DistanceKm(i, b);
                    });
  others.resize(static_cast<size_t>(k));
  return others;
}

Topology Topology::Filtered(const std::vector<bool>& keep) const {
  HOTSPOT_CHECK_EQ(static_cast<int>(keep.size()), num_sectors());
  Topology filtered;
  int next_id = 0;
  for (int i = 0; i < num_sectors(); ++i) {
    if (!keep[static_cast<size_t>(i)]) continue;
    Sector sector = sectors_[static_cast<size_t>(i)];
    sector.id = next_id++;
    filtered.sectors_.push_back(sector);
  }
  return filtered;
}

}  // namespace hotspot::simnet
