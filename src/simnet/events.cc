#include "simnet/events.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace hotspot::simnet {

EventTimelines GenerateEvents(const Topology& topology,
                              const StudyCalendar& calendar,
                              const EventConfig& config, uint64_t seed) {
  const int n = topology.num_sectors();
  const int hours = calendar.hours();
  EventTimelines timelines;
  timelines.failure = Matrix<float>(n, hours, 0.0f);
  timelines.degradation = Matrix<float>(n, hours, 0.0f);
  timelines.precursor = Matrix<float>(n, hours, 0.0f);

  Rng root(seed);
  Rng failure_rng = root.Fork(1);
  Rng ramp_rng = root.Fork(2);

  // Group sectors by tower so a failure hits the whole site.
  int max_tower = 0;
  for (const Sector& sector : topology.sectors()) {
    max_tower = std::max(max_tower, sector.tower_id);
  }
  std::vector<std::vector<int>> tower_sectors(
      static_cast<size_t>(max_tower) + 1);
  for (const Sector& sector : topology.sectors()) {
    tower_sectors[static_cast<size_t>(sector.tower_id)].push_back(sector.id);
  }

  // Hardware failures: Poisson arrivals per tower.
  const double weeks = static_cast<double>(calendar.weeks());
  for (int tower = 0; tower <= max_tower; ++tower) {
    if (tower_sectors[static_cast<size_t>(tower)].empty()) continue;
    int count =
        failure_rng.Poisson(config.failure_rate_per_tower_week * weeks);
    for (int e = 0; e < count; ++e) {
      FailureEvent event;
      event.tower_id = tower;
      event.start_hour = static_cast<int>(
          failure_rng.UniformInt(0, hours - 1));
      double duration =
          failure_rng.Exponential(1.0 / config.failure_mean_duration_hours);
      duration = std::min(duration, config.failure_max_duration_hours);
      event.duration_hours = std::max(1, static_cast<int>(duration));
      event.intensity = failure_rng.Uniform(config.failure_min_intensity,
                                            config.failure_max_intensity);
      timelines.failures.push_back(event);

      int end_hour = std::min(hours, event.start_hour + event.duration_hours);
      // Interference creeps up during the precursor window before onset.
      if (config.precursor_hours > 0) {
        int pre_start = std::max(0, event.start_hour - config.precursor_hours);
        for (int sector_id : tower_sectors[static_cast<size_t>(tower)]) {
          for (int j = pre_start; j < event.start_hour && j < hours; ++j) {
            float level = static_cast<float>(
                1.0 - static_cast<double>(event.start_hour - j) /
                          config.precursor_hours);
            float& cell = timelines.precursor.At(sector_id, j);
            cell = std::max(cell, level);
          }
        }
      }
      for (int sector_id : tower_sectors[static_cast<size_t>(tower)]) {
        // Each sector of the site feels the failure with a slightly
        // different severity.
        double local =
            event.intensity * failure_rng.Uniform(0.75, 1.0);
        for (int j = event.start_hour; j < end_hour; ++j) {
          float& cell = timelines.failure.At(sector_id, j);
          cell = std::max(cell, static_cast<float>(local));
        }
      }
    }
  }

  // Emerging degradation ramps.
  for (int i = 0; i < n; ++i) {
    if (!ramp_rng.Bernoulli(config.emerging_fraction)) continue;
    DegradationRamp ramp;
    ramp.sector_id = i;
    // Leave room for the ramp to be (partially) observable.
    ramp.start_hour = static_cast<int>(
        ramp_rng.UniformInt(hours / 8, hours - hours / 8));
    ramp.ramp_hours = static_cast<int>(ramp_rng.UniformInt(
        config.emerging_min_ramp_hours, config.emerging_max_ramp_hours));
    ramp.plateau = ramp_rng.Uniform(config.emerging_min_plateau,
                                    config.emerging_max_plateau);
    if (ramp_rng.Bernoulli(config.emerging_recovery_prob)) {
      ramp.hold_hours = static_cast<int>(ramp_rng.UniformInt(7 * 24, 28 * 24));
      ramp.recovery_hours = static_cast<int>(ramp_rng.UniformInt(24, 7 * 24));
    }
    timelines.ramps.push_back(ramp);

    for (int j = ramp.start_hour; j < hours; ++j) {
      int since = j - ramp.start_hour;
      double level;
      if (since < ramp.ramp_hours) {
        level = ramp.plateau * since / ramp.ramp_hours;
      } else if (ramp.recovery_hours == 0 ||
                 since < ramp.ramp_hours + ramp.hold_hours) {
        level = ramp.plateau;
      } else {
        int into_recovery = since - ramp.ramp_hours - ramp.hold_hours;
        if (into_recovery >= ramp.recovery_hours) {
          level = 0.0;
        } else {
          level = ramp.plateau *
                  (1.0 - static_cast<double>(into_recovery) /
                             ramp.recovery_hours);
        }
      }
      float& cell = timelines.degradation.At(i, j);
      cell = std::max(cell, static_cast<float>(level));
    }
  }

  return timelines;
}

}  // namespace hotspot::simnet
