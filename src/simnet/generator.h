#ifndef HOTSPOT_SIMNET_GENERATOR_H_
#define HOTSPOT_SIMNET_GENERATOR_H_

#include <vector>

#include "simnet/calendar.h"
#include "simnet/events.h"
#include "simnet/kpi_catalog.h"
#include "simnet/load_model.h"
#include "simnet/missing.h"
#include "simnet/topology.h"
#include "tensor/tensor3.h"

namespace hotspot::simnet {

/// All knobs of the synthetic data set in one place.
struct GeneratorConfig {
  TopologyConfig topology;
  LoadModelConfig load;
  EventConfig events;
  MissingConfig missing;
  int weeks = 18;  ///< the paper's m_w
  bool inject_missing = true;
  uint64_t seed = 20170418;  ///< default: the paper's arXiv date
};

/// The generated network: everything the paper's pipeline consumes (the
/// KPI tensor K and calendar matrix C) plus the ground-truth latents that
/// only tests and sanity benches may look at.
struct SyntheticNetwork {
  KpiCatalog catalog;
  StudyCalendar calendar = StudyCalendar::Paper(1);
  Topology topology;
  /// K: sectors x hours x KPIs, with NaN for missing values.
  Tensor3<float> kpis;
  /// C: hours x 5 (Sec. II-B).
  Matrix<float> calendar_matrix;

  // --- Ground truth (not visible to the forecasting pipeline) ---
  Matrix<float> true_load;         ///< sectors x hours
  Matrix<float> true_failure;      ///< sectors x hours
  Matrix<float> true_degradation;  ///< sectors x hours
  Matrix<float> true_precursor;    ///< sectors x hours
  std::vector<SectorTraits> traits;
  std::vector<FailureEvent> failures;
  std::vector<DegradationRamp> ramps;
  MissingStats missing_stats;

  int num_sectors() const { return kpis.dim0(); }
  int num_hours() const { return kpis.dim1(); }
  int num_kpis() const { return kpis.dim2(); }
};

/// Generates a complete synthetic data set. Deterministic given
/// `config.seed`.
SyntheticNetwork GenerateNetwork(const GeneratorConfig& config);

/// Computes the KPI value for given latents — the single place where the
/// KPI response model lives. Exposed for tests.
double KpiValue(const KpiSpec& spec, double load, double failure,
                double degradation, double precursor, double noise_unit);

}  // namespace hotspot::simnet

#endif  // HOTSPOT_SIMNET_GENERATOR_H_
