#ifndef HOTSPOT_UTIL_STOPWATCH_H_
#define HOTSPOT_UTIL_STOPWATCH_H_

#include <chrono>

namespace hotspot {

/// Minimal wall-clock stopwatch for coarse timing in benches and examples.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hotspot

#endif  // HOTSPOT_UTIL_STOPWATCH_H_
