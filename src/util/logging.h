#ifndef HOTSPOT_UTIL_LOGGING_H_
#define HOTSPOT_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace hotspot {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Collects one log statement and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process after emitting the message; used by HOTSPOT_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is actually printed. Returns the previous
/// threshold. Thread-compatible (intended for test setup / main()).
LogLevel SetMinLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel MinLogLevel();

/// Returns a short human-readable name ("INFO", ...) for a severity.
const char* LogLevelName(LogLevel level);

}  // namespace hotspot

#define HOTSPOT_LOG(level)                                                  \
  ::hotspot::internal_logging::LogMessage(::hotspot::LogLevel::k##level,    \
                                          __FILE__, __LINE__)               \
      .stream()

/// CHECK-style assertion: always on (also in release builds); aborts with a
/// message on failure. Use for programmer errors and API contract violations.
#define HOTSPOT_CHECK(condition)                                            \
  if (condition) {                                                          \
  } else /* NOLINT */                                                       \
    ::hotspot::internal_logging::FatalMessage(__FILE__, __LINE__,           \
                                              #condition)                   \
        .stream()

#define HOTSPOT_CHECK_EQ(a, b) HOTSPOT_CHECK((a) == (b))
#define HOTSPOT_CHECK_NE(a, b) HOTSPOT_CHECK((a) != (b))
#define HOTSPOT_CHECK_LT(a, b) HOTSPOT_CHECK((a) < (b))
#define HOTSPOT_CHECK_LE(a, b) HOTSPOT_CHECK((a) <= (b))
#define HOTSPOT_CHECK_GT(a, b) HOTSPOT_CHECK((a) > (b))
#define HOTSPOT_CHECK_GE(a, b) HOTSPOT_CHECK((a) >= (b))

#endif  // HOTSPOT_UTIL_LOGGING_H_
