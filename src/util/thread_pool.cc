#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace hotspot::util {

namespace {

thread_local bool tls_in_parallel_region = false;

/// Shared state of one ParallelFor call. Workers pull chunks from `next`
/// until the range is exhausted; the first exception wins and drains the
/// remaining chunks.
struct Region {
  std::atomic<int64_t> next{0};
  int64_t end = 0;
  int64_t chunk = 1;
  const std::function<void(int64_t)>* body = nullptr;

  std::mutex mutex;
  std::condition_variable helpers_done;
  int pending_helpers = 0;
  std::exception_ptr error;

  void Run() {
    bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    for (;;) {
      int64_t start = next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) break;
      int64_t stop = std::min(start + chunk, end);
      try {
        for (int64_t i = start; i < stop; ++i) (*body)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        // Abandon the rest of the range so all threads wind down fast.
        next.store(end, std::memory_order_relaxed);
        break;
      }
    }
    tls_in_parallel_region = was_in_region;
  }
};

}  // namespace

int NumThreads() {
  if (const char* env = std::getenv("HOTSPOT_NUM_THREADS")) {
    char* parse_end = nullptr;
    long parsed = std::strtol(env, &parse_end, 10);
    if (parse_end != env && *parse_end == '\0' && parsed >= 1) {
      return static_cast<int>(
          std::min<long>(parsed, static_cast<long>(kMaxThreads)));
    }
  }
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) return 1;
  return static_cast<int>(std::min<unsigned>(hardware, kMaxThreads));
}

bool InParallelRegion() { return tls_in_parallel_region; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool();  // leaked: outlives all users
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, kMaxThreads);
  std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body, int num_threads) {
  if (end <= begin) return;
  int64_t count = end - begin;
  int threads = num_threads > 0 ? std::min(num_threads, kMaxThreads)
                                : NumThreads();
  if (count < threads) threads = static_cast<int>(count);

  // Serial path: exact inline execution, no pool, natural exception flow.
  // Nested parallel constructs also land here.
  if (threads <= 1 || tls_in_parallel_region) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto region = std::make_shared<Region>();
  region->next.store(begin, std::memory_order_relaxed);
  region->end = end;
  region->chunk = std::max<int64_t>(1, count / (4 * threads));
  region->body = &body;
  region->pending_helpers = threads - 1;

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(threads - 1);
  for (int t = 0; t < threads - 1; ++t) {
    pool.Submit([region] {
      region->Run();
      std::lock_guard<std::mutex> lock(region->mutex);
      if (--region->pending_helpers == 0) region->helpers_done.notify_all();
    });
  }

  region->Run();  // the caller takes its share of chunks

  std::unique_lock<std::mutex> lock(region->mutex);
  region->helpers_done.wait(lock,
                            [&] { return region->pending_helpers == 0; });
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace hotspot::util
