#ifndef HOTSPOT_UTIL_THREAD_POOL_H_
#define HOTSPOT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hotspot::util {

/// Upper bound on pool workers; HOTSPOT_NUM_THREADS is clamped to it.
inline constexpr int kMaxThreads = 256;

/// The degree of parallelism the parallel helpers use by default: the
/// HOTSPOT_NUM_THREADS environment variable when set to a positive integer
/// (clamped to kMaxThreads), otherwise std::thread::hardware_concurrency().
/// A value of 1 means "run the exact serial code path" — ParallelFor then
/// executes the body inline on the calling thread and never touches the
/// pool. Re-read on every call so tests can toggle the variable.
int NumThreads();

/// A persistent task pool shared by every parallel site in the library.
/// Workers are started lazily and the set only grows (up to kMaxThreads);
/// the process-wide instance lives until exit. Thread-safe.
class ThreadPool {
 public:
  /// The process-wide pool used by ParallelFor / ParallelMap.
  static ThreadPool& Global();

  ThreadPool() = default;
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Ensures at least `count` workers exist (clamped to kMaxThreads).
  void EnsureWorkers(int count);

  int num_workers() const;

  /// Enqueues one task for any worker to run.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

/// True while the calling thread is executing the body of a parallel
/// construct; nested ParallelFor / ParallelMap calls then run serially
/// (which both avoids deadlock and keeps scheduling simple).
bool InParallelRegion();

/// Runs body(i) for every i in [begin, end), distributing contiguous
/// chunks over `num_threads` threads (0 = NumThreads()). The caller
/// participates, so progress never depends on pool availability.
///
/// Determinism contract: the body must write only to state owned by index
/// i (rows, slots, tree t, ...). Under that contract the result is
/// bitwise-identical to the serial loop at every thread count, because
/// each index runs exactly once and no cross-index accumulation happens
/// inside the parallel region. Reductions must be expressed as
/// ParallelMap + an ordered serial combine.
///
/// If any body invocation throws, the first exception (one arbitrary
/// winner) is rethrown on the calling thread exactly once after all
/// workers have drained; remaining chunks are abandoned.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body,
                 int num_threads = 0);

/// Ordered parallel map: returns {fn(begin), ..., fn(end-1)} with results
/// in index order regardless of execution order. T must be default
/// constructible and movable. Combine the returned vector serially to get
/// a deterministic reduction.
template <typename T, typename Fn>
std::vector<T> ParallelMap(int64_t begin, int64_t end, Fn&& fn,
                           int num_threads = 0) {
  std::vector<T> results(static_cast<size_t>(end > begin ? end - begin : 0));
  ParallelFor(
      begin, end,
      [&](int64_t i) { results[static_cast<size_t>(i - begin)] = fn(i); },
      num_threads);
  return results;
}

}  // namespace hotspot::util

#endif  // HOTSPOT_UTIL_THREAD_POOL_H_
