#ifndef HOTSPOT_UTIL_RNG_H_
#define HOTSPOT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hotspot {

/// Deterministic pseudo-random number generator (xoshiro256++ seeded via
/// SplitMix64). Used everywhere instead of <random> engines so that results
/// are bit-for-bit reproducible across standard libraries and platforms.
///
/// Not cryptographically secure; statistical quality is more than sufficient
/// for simulation and randomized ML.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a standard normal variate (Box-Muller, cached pair).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns an exponential variate with the given rate (rate > 0).
  double Exponential(double rate);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a Poisson variate with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int Poisson(double mean);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in increasing stream order
  /// (reservoir-free partial Fisher-Yates). Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator; `stream` distinguishes children
  /// derived from the same parent state.
  Rng Fork(uint64_t stream);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hotspot

#endif  // HOTSPOT_UTIL_RNG_H_
