#include "util/csv.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace hotspot {

CsvWriter::CsvWriter(std::ostream* out, char separator)
    : out_(out), separator_(separator) {
  HOTSPOT_CHECK(out != nullptr);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << separator_;
    *out_ << Escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_written_;
}

void CsvWriter::WriteNumericRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(FormatNumber(v));
  WriteRow(fields);
}

std::string CsvWriter::Escape(const std::string& field) const {
  bool needs_quotes =
      field.find(separator_) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos;
  if (!needs_quotes) return field;
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string FormatNumber(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  HOTSPOT_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddNumericRow(const std::vector<double>& values, int digits) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(FormatNumber(v, digits));
  AddRow(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string result = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  result += rule + "\n";
  for (const auto& row : rows_) result += render_row(row);
  return result;
}

}  // namespace hotspot
