#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace hotspot {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HOTSPOT_CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = NextUint64();
  while (value >= limit) value = NextUint64();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double rate) {
  HOTSPOT_CHECK_GT(rate, 0.0);
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int Rng::Poisson(double mean) {
  HOTSPOT_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction, clamped at zero.
    double value = Gaussian(mean, std::sqrt(mean));
    return value < 0.0 ? 0 : static_cast<int>(value + 0.5);
  }
  double threshold = std::exp(-mean);
  int count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= UniformDouble();
  } while (product > threshold);
  return count;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  HOTSPOT_CHECK_GE(k, 0);
  HOTSPOT_CHECK_LE(k, n);
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  for (int i = 0; i < k; ++i) {
    int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
  }
  pool.resize(static_cast<size_t>(k));
  return pool;
}

Rng Rng::Fork(uint64_t stream) {
  return Rng(NextUint64() ^ (stream * 0xd1342543de82ef95ull + 1));
}

}  // namespace hotspot
