#ifndef HOTSPOT_UTIL_CSV_H_
#define HOTSPOT_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace hotspot {

/// Streams rows of comma-separated values to an std::ostream. Values are
/// quoted only when they contain separators, quotes or newlines. Used by the
/// benchmark harness to dump series the paper's figures plot.
class CsvWriter {
 public:
  /// The writer does not own `out`; it must outlive the writer.
  explicit CsvWriter(std::ostream* out, char separator = ',');

  /// Writes a header or data row. Each call emits one line.
  void WriteRow(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  void WriteNumericRow(const std::vector<double>& values);

  /// Number of rows written so far (including headers).
  int rows_written() const { return rows_written_; }

 private:
  std::string Escape(const std::string& field) const;

  std::ostream* out_;
  char separator_;
  int rows_written_ = 0;
};

/// Formats `value` with `digits` significant digits (no trailing garbage),
/// suitable for table output.
std::string FormatNumber(double value, int digits = 6);

/// Renders an aligned text table (monospace) with a header row; used by the
/// benches to print paper-style tables to stdout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void AddNumericRow(const std::vector<double>& values, int digits = 4);

  /// Renders the table with column alignment.
  std::string ToString() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hotspot

#endif  // HOTSPOT_UTIL_CSV_H_
