#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hotspot {

namespace {
LogLevel g_min_level = LogLevel::kInfo;
}  // namespace

LogLevel SetMinLogLevel(LogLevel level) {
  LogLevel previous = g_min_level;
  g_min_level = level;
  return previous;
}

LogLevel MinLogLevel() { return g_min_level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace hotspot
