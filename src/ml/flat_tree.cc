#include "ml/flat_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "util/logging.h"

namespace hotspot::ml {

namespace flat_detail {

void TraverseBlockScalar(const FlatView& view, const float* rows, int n,
                         int stride, double* acc) {
  for (int r = 0; r < n; ++r) {
    const float* row = rows + static_cast<int64_t>(r) * stride;
    for (int32_t t = 0; t < view.num_trees; ++t) {
      int32_t node = view.roots[t];
      while (view.feature[node] >= 0) {
        const float value = row[view.feature[node]];
        const bool go_left = std::isnan(value)
                                 ? view.miss_left[node] != 0
                                 : value <= view.threshold[node];
        node = go_left ? view.left[node] : view.right[node];
      }
      acc[r] += view.leaf_value[node];
    }
  }
}

void TraverseQuantBlockScalar(const FlatView& view, const int32_t* bins,
                              int n, int stride, double* acc) {
  for (int r = 0; r < n; ++r) {
    const int32_t* row = bins + static_cast<int64_t>(r) * stride;
    for (int32_t t = 0; t < view.num_trees; ++t) {
      int32_t node = view.roots[t];
      while (view.feature[node] >= 0) {
        const int32_t bin = row[view.quant_slot[node]];
        node = bin <= view.quant_threshold[node] ? view.left[node]
                                                 : view.right[node];
      }
      acc[r] += view.leaf_value[node];
    }
  }
}

}  // namespace flat_detail

namespace {

/// Exact replica of FeatureBinner::Bin over a copied cut vector: bin 0 for
/// NaN, otherwise the least b with value <= cuts[b], plus one.
int32_t BinValue(const std::vector<float>& cuts, float value) {
  if (std::isnan(value)) return 0;
  int lo = 0;
  int hi = static_cast<int>(cuts.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (value <= cuts[static_cast<size_t>(mid)]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo + 1;
}

}  // namespace

bool FlatForest::SimdCompiled() { return flat_detail::Avx2Compiled(); }

bool FlatForest::SimdSupported() {
#if defined(__x86_64__) || defined(__i386__)
  return flat_detail::Avx2Compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

FlatKernel FlatForest::ChooseKernel() {
  if (const char* env = std::getenv("HOTSPOT_FLAT_KERNEL")) {
    const std::string_view value(env);
    if (value == "scalar") return FlatKernel::kScalar;
    // Any other value (including "avx2") falls through to the supported
    // default — an explicit avx2 request on a non-AVX2 host degrades to
    // scalar rather than failing, and the scores are identical either way.
  }
  return SimdSupported() ? FlatKernel::kAvx2 : FlatKernel::kScalar;
}

FlatForest FlatForest::Compile(const BinaryClassifier& model) {
  if (const auto* gbdt = dynamic_cast<const Gbdt*>(&model)) {
    return Compile(*gbdt);
  }
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return Compile(*forest);
  }
  if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    return Compile(*tree);
  }
  HOTSPOT_CHECK(false) << "FlatForest: classifier type is not compilable";
  return FlatForest{};
}

void FlatForest::AppendTree(const DecisionTree& tree, FlatForest* out) {
  HOTSPOT_CHECK(!tree.nodes_.empty()) << "FlatForest: tree is untrained";
  const int32_t base = static_cast<int32_t>(out->feature_.size());
  out->roots_.push_back(base);
  const auto grow = [out](size_t n) {
    const size_t size = out->feature_.size() + n;
    out->feature_.resize(size);
    out->threshold_.resize(size);
    out->miss_left_.resize(size);
    out->left_.resize(size);
    out->right_.resize(size);
    out->leaf_value_.resize(size);
  };
  // Level-order copy with sibling pairs allocated adjacently, establishing
  // the right == left + 1 invariant the AVX2 kernel relies on. work[w] maps
  // a source node index to its already-allocated flat slot.
  std::vector<std::pair<int32_t, int32_t>> work;
  work.reserve(tree.nodes_.size());
  work.emplace_back(0, base);
  grow(1);
  for (size_t w = 0; w < work.size(); ++w) {
    const auto [src, dst] = work[w];
    const size_t slot = static_cast<size_t>(dst);
    const auto& node = tree.nodes_[static_cast<size_t>(src)];
    const bool leaf = node.feature < 0;
    const int32_t child = static_cast<int32_t>(out->feature_.size());
    if (!leaf) {
      grow(2);
      work.emplace_back(node.left, child);
      work.emplace_back(node.right, child + 1);
    }
    out->feature_[slot] = leaf ? -1 : node.feature;
    out->threshold_[slot] = leaf ? 0.0f : node.threshold;
    // DecisionTree routes every missing value left.
    out->miss_left_[slot] = leaf ? 0 : -1;
    out->left_[slot] = leaf ? 0 : child;
    out->right_[slot] = leaf ? 0 : child + 1;
    out->leaf_value_[slot] = static_cast<double>(node.prob);
  }
}

FlatForest FlatForest::Compile(const DecisionTree& tree) {
  FlatForest out;
  out.agg_ = Aggregation::kSingleTree;
  out.num_features_ = tree.num_features_;
  AppendTree(tree, &out);
  out.RebuildPacked();
  return out;
}

FlatForest FlatForest::Compile(const RandomForest& forest) {
  HOTSPOT_CHECK(!forest.trees_.empty()) << "FlatForest: forest is untrained";
  FlatForest out;
  out.agg_ = Aggregation::kForestMean;
  out.num_features_ = forest.num_features_;
  for (const auto& tree : forest.trees_) AppendTree(*tree, &out);
  out.RebuildPacked();
  return out;
}

FlatForest FlatForest::Compile(const Gbdt& model) {
  HOTSPOT_CHECK(!model.trees_.empty()) << "FlatForest: Gbdt is untrained";
  FlatForest out;
  out.agg_ = Aggregation::kGbdtSigmoid;
  out.num_features_ = model.num_features_;
  out.base_score_ = model.base_score_;

  // Quantized-variant slots: only features that actually appear in a split
  // get pre-binned per row block.
  std::vector<int32_t> slot_of(static_cast<size_t>(model.num_features_), -1);
  for (const auto& tree : model.trees_) {
    for (const auto& node : tree.nodes) {
      if (node.feature >= 0) slot_of[static_cast<size_t>(node.feature)] = 0;
    }
  }
  for (int f = 0; f < model.num_features_; ++f) {
    if (slot_of[static_cast<size_t>(f)] < 0) continue;
    slot_of[static_cast<size_t>(f)] =
        static_cast<int32_t>(out.used_features_.size());
    out.used_features_.push_back(f);
    out.cuts_.push_back(model.binner_.Thresholds(f));
  }

  const auto grow = [&out](size_t n) {
    const size_t size = out.feature_.size() + n;
    out.feature_.resize(size);
    out.threshold_.resize(size);
    out.miss_left_.resize(size);
    out.left_.resize(size);
    out.right_.resize(size);
    out.leaf_value_.resize(size);
    out.quant_threshold_.resize(size);
    out.quant_slot_.resize(size);
  };
  for (const auto& tree : model.trees_) {
    const int32_t base = static_cast<int32_t>(out.feature_.size());
    out.roots_.push_back(base);
    // Same level-order, adjacent-sibling layout as AppendTree (see the
    // right == left + 1 invariant there).
    std::vector<std::pair<int32_t, int32_t>> work;
    work.reserve(tree.nodes.size());
    work.emplace_back(0, base);
    grow(1);
    for (size_t w = 0; w < work.size(); ++w) {
      const auto [src, dst] = work[w];
      const size_t slot = static_cast<size_t>(dst);
      const auto& node = tree.nodes[static_cast<size_t>(src)];
      const bool leaf = node.feature < 0;
      const int32_t child = static_cast<int32_t>(out.feature_.size());
      if (!leaf) {
        grow(2);
        work.emplace_back(node.left, child);
        work.emplace_back(node.right, child + 1);
      }
      out.feature_[slot] = leaf ? -1 : node.feature;
      out.left_[slot] = leaf ? 0 : child;
      out.right_[slot] = leaf ? 0 : child + 1;
      out.leaf_value_[slot] = node.value;
      out.quant_threshold_[slot] =
          leaf ? 0 : static_cast<int32_t>(node.bin_threshold);
      out.quant_slot_[slot] =
          leaf ? 0 : slot_of[static_cast<size_t>(node.feature)];
      if (leaf) {
        out.threshold_[slot] = 0.0f;
        out.miss_left_[slot] = 0;
        continue;
      }
      // Exact bin-space -> value-space split conversion. The scalar path
      // goes left when Bin(f, v) <= bt with Bin(v) = least b such that
      // v <= cuts[b], plus one (0 for NaN), so for cuts sorted ascending:
      //   bt <  0           : nothing goes left (NaN threshold, miss right)
      //   bt == 0           : only NaN goes left (bin 0 is the miss bin)
      //   1 <= bt <= #cuts  : NaN and v <= cuts[bt-1] go left
      //   bt >  #cuts       : everything goes left (+inf threshold)
      const std::vector<float>& cuts =
          model.binner_.Thresholds(node.feature);
      const int bt = node.bin_threshold;
      if (bt < 0) {
        out.threshold_[slot] = std::numeric_limits<float>::quiet_NaN();
        out.miss_left_[slot] = 0;
      } else if (bt == 0) {
        out.threshold_[slot] = std::numeric_limits<float>::quiet_NaN();
        out.miss_left_[slot] = -1;
      } else if (bt <= static_cast<int>(cuts.size())) {
        out.threshold_[slot] = cuts[static_cast<size_t>(bt - 1)];
        out.miss_left_[slot] = -1;
      } else {
        out.threshold_[slot] = std::numeric_limits<float>::infinity();
        out.miss_left_[slot] = -1;
      }
    }
  }
  out.quantized_ = true;
  out.RebuildPacked();
  return out;
}

void FlatForest::RebuildPacked() {
  packed_.resize(feature_.size());
  for (size_t i = 0; i < feature_.size(); ++i) {
    packed_[i] = feature_[i] < 0
                     ? -1
                     : (feature_[i] << 1) | (miss_left_[i] != 0 ? 1 : 0);
  }
}

flat_detail::FlatView FlatForest::View() const {
  flat_detail::FlatView view;
  view.feature = feature_.data();
  view.threshold = threshold_.data();
  view.miss_left = miss_left_.data();
  view.left = left_.data();
  view.right = right_.data();
  view.packed = packed_.data();
  view.leaf_value = leaf_value_.data();
  view.roots = roots_.data();
  view.num_trees = static_cast<int32_t>(roots_.size());
  view.num_nodes = static_cast<int32_t>(feature_.size());
  // Tree spans from consecutive roots; compiled layouts are always
  // contiguous in root order, but a hand-built forest might not be — then
  // the register-resident AVX-512 path is simply ineligible.
  int32_t max_tree_nodes = 0;
  bool contiguous = !roots_.empty() && roots_.front() == 0;
  for (size_t t = 0; contiguous && t < roots_.size(); ++t) {
    const int32_t end =
        t + 1 < roots_.size() ? roots_[t + 1] : view.num_nodes;
    if (end <= roots_[t]) {
      contiguous = false;
      break;
    }
    max_tree_nodes = std::max(max_tree_nodes, end - roots_[t]);
  }
  view.max_tree_nodes =
      contiguous ? max_tree_nodes : std::numeric_limits<int32_t>::max();
  if (quantized_) {
    view.quant_threshold = quant_threshold_.data();
    view.quant_slot = quant_slot_.data();
  }
  return view;
}

double FlatForest::Aggregate(double acc) const {
  switch (agg_) {
    case Aggregation::kSingleTree:
      return acc;
    case Aggregation::kForestMean:
      return acc / static_cast<double>(num_trees());
    case Aggregation::kGbdtSigmoid:
      return Sigmoid(acc);
  }
  HOTSPOT_CHECK(false) << "FlatForest: invalid aggregation";
  return acc;
}

void FlatForest::BinBlock(const float* rows, int n, int stride,
                          int32_t* bins) const {
  const int used = static_cast<int>(used_features_.size());
  for (int r = 0; r < n; ++r) {
    const float* row = rows + static_cast<int64_t>(r) * stride;
    int32_t* out = bins + static_cast<int64_t>(r) * used;
    for (int s = 0; s < used; ++s) {
      out[s] = BinValue(cuts_[static_cast<size_t>(s)],
                        row[used_features_[static_cast<size_t>(s)]]);
    }
  }
}

void FlatForest::PredictBatch(const float* rows, int num_rows, int stride,
                              double* out, FlatKernel kernel,
                              FlatVariant variant) const {
  HOTSPOT_CHECK(!empty()) << "FlatForest::PredictBatch before Compile";
  if (num_rows <= 0) return;
  HOTSPOT_CHECK(rows != nullptr);
  HOTSPOT_CHECK(out != nullptr);
  HOTSPOT_CHECK_GE(stride, num_features_);
  bool quant = false;
  switch (variant) {
    case FlatVariant::kAuto:
      // The float variant is the serving default even for Gbdt-compiled
      // forests: it reads raw feature values directly, while the quantized
      // variant must re-bin every row block first.
      quant = false;
      break;
    case FlatVariant::kFloat:
      quant = false;
      break;
    case FlatVariant::kQuantized:
      HOTSPOT_CHECK(quantized_)
          << "FlatForest: quantized variant needs a Gbdt-compiled forest";
      quant = true;
      break;
  }
  // Graceful runtime fallback: the kernels are bitwise interchangeable.
  if (kernel == FlatKernel::kAvx2 && !SimdSupported()) {
    kernel = FlatKernel::kScalar;
  }
  const flat_detail::FlatView view = View();
  const int used = static_cast<int>(used_features_.size());
  std::vector<int32_t> bins;
  if (quant) {
    bins.resize(static_cast<size_t>(flat_detail::kBlockRows) *
                static_cast<size_t>(std::max(used, 1)));
  }
  // The float vector kernel takes double-width (16-row) blocks when the
  // AVX-512 upgrade is live; partial blocks step down to 8-row vector
  // blocks and then to the scalar kernel. Every decomposition yields
  // identical scores — out[i] depends only on row i.
  const int simd_rows = (kernel == FlatKernel::kAvx2 && !quant)
                            ? flat_detail::SimdBlockRows()
                            : flat_detail::kBlockRows;
  double acc[2 * flat_detail::kBlockRows];
  for (int begin = 0; begin < num_rows;) {
    int n = std::min(simd_rows, num_rows - begin);
    if (kernel == FlatKernel::kAvx2 && n < simd_rows &&
        n > flat_detail::kBlockRows) {
      n = flat_detail::kBlockRows;
    }
    for (int r = 0; r < n; ++r) acc[r] = base_score_;
    const float* block = rows + static_cast<int64_t>(begin) * stride;
    const bool vector =
        kernel == FlatKernel::kAvx2 &&
        (n == simd_rows || n == flat_detail::kBlockRows);
    if (quant) {
      BinBlock(block, n, stride, bins.data());
      if (vector) {
        flat_detail::TraverseQuantBlockAvx2(view, bins.data(), n, used, acc);
      } else {
        flat_detail::TraverseQuantBlockScalar(view, bins.data(), n, used,
                                              acc);
      }
    } else {
      if (vector) {
        flat_detail::TraverseBlockAvx2(view, block, n, stride, acc);
      } else {
        flat_detail::TraverseBlockScalar(view, block, n, stride, acc);
      }
    }
    for (int r = 0; r < n; ++r) out[begin + r] = Aggregate(acc[r]);
    begin += n;
  }
}

double FlatForest::PredictOne(const float* row) const {
  double out = 0.0;
  PredictBatch(row, 1, num_features_, &out);
  return out;
}

}  // namespace hotspot::ml
