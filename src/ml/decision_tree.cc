#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/logging.h"

namespace hotspot::ml {

namespace {

/// Weighted Gini impurity of a (positive weight, total weight) node.
double Gini(double positive_weight, double total_weight) {
  if (total_weight <= 0.0) return 0.0;
  double p = positive_weight / total_weight;
  return 2.0 * p * (1.0 - p);
}

struct SplitCandidate {
  int feature = -1;
  float threshold = 0.0f;
  double impurity_decrease = 0.0;
  bool valid = false;
};

}  // namespace

DecisionTree::DecisionTree(const TreeConfig& config) : config_(config) {
  HOTSPOT_CHECK(config.max_features_fraction > 0.0 &&
                config.max_features_fraction <= 1.0);
  HOTSPOT_CHECK_GE(config.min_weight_fraction, 0.0);
}

void DecisionTree::Fit(const Dataset& data) {
  data.CheckConsistent();
  HOTSPOT_CHECK_GT(data.num_instances(), 0);
  HOTSPOT_CHECK(nodes_.empty());  // Fit once.

  num_features_ = data.num_features();
  importances_.assign(static_cast<size_t>(num_features_), 0.0);
  total_weight_ = 0.0;
  for (double w : data.weights) {
    HOTSPOT_CHECK_GT(w, 0.0);
    total_weight_ += w;
  }

  std::vector<int> instances(static_cast<size_t>(data.num_instances()));
  for (int i = 0; i < data.num_instances(); ++i) {
    instances[static_cast<size_t>(i)] = i;
  }
  Rng rng(config_.seed);
  BuildNode(data, instances, 0, data.num_instances(), 0, &rng);

  // Normalize importances.
  double sum = 0.0;
  for (double imp : importances_) sum += imp;
  if (sum > 0.0) {
    for (double& imp : importances_) imp /= sum;
  }
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<int>& instances,
                            int begin, int end, int depth, Rng* rng) {
  depth_ = std::max(depth_, depth);
  double node_weight = 0.0;
  double positive_weight = 0.0;
  for (int pos = begin; pos < end; ++pos) {
    int i = instances[static_cast<size_t>(pos)];
    node_weight += data.weights[static_cast<size_t>(i)];
    if (data.labels[static_cast<size_t>(i)] != 0.0f) {
      positive_weight += data.weights[static_cast<size_t>(i)];
    }
  }

  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_index)].prob =
      node_weight > 0.0 ? static_cast<float>(positive_weight / node_weight)
                        : 0.0f;

  // Stopping criteria: purity, weight threshold, depth.
  double node_impurity = Gini(positive_weight, node_weight);
  bool can_split =
      node_impurity > 0.0 &&
      node_weight >= config_.min_weight_fraction * total_weight_ &&
      (config_.max_depth == 0 || depth < config_.max_depth) &&
      end - begin >= 2;
  if (!can_split) return node_index;

  // Random feature subset for this partition.
  int subset_size;
  if (config_.max_features_sqrt) {
    subset_size = static_cast<int>(
        std::floor(std::sqrt(static_cast<double>(num_features_))));
  } else {
    subset_size = static_cast<int>(
        std::ceil(config_.max_features_fraction * num_features_));
  }
  subset_size = std::clamp(subset_size, 1, num_features_);
  std::vector<int> candidate_features =
      rng->SampleWithoutReplacement(num_features_, subset_size);

  // Find the best split over the candidate features.
  SplitCandidate best;
  std::vector<std::pair<float, int>> sorted;  // (value, instance)
  for (int feature : candidate_features) {
    sorted.clear();
    double missing_weight = 0.0;
    double missing_positive = 0.0;
    for (int pos = begin; pos < end; ++pos) {
      int i = instances[static_cast<size_t>(pos)];
      float value = data.features.At(i, feature);
      if (IsMissing(value)) {
        // NaN is routed left; treat it as -inf for split search.
        missing_weight += data.weights[static_cast<size_t>(i)];
        if (data.labels[static_cast<size_t>(i)] != 0.0f) {
          missing_positive += data.weights[static_cast<size_t>(i)];
        }
        continue;
      }
      sorted.emplace_back(value, i);
    }
    if (sorted.size() < 2 && missing_weight == 0.0) continue;
    std::sort(sorted.begin(), sorted.end());

    double left_weight = missing_weight;
    double left_positive = missing_positive;
    for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      int i = sorted[pos].second;
      left_weight += data.weights[static_cast<size_t>(i)];
      if (data.labels[static_cast<size_t>(i)] != 0.0f) {
        left_positive += data.weights[static_cast<size_t>(i)];
      }
      // Can only split between distinct feature values.
      if (sorted[pos].first == sorted[pos + 1].first) continue;
      double right_weight = node_weight - left_weight;
      double right_positive = positive_weight - left_positive;
      if (left_weight <= 0.0 || right_weight <= 0.0) continue;
      // min-weight constraint on children.
      double min_child = config_.min_weight_fraction * total_weight_ * 0.5;
      if (left_weight < min_child || right_weight < min_child) continue;
      double decrease =
          node_impurity -
          (left_weight / node_weight) * Gini(left_positive, left_weight) -
          (right_weight / node_weight) * Gini(right_positive, right_weight);
      if (decrease > best.impurity_decrease) {
        best.feature = feature;
        // Midpoint threshold, like scikit-learn. For adjacent floats the
        // midpoint can round up to the right value, which would leave the
        // right child empty — fall back to the left value in that case
        // (the partition test is `value <= threshold`).
        float lo_value = sorted[pos].first;
        float hi_value = sorted[pos + 1].first;
        float threshold = 0.5f * (lo_value + hi_value);
        if (!(threshold < hi_value)) threshold = lo_value;
        best.threshold = threshold;
        best.impurity_decrease = decrease;
        best.valid = true;
      }
    }
  }
  if (!best.valid) return node_index;

  importances_[static_cast<size_t>(best.feature)] +=
      (node_weight / total_weight_) * best.impurity_decrease;

  // Partition instances in place: left = value <= threshold or missing.
  int mid = begin;
  for (int pos = begin; pos < end; ++pos) {
    int i = instances[static_cast<size_t>(pos)];
    float value = data.features.At(i, best.feature);
    if (IsMissing(value) || value <= best.threshold) {
      std::swap(instances[static_cast<size_t>(pos)],
                instances[static_cast<size_t>(mid)]);
      ++mid;
    }
  }
  HOTSPOT_CHECK(mid > begin && mid < end);

  nodes_[static_cast<size_t>(node_index)].feature = best.feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best.threshold;
  int left = BuildNode(data, instances, begin, mid, depth + 1, rng);
  nodes_[static_cast<size_t>(node_index)].left = left;
  int right = BuildNode(data, instances, mid, end, depth + 1, rng);
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

double DecisionTree::PredictProba(const float* row) const {
  HOTSPOT_CHECK(!nodes_.empty());
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const Node& current = nodes_[static_cast<size_t>(node)];
    float value = row[current.feature];
    node = (IsMissing(value) || value <= current.threshold) ? current.left
                                                            : current.right;
  }
  return nodes_[static_cast<size_t>(node)].prob;
}

std::vector<double> DecisionTree::FeatureImportances() const {
  return importances_;
}

int DecisionTree::SplitFeatureAt(int split_index) const {
  // Breadth-first walk over internal nodes.
  std::deque<int> queue;
  if (!nodes_.empty()) queue.push_back(0);
  int seen = 0;
  while (!queue.empty()) {
    int node = queue.front();
    queue.pop_front();
    const Node& current = nodes_[static_cast<size_t>(node)];
    if (current.feature < 0) continue;
    if (seen == split_index) return current.feature;
    ++seen;
    queue.push_back(current.left);
    queue.push_back(current.right);
  }
  return -1;
}

}  // namespace hotspot::ml
