// AVX2 flat-tree traversal kernels. This translation unit is the only one
// compiled with -mavx2 (and only when the HOTSPOT_SIMD CMake option is ON
// and the compiler accepts the flag); everything else in the library stays
// portable. Callers must gate on FlatForest::SimdSupported() — the CPUID
// check — before dispatching here; without AVX2 the stubs below forward to
// the scalar kernels, which are bitwise identical.
#include "ml/flat_tree.h"

#include "util/logging.h"

#if defined(HOTSPOT_SIMD_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

// GCC expands the no-source-operand gather intrinsics with an undefined
// accumulator register, which -Wmaybe-uninitialized flags inside the
// intrinsic headers themselves; silence that one diagnostic here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace hotspot::ml::flat_detail {

#if defined(HOTSPOT_SIMD_AVX2) && defined(__AVX2__)

// The AVX-512 upgrade rides along in this TU via per-function target
// attributes (the TU itself stays -mavx2, so no AVX-512 instruction can
// leak into the AVX2 paths); it is gated at runtime on AVX-512F.
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#define HOTSPOT_FLAT_AVX512 1
#endif

bool Avx2Compiled() { return true; }

namespace {

/// Adds the gathered leaf values (f64) for the 8 lanes of `node` into the
/// two 4-lane accumulators.
inline void AccumulateLeaves(const double* leaf_value, __m256i node,
                             __m256d* acc_lo, __m256d* acc_hi) {
  const __m128i node_lo = _mm256_castsi256_si128(node);
  const __m128i node_hi = _mm256_extracti128_si256(node, 1);
  *acc_lo = _mm256_add_pd(*acc_lo,
                          _mm256_i32gather_pd(leaf_value, node_lo, 8));
  *acc_hi = _mm256_add_pd(*acc_hi,
                          _mm256_i32gather_pd(leaf_value, node_hi, 8));
}

/// One traversal level for 8 row lanes of one tree. `packed` is the
/// already-gathered packed word for `node` ((feature << 1) | miss_bit,
/// -1 at leaves) and `active` its leaf mask; returns the next node vector
/// (inactive lanes keep their leaf). Three gathers per level — packed is
/// gathered by the caller so two trees' loads can issue back to back.
inline __m256i AdvanceLevel(const FlatView& view, const float* rows,
                            __m256i lane_offset, __m256i node, __m256i packed,
                            __m256i active) {
  // feature = packed >> 1 (arithmetic, so leaf lanes stay -1); clamp leaf
  // lanes to feature 0 so the masked gather address is always in-bounds —
  // those lanes are masked off anyway.
  const __m256i safe_feat = _mm256_max_epi32(_mm256_srai_epi32(packed, 1),
                                             _mm256_setzero_si256());
  const __m256i value_index = _mm256_add_epi32(lane_offset, safe_feat);
  const __m256 value = _mm256_mask_i32gather_ps(
      _mm256_setzero_ps(), rows, value_index, _mm256_castsi256_ps(active), 4);
  const __m256 threshold = _mm256_i32gather_ps(view.threshold, node, 4);
  const __m256i left = _mm256_i32gather_epi32(view.left, node, 4);
  // miss_left as an all-ones mask: broadcast bit 0 of packed through the
  // sign position.
  const __m256i miss =
      _mm256_srai_epi32(_mm256_slli_epi32(packed, 31), 31);
  // go_left = (v <= threshold) | (isnan(v) & miss_left) — the same
  // decision as the scalar kernel; LE_OQ is false for NaN operands
  // exactly like the scalar comparison.
  const __m256 is_nan = _mm256_cmp_ps(value, value, _CMP_UNORD_Q);
  const __m256 le = _mm256_cmp_ps(value, threshold, _CMP_LE_OQ);
  const __m256 go_left =
      _mm256_or_ps(le, _mm256_and_ps(is_nan, _mm256_castsi256_ps(miss)));
  // Adjacent-sibling layout: right == left + 1, so the right child is an
  // add instead of a gather.
  const __m256i step = _mm256_andnot_si256(_mm256_castps_si256(go_left),
                                           _mm256_set1_epi32(1));
  const __m256i next = _mm256_add_epi32(left, step);
  return _mm256_blendv_epi8(node, next, active);
}

#if defined(HOTSPOT_FLAT_AVX512)

/// Maximum nodes per tree for the register-resident AVX-512 path: two zmm
/// registers hold 32 int32 table entries, addressed by one vpermi2d.
inline constexpr int32_t kMaxRegisterTreeNodes = 32;

/// One tree's node arrays held in zmm registers. With at most 32 nodes per
/// tree every per-level node lookup becomes a two-table register permute
/// (vpermi2d, ~1 cycle) instead of a memory gather; the only gather left
/// per level is the per-lane feature value load. Node indices are kept
/// relative to the tree base so they fit the 5-bit permute selector.
struct TreeTables {
  __m512i packed_lo, packed_hi;
  __m512i thr_lo, thr_hi;    ///< float threshold bits
  __m512i left_lo, left_hi;  ///< left child relative to the tree base
  int32_t base;
};

__attribute__((target("avx512f"))) inline TreeTables LoadTreeTables(
    const FlatView& view, int32_t tree) {
  TreeTables tables;
  const int32_t base = view.roots[tree];
  const int32_t end =
      tree + 1 < view.num_trees ? view.roots[tree + 1] : view.num_nodes;
  const int32_t count = end - base;
  tables.base = base;
  // Masked loads fault-suppress the lanes past the tree's node count, so
  // short trees never read out of bounds; those table slots are never
  // selected (node indices stay below `count`).
  const __mmask16 lo = count >= 16
                           ? static_cast<__mmask16>(0xFFFFu)
                           : static_cast<__mmask16>((1u << count) - 1u);
  const __mmask16 hi =
      count > 16 ? static_cast<__mmask16>((1u << (count - 16)) - 1u)
                 : static_cast<__mmask16>(0);
  const __m512i vbase = _mm512_set1_epi32(base);
  tables.packed_lo = _mm512_maskz_loadu_epi32(lo, view.packed + base);
  tables.thr_lo = _mm512_maskz_loadu_epi32(lo, view.threshold + base);
  tables.left_lo = _mm512_sub_epi32(
      _mm512_maskz_loadu_epi32(lo, view.left + base), vbase);
  if (hi != 0) {
    tables.packed_hi = _mm512_maskz_loadu_epi32(hi, view.packed + base + 16);
    tables.thr_hi = _mm512_maskz_loadu_epi32(hi, view.threshold + base + 16);
    tables.left_hi = _mm512_sub_epi32(
        _mm512_maskz_loadu_epi32(hi, view.left + base + 16), vbase);
  } else {
    tables.packed_hi = _mm512_setzero_si512();
    tables.thr_hi = _mm512_setzero_si512();
    tables.left_hi = _mm512_setzero_si512();
  }
  return tables;
}

/// 16-lane sibling of AdvanceLevel, with the node arrays in registers.
/// Same decision, same blend discipline — bitwise identical scores.
__attribute__((target("avx512f"))) inline __m512i Advance16(
    const TreeTables& tables, const float* rows, __m512i lane_offset,
    __m512i node, __m512i packed, __mmask16 active) {
  const __m512i safe_feat = _mm512_max_epi32(_mm512_srai_epi32(packed, 1),
                                             _mm512_setzero_si512());
  const __m512i value_index = _mm512_add_epi32(lane_offset, safe_feat);
  const __m512 value = _mm512_mask_i32gather_ps(_mm512_setzero_ps(), active,
                                                value_index, rows, 4);
  const __m512 threshold = _mm512_castsi512_ps(
      _mm512_permutex2var_epi32(tables.thr_lo, node, tables.thr_hi));
  const __m512i left =
      _mm512_permutex2var_epi32(tables.left_lo, node, tables.left_hi);
  const __mmask16 is_nan = _mm512_cmp_ps_mask(value, value, _CMP_UNORD_Q);
  const __mmask16 le = _mm512_cmp_ps_mask(value, threshold, _CMP_LE_OQ);
  const __mmask16 miss =
      _mm512_test_epi32_mask(packed, _mm512_set1_epi32(1));
  const __mmask16 go_left =
      static_cast<__mmask16>(le | (is_nan & miss));
  // Adjacent-sibling layout: right == left + 1.
  const __m512i next = _mm512_mask_add_epi32(
      left, static_cast<__mmask16>(~go_left), left, _mm512_set1_epi32(1));
  return _mm512_mask_blend_epi32(active, node, next);
}

/// Adds the gathered leaf values (f64) for the 16 lanes of `node` (absolute
/// indices) into the two 8-lane accumulators.
__attribute__((target("avx512f"))) inline void Accumulate16(
    const double* leaf_value, __m512i node, __m512d* acc_lo,
    __m512d* acc_hi) {
  const __m256i node_lo = _mm512_castsi512_si256(node);
  const __m256i node_hi = _mm512_extracti64x4_epi64(node, 1);
  *acc_lo =
      _mm512_add_pd(*acc_lo, _mm512_i32gather_pd(node_lo, leaf_value, 8));
  *acc_hi =
      _mm512_add_pd(*acc_hi, _mm512_i32gather_pd(node_hi, leaf_value, 8));
}

/// 16-row float-variant traversal for forests whose largest tree fits the
/// register tables. Trees are traversed in pairs (independent chains hide
/// the value-gather latency) and leaf values still accumulate in tree
/// order, so the per-lane float addition sequence — and therefore the
/// scores — stays bitwise identical to the scalar kernel.
__attribute__((target("avx512f"))) void TraverseBlock16Avx512(
    const FlatView& view, const float* rows, int stride, double* acc) {
  const __m512i lane_offset = _mm512_mullo_epi32(
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                        15),
      _mm512_set1_epi32(stride));
  const __m512i minus_one = _mm512_set1_epi32(-1);
  __m512d acc_lo = _mm512_loadu_pd(acc);
  __m512d acc_hi = _mm512_loadu_pd(acc + 8);
  int32_t t = 0;
  for (; t + 1 < view.num_trees; t += 2) {
    const TreeTables t0 = LoadTreeTables(view, t);
    const TreeTables t1 = LoadTreeTables(view, t + 1);
    // The root is slot 0 of its tree, so relative node indices start at 0.
    __m512i node0 = _mm512_setzero_si512();
    __m512i node1 = _mm512_setzero_si512();
    for (;;) {
      const __m512i packed0 =
          _mm512_permutex2var_epi32(t0.packed_lo, node0, t0.packed_hi);
      const __m512i packed1 =
          _mm512_permutex2var_epi32(t1.packed_lo, node1, t1.packed_hi);
      const __mmask16 active0 = _mm512_cmpgt_epi32_mask(packed0, minus_one);
      const __mmask16 active1 = _mm512_cmpgt_epi32_mask(packed1, minus_one);
      if (static_cast<__mmask16>(active0 | active1) == 0) break;
      node0 = Advance16(t0, rows, lane_offset, node0, packed0, active0);
      node1 = Advance16(t1, rows, lane_offset, node1, packed1, active1);
    }
    Accumulate16(view.leaf_value,
                 _mm512_add_epi32(node0, _mm512_set1_epi32(t0.base)),
                 &acc_lo, &acc_hi);
    Accumulate16(view.leaf_value,
                 _mm512_add_epi32(node1, _mm512_set1_epi32(t1.base)),
                 &acc_lo, &acc_hi);
  }
  for (; t < view.num_trees; ++t) {
    const TreeTables tables = LoadTreeTables(view, t);
    __m512i node = _mm512_setzero_si512();
    for (;;) {
      const __m512i packed = _mm512_permutex2var_epi32(tables.packed_lo,
                                                       node,
                                                       tables.packed_hi);
      const __mmask16 active = _mm512_cmpgt_epi32_mask(packed, minus_one);
      if (active == 0) break;
      node = Advance16(tables, rows, lane_offset, node, packed, active);
    }
    Accumulate16(view.leaf_value,
                 _mm512_add_epi32(node, _mm512_set1_epi32(tables.base)),
                 &acc_lo, &acc_hi);
  }
  _mm512_storeu_pd(acc, acc_lo);
  _mm512_storeu_pd(acc + 8, acc_hi);
}

#endif  // HOTSPOT_FLAT_AVX512

}  // namespace

int SimdBlockRows() {
#if defined(HOTSPOT_FLAT_AVX512)
  if (__builtin_cpu_supports("avx512f")) return 2 * kBlockRows;
#endif
  return kBlockRows;
}

void TraverseBlockAvx2(const FlatView& view, const float* rows, int n,
                       int stride, double* acc) {
  if (n == 2 * kBlockRows) {
#if defined(HOTSPOT_FLAT_AVX512)
    if (view.max_tree_nodes <= kMaxRegisterTreeNodes &&
        __builtin_cpu_supports("avx512f")) {
      TraverseBlock16Avx512(view, rows, stride, acc);
      return;
    }
#endif
    // Double-width block without a register-resident forest: two half
    // blocks — identical scores, each row is independent.
    TraverseBlockAvx2(view, rows, kBlockRows, stride, acc);
    TraverseBlockAvx2(view, rows + static_cast<int64_t>(kBlockRows) * stride,
                      kBlockRows, stride, acc + kBlockRows);
    return;
  }
  HOTSPOT_CHECK_EQ(n, kBlockRows);
  const __m256i lane_offset =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                         _mm256_set1_epi32(stride));
  const __m256i minus_one = _mm256_set1_epi32(-1);
  __m256d acc_lo = _mm256_loadu_pd(acc);
  __m256d acc_hi = _mm256_loadu_pd(acc + 4);
  int32_t t = 0;
  // Trees are traversed in pairs: the two traversals are independent, so
  // their gathers overlap and hide each other's latency. Leaf values still
  // accumulate in tree order (t before t + 1), keeping the per-lane float
  // addition sequence — and therefore the scores — bitwise identical to
  // the scalar kernel.
  for (; t + 1 < view.num_trees; t += 2) {
    __m256i node0 = _mm256_set1_epi32(view.roots[t]);
    __m256i node1 = _mm256_set1_epi32(view.roots[t + 1]);
    for (;;) {
      const __m256i packed0 = _mm256_i32gather_epi32(view.packed, node0, 4);
      const __m256i packed1 = _mm256_i32gather_epi32(view.packed, node1, 4);
      // A lane is active until it reaches a leaf (packed == -1).
      const __m256i active0 = _mm256_cmpgt_epi32(packed0, minus_one);
      const __m256i active1 = _mm256_cmpgt_epi32(packed1, minus_one);
      const __m256i any = _mm256_or_si256(active0, active1);
      if (_mm256_testz_si256(any, any)) break;
      node0 = AdvanceLevel(view, rows, lane_offset, node0, packed0, active0);
      node1 = AdvanceLevel(view, rows, lane_offset, node1, packed1, active1);
    }
    AccumulateLeaves(view.leaf_value, node0, &acc_lo, &acc_hi);
    AccumulateLeaves(view.leaf_value, node1, &acc_lo, &acc_hi);
  }
  for (; t < view.num_trees; ++t) {
    __m256i node = _mm256_set1_epi32(view.roots[t]);
    for (;;) {
      const __m256i packed = _mm256_i32gather_epi32(view.packed, node, 4);
      const __m256i active = _mm256_cmpgt_epi32(packed, minus_one);
      if (_mm256_testz_si256(active, active)) break;
      node = AdvanceLevel(view, rows, lane_offset, node, packed, active);
    }
    AccumulateLeaves(view.leaf_value, node, &acc_lo, &acc_hi);
  }
  _mm256_storeu_pd(acc, acc_lo);
  _mm256_storeu_pd(acc + 4, acc_hi);
}

void TraverseQuantBlockAvx2(const FlatView& view, const int32_t* bins,
                            int n, int stride, double* acc) {
  HOTSPOT_CHECK_EQ(n, kBlockRows);
  const __m256i lane_offset =
      _mm256_mullo_epi32(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
                         _mm256_set1_epi32(stride));
  const __m256i minus_one = _mm256_set1_epi32(-1);
  __m256d acc_lo = _mm256_loadu_pd(acc);
  __m256d acc_hi = _mm256_loadu_pd(acc + 4);
  for (int32_t t = 0; t < view.num_trees; ++t) {
    __m256i node = _mm256_set1_epi32(view.roots[t]);
    for (;;) {
      const __m256i feat = _mm256_i32gather_epi32(view.feature, node, 4);
      const __m256i active = _mm256_cmpgt_epi32(feat, minus_one);
      if (_mm256_testz_si256(active, active)) break;
      // quant_slot is 0 at leaves, so the masked gather address is always
      // in-bounds.
      const __m256i slot = _mm256_i32gather_epi32(view.quant_slot, node, 4);
      const __m256i bin_index = _mm256_add_epi32(lane_offset, slot);
      const __m256i bin = _mm256_mask_i32gather_epi32(
          _mm256_setzero_si256(), bins, bin_index, active, 4);
      const __m256i bin_threshold =
          _mm256_i32gather_epi32(view.quant_threshold, node, 4);
      const __m256i left = _mm256_i32gather_epi32(view.left, node, 4);
      // Left when bin <= bin_threshold, i.e. not (bin > bin_threshold);
      // adjacent-sibling layout makes the right child left + 1.
      const __m256i go_right = _mm256_cmpgt_epi32(bin, bin_threshold);
      const __m256i next = _mm256_add_epi32(
          left, _mm256_and_si256(go_right, _mm256_set1_epi32(1)));
      node = _mm256_blendv_epi8(node, next, active);
    }
    AccumulateLeaves(view.leaf_value, node, &acc_lo, &acc_hi);
  }
  _mm256_storeu_pd(acc, acc_lo);
  _mm256_storeu_pd(acc + 4, acc_hi);
}

#else  // !HOTSPOT_SIMD_AVX2

bool Avx2Compiled() { return false; }

int SimdBlockRows() { return kBlockRows; }

void TraverseBlockAvx2(const FlatView& view, const float* rows, int n,
                       int stride, double* acc) {
  TraverseBlockScalar(view, rows, n, stride, acc);
}

void TraverseQuantBlockAvx2(const FlatView& view, const int32_t* bins,
                            int n, int stride, double* acc) {
  TraverseQuantBlockScalar(view, bins, n, stride, acc);
}

#endif  // HOTSPOT_SIMD_AVX2

}  // namespace hotspot::ml::flat_detail
