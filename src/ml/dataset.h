#ifndef HOTSPOT_ML_DATASET_H_
#define HOTSPOT_ML_DATASET_H_

#include <vector>

#include "tensor/matrix.h"
#include "util/logging.h"

namespace hotspot::ml {

/// A supervised binary-classification dataset: one feature row per
/// instance, a 0/1 label, and a per-instance sample weight.
struct Dataset {
  Matrix<float> features;      ///< n x d
  std::vector<float> labels;   ///< n, values 0 or 1
  std::vector<double> weights; ///< n, positive

  int num_instances() const { return features.rows(); }
  int num_features() const { return features.cols(); }

  /// Checks shape consistency (labels/weights sized like features).
  void CheckConsistent() const {
    HOTSPOT_CHECK_EQ(static_cast<int>(labels.size()), features.rows());
    HOTSPOT_CHECK_EQ(static_cast<int>(weights.size()), features.rows());
  }
};

/// The paper's balancing scheme: each instance weighted by the inverse of
/// its class frequency, so both classes carry equal total weight. Returns
/// all-ones when a class is absent.
inline std::vector<double> BalancedWeights(const std::vector<float>& labels) {
  double positives = 0.0;
  for (float y : labels) {
    if (y != 0.0f) positives += 1.0;
  }
  double total = static_cast<double>(labels.size());
  double negatives = total - positives;
  std::vector<double> weights(labels.size(), 1.0);
  if (positives == 0.0 || negatives == 0.0) return weights;
  for (size_t i = 0; i < labels.size(); ++i) {
    weights[i] = labels[i] != 0.0f ? total / (2.0 * positives)
                                   : total / (2.0 * negatives);
  }
  return weights;
}

/// Common interface of the tree-based classifiers (Tree, RandomForest,
/// Gbdt) so the forecaster can treat them uniformly.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// Trains on `data`. May be called once per instance lifetime.
  virtual void Fit(const Dataset& data) = 0;

  /// Probability of the positive class for one feature row (length =
  /// num_features of the training data).
  virtual double PredictProba(const float* row) const = 0;

  /// Per-feature importances, normalized to sum to 1 (all-zero when the
  /// model found no splits).
  virtual std::vector<double> FeatureImportances() const = 0;
};

}  // namespace hotspot::ml

#endif  // HOTSPOT_ML_DATASET_H_
