#ifndef HOTSPOT_ML_GBDT_H_
#define HOTSPOT_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::ml {

/// Gradient-boosted decision trees with histogram split finding and
/// leaf-wise growth (the LightGBM recipe), binary logistic loss.
///
/// This model is an *extension* relative to the paper (which evaluates
/// CART and random forests); it is motivated by the boosted-tree
/// forecasting work the paper cites ([34]) and exercised by the ablation
/// benches.
struct GbdtConfig {
  int num_iterations = 80;
  double learning_rate = 0.1;
  int num_leaves = 31;
  int max_depth = 8;          ///< 0 = unlimited
  int max_bins = 64;          ///< histogram bins per feature (<= 255)
  double lambda_l2 = 1.0;     ///< L2 regularization on leaf values
  double min_child_hessian = 1e-3;
  double feature_fraction = 1.0;  ///< per-tree feature subsample
  double bagging_fraction = 1.0;  ///< per-tree row subsample (no replacement)
  uint64_t seed = 1;
};

/// Quantile feature binner. Bin 0 is reserved for missing values; bins
/// 1..num_bins(f)-1 partition the finite range by the training quantiles.
class FeatureBinner {
 public:
  /// Builds thresholds from the training features.
  void Fit(const Matrix<float>& features, int max_bins);

  /// Bin index of `value` for `feature` (0 for NaN).
  int Bin(int feature, float value) const;

  int num_features() const { return static_cast<int>(thresholds_.size()); }
  /// Total bins for `feature` (missing bin included).
  int NumBins(int feature) const;
  const std::vector<float>& Thresholds(int feature) const;

 private:
  friend struct ::hotspot::serialize::ModelAccess;

  /// thresholds_[f] sorted ascending; value <= thresholds_[f][b] falls in
  /// bin b+1.
  std::vector<std::vector<float>> thresholds_;
};

class Gbdt : public BinaryClassifier {
 public:
  explicit Gbdt(const GbdtConfig& config);

  void Fit(const Dataset& data) override;
  double PredictProba(const float* row) const override;
  std::vector<double> FeatureImportances() const override;

  /// Raw additive score before the sigmoid.
  double PredictRaw(const float* row) const;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  /// Per-iteration training logloss (for convergence tests).
  const std::vector<double>& training_loss() const { return training_loss_; }

 private:
  friend struct ::hotspot::serialize::ModelAccess;
  friend class FlatForest;  ///< compiles trees_ + binner_ into SoA arrays

  struct Node {
    int feature = -1;     ///< -1 for leaves
    int bin_threshold = 0;  ///< go left when bin(value) <= bin_threshold
    int left = -1;
    int right = -1;
    double value = 0.0;   ///< leaf output (already shrunk)
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  Tree BuildTree(const Matrix<uint8_t>& binned,
                 const std::vector<double>& grads,
                 const std::vector<double>& hessians,
                 const std::vector<int>& rows,
                 const std::vector<int>& features, Rng* rng);

  GbdtConfig config_;
  FeatureBinner binner_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  std::vector<double> gain_importances_;
  std::vector<double> training_loss_;
  int num_features_ = 0;
};

/// Numerically stable logistic sigmoid.
double Sigmoid(double x);

}  // namespace hotspot::ml

#endif  // HOTSPOT_ML_GBDT_H_
