#ifndef HOTSPOT_ML_FLAT_TREE_H_
#define HOTSPOT_ML_FLAT_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::ml {

class DecisionTree;
class Gbdt;
class RandomForest;

/// Traversal kernel for FlatForest::PredictBatch. kAvx2 requires the
/// HOTSPOT_SIMD build option *and* a runtime CPUID check; requesting it on
/// a host without AVX2 silently falls back to the scalar kernel (the two
/// are bitwise interchangeable, so the fallback is unobservable in the
/// scores).
enum class FlatKernel { kScalar, kAvx2 };

/// Node representation for FlatForest::PredictBatch. kFloat compares raw
/// feature values against float thresholds; kQuantized pre-bins each row
/// block with the GBDT binner cuts and compares int32 bin indices (only
/// available for forests compiled from a Gbdt). kAuto resolves to kFloat —
/// the serving default; per-block re-binning makes the quantized variant
/// slower at inference time, so it stays opt-in.
enum class FlatVariant { kAuto, kFloat, kQuantized };

namespace flat_detail {

/// Rows per traversal block: one AVX2 register of row lanes. Blocking is
/// purely a batching detail — each row's score is computed independently,
/// so results are bitwise identical for any block decomposition.
inline constexpr int kBlockRows = 8;

/// Raw-pointer view over the SoA node arrays: the ABI shared between the
/// portable kernels in flat_tree.cc and the AVX2 translation unit
/// (flat_tree_simd.cc, compiled with -mavx2 only under HOTSPOT_SIMD).
struct FlatView {
  const int32_t* feature = nullptr;    ///< -1 marks a leaf
  const float* threshold = nullptr;
  const int32_t* miss_left = nullptr;  ///< all-ones mask: NaN routes left
  const int32_t* left = nullptr;       ///< absolute node index, > self
  const int32_t* right = nullptr;      ///< always left + 1 (sibling pair)
  /// (feature << 1) | miss_bit for internal nodes, -1 for leaves: lets the
  /// AVX2 kernel recover feature, missing-direction and leaf-ness from a
  /// single gather. Derived from the arrays above, never serialized.
  const int32_t* packed = nullptr;
  const double* leaf_value = nullptr;
  const int32_t* roots = nullptr;
  int32_t num_trees = 0;
  int32_t num_nodes = 0;
  /// Largest per-tree node count when trees sit contiguously in root order
  /// (the compiler's layout — tree t spans roots[t]..roots[t+1]);
  /// INT32_MAX when the spans cannot be derived. The AVX-512 kernel keeps
  /// a whole tree in registers when this is at most 32.
  int32_t max_tree_nodes = 0;
  const int32_t* quant_threshold = nullptr;  ///< bin-space thresholds
  const int32_t* quant_slot = nullptr;       ///< used-feature slot per node
};

/// True when this binary contains the AVX2 kernel (HOTSPOT_SIMD=ON and the
/// compiler accepted -mavx2).
bool Avx2Compiled();

/// Rows the vector kernel prefers per traversal block at runtime:
/// 2 * kBlockRows when the AVX-512 upgrade is compiled in and the host CPU
/// reports AVX-512F, kBlockRows otherwise. Blocking is a batching detail
/// (see kBlockRows), so the choice never changes scores.
int SimdBlockRows();

/// For every row r < n (n <= kBlockRows), adds the leaf values of all
/// trees — visited in tree order — into acc[r]. `stride` is the float
/// distance between consecutive rows.
void TraverseBlockScalar(const FlatView& view, const float* rows, int n,
                         int stride, double* acc);
/// Vector version of TraverseBlockScalar; requires Avx2Compiled() and
/// n == kBlockRows, or n == 2 * kBlockRows when SimdBlockRows() says the
/// AVX-512 upgrade is live. Bitwise identical to the scalar kernel:
/// traversal is pure comparisons and the accumulation order per lane is
/// unchanged.
void TraverseBlockAvx2(const FlatView& view, const float* rows, int n,
                       int stride, double* acc);
/// Quantized traversal over pre-binned rows: bins[r * stride + slot] is
/// the bin index of used-feature `slot` for row r.
void TraverseQuantBlockScalar(const FlatView& view, const int32_t* bins,
                              int n, int stride, double* acc);
void TraverseQuantBlockAvx2(const FlatView& view, const int32_t* bins,
                            int n, int stride, double* acc);

}  // namespace flat_detail

/// Trained tree ensembles (DecisionTree / RandomForest / Gbdt) re-compiled
/// into contiguous structure-of-arrays node storage for batched, branchless
/// traversal — the LightGBM storage-vs-traversal split. The pointer-walking
/// models stay the single source of truth for training and (de)serialization;
/// a FlatForest is a derived, deterministic artifact of one of them.
///
/// Contract: PredictBatch is bitwise identical to the source model's
/// PredictProba for every input (including NaN payloads), for every
/// kernel/variant, at any HOTSPOT_NUM_THREADS and any batch decomposition.
/// The GBDT bin-space rule `Bin(f, v) <= bin_threshold` is compiled to the
/// exact float comparison `v <= cuts[bin_threshold - 1]` plus a NaN
/// default-direction flag, so no traversal re-bins values in the float
/// variant (see DESIGN §10 for the mapping table).
class FlatForest {
 public:
  /// How per-tree leaf sums aggregate into the final score; mirrors the
  /// source model's PredictProba exactly.
  enum class Aggregation : uint8_t {
    kSingleTree = 0,   ///< score = leaf probability
    kForestMean = 1,   ///< score = sum(tree probs) / num_trees
    kGbdtSigmoid = 2,  ///< score = Sigmoid(base_score + sum(leaf values))
  };

  FlatForest() = default;

  /// Compiles `model`, dispatching on its concrete type (DecisionTree,
  /// RandomForest or Gbdt). Check-fails for unknown classifier types or
  /// untrained models.
  static FlatForest Compile(const BinaryClassifier& model);
  static FlatForest Compile(const DecisionTree& tree);
  static FlatForest Compile(const RandomForest& forest);
  static FlatForest Compile(const Gbdt& model);

  /// Scores `num_rows` rows (each `stride` floats apart, at least
  /// num_features() wide) into out[0..num_rows). Safe to call concurrently;
  /// out[i] depends only on row i.
  void PredictBatch(const float* rows, int num_rows, int stride,
                    double* out) const {
    PredictBatch(rows, num_rows, stride, out, ChooseKernel(),
                 FlatVariant::kAuto);
  }
  void PredictBatch(const float* rows, int num_rows, int stride, double* out,
                    FlatKernel kernel,
                    FlatVariant variant = FlatVariant::kAuto) const;

  /// Single-row convenience (row must be num_features() wide).
  double PredictOne(const float* row) const;

  bool empty() const { return roots_.empty(); }
  int num_trees() const { return static_cast<int>(roots_.size()); }
  int num_nodes() const { return static_cast<int>(feature_.size()); }
  int num_features() const { return num_features_; }
  Aggregation aggregation() const { return agg_; }
  /// True when the bin-space (quantized) node arrays were compiled (Gbdt
  /// sources only).
  bool has_quantized() const { return quantized_; }

  /// True when the AVX2 kernel is compiled in AND the host CPU reports
  /// AVX2 support (runtime CPUID).
  static bool SimdSupported();
  /// True when the AVX2 kernel is compiled into this binary.
  static bool SimdCompiled();
  /// Kernel PredictBatch uses by default: AVX2 when supported, overridable
  /// with HOTSPOT_FLAT_KERNEL=scalar|avx2 (an avx2 request on a host
  /// without AVX2 falls back to scalar).
  static FlatKernel ChooseKernel();

 private:
  friend struct ::hotspot::serialize::ModelAccess;

  flat_detail::FlatView View() const;
  double Aggregate(double acc) const;
  /// Rebuilds packed_ from feature_/miss_left_; must run after compiling
  /// or decoding the node arrays.
  void RebuildPacked();
  /// Appends one DecisionTree as a flat tree (shared by the tree and
  /// forest compilers).
  static void AppendTree(const DecisionTree& tree, FlatForest* out);
  /// Pre-bins the used features of `n` rows into bins (n x used_features
  /// int32, row-major), replicating FeatureBinner::Bin exactly.
  void BinBlock(const float* rows, int n, int stride, int32_t* bins) const;

  Aggregation agg_ = Aggregation::kSingleTree;
  int num_features_ = 0;
  double base_score_ = 0.0;  ///< GBDT prior; 0 otherwise

  // SoA node arrays, indexed by absolute node id, laid out level-order per
  // tree with sibling pairs adjacent: right == left + 1 always, so the
  // AVX2 kernel derives the right child from the left-child gather, and
  // children always point strictly forward (left/right > self), which
  // bounds every traversal.
  std::vector<int32_t> feature_;
  std::vector<float> threshold_;
  std::vector<int32_t> miss_left_;  ///< -1 (all-ones) or 0, blend-ready
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<int32_t> packed_;  ///< see FlatView::packed; derived
  std::vector<double> leaf_value_;
  std::vector<int32_t> roots_;  ///< root node id per tree, in tree order

  // Quantized (bin-space) variant, Gbdt sources only: traversal compares
  // pre-binned values against the training bin thresholds — exact by
  // construction because it replays the scalar path's own comparisons.
  bool quantized_ = false;
  std::vector<int32_t> quant_threshold_;
  std::vector<int32_t> quant_slot_;       ///< index into used_features_
  std::vector<int32_t> used_features_;    ///< sorted unique split features
  std::vector<std::vector<float>> cuts_;  ///< binner cuts per used feature
};

}  // namespace hotspot::ml

#endif  // HOTSPOT_ML_FLAT_TREE_H_
