#ifndef HOTSPOT_ML_RANDOM_FOREST_H_
#define HOTSPOT_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::ml {

/// Random forest configuration. Defaults match the paper's RF setup
/// (Sec. IV-D): √d features per split, much deeper trees (0.02 % of the
/// total weight as the stopping criterion), bootstrap aggregation of class
/// probabilities.
struct ForestConfig {
  int num_trees = 50;
  /// Stopping criterion per tree (paper: 0.0002).
  double min_weight_fraction = 0.0002;
  int max_depth = 0;  ///< 0 = unlimited
  bool bootstrap = true;
  uint64_t seed = 1;
};

/// Bagged ensemble of DecisionTree classifiers (Breiman 2001): each tree
/// sees a bootstrap resample of the instances and evaluates at most √d
/// features per split; prediction is the mean of tree probabilities, and
/// feature importances are the mean of per-tree impurity importances.
class RandomForest : public BinaryClassifier {
 public:
  explicit RandomForest(const ForestConfig& config);

  void Fit(const Dataset& data) override;
  double PredictProba(const float* row) const override;
  std::vector<double> FeatureImportances() const override;

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DecisionTree& tree(int index) const;

 private:
  friend struct ::hotspot::serialize::ModelAccess;
  friend class FlatForest;  ///< compiles trees_ into SoA arrays

  ForestConfig config_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  int num_features_ = 0;
};

}  // namespace hotspot::ml

#endif  // HOTSPOT_ML_RANDOM_FOREST_H_
