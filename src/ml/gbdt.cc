#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace hotspot::ml {

double Sigmoid(double x) {
  if (x >= 0.0) {
    double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  double z = std::exp(x);
  return z / (1.0 + z);
}

void FeatureBinner::Fit(const Matrix<float>& features, int max_bins) {
  HOTSPOT_CHECK_GE(max_bins, 2);
  HOTSPOT_CHECK_LE(max_bins, 255);
  const int n = features.rows();
  const int d = features.cols();
  thresholds_.assign(static_cast<size_t>(d), {});
  // Parallel over features: each iteration only touches thresholds_[f], so
  // any thread count produces the same cuts as the serial loop.
  util::ParallelFor(0, d, [&](int64_t fi) {
    const int f = static_cast<int>(fi);
    std::vector<float> column;
    for (int i = 0; i < n; ++i) {
      float value = features.At(i, f);
      if (!IsMissing(value)) column.push_back(value);
    }
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());
    std::vector<float>& cuts = thresholds_[static_cast<size_t>(f)];
    int distinct = static_cast<int>(column.size());
    if (distinct <= 1) return;  // constant feature: one finite bin
    // max_bins-1 finite bins (bin 0 is the missing bin) need at most
    // max_bins-2 cut points.
    int num_cuts = std::min(distinct - 1, max_bins - 2);
    if (num_cuts <= 0) num_cuts = 1;
    for (int c = 1; c <= num_cuts; ++c) {
      // Evenly spaced quantiles over the distinct values; the cut sits
      // between two adjacent distinct values.
      size_t pos = static_cast<size_t>(
          static_cast<double>(c) * distinct / (num_cuts + 1));
      pos = std::min(pos, column.size() - 1);
      if (pos == 0) pos = 1;
      float cut = 0.5f * (column[pos - 1] + column[pos]);
      if (cuts.empty() || cut > cuts.back()) cuts.push_back(cut);
    }
  });
}

int FeatureBinner::Bin(int feature, float value) const {
  if (IsMissing(value)) return 0;
  const std::vector<float>& cuts = thresholds_[static_cast<size_t>(feature)];
  // Bin b+1 holds values <= cuts[b]; the last bin holds the rest.
  int lo = 0;
  int hi = static_cast<int>(cuts.size());
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (value <= cuts[static_cast<size_t>(mid)]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo + 1;
}

int FeatureBinner::NumBins(int feature) const {
  return static_cast<int>(thresholds_[static_cast<size_t>(feature)].size()) +
         2;
}

const std::vector<float>& FeatureBinner::Thresholds(int feature) const {
  return thresholds_[static_cast<size_t>(feature)];
}

Gbdt::Gbdt(const GbdtConfig& config) : config_(config) {
  HOTSPOT_CHECK_GT(config.num_iterations, 0);
  HOTSPOT_CHECK_GT(config.learning_rate, 0.0);
  HOTSPOT_CHECK_GE(config.num_leaves, 2);
  HOTSPOT_CHECK(config.feature_fraction > 0.0 &&
                config.feature_fraction <= 1.0);
  HOTSPOT_CHECK(config.bagging_fraction > 0.0 &&
                config.bagging_fraction <= 1.0);
}

namespace {

/// A leaf pending a possible split during leaf-wise growth.
struct PendingLeaf {
  int node = -1;
  std::vector<int> rows;
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  int depth = 0;
  // Best split found for this leaf.
  double best_gain = 0.0;
  int best_feature = -1;
  int best_bin = -1;
  bool evaluated = false;
};

double LeafObjective(double grad_sum, double hess_sum, double lambda) {
  return grad_sum * grad_sum / (hess_sum + lambda);
}

/// Best split of one feature during the parallel histogram scan.
struct FeatureSplit {
  double gain = 0.0;
  int feature = -1;
  int bin = -1;
};

}  // namespace

Gbdt::Tree Gbdt::BuildTree(const Matrix<uint8_t>& binned,
                           const std::vector<double>& grads,
                           const std::vector<double>& hessians,
                           const std::vector<int>& rows,
                           const std::vector<int>& features, Rng* rng) {
  (void)rng;
  // Hoisted out of the leaf loop: one registry lookup per tree, relaxed
  // sharded increments inside. Null context costs one pointer test here.
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  obs::Counter* split_searches =
      ctx != nullptr ? &ctx->metrics().counter("gbdt/split_searches")
                     : nullptr;
  Tree tree;
  std::vector<PendingLeaf> leaves;

  auto make_leaf = [&](std::vector<int> leaf_rows, int depth) {
    PendingLeaf leaf;
    leaf.node = static_cast<int>(tree.nodes.size());
    tree.nodes.push_back(Node{});
    leaf.rows = std::move(leaf_rows);
    for (int r : leaf.rows) {
      leaf.grad_sum += grads[static_cast<size_t>(r)];
      leaf.hess_sum += hessians[static_cast<size_t>(r)];
    }
    leaf.depth = depth;
    tree.nodes[static_cast<size_t>(leaf.node)].value =
        -config_.learning_rate * leaf.grad_sum /
        (leaf.hess_sum + config_.lambda_l2);
    leaves.push_back(std::move(leaf));
    return static_cast<int>(leaves.size()) - 1;
  };

  auto evaluate_leaf = [&](PendingLeaf& leaf) {
    leaf.evaluated = true;
    leaf.best_gain = 0.0;
    leaf.best_feature = -1;
    if (config_.max_depth > 0 && leaf.depth >= config_.max_depth) return;
    if (leaf.rows.size() < 2) return;
    if (split_searches != nullptr) {
      split_searches->Add(static_cast<uint64_t>(features.size()));
    }
    double parent_obj =
        LeafObjective(leaf.grad_sum, leaf.hess_sum, config_.lambda_l2);
    // Parallel over features: every feature builds its own histogram (the
    // within-feature accumulation order is the row order, same as serial)
    // and reports its best split; the merge below walks the candidates in
    // feature order with the same strict `>` the serial scan used, so the
    // chosen split is bitwise-identical at any thread count. Tiny leaves
    // stay serial — same result, less scheduling overhead.
    int split_threads =
        leaf.rows.size() * features.size() < 4096 ? 1 : 0 /* NumThreads() */;
    std::vector<FeatureSplit> candidates = util::ParallelMap<FeatureSplit>(
        0, static_cast<int64_t>(features.size()),
        [&](int64_t fi) {
          const int f = features[static_cast<size_t>(fi)];
          const int bins = binner_.NumBins(f);
          std::vector<double> hist_grad(static_cast<size_t>(bins), 0.0);
          std::vector<double> hist_hess(static_cast<size_t>(bins), 0.0);
          for (int r : leaf.rows) {
            int b = binned.At(r, f);
            hist_grad[static_cast<size_t>(b)] += grads[static_cast<size_t>(r)];
            hist_hess[static_cast<size_t>(b)] +=
                hessians[static_cast<size_t>(r)];
          }
          FeatureSplit split;
          split.feature = f;
          double left_grad = 0.0;
          double left_hess = 0.0;
          for (int b = 0; b + 1 < bins; ++b) {
            left_grad += hist_grad[static_cast<size_t>(b)];
            left_hess += hist_hess[static_cast<size_t>(b)];
            double right_grad = leaf.grad_sum - left_grad;
            double right_hess = leaf.hess_sum - left_hess;
            if (left_hess < config_.min_child_hessian ||
                right_hess < config_.min_child_hessian) {
              continue;
            }
            double gain =
                LeafObjective(left_grad, left_hess, config_.lambda_l2) +
                LeafObjective(right_grad, right_hess, config_.lambda_l2) -
                parent_obj;
            if (gain > split.gain) {
              split.gain = gain;
              split.bin = b;
            }
          }
          return split;
        },
        split_threads);
    // Ordered merge: first feature wins ties, exactly like the serial scan.
    for (const FeatureSplit& candidate : candidates) {
      if (candidate.bin >= 0 && candidate.gain > leaf.best_gain) {
        leaf.best_gain = candidate.gain;
        leaf.best_feature = candidate.feature;
        leaf.best_bin = candidate.bin;
      }
    }
  };

  std::vector<int> root_rows = rows;
  make_leaf(std::move(root_rows), 0);

  int leaf_count = 1;
  while (leaf_count < config_.num_leaves) {
    // Pick the evaluated leaf with the best gain.
    int best_index = -1;
    double best_gain = 0.0;
    for (size_t idx = 0; idx < leaves.size(); ++idx) {
      PendingLeaf& leaf = leaves[idx];
      if (leaf.node < 0) continue;  // already split
      if (!leaf.evaluated) evaluate_leaf(leaf);
      if (leaf.best_feature >= 0 && leaf.best_gain > best_gain) {
        best_gain = leaf.best_gain;
        best_index = static_cast<int>(idx);
      }
    }
    if (best_index < 0) break;

    PendingLeaf& leaf = leaves[static_cast<size_t>(best_index)];
    std::vector<int> left_rows;
    std::vector<int> right_rows;
    for (int r : leaf.rows) {
      if (binned.At(r, leaf.best_feature) <= leaf.best_bin) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    HOTSPOT_CHECK(!left_rows.empty() && !right_rows.empty());

    gain_importances_[static_cast<size_t>(leaf.best_feature)] +=
        leaf.best_gain;

    int node = leaf.node;
    int depth = leaf.depth;
    int feature = leaf.best_feature;
    int bin = leaf.best_bin;
    leaf.node = -1;  // consumed; references into `leaves` may dangle below
    leaf.rows.clear();

    int left_leaf = make_leaf(std::move(left_rows), depth + 1);
    int right_leaf = make_leaf(std::move(right_rows), depth + 1);
    Node& parent = tree.nodes[static_cast<size_t>(node)];
    parent.feature = feature;
    parent.bin_threshold = bin;
    parent.left = leaves[static_cast<size_t>(left_leaf)].node;
    parent.right = leaves[static_cast<size_t>(right_leaf)].node;
    parent.value = 0.0;
    ++leaf_count;
  }
  return tree;
}

void Gbdt::Fit(const Dataset& data) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("gbdt/fit");
  data.CheckConsistent();
  HOTSPOT_CHECK(trees_.empty());  // Fit once.
  const int n = data.num_instances();
  HOTSPOT_CHECK_GT(n, 0);
  num_features_ = data.num_features();
  gain_importances_.assign(static_cast<size_t>(num_features_), 0.0);

  Matrix<uint8_t> binned(n, num_features_);
  {
    HOTSPOT_SPAN("gbdt/bin_build");
    binner_.Fit(data.features, config_.max_bins);
    util::ParallelFor(0, n, [&](int64_t i) {
      const float* row = data.features.Row(static_cast<int>(i));
      uint8_t* dst = binned.Row(static_cast<int>(i));
      for (int f = 0; f < num_features_; ++f) {
        dst[f] = static_cast<uint8_t>(binner_.Bin(f, row[f]));
      }
    });
    if (ctx != nullptr) {
      ctx->metrics().counter("gbdt/bin_builds").Increment();
    }
  }

  // Weighted prior.
  double weight_sum = 0.0;
  double positive_weight = 0.0;
  for (int i = 0; i < n; ++i) {
    weight_sum += data.weights[static_cast<size_t>(i)];
    if (data.labels[static_cast<size_t>(i)] != 0.0f) {
      positive_weight += data.weights[static_cast<size_t>(i)];
    }
  }
  double prior = std::clamp(positive_weight / weight_sum, 1e-6, 1.0 - 1e-6);
  base_score_ = std::log(prior / (1.0 - prior));

  std::vector<double> scores(static_cast<size_t>(n), base_score_);
  std::vector<double> grads(static_cast<size_t>(n));
  std::vector<double> hessians(static_cast<size_t>(n));

  Rng rng(config_.seed);
  std::vector<int> all_features(static_cast<size_t>(num_features_));
  for (int f = 0; f < num_features_; ++f) {
    all_features[static_cast<size_t>(f)] = f;
  }

  std::vector<double> loss_terms(static_cast<size_t>(n));

  for (int iter = 0; iter < config_.num_iterations; ++iter) {
    // Per-row terms in parallel; the loss reduction stays an ordered serial
    // sum over the precomputed terms so it is identical at any thread count.
    util::ParallelFor(0, n, [&](int64_t i) {
      double p = Sigmoid(scores[static_cast<size_t>(i)]);
      double y = data.labels[static_cast<size_t>(i)] != 0.0f ? 1.0 : 0.0;
      double w = data.weights[static_cast<size_t>(i)];
      grads[static_cast<size_t>(i)] = w * (p - y);
      hessians[static_cast<size_t>(i)] = w * std::max(p * (1.0 - p), 1e-9);
      double clipped = std::clamp(p, 1e-12, 1.0 - 1e-12);
      loss_terms[static_cast<size_t>(i)] =
          w * (y * std::log(clipped) + (1.0 - y) * std::log(1.0 - clipped));
    });
    double loss = 0.0;
    for (int i = 0; i < n; ++i) loss -= loss_terms[static_cast<size_t>(i)];
    training_loss_.push_back(loss / weight_sum);

    // Row / feature subsampling.
    std::vector<int> rows;
    if (config_.bagging_fraction < 1.0) {
      int take = std::max(1, static_cast<int>(config_.bagging_fraction * n));
      rows = rng.SampleWithoutReplacement(n, take);
    } else {
      rows.resize(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) rows[static_cast<size_t>(i)] = i;
    }
    std::vector<int> features;
    if (config_.feature_fraction < 1.0) {
      int take = std::max(
          1, static_cast<int>(config_.feature_fraction * num_features_));
      features = rng.SampleWithoutReplacement(num_features_, take);
    } else {
      features = all_features;
    }

    Tree tree;
    {
      HOTSPOT_SPAN("gbdt/build_tree");
      tree = BuildTree(binned, grads, hessians, rows, features, &rng);
    }
    if (ctx != nullptr) {
      ctx->metrics().counter("gbdt/trees_built").Increment();
    }

    // Update scores for all rows (row i only touches scores[i]).
    util::ParallelFor(0, n, [&](int64_t i) {
      int node = 0;
      while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
        const Node& current = tree.nodes[static_cast<size_t>(node)];
        node = binned.At(static_cast<int>(i), current.feature) <=
                       current.bin_threshold
                   ? current.left
                   : current.right;
      }
      scores[static_cast<size_t>(i)] +=
          tree.nodes[static_cast<size_t>(node)].value;
    });
    trees_.push_back(std::move(tree));
  }
}

double Gbdt::PredictRaw(const float* row) const {
  HOTSPOT_CHECK(!trees_.empty());
  double score = base_score_;
  for (const Tree& tree : trees_) {
    int node = 0;
    while (tree.nodes[static_cast<size_t>(node)].feature >= 0) {
      const Node& current = tree.nodes[static_cast<size_t>(node)];
      int bin = binner_.Bin(current.feature, row[current.feature]);
      node = bin <= current.bin_threshold ? current.left : current.right;
    }
    score += tree.nodes[static_cast<size_t>(node)].value;
  }
  return score;
}

double Gbdt::PredictProba(const float* row) const {
  return Sigmoid(PredictRaw(row));
}

std::vector<double> Gbdt::FeatureImportances() const {
  std::vector<double> importances = gain_importances_;
  double sum = 0.0;
  for (double imp : importances) sum += imp;
  if (sum > 0.0) {
    for (double& imp : importances) imp /= sum;
  }
  return importances;
}

}  // namespace hotspot::ml
