#include "ml/random_forest.h"

#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hotspot::ml {

RandomForest::RandomForest(const ForestConfig& config) : config_(config) {
  HOTSPOT_CHECK_GT(config.num_trees, 0);
}

void RandomForest::Fit(const Dataset& data) {
  obs::PipelineContext* ctx = obs::PipelineContext::Current();
  HOTSPOT_SPAN("forest/fit");
  obs::Counter* trees_built =
      ctx != nullptr ? &ctx->metrics().counter("forest/trees_built")
                     : nullptr;
  data.CheckConsistent();
  HOTSPOT_CHECK(trees_.empty());  // Fit once.
  num_features_ = data.num_features();

  // Every tree derives its own Rng stream from the config seed up front, so
  // trees never share mutable generator state and the fit is bit-identical
  // at any thread count.
  Rng root(config_.seed);
  std::vector<uint64_t> tree_seeds(static_cast<size_t>(config_.num_trees));
  for (uint64_t& seed : tree_seeds) seed = root.NextUint64();

  const int n = data.num_instances();
  trees_.resize(static_cast<size_t>(config_.num_trees));
  util::ParallelFor(0, config_.num_trees, [&](int64_t t) {
    Rng rng(tree_seeds[static_cast<size_t>(t)]);
    TreeConfig tree_config;
    tree_config.max_features_sqrt = true;
    tree_config.min_weight_fraction = config_.min_weight_fraction;
    tree_config.max_depth = config_.max_depth;
    tree_config.seed = rng.NextUint64();
    auto tree = std::make_unique<DecisionTree>(tree_config);

    if (config_.bootstrap) {
      // Bootstrap resample: draw n instances with replacement. We
      // materialize the resample (rather than weighting) so the per-node
      // sorted scans stay simple.
      Dataset sample;
      sample.features = Matrix<float>(n, data.num_features());
      sample.labels.resize(static_cast<size_t>(n));
      sample.weights.resize(static_cast<size_t>(n));
      for (int r = 0; r < n; ++r) {
        int i = static_cast<int>(rng.UniformInt(0, n - 1));
        const float* src = data.features.Row(i);
        float* dst = sample.features.Row(r);
        for (int c = 0; c < data.num_features(); ++c) dst[c] = src[c];
        sample.labels[static_cast<size_t>(r)] =
            data.labels[static_cast<size_t>(i)];
        sample.weights[static_cast<size_t>(r)] =
            data.weights[static_cast<size_t>(i)];
      }
      tree->Fit(sample);
    } else {
      tree->Fit(data);
    }
    trees_[static_cast<size_t>(t)] = std::move(tree);
    if (trees_built != nullptr) trees_built->Increment();
  });
}

double RandomForest::PredictProba(const float* row) const {
  HOTSPOT_CHECK(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree->PredictProba(row);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportances() const {
  std::vector<double> importances(static_cast<size_t>(num_features_), 0.0);
  if (trees_.empty()) return importances;
  for (const auto& tree : trees_) {
    std::vector<double> tree_importances = tree->FeatureImportances();
    for (size_t k = 0; k < importances.size(); ++k) {
      importances[k] += tree_importances[k];
    }
  }
  double sum = 0.0;
  for (double imp : importances) sum += imp;
  if (sum > 0.0) {
    for (double& imp : importances) imp /= sum;
  }
  return importances;
}

const DecisionTree& RandomForest::tree(int index) const {
  HOTSPOT_CHECK(index >= 0 && index < num_trees());
  return *trees_[static_cast<size_t>(index)];
}

}  // namespace hotspot::ml
