#ifndef HOTSPOT_ML_DECISION_TREE_H_
#define HOTSPOT_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "ml/dataset.h"
#include "util/rng.h"

namespace hotspot::serialize {
struct ModelAccess;
}  // namespace hotspot::serialize

namespace hotspot::ml {

/// CART configuration. Defaults match the paper's single-Tree setup
/// (Sec. IV-D): Gini split metric, a random 80 % of the features evaluated
/// at every partition, and 2 % of the total weight as the stopping
/// criterion.
struct TreeConfig {
  /// Fraction of features evaluated per split (ignored when
  /// `max_features_sqrt` is set).
  double max_features_fraction = 0.8;
  /// Evaluate at most √d features per split (the forest setting).
  bool max_features_sqrt = false;
  /// A node is not split further when its weight falls below this fraction
  /// of the total training weight (paper: 0.02 for Tree, 0.0002 for RF).
  double min_weight_fraction = 0.02;
  /// 0 = unlimited.
  int max_depth = 0;
  uint64_t seed = 1;
};

/// Weighted classification and regression tree (classification mode, Gini
/// impurity). Missing feature values (NaN) are routed to the left child.
class DecisionTree : public BinaryClassifier {
 public:
  explicit DecisionTree(const TreeConfig& config);

  void Fit(const Dataset& data) override;
  double PredictProba(const float* row) const override;
  std::vector<double> FeatureImportances() const override;

  /// Number of nodes (internal + leaves). 0 before Fit().
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int depth() const { return depth_; }

  /// The feature tested by the d-th split encountered on a
  /// breadth-first walk (used by the Sec. V-B "first splits" inspection);
  /// -1 when there are fewer splits.
  int SplitFeatureAt(int split_index) const;

 private:
  friend struct ::hotspot::serialize::ModelAccess;
  friend class FlatForest;  ///< compiles nodes_ into SoA arrays

  struct Node {
    int feature = -1;        ///< -1 for leaves
    float threshold = 0.0f;  ///< go left when value <= threshold (or NaN)
    int left = -1;
    int right = -1;
    float prob = 0.0f;       ///< weighted positive fraction at this node
  };

  int BuildNode(const Dataset& data, std::vector<int>& instances, int begin,
                int end, int depth, Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::vector<double> importances_;
  double total_weight_ = 0.0;
  int num_features_ = 0;
  int depth_ = 0;
};

}  // namespace hotspot::ml

#endif  // HOTSPOT_ML_DECISION_TREE_H_
