#ifndef HOTSPOT_MONITOR_MONITOR_H_
#define HOTSPOT_MONITOR_MONITOR_H_

#include <mutex>
#include <vector>

#include "monitor/drift.h"
#include "monitor/fingerprint.h"
#include "monitor/health.h"
#include "monitor/quality.h"
#include "obs/metrics.h"
#include "tensor/tensor3.h"

namespace hotspot::monitor {

/// Everything tunable about the online monitor. The defaults are sized so
/// that a 500-sector fleet reaches a drift verdict within a handful of
/// serve batches while keeping the per-batch observation cost far below
/// the model-inference cost (the <5 % serve-overhead budget).
struct MonitorConfig {
  DriftThresholds drift;
  /// Rolling live-sample window per monitored signal.
  int drift_window = 512;
  /// Input drift sampling rate: up to this many evenly spaced hours of
  /// the freshest day of each served window are observed per sector (the
  /// default observes the whole day — the cost is ring-buffer writes,
  /// far below model-inference cost). The monitor decimates further when
  /// one batch would overflow `drift_window`, and rotates the sampling
  /// phase per sector, so the retained window always spans every sector
  /// and every clock hour — a sector- or clock-hour subset has a
  /// different marginal distribution than the fingerprint and would
  /// falsely read as drift.
  int input_sample_hours = 24;
  QualityConfig quality;
  QualityThresholds quality_thresholds;
  LatencySlo latency;
  /// De-escalation hysteresis of the reported ladder states. Escalation
  /// is always immediate (a raw DRIFT verdict reports as DRIFT on the
  /// same Report() call), but a reported state only steps DOWN one rung
  /// after this many consecutive Report() calls whose raw verdict was
  /// below the reported rung — so a drift episode that subsides walks
  /// DRIFT→WARN→OK instead of snapping to OK the moment the rolling
  /// window flushes, and a verdict flickering around a threshold cannot
  /// oscillate the ladder (each flicker resets the hold count). 0
  /// disables the hysteresis and reports raw verdicts.
  int ladder_hold_reports = 2;
};

/// The online monitoring core a ForecastService owns when monitoring is
/// enabled: rolling drift detection against the bundle fingerprints,
/// delayed-label quality tracking, and serve-latency accounting, rolled up
/// into HealthReport snapshots on demand.
///
/// All entry points are thread-safe (one internal mutex; observation work
/// per batch is microseconds, so contention is not a concern at the
/// serve rates the latency SLO targets). Monitoring is strictly
/// read-only with respect to predictions: it never feeds back into the
/// scores, so serving stays bitwise identical with monitoring on or off.
class ServingMonitor {
 public:
  /// `fingerprints` must outlive the monitor (the owning bundle does).
  ServingMonitor(const BundleFingerprints* fingerprints,
                 const MonitorConfig& config);

  ServingMonitor(const ServingMonitor&) = delete;
  ServingMonitor& operator=(const ServingMonitor&) = delete;

  /// Records one served batch: strided input samples from the freshest
  /// day of each sector's window (tensor hours [hour_begin, hour_end) are
  /// the served window span), the predicted scores, and the batch
  /// latency. `tensor` holds one sector per dim0 entry matching `scores`.
  void ObserveBatch(const Tensor3<float>& tensor, int hour_begin,
                    int hour_end, const std::vector<float>& scores,
                    double latency_seconds);

  /// Feeds matured ground-truth labels back (same ordering contract as
  /// Predict: scores[i] and labels[i] belong to the same sector/day).
  void RecordOutcomes(const std::vector<float>& scores,
                      const std::vector<float>& labels);

  /// Runs the drift tests and metric roll-ups and assembles the current
  /// health snapshot (monitoring_enabled is always true here; the
  /// disabled-path report comes from ForecastService).
  HealthReport Report() const;

  const MonitorConfig& config() const { return config_; }

 private:
  MonitorConfig config_;
  mutable std::mutex mutex_;
  /// Ladder states as of the previous Report() — the reference the
  /// flight-recorder ladder-transition events are diffed against. States
  /// only exist at Report() time (they are computed, not stored), so
  /// transitions are detected there; mutable because Report() is
  /// logically const. Guarded by mutex_.
  mutable AlertState last_overall_ = AlertState::kOk;
  mutable AlertState last_drift_ = AlertState::kOk;
  mutable AlertState last_quality_ = AlertState::kOk;
  mutable AlertState last_latency_ = AlertState::kOk;
  /// De-escalation hysteresis state per signal (see
  /// MonitorConfig::ladder_hold_reports): the currently reported rung and
  /// how many consecutive Report() calls saw a raw verdict below it.
  /// Guarded by mutex_; mutable for the same reason as last_*.
  struct DampedSignal {
    AlertState reported = AlertState::kOk;
    int hold = 0;
  };
  /// Applies the one-rung-down-per-hold rule to one signal's raw verdict
  /// and returns the state to report.
  AlertState Damp(AlertState raw, DampedSignal* signal) const;
  mutable DampedSignal damped_drift_;
  mutable DampedSignal damped_quality_;
  mutable DampedSignal damped_latency_;
  /// Channels with a non-empty reference reservoir — the only ones worth
  /// observing on the serve path.
  std::vector<int> monitored_channels_;
  DriftDetector drift_;
  QualityTracker quality_;
  obs::Histogram latency_;
  uint64_t requests_ = 0;
  uint64_t windows_ = 0;
};

}  // namespace hotspot::monitor

#endif  // HOTSPOT_MONITOR_MONITOR_H_
