#ifndef HOTSPOT_MONITOR_HEALTH_H_
#define HOTSPOT_MONITOR_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/drift.h"
#include "monitor/quality.h"

namespace hotspot::monitor {

/// Serve-latency SLO: the latency budget one Predict batch must meet and
/// the fraction of batches that must meet it before the alert ladder
/// escalates.
struct LatencySlo {
  double slo_seconds = 0.050;
  double warn_fraction = 0.99;   ///< in-SLO share below this → WARN
  double drift_fraction = 0.95;  ///< in-SLO share below this → DRIFT
};

/// Rolled-up serve-latency view computed from the monitor's obs histogram
/// (bucket-interpolated percentiles, so they are estimates, not exact
/// order statistics).
struct LatencySummary {
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double slo_seconds = 0.0;
  double in_slo_fraction = 1.0;
  AlertState state = AlertState::kOk;
};

/// Quality escalation thresholds: the rolling lift Λ a healthy forecaster
/// must sustain once enough labels matured (Λ = 1 is a random ranking).
struct QualityThresholds {
  double warn_lift = 1.5;
  double drift_lift = 1.0;
};

/// One fired alert rule, newest snapshot only (the report is a
/// point-in-time document, not an event log).
struct HealthAlert {
  std::string target;  ///< "drift/<channel>", "quality/lift", "latency/slo"
  AlertState state = AlertState::kOk;
  std::string message;
};

/// Point-in-time health snapshot of one monitored ForecastService: the
/// JSON-exportable answer to "is this bundle still safe to serve?".
struct HealthReport {
  bool monitoring_enabled = false;
  AlertState overall = AlertState::kOk;

  AlertState drift_state = AlertState::kOk;
  std::vector<DriftFinding> channel_drift;
  DriftFinding score_drift;

  AlertState quality_state = AlertState::kOk;
  QualitySummary quality;

  LatencySummary latency;

  uint64_t requests = 0;  ///< Predict batches observed
  uint64_t windows = 0;   ///< sector windows scored across those batches

  std::vector<HealthAlert> alerts;
};

/// Renders the report as a self-contained JSON object. Schema (stable
/// keys, the contract bench_micro_monitor pins):
///   monitoring_enabled, status, requests, windows,
///   drift:   {status, score:{...}, channels:[{name, status, ks_statistic,
///             p_value, live_samples, observed_total}]},
///   quality: {status, labels_total, window_count, positive_rate,
///             average_precision, lift, expected_calibration_error,
///             calibration:[{lo, hi, count, mean_score, observed_rate}]},
///   latency: {status, count, sum_seconds, p50_seconds, p99_seconds,
///             slo_seconds, in_slo_fraction},
///   alerts:  [{target, state, message}]
/// Non-finite metric values are emitted as JSON null.
std::string HealthReportToJson(const HealthReport& report);

/// Writes HealthReportToJson to `path`. Returns false on I/O error.
bool WriteHealthReportJson(const HealthReport& report,
                           const std::string& path);

}  // namespace hotspot::monitor

#endif  // HOTSPOT_MONITOR_HEALTH_H_
