#include "monitor/monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/pipeline_context.h"
#include "util/logging.h"

namespace hotspot::monitor {

namespace {

/// Linear-interpolated quantile estimate over histogram buckets (bucket b
/// spans (bounds[b-1], bounds[b]]; the overflow bucket has no upper edge,
/// so its estimate saturates at the last finite bound).
double BucketQuantile(const std::vector<double>& bounds,
                      const std::vector<uint64_t>& buckets, uint64_t count,
                      double q) {
  if (count == 0) return 0.0;
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= target && buckets[b] > 0) {
      if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      double lo = b == 0 ? 0.0 : bounds[b - 1];
      double hi = bounds[b];
      double inside = target - static_cast<double>(cumulative);
      return lo + (hi - lo) * inside / static_cast<double>(buckets[b]);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

/// Fraction of observations at or below `slo_seconds`, interpolating
/// inside the bucket the SLO edge falls into.
double InSloFraction(const std::vector<double>& bounds,
                     const std::vector<uint64_t>& buckets, uint64_t count,
                     double slo_seconds) {
  if (count == 0) return 1.0;
  double covered = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    double lo = b == 0 ? 0.0 : bounds[b - 1];
    double hi = b < bounds.size()
                    ? bounds[b]
                    : std::numeric_limits<double>::infinity();
    if (hi <= slo_seconds) {
      covered += static_cast<double>(buckets[b]);
    } else if (lo < slo_seconds && std::isfinite(hi)) {
      covered += static_cast<double>(buckets[b]) * (slo_seconds - lo) /
                 (hi - lo);
    }
  }
  return std::clamp(covered / static_cast<double>(count), 0.0, 1.0);
}

}  // namespace

ServingMonitor::ServingMonitor(const BundleFingerprints* fingerprints,
                               const MonitorConfig& config)
    : config_(config),
      drift_(fingerprints, config.drift, config.drift_window),
      quality_(config.quality), latency_(obs::DefaultLatencySeconds()) {
  HOTSPOT_CHECK_GE(config.input_sample_hours, 1);
  HOTSPOT_CHECK_LE(config.input_sample_hours, 24);
  // Only channels with a reference reservoir are ever drift-tested
  // (calendar and up-sampled daily/weekly channels carry empty
  // sketches); observing the others would be pure serve-path cost.
  for (size_t k = 0; k < fingerprints->channels.size(); ++k) {
    if (!fingerprints->channels[k].reservoir.empty()) {
      monitored_channels_.push_back(static_cast<int>(k));
    }
  }
}

void ServingMonitor::ObserveBatch(const Tensor3<float>& tensor,
                                  int hour_begin, int hour_end,
                                  const std::vector<float>& scores,
                                  double latency_seconds) {
  HOTSPOT_CHECK(hour_begin >= 0 && hour_end <= tensor.dim1() &&
                hour_begin < hour_end);
  HOTSPOT_CHECK_EQ(tensor.dim2(), drift_.num_channels());
  const int sectors =
      std::min(tensor.dim0(), static_cast<int>(scores.size()));
  // Sample the freshest day (or the whole span when shorter), at a
  // deterministic stride — no RNG, so monitoring stays reproducible.
  const int span_begin = std::max(hour_begin, hour_end - 24);
  const int span = hour_end - span_begin;
  int samples = std::min(config_.input_sample_hours, span);
  // Per-batch observation budget: refresh at most a quarter of the
  // rolling window per batch. Refilling the whole window every batch
  // buys nothing statistically (the verdict converges within a few
  // batches either way) but multiplies the serve-path cost. The
  // decimation also keeps one batch from overflowing the ring: eviction
  // would then truncate to whichever sectors were pushed last, and a
  // sector subset has a different marginal distribution than the
  // all-sector fingerprint (per-sector scale heterogeneity would read
  // as drift).
  const int batch_budget = std::max(1, config_.drift_window / 4);
  if (sectors > 0 && sectors * samples > batch_budget) {
    samples = std::max(1, batch_budget / sectors);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  windows_ += static_cast<uint64_t>(scores.size());
  for (int i = 0; i < sectors; ++i) {
    for (int s = 0; s < samples; ++s) {
      // Evenly spaced over the span, with a per-sector phase rotation
      // folded in via fixed-point stepping: across the batch every clock
      // hour gets sampled even when `samples` does not divide `span` —
      // a fixed clock-hour subset has a different marginal distribution
      // than the full-diurnal fingerprint and would falsely read as
      // drift.
      const int j =
          span_begin +
          static_cast<int>((static_cast<int64_t>(s) * sectors + i) * span /
                           (static_cast<int64_t>(samples) * sectors));
      const float* values = tensor.Slice(i, j);
      for (int k : monitored_channels_) {
        drift_.ObserveInput(k, values[k]);
      }
    }
  }
  for (float score : scores) drift_.ObserveScore(score);
  latency_.Observe(latency_seconds);
}

void ServingMonitor::RecordOutcomes(const std::vector<float>& scores,
                                    const std::vector<float>& labels) {
  HOTSPOT_CHECK_EQ(scores.size(), labels.size());
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < scores.size(); ++i) {
    quality_.Record(scores[i], labels[i]);
  }
}

AlertState ServingMonitor::Damp(AlertState raw, DampedSignal* signal) const {
  if (config_.ladder_hold_reports <= 0) return raw;
  if (static_cast<int>(raw) >= static_cast<int>(signal->reported)) {
    // Escalation (or confirmation of the current rung) is immediate and
    // resets the descent clock.
    signal->reported = raw;
    signal->hold = 0;
  } else if (++signal->hold >= config_.ladder_hold_reports) {
    signal->reported =
        static_cast<AlertState>(static_cast<int>(signal->reported) - 1);
    signal->hold = 0;
  }
  return signal->reported;
}

HealthReport ServingMonitor::Report() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthReport report;
  report.monitoring_enabled = true;
  report.requests = requests_;
  report.windows = windows_;

  report.channel_drift = drift_.EvaluateChannels();
  report.score_drift = drift_.EvaluateScores();
  report.score_drift.name = "prediction_score";
  report.drift_state = report.score_drift.state;
  for (const DriftFinding& finding : report.channel_drift) {
    report.drift_state = WorstState(report.drift_state, finding.state);
    if (finding.state != AlertState::kOk) {
      report.alerts.push_back(
          {"drift/" + finding.name, finding.state,
           "live KPI distribution departed from the training fingerprint "
           "(KS " +
               std::to_string(finding.statistic) + ")"});
    }
  }
  if (report.score_drift.state != AlertState::kOk) {
    report.alerts.push_back(
        {"drift/prediction_score", report.score_drift.state,
         "prediction-score distribution departed from the training "
         "fingerprint (KS " +
             std::to_string(report.score_drift.statistic) + ")"});
  }

  report.quality = quality_.Summarize();
  if (report.quality.window_count >= config_.quality.min_labels &&
      std::isfinite(report.quality.lift)) {
    if (report.quality.lift < config_.quality_thresholds.drift_lift) {
      report.quality_state = AlertState::kDrift;
    } else if (report.quality.lift < config_.quality_thresholds.warn_lift) {
      report.quality_state = AlertState::kWarn;
    }
    if (report.quality_state != AlertState::kOk) {
      report.alerts.push_back(
          {"quality/lift", report.quality_state,
           "rolling lift dropped to " +
               std::to_string(report.quality.lift)});
    }
  }

  std::vector<uint64_t> buckets = latency_.BucketCounts();
  report.latency.count = latency_.Count();
  report.latency.sum_seconds = latency_.Sum();
  report.latency.p50_seconds =
      BucketQuantile(latency_.bounds(), buckets, report.latency.count, 0.5);
  report.latency.p99_seconds =
      BucketQuantile(latency_.bounds(), buckets, report.latency.count, 0.99);
  report.latency.slo_seconds = config_.latency.slo_seconds;
  report.latency.in_slo_fraction =
      InSloFraction(latency_.bounds(), buckets, report.latency.count,
                    config_.latency.slo_seconds);
  if (report.latency.count > 0) {
    if (report.latency.in_slo_fraction < config_.latency.drift_fraction) {
      report.latency.state = AlertState::kDrift;
    } else if (report.latency.in_slo_fraction <
               config_.latency.warn_fraction) {
      report.latency.state = AlertState::kWarn;
    }
    if (report.latency.state != AlertState::kOk) {
      report.alerts.push_back(
          {"latency/slo", report.latency.state,
           "only " + std::to_string(report.latency.in_slo_fraction) +
               " of batches met the " +
               std::to_string(config_.latency.slo_seconds) + " s SLO"});
    }
  }

  // De-escalation hysteresis: the alerts above describe the raw evidence
  // of this snapshot, but the reported ladder states are damped — an
  // escalation lands immediately, a recovery walks down one rung per
  // `ladder_hold_reports` consecutive calmer Report() calls. The overall
  // state derives from the damped signals, so it inherits the same
  // one-rung-at-a-time descent.
  report.drift_state = Damp(report.drift_state, &damped_drift_);
  report.quality_state = Damp(report.quality_state, &damped_quality_);
  report.latency.state = Damp(report.latency.state, &damped_latency_);
  report.overall = WorstState(
      WorstState(report.drift_state, report.quality_state),
      report.latency.state);

  // Ladder-transition flight events: the states are computed on demand,
  // so a change is only observable here — diff against the previous
  // Report() (everything starts implicitly OK) and record each signal
  // that moved. Signal codes: 0 overall, 1 drift, 2 quality, 3 latency.
  if (obs::PipelineContext* ctx = obs::PipelineContext::Current()) {
    const struct {
      int signal;
      AlertState* last;
      AlertState now;
    } ladders[] = {
        {0, &last_overall_, report.overall},
        {1, &last_drift_, report.drift_state},
        {2, &last_quality_, report.quality_state},
        {3, &last_latency_, report.latency.state},
    };
    for (const auto& ladder : ladders) {
      if (*ladder.last != ladder.now) {
        ctx->flight().Record(obs::FlightEventKind::kLadderTransition,
                             ladder.signal,
                             static_cast<int64_t>(*ladder.last),
                             static_cast<int64_t>(ladder.now));
      }
    }
  }
  last_overall_ = report.overall;
  last_drift_ = report.drift_state;
  last_quality_ = report.quality_state;
  last_latency_ = report.latency.state;
  return report;
}

}  // namespace hotspot::monitor
