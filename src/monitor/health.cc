#include "monitor/health.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace hotspot::monitor {

namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// NaN/inf have no JSON literal; emit null so consumers see "absent"
/// rather than a parse error.
void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

void AppendU64(uint64_t value, std::string* out) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  *out += buffer;
}

void AppendState(AlertState state, std::string* out) {
  AppendEscaped(AlertStateName(state), out);
}

void AppendDriftFinding(const DriftFinding& finding, std::string* out) {
  *out += "{\"name\": ";
  AppendEscaped(finding.name, out);
  *out += ", \"status\": ";
  AppendState(finding.state, out);
  *out += ", \"ks_statistic\": ";
  AppendNumber(finding.statistic, out);
  *out += ", \"p_value\": ";
  AppendNumber(finding.p_value, out);
  *out += ", \"live_samples\": ";
  AppendU64(finding.live_samples, out);
  *out += ", \"observed_total\": ";
  AppendU64(finding.observed_total, out);
  *out += "}";
}

}  // namespace

std::string HealthReportToJson(const HealthReport& report) {
  std::string json;
  json.reserve(4096);
  json += "{\n  \"monitoring_enabled\": ";
  json += report.monitoring_enabled ? "true" : "false";
  json += ",\n  \"status\": ";
  AppendState(report.overall, &json);
  json += ",\n  \"requests\": ";
  AppendU64(report.requests, &json);
  json += ",\n  \"windows\": ";
  AppendU64(report.windows, &json);

  json += ",\n  \"drift\": {\"status\": ";
  AppendState(report.drift_state, &json);
  json += ", \"score\": ";
  AppendDriftFinding(report.score_drift, &json);
  json += ", \"channels\": [";
  for (size_t k = 0; k < report.channel_drift.size(); ++k) {
    if (k > 0) json += ", ";
    json += "\n    ";
    AppendDriftFinding(report.channel_drift[k], &json);
  }
  json += report.channel_drift.empty() ? "]}" : "\n  ]}";

  json += ",\n  \"quality\": {\"status\": ";
  AppendState(report.quality_state, &json);
  json += ", \"labels_total\": ";
  AppendU64(report.quality.labels_total, &json);
  json += ", \"window_count\": ";
  AppendNumber(report.quality.window_count, &json);
  json += ", \"positive_rate\": ";
  AppendNumber(report.quality.positive_rate, &json);
  json += ", \"average_precision\": ";
  AppendNumber(report.quality.average_precision, &json);
  json += ", \"lift\": ";
  AppendNumber(report.quality.lift, &json);
  json += ", \"expected_calibration_error\": ";
  AppendNumber(report.quality.expected_calibration_error, &json);
  json += ", \"calibration\": [";
  for (size_t b = 0; b < report.quality.calibration.size(); ++b) {
    const CalibrationBin& bin = report.quality.calibration[b];
    if (b > 0) json += ", ";
    json += "\n    {\"lo\": ";
    AppendNumber(bin.lo, &json);
    json += ", \"hi\": ";
    AppendNumber(bin.hi, &json);
    json += ", \"count\": ";
    AppendU64(bin.count, &json);
    json += ", \"mean_score\": ";
    AppendNumber(bin.mean_score, &json);
    json += ", \"observed_rate\": ";
    AppendNumber(bin.observed_rate, &json);
    json += "}";
  }
  json += report.quality.calibration.empty() ? "]}" : "\n  ]}";

  json += ",\n  \"latency\": {\"status\": ";
  AppendState(report.latency.state, &json);
  json += ", \"count\": ";
  AppendU64(report.latency.count, &json);
  json += ", \"sum_seconds\": ";
  AppendNumber(report.latency.sum_seconds, &json);
  json += ", \"p50_seconds\": ";
  AppendNumber(report.latency.p50_seconds, &json);
  json += ", \"p99_seconds\": ";
  AppendNumber(report.latency.p99_seconds, &json);
  json += ", \"slo_seconds\": ";
  AppendNumber(report.latency.slo_seconds, &json);
  json += ", \"in_slo_fraction\": ";
  AppendNumber(report.latency.in_slo_fraction, &json);
  json += "}";

  json += ",\n  \"alerts\": [";
  for (size_t a = 0; a < report.alerts.size(); ++a) {
    const HealthAlert& alert = report.alerts[a];
    if (a > 0) json += ", ";
    json += "\n    {\"target\": ";
    AppendEscaped(alert.target, &json);
    json += ", \"state\": ";
    AppendState(alert.state, &json);
    json += ", \"message\": ";
    AppendEscaped(alert.message, &json);
    json += "}";
  }
  json += report.alerts.empty() ? "]" : "\n  ]";
  json += "\n}\n";
  return json;
}

bool WriteHealthReportJson(const HealthReport& report,
                           const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << HealthReportToJson(report);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace hotspot::monitor
