#include "monitor/fingerprint.h"

#include <algorithm>
#include <cmath>

#include "stats/percentile.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hotspot::monitor {

std::vector<double> SketchQuantileGrid() {
  return {1, 5, 10, 25, 50, 75, 90, 95, 99};
}

DistributionSketch BuildSketch(std::string name,
                               const std::vector<float>& values,
                               int reservoir_capacity, uint64_t seed) {
  HOTSPOT_CHECK_GE(reservoir_capacity, 1);
  DistributionSketch sketch;
  sketch.name = std::move(name);
  sketch.quantile_ps = SketchQuantileGrid();
  sketch.quantiles = Percentiles(values, sketch.quantile_ps);
  sketch.mean = Mean(values);
  sketch.stddev = StdDev(values);

  // Algorithm-R reservoir over the finite values, then sorted so the KS
  // merge pass can consume it directly.
  Rng rng(seed);
  uint64_t seen = 0;
  for (float value : values) {
    if (!std::isfinite(value)) continue;
    ++seen;
    if (sketch.reservoir.size() <
        static_cast<size_t>(reservoir_capacity)) {
      sketch.reservoir.push_back(value);
    } else {
      uint64_t slot = static_cast<uint64_t>(
          rng.UniformInt(0, static_cast<int64_t>(seen) - 1));
      if (slot < static_cast<uint64_t>(reservoir_capacity)) {
        sketch.reservoir[static_cast<size_t>(slot)] = value;
      }
    }
  }
  sketch.count = seen;
  std::sort(sketch.reservoir.begin(), sketch.reservoir.end());
  return sketch;
}

namespace {

void EncodeSketch(const DistributionSketch& sketch,
                  serialize::ByteWriter* writer) {
  writer->WriteString(sketch.name);
  writer->WriteU64(sketch.count);
  writer->WriteF64(sketch.mean);
  writer->WriteF64(sketch.stddev);
  writer->WriteF64Vector(sketch.quantile_ps);
  writer->WriteF64Vector(sketch.quantiles);
  writer->WriteF32Vector(sketch.reservoir);
}

bool DecodeSketch(serialize::ByteReader* reader,
                  DistributionSketch* sketch) {
  sketch->name = reader->ReadString();
  sketch->count = reader->ReadU64();
  sketch->mean = reader->ReadF64();
  sketch->stddev = reader->ReadF64();
  sketch->quantile_ps = reader->ReadF64Vector();
  sketch->quantiles = reader->ReadF64Vector();
  sketch->reservoir = reader->ReadF32Vector();
  if (!reader->ok()) return false;
  if (sketch->quantiles.size() != sketch->quantile_ps.size()) {
    reader->Fail("fingerprint sketch quantile grid/value size mismatch");
    return false;
  }
  if (!std::is_sorted(sketch->reservoir.begin(),
                      sketch->reservoir.end())) {
    reader->Fail("fingerprint sketch reservoir is not sorted");
    return false;
  }
  return true;
}

}  // namespace

void EncodeFingerprints(const BundleFingerprints& fingerprints,
                        serialize::ByteWriter* writer) {
  writer->WriteI32(fingerprints.first_hour);
  writer->WriteI32(fingerprints.last_hour);
  writer->WriteU32(static_cast<uint32_t>(fingerprints.channels.size()));
  for (const DistributionSketch& sketch : fingerprints.channels) {
    EncodeSketch(sketch, writer);
  }
  EncodeSketch(fingerprints.scores, writer);
}

bool DecodeFingerprints(serialize::ByteReader* reader,
                        BundleFingerprints* fingerprints) {
  fingerprints->first_hour = reader->ReadI32();
  fingerprints->last_hour = reader->ReadI32();
  uint32_t num_channels = reader->ReadU32();
  if (!reader->ok()) return false;
  if (fingerprints->first_hour < 0 ||
      fingerprints->last_hour < fingerprints->first_hour) {
    reader->Fail("fingerprint hour span out of range");
    return false;
  }
  // One sketch costs well over a byte; gate before the resize so a
  // corrupted count cannot drive a huge allocation.
  if (num_channels > reader->remaining()) {
    reader->Fail("fingerprint channel count exceeds payload");
    return false;
  }
  fingerprints->channels.resize(num_channels);
  for (DistributionSketch& sketch : fingerprints->channels) {
    if (!DecodeSketch(reader, &sketch)) return false;
  }
  return DecodeSketch(reader, &fingerprints->scores);
}

}  // namespace hotspot::monitor
