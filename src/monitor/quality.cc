#include "monitor/quality.h"

#include <algorithm>
#include <cmath>

#include "stats/average_precision.h"
#include "util/logging.h"

namespace hotspot::monitor {

QualityTracker::QualityTracker(const QualityConfig& config)
    : config_(config) {
  HOTSPOT_CHECK_GE(config.window, 1);
  HOTSPOT_CHECK_GE(config.calibration_bins, 1);
  scores_.reserve(static_cast<size_t>(config.window));
  labels_.reserve(static_cast<size_t>(config.window));
}

void QualityTracker::Record(float score, float label) {
  if (!std::isfinite(score) || !std::isfinite(label)) return;
  float binary = label != 0.0f ? 1.0f : 0.0f;
  ++total_;
  if (scores_.size() < static_cast<size_t>(config_.window)) {
    scores_.push_back(score);
    labels_.push_back(binary);
    return;
  }
  scores_[next_] = score;
  labels_[next_] = binary;
  next_ = (next_ + 1) % static_cast<size_t>(config_.window);
}

QualitySummary QualityTracker::Summarize() const {
  QualitySummary summary;
  summary.labels_total = total_;
  summary.window_count = static_cast<int>(scores_.size());
  summary.positive_rate = std::nan("");
  summary.average_precision = std::nan("");
  summary.lift = std::nan("");
  summary.expected_calibration_error = std::nan("");

  const int bins = config_.calibration_bins;
  summary.calibration.resize(static_cast<size_t>(bins));
  for (int b = 0; b < bins; ++b) {
    CalibrationBin& bin = summary.calibration[static_cast<size_t>(b)];
    bin.lo = static_cast<double>(b) / bins;
    bin.hi = static_cast<double>(b + 1) / bins;
  }
  if (scores_.empty()) return summary;

  uint64_t positives = 0;
  std::vector<double> bin_score_sum(static_cast<size_t>(bins), 0.0);
  std::vector<uint64_t> bin_positives(static_cast<size_t>(bins), 0);
  for (size_t i = 0; i < scores_.size(); ++i) {
    if (labels_[i] != 0.0f) ++positives;
    // Scores are probabilities in [0, 1]; clamp so boundary values and
    // baseline-style rankings outside the unit interval still land in a
    // bin instead of indexing out of range.
    double clamped = std::clamp(static_cast<double>(scores_[i]), 0.0, 1.0);
    int b = std::min(static_cast<int>(clamped * bins), bins - 1);
    CalibrationBin& bin = summary.calibration[static_cast<size_t>(b)];
    ++bin.count;
    bin_score_sum[static_cast<size_t>(b)] += clamped;
    if (labels_[i] != 0.0f) ++bin_positives[static_cast<size_t>(b)];
  }
  summary.positive_rate =
      static_cast<double>(positives) / static_cast<double>(scores_.size());

  summary.average_precision = AveragePrecision(labels_, scores_);
  // A random ranking's expected AP is the positive rate, so the rolling
  // lift Λ needs no baseline model run.
  summary.lift = Lift(summary.average_precision, summary.positive_rate);

  double ece = 0.0;
  for (int b = 0; b < bins; ++b) {
    CalibrationBin& bin = summary.calibration[static_cast<size_t>(b)];
    if (bin.count == 0) continue;
    bin.mean_score =
        bin_score_sum[static_cast<size_t>(b)] / static_cast<double>(bin.count);
    bin.observed_rate = static_cast<double>(bin_positives[static_cast<size_t>(b)]) /
                        static_cast<double>(bin.count);
    ece += (static_cast<double>(bin.count) /
            static_cast<double>(scores_.size())) *
           std::fabs(bin.mean_score - bin.observed_rate);
  }
  summary.expected_calibration_error = ece;
  return summary;
}

}  // namespace hotspot::monitor
