#ifndef HOTSPOT_MONITOR_FINGERPRINT_H_
#define HOTSPOT_MONITOR_FINGERPRINT_H_

#include <memory>
#include <string>
#include <vector>

#include "serialize/binary_format.h"

namespace hotspot::monitor {

/// Compact summary of one scalar distribution as it looked at training
/// time: a percentile grid, a uniform reservoir sample (the two-sample-KS
/// reference the drift detector tests live traffic against), and the first
/// two moments. Missing (NaN) values are excluded before sketching;
/// `count` is the number of finite values summarized.
struct DistributionSketch {
  std::string name;
  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> quantile_ps;  ///< percentile grid, ascending in [0,100]
  std::vector<double> quantiles;    ///< value at each grid point
  std::vector<float> reservoir;     ///< uniform sample, sorted ascending

  bool operator==(const DistributionSketch&) const = default;
};

/// The percentile grid every sketch is built on.
std::vector<double> SketchQuantileGrid();

/// Builds a sketch of `values` (NaNs dropped). The reservoir is a uniform
/// sample of at most `reservoir_capacity` finite values, drawn with the
/// deterministic `seed` so repeated training runs produce identical
/// bundles. An all-NaN or empty input yields a sketch with count 0.
DistributionSketch BuildSketch(std::string name,
                               const std::vector<float>& values,
                               int reservoir_capacity, uint64_t seed);

/// Reference fingerprints of one trained bundle: a sketch per feature
/// channel over the exact hour span the training windows covered, plus a
/// sketch of the training-time prediction scores. Serialized into the
/// ForecastBundle as its own versioned section, so a serving process can
/// detect drift without access to the training data.
///
/// Channels whose hourly values are not a stationary distribution —
/// calendar clock features and the piecewise-constant up-sampled
/// daily/weekly channels — carry an empty (count 0) sketch: present so
/// indices line up with the tensor, but never drift-tested.
struct BundleFingerprints {
  int first_hour = 0;  ///< training-window span fingerprinted: [first, last)
  int last_hour = 0;
  std::vector<DistributionSketch> channels;  ///< one per feature channel
  DistributionSketch scores;                 ///< training-time predictions

  bool operator==(const BundleFingerprints&) const = default;
};

/// Fingerprint payload codec (the bundle's section framing and section
/// version live in serialize/bundle.cc). Decode returns false with the
/// reason in reader->error().
void EncodeFingerprints(const BundleFingerprints& fingerprints,
                        serialize::ByteWriter* writer);
bool DecodeFingerprints(serialize::ByteReader* reader,
                        BundleFingerprints* fingerprints);

}  // namespace hotspot::monitor

#endif  // HOTSPOT_MONITOR_FINGERPRINT_H_
