#include "monitor/drift.h"

#include <cmath>

#include "stats/ks_test.h"
#include "util/logging.h"

namespace hotspot::monitor {

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "OK";
    case AlertState::kWarn:
      return "WARN";
    case AlertState::kDrift:
      return "DRIFT";
  }
  return "unknown";
}

RollingWindow::RollingWindow(int capacity)
    : capacity_(static_cast<size_t>(capacity)) {
  HOTSPOT_CHECK_GE(capacity, 1);
  values_.reserve(capacity_);
}

std::vector<double> RollingWindow::Values() const {
  return std::vector<double>(values_.begin(), values_.end());
}

DriftDetector::DriftDetector(const BundleFingerprints* fingerprints,
                             const DriftThresholds& thresholds,
                             int window_capacity)
    : fingerprints_(fingerprints), thresholds_(thresholds),
      scores_(window_capacity) {
  HOTSPOT_CHECK(fingerprints != nullptr);
  channels_.reserve(fingerprints->channels.size());
  for (size_t k = 0; k < fingerprints->channels.size(); ++k) {
    channels_.emplace_back(window_capacity);
  }
}

DriftFinding DriftDetector::Evaluate(
    const RollingWindow& window,
    const DistributionSketch& reference) const {
  DriftFinding finding;
  finding.name = reference.name;
  finding.observed_total = window.total();

  std::vector<double> live = window.Values();
  uint64_t finite = 0;
  for (double v : live) {
    if (std::isfinite(v)) ++finite;
  }
  finding.live_samples = finite;
  // No reference (constant training channel aside, an empty reservoir
  // means the fingerprint saw no finite data) or too little live data:
  // no evidence either way.
  if (reference.reservoir.empty() ||
      finite < static_cast<uint64_t>(thresholds_.min_samples)) {
    return finding;
  }

  std::vector<double> ref(reference.reservoir.begin(),
                          reference.reservoir.end());
  KsResult ks = KolmogorovSmirnovTestMasked(std::move(live),
                                            std::move(ref));
  finding.statistic = ks.statistic;
  finding.p_value = ks.p_value;
  if (ks.p_value <= thresholds_.drift_p_value &&
      ks.statistic >= thresholds_.drift_statistic) {
    finding.state = AlertState::kDrift;
  } else if (ks.p_value <= thresholds_.warn_p_value &&
             ks.statistic >= thresholds_.warn_statistic) {
    finding.state = AlertState::kWarn;
  }
  return finding;
}

DriftFinding DriftDetector::EvaluateChannel(int channel) const {
  HOTSPOT_CHECK(channel >= 0 && channel < num_channels());
  return Evaluate(channels_[static_cast<size_t>(channel)],
                  fingerprints_->channels[static_cast<size_t>(channel)]);
}

std::vector<DriftFinding> DriftDetector::EvaluateChannels() const {
  std::vector<DriftFinding> findings;
  findings.reserve(channels_.size());
  for (int k = 0; k < num_channels(); ++k) {
    findings.push_back(EvaluateChannel(k));
  }
  return findings;
}

DriftFinding DriftDetector::EvaluateScores() const {
  return Evaluate(scores_, fingerprints_->scores);
}

AlertState DriftDetector::OverallState() const {
  AlertState state = EvaluateScores().state;
  for (int k = 0; k < num_channels(); ++k) {
    state = WorstState(state, EvaluateChannel(k).state);
  }
  return state;
}

}  // namespace hotspot::monitor
