#ifndef HOTSPOT_MONITOR_DRIFT_H_
#define HOTSPOT_MONITOR_DRIFT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/fingerprint.h"

namespace hotspot::monitor {

/// Three-level alert ladder used by every monitored signal (drift,
/// quality, latency). Ordered so "worse" compares greater.
enum class AlertState { kOk = 0, kWarn = 1, kDrift = 2 };

const char* AlertStateName(AlertState state);

inline AlertState WorstState(AlertState a, AlertState b) {
  return a > b ? a : b;
}

/// Escalation thresholds of the two-sample KS drift test. A signal
/// escalates only when the p-value is small AND the statistic is large:
/// with hundreds of live samples against a dense reference, tiny
/// distribution wobbles reach significance long before they matter
/// operationally, so the effect-size gate keeps WARN/DRIFT meaningful.
struct DriftThresholds {
  int min_samples = 32;          ///< below this the verdict is always OK
  double warn_p_value = 1e-2;
  double warn_statistic = 0.15;
  double drift_p_value = 1e-3;
  double drift_statistic = 0.25;
};

/// One drift verdict: the signal name, the KS evidence, and how much live
/// data it rests on.
struct DriftFinding {
  std::string name;
  AlertState state = AlertState::kOk;
  double statistic = 0.0;
  double p_value = 1.0;
  uint64_t live_samples = 0;     ///< finite values in the rolling window
  uint64_t observed_total = 0;   ///< values ever pushed at this signal
};

/// Fixed-capacity ring of the most recent observations of one signal.
/// Push is on the serve path (once per sampled tensor cell), so it stays
/// inline and branch-cheap.
class RollingWindow {
 public:
  explicit RollingWindow(int capacity);

  void Push(float value) {
    ++total_;
    if (values_.size() < capacity_) {
      values_.push_back(value);
      return;
    }
    values_[next_] = value;
    if (++next_ == capacity_) next_ = 0;
  }
  /// The retained values as doubles (insertion order not preserved).
  std::vector<double> Values() const;
  int size() const { return static_cast<int>(values_.size()); }
  uint64_t total() const { return total_; }

 private:
  size_t capacity_;
  size_t next_ = 0;
  uint64_t total_ = 0;
  std::vector<float> values_;
};

/// Per-bundle drift detector: one rolling window per feature channel plus
/// one for the prediction scores, each tested (on demand, not per batch)
/// against the bundle's training-time fingerprint with the NaN-masked
/// two-sample KS test. Not thread-safe; ServingMonitor serializes access.
class DriftDetector {
 public:
  /// `fingerprints` must outlive the detector.
  DriftDetector(const BundleFingerprints* fingerprints,
                const DriftThresholds& thresholds, int window_capacity);

  int num_channels() const { return static_cast<int>(channels_.size()); }

  void ObserveInput(int channel, float value) {
    channels_[static_cast<size_t>(channel)].Push(value);
  }
  void ObserveScore(float value) { scores_.Push(value); }

  /// KS verdict of one channel's rolling window against its fingerprint.
  DriftFinding EvaluateChannel(int channel) const;
  std::vector<DriftFinding> EvaluateChannels() const;
  DriftFinding EvaluateScores() const;

  /// Fleet-level aggregation: the worst state across all channels and the
  /// score distribution.
  AlertState OverallState() const;

 private:
  DriftFinding Evaluate(const RollingWindow& window,
                        const DistributionSketch& reference) const;

  const BundleFingerprints* fingerprints_;
  DriftThresholds thresholds_;
  std::vector<RollingWindow> channels_;
  RollingWindow scores_;
};

}  // namespace hotspot::monitor

#endif  // HOTSPOT_MONITOR_DRIFT_H_
