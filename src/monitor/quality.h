#ifndef HOTSPOT_MONITOR_QUALITY_H_
#define HOTSPOT_MONITOR_QUALITY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hotspot::monitor {

/// Sizing of the delayed-label quality tracker.
struct QualityConfig {
  int window = 2048;         ///< (score, label) pairs kept for the metrics
  int calibration_bins = 10; ///< equal-width score bins over [0, 1]
  int min_labels = 64;       ///< below this no quality verdict is issued
};

/// One reliability bin of the calibration diagram: the mean predicted
/// score vs the observed hot-spot rate of the labels that landed in it.
struct CalibrationBin {
  double lo = 0.0;             ///< bin covers scores in [lo, hi)
  double hi = 0.0;
  uint64_t count = 0;
  double mean_score = 0.0;     ///< 0 when the bin is empty
  double observed_rate = 0.0;  ///< 0 when the bin is empty
};

/// Rolling model-quality metrics over the matured labels (the paper's
/// Sec. IV-B metrics, computed online): average precision ψ of the
/// score ranking, lift Λ over the random baseline (whose ψ is the
/// positive rate), and a reliability decomposition with its expected
/// calibration error. NaN metrics mean "not computable" (no positives,
/// or no labels at all).
struct QualitySummary {
  uint64_t labels_total = 0;  ///< feedback pairs ever recorded
  int window_count = 0;       ///< pairs currently in the rolling window
  double positive_rate = 0.0;
  double average_precision = 0.0;
  double lift = 0.0;
  double expected_calibration_error = 0.0;
  std::vector<CalibrationBin> calibration;
};

/// Accumulates delayed ground-truth feedback and summarizes it on demand.
/// Not thread-safe; ServingMonitor serializes access.
class QualityTracker {
 public:
  explicit QualityTracker(const QualityConfig& config);

  /// Records one matured (predicted score, true label) pair. Labels are
  /// binary; any nonzero finite label counts as hot.
  void Record(float score, float label);

  uint64_t labels_total() const { return total_; }
  const QualityConfig& config() const { return config_; }

  QualitySummary Summarize() const;

 private:
  QualityConfig config_;
  uint64_t total_ = 0;
  size_t next_ = 0;
  std::vector<float> scores_;  ///< ring, parallel to labels_
  std::vector<float> labels_;
};

}  // namespace hotspot::monitor

#endif  // HOTSPOT_MONITOR_QUALITY_H_
