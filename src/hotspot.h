#ifndef HOTSPOT_HOTSPOT_H_
#define HOTSPOT_HOTSPOT_H_

/// Umbrella header: the public facade of the hot-spot forecasting library.
/// Applications (see examples/) include only this; the individual headers
/// below stay available for targeted includes inside the library itself.
///
///   simnet   — synthetic network generation (simnet::GenerateNetwork)
///   study    — the end-to-end preprocessing pipeline (BuildStudy)
///   forecast — models and the per-cell protocol (Forecaster, ModelKind)
///   eval     — ψ/lift scoring and sweeps (EvaluationRunner, RunSweep)
///   obs      — metrics, trace spans, snapshots (obs::PipelineContext)
///   serve    — model persistence and warm-start serving (ForecastBundle,
///              ForecastService)
///   monitor  — online drift / quality / latency health for the serving
///              path (ServingMonitor, HealthReport)
///   stream   — streaming KPI ingestion and incremental features feeding
///              the serving path end to end (KpiStreamIngestor,
///              IncrementalFeatureEngine)
///   pipeline — the staged, backpressured serving runtime behind the
///              unified facade (pipeline::ServingPipeline)
///   fleet    — sharded multi-replica serving with admission control and
///              RCU hot bundle swap (fleet::ForecastFleet, ShardMap)
///   adapt    — drift-triggered continual learning: shadow deployment and
///              champion/challenger promotion (adapt::AdaptationController)

#include "adapt/adaptation_controller.h"
#include "adapt/capture.h"
#include "adapt/champion_challenger.h"
#include "core/config.h"
#include "core/dynamics.h"
#include "core/serving_ops.h"
#include "core/evaluation.h"
#include "core/forecast_service.h"
#include "core/forecaster.h"
#include "core/importance.h"
#include "core/labels.h"
#include "core/score.h"
#include "core/study.h"
#include "core/task.h"
#include "fleet/forecast_fleet.h"
#include "fleet/shard_map.h"
#include "io/csv_io.h"
#include "monitor/health.h"
#include "monitor/monitor.h"
#include "nn/imputer.h"
#include "obs/metrics.h"
#include "obs/pipeline_context.h"
#include "obs/snapshot.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "pipeline/serving_pipeline.h"
#include "serialize/bundle.h"
#include "serialize/model_io.h"
#include "simnet/generator.h"
#include "stats/average_precision.h"
#include "stats/confidence.h"
#include "stream/incremental_features.h"
#include "stream/kpi_stream.h"
#include "tensor/temporal.h"
#include "util/csv.h"

#endif  // HOTSPOT_HOTSPOT_H_
