#ifndef HOTSPOT_OBS_TELEMETRY_H_
#define HOTSPOT_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/pipeline_context.h"

namespace hotspot::obs {

/// True when `name` matches the project's metric-name charset
/// `[a-zA-Z_][a-zA-Z0-9_/]*` — ASCII word characters with `/` as the
/// namespace separator, which is exactly the set ToPrometheusName can
/// mangle reversibly. Enforced by the obs_test name lint over every
/// registered counter/gauge/histogram.
bool IsValidMetricName(std::string_view name);

/// Reversible Prometheus name mangling: `/` → `:` (colons are legal in
/// Prometheus metric names and cannot appear in ours, so the mapping is a
/// bijection — unlike the usual `_` flattening, which would collide
/// "fleet/rows_routed" with a hypothetical "fleet_rows/routed").
std::string ToPrometheusName(std::string_view name);
/// Exact inverse of ToPrometheusName.
std::string FromPrometheusName(std::string_view name);

/// One exported metric interval — the structured form behind both rendered
/// sinks, and what `on_frame` callbacks receive. Schema "hotspot.telemetry.v1":
///
///   frame      := {"schema","frame","t_ms","interval_s",
///                  "counters":[counter…],"gauges":[gauge…],
///                  "histograms":[histogram…],"flight":flight}
///   counter    := {"name","total","delta","rate"}          (rate = delta/s)
///   gauge      := {"name","value"}
///   histogram  := {"name","count","delta","sum","p50","p99"
///                  [,"exemplar","exemplar_value"]}
///   flight     := {"recorded","dropped"}
///
/// Deltas and rates are against the previous frame from the same exporter
/// (the first frame's deltas equal the totals); quantiles are over the
/// cumulative distribution, the Prometheus histogram_quantile convention
/// via obs::HistogramQuantile.
struct TelemetryFrame {
  struct CounterSample {
    std::string name;
    uint64_t total = 0;
    uint64_t delta = 0;
    double rate = 0.0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    uint64_t count = 0;
    uint64_t delta = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    bool has_exemplar = false;
    int64_t exemplar = 0;
    double exemplar_value = 0.0;
  };

  uint64_t index = 0;        ///< 0-based frame number from this exporter
  uint64_t t_ms = 0;         ///< steady-clock ms since exporter start
  double interval_seconds = 0.0;  ///< wall time since the previous frame
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  uint64_t flight_recorded = 0;
  uint64_t flight_dropped = 0;
};

/// One NDJSON line (no interior newlines) in the frame schema above.
std::string FrameToJsonLine(const TelemetryFrame& frame);
/// Prometheus text exposition (one `# TYPE`-annotated family per metric,
/// cumulative `_bucket{le=…}` lines for histograms, names through
/// ToPrometheusName).
std::string FrameToPrometheusText(const TelemetryFrame& frame);

/// Everything a TelemetryExporter is configured by.
struct TelemetryOptions {
  /// Sampling period of the background thread. The 1 s default is the
  /// production cadence the <2 % pipeline-overhead budget is measured at;
  /// tests shrink it to milliseconds.
  std::chrono::milliseconds period{1000};
  /// Append one NDJSON frame line per sample to this file (empty = off).
  std::string json_path;
  /// Append one Prometheus text frame per sample to this file (empty =
  /// off). Each frame is preceded by a `# hotspot frame <n>` marker line.
  std::string prometheus_path;
  /// Write the NDJSON frame line to stderr as well — the quick-start sink.
  bool to_stderr = false;
  /// Structured delivery: called once per frame from the exporter thread.
  std::function<void(const TelemetryFrame&)> on_frame;
  /// Emit one final frame from Stop()/the destructor, so short-lived runs
  /// always export their totals.
  bool final_frame_on_stop = true;
};

/// Background telemetry exporter: a thread that periodically samples a
/// PipelineContext's MetricsRegistry (and flight-recorder totals) into
/// TelemetryFrames — deltas, per-second rates, histogram p50/p99 — and
/// appends them to the configured sinks. Sampling is strictly read-only
/// and lock-light (the registry's own per-name mutex plus merge-on-read
/// shard sums), so a live serving stack pays for telemetry only in memory
/// bandwidth: predictions stay bitwise identical with an exporter running
/// (tests/telemetry_test.cc pins this across the thread matrix).
///
/// The context must outlive the exporter. Stop() (or the destructor)
/// joins the thread; SampleNow() forces one synchronous frame at any
/// time, which is how tests get deterministic frame boundaries.
class TelemetryExporter {
 public:
  TelemetryExporter(const PipelineContext* context,
                    const TelemetryOptions& options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Samples one frame on the calling thread (serialized against the
  /// background thread) and returns it after sink delivery.
  TelemetryFrame SampleNow();

  /// Stops the background thread, emitting the final frame when
  /// configured. Idempotent.
  void Stop();

  /// Frames emitted so far (background + SampleNow).
  uint64_t frames() const {
    return frames_.load(std::memory_order_acquire);
  }

 private:
  void Loop();
  TelemetryFrame Sample();
  void Deliver(const TelemetryFrame& frame);

  const PipelineContext* context_;
  TelemetryOptions options_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_sample_;

  std::mutex sample_mutex_;  ///< serializes Sample() + sink writes
  std::map<std::string, uint64_t> last_counters_;
  std::map<std::string, uint64_t> last_histogram_counts_;
  uint64_t frame_index_ = 0;
  std::atomic<uint64_t> frames_{0};
  std::FILE* json_file_ = nullptr;
  std::FILE* prometheus_file_ = nullptr;

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace hotspot::obs

#endif  // HOTSPOT_OBS_TELEMETRY_H_
