#include "obs/telemetry.h"

#include <cinttypes>
#include <sstream>
#include <utility>

#include "obs/snapshot.h"
#include "util/logging.h"

namespace hotspot::obs {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  const char first = name[0];
  if (!(first == '_' || (first >= 'a' && first <= 'z') ||
        (first >= 'A' && first <= 'Z'))) {
    return false;
  }
  for (size_t i = 1; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok = c == '_' || c == '/' || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9');
    if (!ok) return false;
  }
  return true;
}

std::string ToPrometheusName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '/') c = ':';
  }
  return out;
}

std::string FromPrometheusName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == ':') c = '/';
  }
  return out;
}

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string FrameToJsonLine(const TelemetryFrame& frame) {
  std::ostringstream out;
  out << "{\"schema\":\"hotspot.telemetry.v1\",\"frame\":" << frame.index
      << ",\"t_ms\":" << frame.t_ms
      << ",\"interval_s\":" << FormatDouble(frame.interval_seconds)
      << ",\"counters\":[";
  for (size_t i = 0; i < frame.counters.size(); ++i) {
    const TelemetryFrame::CounterSample& c = frame.counters[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << c.name << "\",\"total\":" << c.total
        << ",\"delta\":" << c.delta << ",\"rate\":" << FormatDouble(c.rate)
        << "}";
  }
  out << "],\"gauges\":[";
  for (size_t i = 0; i < frame.gauges.size(); ++i) {
    const TelemetryFrame::GaugeSample& g = frame.gauges[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << g.name
        << "\",\"value\":" << FormatDouble(g.value) << "}";
  }
  out << "],\"histograms\":[";
  for (size_t i = 0; i < frame.histograms.size(); ++i) {
    const TelemetryFrame::HistogramSample& h = frame.histograms[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << h.name << "\",\"count\":" << h.count
        << ",\"delta\":" << h.delta << ",\"sum\":" << FormatDouble(h.sum)
        << ",\"p50\":" << FormatDouble(h.p50)
        << ",\"p99\":" << FormatDouble(h.p99);
    if (h.has_exemplar) {
      out << ",\"exemplar\":" << h.exemplar
          << ",\"exemplar_value\":" << FormatDouble(h.exemplar_value);
    }
    out << "}";
  }
  out << "],\"flight\":{\"recorded\":" << frame.flight_recorded
      << ",\"dropped\":" << frame.flight_dropped << "}}";
  return out.str();
}

std::string FrameToPrometheusText(const TelemetryFrame& frame) {
  // The text exposition needs the full bucket layout, which the frame
  // deliberately does not carry (frames are deltas-first); histograms are
  // exported as <name>_count / <name>_sum plus the quantile gauges the
  // frame already computed. Counters keep their raw names — the exporter
  // documents that rule rather than silently appending `_total`.
  std::ostringstream out;
  out << "# hotspot frame " << frame.index << " t_ms " << frame.t_ms << "\n";
  for (const TelemetryFrame::CounterSample& c : frame.counters) {
    const std::string name = ToPrometheusName(c.name);
    out << "# TYPE " << name << " counter\n"
        << name << " " << c.total << "\n";
  }
  for (const TelemetryFrame::GaugeSample& g : frame.gauges) {
    const std::string name = ToPrometheusName(g.name);
    out << "# TYPE " << name << " gauge\n"
        << name << " " << FormatDouble(g.value) << "\n";
  }
  for (const TelemetryFrame::HistogramSample& h : frame.histograms) {
    const std::string name = ToPrometheusName(h.name);
    out << "# TYPE " << name << " summary\n"
        << name << "{quantile=\"0.5\"} " << FormatDouble(h.p50) << "\n"
        << name << "{quantile=\"0.99\"} " << FormatDouble(h.p99) << "\n"
        << name << "_sum " << FormatDouble(h.sum) << "\n"
        << name << "_count " << h.count << "\n";
  }
  return out.str();
}

TelemetryExporter::TelemetryExporter(const PipelineContext* context,
                                     const TelemetryOptions& options)
    : context_(context),
      options_(options),
      start_(std::chrono::steady_clock::now()),
      last_sample_(start_) {
  HOTSPOT_CHECK(context_ != nullptr);
  if (!options_.json_path.empty()) {
    json_file_ = std::fopen(options_.json_path.c_str(), "a");
  }
  if (!options_.prometheus_path.empty()) {
    prometheus_file_ = std::fopen(options_.prometheus_path.c_str(), "a");
  }
  thread_ = std::thread([this] { Loop(); });
}

TelemetryExporter::~TelemetryExporter() {
  Stop();
  if (json_file_ != nullptr) std::fclose(json_file_);
  if (prometheus_file_ != nullptr) std::fclose(prometheus_file_);
}

void TelemetryExporter::Loop() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, options_.period);
    if (stop_requested_) break;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

void TelemetryExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) return;
    stop_requested_ = true;
    stopped_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (options_.final_frame_on_stop) SampleNow();
}

TelemetryFrame TelemetryExporter::SampleNow() {
  std::lock_guard<std::mutex> lock(sample_mutex_);
  TelemetryFrame frame = Sample();
  Deliver(frame);
  frames_.fetch_add(1, std::memory_order_acq_rel);
  return frame;
}

TelemetryFrame TelemetryExporter::Sample() {
  const auto now = std::chrono::steady_clock::now();
  TelemetryFrame frame;
  frame.index = frame_index_++;
  frame.t_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count());
  frame.interval_seconds =
      std::chrono::duration<double>(now - last_sample_).count();
  last_sample_ = now;
  const double interval =
      frame.interval_seconds > 0.0 ? frame.interval_seconds : 1.0;

  const MetricsRegistry& metrics = context_->metrics();
  for (const auto& [name, counter] : metrics.Counters()) {
    TelemetryFrame::CounterSample sample;
    sample.name = name;
    sample.total = counter->Total();
    uint64_t& last = last_counters_[name];
    // Reset()-between-frames makes a total run backwards; clamp the delta
    // to zero rather than wrapping.
    sample.delta = sample.total >= last ? sample.total - last : 0;
    last = sample.total;
    sample.rate = static_cast<double>(sample.delta) / interval;
    frame.counters.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : metrics.Gauges()) {
    frame.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, histogram] : metrics.Histograms()) {
    TelemetryFrame::HistogramSample sample;
    sample.name = name;
    Snapshot::HistogramSample dist;
    dist.bounds = histogram->bounds();
    dist.buckets = histogram->BucketCounts();
    dist.count = histogram->Count();
    dist.sum = histogram->Sum();
    sample.count = dist.count;
    sample.sum = dist.sum;
    uint64_t& last = last_histogram_counts_[name];
    sample.delta = sample.count >= last ? sample.count - last : 0;
    last = sample.count;
    sample.p50 = HistogramQuantile(dist, 0.5);
    sample.p99 = HistogramQuantile(dist, 0.99);
    sample.has_exemplar =
        histogram->LastExemplar(&sample.exemplar, &sample.exemplar_value);
    frame.histograms.push_back(std::move(sample));
  }
  frame.flight_recorded = context_->flight().recorded();
  frame.flight_dropped = context_->flight().dropped();
  return frame;
}

void TelemetryExporter::Deliver(const TelemetryFrame& frame) {
  if (json_file_ != nullptr || options_.to_stderr) {
    const std::string line = FrameToJsonLine(frame);
    if (json_file_ != nullptr) {
      std::fprintf(json_file_, "%s\n", line.c_str());
      std::fflush(json_file_);
    }
    if (options_.to_stderr) {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (prometheus_file_ != nullptr) {
    const std::string text = FrameToPrometheusText(frame);
    std::fwrite(text.data(), 1, text.size(), prometheus_file_);
    std::fflush(prometheus_file_);
  }
  if (options_.on_frame) options_.on_frame(frame);
}

}  // namespace hotspot::obs
