#ifndef HOTSPOT_OBS_SNAPSHOT_H_
#define HOTSPOT_OBS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/pipeline_context.h"

namespace hotspot::obs {

/// Point-in-time copy of everything a PipelineContext observed, merged
/// across the per-thread shards. Plain data: serializable, comparable,
/// detached from the live registry.
struct Snapshot {
  struct CounterSample {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;    ///< upper bucket bounds
    std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
    uint64_t count = 0;
    double sum = 0.0;
  };
  struct SpanSample {
    std::string path;
    int depth = 0;
    uint64_t count = 0;
    double total_seconds = 0.0;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<SpanSample> spans;

  /// Sum of wall time over the depth-0 spans: the share of a run that the
  /// trace layer accounts for (the coverage check of bench_tab03).
  double TopLevelSpanSeconds() const;
};

/// Merges all shards of `context` into a Snapshot (deterministic order:
/// metrics by name, spans pre-order with sorted children).
Snapshot TakeSnapshot(const PipelineContext& context);

/// Quantile estimate over a fixed-bucket histogram sample, linearly
/// interpolated inside the covering bucket (the Prometheus
/// histogram_quantile convention; the overflow bucket clamps to the last
/// finite bound). `q` in [0, 1]; returns 0 for an empty histogram. Used
/// by the bench tooling to report p50/p99 stage latencies out of the
/// pipeline/<stage>_latency_seconds histograms.
double HistogramQuantile(const Snapshot::HistogramSample& histogram,
                         double q);

/// JSON object with "counters"/"gauges"/"histograms"/"spans" arrays; the
/// shape the BENCH_* trajectory tooling ingests (one self-contained file
/// per run, no trailing commas, UTF-8).
std::string SnapshotToJson(const Snapshot& snapshot);

/// Parses what SnapshotToJson emits (exact round trip). Returns false on
/// malformed input; `out` is then unspecified.
bool SnapshotFromJson(const std::string& json, Snapshot* out);

/// Flat CSV: kind,name,value,count,seconds — one line per counter, gauge
/// and span (histograms are summarized as count + sum).
std::string SnapshotToCsv(const Snapshot& snapshot);

/// Writes SnapshotToJson(snapshot) to `path`. Returns false on I/O error.
bool WriteSnapshotJson(const Snapshot& snapshot, const std::string& path);

}  // namespace hotspot::obs

#endif  // HOTSPOT_OBS_SNAPSHOT_H_
