#ifndef HOTSPOT_OBS_PIPELINE_CONTEXT_H_
#define HOTSPOT_OBS_PIPELINE_CONTEXT_H_

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hotspot::obs {

/// Process-wide observability context: one metrics registry plus one trace
/// collector, threaded through the pipeline entry points (StudyOptions,
/// SweepOptions) instead of ad-hoc per-feature flags.
///
/// Entry points install the context they were handed as the process
/// current (ScopedInstall); every instrumentation site below them —
/// including work running on pool workers — reads
/// PipelineContext::Current() and no-ops when it is null. The null path is
/// one relaxed atomic load plus a branch, which is what keeps disabled
/// observability out of the hot loops.
///
/// Observability never feeds back into computation: attaching or detaching
/// a context changes no result bit (pinned by parallel_determinism_test).
/// The context must outlive any scope it is installed for. Concurrent
/// installs of *different* contexts from unrelated threads are not
/// supported (last install wins); one pipeline at a time is the intended
/// regime.
class PipelineContext {
 public:
  PipelineContext() = default;
  /// Sizes the flight-recorder ring; the default keeps the newest
  /// FlightRecorder::kDefaultCapacity events.
  explicit PipelineContext(int flight_capacity)
      : flight_(flight_capacity) {}
  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceCollector& trace() { return trace_; }
  const TraceCollector& trace() const { return trace_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }

  /// Zeroes metrics, drops spans and flight events; the registry's names
  /// survive. Same quiesced-writers contract as the members' own Resets.
  void Reset() {
    metrics_.Reset();
    trace_.Reset();
    flight_.Reset();
  }

  /// The currently installed context, or null when observability is off.
  static PipelineContext* Current();

  /// RAII install: makes `context` Current() for the scope and restores
  /// the previous context on destruction. Installing null is a no-op (the
  /// enclosing context, if any, stays live) — entry points can therefore
  /// pass their optional context through unconditionally.
  class ScopedInstall {
   public:
    explicit ScopedInstall(PipelineContext* context);
    ~ScopedInstall();

    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    PipelineContext* previous_ = nullptr;
    bool installed_ = false;
  };

 private:
  MetricsRegistry metrics_;
  TraceCollector trace_;
  FlightRecorder flight_;
};

}  // namespace hotspot::obs

#endif  // HOTSPOT_OBS_PIPELINE_CONTEXT_H_
