#include "obs/trace.h"

#include <functional>

#include "obs/pipeline_context.h"

namespace hotspot::obs {

TraceCollector::TraceCollector()
    : trees_(static_cast<size_t>(kNumShards)) {}

TraceCollector::~TraceCollector() = default;

std::vector<TraceCollector::SpanStats> TraceCollector::Aggregate() const {
  // Merge the per-thread trees into one path-keyed tree.
  struct Merged {
    uint64_t count = 0;
    double total_seconds = 0.0;
    std::map<std::string, Merged> children;
  };
  Merged root;
  std::function<void(const Node&, Merged*)> merge =
      [&](const Node& node, Merged* into) {
        into->count += node.count;
        into->total_seconds += node.total_seconds;
        for (const auto& [name, child] : node.children) {
          merge(*child, &into->children[name]);
        }
      };
  for (const ThreadTree& tree : trees_) {
    std::lock_guard<std::mutex> lock(tree.mutex);
    for (const auto& [name, child] : tree.root.children) {
      merge(*child, &root.children[name]);
    }
  }

  std::vector<SpanStats> stats;
  std::function<void(const Merged&, const std::string&, int)> emit =
      [&](const Merged& node, const std::string& path, int depth) {
        for (const auto& [name, child] : node.children) {
          std::string child_path =
              path.empty() ? name : path + "/" + name;
          SpanStats entry;
          entry.path = child_path;
          entry.depth = depth;
          entry.count = child.count;
          entry.total_seconds = child.total_seconds;
          stats.push_back(std::move(entry));
          emit(child, child_path, depth + 1);
        }
      };
  emit(root, "", 0);
  return stats;
}

void TraceCollector::Reset() {
  for (ThreadTree& tree : trees_) {
    std::lock_guard<std::mutex> lock(tree.mutex);
    tree.root.children.clear();
    tree.root.count = 0;
    tree.root.total_seconds = 0.0;
    tree.current = nullptr;
  }
}

ScopedSpan::ScopedSpan(PipelineContext* context, const char* name)
    : collector_(context != nullptr ? &context->trace() : nullptr) {
  if (collector_ != nullptr) Enter(name);
}

ScopedSpan::ScopedSpan(TraceCollector* collector, const char* name)
    : collector_(collector) {
  if (collector_ != nullptr) Enter(name);
}

void ScopedSpan::Enter(const char* name) {
  tree_ = &collector_->trees_[static_cast<size_t>(ThisThreadShard())];
  std::lock_guard<std::mutex> lock(tree_->mutex);
  TraceCollector::Node* parent =
      tree_->current != nullptr ? tree_->current : &tree_->root;
  auto it = parent->children.find(name);
  if (it == parent->children.end()) {
    auto node = std::make_unique<TraceCollector::Node>();
    node->parent = parent;
    it = parent->children.emplace(std::string(name), std::move(node)).first;
  }
  node_ = it->second.get();
  tree_->current = node_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (collector_ == nullptr || node_ == nullptr) return;
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
  std::lock_guard<std::mutex> lock(tree_->mutex);
  node_->count += 1;
  node_->total_seconds += elapsed;
  tree_->current = node_->parent == &tree_->root ? nullptr : node_->parent;
}

}  // namespace hotspot::obs
