#include "obs/pipeline_context.h"

#include <atomic>

namespace hotspot::obs {

namespace {

std::atomic<PipelineContext*>& CurrentSlot() {
  static std::atomic<PipelineContext*> current{nullptr};
  return current;
}

}  // namespace

PipelineContext* PipelineContext::Current() {
  return CurrentSlot().load(std::memory_order_acquire);
}

PipelineContext::ScopedInstall::ScopedInstall(PipelineContext* context) {
  if (context == nullptr) return;
  previous_ = CurrentSlot().exchange(context, std::memory_order_acq_rel);
  installed_ = true;
}

PipelineContext::ScopedInstall::~ScopedInstall() {
  if (!installed_) return;
  CurrentSlot().store(previous_, std::memory_order_release);
}

}  // namespace hotspot::obs
