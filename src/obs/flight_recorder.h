#ifndef HOTSPOT_OBS_FLIGHT_RECORDER_H_
#define HOTSPOT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hotspot::obs {

/// What happened, as a fixed-width code. Counters tell you *how much*;
/// these tell you *when and in what order* — the transient state changes
/// that aggregate metrics erase (a promotion landing mid-stream, the first
/// admission reject of an overload episode, a shard's OK→WARN flip).
enum class FlightEventKind : int {
  /// Bundle promotion installed. a = shard (-1 for a bare service),
  /// b = new generation tag.
  kPromotion = 0,
  /// Fleet admission control refused a row. a = PushVerdict code,
  /// b = sector, c = hour.
  kAdmissionReject,
  /// A stage's input queue made producers wait since the last item.
  /// a = stage index, b = new waits observed.
  kBackpressure,
  /// A stage's input queue reached a new high-water depth. a = stage
  /// index, b = the new high-water mark.
  kQueueHighWater,
  /// A shard's overall health state changed. a = shard, b = old
  /// AlertState, c = new AlertState.
  kShardHealth,
  /// A monitor ladder signal changed state. a = signal (0 overall,
  /// 1 drift, 2 quality, 3 latency), b = old AlertState, c = new.
  kLadderTransition,
  /// The adaptation controller's ladder moved. a = old AdaptState,
  /// b = new AdaptState, c = champion generation at the transition,
  /// d = the challenger-minus-champion lift delta when one was computed
  /// (0 otherwise).
  kAdaptTransition,
  /// Caller-defined payload.
  kCustom,
};

const char* FlightEventKindName(FlightEventKind kind);

/// One decoded flight event. `sequence` is the global record ticket
/// (monotonic across the whole flight, not just the retained window);
/// `t_ns` is steady-clock nanoseconds since the recorder's construction.
struct FlightEventRecord {
  uint64_t sequence = 0;
  uint64_t t_ns = 0;
  FlightEventKind kind = FlightEventKind::kCustom;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  double d = 0.0;

  std::string ToString() const;
};

/// Fixed-capacity MPMC ring of structured events — the serving stack's
/// flight recorder. Record() is wait-free (one fetch_add plus seven
/// relaxed stores), writers never block each other or any reader, and the
/// ring keeps the newest `capacity` events, overwriting the oldest; the
/// monotonic ticket makes the overwritten count (`dropped()`) exact.
///
/// Memory-order argument (the reason this is TSan-clean by construction
/// rather than a seqlock that merely "works in practice"):
///
///   - A writer claims a ticket with head_.fetch_add (relaxed: tickets
///     only need uniqueness, not ordering), then walks the slot through a
///     per-slot sequence word: seq = 2·ticket+1 (release, "writing"),
///     payload stores (relaxed), seq = 2·ticket+2 (release, "complete").
///   - A reader accepts a slot only when seq reads 2·ticket+2 *both
///     before and after* copying the payload (acquire loads). The first
///     acquire synchronizes with the writer's final release, so the
///     payload the reader copies happens-after the writer's stores; the
///     second load rejects slots a lapping writer touched mid-copy.
///   - Every payload field is a std::atomic accessed relaxed, so even a
///     racing read of a slot that is later rejected is a defined read of
///     a stale value, never UB — which is exactly what ThreadSanitizer
///     checks. Two writers one full lap apart can interleave on a slot;
///     the sequence check discards such torn slots (best-effort loss of
///     an already-overwritten event, never a fabricated one).
///
/// Observability discipline: recording never feeds back into serving, and
/// a recorder is only reached through PipelineContext, so a null context
/// keeps the hot paths event-free.
class FlightRecorder {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  explicit FlightRecorder(int capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr int kDefaultCapacity = 4096;

  /// Appends one event. Wait-free; safe from any thread, including pool
  /// workers and stage/router threads concurrently.
  void Record(FlightEventKind kind, int64_t a = 0, int64_t b = 0,
              int64_t c = 0, double d = 0.0);

  /// Events recorded over the recorder's lifetime (including overwritten
  /// ones) and how many the ring has overwritten.
  uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const;
  uint64_t capacity() const { return static_cast<uint64_t>(slots_.size()); }

  /// Copies the retained window, oldest first, skipping slots a
  /// concurrent writer holds torn. Safe during recording.
  std::vector<FlightEventRecord> Snapshot() const;

  /// Full dump as a JSON object: {"schema":"hotspot.flight.v1",
  /// "capacity":…, "recorded":…, "dropped":…, "events":[{"seq":…,
  /// "t_ns":…, "kind":"promotion", "a":…, "b":…, "c":…, "d":…}, …]}.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on I/O error.
  bool DumpToJson(const std::string& path) const;

  /// Async-signal-safe best-effort dump: one text line per retained event
  /// written straight to `fd` with write(2) — no allocation, no locks, no
  /// stdio — so it is callable from a fatal-signal handler. Returns the
  /// number of events written.
  int DumpRawTo(int fd) const;

  /// Registers `recorder` (one per process; the last call wins) for a
  /// best-effort DumpRawTo at std::atexit and, when `fatal_signals` is
  /// true, on SIGABRT/SIGSEGV/SIGBUS — after which the previous handler
  /// disposition is restored and the signal re-raised. The dump target is
  /// the file at `path`, created/truncated at dump time. Pass null to
  /// unregister (do this before the recorder is destroyed).
  static void InstallExitDump(const FlightRecorder* recorder,
                              const std::string& path,
                              bool fatal_signals = false);

  /// Drops every retained event and rewinds the ticket counter. Not safe
  /// against concurrent Record — quiesce writers first (the same contract
  /// as PipelineContext::Reset).
  void Reset();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};  ///< 0 empty; 2t+1 writing; 2t+2 done
    std::atomic<uint64_t> t_ns{0};
    std::atomic<int> kind{0};
    std::atomic<int64_t> a{0};
    std::atomic<int64_t> b{0};
    std::atomic<int64_t> c{0};
    std::atomic<double> d{0.0};
  };

  uint64_t NowNs() const;
  bool ReadSlot(uint64_t ticket, FlightEventRecord* out) const;

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace hotspot::obs

#endif  // HOTSPOT_OBS_FLIGHT_RECORDER_H_
