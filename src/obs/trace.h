#ifndef HOTSPOT_OBS_TRACE_H_
#define HOTSPOT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // kNumShards / ThisThreadShard

namespace hotspot::obs {

class PipelineContext;

/// Wall-time trace spans aggregated by call path. Each thread owns its own
/// span tree (sharded like the metrics), so entering/leaving a span never
/// contends with other pool workers; Aggregate() merges the per-thread
/// trees by path. A span opened on a pool worker that has no enclosing
/// span roots at that worker's tree — after the merge it shows up as its
/// own top-level path, which is the honest accounting for work that ran
/// off the orchestration thread.
class TraceCollector {
 public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;
  ~TraceCollector();

  /// One aggregated span path (pre-order over the merged tree, children
  /// sorted by name — deterministic regardless of execution order).
  struct SpanStats {
    std::string path;      ///< "sweep/run" or "study/build/study/impute"
    int depth = 0;         ///< 0 = top level
    uint64_t count = 0;    ///< completed span instances
    double total_seconds = 0.0;
  };

  /// Merged view across all threads. Only completed spans are counted.
  std::vector<SpanStats> Aggregate() const;

  /// Drops all recorded spans. Must not race with open spans.
  void Reset();

 private:
  friend class ScopedSpan;

  struct Node {
    Node* parent = nullptr;
    uint64_t count = 0;
    double total_seconds = 0.0;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
  };

  /// One thread's tree. The mutex serializes the (rare) case of two
  /// threads hashing to the same shard; in the common case it is
  /// uncontended and the lock is a handful of nanoseconds.
  struct ThreadTree {
    mutable std::mutex mutex;
    Node root;
    Node* current = nullptr;  ///< innermost open span; null = at root
  };

  std::vector<ThreadTree> trees_;
};

/// RAII span: records wall time and call count under the collector's
/// current path for this thread. A null collector (no PipelineContext
/// installed) makes construction and destruction a pointer test — the
/// disabled path stays out of the way of the hot loops.
class ScopedSpan {
 public:
  ScopedSpan(PipelineContext* context, const char* name);
  ScopedSpan(TraceCollector* collector, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Enter(const char* name);

  TraceCollector* collector_ = nullptr;
  TraceCollector::ThreadTree* tree_ = nullptr;
  TraceCollector::Node* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hotspot::obs

#define HOTSPOT_OBS_CONCAT_INNER(a, b) a##b
#define HOTSPOT_OBS_CONCAT(a, b) HOTSPOT_OBS_CONCAT_INNER(a, b)

/// Opens a trace span on the process-wide PipelineContext (no-op when none
/// is installed). Usage: HOTSPOT_SPAN("gbdt/fit");
#define HOTSPOT_SPAN(name)                                          \
  ::hotspot::obs::ScopedSpan HOTSPOT_OBS_CONCAT(hotspot_span_,      \
                                                __LINE__)(          \
      ::hotspot::obs::PipelineContext::Current(), name)

#endif  // HOTSPOT_OBS_TRACE_H_
