#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace hotspot::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kPromotion:
      return "promotion";
    case FlightEventKind::kAdmissionReject:
      return "admission_reject";
    case FlightEventKind::kBackpressure:
      return "backpressure";
    case FlightEventKind::kQueueHighWater:
      return "queue_high_water";
    case FlightEventKind::kShardHealth:
      return "shard_health";
    case FlightEventKind::kLadderTransition:
      return "ladder_transition";
    case FlightEventKind::kAdaptTransition:
      return "adapt_transition";
    case FlightEventKind::kCustom:
      return "custom";
  }
  return "unknown";
}

std::string FlightEventRecord::ToString() const {
  std::ostringstream out;
  out << "#" << sequence << " t=" << t_ns << "ns "
      << FlightEventKindName(kind) << " a=" << a << " b=" << b << " c=" << c
      << " d=" << d;
  return out.str();
}

namespace {

uint64_t RoundUpPow2(uint64_t n) {
  uint64_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(int capacity)
    : slots_(RoundUpPow2(capacity < 2 ? 2 : static_cast<uint64_t>(capacity))),
      epoch_(std::chrono::steady_clock::now()) {
  mask_ = slots_.size() - 1;
}

uint64_t FlightRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void FlightRecorder::Record(FlightEventKind kind, int64_t a, int64_t b,
                            int64_t c, double d) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // "Writing" marker first: a reader that arrives between here and the
  // final release sees an odd/foreign sequence and rejects the slot.
  slot.seq.store(ticket * 2 + 1, std::memory_order_release);
  slot.t_ns.store(NowNs(), std::memory_order_relaxed);
  slot.kind.store(static_cast<int>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.d.store(d, std::memory_order_relaxed);
  // Publication: synchronizes with a reader's first acquire load.
  slot.seq.store(ticket * 2 + 2, std::memory_order_release);
}

uint64_t FlightRecorder::dropped() const {
  const uint64_t recorded_total = recorded();
  const uint64_t cap = capacity();
  return recorded_total > cap ? recorded_total - cap : 0;
}

bool FlightRecorder::ReadSlot(uint64_t ticket,
                              FlightEventRecord* out) const {
  const Slot& slot = slots_[ticket & mask_];
  const uint64_t want = ticket * 2 + 2;
  if (slot.seq.load(std::memory_order_acquire) != want) return false;
  out->sequence = ticket;
  out->t_ns = slot.t_ns.load(std::memory_order_relaxed);
  out->kind =
      static_cast<FlightEventKind>(slot.kind.load(std::memory_order_relaxed));
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  out->c = slot.c.load(std::memory_order_relaxed);
  out->d = slot.d.load(std::memory_order_relaxed);
  // Re-validate: a lapping writer that touched the slot mid-copy left a
  // different (or odd) sequence behind, and the copy above is torn.
  return slot.seq.load(std::memory_order_acquire) == want;
}

std::vector<FlightEventRecord> FlightRecorder::Snapshot() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = capacity();
  const uint64_t begin = head > cap ? head - cap : 0;
  std::vector<FlightEventRecord> events;
  events.reserve(static_cast<size_t>(head - begin));
  for (uint64_t ticket = begin; ticket < head; ++ticket) {
    FlightEventRecord record;
    if (ReadSlot(ticket, &record)) events.push_back(record);
  }
  return events;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEventRecord> events = Snapshot();
  std::ostringstream out;
  out << "{\"schema\":\"hotspot.flight.v1\",\"capacity\":" << capacity()
      << ",\"recorded\":" << recorded() << ",\"dropped\":" << dropped()
      << ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEventRecord& e = events[i];
    if (i > 0) out << ",";
    out << "{\"seq\":" << e.sequence << ",\"t_ns\":" << e.t_ns
        << ",\"kind\":\"" << FlightEventKindName(e.kind) << "\",\"a\":" << e.a
        << ",\"b\":" << e.b << ",\"c\":" << e.c << ",\"d\":";
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", e.d);
    out << buffer << "}";
  }
  out << "]}";
  return out.str();
}

bool FlightRecorder::DumpToJson(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  return std::fclose(file) == 0 && ok;
}

namespace {

// Async-signal-safe helpers: no allocation, no stdio, no locale.
char* AppendLiteral(char* p, const char* s) {
  while (*s != '\0') *p++ = *s++;
  return p;
}

char* AppendUint(char* p, uint64_t v) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *p++ = digits[--n];
  return p;
}

char* AppendInt(char* p, int64_t value) {
  uint64_t v;
  if (value < 0) {
    *p++ = '-';
    // Negate via uint64_t so INT64_MIN does not overflow.
    v = static_cast<uint64_t>(-(value + 1)) + 1;
  } else {
    v = static_cast<uint64_t>(value);
  }
  return AppendUint(p, v);
}

}  // namespace

int FlightRecorder::DumpRawTo(int fd) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t cap = capacity();
  const uint64_t begin = head > cap ? head - cap : 0;
  int written = 0;
  for (uint64_t ticket = begin; ticket < head; ++ticket) {
    FlightEventRecord record;
    if (!ReadSlot(ticket, &record)) continue;
    char line[256];
    char* p = line;
    p = AppendUint(p, record.sequence);
    p = AppendLiteral(p, " ");
    p = AppendLiteral(p, FlightEventKindName(record.kind));
    p = AppendLiteral(p, " a=");
    p = AppendInt(p, record.a);
    p = AppendLiteral(p, " b=");
    p = AppendInt(p, record.b);
    p = AppendLiteral(p, " c=");
    p = AppendInt(p, record.c);
    p = AppendLiteral(p, " d_micro=");
    p = AppendInt(p, static_cast<int64_t>(record.d * 1e6));
    p = AppendLiteral(p, " t_ns=");
    p = AppendUint(p, record.t_ns);
    *p++ = '\n';
    ssize_t ignored = ::write(fd, line, static_cast<size_t>(p - line));
    (void)ignored;
    ++written;
  }
  return written;
}

namespace {

// Exit-dump registration: one process-wide slot, touched only via
// relaxed/acquire-release atomics so the signal handler never takes a
// lock. The path lives in a fixed buffer (handlers cannot allocate).
std::atomic<const FlightRecorder*> g_exit_recorder{nullptr};
char g_exit_path[512] = {0};
std::atomic<bool> g_atexit_registered{false};

void ExitDumpNow() {
  const FlightRecorder* recorder =
      g_exit_recorder.load(std::memory_order_acquire);
  if (recorder == nullptr || g_exit_path[0] == '\0') return;
  const int fd =
      ::open(g_exit_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  recorder->DumpRawTo(fd);
  ::close(fd);
}

void ExitDumpSignalHandler(int signo) {
  ExitDumpNow();
  // Best effort done; restore the default disposition and re-raise so the
  // process still dies with the original signal semantics.
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void FlightRecorder::InstallExitDump(const FlightRecorder* recorder,
                                     const std::string& path,
                                     bool fatal_signals) {
  if (recorder == nullptr) {
    g_exit_recorder.store(nullptr, std::memory_order_release);
    return;
  }
  std::strncpy(g_exit_path, path.c_str(), sizeof(g_exit_path) - 1);
  g_exit_path[sizeof(g_exit_path) - 1] = '\0';
  g_exit_recorder.store(recorder, std::memory_order_release);
  if (!g_atexit_registered.exchange(true, std::memory_order_acq_rel)) {
    std::atexit(ExitDumpNow);
  }
  if (fatal_signals) {
    ::signal(SIGABRT, ExitDumpSignalHandler);
    ::signal(SIGSEGV, ExitDumpSignalHandler);
    ::signal(SIGBUS, ExitDumpSignalHandler);
  }
}

void FlightRecorder::Reset() {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
  }
}

}  // namespace hotspot::obs
