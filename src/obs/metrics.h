#ifndef HOTSPOT_OBS_METRICS_H_
#define HOTSPOT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hotspot::obs {

/// Number of per-metric shards. Each thread hashes to a stable shard, so
/// hot-path increments from different pool workers land on different cache
/// lines and never contend; Total()/snapshots merge the shards.
inline constexpr int kNumShards = 64;

/// Stable shard index of the calling thread in [0, kNumShards).
int ThisThreadShard();

/// Monotonic event counter, sharded per thread. Add() is lock-free and
/// uncontended between pool workers; Total() merges. Observability is
/// strictly read-only with respect to the pipeline: counters never feed
/// back into any computation, so the determinism contract is unaffected.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[static_cast<size_t>(ThisThreadShard())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged value across all shards.
  uint64_t Total() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kNumShards];
};

/// Last-write-wins scalar (progress fractions, convergence losses, ETAs).
/// Set/Value are atomic; gauges are cold-path by design.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative-free layout: buckets_[b] counts
/// observations v with v <= bounds_[b]; the last bucket is the overflow).
/// Bucket counts and the running sum are sharded like Counter.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing; an implicit +inf bucket
  /// is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Observe() plus a last-write-wins exemplar slot: `exemplar` is a
  /// caller-defined tag (a row count, an end-day) identifying the
  /// observation, the Prometheus-exemplar idea reduced to one slot. A
  /// dashboard reading the exported p99 can jump straight to the batch
  /// that last exercised the distribution. Exemplars are telemetry
  /// metadata only — they never feed back into any computation.
  void ObserveWithExemplar(double value, int64_t exemplar) {
    Observe(value);
    exemplar_value_.store(value, std::memory_order_relaxed);
    exemplar_.store(exemplar, std::memory_order_relaxed);
    exemplar_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Latest exemplar; false when ObserveWithExemplar never ran. The pair
  /// is read without a lock, so under concurrent writers the tag and
  /// value may belong to different (adjacent) observations — acceptable
  /// for a diagnostics pointer, never for accounting.
  bool LastExemplar(int64_t* exemplar, double* value) const {
    if (exemplar_count_.load(std::memory_order_relaxed) == 0) return false;
    *exemplar = exemplar_.load(std::memory_order_relaxed);
    *value = exemplar_value_.load(std::memory_order_relaxed);
    return true;
  }

  /// Merged per-bucket counts (size = bounds().size() + 1).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }

  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> exemplar_count_{0};
  std::atomic<int64_t> exemplar_{0};
  std::atomic<double> exemplar_value_{0.0};
};

/// Log-spaced wall-time buckets (seconds) used by the latency histograms
/// of the pipeline (100 µs .. 30 s).
std::vector<double> DefaultLatencySeconds();

/// Canonical per-shard metric name: "fleet/shard3/rows_routed" for
/// (3, "rows_routed"). One naming rule keeps the fleet's per-shard
/// counters greppable and lets tests reconstruct the exact names the
/// routing hot path caches.
std::string ShardMetricName(int shard, std::string_view suffix);

/// Name-addressed registry of counters, gauges and histograms. Lookup by
/// name takes a mutex; the returned references are stable for the life of
/// the registry, so hot paths resolve once and increment lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First caller fixes the bucket bounds; later callers get the same
  /// histogram regardless of their `upper_bounds` argument.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Deterministically ordered (by name) views for snapshotting.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  /// Zeroes every metric (the set of registered names is kept).
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace hotspot::obs

#endif  // HOTSPOT_OBS_METRICS_H_
