#include "obs/snapshot.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hotspot::obs {

namespace {

void AppendEscaped(const std::string& text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatDouble(double value) {
  char buffer[40];
  // %.17g survives a text round trip bit-exactly for finite doubles.
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Minimal JSON DOM covering exactly what SnapshotToJson emits: objects,
/// arrays, strings and numbers.
struct JsonValue {
  enum class Type { kNull, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    return p_ == end_;
  }

 private:
  void SkipWhitespace() {
    while (p_ != end_ && std::isspace(static_cast<unsigned char>(*p_))) {
      ++p_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (p_ == end_ || *p_ != expected) return false;
    ++p_;
    return true;
  }

  bool Peek(char expected) {
    SkipWhitespace();
    return p_ != end_ && *p_ == expected;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return false;
      char escape = *p_++;
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (end_ - p_ < 4) return false;
          char hex[5] = {p_[0], p_[1], p_[2], p_[3], '\0'};
          p_ += 4;
          out->push_back(static_cast<char>(
              std::strtol(hex, nullptr, 16) & 0xff));
          break;
        }
        default:
          return false;
      }
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    SkipWhitespace();
    char* parse_end = nullptr;
    *out = std::strtod(p_, &parse_end);
    if (parse_end == p_) return false;
    p_ = parse_end;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (p_ == end_) return false;
    if (*p_ == '{') {
      ++p_;
      out->type = JsonValue::Type::kObject;
      if (Consume('}')) return true;
      for (;;) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace_back(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (*p_ == '[') {
      ++p_;
      out->type = JsonValue::Type::kArray;
      if (Consume(']')) return true;
      for (;;) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (*p_ == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    out->type = JsonValue::Type::kNumber;
    return ParseNumber(&out->number);
  }

  const char* p_;
  const char* end_;
};

double NumberOrZero(const JsonValue* value) {
  return value != nullptr && value->type == JsonValue::Type::kNumber
             ? value->number
             : 0.0;
}

bool StringField(const JsonValue& object, const char* key,
                 std::string* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->type != JsonValue::Type::kString) {
    return false;
  }
  *out = value->string;
  return true;
}

}  // namespace

double Snapshot::TopLevelSpanSeconds() const {
  double total = 0.0;
  for (const SpanSample& span : spans) {
    if (span.depth == 0) total += span.total_seconds;
  }
  return total;
}

double HistogramQuantile(const Snapshot::HistogramSample& histogram,
                         double q) {
  if (histogram.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(histogram.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < histogram.buckets.size(); ++b) {
    const uint64_t in_bucket = histogram.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // The overflow bucket has no finite upper edge; clamp to the last
      // finite bound (or the sum-mean when there are no bounds at all).
      if (b >= histogram.bounds.size()) {
        return histogram.bounds.empty()
                   ? histogram.sum / static_cast<double>(histogram.count)
                   : histogram.bounds.back();
      }
      const double upper = histogram.bounds[b];
      const double lower = b == 0 ? 0.0 : histogram.bounds[b - 1];
      const double into_bucket =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * into_bucket;
    }
    cumulative += in_bucket;
  }
  return histogram.bounds.empty() ? 0.0 : histogram.bounds.back();
}

Snapshot TakeSnapshot(const PipelineContext& context) {
  Snapshot snapshot;
  for (const auto& [name, counter] : context.metrics().Counters()) {
    snapshot.counters.push_back({name, counter->Total()});
  }
  for (const auto& [name, gauge] : context.metrics().Gauges()) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, histogram] : context.metrics().Histograms()) {
    Snapshot::HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.buckets = histogram->BucketCounts();
    sample.count = histogram->Count();
    sample.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  for (const TraceCollector::SpanStats& span : context.trace().Aggregate()) {
    snapshot.spans.push_back(
        {span.path, span.depth, span.count, span.total_seconds});
  }
  return snapshot;
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": [";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(snapshot.counters[i].name, &out);
    out += ", \"value\": " + std::to_string(snapshot.counters[i].value) +
           "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(snapshot.gauges[i].name, &out);
    out += ", \"value\": " + FormatDouble(snapshot.gauges[i].value) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const Snapshot::HistogramSample& h = snapshot.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    AppendEscaped(h.name, &out);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"bounds\": [";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(h.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += "\n  ],\n  \"spans\": [";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    const Snapshot::SpanSample& span = snapshot.spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"path\": ";
    AppendEscaped(span.path, &out);
    out += ", \"depth\": " + std::to_string(span.depth);
    out += ", \"count\": " + std::to_string(span.count);
    out += ", \"seconds\": " + FormatDouble(span.total_seconds) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool SnapshotFromJson(const std::string& json, Snapshot* out) {
  *out = Snapshot{};
  JsonValue root;
  if (!JsonParser(json).Parse(&root) ||
      root.type != JsonValue::Type::kObject) {
    return false;
  }

  const JsonValue* counters = root.Find("counters");
  const JsonValue* gauges = root.Find("gauges");
  const JsonValue* histograms = root.Find("histograms");
  const JsonValue* spans = root.Find("spans");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr ||
      spans == nullptr) {
    return false;
  }

  for (const JsonValue& entry : counters->array) {
    Snapshot::CounterSample sample;
    if (!StringField(entry, "name", &sample.name)) return false;
    sample.value =
        static_cast<uint64_t>(NumberOrZero(entry.Find("value")));
    out->counters.push_back(std::move(sample));
  }
  for (const JsonValue& entry : gauges->array) {
    Snapshot::GaugeSample sample;
    if (!StringField(entry, "name", &sample.name)) return false;
    sample.value = NumberOrZero(entry.Find("value"));
    out->gauges.push_back(std::move(sample));
  }
  for (const JsonValue& entry : histograms->array) {
    Snapshot::HistogramSample sample;
    if (!StringField(entry, "name", &sample.name)) return false;
    sample.count =
        static_cast<uint64_t>(NumberOrZero(entry.Find("count")));
    sample.sum = NumberOrZero(entry.Find("sum"));
    if (const JsonValue* bounds = entry.Find("bounds")) {
      for (const JsonValue& bound : bounds->array) {
        sample.bounds.push_back(bound.number);
      }
    }
    if (const JsonValue* buckets = entry.Find("buckets")) {
      for (const JsonValue& bucket : buckets->array) {
        sample.buckets.push_back(static_cast<uint64_t>(bucket.number));
      }
    }
    out->histograms.push_back(std::move(sample));
  }
  for (const JsonValue& entry : spans->array) {
    Snapshot::SpanSample sample;
    if (!StringField(entry, "path", &sample.path)) return false;
    sample.depth = static_cast<int>(NumberOrZero(entry.Find("depth")));
    sample.count =
        static_cast<uint64_t>(NumberOrZero(entry.Find("count")));
    sample.total_seconds = NumberOrZero(entry.Find("seconds"));
    out->spans.push_back(std::move(sample));
  }
  return true;
}

std::string SnapshotToCsv(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "kind,name,value,count,seconds\n";
  for (const Snapshot::CounterSample& counter : snapshot.counters) {
    out << "counter," << counter.name << "," << counter.value << ",,\n";
  }
  for (const Snapshot::GaugeSample& gauge : snapshot.gauges) {
    out << "gauge," << gauge.name << "," << FormatDouble(gauge.value)
        << ",,\n";
  }
  for (const Snapshot::HistogramSample& histogram : snapshot.histograms) {
    out << "histogram," << histogram.name << ","
        << FormatDouble(histogram.sum) << "," << histogram.count << ",\n";
  }
  for (const Snapshot::SpanSample& span : snapshot.spans) {
    out << "span," << span.path << ",," << span.count << ","
        << FormatDouble(span.total_seconds) << "\n";
  }
  return out.str();
}

bool WriteSnapshotJson(const Snapshot& snapshot, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string json = SnapshotToJson(snapshot);
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  bool ok = written == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace hotspot::obs
